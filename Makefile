GO ?= go
# bench pipes go test into benchjson; pipefail keeps a failing benchmark
# run from silently writing an incomplete BENCH_PR<N>.json.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

# BENCH_OUT names the trajectory point `make bench` records. Bump the PR
# number when landing a perf PR so the old point stays committed next to
# the new one and bench-check can diff them.
BENCH_OUT ?= BENCH_PR10.json

.PHONY: check fmt vet build test race bench benchsmoke bench-check determinism chaos chaos-remote fuzzsmoke cover profile

# check is the full gate: formatting, vet, build, the test suite under
# the race detector (the sweep engine is explicitly designed and tested
# to be race-clean), the end-to-end determinism smoke, the chaos
# harness (kill + corrupt + salvage-resume under injected faults), the
# distributed chaos harness (a real sweepd fleet with one worker
# SIGKILLed mid-batch and another injecting connection faults), a
# short fuzz leg over the reader-vector, pattern-key, and checkpoint
# decoders, a one-iteration benchmark smoke run so the benches cannot
# silently rot, and the bench-history regression check over the
# committed BENCH_PR<N>.json records.
check: fmt vet build race determinism chaos chaos-remote fuzzsmoke benchsmoke bench-check

# chaos-remote runs the distributed sweep under real process death and a
# real torn transport: three local sweepd workers serve a fig9 sweep,
# one is SIGKILLed the moment it starts executing a batch (its leased
# jobs die with it), another injects connection drops/short
# reads/delays on every dispatcher link, and the dispatcher's output
# must still be byte-identical to a clean local -parallel 1 run.
chaos-remote:
	$(GO) test -run='^TestChaosRemote$$' -v ./cmd/paperrepro

# chaos runs the kill/corrupt/salvage harness with more rounds than the
# copy `go test ./...` runs: checkpointed fig9 sweeps are crashed at
# derived kill points under injected transient faults and delays, their
# checkpoints corrupted (tail truncation or a frame bit flip), and the
# -resume-salvage rerun must reproduce a clean -parallel 1 run byte for
# byte. Rounds are derived from their index, so failures replay exactly.
chaos:
	$(GO) test -run='^TestChaos$$' -v ./cmd/paperrepro -args -chaos-rounds=8

# fuzzsmoke runs the differential fuzz targets briefly on every gate:
# the reader-vector ops against the map-backed oracle, the packed
# pattern-key encoding against its bijection/table oracle, and the
# checkpoint decoder's strict-vs-salvage verdict consistency. Five
# seconds each is a smoke test, not a campaign — run `go test -fuzz`
# with a longer -fuzztime for real exploration; the corpus persists
# under the build cache either way.
fuzzsmoke:
	$(GO) test -run='^$$' -fuzz=FuzzReaderVec -fuzztime=5s ./internal/mem
	$(GO) test -run='^$$' -fuzz=FuzzPatKeyPack -fuzztime=5s ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzCheckpointFrames -fuzztime=5s ./internal/sweep

# cover prints per-package statement coverage over the full test suite.
cover:
	$(GO) test -cover ./...

# determinism byte-compares a reduced-scale full paperrepro run at
# -parallel 1 vs -parallel 8: the sweep engine's ordered-merge contract
# ("output is byte-identical for every worker count") checked end to end
# on every gate run, not just in unit tests. The bracketed wall-clock
# lines are stripped before comparing — they are the one intentionally
# non-deterministic part of the output.
#
# The second leg checks the same contract across a crash: a checkpointed
# fig9 run is killed mid-sweep via -crash-after (exit 3), must leave a
# non-empty checkpoint behind, and the -resume rerun's output must be
# byte-identical to an uninterrupted sequential run.
determinism:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/paperrepro ./cmd/paperrepro && \
	$$tmp/paperrepro -scale 0.1 -parallel 1 | sed -E 's/\[[^]]*: [0-9].*\]/[time]/' > $$tmp/p1.txt && \
	$$tmp/paperrepro -scale 0.1 -parallel 8 | sed -E 's/\[[^]]*: [0-9].*\]/[time]/' > $$tmp/p8.txt && \
	cmp $$tmp/p1.txt $$tmp/p8.txt && echo "determinism: -parallel 1 == -parallel 8" && \
	$$tmp/paperrepro -only fig9 -scale 0.1 -parallel 1 | sed -E 's/\[[^]]*: [0-9].*\]/[time]/' > $$tmp/fig9.txt && \
	$$tmp/paperrepro -only fig9 -scale 0.1 -parallel 8 \
		-checkpoint $$tmp/ck -checkpoint-every 2 -crash-after 9 >/dev/null 2>&1; \
	st=$$?; [ $$st -eq 3 ] || { echo "determinism: crashed run exited $$st, want 3"; exit 1; } && \
	[ -s $$tmp/ck.speculation ] || { echo "determinism: no checkpoint left behind"; exit 1; } && \
	$$tmp/paperrepro -only fig9 -scale 0.1 -parallel 8 \
		-checkpoint $$tmp/ck -resume | sed -E 's/\[[^]]*: [0-9].*\]/[time]/' > $$tmp/fig9r.txt && \
	cmp $$tmp/fig9.txt $$tmp/fig9r.txt && echo "determinism: crash + -resume == uninterrupted run"

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark — the per-table/figure study benches, the
# hot-path microbenches (Observe, KernelSchedule, DirectoryServe,
# CacheHit), and the loopback remote-dispatch leg (per-job dispatcher
# overhead: claim/exec/result round-trips over a real TCP connection,
# microseconds per job, so distribution cost stays visible next to the
# simulation benches it amortizes into) — with -benchmem, and records
# ns/op, B/op, allocs/op, and the headline metrics to $(BENCH_OUT) via
# cmd/benchjson.
#
# Bench JSON workflow: the emitted document is
#
#	{ "go_version", "goos", "goarch",
#	  "benchmarks": [ { "name", "iterations",
#	                    "metrics": { "ns/op", "B/op", "allocs/op",
#	                                 ...custom b.ReportMetric units } } ] }
#
# where the custom units are each study's headline scalar (meanVMSP%,
# meanSWIexec%, appbtVMSP@d2%, ...), so a diff of two records shows both
# performance movement and any drift in the reproduced shapes. Each perf
# PR appends a new BENCH_PR<N>.json rather than overwriting the old one;
# the committed series is the repo's performance history and bench-check
# (below) enforces that the newest point does not walk back the previous
# one.
# Study benches run 3 iterations (each is a full deterministic
# simulation; averaging 3 tames scheduling noise, and 3 is the floor at
# which bench-check treats ns/op as a measurement rather than noise);
# the nanosecond-scale hot-path microbenches need real iteration counts
# to produce comparable ns/op — 100000, because 1000 iterations of a
# ~30ns op is a ~30µs sample whose run-to-run swing on a busy machine
# dwarfs the 15% regression budget bench-check enforces. The one
# exception is ObserveColdBlocks, whose per-op cost grows with the
# iteration count (every op allocates a fresh block, so b.N sets the
# table size); it stays at the 1000x its committed baseline used.
# Every nanosecond-scale leg takes 5 samples rather than 3: a ~20ns op
# measured over a few milliseconds swings 15-20% with host scheduling
# weather, and min-of-3 regularly fails to catch a single quiet window
# that min-of-5 does.
# Every benchmark additionally runs repeated -count samples, which
# benchjson folds into one record by taking the per-metric minimum
# (noise is strictly additive, so min-of-K is the robust cost
# estimate); the study benches take 5 samples because minutes of
# saturated CPU invite throttling windows that three consecutive
# samples cannot escape. All logs feed one benchjson run, which merges
# them into a single record. The nanosecond-scale microbench legs run
# FIRST, before the study benches: minutes of saturated CPU leave the
# machine in a throttled state that inflates a ~30ns op by 30-50%,
# which min-of-3 cannot undo when every sample sits inside the hot
# window — measured as a uniform phantom regression on untouched code.
#
# Fig6AnalyticModel gets its own 200x leg in addition to the 3x study
# leg it is swept up in: it is the one microsecond-scale bench in the
# root package (pure analytic model, no simulation), and three 3x
# samples of a ~30us op swing tens of percent run to run. benchjson's
# min-of-K fold across both legs lets the reliable 200x measurement
# stand in for the noisy one.
#
# Two further noise controls, extending the microbenches-first fix:
# GOGC=off pins the collector for the nanosecond-scale legs (the guarded
# paths allocate nothing, so GC only contributes pause noise — a
# background cycle landing inside a 100000x sample reads as a phantom
# ns/op regression), and a short idle sleep between legs lets a
# thermally-saturated single-CPU machine step back down before the next
# leg samples. The study legs keep normal GC: full simulations allocate
# on cold paths by design, and benchmarking them with the heap growing
# unboundedly would measure allocator pressure no real run has.
BENCH_COOLDOWN ?= 5
bench:
	{ GOGC=off $(GO) test -bench='ObserveColdBlocks' -benchmem -benchtime=1000x -count=5 -run='^$$' ./internal/core && \
	  sleep $(BENCH_COOLDOWN) && \
	  GOGC=off $(GO) test -bench='Observe$$/|PredictReaders' -benchmem -benchtime=100000x -count=5 -run='^$$' ./internal/core && \
	  sleep $(BENCH_COOLDOWN) && \
	  GOGC=off $(GO) test -bench=. -benchmem -benchtime=100000x -count=5 -run='^$$' ./internal/sim ./internal/protocol && \
	  sleep $(BENCH_COOLDOWN) && \
	  $(GO) test -bench=LoopbackDispatch -benchmem -benchtime=200x -count=3 -run='^$$' ./internal/remote && \
	  sleep $(BENCH_COOLDOWN) && \
	  $(GO) test -bench=Fig6AnalyticModel -benchmem -benchtime=200x -count=3 -run='^$$' . && \
	  sleep $(BENCH_COOLDOWN) && \
	  $(GO) test -bench=. -benchmem -benchtime=3x -count=5 -run='^$$' . ; } \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT)

# benchsmoke compiles and runs every benchmark once, without recording.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-check compares the two newest committed BENCH_PR<N>.json records
# and fails on any allocs/op increase or a >15% ns/op regression. Use
# `go run ./cmd/benchcheck -base BENCH_PR<N>.json` to diff the newest
# record against an arbitrary older baseline instead of the adjacent one.
bench-check:
	$(GO) run ./cmd/benchcheck

# profile runs the full-scale reproduction under -cpuprofile/-memprofile
# (single worker, so the profile samples the simulator rather than the
# sweep fan-out), drops the artifacts under profiles/, and prints the
# top-10 summaries of each — the before/after evidence perf PRs attach.
# Artifacts are overwritten in place and gitignored; copy a "before"
# profile aside prior to making changes.
PROFILE_DIR ?= profiles
profile:
	@mkdir -p $(PROFILE_DIR)
	$(GO) build -o $(PROFILE_DIR)/paperrepro ./cmd/paperrepro
	$(PROFILE_DIR)/paperrepro -scale 1.0 -parallel 1 \
		-cpuprofile $(PROFILE_DIR)/cpu.pprof -memprofile $(PROFILE_DIR)/mem.pprof >/dev/null
	@echo "== CPU top-10 (flat) =="
	@$(GO) tool pprof -top -nodecount=10 $(PROFILE_DIR)/paperrepro $(PROFILE_DIR)/cpu.pprof
	@echo "== Heap top-10 (alloc_space) =="
	@$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space $(PROFILE_DIR)/paperrepro $(PROFILE_DIR)/mem.pprof
