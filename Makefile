GO ?= go
# bench pipes go test into benchjson; pipefail keeps a failing benchmark
# run from silently writing an incomplete BENCH_PR2.json.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -c

.PHONY: check fmt vet build test race bench benchsmoke

# check is the full gate: formatting, vet, build, the test suite under
# the race detector (the sweep engine is explicitly designed and tested
# to be race-clean), and a one-iteration benchmark smoke run so the
# benches cannot silently rot.
check: fmt vet build race benchsmoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark — the per-table/figure study benches plus
# the hot-path microbenches (Observe, KernelSchedule) — with -benchmem,
# and records ns/op, B/op, allocs/op, and the headline metrics to
# BENCH_PR2.json via cmd/benchjson. The JSON is committed so perf PRs
# diff against the previous trajectory point.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' . ./internal/core ./internal/sim \
		| $(GO) run ./cmd/benchjson -o BENCH_PR2.json

# benchsmoke compiles and runs every benchmark once, without recording.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...
