package specdsm

import (
	"context"
	"fmt"
	"strings"

	"specdsm/internal/machine"
	"specdsm/internal/report"
	"specdsm/internal/sweep"
	"specdsm/internal/workload"
)

// Figure9Aggregate is Figure 9 across several workload-generation seeds:
// mean and standard deviation of normalized execution time per mode.
type Figure9Aggregate struct {
	App     string
	Seeds   int
	FRMean  float64
	FRStd   float64
	SWIMean float64
	SWIStd  float64
	// Failed counts (seed, app) cells dropped from the aggregate because
	// at least one of their mode runs failed under KeepGoing.
	Failed int
}

// SpeculationStudySeeds repeats the speculation study across seeds and
// aggregates Figure 9 per application. It quantifies how sensitive the
// reproduction's speedups are to the synthetic workloads' randomness.
//
// This is the scalable study: the full seeds×apps×modes simulation
// matrix streams through the cfg.Parallel-wide worker pool's bounded
// merge window into online per-application accumulators
// (report.Grouped), so peak memory is O(apps + window) no matter how
// many seeds the sweep covers — runs are folded into mean/std as they
// arrive and then dropped, never collected. Workloads are generated
// lazily inside each job (deduplicated by the process-wide generation
// cache), aggregation order is (seeds outer, cfg.Apps inner),
// independent of completion order, and cfg's checkpoint fields make the
// sweep resumable at single-simulation granularity.
func SpeculationStudySeeds(cfg StudyConfig, seeds []int64) ([]Figure9Aggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("specdsm: no seeds")
	}
	cfg = cfg.withDefaults()
	nApps, nModes := len(cfg.Apps), len(specModes)
	n := len(seeds) * nApps * nModes
	var fr, swi report.Grouped
	// failed is lazily allocated: it only exists on runs where some
	// (seed, app) cell actually failed under KeepGoing.
	var failed map[string]int
	// triple is the assembly window: the ordered merge delivers runs
	// (seed, app, mode)-major, so every nModes deliveries complete one
	// (seed, app) cell, which normalizes against its own Base run and
	// folds into that application's accumulators. Under KeepGoing a cell
	// with any failed mode is counted and skipped instead of folded.
	triple := make([]modeRun, 0, nModes)
	push := func(j int, r *RunResult, errText string) error {
		triple = append(triple, modeRun{r: r, errText: errText})
		if len(triple) < nModes {
			return nil
		}
		app := cfg.Apps[(j/nModes)%nApps]
		if tripleFailure(triple) != "" {
			if failed == nil {
				failed = map[string]int{}
			}
			failed[app]++
		} else {
			base := float64(triple[0].r.Cycles)
			fr.Add(app, float64(triple[1].r.Cycles)/base*100)
			swi.Add(app, float64(triple[2].r.Cycles)/base*100)
		}
		triple = triple[:0]
		return nil
	}
	var fail sweep.FailFunc
	if cfg.KeepGoing {
		fail = func(j int, jerr error) error { return push(j, nil, jerr.Error()) }
	}
	rs := cfg.remoteSpec("seeds")
	rs.Seeds = seeds
	err := streamStudy(cfg, rs, n, fmt.Sprintf("|seeds=%v", seeds), seedsJob(cfg, seeds),
		func(j int, r *RunResult) error { return push(j, r, "") },
		fail)
	if err != nil {
		return nil, err
	}
	out := make([]Figure9Aggregate, 0, nApps)
	for _, app := range cfg.Apps {
		f, s := fr.Get(app), swi.Get(app)
		if f == nil {
			if failed[app] > 0 {
				out = append(out, Figure9Aggregate{App: app, Failed: failed[app]})
			}
			continue
		}
		out = append(out, Figure9Aggregate{
			App:    app,
			Seeds:  int(f.N()),
			FRMean: f.Mean(), FRStd: f.Std(),
			SWIMean: s.Mean(), SWIStd: s.Std(),
			Failed: failed[app],
		})
	}
	return out, nil
}

// seedsJob builds the multi-seed speculation study's job function:
// (seed, app, mode)-major over the seeds×apps×modes matrix. Shared
// between the in-process pool and remote workers.
func seedsJob(cfg StudyConfig, seeds []int64) func(context.Context, *machine.Arena, int) (*RunResult, error) {
	apps, baseWP, checks := cfg.Apps, cfg.workloadParams(), cfg.DisableChecks
	nApps, nModes := len(apps), len(specModes)
	return func(_ context.Context, arena *machine.Arena, j int) (*RunResult, error) {
		wp := baseWP
		wp.Seed = seeds[j/(nApps*nModes)]
		if wp.Seed == 0 {
			wp.Seed = 1
		}
		w, err := AppWorkload(apps[(j/nModes)%nApps], wp)
		if err != nil {
			return nil, err
		}
		return runInArena(arena, w, MachineOptions{
			Mode:          specModes[j%nModes],
			DisableChecks: checks,
		})
	}
}

// RenderFigure9Aggregate prints the multi-seed Figure 9.
func RenderFigure9Aggregate(rows []Figure9Aggregate) string {
	t := report.NewTable("Figure 9 across seeds: normalized execution time, mean ± std",
		"Application", "Seeds", "FR-DSM", "SWI-DSM")
	var failed int
	for _, r := range rows {
		failed += r.Failed
		if r.Seeds == 0 {
			t.AddRow(r.App, "0", "FAILED", "FAILED")
			continue
		}
		t.AddRow(r.App, fmt.Sprint(r.Seeds),
			fmt.Sprintf("%5.1f ± %4.1f", r.FRMean, r.FRStd),
			fmt.Sprintf("%5.1f ± %4.1f", r.SWIMean, r.SWIStd))
	}
	if failed > 0 {
		t.AddNote("%d (seed, app) cell(s) dropped: at least one mode run failed", failed)
	}
	return t.String()
}

// RTLPoint is one row of the empirical remote-to-local sweep.
type RTLPoint struct {
	// Flight is the configured network flight latency in cycles.
	Flight int
	// RTL is the measured remote-to-local latency ratio for a clean
	// two-hop read ( (258 + 2·flight) / 104 with default node timing ).
	RTL float64
	// BaseCycles / SWICycles are the measured execution times.
	BaseCycles int64
	SWICycles  int64
	// Speedup is Base/SWI.
	Speedup float64
	// Failed marks a keep-going FAILED point (per-mode error text); the
	// cycle counts and speedup are zero.
	Failed string
}

// RTLSweep measures SWI-DSM's benefit as the interconnect slows down —
// the empirical analogue of Figure 6's bottom-right panel: the higher the
// remote-to-local ratio (clusters like NUMA-Q), the more a speculative
// coherent DSM helps. Runs with default parallelism (one worker per
// CPU); use RTLSweepParallel to pin the worker count.
func RTLSweep(app string, p WorkloadParams, flights []int) ([]RTLPoint, error) {
	return RTLSweepParallel(app, p, flights, 0)
}

// RTLSweepParallel is RTLSweep on a parallel-wide worker pool (0 or
// negative selects runtime.NumCPU()). The flight×{Base, SWI} simulation
// matrix fans out as independent jobs; output is identical for every
// worker count.
func RTLSweepParallel(app string, p WorkloadParams, flights []int, parallel int) ([]RTLPoint, error) {
	var out []RTLPoint
	err := RTLSweepStream(StudyConfig{Parallel: parallel}, app, p, flights,
		func(_ int, pt RTLPoint) error {
			out = append(out, pt)
			return nil
		})
	return out, err
}

// RTLSweepStream is the streaming rtl sweep: each flight point is
// emitted (in flight order, regardless of completion order) as soon as
// its Base and SWI runs merge, instead of collecting the whole sweep.
// Only cfg's execution fields matter — Parallel, OnJobDone/Progress,
// and the checkpoint fields, which make the sweep resumable per
// simulation; workload shape comes from p. Returning an error from emit
// stops the sweep.
func RTLSweepStream(cfg StudyConfig, app string, p WorkloadParams, flights []int, emit func(i int, pt RTLPoint) error) error {
	if len(flights) == 0 {
		flights = []int{20, 80, 200, 320}
	}
	cfg = cfg.withDefaults()
	n := 2 * len(flights)
	w, err := AppWorkload(app, p)
	if err != nil {
		return err
	}
	// pair is the assembly window for the current flight's {Base, SWI}
	// runs; under KeepGoing a pair with any failed run emits a FAILED
	// point instead of a ratio.
	pair := make([]modeRun, 0, 2)
	push := func(j int, r *RunResult, errText string) error {
		pair = append(pair, modeRun{r: r, errText: errText})
		if len(pair) < 2 {
			return nil
		}
		i, f := j/2, flights[j/2]
		pt := RTLPoint{Flight: f, RTL: (258 + 2*float64(f)) / 104}
		if ft := rtlFailure(pair); ft != "" {
			pt.Failed = ft
		} else {
			pt.BaseCycles = pair[0].r.Cycles
			pt.SWICycles = pair[1].r.Cycles
			pt.Speedup = float64(pair[0].r.Cycles) / float64(pair[1].r.Cycles)
		}
		pair = pair[:0]
		return emit(i, pt)
	}
	var fail sweep.FailFunc
	if cfg.KeepGoing {
		fail = func(j int, jerr error) error { return push(j, nil, jerr.Error()) }
	}
	rs := cfg.remoteSpec("rtl")
	rs.RTLApp, rs.RTLParams, rs.RTLFlights = app, p, flights
	return streamStudy(cfg, rs, n, fmt.Sprintf("|rtl=%s/%+v/%v", app, p, flights), rtlJob(w, flights),
		func(j int, r *RunResult) error { return push(j, r, "") },
		fail)
}

// rtlJob builds the rtl sweep's job function: flight j/2 of the axis,
// Base for even j, SWI for odd. Shared between the in-process pool and
// remote workers (which regenerate w from the spec's app and params).
func rtlJob(w Workload, flights []int) func(context.Context, *machine.Arena, int) (*RunResult, error) {
	return func(_ context.Context, arena *machine.Arena, j int) (*RunResult, error) {
		mode := ModeBase
		if j%2 == 1 {
			mode = ModeSWI
		}
		return runInArena(arena, w, MachineOptions{Mode: mode, NetworkFlight: flights[j/2], DisableChecks: true})
	}
}

// rtlFailure joins the failed modes of an assembled {Base, SWI} pair.
func rtlFailure(pair []modeRun) string {
	var parts []string
	for k, e := range pair {
		if e.errText == "" {
			continue
		}
		mode := ModeBase
		if k == 1 {
			mode = ModeSWI
		}
		parts = append(parts, fmt.Sprintf("%s: %s", mode, e.errText))
	}
	return strings.Join(parts, "; ")
}

// RenderRTLSweep prints the sweep.
func RenderRTLSweep(app string, points []RTLPoint) string {
	t := report.NewTable(
		fmt.Sprintf("Empirical rtl sweep (%s): SWI-DSM speedup vs interconnect latency", app),
		"flight (cycles)", "rtl", "Base cycles", "SWI cycles", "speedup")
	for _, p := range points {
		if p.Failed != "" {
			t.AddRow(fmt.Sprint(p.Flight), report.F1(p.RTL), "FAILED", "FAILED", "FAILED")
			t.AddNote("flight %d failed: %s", p.Flight, p.Failed)
			continue
		}
		t.AddRow(fmt.Sprint(p.Flight), report.F1(p.RTL),
			fmt.Sprint(p.BaseCycles), fmt.Sprint(p.SWICycles),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	t.AddNote("Figure 6 bottom-right, measured: higher rtl (cluster interconnects) gains more")
	return t.String()
}

// AppCharacterization summarizes a generated workload's sharing structure
// without simulating it (a static property of the generator).
type AppCharacterization struct {
	App    string
	Ops    int
	Reads  int
	Writes int
	// SharedBlocks counts blocks accessed by more than one node.
	Blocks       int
	SharedBlocks int
	// MeanReadDegree is the mean number of distinct reader nodes per
	// shared block.
	MeanReadDegree float64
	// MaxReadDegree is the widest read sharing observed.
	MaxReadDegree int
	// MigratoryBlocks counts shared blocks written by 2+ distinct nodes.
	MigratoryBlocks int
	Barriers        int
	Locks           int
	// Failed marks a keep-going FAILED row; every count is zero.
	Failed string
}

// Characterize statically analyzes the generated programs of each app.
// Generation (served by the process-wide cache, so a later simulation
// study reuses the same programs) and analysis run per-application on
// the cfg.Parallel-wide worker pool.
func Characterize(cfg StudyConfig) ([]AppCharacterization, error) {
	cfg = cfg.withDefaults()
	p, err := cfg.pool(len(cfg.Apps))
	if err != nil {
		return nil, err
	}
	out := make([]AppCharacterization, 0, len(cfg.Apps))
	emit := func(_ int, c AppCharacterization) error {
		out = append(out, c)
		return nil
	}
	fail := failRow(cfg, emit, func(i int, errText string) AppCharacterization {
		return AppCharacterization{App: cfg.Apps[i], Failed: errText}
	})
	err = sweep.StreamFail(context.Background(), p, len(cfg.Apps),
		func(_ context.Context, i int) (AppCharacterization, error) {
			name := cfg.Apps[i]
			app, ok := workload.ByName(name)
			if !ok {
				return AppCharacterization{}, fmt.Errorf("specdsm: unknown application %q", name)
			}
			progs := workload.Programs(app, workload.Params{
				Nodes:      cfg.Nodes,
				Iterations: cfg.Iterations,
				Scale:      cfg.Scale,
				Seed:       cfg.Seed,
			})
			return characterize(name, progs), nil
		},
		emit, fail)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func characterize(name string, progs []machine.Program) AppCharacterization {
	c := AppCharacterization{App: name}
	readers := map[uint64]map[int]bool{}
	writers := map[uint64]map[int]bool{}
	touched := map[uint64]map[int]bool{}
	for n, prog := range progs {
		c.Ops += len(prog)
		for _, op := range prog {
			switch op.Kind {
			case machine.OpRead:
				c.Reads++
				addSet(readers, uint64(op.Addr), n)
				addSet(touched, uint64(op.Addr), n)
			case machine.OpWrite:
				c.Writes++
				addSet(writers, uint64(op.Addr), n)
				addSet(touched, uint64(op.Addr), n)
			case machine.OpBarrier:
				if n == 0 {
					c.Barriers++
				}
			case machine.OpLock:
				if n == 0 {
					c.Locks++
				}
			}
		}
	}
	c.Blocks = len(touched)
	var degreeSum int
	for addr, nodes := range touched {
		if len(nodes) < 2 {
			continue
		}
		c.SharedBlocks++
		deg := len(readers[addr])
		degreeSum += deg
		if deg > c.MaxReadDegree {
			c.MaxReadDegree = deg
		}
		if len(writers[addr]) >= 2 {
			c.MigratoryBlocks++
		}
	}
	if c.SharedBlocks > 0 {
		c.MeanReadDegree = float64(degreeSum) / float64(c.SharedBlocks)
	}
	return c
}

func addSet(m map[uint64]map[int]bool, k uint64, n int) {
	s := m[k]
	if s == nil {
		s = map[int]bool{}
		m[k] = s
	}
	s[n] = true
}

// RenderCharacterization prints the per-application sharing structure.
func RenderCharacterization(rows []AppCharacterization) string {
	t := report.NewTable("Workload characterization (static, per generated run)",
		"Application", "ops", "reads", "writes", "blocks", "shared",
		"read deg (mean/max)", "migratory", "barriers", "locks")
	for _, r := range rows {
		if r.Failed != "" {
			t.AddRow(r.App,
				"FAILED", "FAILED", "FAILED", "FAILED", "FAILED",
				"FAILED", "FAILED", "FAILED", "FAILED")
			t.AddNote("%s failed: %s", r.App, r.Failed)
			continue
		}
		t.AddRow(r.App,
			fmt.Sprint(r.Ops), fmt.Sprint(r.Reads), fmt.Sprint(r.Writes),
			fmt.Sprint(r.Blocks), fmt.Sprint(r.SharedBlocks),
			fmt.Sprintf("%.1f / %d", r.MeanReadDegree, r.MaxReadDegree),
			fmt.Sprint(r.MigratoryBlocks),
			fmt.Sprint(r.Barriers), fmt.Sprint(r.Locks))
	}
	return t.String()
}
