package specdsm

import (
	"context"
	"fmt"
	"math"

	"specdsm/internal/machine"
	"specdsm/internal/report"
	"specdsm/internal/sweep"
	"specdsm/internal/workload"
)

// Figure9Aggregate is Figure 9 across several workload-generation seeds:
// mean and standard deviation of normalized execution time per mode.
type Figure9Aggregate struct {
	App     string
	Seeds   int
	FRMean  float64
	FRStd   float64
	SWIMean float64
	SWIStd  float64
}

// SpeculationStudySeeds repeats the speculation study across seeds and
// aggregates Figure 9 per application. It quantifies how sensitive the
// reproduction's speedups are to the synthetic workloads' randomness.
// The full seeds×apps×modes simulation matrix fans out across one
// cfg.Parallel-wide worker pool; aggregation order is (seeds outer,
// cfg.Apps inner), independent of completion order.
func SpeculationStudySeeds(cfg StudyConfig, seeds []int64) ([]Figure9Aggregate, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("specdsm: no seeds")
	}
	cfg = cfg.withDefaults()
	// Flatten every (seed, app, mode) cell into one job list so
	// parallelism is never limited by the seed count. Workloads are
	// generated up front (cheap, and read-only once built); each is
	// shared by its three mode runs.
	nApps, nModes := len(cfg.Apps), len(specModes)
	workloads := make([]Workload, len(seeds)*nApps)
	for s, seed := range seeds {
		wp := cfg.workloadParams()
		wp.Seed = seed
		if wp.Seed == 0 {
			wp.Seed = 1
		}
		for i, app := range cfg.Apps {
			w, err := AppWorkload(app, wp)
			if err != nil {
				return nil, err
			}
			workloads[s*nApps+i] = w
		}
	}
	runs, err := sweep.MapWorker(context.Background(), cfg.pool(), len(workloads)*nModes, machine.NewArena,
		func(_ context.Context, arena *machine.Arena, j int) (*RunResult, error) {
			return runInArena(arena, workloads[j/nModes], MachineOptions{
				Mode:          specModes[j%nModes],
				DisableChecks: cfg.DisableChecks,
			})
		})
	if err != nil {
		return nil, err
	}
	acc := map[string]*struct {
		fr, swi []float64
	}{}
	var order []string
	for s := range seeds {
		study := assembleSpeculation(cfg.Apps, runs[s*nApps*nModes:(s+1)*nApps*nModes])
		for _, row := range Figure9(study) {
			a := acc[row.App]
			if a == nil {
				a = &struct{ fr, swi []float64 }{}
				acc[row.App] = a
				order = append(order, row.App)
			}
			a.fr = append(a.fr, row.Total(ModeFR))
			a.swi = append(a.swi, row.Total(ModeSWI))
		}
	}
	var out []Figure9Aggregate
	for _, app := range order {
		a := acc[app]
		frM, frS := meanStd(a.fr)
		swiM, swiS := meanStd(a.swi)
		out = append(out, Figure9Aggregate{
			App:    app,
			Seeds:  len(seeds),
			FRMean: frM, FRStd: frS,
			SWIMean: swiM, SWIStd: swiS,
		})
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// RenderFigure9Aggregate prints the multi-seed Figure 9.
func RenderFigure9Aggregate(rows []Figure9Aggregate) string {
	t := report.NewTable("Figure 9 across seeds: normalized execution time, mean ± std",
		"Application", "Seeds", "FR-DSM", "SWI-DSM")
	for _, r := range rows {
		t.AddRow(r.App, fmt.Sprint(r.Seeds),
			fmt.Sprintf("%5.1f ± %4.1f", r.FRMean, r.FRStd),
			fmt.Sprintf("%5.1f ± %4.1f", r.SWIMean, r.SWIStd))
	}
	return t.String()
}

// RTLPoint is one row of the empirical remote-to-local sweep.
type RTLPoint struct {
	// Flight is the configured network flight latency in cycles.
	Flight int
	// RTL is the measured remote-to-local latency ratio for a clean
	// two-hop read ( (258 + 2·flight) / 104 with default node timing ).
	RTL float64
	// BaseCycles / SWICycles are the measured execution times.
	BaseCycles int64
	SWICycles  int64
	// Speedup is Base/SWI.
	Speedup float64
}

// RTLSweep measures SWI-DSM's benefit as the interconnect slows down —
// the empirical analogue of Figure 6's bottom-right panel: the higher the
// remote-to-local ratio (clusters like NUMA-Q), the more a speculative
// coherent DSM helps. Runs with default parallelism (one worker per
// CPU); use RTLSweepParallel to pin the worker count.
func RTLSweep(app string, p WorkloadParams, flights []int) ([]RTLPoint, error) {
	return RTLSweepParallel(app, p, flights, 0)
}

// RTLSweepParallel is RTLSweep on a parallel-wide worker pool (0 or
// negative selects runtime.NumCPU()). The flight×{Base, SWI} simulation
// matrix fans out as independent jobs; output is identical for every
// worker count.
func RTLSweepParallel(app string, p WorkloadParams, flights []int, parallel int) ([]RTLPoint, error) {
	if len(flights) == 0 {
		flights = []int{20, 80, 200, 320}
	}
	w, err := AppWorkload(app, p)
	if err != nil {
		return nil, err
	}
	runs, err := sweep.MapWorker(context.Background(), sweep.New(parallel), 2*len(flights), machine.NewArena,
		func(_ context.Context, arena *machine.Arena, j int) (*RunResult, error) {
			mode := ModeBase
			if j%2 == 1 {
				mode = ModeSWI
			}
			return runInArena(arena, w, MachineOptions{Mode: mode, NetworkFlight: flights[j/2], DisableChecks: true})
		})
	if err != nil {
		return nil, err
	}
	var out []RTLPoint
	for i, f := range flights {
		base, swi := runs[2*i], runs[2*i+1]
		out = append(out, RTLPoint{
			Flight:     f,
			RTL:        (258 + 2*float64(f)) / 104,
			BaseCycles: base.Cycles,
			SWICycles:  swi.Cycles,
			Speedup:    float64(base.Cycles) / float64(swi.Cycles),
		})
	}
	return out, nil
}

// RenderRTLSweep prints the sweep.
func RenderRTLSweep(app string, points []RTLPoint) string {
	t := report.NewTable(
		fmt.Sprintf("Empirical rtl sweep (%s): SWI-DSM speedup vs interconnect latency", app),
		"flight (cycles)", "rtl", "Base cycles", "SWI cycles", "speedup")
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.Flight), report.F1(p.RTL),
			fmt.Sprint(p.BaseCycles), fmt.Sprint(p.SWICycles),
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	t.AddNote("Figure 6 bottom-right, measured: higher rtl (cluster interconnects) gains more")
	return t.String()
}

// AppCharacterization summarizes a generated workload's sharing structure
// without simulating it (a static property of the generator).
type AppCharacterization struct {
	App    string
	Ops    int
	Reads  int
	Writes int
	// SharedBlocks counts blocks accessed by more than one node.
	Blocks       int
	SharedBlocks int
	// MeanReadDegree is the mean number of distinct reader nodes per
	// shared block.
	MeanReadDegree float64
	// MaxReadDegree is the widest read sharing observed.
	MaxReadDegree int
	// MigratoryBlocks counts shared blocks written by 2+ distinct nodes.
	MigratoryBlocks int
	Barriers        int
	Locks           int
}

// Characterize statically analyzes the generated programs of each app.
// Generation (served by the process-wide cache, so a later simulation
// study reuses the same programs) and analysis run per-application on
// the cfg.Parallel-wide worker pool.
func Characterize(cfg StudyConfig) ([]AppCharacterization, error) {
	cfg = cfg.withDefaults()
	return sweep.Map(context.Background(), cfg.pool(), len(cfg.Apps),
		func(_ context.Context, i int) (AppCharacterization, error) {
			name := cfg.Apps[i]
			app, ok := workload.ByName(name)
			if !ok {
				return AppCharacterization{}, fmt.Errorf("specdsm: unknown application %q", name)
			}
			progs := workload.Programs(app, workload.Params{
				Nodes:      cfg.Nodes,
				Iterations: cfg.Iterations,
				Scale:      cfg.Scale,
				Seed:       cfg.Seed,
			})
			return characterize(name, progs), nil
		})
}

func characterize(name string, progs []machine.Program) AppCharacterization {
	c := AppCharacterization{App: name}
	readers := map[uint64]map[int]bool{}
	writers := map[uint64]map[int]bool{}
	touched := map[uint64]map[int]bool{}
	for n, prog := range progs {
		c.Ops += len(prog)
		for _, op := range prog {
			switch op.Kind {
			case machine.OpRead:
				c.Reads++
				addSet(readers, uint64(op.Addr), n)
				addSet(touched, uint64(op.Addr), n)
			case machine.OpWrite:
				c.Writes++
				addSet(writers, uint64(op.Addr), n)
				addSet(touched, uint64(op.Addr), n)
			case machine.OpBarrier:
				if n == 0 {
					c.Barriers++
				}
			case machine.OpLock:
				if n == 0 {
					c.Locks++
				}
			}
		}
	}
	c.Blocks = len(touched)
	var degreeSum int
	for addr, nodes := range touched {
		if len(nodes) < 2 {
			continue
		}
		c.SharedBlocks++
		deg := len(readers[addr])
		degreeSum += deg
		if deg > c.MaxReadDegree {
			c.MaxReadDegree = deg
		}
		if len(writers[addr]) >= 2 {
			c.MigratoryBlocks++
		}
	}
	if c.SharedBlocks > 0 {
		c.MeanReadDegree = float64(degreeSum) / float64(c.SharedBlocks)
	}
	return c
}

func addSet(m map[uint64]map[int]bool, k uint64, n int) {
	s := m[k]
	if s == nil {
		s = map[int]bool{}
		m[k] = s
	}
	s[n] = true
}

// RenderCharacterization prints the per-application sharing structure.
func RenderCharacterization(rows []AppCharacterization) string {
	t := report.NewTable("Workload characterization (static, per generated run)",
		"Application", "ops", "reads", "writes", "blocks", "shared",
		"read deg (mean/max)", "migratory", "barriers", "locks")
	for _, r := range rows {
		t.AddRow(r.App,
			fmt.Sprint(r.Ops), fmt.Sprint(r.Reads), fmt.Sprint(r.Writes),
			fmt.Sprint(r.Blocks), fmt.Sprint(r.SharedBlocks),
			fmt.Sprintf("%.1f / %d", r.MeanReadDegree, r.MaxReadDegree),
			fmt.Sprint(r.MigratoryBlocks),
			fmt.Sprint(r.Barriers), fmt.Sprint(r.Locks))
	}
	return t.String()
}
