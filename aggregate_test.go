package specdsm_test

import (
	"strings"
	"testing"

	"specdsm"
)

func TestSpeculationStudySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed study is slow for -short")
	}
	cfg := specdsm.StudyConfig{
		Apps:          []string{"em3d", "tomcatv"},
		Nodes:         8,
		Scale:         0.25,
		Iterations:    4,
		DisableChecks: true,
	}
	agg, err := specdsm.SpeculationStudySeeds(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 2 {
		t.Fatalf("%d rows", len(agg))
	}
	for _, r := range agg {
		if r.Seeds != 3 {
			t.Fatalf("%s: seeds = %d", r.App, r.Seeds)
		}
		if r.FRMean <= 0 || r.SWIMean <= 0 {
			t.Fatalf("%s: degenerate means %+v", r.App, r)
		}
		// Both speculative modes beat base on these two apps, robustly
		// across seeds.
		if r.SWIMean >= 100 {
			t.Errorf("%s: SWI mean %.1f >= 100", r.App, r.SWIMean)
		}
		if r.FRStd < 0 || r.SWIStd < 0 {
			t.Fatalf("%s: negative std", r.App)
		}
	}
	out := specdsm.RenderFigure9Aggregate(agg)
	if !strings.Contains(out, "em3d") || !strings.Contains(out, "±") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestSpeculationStudySeedsErrors(t *testing.T) {
	if _, err := specdsm.SpeculationStudySeeds(specdsm.StudyConfig{}, nil); err == nil {
		t.Fatal("expected no-seeds error")
	}
}

func TestCharacterize(t *testing.T) {
	rows, err := specdsm.Characterize(specdsm.StudyConfig{Scale: 0.25, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	byApp := map[string]specdsm.AppCharacterization{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.Ops == 0 || r.Reads == 0 || r.Writes == 0 || r.Blocks == 0 {
			t.Fatalf("%s: degenerate %+v", r.App, r)
		}
		if r.SharedBlocks == 0 {
			t.Fatalf("%s: no shared blocks", r.App)
		}
		if r.Barriers == 0 {
			t.Fatalf("%s: no barriers", r.App)
		}
	}
	// unstructured has the widest read sharing of the suite on average
	// (individual blocks elsewhere — e.g., ocean's global reduction sum —
	// can reach full-machine degree).
	u := byApp["unstructured"]
	for app, r := range byApp {
		if app == "unstructured" {
			continue
		}
		if r.MeanReadDegree > u.MeanReadDegree {
			t.Errorf("%s mean read degree %.1f exceeds unstructured's %.1f",
				app, r.MeanReadDegree, u.MeanReadDegree)
		}
	}
	// moldyn and unstructured have migratory blocks; em3d does not.
	if byApp["moldyn"].MigratoryBlocks == 0 || byApp["unstructured"].MigratoryBlocks == 0 {
		t.Error("migratory apps show no migratory blocks")
	}
	if byApp["em3d"].MigratoryBlocks != 0 {
		t.Error("em3d should have single-writer blocks only")
	}
	// ocean is the only lock user.
	if byApp["ocean"].Locks == 0 {
		t.Error("ocean should use locks")
	}

	out := specdsm.RenderCharacterization(rows)
	if !strings.Contains(out, "unstructured") {
		t.Fatal("render missing content")
	}
}

func TestCharacterizeUnknownApp(t *testing.T) {
	if _, err := specdsm.Characterize(specdsm.StudyConfig{Apps: []string{"nope"}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRTLSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow for -short")
	}
	points, err := specdsm.RTLSweep("em3d", specdsm.WorkloadParams{
		Nodes: 8, Iterations: 4, Scale: 0.25,
	}, []int{20, 80, 240})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].RTL <= points[i-1].RTL {
			t.Fatalf("rtl not increasing: %+v", points)
		}
		// Figure 6 bottom-right: benefit grows with rtl.
		if points[i].Speedup < points[i-1].Speedup {
			t.Fatalf("speedup fell as rtl rose: %.3f -> %.3f (flight %d -> %d)",
				points[i-1].Speedup, points[i].Speedup,
				points[i-1].Flight, points[i].Flight)
		}
	}
	if points[len(points)-1].Speedup <= 1.0 {
		t.Fatalf("no benefit at high rtl: %+v", points[len(points)-1])
	}
	out := specdsm.RenderRTLSweep("em3d", points)
	if !strings.Contains(out, "speedup") {
		t.Fatal("render missing content")
	}
}

func TestNetworkFlightValidation(t *testing.T) {
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Nodes: 4, Iterations: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := specdsm.Run(w, specdsm.MachineOptions{NetworkFlight: -5}); err == nil {
		t.Fatal("expected negative-latency error")
	}
}
