package specdsm

import (
	"reflect"
	"testing"

	"specdsm/internal/machine"
)

// TestArenaStudyRowEquivalence pins the run-arena contract at the study
// level: one arena reused across every (app, seed, mode) cell produces
// run results deep-equal to a freshly built machine per cell, for two
// applications, two seeds, and all three DSM modes. This is what lets
// the study drivers thread one arena per sweep worker while keeping
// output byte-identical to the fresh-build path.
func TestArenaStudyRowEquivalence(t *testing.T) {
	arena := machine.NewArena()
	for _, app := range []string{"em3d", "moldyn"} {
		for _, seed := range []int64{11, 23} {
			w, err := AppWorkload(app, WorkloadParams{
				Nodes: 8, Iterations: 3, Scale: 0.25, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []Mode{ModeBase, ModeFR, ModeSWI} {
				opts := MachineOptions{Mode: mode}
				fresh, err := Run(w, opts)
				if err != nil {
					t.Fatalf("%s/%s/seed%d fresh: %v", app, mode, seed, err)
				}
				reused, err := runInArena(arena, w, opts)
				if err != nil {
					t.Fatalf("%s/%s/seed%d arena: %v", app, mode, seed, err)
				}
				if !reflect.DeepEqual(fresh, reused) {
					t.Errorf("%s/%s/seed%d: arena row diverged from fresh build\nfresh:  %+v\nreused: %+v",
						app, mode, seed, fresh, reused)
				}
			}
		}
	}
	// Base, FR, and SWI differ in configuration; each gets one machine.
	if n := arena.Machines(); n != 3 {
		t.Errorf("arena holds %d machines, want 3 (one per mode)", n)
	}
}
