package specdsm_test

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its artifact from the simulator and prints it once
// (run with -v or look at the bench log), reporting a headline scalar as
// a custom metric so regressions in the reproduced *shape* are visible in
// benchmark diffs.
//
//	go test -bench=. -benchmem
//	go test -bench=Fig9 -benchtime=1x -v

import (
	"fmt"
	"sync"
	"testing"

	"specdsm"
)

// benchCfg keeps bench runs fast while preserving the paper's shapes.
func benchCfg() specdsm.StudyConfig {
	return specdsm.StudyConfig{Scale: 0.5, DisableChecks: true}
}

var (
	printMu sync.Mutex
	printed = map[string]bool{}
)

func printOnce(b *testing.B, name, text string) {
	printMu.Lock()
	defer printMu.Unlock()
	if printed[name] {
		return
	}
	printed[name] = true
	b.Logf("\n%s", text)
}

// BenchmarkFig6AnalyticModel regenerates the four panels of Figure 6 from
// Equations 1-2.
func BenchmarkFig6AnalyticModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels := specdsm.Figure6()
		if len(panels) != 4 {
			b.Fatalf("got %d panels", len(panels))
		}
	}
	printOnce(b, "fig6", specdsm.RenderFigure6())
	// Headline: speedup at c=1 with perfect prediction equals rtl.
	b.ReportMetric(specdsm.AnalyticSpeedup(specdsm.AnalyticParams{C: 1, F: 1, P: 1, RTL: 4, N: 2}),
		"speedup@p=1,c=1")
}

func predictorStudy(b *testing.B, depths []int) []specdsm.AppPrediction {
	b.Helper()
	cfg := benchCfg()
	cfg.Depths = depths
	study, err := specdsm.PredictorStudy(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return study
}

// BenchmarkFig7PredictorAccuracy regenerates Figure 7: Cosmos vs MSP vs
// VMSP accuracy at history depth one across the seven applications.
func BenchmarkFig7PredictorAccuracy(b *testing.B) {
	var rows []specdsm.Figure7Row
	for i := 0; i < b.N; i++ {
		rows = specdsm.Figure7(predictorStudy(b, []int{1}))
	}
	printOnce(b, "fig7", specdsm.RenderFigure7(rows))
	var cosmos, vmsp float64
	for _, r := range rows {
		cosmos += r.Cosmos
		vmsp += r.VMSP
	}
	n := float64(len(rows))
	b.ReportMetric(cosmos/n*100, "meanCosmos%")
	b.ReportMetric(vmsp/n*100, "meanVMSP%")
}

// BenchmarkFig8HistoryDepth regenerates Figure 8: accuracy at history
// depths 1, 2, and 4.
func BenchmarkFig8HistoryDepth(b *testing.B) {
	var rows []specdsm.Figure8Row
	for i := 0; i < b.N; i++ {
		rows = specdsm.Figure8(predictorStudy(b, []int{1, 2, 4}), []int{1, 2, 4})
	}
	printOnce(b, "fig8", specdsm.RenderFigure8(rows))
	// Headline: appbt VMSP reaches ~100% at depth 2 (the paper's example
	// of depth disambiguating the alternating consumers).
	for _, r := range rows {
		if r.App == "appbt" {
			b.ReportMetric(r.Accuracy[specdsm.VMSP][1]*100, "appbtVMSP@d2%")
		}
	}
}

// BenchmarkTable3LearningSpeed regenerates Table 3: fraction of messages
// predicted, and predicted correctly, at depth one.
func BenchmarkTable3LearningSpeed(b *testing.B) {
	var rows []specdsm.Table3Row
	for i := 0; i < b.N; i++ {
		rows = specdsm.Table3(predictorStudy(b, []int{1}))
	}
	printOnce(b, "table3", specdsm.RenderTable3(rows))
	var cov float64
	for _, r := range rows {
		cov += r.Coverage[specdsm.MSP]
	}
	b.ReportMetric(cov/float64(len(rows))*100, "meanMSPcoverage%")
}

// BenchmarkTable4StorageOverhead regenerates Table 4: pattern-table
// entries per block (d=1, d=4) and byte overhead (d=1).
func BenchmarkTable4StorageOverhead(b *testing.B) {
	var rows []specdsm.Table4Row
	for i := 0; i < b.N; i++ {
		rows = specdsm.Table4(predictorStudy(b, []int{1, 4}))
	}
	printOnce(b, "table4", specdsm.RenderTable4(rows))
	var cosmos, vmsp float64
	for _, r := range rows {
		cosmos += r.PTE1[specdsm.Cosmos]
		vmsp += r.PTE1[specdsm.VMSP]
	}
	n := float64(len(rows))
	b.ReportMetric(cosmos/n, "meanCosmosPTE")
	b.ReportMetric(vmsp/n, "meanVMSPPTE")
}

func speculationStudy(b *testing.B) []specdsm.AppSpeculation {
	b.Helper()
	study, err := specdsm.SpeculationStudy(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	return study
}

// BenchmarkFig9SpeculativeDSM regenerates Figure 9: Base-DSM vs FR-DSM vs
// SWI-DSM normalized execution time with its computation/request split.
func BenchmarkFig9SpeculativeDSM(b *testing.B) {
	var rows []specdsm.Figure9Row
	for i := 0; i < b.N; i++ {
		rows = specdsm.Figure9(speculationStudy(b))
	}
	printOnce(b, "fig9", specdsm.RenderFigure9(rows))
	var fr, swi float64
	for _, r := range rows {
		fr += r.Total(specdsm.ModeFR)
		swi += r.Total(specdsm.ModeSWI)
	}
	n := float64(len(rows))
	b.ReportMetric(fr/n, "meanFRexec%")   // paper: ~92
	b.ReportMetric(swi/n, "meanSWIexec%") // paper: ~88
}

// BenchmarkSeedsSpeculation runs the multi-seed Figure 9 aggregate (3
// seeds × 7 apps × 3 modes): the construction-heaviest study and the
// headline workload for the run-arena layer — per-worker machine reuse
// and the workload-generation cache amortize construction across the
// whole matrix.
func BenchmarkSeedsSpeculation(b *testing.B) {
	var agg []specdsm.Figure9Aggregate
	for i := 0; i < b.N; i++ {
		var err error
		agg, err = specdsm.SpeculationStudySeeds(benchCfg(), []int64{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	printOnce(b, "seeds", specdsm.RenderFigure9Aggregate(agg))
	var swi float64
	for _, r := range agg {
		swi += r.SWIMean
	}
	b.ReportMetric(swi/float64(len(agg)), "meanSWIexec%")
}

// BenchmarkTable5Speculation regenerates Table 5: speculation and
// misspeculation frequencies.
func BenchmarkTable5Speculation(b *testing.B) {
	var rows []specdsm.Table5Row
	for i := 0; i < b.N; i++ {
		rows = specdsm.Table5(speculationStudy(b))
	}
	printOnce(b, "table5", specdsm.RenderTable5(rows))
	for _, r := range rows {
		if r.App == "em3d" {
			b.ReportMetric(r.SWIInvalSent, "em3dSWIinval%") // paper: 98
		}
	}
}

// BenchmarkAblationActivePredictor compares the speculative DSM driven by
// each predictor kind (the paper uses VMSP; MSP/Cosmos chain individual
// read predictions) — an ablation of the design choice in §7.4.
func BenchmarkAblationActivePredictor(b *testing.B) {
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Scale: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	base, err := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeBase, DisableChecks: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range specdsm.Kinds() {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			var r *specdsm.RunResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = specdsm.Run(w, specdsm.MachineOptions{
					Mode:          specdsm.ModeSWI,
					Active:        &specdsm.PredictorConfig{Kind: kind, Depth: 1},
					DisableChecks: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles)/float64(base.Cycles)*100, "exec%ofBase")
			b.ReportMetric(float64(r.SpecHits), "specHits")
		})
	}
}

// BenchmarkAblationSpecUpgrade measures the migratory speculative-upgrade
// extension on moldyn (the most migratory of the seven applications).
func BenchmarkAblationSpecUpgrade(b *testing.B) {
	w, err := specdsm.AppWorkload("moldyn", specdsm.WorkloadParams{Scale: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	for _, ext := range []bool{false, true} {
		ext := ext
		name := "off"
		if ext {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var r *specdsm.RunResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = specdsm.Run(w, specdsm.MachineOptions{
					Mode:          specdsm.ModeSWI,
					SpecUpgrades:  ext,
					DisableChecks: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
			b.ReportMetric(float64(r.Upgrades), "upgrades")
		})
	}
}

// BenchmarkAblationConfidence measures the confidence-gating extension on
// ocean, whose per-iteration-reordered lock reduction produces the wrong
// forwards that tax the serialized lock path; gating suppresses them.
func BenchmarkAblationConfidence(b *testing.B) {
	w, err := specdsm.AppWorkload("ocean", specdsm.WorkloadParams{Scale: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	for _, conf := range []int{0, 2} {
		conf := conf
		b.Run(fmt.Sprintf("conf%d", conf), func(b *testing.B) {
			var r *specdsm.RunResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = specdsm.Run(w, specdsm.MachineOptions{
					Mode:          specdsm.ModeFR,
					Active:        &specdsm.PredictorConfig{Kind: specdsm.VMSP, Depth: 1, Confidence: conf},
					DisableChecks: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Cycles), "cycles")
			b.ReportMetric(float64(r.SpecReadUnused), "wrongForwards")
		})
	}
}

// BenchmarkAblationCacheCapacity quantifies the paper's §6 assumption
// ("a remote cache large enough to hold the remote data"): shrinking the
// cache reintroduces capacity misses and erodes SWI-DSM's win on em3d.
func BenchmarkAblationCacheCapacity(b *testing.B) {
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Scale: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	for _, capacity := range []int{0, 256, 64, 24} {
		capacity := capacity
		name := "inf"
		if capacity > 0 {
			name = fmt.Sprintf("%dlines", capacity)
		}
		b.Run(name, func(b *testing.B) {
			var base, swi *specdsm.RunResult
			for i := 0; i < b.N; i++ {
				var err error
				base, err = specdsm.Run(w, specdsm.MachineOptions{
					Mode: specdsm.ModeBase, CacheCapacity: capacity, DisableChecks: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				swi, err = specdsm.Run(w, specdsm.MachineOptions{
					Mode: specdsm.ModeSWI, CacheCapacity: capacity, DisableChecks: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(swi.Cycles)/float64(base.Cycles)*100, "swiExec%ofBase")
			b.ReportMetric(float64(base.Evictions), "baseEvictions")
		})
	}
}

// BenchmarkAblationHistoryDepthCost measures how pattern-table storage
// grows with history depth under re-ordered traffic (the Table 4 blow-up
// that makes deep histories impractical for Cosmos).
func BenchmarkAblationHistoryDepthCost(b *testing.B) {
	cfg := benchCfg()
	cfg.Apps = []string{"unstructured"}
	for _, d := range []int{1, 2, 4} {
		d := d
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			var study []specdsm.AppPrediction
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Depths = []int{d}
				var err error
				study, err = specdsm.PredictorStudy(c)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(study[0].Get(specdsm.Cosmos, d).EntriesPerBlock, "cosmosPTE")
			b.ReportMetric(study[0].Get(specdsm.VMSP, d).EntriesPerBlock, "vmspPTE")
		})
	}
}
