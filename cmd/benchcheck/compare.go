package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Benchmark mirrors one entry of cmd/benchjson's output.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report mirrors cmd/benchjson's emitted document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

type config struct {
	dir          string
	maxNsRegress float64
	base         string   // explicit older baseline record (-base)
	explicit     []string // two explicit files, bypassing discovery
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.dir, "dir", ".", "directory holding BENCH_PR<N>.json records")
	fs.StringVar(&cfg.base, "base", "",
		"compare the newest record against this baseline instead of the second-newest (a path, or a bare BENCH_PR<N>.json name resolved in -dir)")
	fs.Float64Var(&cfg.maxNsRegress, "max-ns-regress", 0.15,
		"maximum tolerated fractional ns/op increase (0.15 = 15%)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	switch fs.NArg() {
	case 0:
	case 2:
		if cfg.base != "" {
			return cfg, fmt.Errorf("-base conflicts with two explicit positional files")
		}
		cfg.explicit = fs.Args()
	default:
		return cfg, fmt.Errorf("expected zero or two positional files, got %d", fs.NArg())
	}
	return cfg, nil
}

var benchFileRe = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// pickFiles returns the (older, newer) records to compare. With explicit
// files they are taken verbatim; otherwise the newest record is the
// highest-numbered BENCH_PR<N>.json in cfg.dir and the baseline is the
// second-newest — or, with -base, an arbitrary older record (the series
// skips generations, so cross-PR comparisons need not be adjacent). An
// empty older path means there is nothing to compare.
func (cfg config) pickFiles() (oldPath, newPath string, err error) {
	if len(cfg.explicit) == 2 {
		return cfg.explicit[0], cfg.explicit[1], nil
	}
	entries, err := os.ReadDir(cfg.dir)
	if err != nil {
		return "", "", err
	}
	type rec struct {
		n    int
		path string
	}
	var recs []rec
	for _, e := range entries {
		m := benchFileRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		recs = append(recs, rec{n: n, path: filepath.Join(cfg.dir, e.Name())})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].n < recs[j].n })
	if cfg.base != "" {
		if len(recs) == 0 {
			return "", "", fmt.Errorf("no BENCH_PR<N>.json records in %s to compare against -base", cfg.dir)
		}
		newPath = recs[len(recs)-1].path
		oldPath = cfg.base
		// A bare record name resolves inside -dir, so `-base BENCH_PR4.json
		// -dir path` works without repeating the directory.
		if filepath.Dir(oldPath) == "." && benchFileRe.MatchString(oldPath) {
			oldPath = filepath.Join(cfg.dir, oldPath)
		}
		if _, err := os.Stat(oldPath); err != nil {
			return "", "", fmt.Errorf("baseline %s: %w", cfg.base, err)
		}
		if oldPath == newPath {
			return "", "", fmt.Errorf("baseline %s is the newest record itself", cfg.base)
		}
		return oldPath, newPath, nil
	}
	if len(recs) < 2 {
		return "", "", nil
	}
	return recs[len(recs)-2].path, recs[len(recs)-1].path, nil
}

func load(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Result summarizes one comparison.
type Result struct {
	Compared       int
	NsImproved     int
	AllocsImproved int
	Regressions    []string
	// New lists benchmarks present only in the newer record. A new
	// benchmark has no history to regress against, so it is reported
	// (its first record becomes the baseline the next comparison
	// enforces) rather than failed.
	New []string
}

// minNsIters is the iteration count below which a recorded ns/op is
// treated as noise rather than a measurement: a single-shot timing of a
// full study simulation swings ±20% with machine load, so two such
// points cannot support a regression verdict. Allocation counts are
// exact at any iteration count (the simulations are deterministic), so
// the allocs/op check always applies.
const minNsIters = 3

// compare checks every benchmark present in both reports. allocs/op may
// never increase; ns/op may not increase by more than maxNsRegress, and
// is only judged when both records measured at least minNsIters
// iterations. A benchmark present in the old record but absent from the
// new one is itself a regression: the history point it contributed has
// silently disappeared (a deleted guard, or an incomplete bench run).
func compare(oldRep, newRep Report, maxNsRegress float64) Result {
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	newNames := make(map[string]bool, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		newNames[b.Name] = true
	}
	var res Result
	for _, ob := range oldRep.Benchmarks {
		if !newNames[ob.Name] {
			res.Regressions = append(res.Regressions, fmt.Sprintf(
				"%s: present in old record but missing from new one", ob.Name))
		}
	}
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			res.New = append(res.New, nb.Name)
			continue
		}
		res.Compared++
		oldAllocs, oldHasAllocs := ob.Metrics["allocs/op"]
		newAllocs, newHasAllocs := nb.Metrics["allocs/op"]
		if oldHasAllocs && newHasAllocs {
			switch {
			case newAllocs > oldAllocs:
				res.Regressions = append(res.Regressions, fmt.Sprintf(
					"%s: allocs/op %.0f -> %.0f", nb.Name, oldAllocs, newAllocs))
			case newAllocs < oldAllocs:
				res.AllocsImproved++
			}
		}
		oldNs, oldHasNs := ob.Metrics["ns/op"]
		newNs, newHasNs := nb.Metrics["ns/op"]
		if oldHasNs && newHasNs && oldNs > 0 &&
			ob.Iterations >= minNsIters && nb.Iterations >= minNsIters {
			switch {
			case newNs > oldNs*(1+maxNsRegress):
				res.Regressions = append(res.Regressions, fmt.Sprintf(
					"%s: ns/op %.0f -> %.0f (+%.0f%%, limit %.0f%%)",
					nb.Name, oldNs, newNs, (newNs/oldNs-1)*100, maxNsRegress*100))
			case newNs < oldNs:
				res.NsImproved++
			}
		}
	}
	return res
}
