package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bench(name string, ns, allocs float64) Benchmark {
	return Benchmark{
		Name:       name,
		Iterations: 5,
		Metrics:    map[string]float64{"ns/op": ns, "allocs/op": allocs},
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldRep := Report{Benchmarks: []Benchmark{
		bench("Fast", 1000, 10),
		bench("Guarded", 500, 0),
		bench("Slow", 2000, 100),
		bench("Removed", 1, 1),
	}}
	newRep := Report{Benchmarks: []Benchmark{
		bench("Fast", 1100, 10),  // +10% ns: within the 15% budget
		bench("Guarded", 480, 1), // allocs regression: must fail
		bench("Slow", 2400, 90),  // +20% ns: must fail
		bench("Added", 1, 1),     // no baseline: reported as new, never failed
	}}
	res := compare(oldRep, newRep, 0.15)
	if res.Compared != 3 {
		t.Errorf("Compared = %d, want 3", res.Compared)
	}
	if len(res.Regressions) != 3 {
		t.Fatalf("Regressions = %v, want 3 entries", res.Regressions)
	}
	joined := strings.Join(res.Regressions, "\n")
	if !strings.Contains(joined, "Guarded: allocs/op 0 -> 1") {
		t.Errorf("missing allocs regression, got:\n%s", joined)
	}
	if !strings.Contains(joined, "Slow: ns/op") {
		t.Errorf("missing ns regression, got:\n%s", joined)
	}
	if !strings.Contains(joined, "Removed: present in old record but missing") {
		t.Errorf("missing disappeared-benchmark regression, got:\n%s", joined)
	}
	if res.AllocsImproved != 1 { // Slow 100 -> 90
		t.Errorf("AllocsImproved = %d, want 1", res.AllocsImproved)
	}
	if len(res.New) != 1 || res.New[0] != "Added" {
		t.Errorf("New = %v, want [Added]", res.New)
	}
}

// TestCompareReportsNewBenchmarksWithoutFailing pins the history-growth
// rule: a benchmark that first appears in the newest record is reported
// (so the trajectory gaining a point is visible) but is not a
// regression — its first record becomes the baseline the next
// comparison enforces.
func TestCompareReportsNewBenchmarksWithoutFailing(t *testing.T) {
	oldRep := Report{Benchmarks: []Benchmark{bench("Old", 100, 5)}}
	newRep := Report{Benchmarks: []Benchmark{
		bench("Old", 100, 5),
		bench("BrandNew", 900, 900),
		bench("AlsoNew", 1, 0),
	}}
	res := compare(oldRep, newRep, 0.15)
	if len(res.Regressions) != 0 {
		t.Fatalf("new benchmarks flagged as regressions: %v", res.Regressions)
	}
	if len(res.New) != 2 {
		t.Fatalf("New = %v, want 2 entries", res.New)
	}
	joined := strings.Join(res.New, "\n")
	if !strings.Contains(joined, "BrandNew") || !strings.Contains(joined, "AlsoNew") {
		t.Errorf("New = %v, want BrandNew and AlsoNew", res.New)
	}
}

// TestCompareSkipsNsOnSingleShotRecords pins the noise rule: a record
// measured with fewer than minNsIters iterations cannot trip (or pass)
// the ns/op check, but its allocation counts are still binding.
func TestCompareSkipsNsOnSingleShotRecords(t *testing.T) {
	oneShot := func(name string, ns, allocs float64) Benchmark {
		b := bench(name, ns, allocs)
		b.Iterations = 1
		return b
	}
	oldRep := Report{Benchmarks: []Benchmark{oneShot("Study", 1000, 50)}}
	newRep := Report{Benchmarks: []Benchmark{bench("Study", 5000, 60)}}
	res := compare(oldRep, newRep, 0.15)
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "allocs/op") {
		t.Fatalf("want only the allocs regression, got %v", res.Regressions)
	}
}

func TestCompareAllImprovedPasses(t *testing.T) {
	oldRep := Report{Benchmarks: []Benchmark{bench("A", 1000, 10)}}
	newRep := Report{Benchmarks: []Benchmark{bench("A", 500, 0)}}
	res := compare(oldRep, newRep, 0.15)
	if len(res.Regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", res.Regressions)
	}
	if res.NsImproved != 1 || res.AllocsImproved != 1 {
		t.Errorf("improved counts = %d/%d, want 1/1", res.NsImproved, res.AllocsImproved)
	}
}

func TestPickFilesChoosesTwoNewest(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR2.json", "BENCH_PR3.json", "BENCH_PR10.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	oldPath, newPath, err := config{dir: dir}.pickFiles()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(oldPath) != "BENCH_PR3.json" || filepath.Base(newPath) != "BENCH_PR10.json" {
		t.Errorf("picked %s -> %s, want BENCH_PR3.json -> BENCH_PR10.json", oldPath, newPath)
	}
}

func TestPickFilesSingleRecordMeansNothingToCompare(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_PR2.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	oldPath, newPath, err := config{dir: dir}.pickFiles()
	if err != nil {
		t.Fatal(err)
	}
	if oldPath != "" || newPath != "" {
		t.Errorf("picked %q -> %q, want empty", oldPath, newPath)
	}
}

func TestPickFilesBaseSelectsArbitraryBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR2.json", "BENCH_PR4.json", "BENCH_PR6.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A bare record name resolves inside -dir.
	oldPath, newPath, err := config{dir: dir, base: "BENCH_PR2.json"}.pickFiles()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(oldPath) != "BENCH_PR2.json" || filepath.Base(newPath) != "BENCH_PR6.json" {
		t.Errorf("picked %s -> %s, want BENCH_PR2.json -> BENCH_PR6.json", oldPath, newPath)
	}
	// A full path is taken verbatim.
	oldPath, _, err = config{dir: dir, base: filepath.Join(dir, "BENCH_PR4.json")}.pickFiles()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(oldPath) != "BENCH_PR4.json" {
		t.Errorf("explicit-path base picked %s, want BENCH_PR4.json", oldPath)
	}
}

func TestPickFilesBaseErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := (config{dir: dir, base: "BENCH_PR1.json"}).pickFiles(); err == nil {
		t.Error("no records at all: want error, got nil")
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_PR5.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := (config{dir: dir, base: "BENCH_PR3.json"}).pickFiles(); err == nil {
		t.Error("missing baseline file: want error, got nil")
	}
	if _, _, err := (config{dir: dir, base: "BENCH_PR5.json"}).pickFiles(); err == nil {
		t.Error("baseline == newest record: want error, got nil")
	}
}

func TestRunEndToEndWithBase(t *testing.T) {
	dir := t.TempDir()
	writeJSON := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// PR1 -> PR4 regresses allocs; PR3 -> PR4 does not. The adjacent
	// default compares PR3, -base reaches back to PR1.
	writeJSON("BENCH_PR1.json",
		`{"benchmarks":[{"name":"X","iterations":1,"metrics":{"ns/op":100,"allocs/op":2}}]}`)
	writeJSON("BENCH_PR3.json",
		`{"benchmarks":[{"name":"X","iterations":1,"metrics":{"ns/op":100,"allocs/op":5}}]}`)
	writeJSON("BENCH_PR4.json",
		`{"benchmarks":[{"name":"X","iterations":1,"metrics":{"ns/op":95,"allocs/op":5}}]}`)
	var out, errOut strings.Builder
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("adjacent run = %d, want 0; stdout: %s", code, out.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-dir", dir, "-base", "BENCH_PR1.json"}, &out, &errOut); code != 1 {
		t.Fatalf("-base run = %d, want 1 (allocs regression vs PR1); stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION line in -base output: %s", out.String())
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeJSON := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeJSON("BENCH_PR1.json",
		`{"benchmarks":[{"name":"X","iterations":1,"metrics":{"ns/op":100,"allocs/op":5}}]}`)
	writeJSON("BENCH_PR2.json",
		`{"benchmarks":[{"name":"X","iterations":1,"metrics":{"ns/op":90,"allocs/op":5}}]}`)
	var out, errOut strings.Builder
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, errOut.String())
	}
	writeJSON("BENCH_PR3.json",
		`{"benchmarks":[{"name":"X","iterations":1,"metrics":{"ns/op":90,"allocs/op":6}}]}`)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-dir", dir}, &out, &errOut); code != 1 {
		t.Fatalf("run = %d, want 1 (allocs regression); stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION line in output: %s", out.String())
	}
}
