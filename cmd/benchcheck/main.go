// Command benchcheck guards the repo's committed performance trajectory.
// It locates the two most recent BENCH_PR<N>.json records (written by
// `make bench` via cmd/benchjson), compares every benchmark present in
// both, and fails when the newer record regresses:
//
//   - any increase in allocs/op fails — the simulator's hot paths are
//     deterministic, so allocation counts are exact, and the guarded
//     0-allocs/op benchmarks (Observe, KernelSchedule, DirectoryServe,
//     CacheHit) must never grow a heap allocation silently;
//   - an ns/op increase beyond -max-ns-regress (default 15%) fails,
//     judged only when both records measured at least 3 iterations
//     (single-shot timings of full study simulations are noise, not
//     measurements; allocation counts are exact at any count).
//
// Benchmarks appearing for the first time in the newest record are
// reported (not failed): they have no history to regress against, and
// their first record becomes the baseline the next comparison enforces.
//
// `make bench-check` wires it into `make check`, so a PR that lands a new
// BENCH_PR<N>.json point proves on the spot that it did not walk back the
// previous one. With fewer than two records the check passes trivially.
//
//	benchcheck            # compare the two newest BENCH_PR<N>.json in .
//	benchcheck -dir path  # look elsewhere
//	benchcheck old.json new.json   # compare two explicit records
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	cfg, err := parseFlags(args)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	oldPath, newPath, err := cfg.pickFiles()
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	if oldPath == "" {
		fmt.Fprintf(stdout, "benchcheck: fewer than two BENCH_PR<N>.json records in %s; nothing to compare\n", cfg.dir)
		return 0
	}
	oldRep, err := load(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	newRep, err := load(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchcheck: %v\n", err)
		return 2
	}
	result := compare(oldRep, newRep, cfg.maxNsRegress)
	fmt.Fprintf(stdout, "benchcheck: %s -> %s: %d benchmarks compared, %d improved ns/op, %d reduced allocs/op\n",
		oldPath, newPath, result.Compared, result.NsImproved, result.AllocsImproved)
	for _, name := range result.New {
		fmt.Fprintf(stdout, "benchcheck: NEW %s (no history; this record is its baseline)\n", name)
	}
	for _, r := range result.Regressions {
		fmt.Fprintf(stdout, "benchcheck: REGRESSION %s\n", r)
	}
	if len(result.Regressions) > 0 {
		fmt.Fprintf(stderr, "benchcheck: %d regressions vs %s\n", len(result.Regressions), oldPath)
		return 1
	}
	return 0
}
