// Command benchjson converts `go test -bench` output into a JSON
// performance record. It reads the bench log on stdin, echoes it
// unchanged to stdout (so it can sit in a pipeline without hiding the
// human-readable results), and writes the parsed benchmarks — ns/op,
// B/op, allocs/op, and every custom metric such as the studies' headline
// table/figure scalars — to the file named by -o.
//
//	go test -bench=. -benchmem -benchtime=1x -run='^$' ./... | benchjson -o BENCH_PR2.json
//
// The emitted file seeds the repo's performance trajectory: each perf PR
// regenerates it via `make bench`, and diffs against the committed copy
// show exactly which hot path moved.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	out := flag.String("o", "BENCH_PR2.json", "output JSON file")
	flag.Parse()

	report, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}
