package main

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the "Benchmark" prefix stripped,
	// including sub-benchmark path (e.g. "Observe/VMSP/d4-8").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the line:
	// ns/op, B/op, allocs/op, and custom b.ReportMetric units such as
	// "meanVMSP%" or "em3dSWIinval%".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted JSON document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse reads a `go test -bench` log from r, echoing every line to echo,
// and returns the structured report. A benchmark appearing several times
// (a `-count=K` run) is folded into one entry holding the per-metric
// minimum: simulated results and allocation counts are deterministic, so
// repeated samples only differ by scheduling noise, and the minimum of K
// timings is the standard robust estimate of a benchmark's true cost —
// noise on a loaded machine is strictly additive.
func parse(r io.Reader, echo io.Writer) (Report, error) {
	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Benchmark{},
	}
	index := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		at, seen := index[b.Name]
		if !seen {
			index[b.Name] = len(report.Benchmarks)
			report.Benchmarks = append(report.Benchmarks, b)
			continue
		}
		prev := &report.Benchmarks[at]
		for unit, v := range b.Metrics {
			if old, ok := prev.Metrics[unit]; !ok || v < old {
				prev.Metrics[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return report, err
	}
	return report, nil
}

// parseLine recognizes result lines of the form
//
//	BenchmarkName-8   123  456.7 ns/op  12 B/op  3 allocs/op  9.9 custom%
//
// and ignores everything else (log output, "--- BENCH:" blocks, ok/PASS
// lines).
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, and at least one "value unit" pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       strings.TrimPrefix(fields[0], "Benchmark"),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
