package main

import (
	"io"
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: specdsm
BenchmarkFig7PredictorAccuracy 	       1	 86783413 ns/op	        77.75 meanCosmos%	        94.92 meanVMSP%	16781808 B/op	   79749 allocs/op
--- BENCH: BenchmarkFig7PredictorAccuracy
    bench_test.go:37:
        Figure 7 ...
BenchmarkObserve/VMSP/d4 	  100000	        25.33 ns/op	       0 B/op	       0 allocs/op
BenchmarkKernelSchedule-8 	  100000	       109.7 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	specdsm	1.063s
`

func TestParse(t *testing.T) {
	var echoed strings.Builder
	report, err := parse(strings.NewReader(sampleLog), &echoed)
	if err != nil {
		t.Fatal(err)
	}
	if echoed.String() != sampleLog {
		t.Error("input not echoed verbatim")
	}
	if len(report.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(report.Benchmarks))
	}

	fig7 := report.Benchmarks[0]
	if fig7.Name != "Fig7PredictorAccuracy" || fig7.Iterations != 1 {
		t.Fatalf("fig7 = %+v", fig7)
	}
	for unit, want := range map[string]float64{
		"ns/op":       86783413,
		"meanCosmos%": 77.75,
		"meanVMSP%":   94.92,
		"B/op":        16781808,
		"allocs/op":   79749,
	} {
		if got := fig7.Metrics[unit]; got != want {
			t.Errorf("fig7 %s = %v, want %v", unit, got, want)
		}
	}

	sub := report.Benchmarks[1]
	if sub.Name != "Observe/VMSP/d4" {
		t.Fatalf("sub-benchmark name = %q", sub.Name)
	}
	if sub.Metrics["allocs/op"] != 0 {
		t.Errorf("allocs/op = %v, want 0", sub.Metrics["allocs/op"])
	}

	if report.Benchmarks[2].Name != "KernelSchedule-8" {
		t.Errorf("name with GOMAXPROCS suffix = %q", report.Benchmarks[2].Name)
	}
}

// TestParseFoldsRepeatedSamplesToMin pins the -count=K contract: a
// benchmark appearing several times collapses into one entry holding the
// per-metric minimum, so a single noisy sample cannot inflate (or, for
// custom deterministic metrics, change) the recorded point.
func TestParseFoldsRepeatedSamplesToMin(t *testing.T) {
	log := `BenchmarkCacheHit 	1000	 190 ns/op	 0 B/op	 0 allocs/op
BenchmarkCacheHit 	1000	 145 ns/op	 0 B/op	 0 allocs/op
BenchmarkCacheHit 	1000	 162 ns/op	 0 B/op	 0 allocs/op
BenchmarkOther 	3	 100 ns/op	 7 allocs/op
`
	report, err := parse(strings.NewReader(log), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (samples folded)", len(report.Benchmarks))
	}
	hit := report.Benchmarks[0]
	if hit.Name != "CacheHit" {
		t.Fatalf("name = %q", hit.Name)
	}
	if hit.Metrics["ns/op"] != 145 {
		t.Errorf("ns/op = %v, want the 145 minimum", hit.Metrics["ns/op"])
	}
	if hit.Iterations != 1000 {
		t.Errorf("iterations = %d, want 1000", hit.Iterations)
	}
	if report.Benchmarks[1].Metrics["allocs/op"] != 7 {
		t.Errorf("single-sample benchmark altered: %+v", report.Benchmarks[1])
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	specdsm	1.063s",
		"--- BENCH: BenchmarkFig7PredictorAccuracy",
		"BenchmarkBroken abc 1 ns/op",
		"Benchmark 1", // too short
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}
