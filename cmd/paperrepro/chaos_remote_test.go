package main

// Distributed chaos harness: a real three-worker sweepd fleet serves a
// fig9 sweep while one worker is SIGKILLed mid-batch and another
// injects connection faults (drops, short reads, delays) on every
// dispatcher link. The dispatcher must re-run the lost work on the
// survivors and still produce output byte-identical to a clean local
// -parallel 1 run — the determinism contract under real process death
// and a real torn transport, not just in-memory simulations of them.
//
// `make chaos-remote` runs this leg on every gate.

import (
	"bufio"
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// sweepdWorker is one spawned sweepd process with its scraped listen
// address and a channel that closes when the worker first logs that it
// is executing a batch — the kill-timing hook.
type sweepdWorker struct {
	cmd      *exec.Cmd
	addr     string
	execSeen chan struct{}
	once     sync.Once
}

// startSweepd launches a sweepd on a free loopback port, scrapes the
// "sweepd listening on ADDR" stdout line, and watches stderr for the
// first per-batch execution log line.
func startSweepd(t *testing.T, bin string, extra ...string) *sweepdWorker {
	t.Helper()
	w := &sweepdWorker{execSeen: make(chan struct{})}
	w.cmd = exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, extra...)...)
	stdout, err := w.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := w.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.cmd.Start(); err != nil {
		t.Fatalf("start sweepd: %v", err)
	}
	t.Cleanup(func() {
		w.cmd.Process.Kill()
		w.cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "sweepd listening on "); ok {
				addrCh <- a
				return
			}
		}
	}()
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "exec batch") {
				w.once.Do(func() { close(w.execSeen) })
			}
		}
	}()
	select {
	case w.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("sweepd did not print its listen address")
	}
	return w
}

func TestChaosRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("remote chaos harness is slow for -short")
	}
	dir := t.TempDir()
	paperreproBin := filepath.Join(dir, "paperrepro")
	sweepdBin := filepath.Join(dir, "sweepd")
	for pkg, bin := range map[string]string{".": paperreproBin, "../sweepd": sweepdBin} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	run := func(extra ...string) (stdout []byte, stderr string, code int) {
		cmd := exec.Command(paperreproBin, append(append([]string{}, chaosArgs...), extra...)...)
		var errBuf bytes.Buffer
		cmd.Stderr = &errBuf
		out, err := cmd.Output()
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%v: %v", cmd.Args, err)
		}
		return out, errBuf.String(), code
	}

	cleanOut, _, code := run("-parallel", "1")
	if code != 0 {
		t.Fatalf("clean run exited %d", code)
	}
	clean := normalize(cleanOut)

	// Three-worker fleet: one healthy, one injecting connection faults
	// on every dispatcher link, one SIGKILLed the moment it starts
	// executing its first batch (mid-simulation, so its leased jobs die
	// with it and must be re-dispatched to the survivors).
	victim := startSweepd(t, sweepdBin)
	faulty := startSweepd(t, sweepdBin, "-faults", "seed=7,conndrop=0.02,connshort=0.3,conndelay=0.2")
	healthy := startSweepd(t, sweepdBin)
	go func() {
		<-victim.execSeen
		victim.cmd.Process.Kill()
	}()

	remoteOut, remoteErr, code := run("-progress", "-remote",
		victim.addr+","+faulty.addr+","+healthy.addr)
	if code != 0 {
		t.Fatalf("remote run exited %d\nstderr:\n%s", code, remoteErr)
	}
	select {
	case <-victim.execSeen:
		// The victim really was executing sweep batches before the kill;
		// the dispatcher survived losing it.
	default:
		t.Fatalf("victim worker never executed a batch — the kill tested nothing\nstderr:\n%s", remoteErr)
	}
	if got := normalize(remoteOut); got != clean {
		t.Fatalf("remote chaos output diverged from clean -parallel 1 run:\n--- clean ---\n%s\n--- chaos ---\n%s\n--- dispatcher stderr ---\n%s",
			clean, got, remoteErr)
	}
}
