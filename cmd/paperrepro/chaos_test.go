package main

// Chaos harness: checkpointed sweeps are killed mid-run, their
// checkpoint files corrupted, and the salvage-resumed reruns — all
// under injected transient faults and delays — must still produce
// output byte-identical to a clean sequential run. Every round is
// derived from its index, so a failure reproduces exactly.
//
// `make chaos` runs this with more rounds (-args -chaos-rounds=N).

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

var chaosRounds = flag.Int("chaos-rounds", 3, "chaos harness rounds (each is a kill+corrupt+salvage cycle)")

// timingLines matches the bracketed wall-clock lines — the one
// intentionally nondeterministic part of paperrepro output.
var timingLines = regexp.MustCompile(`\[[^]]*: [0-9][^]]*\]`)

func normalize(out []byte) string {
	return timingLines.ReplaceAllString(string(out), "[time]")
}

// chaosArgs is the study every round reproduces: small enough to rerun
// per round, big enough (9 simulations) that kill points land mid-sweep.
var chaosArgs = []string{"-only", "fig9", "-scale", "0.1", "-apps", "em3d,moldyn,appbt"}

func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is slow for -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "paperrepro")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	run := func(extra ...string) ([]byte, int) {
		cmd := exec.Command(bin, append(append([]string{}, chaosArgs...), extra...)...)
		out, err := cmd.Output()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("%v: %v", cmd.Args, err)
		}
		return out, code
	}

	cleanOut, code := run("-parallel", "1")
	if code != 0 {
		t.Fatalf("clean run exited %d", code)
	}
	clean := normalize(cleanOut)

	for round := 0; round < *chaosRounds; round++ {
		round := round
		t.Run(strconv.Itoa(round), func(t *testing.T) {
			ck := filepath.Join(dir, "ck"+strconv.Itoa(round))
			// Every round's schedule is a pure function of its index:
			// kill point inside the 9-job sweep, fault seed, and which
			// corruption (truncate vs bit flip) hits the checkpoint.
			kill := 2 + (round*5)%7 // in [2, 8]
			spec := "seed=" + strconv.Itoa(round+1) + ",transient=0.3,delay=0.4,delaymax=8"
			faultFlags := []string{"-retries", "8", "-faults", spec, "-parallel", "4"}

			_, code := run(append(faultFlags,
				"-checkpoint", ck, "-checkpoint-every", "2", "-crash-after", strconv.Itoa(kill))...)
			if code != 3 {
				t.Fatalf("killed run exited %d, want 3 (crash-after %d)", code, kill)
			}

			// Corrupt the frame region (never the header: a flipped key
			// byte would read as a different study — a hard error by
			// design, not salvageable damage). The file can legitimately
			// be missing when the kill landed before the first flush.
			if data, err := os.ReadFile(ck + ".speculation"); err == nil && len(data) > 64 {
				if round%2 == 0 {
					data = data[:len(data)-1-(round*3)%16]
				} else {
					data[len(data)-17] ^= 0x40
				}
				if err := os.WriteFile(ck+".speculation", data, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			out, code := run(append(faultFlags, "-checkpoint", ck, "-resume-salvage")...)
			if code != 0 {
				t.Fatalf("salvage-resume exited %d", code)
			}
			if got := normalize(out); got != clean {
				t.Fatalf("round %d: salvage-resumed output diverged from clean -parallel 1 run:\n--- clean ---\n%s\n--- chaos ---\n%s",
					round, clean, got)
			}
		})
	}
}
