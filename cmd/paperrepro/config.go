package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"specdsm"
)

// experiments lists the -only values in presentation order.
var experiments = []string{
	"table1", "table2", "characterize", "fig6", "rtl", "scaling",
	"fig7", "fig8", "table3", "table4", "fig9", "table5",
}

// options is the fully parsed and validated CLI configuration; flag
// handling lives here, separated from main's orchestration, so the
// flag→StudyConfig mapping is unit-testable.
type options struct {
	Only     string
	Seeds    []int64
	Progress bool
	// CPUProfile / MemProfile name pprof output files (empty = off), so
	// perf work can attach real profiles to a study run instead of
	// guessing at hot paths.
	CPUProfile string
	MemProfile string
	// CrashAfter, when positive, kills the process with exit status 3
	// after that many completed simulations — a deterministic
	// crash-injection hook for exercising checkpoint resume (used by
	// `make check`), not a user-facing feature.
	CrashAfter int
	Cfg        specdsm.StudyConfig
}

// parseOptions builds options from raw command-line arguments (without
// the program name). Usage and error text go to errOut.
func parseOptions(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		only     = fs.String("only", "", "run one experiment: "+strings.Join(experiments, ","))
		scale    = fs.Float64("scale", 1.0, "workload scale factor")
		seed     = fs.Int64("seed", 1, "workload generation seed")
		iters    = fs.Int("iters", 0, "override iteration count (0 = per-app default)")
		apps     = fs.String("apps", "", "comma-separated application subset")
		nodes    = fs.Int("nodes", 16, "machine size")
		seeds    = fs.String("seeds", "", "comma-separated seeds: aggregate Figure 9 across them")
		parallel = fs.Int("parallel", 0, "concurrent simulations (0 = one per CPU; 1 = sequential)")
		progress = fs.Bool("progress", false, "log per-simulation completion progress (with ETA) to stderr")
		cpuprof  = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprof  = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
		ckpt     = fs.String("checkpoint", "", "checkpoint studies to this base path (one file per study: PATH.predictor, PATH.speculation, PATH.seeds, PATH.rtl, PATH.scaling)")
		resume   = fs.Bool("resume", false, "resume from -checkpoint files left by an interrupted run")
		salvage  = fs.Bool("resume-salvage", false, "like -resume, but truncate a corrupted checkpoint to its longest valid prefix instead of failing")
		ckEvery  = fs.Int("checkpoint-every", 0, "flush the checkpoint every N completed simulations (0 = default cadence)")
		retries  = fs.Int("retries", 0, "retry budget per simulation for transient failures (0 = fail fast)")
		keep     = fs.Bool("keep-going", false, "record fatally failed simulations as FAILED rows and continue instead of aborting")
		faults   = fs.String("faults", "", "fault-injection spec for robustness testing, e.g. seed=7,transient=0.2,panic=0.01,delay=0.5 (see internal/fault)")
		remote   = fs.String("remote", "", "comma-separated sweepd workers (host:port) to fan simulations out to; output stays byte-identical to -parallel 1")
		crash    = fs.Int("crash-after", 0, "crash-injection test hook: exit(3) after N completed simulations")
	)
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("paperrepro: unexpected argument %q", fs.Arg(0))
	}

	o := options{
		Only:       *only,
		Progress:   *progress,
		CPUProfile: *cpuprof,
		MemProfile: *memprof,
		CrashAfter: *crash,
		Cfg: specdsm.StudyConfig{
			Nodes:           *nodes,
			Scale:           *scale,
			Seed:            *seed,
			Iterations:      *iters,
			Parallel:        *parallel,
			CheckpointPath:  *ckpt,
			Resume:          *resume || *salvage,
			Salvage:         *salvage,
			CheckpointEvery: *ckEvery,
			Retries:         *retries,
			KeepGoing:       *keep,
			FaultSpec:       *faults,
		},
	}
	if o.Cfg.Resume && o.Cfg.CheckpointPath == "" {
		if o.Cfg.Salvage {
			return options{}, fmt.Errorf("paperrepro: -resume-salvage requires -checkpoint")
		}
		return options{}, fmt.Errorf("paperrepro: -resume requires -checkpoint")
	}
	if o.Cfg.CheckpointEvery < 0 {
		return options{}, fmt.Errorf("paperrepro: -checkpoint-every must be positive, got %d", o.Cfg.CheckpointEvery)
	}
	if o.CrashAfter < 0 {
		return options{}, fmt.Errorf("paperrepro: -crash-after must be positive, got %d", o.CrashAfter)
	}
	if *apps != "" {
		list, err := splitList("-apps", *apps)
		if err != nil {
			return options{}, err
		}
		o.Cfg.Apps = list
	}
	if *remote != "" {
		list, err := splitList("-remote", *remote)
		if err != nil {
			return options{}, err
		}
		o.Cfg.Remote = list
	}
	if o.Only != "" && !validExperiment(o.Only) {
		return options{}, fmt.Errorf("paperrepro: unknown experiment %q (have %s)",
			o.Only, strings.Join(experiments, ","))
	}
	if *seeds != "" {
		list, err := splitList("-seeds", *seeds)
		if err != nil {
			return options{}, err
		}
		for _, s := range list {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return options{}, fmt.Errorf("paperrepro: bad seed %q", s)
			}
			o.Seeds = append(o.Seeds, v)
		}
	}
	if err := o.Cfg.Validate(); err != nil {
		return options{}, err
	}
	return o, nil
}

// want reports whether the named experiment should run.
func (o options) want(name string) bool { return o.Only == "" || o.Only == name }

func validExperiment(name string) bool {
	for _, e := range experiments {
		if e == name {
			return true
		}
	}
	return false
}

// splitList splits a comma-separated flag value, rejecting empty
// entries so a stray comma fails loudly instead of producing a
// confusing downstream error (or silently selecting a default).
func splitList(flagName, csv string) ([]string, error) {
	var out []string
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil, fmt.Errorf("paperrepro: empty entry in %s %q", flagName, csv)
		}
		out = append(out, s)
	}
	return out, nil
}
