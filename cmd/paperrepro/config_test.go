package main

import (
	"io"
	"os"
	"reflect"
	"strings"
	"testing"
)

func TestParseOptionsDefaults(t *testing.T) {
	o, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	c := o.Cfg
	if c.Nodes != 16 || c.Scale != 1.0 || c.Seed != 1 || c.Iterations != 0 {
		t.Fatalf("default cfg = %+v", c)
	}
	if c.Parallel != 0 {
		t.Fatalf("default Parallel = %d, want 0 (auto = one per CPU)", c.Parallel)
	}
	if len(c.Apps) != 0 {
		t.Fatalf("default apps = %v, want all (empty)", c.Apps)
	}
	if o.Only != "" || o.Seeds != nil {
		t.Fatalf("options = %+v", o)
	}
	if !o.want("fig7") || !o.want("table5") {
		t.Fatal("default options must want every experiment")
	}
}

func TestParseOptionsProgress(t *testing.T) {
	o, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Progress {
		t.Fatal("progress must default off")
	}
	o, err = parseOptions([]string{"-progress"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Progress {
		t.Fatal("-progress not parsed")
	}
	if o.Cfg.OnJobDone != nil {
		t.Fatal("parseOptions must not install the hook itself (run wires it to stderr)")
	}
}

func TestParseOptionsFullFlagSet(t *testing.T) {
	o, err := parseOptions([]string{
		"-only", "fig9", "-scale", "0.5", "-seed", "7", "-iters", "3",
		"-apps", "em3d, moldyn", "-nodes", "8", "-parallel", "4",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := o.Cfg
	want.Nodes, want.Scale, want.Seed, want.Iterations, want.Parallel = 8, 0.5, 7, 3, 4
	want.Apps = []string{"em3d", "moldyn"}
	if !reflect.DeepEqual(o.Cfg, want) {
		t.Fatalf("cfg = %+v, want %+v", o.Cfg, want)
	}
	if o.Only != "fig9" {
		t.Fatalf("only = %q", o.Only)
	}
	if o.want("fig7") || !o.want("fig9") {
		t.Fatal("want() ignores -only")
	}
}

func TestParseOptionsSeeds(t *testing.T) {
	o, err := parseOptions([]string{"-seeds", "1, 2,30"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.Seeds, []int64{1, 2, 30}) {
		t.Fatalf("seeds = %v", o.Seeds)
	}
}

func TestParseOptionsErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string // expected error substring
	}{
		{"bad seed", []string{"-seeds", "1,x"}, "bad seed"},
		{"empty seed entry", []string{"-seeds", "1,,2"}, "empty entry"},
		{"empty app entry", []string{"-apps", "em3d,"}, "empty entry"},
		{"unknown app", []string{"-apps", "nope"}, "unknown application"},
		{"unknown experiment", []string{"-only", "fig99"}, "unknown experiment"},
		{"stray positional", []string{"fig7"}, "unexpected argument"},
		{"unknown flag", []string{"-bogus"}, ""},
		{"resume without checkpoint", []string{"-resume"}, "-resume requires -checkpoint"},
		{"negative checkpoint cadence", []string{"-checkpoint", "ck", "-checkpoint-every", "-2"}, "-checkpoint-every"},
		{"negative crash-after", []string{"-crash-after", "-1"}, "-crash-after"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if tc.frag != "" && !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want substring %q", err, tc.frag)
			}
		})
	}
}

func TestParseOptionsRemote(t *testing.T) {
	o, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Cfg.Remote) != 0 {
		t.Fatalf("remote dispatch must default off, got %v", o.Cfg.Remote)
	}
	o, err = parseOptions([]string{"-remote", "127.0.0.1:7701, 127.0.0.1:7702"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.Cfg.Remote, []string{"127.0.0.1:7701", "127.0.0.1:7702"}) {
		t.Fatalf("Remote = %v", o.Cfg.Remote)
	}

	// Bad shard lists are wrong invocations (exit 2 via parse error),
	// not runtime failures discovered after hours of simulation.
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"bad host", []string{"-remote", "nonsense"}, "want host:port"},
		{"empty entry", []string{"-remote", "127.0.0.1:7701,,127.0.0.1:7702"}, "empty entry"},
		{"blank list", []string{"-remote", " , "}, "empty entry"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want substring %q", err, tc.frag)
			}
		})
	}
}

func TestParseOptionsProfileFlags(t *testing.T) {
	o, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.CPUProfile != "" || o.MemProfile != "" {
		t.Fatalf("profiles must default off, got %+v", o)
	}
	o, err = parseOptions([]string{"-cpuprofile", "cpu.out", "-memprofile", "mem.out"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.CPUProfile != "cpu.out" || o.MemProfile != "mem.out" {
		t.Fatalf("profile flags not parsed: %+v", o)
	}
}

// TestProfilesWriteFiles drives the real collectors end to end: both
// profile files must exist and be non-empty after a stopped run.
func TestProfilesWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	o, err := parseOptions([]string{"-cpuprofile", cpu, "-memprofile", mem}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	stop, err := startProfiles(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", f)
		}
	}
}

func TestParseOptionsCheckpointFlags(t *testing.T) {
	o, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cfg.CheckpointPath != "" || o.Cfg.Resume || o.Cfg.CheckpointEvery != 0 || o.CrashAfter != 0 {
		t.Fatalf("checkpointing must default off, got %+v", o)
	}
	o, err = parseOptions([]string{
		"-checkpoint", "run.ck", "-resume", "-checkpoint-every", "4", "-crash-after", "9",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cfg.CheckpointPath != "run.ck" || !o.Cfg.Resume || o.Cfg.CheckpointEvery != 4 {
		t.Fatalf("checkpoint flags not threaded into cfg: %+v", o.Cfg)
	}
	if o.CrashAfter != 9 {
		t.Fatalf("CrashAfter = %d, want 9", o.CrashAfter)
	}
}

func TestParseOptionsParallelOne(t *testing.T) {
	o, err := parseOptions([]string{"-parallel", "1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cfg.Parallel != 1 {
		t.Fatalf("Parallel = %d, want 1 (sequential reproduction mode)", o.Cfg.Parallel)
	}
}

func TestParseOptionsFailureFlags(t *testing.T) {
	o, err := parseOptions(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cfg.Retries != 0 || o.Cfg.KeepGoing || o.Cfg.Salvage || o.Cfg.FaultSpec != "" {
		t.Fatalf("failure knobs must default off, got %+v", o.Cfg)
	}
	o, err = parseOptions([]string{
		"-checkpoint", "run.ck", "-resume-salvage",
		"-retries", "3", "-keep-going", "-faults", "seed=7,transient=0.2",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cfg.Retries != 3 || !o.Cfg.KeepGoing || o.Cfg.FaultSpec != "seed=7,transient=0.2" {
		t.Fatalf("failure flags not threaded into cfg: %+v", o.Cfg)
	}
	if !o.Cfg.Salvage || !o.Cfg.Resume {
		t.Fatalf("-resume-salvage must imply Resume, got %+v", o.Cfg)
	}

	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"salvage without checkpoint", []string{"-resume-salvage"}, "-resume-salvage requires -checkpoint"},
		{"negative retries", []string{"-retries", "-1"}, "retry"},
		{"bad fault spec", []string{"-faults", "transient=wat"}, "fault"},
		{"unknown fault knob", []string{"-faults", "frobnicate=1"}, "fault"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want substring %q", err, tc.frag)
			}
		})
	}
}
