// Command paperrepro regenerates every table and figure of the paper's
// evaluation (Lai & Falsafi, ISCA 1999) from the simulator:
//
//	paperrepro                 # everything
//	paperrepro -only fig7      # one experiment (table1..table5, fig6..fig9)
//	paperrepro -scale 0.5      # smaller workloads (faster)
//	paperrepro -apps em3d,moldyn
//	paperrepro -seed 7
//
// Simulated results depend only on the flags (runs are deterministic).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"specdsm"
)

func main() {
	var (
		only  = flag.String("only", "", "run one experiment: table1,table2,table3,table4,table5,fig6,fig7,fig8,fig9,characterize")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		seed  = flag.Int64("seed", 1, "workload generation seed")
		iters = flag.Int("iters", 0, "override iteration count (0 = per-app default)")
		apps  = flag.String("apps", "", "comma-separated application subset")
		nodes = flag.Int("nodes", 16, "machine size")
		seeds = flag.String("seeds", "", "comma-separated seeds: aggregate Figure 9 across them")
	)
	flag.Parse()

	cfg := specdsm.StudyConfig{
		Nodes:         *nodes,
		Scale:         *scale,
		Seed:          *seed,
		Iterations:    *iters,
		DisableChecks: false,
	}
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	want := func(name string) bool { return *only == "" || *only == name }

	if want("table1") {
		fmt.Println(specdsm.RenderTable1())
	}
	if want("table2") {
		fmt.Println(specdsm.RenderTable2())
	}
	if want("characterize") {
		rows, err := specdsm.Characterize(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(specdsm.RenderCharacterization(rows))
	}
	if want("fig6") {
		fmt.Println(specdsm.RenderFigure6())
	}
	if *only == "rtl" {
		start := time.Now()
		points, err := specdsm.RTLSweep("em3d", specdsm.WorkloadParams{
			Nodes: *nodes, Scale: *scale, Seed: *seed, Iterations: *iters,
		}, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(specdsm.RenderRTLSweep("em3d", points))
		fmt.Printf("[rtl sweep: %v]\n", time.Since(start).Round(time.Millisecond))
		return
	}

	if *seeds != "" {
		var seedList []int64
		for _, s := range strings.Split(*seeds, ",") {
			var v int64
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &v); err != nil {
				fmt.Fprintf(os.Stderr, "paperrepro: bad seed %q\n", s)
				os.Exit(2)
			}
			seedList = append(seedList, v)
		}
		start := time.Now()
		agg, err := specdsm.SpeculationStudySeeds(cfg, seedList)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(specdsm.RenderFigure9Aggregate(agg))
		fmt.Printf("[multi-seed study: %v]\n", time.Since(start).Round(time.Millisecond))
		return
	}

	needPred := want("fig7") || want("fig8") || want("table3") || want("table4")
	if needPred {
		start := time.Now()
		study, err := specdsm.PredictorStudy(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if want("fig7") {
			fmt.Println(specdsm.RenderFigure7(specdsm.Figure7(study)))
		}
		if want("fig8") {
			fmt.Println(specdsm.RenderFigure8(specdsm.Figure8(study, nil)))
		}
		if want("table3") {
			fmt.Println(specdsm.RenderTable3(specdsm.Table3(study)))
		}
		if want("table4") {
			fmt.Println(specdsm.RenderTable4(specdsm.Table4(study)))
		}
		fmt.Printf("[predictor study: %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	needSpec := want("fig9") || want("table5")
	if needSpec {
		start := time.Now()
		study, err := specdsm.SpeculationStudy(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if want("fig9") {
			fmt.Println(specdsm.RenderFigure9(specdsm.Figure9(study)))
		}
		if want("table5") {
			fmt.Println(specdsm.RenderTable5(specdsm.Table5(study)))
		}
		fmt.Printf("[speculation study: %v]\n", time.Since(start).Round(time.Millisecond))
	}
}
