// Command paperrepro regenerates every table and figure of the paper's
// evaluation (Lai & Falsafi, ISCA 1999) from the simulator:
//
//	paperrepro                 # everything
//	paperrepro -only fig7      # one experiment (table1..table5, fig6..fig9)
//	paperrepro -only scaling -apps em3d,moldyn -scale 0.25
//	                           # beyond-paper node-count scaling study
//	paperrepro -scale 0.5      # smaller workloads (faster)
//	paperrepro -apps em3d,moldyn
//	paperrepro -seed 7
//	paperrepro -parallel 8     # simulations per batch; output is
//	                           # byte-identical for every -parallel value
//	paperrepro -progress       # per-simulation completion log with ETA
//	paperrepro -cpuprofile cpu.pprof -memprofile mem.pprof
//	                           # attach pprof profiles to the run
//	paperrepro -checkpoint ck -checkpoint-every 8
//	                           # persist completed simulations to ck.<study>
//	paperrepro -checkpoint ck -resume
//	                           # continue an interrupted run from ck.<study>
//	paperrepro -checkpoint ck -resume-salvage
//	                           # like -resume, but truncate a corrupted
//	                           # checkpoint to its longest valid prefix
//	paperrepro -retries 3      # retry transiently failed simulations
//	paperrepro -keep-going     # record fatal failures as FAILED rows
//	                           # (plus a manifest) instead of aborting
//	paperrepro -faults seed=7,transient=0.2
//	                           # deterministic fault injection (testing)
//	paperrepro -remote 127.0.0.1:7701,127.0.0.1:7702
//	                           # fan simulations out to sweepd workers;
//	                           # dead shards are re-dispatched, output is
//	                           # still byte-identical to -parallel 1
//
// Simulated results depend only on the flags (runs are deterministic):
// the sweep engine merges parallel simulation results back in submission
// order, so -parallel N reproduces -parallel 1 exactly — including an
// interrupted -checkpoint run resumed with -resume, which replays the
// saved rows and simulates only the remainder.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"specdsm"
	"specdsm/internal/sweep"
)

func main() {
	o, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stopProfiles, err := startProfiles(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	err = run(o)
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	var km *sweep.KeyMismatchError
	if errors.As(err, &km) {
		// The checkpoint is intact but belongs to a different study
		// configuration — name the differing parameters and the fix
		// instead of dumping raw keys. Exit 2 distinguishes "wrong
		// invocation" from runtime failure (1).
		fmt.Fprintf(os.Stderr, "paperrepro: checkpoint %s was recorded under different study parameters:\n", km.Path)
		for _, line := range km.Diff() {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		fmt.Fprintf(os.Stderr, "fix: rerun with the flags listed above, or remove %s to start this configuration fresh\n", km.Path)
		fmt.Fprintln(os.Stderr, "(-resume-salvage repairs corruption, not configuration changes; it would refuse too)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// startProfiles arms the pprof collectors the flags request and returns
// the function that finalizes them: the CPU profile stops, and the heap
// profile is written after a GC so it reflects live steady-state memory,
// not transient garbage. Profiles observe the run without perturbing its
// output (stdout carries only the reproduced tables either way).
func startProfiles(o options) (stop func() error, err error) {
	var cpuFile *os.File
	if o.CPUProfile != "" {
		cpuFile, err = os.Create(o.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("paperrepro: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("paperrepro: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("paperrepro: %w", err)
			}
		}
		if o.MemProfile != "" {
			f, err := os.Create(o.MemProfile)
			if err != nil {
				return fmt.Errorf("paperrepro: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("paperrepro: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}

func run(o options) error {
	cfg := o.Cfg
	// failed collects keep-going FAILED jobs across studies, in study
	// then job-index order; the manifest prints once after the tables so
	// a long run ends with an explicit list of what did not complete.
	var failed []string
	note := func(format string, args ...any) {
		failed = append(failed, fmt.Sprintf(format, args...))
	}
	manifest := func() {
		if len(failed) == 0 {
			return
		}
		fmt.Printf("FAILED jobs (%d, kept going):\n", len(failed))
		for _, f := range failed {
			fmt.Printf("  %s\n", f)
		}
	}
	if cfg.Salvage {
		cfg.OnSalvage = func(study string, rep sweep.SalvageReport) {
			fmt.Fprintf(os.Stderr, "paperrepro: checkpoint %s.%s: salvaged %d rows, dropped %d bytes (%s)\n",
				cfg.CheckpointPath, study, rep.Rows, rep.DroppedBytes, rep.Reason)
		}
	}
	if o.Progress {
		// Per-simulation completion lines with ETA on stderr (stdout
		// carries only the reproduced tables/figures, byte-identical
		// either way).
		cfg.Progress = slog.New(slog.NewTextHandler(os.Stderr, nil))
		// With a shard fleet, surface its lifecycle (connects, deaths,
		// reconnects, degradation) on stderr too.
		cfg.RemoteLogf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "paperrepro: remote: "+format+"\n", args...)
		}
	}
	if o.CrashAfter > 0 {
		// Deterministic crash injection for the checkpoint-resume gate in
		// `make check`: die mid-sweep exactly where asked, leaving
		// whatever the checkpoint cadence has flushed so far.
		var done atomic.Int64
		user := cfg.OnJobDone
		cfg.OnJobDone = func(i int, d time.Duration) {
			if user != nil {
				user(i, d)
			}
			if done.Add(1) == int64(o.CrashAfter) {
				fmt.Fprintf(os.Stderr, "paperrepro: -crash-after %d reached, aborting\n", o.CrashAfter)
				os.Exit(3)
			}
		}
	}
	if o.want("table1") {
		fmt.Println(specdsm.RenderTable1())
	}
	if o.want("table2") {
		fmt.Println(specdsm.RenderTable2())
	}
	if o.want("characterize") {
		rows, err := specdsm.Characterize(cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if r.Failed != "" {
				note("characterize %s: %s", r.App, r.Failed)
			}
		}
		fmt.Println(specdsm.RenderCharacterization(rows))
	}
	if o.want("fig6") {
		fmt.Println(specdsm.RenderFigure6())
	}
	if o.Only == "rtl" {
		start := time.Now()
		var points []specdsm.RTLPoint
		err := specdsm.RTLSweepStream(cfg, "em3d", specdsm.WorkloadParams{
			Nodes: cfg.Nodes, Scale: cfg.Scale, Seed: cfg.Seed, Iterations: cfg.Iterations,
		}, nil, func(_ int, p specdsm.RTLPoint) error {
			if p.Failed != "" {
				note("rtl flight %d: %s", p.Flight, p.Failed)
			}
			points = append(points, p)
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Println(specdsm.RenderRTLSweep("em3d", points))
		manifest()
		fmt.Printf("[rtl sweep: %v]\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	if o.Only == "scaling" {
		// Beyond-paper study: like rtl it only runs when asked for, so
		// the default output stays the paper's tables, byte for byte.
		start := time.Now()
		var rows []specdsm.NodeScaling
		err := specdsm.NodeScalingStudyStream(cfg, nil, func(_ int, r specdsm.NodeScaling) error {
			if r.Failed != "" {
				note("scaling %s @ %d nodes: %s", r.App, r.Nodes, r.Failed)
			}
			rows = append(rows, r)
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Println(specdsm.RenderNodeScaling(rows))
		manifest()
		fmt.Printf("[scaling study: %v]\n", time.Since(start).Round(time.Millisecond))
		return nil
	}

	if len(o.Seeds) > 0 {
		start := time.Now()
		agg, err := specdsm.SpeculationStudySeeds(cfg, o.Seeds)
		if err != nil {
			return err
		}
		for _, a := range agg {
			if a.Failed > 0 {
				note("seeds %s: %d (seed, app) cell(s) failed", a.App, a.Failed)
			}
		}
		fmt.Println(specdsm.RenderFigure9Aggregate(agg))
		manifest()
		fmt.Printf("[multi-seed study: %v]\n", time.Since(start).Round(time.Millisecond))
		return nil
	}

	needPred := o.want("fig7") || o.want("fig8") || o.want("table3") || o.want("table4")
	if needPred {
		start := time.Now()
		study, err := specdsm.PredictorStudy(cfg)
		if err != nil {
			return err
		}
		for _, r := range study {
			if r.Failed != "" {
				note("predictor %s: %s", r.App, r.Failed)
			}
		}
		if o.want("fig7") {
			fmt.Println(specdsm.RenderFigure7(specdsm.Figure7(study)))
		}
		if o.want("fig8") {
			fmt.Println(specdsm.RenderFigure8(specdsm.Figure8(study, nil)))
		}
		if o.want("table3") {
			fmt.Println(specdsm.RenderTable3(specdsm.Table3(study)))
		}
		if o.want("table4") {
			fmt.Println(specdsm.RenderTable4(specdsm.Table4(study)))
		}
		fmt.Printf("[predictor study: %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	needSpec := o.want("fig9") || o.want("table5")
	if needSpec {
		start := time.Now()
		study, err := specdsm.SpeculationStudy(cfg)
		if err != nil {
			return err
		}
		for _, r := range study {
			if r.Failed != "" {
				note("speculation %s: %s", r.App, r.Failed)
			}
		}
		if o.want("fig9") {
			fmt.Println(specdsm.RenderFigure9(specdsm.Figure9(study)))
		}
		if o.want("table5") {
			fmt.Println(specdsm.RenderTable5(specdsm.Table5(study)))
		}
		fmt.Printf("[speculation study: %v]\n", time.Since(start).Round(time.Millisecond))
	}
	manifest()
	return nil
}
