package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"specdsm"
	"specdsm/internal/fault"
)

// runSpec is the fully parsed and validated CLI configuration. Flag
// handling lives here, separated from main's orchestration, so the
// flag→options mapping is unit-testable.
type runSpec struct {
	// Apps holds the applications to simulate (one result block each,
	// in order). Empty when Pattern is set.
	Apps    []string
	Pattern string
	WP      specdsm.WorkloadParams
	Opts    specdsm.MachineOptions
	// Parallel sizes the worker pool for multi-app sweeps (0 = one per
	// CPU). Output order and content are independent of it.
	Parallel int
	// Retries is the per-simulation retry budget for transient failures.
	Retries int
	// Inject arms deterministic fault injection (nil = off; testing).
	Inject   *fault.Injector
	TraceOut string
	List     bool
}

// parseRun builds a runSpec from raw command-line arguments (without
// the program name). Usage and error text go to errOut.
func parseRun(args []string, errOut io.Writer) (runSpec, error) {
	fs := flag.NewFlagSet("specdsm", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		app       = fs.String("app", "", "application workload(s), comma-separated (see -list)")
		pattern   = fs.String("pattern", "", "micro pattern: producer-consumer, migratory, stencil")
		mode      = fs.String("mode", "base", "DSM mode: base, fr, swi")
		nodes     = fs.Int("nodes", 0, "machine size (default 16 for apps, 4 for patterns)")
		iters     = fs.Int("iters", 0, "iterations (0 = default)")
		scale     = fs.Float64("scale", 1.0, "workload scale")
		seed      = fs.Int64("seed", 1, "generation seed")
		predictor = fs.String("predictor", "", "active predictor kind override (Cosmos, MSP, VMSP)")
		depth     = fs.Int("depth", 1, "active predictor history depth")
		conf      = fs.Int("confidence", 0, "confidence threshold for speculation (0 = paper behaviour)")
		capacity  = fs.Int("capacity", 0, "cache capacity in lines per node (0 = unbounded, paper assumption)")
		specUp    = fs.Bool("spec-upgrades", false, "enable the migratory speculative-upgrade extension")
		observe   = fs.Bool("observe", false, "attach Cosmos/MSP/VMSP observers (d=1) and report accuracy")
		traceOut  = fs.String("trace-out", "", "capture the coherence message trace to this file")
		parallel  = fs.Int("parallel", 0, "concurrent simulations for multi-app runs (0 = one per CPU)")
		retries   = fs.Int("retries", 0, "retry budget per simulation for transient failures (0 = fail fast)")
		faults    = fs.String("faults", "", "fault-injection spec for robustness testing, e.g. seed=7,transient=0.2")
		list      = fs.Bool("list", false, "list applications and exit")
	)
	if err := fs.Parse(args); err != nil {
		return runSpec{}, err
	}
	if fs.NArg() > 0 {
		return runSpec{}, fmt.Errorf("specdsm: unexpected argument %q", fs.Arg(0))
	}

	s := runSpec{
		Pattern:  *pattern,
		WP:       specdsm.WorkloadParams{Nodes: *nodes, Iterations: *iters, Scale: *scale, Seed: *seed},
		Parallel: *parallel,
		Retries:  *retries,
		TraceOut: *traceOut,
		List:     *list,
	}
	if s.Retries < 0 {
		return runSpec{}, fmt.Errorf("specdsm: -retries must not be negative, got %d", s.Retries)
	}
	if *faults != "" {
		inj, err := fault.ParseSpec(*faults)
		if err != nil {
			return runSpec{}, fmt.Errorf("specdsm: %w", err)
		}
		s.Inject = inj
	}
	if *app != "" {
		for _, a := range strings.Split(*app, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return runSpec{}, fmt.Errorf("specdsm: empty entry in -app %q", *app)
			}
			s.Apps = append(s.Apps, a)
		}
	}
	if s.List {
		return s, nil
	}
	switch {
	case len(s.Apps) > 0 && s.Pattern != "":
		return runSpec{}, fmt.Errorf("specdsm: -app and -pattern are mutually exclusive")
	case len(s.Apps) == 0 && s.Pattern == "":
		return runSpec{}, fmt.Errorf("specdsm: need -app or -pattern (or -list)")
	}
	if s.TraceOut != "" && len(s.Apps) > 1 {
		return runSpec{}, fmt.Errorf("specdsm: -trace-out needs a single workload, got %d apps", len(s.Apps))
	}

	s.Opts = specdsm.MachineOptions{
		Mode:          specdsm.Mode(*mode),
		SpecUpgrades:  *specUp,
		CacheCapacity: *capacity,
	}
	if *predictor != "" || *conf > 0 {
		kind := specdsm.VMSP
		if *predictor != "" {
			kind = specdsm.PredictorKind(*predictor)
		}
		s.Opts.Active = &specdsm.PredictorConfig{Kind: kind, Depth: *depth, Confidence: *conf}
	}
	if *observe {
		for _, k := range specdsm.Kinds() {
			s.Opts.Observers = append(s.Opts.Observers, specdsm.PredictorConfig{Kind: k, Depth: 1})
		}
	}
	return s, nil
}

// workloads instantiates every workload the spec names, in order.
func (s runSpec) workloads() ([]specdsm.Workload, error) {
	if s.Pattern != "" {
		w, err := specdsm.MicroWorkload(specdsm.MicroPattern(s.Pattern), s.WP)
		if err != nil {
			return nil, err
		}
		return []specdsm.Workload{w}, nil
	}
	out := make([]specdsm.Workload, len(s.Apps))
	for i, a := range s.Apps {
		w, err := specdsm.AppWorkload(a, s.WP)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}
