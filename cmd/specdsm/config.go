package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"strings"

	"specdsm"
	"specdsm/internal/fault"
)

// runSpec is the fully parsed and validated CLI configuration. Flag
// handling lives here, separated from main's orchestration, so the
// flag→options mapping is unit-testable.
type runSpec struct {
	// Apps holds the applications to simulate (one result block each,
	// in order). Empty when Pattern is set.
	Apps    []string
	Pattern string
	WP      specdsm.WorkloadParams
	Opts    specdsm.MachineOptions
	// Parallel sizes the worker pool for multi-app sweeps (0 = one per
	// CPU). Output order and content are independent of it.
	Parallel int
	// Retries is the per-simulation retry budget for transient failures.
	Retries int
	// Inject arms deterministic fault injection (nil = off; testing).
	Inject *fault.Injector
	// FaultSpec is the raw -faults spec (Inject is its parsed form); the
	// app sweep ships it through StudyConfig so remote shards apply the
	// identical schedule.
	FaultSpec string
	// KeepGoing prints fatally failed simulations as FAILED blocks and
	// continues instead of aborting the sweep (app sweeps only).
	KeepGoing bool
	// Checkpoint/Resume/Salvage/CheckpointEvery persist and resume the
	// app sweep exactly as in paperrepro (see StudyConfig).
	Checkpoint      string
	Resume          bool
	Salvage         bool
	CheckpointEvery int
	// Remote fans the app sweep out to sweepd shard workers (host:port).
	Remote   []string
	TraceOut string
	List     bool
}

// parseRun builds a runSpec from raw command-line arguments (without
// the program name). Usage and error text go to errOut.
func parseRun(args []string, errOut io.Writer) (runSpec, error) {
	fs := flag.NewFlagSet("specdsm", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		app       = fs.String("app", "", "application workload(s), comma-separated (see -list)")
		pattern   = fs.String("pattern", "", "micro pattern: producer-consumer, migratory, stencil")
		mode      = fs.String("mode", "base", "DSM mode: base, fr, swi")
		nodes     = fs.Int("nodes", 0, "machine size (default 16 for apps, 4 for patterns)")
		iters     = fs.Int("iters", 0, "iterations (0 = default)")
		scale     = fs.Float64("scale", 1.0, "workload scale")
		seed      = fs.Int64("seed", 1, "generation seed")
		predictor = fs.String("predictor", "", "active predictor kind override (Cosmos, MSP, VMSP)")
		depth     = fs.Int("depth", 1, "active predictor history depth")
		conf      = fs.Int("confidence", 0, "confidence threshold for speculation (0 = paper behaviour)")
		capacity  = fs.Int("capacity", 0, "cache capacity in lines per node (0 = unbounded, paper assumption)")
		specUp    = fs.Bool("spec-upgrades", false, "enable the migratory speculative-upgrade extension")
		observe   = fs.Bool("observe", false, "attach Cosmos/MSP/VMSP observers (d=1) and report accuracy")
		traceOut  = fs.String("trace-out", "", "capture the coherence message trace to this file")
		parallel  = fs.Int("parallel", 0, "concurrent simulations for multi-app runs (0 = one per CPU)")
		retries   = fs.Int("retries", 0, "retry budget per simulation for transient failures (0 = fail fast)")
		faults    = fs.String("faults", "", "fault-injection spec for robustness testing, e.g. seed=7,transient=0.2")
		keep      = fs.Bool("keep-going", false, "print fatally failed simulations as FAILED blocks and continue instead of aborting (multi-app runs)")
		ckpt      = fs.String("checkpoint", "", "checkpoint the app sweep to this base path (PATH.sweep)")
		resume    = fs.Bool("resume", false, "resume from a -checkpoint file left by an interrupted run")
		salvage   = fs.Bool("resume-salvage", false, "like -resume, but truncate a corrupted checkpoint to its longest valid prefix instead of failing")
		ckEvery   = fs.Int("checkpoint-every", 0, "flush the checkpoint every N completed simulations (0 = default cadence)")
		remoteF   = fs.String("remote", "", "comma-separated sweepd workers (host:port) to fan the app sweep out to; output stays byte-identical to -parallel 1")
		list      = fs.Bool("list", false, "list applications and exit")
	)
	if err := fs.Parse(args); err != nil {
		return runSpec{}, err
	}
	if fs.NArg() > 0 {
		return runSpec{}, fmt.Errorf("specdsm: unexpected argument %q", fs.Arg(0))
	}

	s := runSpec{
		Pattern:         *pattern,
		WP:              specdsm.WorkloadParams{Nodes: *nodes, Iterations: *iters, Scale: *scale, Seed: *seed},
		Parallel:        *parallel,
		Retries:         *retries,
		FaultSpec:       *faults,
		KeepGoing:       *keep,
		Checkpoint:      *ckpt,
		Resume:          *resume || *salvage,
		Salvage:         *salvage,
		CheckpointEvery: *ckEvery,
		TraceOut:        *traceOut,
		List:            *list,
	}
	if s.Retries < 0 {
		return runSpec{}, fmt.Errorf("specdsm: -retries must not be negative, got %d", s.Retries)
	}
	if s.CheckpointEvery < 0 {
		return runSpec{}, fmt.Errorf("specdsm: -checkpoint-every must be positive, got %d", s.CheckpointEvery)
	}
	if s.Resume && s.Checkpoint == "" {
		if s.Salvage {
			return runSpec{}, fmt.Errorf("specdsm: -resume-salvage requires -checkpoint")
		}
		return runSpec{}, fmt.Errorf("specdsm: -resume requires -checkpoint")
	}
	if *faults != "" {
		inj, err := fault.ParseSpec(*faults)
		if err != nil {
			return runSpec{}, fmt.Errorf("specdsm: %w", err)
		}
		s.Inject = inj
	}
	if *app != "" {
		for _, a := range strings.Split(*app, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return runSpec{}, fmt.Errorf("specdsm: empty entry in -app %q", *app)
			}
			s.Apps = append(s.Apps, a)
		}
	}
	if *remoteF != "" {
		for _, h := range strings.Split(*remoteF, ",") {
			h = strings.TrimSpace(h)
			if h == "" {
				return runSpec{}, fmt.Errorf("specdsm: empty entry in -remote %q", *remoteF)
			}
			if _, _, err := net.SplitHostPort(h); err != nil {
				return runSpec{}, fmt.Errorf("specdsm: invalid -remote shard address %q (want host:port): %v", h, err)
			}
			s.Remote = append(s.Remote, h)
		}
	}
	if s.List {
		return s, nil
	}
	switch {
	case len(s.Apps) > 0 && s.Pattern != "":
		return runSpec{}, fmt.Errorf("specdsm: -app and -pattern are mutually exclusive")
	case len(s.Apps) == 0 && s.Pattern == "":
		return runSpec{}, fmt.Errorf("specdsm: need -app or -pattern (or -list)")
	}
	if s.TraceOut != "" && len(s.Apps) > 1 {
		return runSpec{}, fmt.Errorf("specdsm: -trace-out needs a single workload, got %d apps", len(s.Apps))
	}
	// The sweep machinery (checkpointing, keep-going, remote dispatch)
	// drives the app sweep; a single -pattern or -trace-out run has no
	// job space for it to manage.
	if s.Pattern != "" || s.TraceOut != "" {
		switch {
		case len(s.Remote) > 0:
			return runSpec{}, fmt.Errorf("specdsm: -remote needs an -app sweep")
		case s.Checkpoint != "":
			return runSpec{}, fmt.Errorf("specdsm: -checkpoint needs an -app sweep")
		case s.KeepGoing:
			return runSpec{}, fmt.Errorf("specdsm: -keep-going needs an -app sweep")
		}
	}

	s.Opts = specdsm.MachineOptions{
		Mode:          specdsm.Mode(*mode),
		SpecUpgrades:  *specUp,
		CacheCapacity: *capacity,
	}
	if *predictor != "" || *conf > 0 {
		kind := specdsm.VMSP
		if *predictor != "" {
			kind = specdsm.PredictorKind(*predictor)
		}
		s.Opts.Active = &specdsm.PredictorConfig{Kind: kind, Depth: *depth, Confidence: *conf}
	}
	if *observe {
		for _, k := range specdsm.Kinds() {
			s.Opts.Observers = append(s.Opts.Observers, specdsm.PredictorConfig{Kind: k, Depth: 1})
		}
	}
	return s, nil
}

// workloads instantiates every workload the spec names, in order.
func (s runSpec) workloads() ([]specdsm.Workload, error) {
	if s.Pattern != "" {
		w, err := specdsm.MicroWorkload(specdsm.MicroPattern(s.Pattern), s.WP)
		if err != nil {
			return nil, err
		}
		return []specdsm.Workload{w}, nil
	}
	out := make([]specdsm.Workload, len(s.Apps))
	for i, a := range s.Apps {
		w, err := specdsm.AppWorkload(a, s.WP)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}
