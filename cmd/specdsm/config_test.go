package main

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"specdsm"
)

func TestParseRunSingleApp(t *testing.T) {
	s, err := parseRun([]string{"-app", "em3d", "-mode", "swi", "-scale", "0.5", "-seed", "3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Apps, []string{"em3d"}) {
		t.Fatalf("apps = %v", s.Apps)
	}
	if s.Opts.Mode != specdsm.ModeSWI {
		t.Fatalf("mode = %q", s.Opts.Mode)
	}
	want := specdsm.WorkloadParams{Nodes: 0, Iterations: 0, Scale: 0.5, Seed: 3}
	if s.WP != want {
		t.Fatalf("wp = %+v, want %+v", s.WP, want)
	}
	if s.Opts.Active != nil || len(s.Opts.Observers) != 0 {
		t.Fatalf("unexpected predictors: %+v", s.Opts)
	}
}

func TestParseRunMultiAppParallel(t *testing.T) {
	s, err := parseRun([]string{"-app", "em3d, moldyn,ocean", "-parallel", "3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Apps, []string{"em3d", "moldyn", "ocean"}) {
		t.Fatalf("apps = %v", s.Apps)
	}
	if s.Parallel != 3 {
		t.Fatalf("parallel = %d", s.Parallel)
	}
	ws, err := s.workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[0].Name != "em3d" || ws[2].Name != "ocean" {
		t.Fatalf("workloads = %+v", ws)
	}
}

func TestParseRunPredictorOverride(t *testing.T) {
	s, err := parseRun([]string{"-app", "moldyn", "-mode", "swi", "-predictor", "MSP", "-depth", "2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := &specdsm.PredictorConfig{Kind: specdsm.MSP, Depth: 2}
	if !reflect.DeepEqual(s.Opts.Active, want) {
		t.Fatalf("active = %+v, want %+v", s.Opts.Active, want)
	}
}

func TestParseRunObserve(t *testing.T) {
	s, err := parseRun([]string{"-app", "em3d", "-observe"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Opts.Observers) != 3 {
		t.Fatalf("observers = %+v", s.Opts.Observers)
	}
}

func TestParseRunPattern(t *testing.T) {
	s, err := parseRun([]string{"-pattern", "migratory", "-nodes", "4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0].Name != "migratory" || ws[0].Nodes != 4 {
		t.Fatalf("workloads = %+v", ws)
	}
}

func TestParseRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"app and pattern", []string{"-app", "em3d", "-pattern", "migratory"}, "mutually exclusive"},
		{"neither", nil, "need -app or -pattern"},
		{"trace multi app", []string{"-app", "em3d,moldyn", "-trace-out", "t.log"}, "single workload"},
		{"empty app entry", []string{"-app", "em3d,"}, "empty entry"},
		{"stray positional", []string{"-app", "em3d", "swi"}, "unexpected argument"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseRun(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want substring %q", err, tc.frag)
			}
		})
	}
}

func TestParseRunList(t *testing.T) {
	s, err := parseRun([]string{"-list"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !s.List {
		t.Fatal("List not set")
	}
}

// TestRunMultiAppOutputMatchesSequential drives the full run path: a
// three-app sweep at -parallel 4 must print byte-identical output to
// -parallel 1.
func TestRunMultiAppOutputMatchesSequential(t *testing.T) {
	args := []string{"-app", "em3d,moldyn,tomcatv", "-mode", "swi", "-scale", "0.25", "-iters", "2", "-nodes", "8"}
	render := func(parallel int) string {
		s, err := parseRun(args, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		s.Parallel = parallel
		var b strings.Builder
		if err := run(s, &b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("parallel output diverged from sequential:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if n := strings.Count(seq, "workload            "); n != 3 {
		t.Fatalf("%d report blocks, want 3", n)
	}
	for i, app := range []string{"em3d", "moldyn", "tomcatv"} {
		if !strings.Contains(seq, app) {
			t.Fatalf("report %d missing app %s:\n%s", i, app, seq)
		}
	}
}

func TestParseRunSweepFlags(t *testing.T) {
	s, err := parseRun([]string{
		"-app", "em3d,moldyn",
		"-remote", "127.0.0.1:7701, 127.0.0.1:7702",
		"-keep-going", "-checkpoint", "run.ck", "-resume-salvage", "-checkpoint-every", "2",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Remote, []string{"127.0.0.1:7701", "127.0.0.1:7702"}) {
		t.Fatalf("Remote = %v", s.Remote)
	}
	if !s.KeepGoing || s.Checkpoint != "run.ck" || s.CheckpointEvery != 2 {
		t.Fatalf("sweep flags not threaded into spec: %+v", s)
	}
	if !s.Salvage || !s.Resume {
		t.Fatalf("-resume-salvage must imply Resume, got %+v", s)
	}
}

// TestParseRunSweepFlagErrors pins exit-2 validation for the sweep
// machinery flags: bad or empty -remote entries, resume without a
// checkpoint, and sweep-only flags on non-sweep runs are all caught at
// parse time rather than surfacing as runtime failures.
func TestParseRunSweepFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string
	}{
		{"remote bad host", []string{"-app", "em3d", "-remote", "nonsense"}, "want host:port"},
		{"remote empty entry", []string{"-app", "em3d", "-remote", "127.0.0.1:7701,,127.0.0.1:7702"}, "empty entry"},
		{"remote with pattern", []string{"-pattern", "migratory", "-remote", "127.0.0.1:7701"}, "-remote needs an -app sweep"},
		{"checkpoint with pattern", []string{"-pattern", "migratory", "-checkpoint", "ck"}, "-checkpoint needs an -app sweep"},
		{"keep-going with trace", []string{"-app", "em3d", "-trace-out", "t.log", "-keep-going"}, "-keep-going needs an -app sweep"},
		{"resume without checkpoint", []string{"-app", "em3d", "-resume"}, "-resume requires -checkpoint"},
		{"salvage without checkpoint", []string{"-app", "em3d", "-resume-salvage"}, "-resume-salvage requires -checkpoint"},
		{"negative checkpoint cadence", []string{"-app", "em3d", "-checkpoint", "ck", "-checkpoint-every", "-2"}, "-checkpoint-every"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseRun(tc.args, io.Discard)
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want substring %q", err, tc.frag)
			}
		})
	}
}

func TestParseRunFailureFlags(t *testing.T) {
	s, err := parseRun([]string{"-app", "em3d", "-retries", "2", "-faults", "seed=5,transient=0.1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Retries)
	}
	if s.Inject == nil {
		t.Fatal("fault spec not parsed into an injector")
	}
	if _, err := parseRun([]string{"-app", "em3d", "-retries", "-1"}, io.Discard); err == nil {
		t.Fatal("negative -retries accepted")
	}
	if _, err := parseRun([]string{"-app", "em3d", "-faults", "transient=wat"}, io.Discard); err == nil {
		t.Fatal("malformed -faults accepted")
	}
}
