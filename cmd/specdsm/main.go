// Command specdsm runs a single workload on a single DSM configuration
// and prints the run's measurements:
//
//	specdsm -app em3d -mode swi
//	specdsm -app unstructured -mode fr -scale 0.5 -seed 3
//	specdsm -pattern producer-consumer -mode swi -nodes 4
//	specdsm -app moldyn -mode swi -predictor MSP -depth 2
//	specdsm -app moldyn -mode swi -spec-upgrades
package main

import (
	"flag"
	"fmt"
	"os"

	"specdsm"
)

func main() {
	var (
		app       = flag.String("app", "", "application workload (see -list)")
		pattern   = flag.String("pattern", "", "micro pattern: producer-consumer, migratory, stencil")
		mode      = flag.String("mode", "base", "DSM mode: base, fr, swi")
		nodes     = flag.Int("nodes", 0, "machine size (default 16 for apps, 4 for patterns)")
		iters     = flag.Int("iters", 0, "iterations (0 = default)")
		scale     = flag.Float64("scale", 1.0, "workload scale")
		seed      = flag.Int64("seed", 1, "generation seed")
		predictor = flag.String("predictor", "", "active predictor kind override (Cosmos, MSP, VMSP)")
		depth     = flag.Int("depth", 1, "active predictor history depth")
		conf      = flag.Int("confidence", 0, "confidence threshold for speculation (0 = paper behaviour)")
		capacity  = flag.Int("capacity", 0, "cache capacity in lines per node (0 = unbounded, paper assumption)")
		specUp    = flag.Bool("spec-upgrades", false, "enable the migratory speculative-upgrade extension")
		observe   = flag.Bool("observe", false, "attach Cosmos/MSP/VMSP observers (d=1) and report accuracy")
		traceOut  = flag.String("trace-out", "", "capture the coherence message trace to this file")
		list      = flag.Bool("list", false, "list applications and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range specdsm.AppInfos() {
			fmt.Printf("%-13s %s\n", a.Name, a.Description)
		}
		return
	}

	wp := specdsm.WorkloadParams{Nodes: *nodes, Iterations: *iters, Scale: *scale, Seed: *seed}
	var (
		w   specdsm.Workload
		err error
	)
	switch {
	case *app != "" && *pattern != "":
		fmt.Fprintln(os.Stderr, "specdsm: -app and -pattern are mutually exclusive")
		os.Exit(2)
	case *app != "":
		w, err = specdsm.AppWorkload(*app, wp)
	case *pattern != "":
		w, err = specdsm.MicroWorkload(specdsm.MicroPattern(*pattern), wp)
	default:
		fmt.Fprintln(os.Stderr, "specdsm: need -app or -pattern (or -list)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := specdsm.MachineOptions{
		Mode:          specdsm.Mode(*mode),
		SpecUpgrades:  *specUp,
		CacheCapacity: *capacity,
	}
	if *predictor != "" || *conf > 0 {
		kind := specdsm.VMSP
		if *predictor != "" {
			kind = specdsm.PredictorKind(*predictor)
		}
		opts.Active = &specdsm.PredictorConfig{Kind: kind, Depth: *depth, Confidence: *conf}
	}
	if *observe {
		for _, k := range specdsm.Kinds() {
			opts.Observers = append(opts.Observers, specdsm.PredictorConfig{Kind: k, Depth: 1})
		}
	}

	var r *specdsm.RunResult
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		var sum specdsm.TraceSummary
		r, sum, err = specdsm.CaptureTrace(w, opts, f)
		cerr := f.Close()
		if err == nil && cerr != nil {
			err = cerr
		}
		if err == nil {
			fmt.Printf("trace               %s (%d events, %d blocks)\n", *traceOut, sum.Events, sum.Blocks)
		}
	} else {
		r, err = specdsm.Run(w, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload            %s (%d nodes, %d ops)\n", r.Workload, r.Nodes, w.Ops())
	fmt.Printf("mode                %s\n", r.Mode)
	fmt.Printf("execution time      %d cycles\n", r.Cycles)
	fmt.Printf("compute cycles      %d\n", r.ComputeCycles)
	fmt.Printf("sync cycles         %d\n", r.SyncCycles)
	fmt.Printf("request wait cycles %d (%.1f%% of processor time)\n",
		r.RequestWaitCycles, r.RequestShare()*100)
	fmt.Printf("requests            %d reads, %d writes, %d upgrades\n",
		r.Reads, r.Writes, r.Upgrades)
	if r.Mode != specdsm.ModeBase {
		fmt.Printf("speculative reads   %d via FR, %d via SWI (%d hits, %d verified misses, %d dropped)\n",
			r.SpecReadsFR, r.SpecReadsSWI, r.SpecHits, r.SpecReadUnused, r.SpecDropped)
		fmt.Printf("SWI                 %d recalls, %d premature\n", r.SWIRecalls, r.SWIPremature)
	}
	if *capacity > 0 {
		fmt.Printf("cache               %d lines/node, %d evictions (%d writebacks)\n",
			*capacity, r.Evictions, r.EvictionWritebacks)
		if *specUp {
			fmt.Printf("spec upgrades       %d granted, %d misfires\n", r.SpecUpgrades, r.SpecUpgradeMisfires)
		}
	}
	for _, p := range r.Predictors {
		fmt.Printf("predictor %-7s d=%d  accuracy %5.1f%%  coverage %5.1f%%  pte %.1f\n",
			p.Kind, p.Depth, p.Accuracy*100, p.Coverage*100, p.EntriesPerBlock)
	}
}
