// Command specdsm runs one or more workloads on a single DSM
// configuration and prints each run's measurements:
//
//	specdsm -app em3d -mode swi
//	specdsm -app unstructured -mode fr -scale 0.5 -seed 3
//	specdsm -app em3d,moldyn,ocean -mode swi -parallel 4
//	specdsm -pattern producer-consumer -mode swi -nodes 4
//	specdsm -app moldyn -mode swi -predictor MSP -depth 2
//	specdsm -app moldyn -mode swi -spec-upgrades
//
// With a comma-separated -app list the simulations fan out across a
// -parallel-wide worker pool; reports stream out in the order the apps
// were named, independent of completion order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"specdsm"
	"specdsm/internal/sweep"
)

func main() {
	spec, err := parseRun(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if spec.List {
		for _, a := range specdsm.AppInfos() {
			fmt.Printf("%-13s %s\n", a.Name, a.Description)
		}
		return
	}
	if err := run(spec, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(spec runSpec, out io.Writer) error {
	workloads, err := spec.workloads()
	if err != nil {
		return err
	}

	if spec.TraceOut != "" {
		f, err := os.Create(spec.TraceOut)
		if err != nil {
			return err
		}
		r, sum, err := specdsm.CaptureTrace(workloads[0], spec.Opts, f)
		cerr := f.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "trace               %s (%d events, %d blocks)\n", spec.TraceOut, sum.Events, sum.Blocks)
		return writeReport(out, r, workloads[0].Ops(), spec.Opts)
	}

	p := sweep.New(spec.Parallel)
	p.Retries = spec.Retries
	p.RetrySeed = uint64(spec.WP.Seed)
	p.Inject = spec.Inject
	return sweep.Stream(context.Background(), p, len(workloads),
		func(_ context.Context, i int) (*specdsm.RunResult, error) {
			return specdsm.Run(workloads[i], spec.Opts)
		},
		func(i int, r *specdsm.RunResult) error {
			if i > 0 {
				fmt.Fprintln(out)
			}
			return writeReport(out, r, workloads[i].Ops(), spec.Opts)
		})
}

// writeReport prints one run's measurement block. The block is staged
// in a builder so out sees a single write whose error (e.g. a broken
// pipe mid-sweep) aborts the remaining reports instead of vanishing.
func writeReport(out io.Writer, r *specdsm.RunResult, ops int, opts specdsm.MachineOptions) error {
	var b strings.Builder
	fmt.Fprintf(&b, "workload            %s (%d nodes, %d ops)\n", r.Workload, r.Nodes, ops)
	fmt.Fprintf(&b, "mode                %s\n", r.Mode)
	fmt.Fprintf(&b, "execution time      %d cycles\n", r.Cycles)
	fmt.Fprintf(&b, "compute cycles      %d\n", r.ComputeCycles)
	fmt.Fprintf(&b, "sync cycles         %d\n", r.SyncCycles)
	fmt.Fprintf(&b, "request wait cycles %d (%.1f%% of processor time)\n",
		r.RequestWaitCycles, r.RequestShare()*100)
	fmt.Fprintf(&b, "requests            %d reads, %d writes, %d upgrades\n",
		r.Reads, r.Writes, r.Upgrades)
	if r.Mode != specdsm.ModeBase {
		fmt.Fprintf(&b, "speculative reads   %d via FR, %d via SWI (%d hits, %d verified misses, %d dropped)\n",
			r.SpecReadsFR, r.SpecReadsSWI, r.SpecHits, r.SpecReadUnused, r.SpecDropped)
		fmt.Fprintf(&b, "SWI                 %d recalls, %d premature\n", r.SWIRecalls, r.SWIPremature)
	}
	if opts.CacheCapacity > 0 {
		fmt.Fprintf(&b, "cache               %d lines/node, %d evictions (%d writebacks)\n",
			opts.CacheCapacity, r.Evictions, r.EvictionWritebacks)
		if opts.SpecUpgrades {
			fmt.Fprintf(&b, "spec upgrades       %d granted, %d misfires\n", r.SpecUpgrades, r.SpecUpgradeMisfires)
		}
	}
	for _, p := range r.Predictors {
		fmt.Fprintf(&b, "predictor %-7s d=%d  accuracy %5.1f%%  coverage %5.1f%%  pte %.1f\n",
			p.Kind, p.Depth, p.Accuracy*100, p.Coverage*100, p.EntriesPerBlock)
	}
	_, err := io.WriteString(out, b.String())
	return err
}
