// Command specdsm runs one or more workloads on a single DSM
// configuration and prints each run's measurements:
//
//	specdsm -app em3d -mode swi
//	specdsm -app unstructured -mode fr -scale 0.5 -seed 3
//	specdsm -app em3d,moldyn,ocean -mode swi -parallel 4
//	specdsm -pattern producer-consumer -mode swi -nodes 4
//	specdsm -app moldyn -mode swi -predictor MSP -depth 2
//	specdsm -app moldyn -mode swi -spec-upgrades
//	specdsm -app em3d,moldyn,ocean -checkpoint run.ck -resume
//	specdsm -app em3d,moldyn,ocean -keep-going
//	specdsm -app em3d,moldyn,ocean -remote 127.0.0.1:7701,127.0.0.1:7702
//
// With a comma-separated -app list the simulations fan out across a
// -parallel-wide worker pool; reports stream out in the order the apps
// were named, independent of completion order. App sweeps get the full
// sweep machinery paperrepro has: -checkpoint/-resume/-resume-salvage
// persist and continue interrupted runs, -keep-going prints fatally
// failed simulations as FAILED blocks instead of aborting, and -remote
// fans the sweep out to sweepd shard workers — in every case the report
// stream stays byte-identical to a plain -parallel 1 run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"specdsm"
	"specdsm/internal/sweep"
)

func main() {
	spec, err := parseRun(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if spec.List {
		for _, a := range specdsm.AppInfos() {
			fmt.Printf("%-13s %s\n", a.Name, a.Description)
		}
		return
	}
	err = run(spec, os.Stdout)
	var km *sweep.KeyMismatchError
	if errors.As(err, &km) {
		// Same wrong-invocation diagnosis as paperrepro: the checkpoint
		// is intact but belongs to a different sweep configuration.
		fmt.Fprintf(os.Stderr, "specdsm: checkpoint %s was recorded under different sweep parameters:\n", km.Path)
		for _, line := range km.Diff() {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		fmt.Fprintf(os.Stderr, "fix: rerun with the flags listed above, or remove %s to start this configuration fresh\n", km.Path)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(spec runSpec, out io.Writer) error {
	workloads, err := spec.workloads()
	if err != nil {
		return err
	}

	if spec.TraceOut != "" {
		f, err := os.Create(spec.TraceOut)
		if err != nil {
			return err
		}
		r, sum, err := specdsm.CaptureTrace(workloads[0], spec.Opts, f)
		cerr := f.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "trace               %s (%d events, %d blocks)\n", spec.TraceOut, sum.Events, sum.Blocks)
		return writeReport(out, r, workloads[0].Ops(), spec.Opts)
	}

	if spec.Pattern != "" {
		// Micro-patterns are a single direct run; the sweep machinery
		// below is app-sweep-only (parseRun enforces that).
		p := sweep.New(spec.Parallel)
		p.Retries = spec.Retries
		p.RetrySeed = uint64(spec.WP.Seed)
		p.Inject = spec.Inject
		return sweep.Stream(context.Background(), p, len(workloads),
			func(_ context.Context, i int) (*specdsm.RunResult, error) {
				return specdsm.Run(workloads[i], spec.Opts)
			},
			func(i int, r *specdsm.RunResult) error {
				return writeReport(out, r, workloads[i].Ops(), spec.Opts)
			})
	}

	// App sweeps run through the library's study engine, which layers
	// checkpoint/resume, keep-going, and remote shard dispatch over the
	// worker pool. The engine merges results in index order, so the
	// report stream is byte-identical to the old direct path — and to
	// itself at any -parallel value or -remote fleet size.
	cfg := specdsm.StudyConfig{
		Apps:            spec.Apps,
		Nodes:           spec.WP.Nodes,
		Iterations:      spec.WP.Iterations,
		Scale:           spec.WP.Scale,
		Seed:            spec.WP.Seed,
		Parallel:        spec.Parallel,
		Retries:         spec.Retries,
		FaultSpec:       spec.FaultSpec,
		KeepGoing:       spec.KeepGoing,
		CheckpointPath:  spec.Checkpoint,
		Resume:          spec.Resume,
		Salvage:         spec.Salvage,
		CheckpointEvery: spec.CheckpointEvery,
		Remote:          spec.Remote,
	}
	if spec.Salvage {
		cfg.OnSalvage = func(study string, rep sweep.SalvageReport) {
			fmt.Fprintf(os.Stderr, "specdsm: checkpoint %s.%s: salvaged %d rows, dropped %d bytes (%s)\n",
				spec.Checkpoint, study, rep.Rows, rep.DroppedBytes, rep.Reason)
		}
	}
	var fail sweep.FailFunc
	if spec.KeepGoing {
		fail = func(i int, ferr error) error {
			if i > 0 {
				fmt.Fprintln(out)
			}
			_, werr := fmt.Fprintf(out, "workload            %s\nFAILED              %v\n", spec.Apps[i], ferr)
			return werr
		}
	}
	return specdsm.RunSweepStream(cfg, spec.Opts,
		func(i int, r *specdsm.RunResult) error {
			if i > 0 {
				fmt.Fprintln(out)
			}
			return writeReport(out, r, workloads[i].Ops(), spec.Opts)
		}, fail)
}

// writeReport prints one run's measurement block. The block is staged
// in a builder so out sees a single write whose error (e.g. a broken
// pipe mid-sweep) aborts the remaining reports instead of vanishing.
func writeReport(out io.Writer, r *specdsm.RunResult, ops int, opts specdsm.MachineOptions) error {
	var b strings.Builder
	fmt.Fprintf(&b, "workload            %s (%d nodes, %d ops)\n", r.Workload, r.Nodes, ops)
	fmt.Fprintf(&b, "mode                %s\n", r.Mode)
	fmt.Fprintf(&b, "execution time      %d cycles\n", r.Cycles)
	fmt.Fprintf(&b, "compute cycles      %d\n", r.ComputeCycles)
	fmt.Fprintf(&b, "sync cycles         %d\n", r.SyncCycles)
	fmt.Fprintf(&b, "request wait cycles %d (%.1f%% of processor time)\n",
		r.RequestWaitCycles, r.RequestShare()*100)
	fmt.Fprintf(&b, "requests            %d reads, %d writes, %d upgrades\n",
		r.Reads, r.Writes, r.Upgrades)
	if r.Mode != specdsm.ModeBase {
		fmt.Fprintf(&b, "speculative reads   %d via FR, %d via SWI (%d hits, %d verified misses, %d dropped)\n",
			r.SpecReadsFR, r.SpecReadsSWI, r.SpecHits, r.SpecReadUnused, r.SpecDropped)
		fmt.Fprintf(&b, "SWI                 %d recalls, %d premature\n", r.SWIRecalls, r.SWIPremature)
	}
	if opts.CacheCapacity > 0 {
		fmt.Fprintf(&b, "cache               %d lines/node, %d evictions (%d writebacks)\n",
			opts.CacheCapacity, r.Evictions, r.EvictionWritebacks)
		if opts.SpecUpgrades {
			fmt.Fprintf(&b, "spec upgrades       %d granted, %d misfires\n", r.SpecUpgrades, r.SpecUpgradeMisfires)
		}
	}
	for _, p := range r.Predictors {
		fmt.Fprintf(&b, "predictor %-7s d=%d  accuracy %5.1f%%  coverage %5.1f%%  pte %.1f\n",
			p.Kind, p.Depth, p.Accuracy*100, p.Coverage*100, p.EntriesPerBlock)
	}
	_, err := io.WriteString(out, b.String())
	return err
}
