package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"specdsm/internal/fault"
)

// daemonSpec is the fully parsed and validated sweepd configuration.
// Flag handling lives here, separated from main's serving loop, so the
// flag→config mapping is unit-testable.
type daemonSpec struct {
	// Listen is the TCP address to serve on; port 0 picks a free port
	// (the daemon prints the resolved address on stdout either way, so
	// harnesses can scrape it).
	Listen string
	// Inject arms connection-level fault injection on every accepted
	// dispatcher connection (nil = off; chaos testing).
	Inject *fault.Injector
	// HeartbeatEvery overrides the liveness cadence while a batch
	// executes (0 = the server default).
	HeartbeatEvery time.Duration
}

// connFaultKeys are the fault-spec keys that make sense on a worker's
// connections. Job-level keys (transient, panic, delay) are refused
// here: job faults belong in the dispatcher's study spec, where every
// executor — any shard, or the dispatcher's local fallback — applies
// the identical schedule. A worker injecting private job faults would
// break the contract that a job's outcome is shard-independent.
var connFaultKeys = map[string]bool{
	"seed": true, "delaymax": true,
	"conndrop": true, "connshort": true, "conndelay": true,
}

// parseDaemon builds a daemonSpec from raw command-line arguments
// (without the program name). Usage and error text go to errOut.
func parseDaemon(args []string, errOut io.Writer) (daemonSpec, error) {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "TCP address to serve on (port 0 picks a free port; the resolved address is printed on stdout)")
		faults    = fs.String("faults", "", "connection-fault spec for chaos testing, e.g. seed=7,conndrop=0.01,connshort=0.2 (conn-level keys only)")
		heartbeat = fs.Duration("heartbeat-every", 0, "liveness cadence while a batch executes (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return daemonSpec{}, err
	}
	if fs.NArg() > 0 {
		return daemonSpec{}, fmt.Errorf("sweepd: unexpected argument %q", fs.Arg(0))
	}
	s := daemonSpec{Listen: *listen, HeartbeatEvery: *heartbeat}
	if s.HeartbeatEvery < 0 {
		return daemonSpec{}, fmt.Errorf("sweepd: -heartbeat-every must not be negative, got %v", s.HeartbeatEvery)
	}
	if *faults != "" {
		for _, kv := range strings.Split(*faults, ",") {
			key, _, _ := strings.Cut(strings.TrimSpace(kv), "=")
			if !connFaultKeys[key] {
				return daemonSpec{}, fmt.Errorf("sweepd: -faults key %q is not a connection-level fault (job faults belong in the dispatcher's -faults, so every shard applies them identically)", key)
			}
		}
		inj, err := fault.ParseSpec(*faults)
		if err != nil {
			return daemonSpec{}, fmt.Errorf("sweepd: %w", err)
		}
		s.Inject = inj
	}
	return s, nil
}
