package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseDaemonDefaults(t *testing.T) {
	s, err := parseDaemon(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s.Listen != "127.0.0.1:0" || s.Inject != nil || s.HeartbeatEvery != 0 {
		t.Fatalf("defaults parsed into %+v", s)
	}
}

func TestParseDaemonFlags(t *testing.T) {
	s, err := parseDaemon([]string{
		"-listen", "0.0.0.0:7701",
		"-faults", "seed=7,conndrop=0.01,connshort=0.2,conndelay=0.1",
		"-heartbeat-every", "100ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s.Listen != "0.0.0.0:7701" || s.HeartbeatEvery != 100*time.Millisecond {
		t.Fatalf("flags parsed into %+v", s)
	}
	if s.Inject == nil || s.Inject.ConnDrop != 0.01 {
		t.Fatalf("faults parsed into %+v", s.Inject)
	}
}

// TestParseDaemonRejectsJobFaults pins that a worker refuses job-level
// fault keys: job faults must come from the dispatcher's spec so every
// executor applies the identical schedule.
func TestParseDaemonRejectsJobFaults(t *testing.T) {
	for _, spec := range []string{"transient=0.2", "panic=0.1", "delay=0.5", "seed=7,transient=0.2"} {
		_, err := parseDaemon([]string{"-faults", spec}, io.Discard)
		if err == nil {
			t.Errorf("parseDaemon accepted job-level fault spec %q", spec)
			continue
		}
		if !strings.Contains(err.Error(), "not a connection-level fault") {
			t.Errorf("spec %q: unexpected error %v", spec, err)
		}
	}
}

func TestParseDaemonErrors(t *testing.T) {
	cases := [][]string{
		{"-heartbeat-every", "-1s"},
		{"-faults", "conndrop=2"},
		{"stray-arg"},
	}
	for _, args := range cases {
		if _, err := parseDaemon(args, io.Discard); err == nil {
			t.Errorf("parseDaemon(%v) accepted", args)
		}
	}
}
