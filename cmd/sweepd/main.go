// Command sweepd is the shard worker of the distributed sweep: a
// long-running daemon that accepts dispatcher connections (paperrepro
// or specdsm invoked with -remote), rebuilds each dispatcher's study
// from its handshake spec, and executes job batches, streaming results
// back frame by frame with heartbeats while long simulations compute.
//
//	sweepd                         # serve on a free loopback port
//	sweepd -listen 0.0.0.0:7701    # serve a fixed port
//	sweepd -faults seed=7,conndrop=0.01
//	                               # chaos testing: inject connection
//	                               # faults on every dispatcher link
//
// The daemon prints "sweepd listening on ADDR" on stdout once bound
// (harnesses scrape this for -listen :0) and logs per-connection and
// per-batch activity on stderr. One process serves any number of
// sequential or concurrent dispatchers; per-connection simulation
// arenas amortize allocation across a dispatcher's batches. Workers
// hold no sweep state worth preserving — killing one loses nothing but
// in-flight batches, which the dispatcher re-runs elsewhere — so
// SIGINT/SIGTERM simply drain: the listener and all connections close
// and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"specdsm"
	"specdsm/internal/remote"
)

func main() {
	spec, err := parseDaemon(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := serve(spec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func serve(spec daemonSpec) error {
	lis, err := net.Listen("tcp", spec.Listen)
	if err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	fmt.Printf("sweepd listening on %s\n", lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &remote.Server{
		NewRunner:      specdsm.NewRemoteRunner,
		Inject:         spec.Inject,
		HeartbeatEvery: spec.HeartbeatEvery,
		Logf:           log.New(os.Stderr, "sweepd: ", log.LstdFlags).Printf,
	}
	return srv.Serve(ctx, lis)
}
