package main

import (
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"specdsm"
)

// options is the fully parsed and validated CLI configuration. Every
// kind and depth is checked here, at parse time, against the library's
// supported sets — a typo exits with usage status 2 and the valid
// choices, instead of surfacing as a mid-evaluation failure (or, for
// depths the predictor core cannot hold, a panic).
type options struct {
	In      string
	Configs []specdsm.PredictorConfig
}

// parseOptions builds options from raw command-line arguments (without
// the program name). Usage and error text go to errOut.
func parseOptions(args []string, errOut io.Writer) (options, error) {
	fs := flag.NewFlagSet("traceeval", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		in     = fs.String("in", "", "trace file (required)")
		depths = fs.String("depths", "1", "comma-separated history depths, each in [1,"+strconv.Itoa(specdsm.MaxDepth)+"]")
		kinds  = fs.String("kinds", kindList(","), "comma-separated predictor kinds")
	)
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("traceeval: unexpected argument %q", fs.Arg(0))
	}
	if *in == "" {
		return options{}, fmt.Errorf("traceeval: -in is required")
	}
	ks, err := parseKinds(*kinds)
	if err != nil {
		return options{}, err
	}
	ds, err := parseDepths(*depths)
	if err != nil {
		return options{}, err
	}
	o := options{In: *in}
	for _, k := range ks {
		for _, d := range ds {
			o.Configs = append(o.Configs, specdsm.PredictorConfig{Kind: k, Depth: d})
		}
	}
	return o, nil
}

func parseKinds(csv string) ([]specdsm.PredictorKind, error) {
	var out []specdsm.PredictorKind
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil, fmt.Errorf("traceeval: empty entry in -kinds %q", csv)
		}
		k, ok := kindByName(s)
		if !ok {
			return nil, fmt.Errorf("traceeval: unknown predictor kind %q (have %s)", s, kindList(", "))
		}
		out = append(out, k)
	}
	return out, nil
}

func parseDepths(csv string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			return nil, fmt.Errorf("traceeval: empty entry in -depths %q", csv)
		}
		d, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("traceeval: bad depth %q (want an integer in [1,%d])", s, specdsm.MaxDepth)
		}
		if d < 1 || d > specdsm.MaxDepth {
			return nil, fmt.Errorf("traceeval: depth %d out of range [1,%d]", d, specdsm.MaxDepth)
		}
		out = append(out, d)
	}
	return out, nil
}

func kindByName(name string) (specdsm.PredictorKind, bool) {
	for _, k := range specdsm.Kinds() {
		if string(k) == name {
			return k, true
		}
	}
	return "", false
}

func kindList(sep string) string {
	var names []string
	for _, k := range specdsm.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, sep)
}
