// Command traceeval evaluates predictors offline on a coherence-message
// trace captured with `specdsm -trace-out` (or specdsm.CaptureTrace).
//
//	specdsm -app em3d -trace-out em3d.trace
//	traceeval -in em3d.trace
//	traceeval -in em3d.trace -depths 1,2,4
//
// Offline evaluation reproduces what the same predictors would have
// measured online, without re-running the simulation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"specdsm"
)

func main() {
	var (
		in     = flag.String("in", "", "trace file (required)")
		depths = flag.String("depths", "1", "comma-separated history depths")
		kinds  = flag.String("kinds", "Cosmos,MSP,VMSP", "comma-separated predictor kinds")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceeval: -in is required")
		os.Exit(2)
	}

	var configs []specdsm.PredictorConfig
	for _, ks := range strings.Split(*kinds, ",") {
		for _, ds := range strings.Split(*depths, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(ds))
			if err != nil {
				fmt.Fprintf(os.Stderr, "traceeval: bad depth %q\n", ds)
				os.Exit(2)
			}
			configs = append(configs, specdsm.PredictorConfig{
				Kind:  specdsm.PredictorKind(strings.TrimSpace(ks)),
				Depth: d,
			})
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	results, sum, err := specdsm.EvaluateTrace(f, configs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("trace: %s, %d nodes, %d events over %d blocks\n\n",
		sum.Workload, sum.Nodes, sum.Events, sum.Blocks)
	fmt.Printf("%-8s %5s %10s %10s %10s %9s %9s %7s %8s\n",
		"pred", "depth", "tracked", "predicted", "correct", "accuracy", "coverage", "pte", "bytes/bl")
	for _, r := range results {
		fmt.Printf("%-8s %5d %10d %10d %10d %8.1f%% %8.1f%% %7.1f %8.1f\n",
			r.Kind, r.Depth, r.Tracked, r.Predicted, r.Correct,
			r.Accuracy*100, r.Coverage*100, r.EntriesPerBlock, r.BytesPerBlock)
	}
}
