// Command traceeval evaluates predictors offline on a coherence-message
// trace captured with `specdsm -trace-out` (or specdsm.CaptureTrace).
//
//	specdsm -app em3d -trace-out em3d.trace
//	traceeval -in em3d.trace
//	traceeval -in em3d.trace -depths 1,2,4
//	traceeval -in em3d.trace -kinds MSP,VMSP -depths 2
//
// Offline evaluation reproduces what the same predictors would have
// measured online, without re-running the simulation. Kinds and depths
// are validated at parse time against the library's supported sets;
// invalid flags exit with status 2 and a message naming the valid
// choices.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"specdsm"
)

func main() {
	o, err := parseOptions(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run evaluates the configured predictors on the trace and writes the
// result table to out.
func run(o options, out io.Writer) error {
	f, err := os.Open(o.In)
	if err != nil {
		return err
	}
	defer f.Close()

	results, sum, err := specdsm.EvaluateTrace(f, o.Configs)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "trace: %s, %d nodes, %d events over %d blocks\n\n",
		sum.Workload, sum.Nodes, sum.Events, sum.Blocks)
	fmt.Fprintf(out, "%-8s %5s %10s %10s %10s %9s %9s %7s %8s\n",
		"pred", "depth", "tracked", "predicted", "correct", "accuracy", "coverage", "pte", "bytes/bl")
	for _, r := range results {
		fmt.Fprintf(out, "%-8s %5d %10d %10d %10d %8.1f%% %8.1f%% %7.1f %8.1f\n",
			r.Kind, r.Depth, r.Tracked, r.Predicted, r.Correct,
			r.Accuracy*100, r.Coverage*100, r.EntriesPerBlock, r.BytesPerBlock)
	}
	return nil
}
