package main

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"specdsm"
)

func TestParseOptionsConfigs(t *testing.T) {
	o, err := parseOptions([]string{"-in", "t.trace", "-kinds", "MSP, VMSP", "-depths", "2, 4"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.In != "t.trace" {
		t.Fatalf("in = %q", o.In)
	}
	want := []specdsm.PredictorConfig{
		{Kind: specdsm.MSP, Depth: 2},
		{Kind: specdsm.MSP, Depth: 4},
		{Kind: specdsm.VMSP, Depth: 2},
		{Kind: specdsm.VMSP, Depth: 4},
	}
	if !reflect.DeepEqual(o.Configs, want) {
		t.Fatalf("configs = %+v, want %+v", o.Configs, want)
	}
}

func TestParseOptionsDefaultsCoverAllKinds(t *testing.T) {
	o, err := parseOptions([]string{"-in", "t.trace"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Configs) != len(specdsm.Kinds()) {
		t.Fatalf("default configs = %+v", o.Configs)
	}
	for i, k := range specdsm.Kinds() {
		if o.Configs[i] != (specdsm.PredictorConfig{Kind: k, Depth: 1}) {
			t.Fatalf("config[%d] = %+v", i, o.Configs[i])
		}
	}
}

func TestParseOptionsErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string // expected error substring
	}{
		{"missing in", nil, "-in is required"},
		{"unknown kind", []string{"-in", "t", "-kinds", "Oracle"}, `unknown predictor kind "Oracle" (have Cosmos, MSP, VMSP)`},
		{"empty kind entry", []string{"-in", "t", "-kinds", "MSP,"}, "empty entry in -kinds"},
		{"non-integer depth", []string{"-in", "t", "-depths", "two"}, `bad depth "two"`},
		{"depth zero", []string{"-in", "t", "-depths", "0"}, "depth 0 out of range [1,4]"},
		{"depth too deep", []string{"-in", "t", "-depths", "1,9"}, "depth 9 out of range [1,4]"},
		{"empty depth entry", []string{"-in", "t", "-depths", "1,,2"}, "empty entry in -depths"},
		{"stray positional", []string{"-in", "t", "extra"}, "unexpected argument"},
		{"unknown flag", []string{"-bogus"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("args %v: expected error", tc.args)
			}
			if tc.frag != "" && !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("err = %v, want substring %q", err, tc.frag)
			}
		})
	}
}

// TestRunEndToEnd captures a real trace and evaluates it through run,
// checking the offline table against the online predictor study of the
// same run.
func TestRunEndToEnd(t *testing.T) {
	wl, err := specdsm.MicroWorkload(specdsm.PatternProducerConsumer,
		specdsm.WorkloadParams{Nodes: 4, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pc.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := specdsm.CaptureTrace(wl, specdsm.MachineOptions{}, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	o, err := parseOptions([]string{"-in", path, "-kinds", "MSP,VMSP", "-depths", "1,2"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "trace: producer-consumer, 4 nodes") {
		t.Fatalf("missing summary line:\n%s", got)
	}
	// Summary, separator, header, then one row per (kind, depth).
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 7:\n%s", len(lines), got)
	}
	for _, frag := range []string{"MSP", "VMSP", "accuracy", "coverage"} {
		if !strings.Contains(got, frag) {
			t.Fatalf("output missing %q:\n%s", frag, got)
		}
	}
}

func TestRunMissingFile(t *testing.T) {
	o, err := parseOptions([]string{"-in", filepath.Join(t.TempDir(), "absent.trace")}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := run(o, io.Discard); err == nil {
		t.Fatal("expected open error for missing trace")
	}
}
