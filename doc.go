// Package specdsm is a from-scratch reproduction of Lai & Falsafi's
// "Memory Sharing Predictor: The Key to a Speculative Coherent DSM"
// (ISCA 1999): a cycle-level CC-NUMA simulator with a full-map
// write-invalidate coherence protocol, the Cosmos/MSP/VMSP pattern-based
// coherence predictors, and the FR/SWI read-speculation mechanisms,
// together with synthetic versions of the paper's seven benchmark
// applications and the §5 analytic performance model.
//
// Typical use:
//
//	w, _ := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{})
//	base, _ := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeBase})
//	swi, _ := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeSWI})
//	fmt.Printf("speedup %.2f\n", float64(base.Cycles)/float64(swi.Cycles))
//
// The experiment drivers (PredictorStudy, SpeculationStudy) and table
// builders (Figure7 ... Table5) regenerate every figure and table of the
// paper's evaluation; cmd/paperrepro wires them to the command line.
package specdsm
