package specdsm_test

import (
	"fmt"

	"specdsm"
)

// ExampleAnalyticSpeedup evaluates the paper's Equation 2 at its most
// cited point: perfect prediction on a fully communication-bound
// application turns the DSM into an SMP (speedup = rtl).
func ExampleAnalyticSpeedup() {
	s := specdsm.AnalyticSpeedup(specdsm.AnalyticParams{
		C: 1, F: 1, P: 1, RTL: 4, N: 2,
	})
	fmt.Printf("speedup = %.1f\n", s)
	// Output: speedup = 4.0
}

// ExampleAppNames lists the paper's seven benchmark applications.
func ExampleAppNames() {
	for _, name := range specdsm.AppNames() {
		fmt.Println(name)
	}
	// Output:
	// appbt
	// barnes
	// em3d
	// moldyn
	// ocean
	// tomcatv
	// unstructured
}

// ExampleRun compares Base-DSM with SWI-DSM on em3d, the paper's best
// case for Speculative Write-Invalidation.
func ExampleRun() {
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{
		Nodes: 8, Iterations: 6, Scale: 0.25,
	})
	if err != nil {
		panic(err)
	}
	base, err := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeBase})
	if err != nil {
		panic(err)
	}
	swi, err := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeSWI})
	if err != nil {
		panic(err)
	}
	fmt.Println("SWI-DSM faster than Base-DSM:", swi.Cycles < base.Cycles)
	fmt.Println("speculative hits occurred:", swi.SpecHits > 0)
	// Output:
	// SWI-DSM faster than Base-DSM: true
	// speculative hits occurred: true
}

// ExamplePredictorStudy runs the Figure 7 methodology on two
// applications with the study fanned out across a worker pool.
// StudyConfig.Parallel only sizes the pool: results, their order, and
// every simulated cycle are identical for any worker count (0 means one
// worker per CPU, 1 is the exact sequential path), so study output can
// be compared across machines.
func ExamplePredictorStudy() {
	study, err := specdsm.PredictorStudy(specdsm.StudyConfig{
		Apps:     []string{"em3d", "moldyn"},
		Depths:   []int{1},
		Scale:    0.25,
		Parallel: 4,
	})
	if err != nil {
		panic(err)
	}
	for _, app := range study {
		msp := app.Get(specdsm.MSP, 1)
		vmsp := app.Get(specdsm.VMSP, 1)
		fmt.Printf("%s: VMSP at least as accurate as MSP: %v\n",
			app.App, vmsp.Accuracy >= msp.Accuracy)
	}
	// Output:
	// em3d: VMSP at least as accurate as MSP: true
	// moldyn: VMSP at least as accurate as MSP: true
}

// ExampleRun_observers measures all three predictors on one run's
// directory message stream — the methodology behind Figures 7-8.
func ExampleRun_observers() {
	w, err := specdsm.MicroWorkload(specdsm.PatternProducerConsumer, specdsm.WorkloadParams{
		Nodes: 4, Iterations: 10,
	})
	if err != nil {
		panic(err)
	}
	r, err := specdsm.Run(w, specdsm.MachineOptions{
		Observers: []specdsm.PredictorConfig{
			{Kind: specdsm.Cosmos, Depth: 1},
			{Kind: specdsm.MSP, Depth: 1},
			{Kind: specdsm.VMSP, Depth: 1},
		},
	})
	if err != nil {
		panic(err)
	}
	cosmos, _ := r.Predictor(specdsm.Cosmos, 1)
	vmsp, _ := r.Predictor(specdsm.VMSP, 1)
	fmt.Println("Cosmos also tracks acknowledgements:", cosmos.Tracked > vmsp.Tracked)
	fmt.Println("VMSP at least as accurate:", vmsp.Accuracy >= cosmos.Accuracy)
	// Output:
	// Cosmos also tracks acknowledgements: true
	// VMSP at least as accurate: true
}
