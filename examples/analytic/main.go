// Analytic model explorer: evaluate the paper's §5 performance model
// (Equations 1-2) and render the four Figure 6 panels, then check one of
// the model's headline claims against the simulator.
//
//	go run ./examples/analytic
package main

import (
	"fmt"
	"log"

	"specdsm"
)

func main() {
	// Reproduce Figure 6 as ASCII charts.
	fmt.Print(specdsm.RenderFigure6())

	// Spot-check the model: a fully communication-bound application with
	// perfect prediction approaches rtl-fold communication speedup.
	p := specdsm.AnalyticParams{C: 1, F: 1, P: 1, RTL: 4, N: 2}
	fmt.Printf("perfect speculation, c=1: speedup = %.2f (equals rtl — \"the DSM behaves like an SMP\")\n\n",
		specdsm.AnalyticSpeedup(p))

	// Compare the model's prediction with a measured run: estimate em3d's
	// communication ratio and speculation parameters from the simulator,
	// then see what Equation 2 predicts for SWI-DSM.
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	base, err := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeBase})
	if err != nil {
		log.Fatal(err)
	}
	swi, err := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeSWI})
	if err != nil {
		log.Fatal(err)
	}

	c := base.RequestShare()
	totalReads := float64(base.Reads)
	f := float64(swi.SpecReadsFR+swi.SpecReadsSWI) / totalReads
	miss := float64(swi.SpecReadUnused)
	pAcc := 1.0
	if sent := float64(swi.SpecReadsFR + swi.SpecReadsSWI); sent > 0 {
		pAcc = 1 - miss/sent
	}
	model := specdsm.AnalyticParams{C: c, F: f, P: pAcc, RTL: 4, N: 2}
	predicted := specdsm.AnalyticSpeedup(model)
	measured := float64(base.Cycles) / float64(swi.Cycles)

	fmt.Printf("em3d: c=%.2f f=%.2f p=%.2f\n", c, f, pAcc)
	fmt.Printf("  model-predicted SWI-DSM speedup: %.2fx\n", predicted)
	fmt.Printf("  simulator-measured speedup:      %.2fx\n", measured)
	fmt.Println("\nThe simple model ignores queueing and misspeculation side effects,")
	fmt.Println("but lands in the same range as the detailed simulation — the paper's")
	fmt.Println("point that accuracy (p) and opportunity (c, f) govern the win.")
}
