// Migratory sharing and the speculative-upgrade extension: blocks that
// migrate processor-to-processor as read+write pairs. First-Read cannot
// help (there is no read sequence to trigger), but the §4.1 extension —
// granting the read exclusively when the predictor expects the reader to
// upgrade — folds each read+upgrade pair into a single transaction.
//
//	go run ./examples/migratory
package main

import (
	"fmt"
	"log"

	"specdsm"
)

func run(w specdsm.Workload, opts specdsm.MachineOptions) *specdsm.RunResult {
	r, err := specdsm.Run(w, opts)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	w, err := specdsm.MicroWorkload(specdsm.PatternMigratory, specdsm.WorkloadParams{
		Nodes:      4,
		Iterations: 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	base := run(w, specdsm.MachineOptions{Mode: specdsm.ModeBase})
	fr := run(w, specdsm.MachineOptions{Mode: specdsm.ModeFR})
	ext := run(w, specdsm.MachineOptions{
		Mode:         specdsm.ModeFR,
		SpecUpgrades: true,
		Active:       &specdsm.PredictorConfig{Kind: specdsm.MSP, Depth: 1},
	})

	fmt.Println("pure migratory sharing (read+write chains), 12 iterations")
	fmt.Println()
	row := func(name string, r *specdsm.RunResult) {
		fmt.Printf("%-22s %9d cycles  upgrades %4d  speedup %.2fx\n",
			name, r.Cycles, r.Upgrades, float64(base.Cycles)/float64(r.Cycles))
	}
	row("Base-DSM", base)
	row("FR-DSM", fr)
	row("FR + spec upgrades", ext)

	fmt.Printf("\nspeculative exclusive grants: %d (misfires: %d)\n",
		ext.SpecUpgrades, ext.SpecUpgradeMisfires)
	fmt.Println()
	fmt.Println("FR cannot help migratory sharing (the paper's observation: it")
	fmt.Println("\"only involves read/write pairs\", so there is no read sequence to")
	fmt.Println("trigger). The speculative-upgrade extension instead eliminates")
	fmt.Println("upgrade round trips — visible as the falling upgrade count and the")
	fmt.Println("recovered time relative to FR alone.")
}
