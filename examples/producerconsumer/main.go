// Producer/consumer walkthrough: reproduce the paper's running example
// (Figures 2-4) on a live machine and watch the three predictors learn the
// pattern — including the pattern-table cost difference between the
// general message predictor (Cosmos), MSP, and VMSP.
//
//	go run ./examples/producerconsumer
package main

import (
	"fmt"
	"log"

	"specdsm"
)

func main() {
	// One producer (node 0), two consumers per block — the paper's
	// <Upgrade,P3> -> <Read,P1> <Read,P2> example, scaled to a machine.
	w, err := specdsm.MicroWorkload(specdsm.PatternProducerConsumer, specdsm.WorkloadParams{
		Nodes:      4,
		Iterations: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	var observers []specdsm.PredictorConfig
	for _, k := range specdsm.Kinds() {
		observers = append(observers, specdsm.PredictorConfig{Kind: k, Depth: 1})
	}
	r, err := specdsm.Run(w, specdsm.MachineOptions{
		Mode:      specdsm.ModeBase,
		Observers: observers,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("producer/consumer sharing, 10 iterations, history depth 1")
	fmt.Println()
	fmt.Printf("%-8s %10s %10s %10s %8s %6s\n",
		"pred", "tracked", "predicted", "correct", "accuracy", "pte")
	for _, p := range r.Predictors {
		fmt.Printf("%-8s %10d %10d %10d %7.1f%% %6.1f\n",
			p.Kind, p.Tracked, p.Predicted, p.Correct, p.Accuracy*100, p.EntriesPerBlock)
	}

	fmt.Println()
	fmt.Println("What to look for (paper §3):")
	fmt.Println("  - Cosmos tracks more messages: it also observes invalidation acks.")
	fmt.Println("  - MSP ignores acks, needing fewer pattern-table entries (pte).")
	fmt.Println("  - VMSP folds the consumers into one reader vector: fewest entries,")
	fmt.Println("    and immune to the consumers' arrival order.")

	// Now run the same workload speculatively and measure the win.
	base, err := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeBase})
	if err != nil {
		log.Fatal(err)
	}
	swi, err := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeSWI})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBase-DSM: %d cycles; SWI-DSM: %d cycles (%.1f%% faster; %d speculative hits)\n",
		base.Cycles, swi.Cycles,
		(1-float64(swi.Cycles)/float64(base.Cycles))*100, swi.SpecHits)
}
