// Quickstart: run one benchmark on the three DSM flavors of the paper
// (Base-DSM, FR-DSM, SWI-DSM) and compare execution times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"specdsm"
)

func main() {
	// Instantiate em3d — the paper's best case for Speculative
	// Write-Invalidation: a static producer/consumer graph where the
	// producer writes each block exactly once per iteration.
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d nodes, %d ops\n\n", w.Name, w.Nodes, w.Ops())

	var base *specdsm.RunResult
	for _, mode := range []specdsm.Mode{specdsm.ModeBase, specdsm.ModeFR, specdsm.ModeSWI} {
		r, err := specdsm.Run(w, specdsm.MachineOptions{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		if mode == specdsm.ModeBase {
			base = r
		}
		speedup := float64(base.Cycles) / float64(r.Cycles)
		fmt.Printf("%-5s  %9d cycles  request-wait %4.1f%%  speedup %.2fx",
			mode, r.Cycles, r.RequestShare()*100, speedup)
		if mode != specdsm.ModeBase {
			fmt.Printf("  (spec reads: %d FR + %d SWI, %d hits)",
				r.SpecReadsFR, r.SpecReadsSWI, r.SpecHits)
		}
		fmt.Println()
	}

	fmt.Println("\nThe paper reports SWI-DSM cutting em3d's execution time by ~24%;")
	fmt.Println("the reproduction should show the same ordering: SWI < FR < Base.")
}
