// Trace workflow: capture the coherence message streams of a run once,
// then evaluate as many predictor configurations as you like offline —
// no re-simulation. Offline results are bit-identical to what the same
// predictors would have measured online.
//
//	go run ./examples/tracing
package main

import (
	"bytes"
	"fmt"
	"log"

	"specdsm"
)

func main() {
	w, err := specdsm.AppWorkload("unstructured", specdsm.WorkloadParams{Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	// Capture once. The trace is ordinary JSON; here it stays in memory,
	// but `specdsm -trace-out` writes the same format to a file for the
	// traceeval tool.
	var buf bytes.Buffer
	_, sum, err := specdsm.CaptureTrace(w, specdsm.MachineOptions{Mode: specdsm.ModeBase}, &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %s: %d directory messages over %d blocks (%d bytes of JSON)\n\n",
		sum.Workload, sum.Events, sum.Blocks, buf.Len())

	// Sweep predictor configurations offline — far cheaper than
	// re-simulating the machine per configuration.
	var configs []specdsm.PredictorConfig
	for _, kind := range specdsm.Kinds() {
		for _, d := range []int{1, 2, 4} {
			configs = append(configs, specdsm.PredictorConfig{Kind: kind, Depth: d})
		}
	}
	results, _, err := specdsm.EvaluateTrace(bytes.NewReader(buf.Bytes()), configs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %6s %9s %9s %6s\n", "pred", "depth", "accuracy", "coverage", "pte")
	for _, r := range results {
		fmt.Printf("%-8s %6d %8.1f%% %8.1f%% %6.1f\n",
			r.Kind, r.Depth, r.Accuracy*100, r.Coverage*100, r.EntriesPerBlock)
	}
	fmt.Println()
	fmt.Println("unstructured is the paper's showcase for VMSP: its wide, re-ordered")
	fmt.Println("read sharing wrecks Cosmos and MSP at depth 1, while the vector")
	fmt.Println("encoding shrugs it off — and the Cosmos pattern table explodes as")
	fmt.Println("depth grows (Table 4's 168-entries-per-block column).")
}
