package specdsm

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"specdsm/internal/analytic"
	"specdsm/internal/core"
	"specdsm/internal/machine"
	"specdsm/internal/sweep"
)

// StudyConfig parameterizes the experiment drivers. Zero values select
// the paper's setup: all seven applications, 16 nodes, scale 1.0, seed 1,
// per-application default iteration counts, depths {1, 2, 4}.
type StudyConfig struct {
	Apps       []string
	Nodes      int
	Iterations int
	Scale      float64
	Seed       int64
	Depths     []int
	// DisableChecks speeds up benchmark runs.
	DisableChecks bool
	// Parallel is the number of simulations run concurrently (0 or
	// negative selects runtime.NumCPU()). Results are independent of
	// this knob: every study merges job results in submission order, so
	// Parallel: 1 and Parallel: N produce identical output.
	Parallel int
	// OnJobDone, when non-nil, is invoked after every completed
	// simulation job with the job's index and wall-clock duration — live
	// sweep progress on big matrices. Jobs complete concurrently and out
	// of index order when Parallel > 1, so the callback must be safe for
	// concurrent use (sweep.Progress wraps a log/slog logger suitably).
	// The hook never affects study results.
	OnJobDone func(index int, d time.Duration)
}

func (c StudyConfig) withDefaults() StudyConfig {
	if len(c.Apps) == 0 {
		c.Apps = AppNames()
	}
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{1, 2, 4}
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	return c
}

// pool builds the worker pool all study drivers fan their simulation
// jobs out on. Call on a config that already has defaults applied.
func (c StudyConfig) pool() *sweep.Pool {
	p := sweep.New(c.Parallel)
	p.OnJobDone = c.OnJobDone
	return p
}

func (c StudyConfig) workloadParams() WorkloadParams {
	return WorkloadParams{
		Nodes:      c.Nodes,
		Iterations: c.Iterations,
		Scale:      c.Scale,
		Seed:       c.Seed,
	}
}

// AppPrediction holds every predictor measurement for one application's
// Base-DSM run: all three predictor kinds at every configured depth,
// observing the identical message stream.
type AppPrediction struct {
	App     string
	Results map[PredictorConfig]PredictorResult
	// Requests supports normalization.
	Reads, Writes, Upgrades uint64
}

// Get returns the result for (kind, depth).
func (a AppPrediction) Get(kind PredictorKind, depth int) PredictorResult {
	return a.Results[PredictorConfig{Kind: kind, Depth: depth}]
}

// PredictorStudy runs Base-DSM once per application with all predictor
// variants attached passively, yielding the data behind Figures 7-8 and
// Tables 3-4. The per-application runs execute on a cfg.Parallel-wide
// worker pool, each worker replaying its jobs through one run arena;
// the result order is always cfg.Apps order.
func PredictorStudy(cfg StudyConfig) ([]AppPrediction, error) {
	cfg = cfg.withDefaults()
	var observers []PredictorConfig
	for _, kind := range Kinds() {
		for _, d := range cfg.Depths {
			observers = append(observers, PredictorConfig{Kind: kind, Depth: d})
		}
	}
	return sweep.MapWorker(context.Background(), cfg.pool(), len(cfg.Apps), machine.NewArena,
		func(_ context.Context, arena *machine.Arena, i int) (AppPrediction, error) {
			app := cfg.Apps[i]
			w, err := AppWorkload(app, cfg.workloadParams())
			if err != nil {
				return AppPrediction{}, err
			}
			res, err := runInArena(arena, w, MachineOptions{
				Mode:          ModeBase,
				Observers:     observers,
				DisableChecks: cfg.DisableChecks,
			})
			if err != nil {
				return AppPrediction{}, err
			}
			ap := AppPrediction{
				App:      app,
				Results:  make(map[PredictorConfig]PredictorResult),
				Reads:    res.Reads,
				Writes:   res.Writes,
				Upgrades: res.Upgrades,
			}
			for _, pr := range res.Predictors {
				ap.Results[PredictorConfig{Kind: pr.Kind, Depth: pr.Depth}] = pr
			}
			return ap, nil
		})
}

// AppSpeculation holds the Base/FR/SWI runs for one application (§7.4).
type AppSpeculation struct {
	App  string
	Base *RunResult
	FR   *RunResult
	SWI  *RunResult
}

// specModes is the mode column order of §7.4's comparison.
var specModes = [3]Mode{ModeBase, ModeFR, ModeSWI}

// SpeculationStudy runs every application under Base-DSM, FR-DSM, and
// SWI-DSM (VMSP depth 1 active, as in the paper), yielding the data
// behind Figure 9 and Table 5. Workload generation happens once per
// application up front (served by the generation cache; programs are
// read-only during simulation), then all len(Apps)×3 simulations fan
// out across the cfg.Parallel-wide worker pool, one run arena per
// worker.
func SpeculationStudy(cfg StudyConfig) ([]AppSpeculation, error) {
	cfg = cfg.withDefaults()
	return speculationApps(cfg.pool(), cfg, cfg.workloadParams())
}

// speculationApps runs the app×mode simulation matrix for one seed's
// workload parameters, merging results back into cfg.Apps order.
func speculationApps(pool *sweep.Pool, cfg StudyConfig, wp WorkloadParams) ([]AppSpeculation, error) {
	workloads := make([]Workload, len(cfg.Apps))
	for i, app := range cfg.Apps {
		w, err := AppWorkload(app, wp)
		if err != nil {
			return nil, err
		}
		workloads[i] = w
	}
	runs, err := sweep.MapWorker(context.Background(), pool, len(cfg.Apps)*len(specModes), machine.NewArena,
		func(_ context.Context, arena *machine.Arena, j int) (*RunResult, error) {
			w := workloads[j/len(specModes)]
			mode := specModes[j%len(specModes)]
			return runInArena(arena, w, MachineOptions{Mode: mode, DisableChecks: cfg.DisableChecks})
		})
	if err != nil {
		return nil, err
	}
	return assembleSpeculation(cfg.Apps, runs), nil
}

// assembleSpeculation folds a mode-major run slice (len(apps)×len(
// specModes), apps outer, specModes inner) back into per-app rows. It
// is the single place the flattened job index maps to Base/FR/SWI.
func assembleSpeculation(apps []string, runs []*RunResult) []AppSpeculation {
	out := make([]AppSpeculation, len(apps))
	for i, app := range apps {
		out[i] = AppSpeculation{
			App:  app,
			Base: runs[i*len(specModes)+0],
			FR:   runs[i*len(specModes)+1],
			SWI:  runs[i*len(specModes)+2],
		}
	}
	return out
}

// Figure7Row is one group of bars of Figure 7: base predictor accuracy at
// history depth one.
type Figure7Row struct {
	App    string
	Cosmos float64
	MSP    float64
	VMSP   float64
}

// Figure7 derives the Figure 7 data from a predictor study.
func Figure7(study []AppPrediction) []Figure7Row {
	var out []Figure7Row
	for _, ap := range study {
		out = append(out, Figure7Row{
			App:    ap.App,
			Cosmos: ap.Get(Cosmos, 1).Accuracy,
			MSP:    ap.Get(MSP, 1).Accuracy,
			VMSP:   ap.Get(VMSP, 1).Accuracy,
		})
	}
	return out
}

// Figure8Row is one application of Figure 8: accuracy per predictor per
// history depth.
type Figure8Row struct {
	App      string
	Depths   []int
	Accuracy map[PredictorKind][]float64 // indexed like Depths
}

// Figure8 derives the Figure 8 data from a predictor study.
func Figure8(study []AppPrediction, depths []int) []Figure8Row {
	if len(depths) == 0 {
		depths = []int{1, 2, 4}
	}
	var out []Figure8Row
	for _, ap := range study {
		row := Figure8Row{App: ap.App, Depths: depths, Accuracy: make(map[PredictorKind][]float64)}
		for _, kind := range Kinds() {
			for _, d := range depths {
				row.Accuracy[kind] = append(row.Accuracy[kind], ap.Get(kind, d).Accuracy)
			}
		}
		out = append(out, row)
	}
	return out
}

// Table3Row reports the fraction of messages predicted (coverage) and
// predicted correctly, per predictor, at depth one.
type Table3Row struct {
	App      string
	Coverage map[PredictorKind]float64
	Correct  map[PredictorKind]float64
}

// Table3 derives the Table 3 data from a predictor study.
func Table3(study []AppPrediction) []Table3Row {
	var out []Table3Row
	for _, ap := range study {
		row := Table3Row{
			App:      ap.App,
			Coverage: make(map[PredictorKind]float64),
			Correct:  make(map[PredictorKind]float64),
		}
		for _, kind := range Kinds() {
			pr := ap.Get(kind, 1)
			row.Coverage[kind] = pr.Coverage
			row.Correct[kind] = pr.CorrectFraction
		}
		out = append(out, row)
	}
	return out
}

// Table4Row reports pattern-table entries per allocated block at depths 1
// and 4, and the depth-1 byte overhead, per predictor.
type Table4Row struct {
	App   string
	PTE1  map[PredictorKind]float64
	PTE4  map[PredictorKind]float64
	Bytes map[PredictorKind]float64
}

// Table4 derives the Table 4 data from a predictor study.
func Table4(study []AppPrediction) []Table4Row {
	var out []Table4Row
	for _, ap := range study {
		row := Table4Row{
			App:   ap.App,
			PTE1:  make(map[PredictorKind]float64),
			PTE4:  make(map[PredictorKind]float64),
			Bytes: make(map[PredictorKind]float64),
		}
		for _, kind := range Kinds() {
			row.PTE1[kind] = ap.Get(kind, 1).EntriesPerBlock
			row.PTE4[kind] = ap.Get(kind, 4).EntriesPerBlock
			row.Bytes[kind] = ap.Get(kind, 1).BytesPerBlock
		}
		out = append(out, row)
	}
	return out
}

// Figure9Row is one application of Figure 9: execution time normalized to
// Base-DSM, split into computation (incl. synchronization) and remote
// request waiting.
type Figure9Row struct {
	App string
	// Each pair is (computation%, request%) of Base-DSM's execution time.
	Base [2]float64
	FR   [2]float64
	SWI  [2]float64
}

// Total returns computation+request for the given mode column.
func (r Figure9Row) Total(mode Mode) float64 {
	switch mode {
	case ModeFR:
		return r.FR[0] + r.FR[1]
	case ModeSWI:
		return r.SWI[0] + r.SWI[1]
	default:
		return r.Base[0] + r.Base[1]
	}
}

// Figure9 derives the Figure 9 data from a speculation study.
func Figure9(study []AppSpeculation) []Figure9Row {
	var out []Figure9Row
	for _, as := range study {
		base := float64(as.Base.Cycles)
		split := func(r *RunResult) [2]float64 {
			total := float64(r.Cycles) / base * 100
			share := r.RequestShare()
			return [2]float64{total * (1 - share), total * share}
		}
		out = append(out, Figure9Row{
			App:  as.App,
			Base: split(as.Base),
			FR:   split(as.FR),
			SWI:  split(as.SWI),
		})
	}
	return out
}

// Table5Row reports request counts and speculation/misspeculation
// frequencies, as percentages of the Base-DSM request counts.
type Table5Row struct {
	App        string
	BaseReads  uint64
	BaseWrites uint64 // writes + upgrades
	// FR-DSM.
	FRSent float64
	FRMiss float64
	// SWI-DSM: reads triggered via FR, via SWI, and write invalidations.
	SWIFRSent    float64
	SWIFRMiss    float64
	SWIReadSent  float64
	SWIReadMiss  float64
	SWIInvalSent float64
	SWIInvalMiss float64
}

// Table5 derives the Table 5 data from a speculation study.
func Table5(study []AppSpeculation) []Table5Row {
	pct := func(n uint64, d uint64) float64 {
		if d == 0 {
			return 0
		}
		return float64(n) / float64(d) * 100
	}
	var out []Table5Row
	for _, as := range study {
		reads := as.Base.Reads
		writes := as.Base.WriteLike()
		// Misses are verification-confirmed misspeculations (invalidated
		// without reference); copies still unreferenced when the run ends
		// are end-of-run artifacts, not verified misses. In SWI-DSM the
		// misses cannot be split by trigger, so attribute them
		// proportionally to the forwards sent.
		swiSent := as.SWI.SpecReadsSWI
		frSent := as.SWI.SpecReadsFR
		unused := as.SWI.SpecReadUnused
		var frMiss, swiMiss uint64
		if tot := swiSent + frSent; tot > 0 {
			frMiss = unused * frSent / tot
			swiMiss = unused - frMiss
		}
		out = append(out, Table5Row{
			App:          as.App,
			BaseReads:    reads,
			BaseWrites:   writes,
			FRSent:       pct(as.FR.SpecReadsFR, reads),
			FRMiss:       pct(as.FR.SpecReadUnused, reads),
			SWIFRSent:    pct(frSent, reads),
			SWIFRMiss:    pct(frMiss, reads),
			SWIReadSent:  pct(swiSent, reads),
			SWIReadMiss:  pct(swiMiss, reads),
			SWIInvalSent: pct(as.SWI.SWIRecalls, writes),
			SWIInvalMiss: pct(as.SWI.SWIPremature, writes),
		})
	}
	return out
}

// AnalyticParams re-exports the §5 model inputs.
type AnalyticParams = analytic.Params

// AnalyticSpeedup evaluates Equation 2 of the paper.
func AnalyticSpeedup(p AnalyticParams) float64 { return analytic.Speedup(p) }

// AnalyticCommSpeedup evaluates Equation 1 of the paper.
func AnalyticCommSpeedup(p AnalyticParams) float64 { return analytic.CommSpeedup(p) }

// AnalyticSeries is one Figure 6 curve.
type AnalyticSeries struct {
	Label string
	C     []float64
	Y     []float64
}

// Figure6Panel names one of the four Figure 6 panels.
type Figure6Panel struct {
	Title  string
	Series []AnalyticSeries
}

// Figure6 generates all four panels of Figure 6.
func Figure6() []Figure6Panel {
	var out []Figure6Panel
	for _, p := range analytic.Panels() {
		panel := Figure6Panel{Title: p.String()}
		for _, s := range analytic.Figure6(p) {
			panel.Series = append(panel.Series, AnalyticSeries{Label: s.Label, C: s.C, Y: s.Y})
		}
		out = append(out, panel)
	}
	return out
}

// Validate sanity-checks a study config early.
func (c StudyConfig) Validate() error {
	cc := c.withDefaults()
	for _, app := range cc.Apps {
		if _, ok := appExists(app); !ok {
			return fmt.Errorf("specdsm: unknown application %q", app)
		}
	}
	for _, d := range cc.Depths {
		if d < 1 || d > core.MaxDepth {
			return fmt.Errorf("specdsm: invalid depth %d (supported range [1,%d])", d, core.MaxDepth)
		}
	}
	return nil
}

func appExists(name string) (string, bool) {
	for _, n := range AppNames() {
		if n == name {
			return n, true
		}
	}
	return "", false
}
