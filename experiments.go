package specdsm

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"strings"
	"time"

	"specdsm/internal/analytic"
	"specdsm/internal/core"
	"specdsm/internal/fault"
	"specdsm/internal/machine"
	"specdsm/internal/sweep"
)

// StudyConfig parameterizes the experiment drivers. Zero values select
// the paper's setup: all seven applications, 16 nodes, scale 1.0, seed 1,
// per-application default iteration counts, depths {1, 2, 4}.
type StudyConfig struct {
	Apps       []string
	Nodes      int
	Iterations int
	Scale      float64
	Seed       int64
	Depths     []int
	// DisableChecks speeds up benchmark runs.
	DisableChecks bool
	// Parallel is the number of simulations run concurrently (0 or
	// negative selects runtime.NumCPU()). Results are independent of
	// this knob: every study merges job results in submission order, so
	// Parallel: 1 and Parallel: N produce identical output.
	Parallel int
	// OnJobDone, when non-nil, is invoked after every completed
	// simulation job with the job's index and wall-clock duration — live
	// sweep progress on big matrices. Jobs complete concurrently and out
	// of index order when Parallel > 1, so the callback must be safe for
	// concurrent use (sweep.Progress wraps a log/slog logger suitably).
	// The hook never affects study results.
	OnJobDone func(index int, d time.Duration)
	// Progress, when non-nil, logs every completed simulation job at
	// Info level with completed/total counts and an ETA estimated from
	// the recent completion rate (sweep.ProgressETA). It composes with
	// OnJobDone and, like it, never affects study results.
	Progress *slog.Logger
	// CheckpointPath, when non-empty, streams every study through a
	// crash-safe on-disk checkpoint at <path>.<study> (e.g. ck.predictor,
	// ck.speculation, ck.seeds, ck.rtl): completed rows are persisted
	// periodically via atomic write-rename, so an interrupted sweep can
	// be resumed instead of restarted. See internal/sweep for the file
	// format.
	CheckpointPath string
	// Resume continues from an existing checkpoint written by an
	// identically configured earlier run (a missing file starts fresh,
	// so the same resume-enabled invocation works before and after an
	// interruption). Saved rows are replayed without re-simulation;
	// output is byte-identical to an uninterrupted run at any Parallel.
	// Without Resume, an existing checkpoint file is an error — saved
	// work is never silently clobbered.
	Resume bool
	// CheckpointEvery is the flush cadence in completed rows
	// (0 = sweep.DefaultCheckpointEvery). At most this many completed
	// rows are lost on a crash, beyond one merge window.
	CheckpointEvery int
	// Retries is the per-job transient retry budget: a simulation job
	// failing with a sweep.Transient-marked error is re-run in place up
	// to this many more times before the failure becomes permanent.
	// Fatal errors (including panics) are never retried. Retried sweeps
	// whose transient faults clear within budget produce output
	// byte-identical to a fault-free run.
	Retries int
	// KeepGoing records fatal job failures as explicit FAILED rows
	// (each row type's Failed field carries the error text) instead of
	// aborting the study: an overnight sweep returns the surviving
	// science plus an exact re-run list. Failures occupy checkpoint
	// frames, so a resumed keep-going sweep replays them identically.
	KeepGoing bool
	// Salvage makes Resume tolerate a damaged checkpoint: instead of
	// rejecting the file, the longest valid row prefix is recovered,
	// the damage is truncated away, and the sweep re-runs only what was
	// lost. A checkpoint recorded under a different study key is still a
	// hard error (sweep.KeyMismatchError). Ignored without Resume.
	Salvage bool
	// OnSalvage, when non-nil, is told what Salvage recovered for each
	// study checkpoint that needed repair (it is not called for clean
	// files). Purely informational.
	OnSalvage func(study string, rep sweep.SalvageReport)
	// FaultSpec, when non-empty, arms deterministic fault injection for
	// every simulation job, in the internal/fault spec syntax, e.g.
	// "seed=7,transient=0.2,delay=0.5". Injected transient faults
	// compose with Retries; injected panics are fatal (KeepGoing turns
	// them into FAILED rows). Connection-level keys (conndrop,
	// connshort, conndelay) apply to the dispatcher's shard connections
	// when Remote is set. Exists for robustness testing — the chaos
	// harness runs real studies under this knob and byte-compares their
	// output against clean runs.
	FaultSpec string
	// Remote, when non-empty, fans the study's simulation jobs out to
	// sweepd shard workers at these host:port addresses instead of an
	// in-process pool. The dispatcher (internal/remote) heartbeats every
	// shard, re-dispatches work from dead or straggling ones, and
	// degrades down to in-process execution when no shard is reachable;
	// results stream back in index order, so output — including
	// checkpoint contents — is byte-identical to a local Parallel: 1 run
	// at any shard count and under any shard failures. Parallel is
	// ignored on this path (the fleet is the parallelism).
	Remote []string
	// RemoteLogf, when non-nil, receives the dispatcher's shard
	// lifecycle diagnostics (connects, deaths, reconnects). Purely
	// informational.
	RemoteLogf func(format string, args ...any)
}

func (c StudyConfig) withDefaults() StudyConfig {
	if len(c.Apps) == 0 {
		c.Apps = AppNames()
	}
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Depths) == 0 {
		c.Depths = []int{1, 2, 4}
	}
	if c.Parallel <= 0 {
		c.Parallel = runtime.NumCPU()
	}
	return c
}

// pool builds the worker pool all study drivers fan their simulation
// jobs out on; total is the study's job count (it sizes the ETA).
// Call on a config that already has defaults applied. An unparsable
// FaultSpec is the only error.
func (c StudyConfig) pool(total int) (*sweep.Pool, error) {
	p := sweep.New(c.Parallel)
	p.OnJobDone = c.OnJobDone
	if c.Progress != nil {
		eta := sweep.ProgressETA(c.Progress, total)
		if user := c.OnJobDone; user != nil {
			p.OnJobDone = func(i int, d time.Duration) {
				eta(i, d)
				user(i, d)
			}
		} else {
			p.OnJobDone = eta
		}
	}
	p.Retries = c.Retries
	p.RetrySeed = uint64(c.Seed)
	if c.FaultSpec != "" {
		inj, err := fault.ParseSpec(c.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("specdsm: %w", err)
		}
		p.Inject = inj
	}
	return p, nil
}

// checkpoint opens the named study's checkpoint, or returns nil when
// checkpointing is unconfigured. The key ties the file to this exact
// study shape — study name, every config knob that influences job
// results, and the job count — so resuming under different flags fails
// loudly instead of splicing incompatible rows. extra carries
// study-specific identity (seeds list, rtl flights).
func (c StudyConfig) checkpoint(study string, jobs int, extra string) (*sweep.Checkpoint, error) {
	if c.CheckpointPath == "" {
		return nil, nil
	}
	// Retries/KeepGoing/FaultSpec are part of the key: under injected
	// faults they decide which jobs end up as FAILED frames, so splicing
	// rows across different settings would mix incompatible prefixes.
	key := fmt.Sprintf("specdsm/%s|apps=%s|nodes=%d|iters=%d|scale=%g|seed=%d|depths=%v|checks=%t|retries=%d|keepgoing=%t|faults=%s|jobs=%d%s",
		study, strings.Join(c.Apps, ","), c.Nodes, c.Iterations, c.Scale, c.Seed,
		c.Depths, !c.DisableChecks, c.Retries, c.KeepGoing, c.FaultSpec, jobs, extra)
	path := c.CheckpointPath + "." + study
	switch {
	case c.Resume && c.Salvage:
		ck, rep, err := sweep.SalvageCheckpoint(path, key, c.CheckpointEvery)
		if err != nil {
			return nil, err
		}
		if rep.Reason != "" && c.OnSalvage != nil {
			c.OnSalvage(study, rep)
		}
		return ck, nil
	case c.Resume:
		return sweep.ResumeCheckpoint(path, key, c.CheckpointEvery)
	default:
		return sweep.OpenCheckpoint(path, key, c.CheckpointEvery)
	}
}

// failSink adapts a study's FAILED-row constructor into the sweep's
// keep-going failure callback: nil (abort on first failure) unless
// KeepGoing is set, otherwise every fatal job failure is turned into an
// explicit row carrying the error text and emitted in index order.
func failRow[T any](c StudyConfig, emit func(i int, row T) error, mk func(i int, errText string) T) sweep.FailFunc {
	if !c.KeepGoing {
		return nil
	}
	return func(i int, err error) error { return emit(i, mk(i, err.Error())) }
}

func (c StudyConfig) workloadParams() WorkloadParams {
	return WorkloadParams{
		Nodes:      c.Nodes,
		Iterations: c.Iterations,
		Scale:      c.Scale,
		Seed:       c.Seed,
	}
}

// AppPrediction holds every predictor measurement for one application's
// Base-DSM run: all three predictor kinds at every configured depth,
// observing the identical message stream.
type AppPrediction struct {
	App     string
	Results map[PredictorConfig]PredictorResult
	// Requests supports normalization.
	Reads, Writes, Upgrades uint64
	// Failed carries the job's error text when the study ran with
	// KeepGoing and this application's simulation failed fatally; the
	// measurement fields are zero. Empty on success.
	Failed string
}

// Get returns the result for (kind, depth).
func (a AppPrediction) Get(kind PredictorKind, depth int) PredictorResult {
	return a.Results[PredictorConfig{Kind: kind, Depth: depth}]
}

// PredictorStudyStream runs Base-DSM once per application with all
// predictor variants attached passively and streams each application's
// row, in cfg.Apps order, to emit as soon as it and all its
// predecessors are done — the primary study path: rows flow through the
// pool's bounded merge window (and, when configured, the study
// checkpoint) instead of accumulating in a result slice. The
// per-application runs execute on a cfg.Parallel-wide worker pool, each
// worker replaying its jobs through one run arena.
func PredictorStudyStream(cfg StudyConfig, emit func(i int, row AppPrediction) error) error {
	cfg = cfg.withDefaults()
	n := len(cfg.Apps)
	fail := failRow(cfg, emit, func(i int, errText string) AppPrediction {
		return AppPrediction{App: cfg.Apps[i], Failed: errText}
	})
	return streamStudy(cfg, cfg.remoteSpec("predictor"), n, "", predictorJob(cfg), emit, fail)
}

// predictorJob builds the predictor study's job function: application i
// of cfg.Apps run once under Base-DSM with every predictor variant
// observing. Shared between the in-process pool and remote workers.
func predictorJob(cfg StudyConfig) func(context.Context, *machine.Arena, int) (AppPrediction, error) {
	observers := make([]PredictorConfig, 0, len(Kinds())*len(cfg.Depths))
	for _, kind := range Kinds() {
		for _, d := range cfg.Depths {
			observers = append(observers, PredictorConfig{Kind: kind, Depth: d})
		}
	}
	return func(_ context.Context, arena *machine.Arena, i int) (AppPrediction, error) {
		app := cfg.Apps[i]
		w, err := AppWorkload(app, cfg.workloadParams())
		if err != nil {
			return AppPrediction{}, err
		}
		res, err := runInArena(arena, w, MachineOptions{
			Mode:          ModeBase,
			Observers:     observers,
			DisableChecks: cfg.DisableChecks,
		})
		if err != nil {
			return AppPrediction{}, err
		}
		ap := AppPrediction{
			App:      app,
			Results:  make(map[PredictorConfig]PredictorResult),
			Reads:    res.Reads,
			Writes:   res.Writes,
			Upgrades: res.Upgrades,
		}
		for _, pr := range res.Predictors {
			ap.Results[PredictorConfig{Kind: pr.Kind, Depth: pr.Depth}] = pr
		}
		return ap, nil
	}
}

// PredictorStudy is PredictorStudyStream collected into a slice — the
// convenient form for the paper's seven-application tables, where the
// full study is small. The data behind Figures 7-8 and Tables 3-4.
func PredictorStudy(cfg StudyConfig) ([]AppPrediction, error) {
	cfg = cfg.withDefaults()
	out := make([]AppPrediction, 0, len(cfg.Apps))
	if err := PredictorStudyStream(cfg, func(_ int, row AppPrediction) error {
		out = append(out, row)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// AppSpeculation holds the Base/FR/SWI runs for one application (§7.4).
type AppSpeculation struct {
	App  string
	Base *RunResult
	FR   *RunResult
	SWI  *RunResult
	// Failed carries the failed mode runs' error text when the study ran
	// with KeepGoing and any of this application's three simulations
	// failed fatally; the run pointers are all nil then (a partial
	// triple cannot be normalized against its own Base). Empty on
	// success.
	Failed string
}

// specModes is the mode column order of §7.4's comparison.
var specModes = [3]Mode{ModeBase, ModeFR, ModeSWI}

// SpeculationStudyStream runs every application under Base-DSM, FR-DSM,
// and SWI-DSM (VMSP depth 1 active, as in the paper) and streams each
// application's assembled row, in cfg.Apps order, to emit. The
// len(Apps)×3 simulations fan out as individual jobs across the
// cfg.Parallel-wide worker pool (one run arena per worker) and are
// merged back mode-major; at most one application's partial mode runs
// are buffered while its triple completes, and checkpointing operates
// at single-simulation granularity so a resume re-runs only the missing
// mode runs.
func SpeculationStudyStream(cfg StudyConfig, emit func(i int, row AppSpeculation) error) error {
	cfg = cfg.withDefaults()
	nModes := len(specModes)
	n := len(cfg.Apps) * nModes
	// triple is the assembly window: the ordered merge delivers runs
	// mode-major (apps outer, Base/FR/SWI inner), so an application's
	// row completes every nModes emissions. In keep-going mode a failed
	// run occupies its slot as an error text instead of a result.
	triple := make([]modeRun, 0, nModes)
	push := func(j int, r *RunResult, errText string) error {
		triple = append(triple, modeRun{r: r, errText: errText})
		if len(triple) < nModes {
			return nil
		}
		i := j / nModes
		row := AppSpeculation{App: cfg.Apps[i], Failed: tripleFailure(triple)}
		if row.Failed == "" {
			row.Base, row.FR, row.SWI = triple[0].r, triple[1].r, triple[2].r
		}
		triple = triple[:0]
		return emit(i, row)
	}
	var fail sweep.FailFunc
	if cfg.KeepGoing {
		fail = func(j int, err error) error { return push(j, nil, err.Error()) }
	}
	return streamStudy(cfg, cfg.remoteSpec("speculation"), n, "", speculationJob(cfg),
		func(j int, r *RunResult) error { return push(j, r, "") },
		fail)
}

// speculationJob builds the speculation study's job function: run
// j%3 ∈ {Base, FR, SWI} of application j/3. Shared between the
// in-process pool and remote workers.
func speculationJob(cfg StudyConfig) func(context.Context, *machine.Arena, int) (*RunResult, error) {
	apps, wp, checks := cfg.Apps, cfg.workloadParams(), cfg.DisableChecks
	nModes := len(specModes)
	return func(_ context.Context, arena *machine.Arena, j int) (*RunResult, error) {
		// Workload generation is served by the process-wide cache, so
		// the three mode runs of an application share one program set
		// no matter which workers claim them.
		w, err := AppWorkload(apps[j/nModes], wp)
		if err != nil {
			return nil, err
		}
		return runInArena(arena, w, MachineOptions{Mode: specModes[j%nModes], DisableChecks: checks})
	}
}

// modeRun is one slot of a mode-major assembly window: a completed run
// or, in keep-going mode, the error text of a failed one.
type modeRun struct {
	r       *RunResult
	errText string
}

// tripleFailure summarizes a (Base, FR, SWI) window's failures, empty
// if every mode run succeeded.
func tripleFailure(triple []modeRun) string {
	var fails []string
	for k, e := range triple {
		if e.errText != "" {
			fails = append(fails, fmt.Sprintf("%s: %s", specModes[k], e.errText))
		}
	}
	return strings.Join(fails, "; ")
}

// SpeculationStudy is SpeculationStudyStream collected into a slice,
// yielding the data behind Figure 9 and Table 5.
func SpeculationStudy(cfg StudyConfig) ([]AppSpeculation, error) {
	cfg = cfg.withDefaults()
	out := make([]AppSpeculation, 0, len(cfg.Apps))
	if err := SpeculationStudyStream(cfg, func(_ int, row AppSpeculation) error {
		out = append(out, row)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure7Row is one group of bars of Figure 7: base predictor accuracy at
// history depth one.
type Figure7Row struct {
	App    string
	Cosmos float64
	MSP    float64
	VMSP   float64
	// Failed marks a keep-going FAILED row; the accuracies are zero.
	Failed string
}

// Figure7 derives the Figure 7 data from a predictor study.
func Figure7(study []AppPrediction) []Figure7Row {
	var out []Figure7Row
	for _, ap := range study {
		if ap.Failed != "" {
			out = append(out, Figure7Row{App: ap.App, Failed: ap.Failed})
			continue
		}
		out = append(out, Figure7Row{
			App:    ap.App,
			Cosmos: ap.Get(Cosmos, 1).Accuracy,
			MSP:    ap.Get(MSP, 1).Accuracy,
			VMSP:   ap.Get(VMSP, 1).Accuracy,
		})
	}
	return out
}

// Figure8Row is one application of Figure 8: accuracy per predictor per
// history depth.
type Figure8Row struct {
	App      string
	Depths   []int
	Accuracy map[PredictorKind][]float64 // indexed like Depths
	// Failed marks a keep-going FAILED row; Accuracy is nil.
	Failed string
}

// Figure8 derives the Figure 8 data from a predictor study.
func Figure8(study []AppPrediction, depths []int) []Figure8Row {
	if len(depths) == 0 {
		depths = []int{1, 2, 4}
	}
	var out []Figure8Row
	for _, ap := range study {
		if ap.Failed != "" {
			out = append(out, Figure8Row{App: ap.App, Depths: depths, Failed: ap.Failed})
			continue
		}
		row := Figure8Row{App: ap.App, Depths: depths, Accuracy: make(map[PredictorKind][]float64)}
		for _, kind := range Kinds() {
			for _, d := range depths {
				row.Accuracy[kind] = append(row.Accuracy[kind], ap.Get(kind, d).Accuracy)
			}
		}
		out = append(out, row)
	}
	return out
}

// Table3Row reports the fraction of messages predicted (coverage) and
// predicted correctly, per predictor, at depth one.
type Table3Row struct {
	App      string
	Coverage map[PredictorKind]float64
	Correct  map[PredictorKind]float64
	// Failed marks a keep-going FAILED row; the maps are nil.
	Failed string
}

// Table3 derives the Table 3 data from a predictor study.
func Table3(study []AppPrediction) []Table3Row {
	var out []Table3Row
	for _, ap := range study {
		if ap.Failed != "" {
			out = append(out, Table3Row{App: ap.App, Failed: ap.Failed})
			continue
		}
		row := Table3Row{
			App:      ap.App,
			Coverage: make(map[PredictorKind]float64),
			Correct:  make(map[PredictorKind]float64),
		}
		for _, kind := range Kinds() {
			pr := ap.Get(kind, 1)
			row.Coverage[kind] = pr.Coverage
			row.Correct[kind] = pr.CorrectFraction
		}
		out = append(out, row)
	}
	return out
}

// Table4Row reports pattern-table entries per allocated block at depths 1
// and 4, and the depth-1 byte overhead, per predictor.
type Table4Row struct {
	App   string
	PTE1  map[PredictorKind]float64
	PTE4  map[PredictorKind]float64
	Bytes map[PredictorKind]float64
	// Failed marks a keep-going FAILED row; the maps are nil.
	Failed string
}

// Table4 derives the Table 4 data from a predictor study.
func Table4(study []AppPrediction) []Table4Row {
	var out []Table4Row
	for _, ap := range study {
		if ap.Failed != "" {
			out = append(out, Table4Row{App: ap.App, Failed: ap.Failed})
			continue
		}
		row := Table4Row{
			App:   ap.App,
			PTE1:  make(map[PredictorKind]float64),
			PTE4:  make(map[PredictorKind]float64),
			Bytes: make(map[PredictorKind]float64),
		}
		for _, kind := range Kinds() {
			row.PTE1[kind] = ap.Get(kind, 1).EntriesPerBlock
			row.PTE4[kind] = ap.Get(kind, 4).EntriesPerBlock
			row.Bytes[kind] = ap.Get(kind, 1).BytesPerBlock
		}
		out = append(out, row)
	}
	return out
}

// Figure9Row is one application of Figure 9: execution time normalized to
// Base-DSM, split into computation (incl. synchronization) and remote
// request waiting.
type Figure9Row struct {
	App string
	// Each pair is (computation%, request%) of Base-DSM's execution time.
	Base [2]float64
	FR   [2]float64
	SWI  [2]float64
	// Failed marks a keep-going FAILED row; the splits are zero.
	Failed string
}

// Total returns computation+request for the given mode column.
func (r Figure9Row) Total(mode Mode) float64 {
	switch mode {
	case ModeFR:
		return r.FR[0] + r.FR[1]
	case ModeSWI:
		return r.SWI[0] + r.SWI[1]
	default:
		return r.Base[0] + r.Base[1]
	}
}

// Figure9 derives the Figure 9 data from a speculation study.
func Figure9(study []AppSpeculation) []Figure9Row {
	var out []Figure9Row
	for _, as := range study {
		if as.Failed != "" {
			out = append(out, Figure9Row{App: as.App, Failed: as.Failed})
			continue
		}
		base := float64(as.Base.Cycles)
		split := func(r *RunResult) [2]float64 {
			total := float64(r.Cycles) / base * 100
			share := r.RequestShare()
			return [2]float64{total * (1 - share), total * share}
		}
		out = append(out, Figure9Row{
			App:  as.App,
			Base: split(as.Base),
			FR:   split(as.FR),
			SWI:  split(as.SWI),
		})
	}
	return out
}

// Table5Row reports request counts and speculation/misspeculation
// frequencies, as percentages of the Base-DSM request counts.
type Table5Row struct {
	App        string
	BaseReads  uint64
	BaseWrites uint64 // writes + upgrades
	// FR-DSM.
	FRSent float64
	FRMiss float64
	// SWI-DSM: reads triggered via FR, via SWI, and write invalidations.
	SWIFRSent    float64
	SWIFRMiss    float64
	SWIReadSent  float64
	SWIReadMiss  float64
	SWIInvalSent float64
	SWIInvalMiss float64
	// Failed marks a keep-going FAILED row; every count is zero.
	Failed string
}

// Table5 derives the Table 5 data from a speculation study.
func Table5(study []AppSpeculation) []Table5Row {
	pct := func(n uint64, d uint64) float64 {
		if d == 0 {
			return 0
		}
		return float64(n) / float64(d) * 100
	}
	var out []Table5Row
	for _, as := range study {
		if as.Failed != "" {
			out = append(out, Table5Row{App: as.App, Failed: as.Failed})
			continue
		}
		reads := as.Base.Reads
		writes := as.Base.WriteLike()
		// Misses are verification-confirmed misspeculations (invalidated
		// without reference); copies still unreferenced when the run ends
		// are end-of-run artifacts, not verified misses. In SWI-DSM the
		// misses cannot be split by trigger, so attribute them
		// proportionally to the forwards sent.
		swiSent := as.SWI.SpecReadsSWI
		frSent := as.SWI.SpecReadsFR
		unused := as.SWI.SpecReadUnused
		var frMiss, swiMiss uint64
		if tot := swiSent + frSent; tot > 0 {
			frMiss = unused * frSent / tot
			swiMiss = unused - frMiss
		}
		out = append(out, Table5Row{
			App:          as.App,
			BaseReads:    reads,
			BaseWrites:   writes,
			FRSent:       pct(as.FR.SpecReadsFR, reads),
			FRMiss:       pct(as.FR.SpecReadUnused, reads),
			SWIFRSent:    pct(frSent, reads),
			SWIFRMiss:    pct(frMiss, reads),
			SWIReadSent:  pct(swiSent, reads),
			SWIReadMiss:  pct(swiMiss, reads),
			SWIInvalSent: pct(as.SWI.SWIRecalls, writes),
			SWIInvalMiss: pct(as.SWI.SWIPremature, writes),
		})
	}
	return out
}

// AnalyticParams re-exports the §5 model inputs.
type AnalyticParams = analytic.Params

// AnalyticSpeedup evaluates Equation 2 of the paper.
func AnalyticSpeedup(p AnalyticParams) float64 { return analytic.Speedup(p) }

// AnalyticCommSpeedup evaluates Equation 1 of the paper.
func AnalyticCommSpeedup(p AnalyticParams) float64 { return analytic.CommSpeedup(p) }

// AnalyticSeries is one Figure 6 curve.
type AnalyticSeries struct {
	Label string
	C     []float64
	Y     []float64
}

// Figure6Panel names one of the four Figure 6 panels.
type Figure6Panel struct {
	Title  string
	Series []AnalyticSeries
}

// Figure6 generates all four panels of Figure 6.
func Figure6() []Figure6Panel {
	var out []Figure6Panel
	for _, p := range analytic.Panels() {
		panel := Figure6Panel{Title: p.String()}
		for _, s := range analytic.Figure6(p) {
			panel.Series = append(panel.Series, AnalyticSeries{Label: s.Label, C: s.C, Y: s.Y})
		}
		out = append(out, panel)
	}
	return out
}

// Validate sanity-checks a study config early.
func (c StudyConfig) Validate() error {
	cc := c.withDefaults()
	for _, app := range cc.Apps {
		if _, ok := appExists(app); !ok {
			return fmt.Errorf("specdsm: unknown application %q", app)
		}
	}
	for _, d := range cc.Depths {
		if d < 1 || d > core.MaxDepth {
			return fmt.Errorf("specdsm: invalid depth %d (supported range [1,%d])", d, core.MaxDepth)
		}
	}
	if cc.Retries < 0 {
		return fmt.Errorf("specdsm: negative retry budget %d", cc.Retries)
	}
	if cc.FaultSpec != "" {
		if _, err := fault.ParseSpec(cc.FaultSpec); err != nil {
			return fmt.Errorf("specdsm: %w", err)
		}
	}
	for _, h := range cc.Remote {
		if _, _, err := net.SplitHostPort(h); err != nil {
			return fmt.Errorf("specdsm: invalid remote shard address %q (want host:port): %v", h, err)
		}
	}
	return nil
}

func appExists(name string) (string, bool) {
	for _, n := range AppNames() {
		if n == name {
			return n, true
		}
	}
	return "", false
}
