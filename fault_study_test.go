package specdsm_test

// Study-level failure-model tests: injected transient faults plus a
// retry budget must leave study output byte-identical to a clean run,
// and KeepGoing must turn fatal job failures into ordered FAILED rows
// instead of aborting — at every worker count.

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"specdsm"
)

func faultCfg() specdsm.StudyConfig {
	return specdsm.StudyConfig{
		Apps:  []string{"em3d", "moldyn", "tomcatv"},
		Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 11,
	}
}

// TestStudyTransientFaultInvariance pins the PR's headline determinism
// guarantee at the study level: a sweep peppered with injected transient
// faults and delays, given a retry budget, produces results deep-equal
// to a fault-free run, sequentially and in parallel.
func TestStudyTransientFaultInvariance(t *testing.T) {
	clean, err := specdsm.PredictorStudy(faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{1, 8} {
		cfg := faultCfg()
		cfg.Parallel = parallel
		cfg.FaultSpec = "seed=7,transient=0.4,delay=0.5,delaymax=16"
		cfg.Retries = 8
		faulty, err := specdsm.PredictorStudy(cfg)
		if err != nil {
			t.Fatalf("parallel %d: %v", parallel, err)
		}
		if !reflect.DeepEqual(clean, faulty) {
			t.Fatalf("parallel %d: faulted study diverged from clean run:\n%+v\nvs\n%+v",
				parallel, clean, faulty)
		}
	}
}

// TestStudyKeepGoingFailedRows drives every job into an injected panic:
// with KeepGoing the study completes with one FAILED row per
// application, identically at every worker count, and the derivations
// plus renderers pass the failure through instead of dereferencing
// missing runs.
func TestStudyKeepGoingFailedRows(t *testing.T) {
	var ref []specdsm.AppSpeculation
	for _, parallel := range []int{1, 8} {
		cfg := faultCfg()
		cfg.Parallel = parallel
		cfg.FaultSpec = "seed=3,panic=1"
		cfg.KeepGoing = true
		rows, err := specdsm.SpeculationStudy(cfg)
		if err != nil {
			t.Fatalf("parallel %d: %v", parallel, err)
		}
		if len(rows) != len(cfg.Apps) {
			t.Fatalf("parallel %d: got %d rows, want %d", parallel, len(rows), len(cfg.Apps))
		}
		for _, r := range rows {
			if r.Failed == "" {
				t.Fatalf("parallel %d: %s should have failed under panic=1", parallel, r.App)
			}
			if !strings.Contains(r.Failed, "injected panic") {
				t.Fatalf("parallel %d: %s failure lost the panic text: %q", parallel, r.App, r.Failed)
			}
			if r.Base != nil || r.FR != nil || r.SWI != nil {
				t.Fatalf("parallel %d: %s FAILED row carries run pointers", parallel, r.App)
			}
		}
		if ref == nil {
			ref = rows
		} else if !reflect.DeepEqual(ref, rows) {
			t.Fatalf("FAILED rows diverged between worker counts:\n%+v\nvs\n%+v", ref, rows)
		}
	}

	fig9 := specdsm.Figure9(ref)
	tab5 := specdsm.Table5(ref)
	for i := range ref {
		if fig9[i].Failed == "" || tab5[i].Failed == "" {
			t.Fatalf("derivations dropped the failure marker: %+v / %+v", fig9[i], tab5[i])
		}
	}
	for _, text := range []string{specdsm.RenderFigure9(fig9), specdsm.RenderTable5(tab5)} {
		if !strings.Contains(text, "FAILED") {
			t.Fatalf("renderer hides FAILED rows:\n%s", text)
		}
	}
	if !strings.Contains(specdsm.RenderFigure9(fig9), "unavailable") {
		t.Fatal("all-failed Figure 9 should report the mean as unavailable")
	}
}

// TestStudyKeepGoingPartialFailure fails exactly one application's jobs
// (fatal, not retryable) and checks the survivors are untouched: their
// rows match a clean run of the same configuration.
func TestStudyKeepGoingPartialFailure(t *testing.T) {
	clean, err := specdsm.PredictorStudy(faultCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Hunt a fault seed that fails some but not all of the three jobs;
	// decisions are pure hashes, so the first qualifying seed is stable.
	for seed := 1; seed <= 32; seed++ {
		cfg := faultCfg()
		cfg.KeepGoing = true
		cfg.FaultSpec = fmt.Sprintf("seed=%d,panic=0.5", seed)
		rows, err := specdsm.PredictorStudy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var failed, ok int
		for i, r := range rows {
			if r.Failed != "" {
				failed++
			} else {
				ok++
				if !reflect.DeepEqual(r, clean[i]) {
					t.Fatalf("surviving row %s diverged from clean run", r.App)
				}
			}
		}
		if failed > 0 && ok > 0 {
			return // found the mixed outcome we wanted
		}
	}
	t.Fatal("no fault seed in [1,32] produced a mixed failure outcome")
}

// TestValidateFailureKnobs covers the new StudyConfig validation.
func TestValidateFailureKnobs(t *testing.T) {
	cfg := faultCfg()
	cfg.Retries = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative retry budget validated")
	}
	cfg = faultCfg()
	cfg.FaultSpec = "transient=not-a-number"
	if err := cfg.Validate(); err == nil {
		t.Fatal("malformed fault spec validated")
	}
	cfg.FaultSpec = "seed=7,transient=0.2,panic=0.01"
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid fault spec rejected: %v", err)
	}
}
