module specdsm

go 1.24
