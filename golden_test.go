package specdsm_test

// Determinism goldens: the simulator is bit-reproducible, so exact cycle
// counts for fixed (app, scale, seed, mode) are pinned here. A failure
// means simulator behaviour changed — which may be intentional, but must
// be noticed (update the constants deliberately, alongside EXPERIMENTS.md
// if shapes moved).

import (
	"reflect"
	"testing"

	"specdsm"
)

func goldenRun(t *testing.T, app string, mode specdsm.Mode) int64 {
	t.Helper()
	w, err := specdsm.AppWorkload(app, specdsm.WorkloadParams{
		Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := specdsm.Run(w, specdsm.MachineOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return r.Cycles
}

func TestDeterminismAcrossRuns(t *testing.T) {
	for _, app := range specdsm.AppNames() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			a := goldenRun(t, app, specdsm.ModeSWI)
			b := goldenRun(t, app, specdsm.ModeSWI)
			if a != b {
				t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
			}
		})
	}
}

// TestStudiesParallelInvariant pins the sweep engine's core contract:
// the study drivers produce deep-equal results at Parallel: 8 and
// Parallel: 1 (the exact sequential order of the pre-pool loops), for
// multiple seeds. This is what makes -parallel N byte-identical to
// -parallel 1 at the CLI.
func TestStudiesParallelInvariant(t *testing.T) {
	for _, seed := range []int64{11, 23} {
		seed := seed
		cfg := specdsm.StudyConfig{
			Apps:       []string{"em3d", "moldyn", "tomcatv"},
			Nodes:      8,
			Iterations: 3,
			Scale:      0.25,
			Seed:       seed,
		}
		seq, par := cfg, cfg
		seq.Parallel, par.Parallel = 1, 8

		p1, err := specdsm.PredictorStudy(seq)
		if err != nil {
			t.Fatal(err)
		}
		p8, err := specdsm.PredictorStudy(par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p1, p8) {
			t.Fatalf("seed %d: PredictorStudy diverged between Parallel 1 and 8:\n%+v\nvs\n%+v", seed, p1, p8)
		}

		s1, err := specdsm.SpeculationStudy(seq)
		if err != nil {
			t.Fatal(err)
		}
		s8, err := specdsm.SpeculationStudy(par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1, s8) {
			t.Fatalf("seed %d: SpeculationStudy diverged between Parallel 1 and 8:\n%+v\nvs\n%+v", seed, s1, s8)
		}
	}
}

// TestAggregatesParallelInvariant extends the invariant to the
// multi-seed aggregate and the rtl sweep.
func TestAggregatesParallelInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("aggregate sweeps are slow for -short")
	}
	cfg := specdsm.StudyConfig{
		Apps: []string{"em3d", "tomcatv"}, Nodes: 8, Iterations: 3, Scale: 0.25,
		DisableChecks: true,
	}
	seq, par := cfg, cfg
	seq.Parallel, par.Parallel = 1, 8
	a1, err := specdsm.SpeculationStudySeeds(seq, []int64{11, 23})
	if err != nil {
		t.Fatal(err)
	}
	a8, err := specdsm.SpeculationStudySeeds(par, []int64{11, 23})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a8) {
		t.Fatalf("SpeculationStudySeeds diverged:\n%+v\nvs\n%+v", a1, a8)
	}

	wp := specdsm.WorkloadParams{Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 11}
	r1, err := specdsm.RTLSweepParallel("em3d", wp, []int{20, 200}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := specdsm.RTLSweepParallel("em3d", wp, []int{20, 200}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("RTLSweep diverged:\n%+v\nvs\n%+v", r1, r8)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	w1, _ := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 1})
	w2, _ := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 2})
	r1, err := specdsm.Run(w1, specdsm.MachineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := specdsm.Run(w2, specdsm.MachineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles == r2.Cycles {
		t.Fatalf("different seeds produced identical makespans (%d); generator ignoring seed?", r1.Cycles)
	}
}
