package specdsm_test

// Determinism goldens: the simulator is bit-reproducible, so exact cycle
// counts for fixed (app, scale, seed, mode) are pinned here. A failure
// means simulator behaviour changed — which may be intentional, but must
// be noticed (update the constants deliberately, alongside EXPERIMENTS.md
// if shapes moved).

import (
	"testing"

	"specdsm"
)

func goldenRun(t *testing.T, app string, mode specdsm.Mode) int64 {
	t.Helper()
	w, err := specdsm.AppWorkload(app, specdsm.WorkloadParams{
		Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := specdsm.Run(w, specdsm.MachineOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return r.Cycles
}

func TestDeterminismAcrossRuns(t *testing.T) {
	for _, app := range specdsm.AppNames() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			a := goldenRun(t, app, specdsm.ModeSWI)
			b := goldenRun(t, app, specdsm.ModeSWI)
			if a != b {
				t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
			}
		})
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	w1, _ := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 1})
	w2, _ := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 2})
	r1, err := specdsm.Run(w1, specdsm.MachineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := specdsm.Run(w2, specdsm.MachineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles == r2.Cycles {
		t.Fatalf("different seeds produced identical makespans (%d); generator ignoring seed?", r1.Cycles)
	}
}
