package analytic

import "fmt"

// Params holds the model inputs.
type Params struct {
	// C is the communication ratio on the critical path, in [0,1].
	C float64
	// F is the fraction of speculatively executed requests, in [0,1].
	F float64
	// P is the request prediction accuracy, in [0,1].
	P float64
	// RTL is the remote-to-local access latency ratio (>= 1).
	RTL float64
	// N is the misspeculation penalty factor (in remote-access units).
	N float64
}

func (p Params) validate() error {
	switch {
	case p.C < 0 || p.C > 1:
		return fmt.Errorf("analytic: c=%v out of [0,1]", p.C)
	case p.F < 0 || p.F > 1:
		return fmt.Errorf("analytic: f=%v out of [0,1]", p.F)
	case p.P < 0 || p.P > 1:
		return fmt.Errorf("analytic: p=%v out of [0,1]", p.P)
	case p.RTL < 1:
		return fmt.Errorf("analytic: rtl=%v < 1", p.RTL)
	case p.N < 0:
		return fmt.Errorf("analytic: n=%v < 0", p.N)
	}
	return nil
}

// CommSpeedup evaluates Equation 1: the speedup of communication time.
//
//	comm-speedup = 1 / ((1-f) + f·(p/rtl + n·(1-p)))
func CommSpeedup(p Params) float64 {
	if err := p.validate(); err != nil {
		panic(err)
	}
	return 1 / ((1 - p.F) + p.F*(p.P/p.RTL+p.N*(1-p.P)))
}

// Speedup evaluates Equation 2: the overall application speedup.
//
//	speedup = 1 / ((1-c) + c/comm-speedup)
func Speedup(p Params) float64 {
	cs := CommSpeedup(p)
	return 1 / ((1 - p.C) + p.C/cs)
}

// Series is one curve of a Figure 6 panel: speedup as a function of the
// communication ratio c.
type Series struct {
	Label string
	C     []float64
	Y     []float64
}

// cGrid is the x axis of every panel: c = 0.00, 0.05, ..., 1.00.
func cGrid() []float64 {
	xs := make([]float64, 21)
	for i := range xs {
		xs[i] = float64(i) / 20
	}
	return xs
}

func sweep(label string, base Params) Series {
	s := Series{Label: label}
	for _, c := range cGrid() {
		p := base
		p.C = c
		s.C = append(s.C, c)
		s.Y = append(s.Y, Speedup(p))
	}
	return s
}

// Panel identifies one of the four Figure 6 graphs.
type Panel int

const (
	// PanelAccuracy varies p with n=2, f=1, rtl=4 (top-left).
	PanelAccuracy Panel = iota
	// PanelPenalty varies n with p=0.9, f=1, rtl=4 (top-right).
	PanelPenalty
	// PanelFraction varies f with p=0.9, n=2, rtl=4 (bottom-left).
	PanelFraction
	// PanelRTL varies rtl with p=0.9, n=2, f=1 (bottom-right).
	PanelRTL
)

func (p Panel) String() string {
	switch p {
	case PanelAccuracy:
		return "n=2, f=1.0, rtl=4 (vary p)"
	case PanelPenalty:
		return "p=0.9, f=1.0, rtl=4 (vary n)"
	case PanelFraction:
		return "p=0.9, n=2, rtl=4 (vary f)"
	case PanelRTL:
		return "p=0.9, n=2, f=1.0 (vary rtl)"
	default:
		return "?"
	}
}

// Figure6 generates the curves of one panel, exactly as parameterized in
// the paper.
func Figure6(panel Panel) []Series {
	switch panel {
	case PanelAccuracy:
		var out []Series
		for _, p := range []float64{1.0, 0.9, 0.7, 0.5, 0.3, 0.1} {
			out = append(out, sweep(fmt.Sprintf("p = %.1f", p),
				Params{F: 1.0, P: p, RTL: 4, N: 2}))
		}
		return out
	case PanelPenalty:
		var out []Series
		for _, n := range []float64{1.5, 2, 4, 8} {
			out = append(out, sweep(fmt.Sprintf("n = %g", n),
				Params{F: 1.0, P: 0.9, RTL: 4, N: n}))
		}
		return out
	case PanelFraction:
		var out []Series
		for _, f := range []float64{1.0, 0.9, 0.7, 0.5, 0.3, 0.1} {
			out = append(out, sweep(fmt.Sprintf("f = %.1f", f),
				Params{F: f, P: 0.9, RTL: 4, N: 2}))
		}
		return out
	case PanelRTL:
		var out []Series
		for _, rtl := range []struct {
			v    float64
			name string
		}{{8, "NUMA-Q"}, {4, "Mercury"}, {2, "Origin"}} {
			out = append(out, sweep(fmt.Sprintf("rtl = %g (%s)", rtl.v, rtl.name),
				Params{F: 1.0, P: 0.9, RTL: rtl.v, N: 2}))
		}
		return out
	default:
		panic(fmt.Sprintf("analytic: unknown panel %d", panel))
	}
}

// Panels lists all four Figure 6 panels.
func Panels() []Panel {
	return []Panel{PanelAccuracy, PanelPenalty, PanelFraction, PanelRTL}
}
