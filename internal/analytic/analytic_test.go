package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPerfectSpeculationBehavesLikeSMP(t *testing.T) {
	// §5: "when all speculations succeed (p=1.0), all remote accesses turn
	// into local accesses and the DSM behaves like an SMP" — at c=1 the
	// speedup equals rtl.
	p := Params{C: 1, F: 1, P: 1, RTL: 4, N: 2}
	if got := Speedup(p); !almostEq(got, 4) {
		t.Fatalf("speedup = %v, want 4", got)
	}
	if got := CommSpeedup(p); !almostEq(got, 4) {
		t.Fatalf("comm speedup = %v, want rtl", got)
	}
}

func TestNoSpeculationIsNeutral(t *testing.T) {
	p := Params{C: 0.5, F: 0, P: 0.9, RTL: 4, N: 2}
	if got := Speedup(p); !almostEq(got, 1) {
		t.Fatalf("f=0 speedup = %v, want 1", got)
	}
}

func TestNoCommunicationIsNeutral(t *testing.T) {
	p := Params{C: 0, F: 1, P: 0.9, RTL: 4, N: 2}
	if got := Speedup(p); !almostEq(got, 1) {
		t.Fatalf("c=0 speedup = %v, want 1", got)
	}
}

func TestLowAccuracySlowsDown(t *testing.T) {
	// §7 Figure 6: accuracy 10%-50% consistently results in a slowdown.
	for _, acc := range []float64{0.1, 0.3, 0.5} {
		p := Params{C: 0.8, F: 1, P: acc, RTL: 4, N: 2}
		if got := Speedup(p); got >= 1 {
			t.Fatalf("p=%v speedup = %v, want < 1 (slowdown)", acc, got)
		}
	}
}

func TestPaperSpotValue(t *testing.T) {
	// "A prediction accuracy of 70% at best speeds up the execution by 25%
	// for a fully communication-bound application" (n=2, rtl=4, f=1).
	p := Params{C: 1, F: 1, P: 0.7, RTL: 4, N: 2}
	got := Speedup(p)
	if got < 1.2 || got > 1.35 {
		t.Fatalf("speedup = %v, want ~1.25", got)
	}
}

func TestSpeedupMonotonicInAccuracy(t *testing.T) {
	f := func(rawC, rawP1, rawP2 float64) bool {
		c := math.Mod(math.Abs(rawC), 1)
		p1 := math.Mod(math.Abs(rawP1), 1)
		p2 := math.Mod(math.Abs(rawP2), 1)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		s1 := Speedup(Params{C: c, F: 1, P: p1, RTL: 4, N: 2})
		s2 := Speedup(Params{C: c, F: 1, P: p2, RTL: 4, N: 2})
		return s2 >= s1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupMonotonicDecreasingInPenalty(t *testing.T) {
	f := func(rawC, rawN1, rawN2 float64) bool {
		c := math.Mod(math.Abs(rawC), 1)
		n1 := math.Mod(math.Abs(rawN1), 8)
		n2 := math.Mod(math.Abs(rawN2), 8)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		s1 := Speedup(Params{C: c, F: 1, P: 0.9, RTL: 4, N: n1})
		s2 := Speedup(Params{C: c, F: 1, P: 0.9, RTL: 4, N: n2})
		return s2 <= s1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHigherRTLBenefitsMore(t *testing.T) {
	// Figure 6 bottom-right: clusters (high rtl) benefit most.
	mk := func(rtl float64) float64 {
		return Speedup(Params{C: 0.8, F: 1, P: 0.9, RTL: rtl, N: 2})
	}
	if !(mk(8) > mk(4) && mk(4) > mk(2)) {
		t.Fatalf("rtl ordering violated: %v %v %v", mk(8), mk(4), mk(2))
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{C: -0.1, F: 1, P: 1, RTL: 4, N: 2},
		{C: 0.5, F: 1.5, P: 1, RTL: 4, N: 2},
		{C: 0.5, F: 1, P: 2, RTL: 4, N: 2},
		{C: 0.5, F: 1, P: 1, RTL: 0.5, N: 2},
		{C: 0.5, F: 1, P: 1, RTL: 4, N: -1},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			CommSpeedup(p)
		}()
	}
}

func TestFigure6Panels(t *testing.T) {
	wantCurves := map[Panel]int{
		PanelAccuracy: 6,
		PanelPenalty:  4,
		PanelFraction: 6,
		PanelRTL:      3,
	}
	for _, panel := range Panels() {
		series := Figure6(panel)
		if len(series) != wantCurves[panel] {
			t.Fatalf("panel %v: %d curves, want %d", panel, len(series), wantCurves[panel])
		}
		for _, s := range series {
			if len(s.C) != len(s.Y) || len(s.C) < 10 {
				t.Fatalf("panel %v series %q malformed", panel, s.Label)
			}
			// Every curve starts at speedup 1 (c=0).
			if !almostEq(s.Y[0], 1) {
				t.Fatalf("panel %v series %q: Y[0] = %v, want 1", panel, s.Label, s.Y[0])
			}
		}
	}
}

func TestPanelStrings(t *testing.T) {
	for _, p := range Panels() {
		if p.String() == "?" {
			t.Fatalf("panel %d has no label", p)
		}
	}
}
