// Package analytic implements the qualitative performance model of the
// paper's §5 (Equations 1 and 2) and generates the four panels of
// Figure 6.
//
// The model estimates the speedup of a speculative coherent DSM from five
// parameters: the application's communication ratio on the critical path
// (c), the fraction of memory requests executed speculatively (f), the
// prediction accuracy (p), the remote-to-local latency ratio (rtl), and
// the misspeculation penalty factor (n).
package analytic
