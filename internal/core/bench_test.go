package core

import (
	"fmt"
	"testing"

	"specdsm/internal/mem"
)

// The paper attaches up to 9 observer predictors to every directory
// message, so Observe is the innermost loop of every study. These
// benchmarks pin its steady-state cost — and, via ReportAllocs and
// TestObserveSteadyStateZeroAllocs, that the existing-pattern path does
// not allocate.

// benchSeq is the producer/consumer iteration of Figures 2-4: one
// upgrade, two acks (tracked only by Cosmos), two reads.
func benchSeq() []Observation {
	return producerConsumerIter()
}

func benchObserve(b *testing.B, kind Kind, depth int) {
	p := New(kind, depth)
	seq := benchSeq()
	// Warm up until every pattern at this depth is learned, so the timed
	// loop exercises only the existing-pattern path.
	for i := 0; i < 4*depth+4; i++ {
		feed(p, seq...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(blk, seq[i%len(seq)])
	}
}

func BenchmarkObserve(b *testing.B) {
	for _, kind := range []Kind{KindCosmos, KindMSP, KindVMSP} {
		for _, depth := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%v/d%d", kind, depth), func(b *testing.B) {
				benchObserve(b, kind, depth)
			})
		}
	}
}

// BenchmarkObserveColdBlocks measures the allocation path: every access
// touches a new block, so block and pattern-table growth dominate.
func BenchmarkObserveColdBlocks(b *testing.B) {
	p := NewMSP(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := mem.MakeAddr(mem.NodeID(i%16), uint64(i))
		p.Observe(addr, Observation{Type: MsgRead, Node: mem.NodeID(i % 16)})
	}
}

// BenchmarkPredictReaders measures the speculation surface: VMSP's single
// vector lookup vs MSP's chain expansion (which no longer clones the
// block state).
func BenchmarkPredictReaders(b *testing.B) {
	for _, kind := range []Kind{KindMSP, KindVMSP} {
		b.Run(kind.String(), func(b *testing.B) {
			p := New(kind, 1)
			for i := 0; i < 4; i++ {
				feed(p, producerConsumerIter()...)
			}
			feed(p, obs(MsgUpgrade, 3))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := p.PredictReaders(blk); !ok {
					b.Fatal("no prediction")
				}
			}
		})
	}
}

// TestPredictReadersSteadyStateZeroAllocs is the acceptance guard for
// the FR/SWI speculation surface: with the pattern tables warm, the full
// speculation round — PredictReaders (whose entry handles now live in
// the ReadPrediction's inline prefix), AssumeReaders for the forwarded
// copies (history pushes land in retained, pre-sized tables), a
// RetractReader, and a Prune on the returned handle — must not touch the
// heap, for every predictor kind. This finishes the zero-alloc path that
// TestObserveSteadyStateZeroAllocs pins for the observation side.
func TestPredictReadersSteadyStateZeroAllocs(t *testing.T) {
	for _, kind := range []Kind{KindCosmos, KindMSP, KindVMSP} {
		p := New(kind, 1)
		for i := 0; i < 4; i++ {
			feed(p, producerConsumerIter()...)
		}
		// advance replays the producer's write phase so the block's
		// history returns to the read-predicting point of the cycle
		// (Cosmos also tracks the two invalidation acks, so its history
		// must include them to land on the same point).
		advance := func() {
			p.Observe(blk, obs(MsgUpgrade, 3))
			if kind == KindCosmos {
				p.Observe(blk, obs(MsgAckInv, 1))
				p.Observe(blk, obs(MsgAckInv, 2))
			}
		}
		advance()
		// One warm speculation round so AssumeReaders' scoreless pushes
		// have created every pattern entry the cycle will ever need.
		rp, ok := p.PredictReaders(blk)
		if !ok {
			t.Fatalf("%v: no read prediction after warmup", kind)
		}
		p.AssumeReaders(blk, rp.Readers)
		advance()
		// outsider is a node never part of the predicted reader set:
		// retracting and pruning it exercises the verification surfaces
		// without mutating the learned cycle.
		const outsider = mem.NodeID(15)
		avg := testing.AllocsPerRun(1000, func() {
			rp, ok := p.PredictReaders(blk)
			if !ok {
				t.Fatal("prediction lost")
			}
			p.AssumeReaders(blk, rp.Readers)
			p.RetractReader(blk, outsider)
			rp.Prune(outsider)
			advance()
		})
		if avg != 0 {
			t.Errorf("%v: steady-state PredictReaders round allocates %.2f/op, want 0", kind, avg)
		}
	}
}

// TestObserveSteadyStateZeroAllocs is the acceptance guard for the packed
// pattern keys: once a pattern is learned, re-observing it must not touch
// the heap, for every predictor kind and evaluated depth.
func TestObserveSteadyStateZeroAllocs(t *testing.T) {
	for _, kind := range []Kind{KindCosmos, KindMSP, KindVMSP} {
		for _, depth := range []int{1, 2, 4} {
			p := New(kind, depth)
			seq := benchSeq()
			for i := 0; i < 4*depth+4; i++ {
				feed(p, seq...)
			}
			i := 0
			avg := testing.AllocsPerRun(1000, func() {
				p.Observe(blk, seq[i%len(seq)])
				i++
			})
			if avg != 0 {
				t.Errorf("%v d=%d: Observe steady state allocates %.2f/op, want 0", kind, depth, avg)
			}
		}
	}
}
