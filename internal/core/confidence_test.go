package core

import (
	"testing"

	"specdsm/internal/mem"
)

// Confidence gating: an unstable pattern whose successor changes every
// occurrence never reaches the threshold, so the speculation surfaces
// stay silent — while accuracy scoring continues unaffected.
func TestConfidenceGatesUnstablePatterns(t *testing.T) {
	p := NewVMSP(1)
	p.SetConfidenceThreshold(2)
	// The reader after each write alternates: the vector entry for the
	// write history keeps flip-flopping.
	for i := 0; i < 10; i++ {
		reader := mem.NodeID(1 + i%2)
		feed(p, obs(MsgWrite, 0), obs(MsgRead, reader))
	}
	feed(p, obs(MsgWrite, 0))
	if _, ok := p.PredictReaders(blk); ok {
		t.Fatal("flip-flopping pattern must not pass the confidence gate")
	}
	if p.Stats().Tracked == 0 || p.Stats().Predicted == 0 {
		t.Fatal("accuracy scoring must continue under gating")
	}
}

func TestConfidencePassesStablePatterns(t *testing.T) {
	p := NewVMSP(1)
	p.SetConfidenceThreshold(2)
	for i := 0; i < 6; i++ {
		feed(p, obs(MsgWrite, 0), obs(MsgRead, 1), obs(MsgRead, 2))
	}
	feed(p, obs(MsgWrite, 0))
	rp, ok := p.PredictReaders(blk)
	if !ok || !rp.Readers.Equal(mem.VecOf(1, 2)) {
		t.Fatalf("stable pattern should pass the gate: %v ok=%v", rp.Readers, ok)
	}
}

func TestConfidenceZeroIsPaperBehaviour(t *testing.T) {
	gated := NewVMSP(1)
	gated.SetConfidenceThreshold(0)
	plain := NewVMSP(1)
	seq := []Observation{obs(MsgWrite, 0), obs(MsgRead, 1), obs(MsgRead, 2)}
	feed(gated, seq...)
	feed(plain, seq...)
	feed(gated, obs(MsgWrite, 0))
	feed(plain, obs(MsgWrite, 0))
	g, gok := gated.PredictReaders(blk)
	q, qok := plain.PredictReaders(blk)
	if gok != qok || !g.Readers.Equal(q.Readers) {
		t.Fatalf("threshold 0 must match ungated behaviour: %v/%v vs %v/%v", g.Readers, gok, q.Readers, qok)
	}
}

func TestConfidenceThresholdClamped(t *testing.T) {
	p := NewVMSP(1)
	p.SetConfidenceThreshold(99) // clamps to 3
	for i := 0; i < 10; i++ {
		feed(p, obs(MsgWrite, 0), obs(MsgRead, 1))
	}
	feed(p, obs(MsgWrite, 0))
	if _, ok := p.PredictReaders(blk); !ok {
		t.Fatal("a long-stable pattern must reach even the max threshold")
	}
	p.SetConfidenceThreshold(-5) // clamps to 0
	if _, ok := p.PredictReaders(blk); !ok {
		t.Fatal("threshold 0 must not gate")
	}
}

func TestConfidenceGatesPredictNextAndUpgrade(t *testing.T) {
	p := NewMSP(1)
	p.SetConfidenceThreshold(2)
	// The successor of the write flip-flops between two readers, so the
	// [Write]-keyed entry never accumulates confidence.
	for i := 0; i < 10; i++ {
		n := mem.NodeID(1 + i%2)
		feed(p, obs(MsgWrite, 0), obs(MsgRead, n))
	}
	feed(p, obs(MsgWrite, 0))
	if _, ok := p.PredictNext(blk); ok {
		t.Fatal("PredictNext must respect the gate for unstable patterns")
	}
	// A stable migratory chain builds confidence.
	p2 := NewMSP(1)
	p2.SetConfidenceThreshold(2)
	for i := 0; i < 8; i++ {
		feed(p2, obs(MsgRead, 1), obs(MsgUpgrade, 1), obs(MsgRead, 2), obs(MsgUpgrade, 2))
	}
	feed(p2, obs(MsgRead, 1))
	if !p2.PredictsUpgradeBy(blk, 1) {
		t.Fatal("stable migratory pattern should pass the gate")
	}
}
