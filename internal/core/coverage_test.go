package core

import (
	"testing"

	"specdsm/internal/mem"
)

func TestStatsRatioEdgeCases(t *testing.T) {
	var s Stats
	if s.Accuracy() != 0 || s.Coverage() != 0 || s.CorrectFraction() != 0 {
		t.Fatal("zero stats must yield zero ratios")
	}
	s = Stats{Tracked: 10, Predicted: 8, Correct: 6}
	if s.Accuracy() != 0.75 {
		t.Fatalf("accuracy = %v", s.Accuracy())
	}
	if s.Coverage() != 0.8 {
		t.Fatalf("coverage = %v", s.Coverage())
	}
	if s.CorrectFraction() != 0.6 {
		t.Fatalf("correct fraction = %v", s.CorrectFraction())
	}
}

func TestCensusEdgeCases(t *testing.T) {
	var c Census
	if c.EntriesPerBlock() != 0 {
		t.Fatal("empty census pte must be zero")
	}
}

func TestSymbolAndTypeStrings(t *testing.T) {
	cases := map[string]string{
		Symbol{Type: MsgRead, Node: 3}.String():              "<Read,P3>",
		Symbol{Type: MsgRead, Vec: mem.VecOf(1, 2)}.String(): "<Read,{1,2}>",
		Symbol{Type: MsgUpgrade, Node: 7}.String():           "<Upgrade,P7>",
		Symbol{}.String():                                                          "<-,P0>",
		Symbol{Type: MsgAckInv, Node: 1}.String():                                  "<ack,P1>",
		Symbol{Type: MsgWriteback, Node: 2}.String():                               "<writeback,P2>",
		Symbol{Type: MsgType(42), Node: 0}.String():                                "<MsgType(42),P0>",
		Symbol{Type: MsgWrite, Node: mem.NodeID(5), Vec: mem.ReaderVec{}}.String(): "<Write,P5>",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestReqMsgTypeMapping(t *testing.T) {
	if ReqMsgType(mem.ReqRead) != MsgRead ||
		ReqMsgType(mem.ReqWrite) != MsgWrite ||
		ReqMsgType(mem.ReqUpgrade) != MsgUpgrade {
		t.Fatal("request mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid kind")
		}
	}()
	ReqMsgType(mem.ReqKind(99))
}

func TestAccessors(t *testing.T) {
	p := NewMSP(2)
	if p.Name() != "MSP" || p.Kind() != KindMSP || p.HistoryDepth() != 2 {
		t.Fatalf("accessors wrong: %s %v %d", p.Name(), p.Kind(), p.HistoryDepth())
	}
	if KindCosmos.String() != "Cosmos" || Kind(9).String() != "Kind(9)" {
		t.Fatal("kind strings wrong")
	}
	if MsgInvalid.String() != "-" {
		t.Fatal("invalid message string wrong")
	}
}

func TestPruneEdgeCases(t *testing.T) {
	// Pruning a prediction that has moved on to a write symbol is a no-op.
	p := NewMSP(1)
	feed(p, obs(MsgWrite, 0), obs(MsgRead, 1), obs(MsgWrite, 0), obs(MsgRead, 1), obs(MsgWrite, 0))
	rp, ok := p.PredictReaders(blk)
	if !ok {
		t.Fatal("no prediction")
	}
	// Advance so the entry now predicts a write.
	feed(p, obs(MsgRead, 2), obs(MsgWrite, 0))
	rp.Prune(1) // must not panic or corrupt
	// Pruning a node not in the prediction is a no-op.
	p2 := NewVMSP(1)
	feed(p2, obs(MsgWrite, 0), obs(MsgRead, 1), obs(MsgWrite, 0), obs(MsgRead, 1), obs(MsgWrite, 0))
	rp2, ok := p2.PredictReaders(blk)
	if !ok {
		t.Fatal("no prediction")
	}
	rp2.Prune(7)
	if rp3, ok := p2.PredictReaders(blk); !ok || !rp3.Readers.Has(1) {
		t.Fatal("pruning an absent node must not remove real readers")
	}
	// Empty prediction handles pruning.
	var empty ReadPrediction
	empty.Prune(1)
}

func TestPredictsUpgradeByEdgeCases(t *testing.T) {
	p := NewVMSP(1)
	if p.PredictsUpgradeBy(blk, 1) {
		t.Fatal("cold block predicts nothing")
	}
	// Migratory for VMSP: run {1} closed by upgrade from 1.
	for i := 0; i < 4; i++ {
		feed(p, obs(MsgRead, 1), obs(MsgUpgrade, 1), obs(MsgRead, 2), obs(MsgUpgrade, 2))
	}
	if !p.PredictsUpgradeBy(blk, 1) {
		t.Fatal("VMSP should predict the upgrade after reader 1 joins")
	}
	if p.PredictsUpgradeBy(blk, 7) {
		t.Fatal("unknown reader must not predict")
	}
	// A predicted READ successor is not an upgrade prediction.
	pc := NewMSP(1)
	feed(pc, obs(MsgWrite, 0), obs(MsgRead, 1), obs(MsgRead, 2), obs(MsgWrite, 0), obs(MsgRead, 1))
	if pc.PredictsUpgradeBy(blk, 1) {
		t.Fatal("read successor misclassified as upgrade")
	}
}

func TestAssumeReadersEdgeCases(t *testing.T) {
	p := NewMSP(1)
	p.AssumeReaders(blk, mem.ReaderVec{}) // empty vector: no-op, no allocation needed
	if c := p.Census(); c.Blocks != 0 {
		t.Fatal("empty assume must not allocate")
	}
	// MSP assume pushes read symbols so the next write is keyed off them.
	feed(p, obs(MsgWrite, 0), obs(MsgRead, 1), obs(MsgWrite, 0), obs(MsgRead, 1), obs(MsgWrite, 0))
	p.AssumeReaders(blk, mem.VecOf(1))
	out := p.Observe(blk, obs(MsgWrite, 0))
	if !out.Predicted || !out.Correct {
		t.Fatalf("write after assumed reader should hit the learned pattern: %+v", out)
	}
	// Retract on a cold predictor is a no-op.
	NewVMSP(1).RetractReader(mem.MakeAddr(5, 5), 1)
}

func TestObservationStringForms(t *testing.T) {
	if MsgRead.IsWriteLike() || !MsgWrite.IsWriteLike() || !MsgUpgrade.IsWriteLike() {
		t.Fatal("write-likeness wrong")
	}
	if !MsgRead.IsRequest() || MsgAckInv.IsRequest() || MsgWriteback.IsRequest() {
		t.Fatal("request classification wrong")
	}
}
