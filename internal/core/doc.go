// Package core implements the paper's primary contribution: pattern-based
// coherence predictors attached to a DSM directory.
//
// Three predictors are provided, all built on one two-level (PAp-derived)
// engine:
//
//   - Cosmos — the general message predictor of Mukherjee & Hill (ISCA '98),
//     reproduced here as the baseline. It observes and predicts every
//     incoming coherence message at the directory, including invalidation
//     acknowledgements and writebacks.
//   - MSP — the paper's Memory Sharing Predictor (§3). It observes and
//     predicts only memory request messages (read, write, upgrade),
//     eliminating acknowledgement-induced perturbation of the pattern
//     tables.
//   - VMSP — the Vector MSP (§3.1). Like MSP, but a sequence of reads
//     between writes is folded into a single reader bit-vector symbol,
//     eliminating read re-ordering effects.
//
// The package also provides the speculation-facing surface used by the
// speculative coherent DSM (§4): predicted upcoming reader sets with
// verification feedback (pruning mispredicted readers), the Speculative
// Write-Invalidation premature bit, and the per-node early-write-invalidate
// table.
//
// Three storage invariants keep Observe allocation-free in steady state
// while leaving every observable result bit-identical to the original
// string-keyed implementation (see the commentary on patKey in
// twolevel.go for the full argument):
//
//   - Pattern histories are packed into a fixed-size comparable patKey (a
//     bijection of the symbol sequence), maintained incrementally per
//     block, so table lookups never build heap keys.
//   - All pattern entries of a predictor live in one entryStore, laid out
//     structure-of-arrays: parallel slices for the pattern key, the
//     16-byte hot record (the packed prediction — tn holds
//     Type|Node<<symTypeBits, vec the reader vector's inline word or, on
//     machines wider than mem.InlineNodes, its id in the store's vector
//     interner, together a bijection of the Symbol it replaces, validity
//     tn&symTypeMask != 0 — plus the confidence/SWI meta byte), and the
//     accuracy counters. The scoring loop reads only the hot array — it
//     never drags the stats or key arrays into cache.
//     Lookup goes through patTable, an open-addressed pattern-key index
//     whose tagged probes reject mismatches on one byte and confirm on
//     the key in entryStore.keys.
//   - Entries and per-block records are addressed by stable int32 index
//     (growth appends, Reset bumps a generation and truncates); handles
//     (SWIGuard, ReadPrediction) carry the store generation so anything
//     captured before a Reset degrades to a no-op instead of corrupting
//     reused storage. Blocks reach their record through
//     mem.BlockMap.Reserve, a single-probe get-or-insert.
package core
