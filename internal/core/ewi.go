package core

import "specdsm/internal/mem"

// EWITable is the early-write-invalidate table of §4.1: per processor, the
// block address of its most recent write (or upgrade) request seen at this
// home node. A write by processor P to block B predicts that P is done
// writing its previously recorded block B' (if different), making B' a
// candidate for Speculative Write-Invalidation.
//
// Presence in the map is the "has an entry" bit: the table is one map, so
// Update and Last each cost a single lookup (the old twin last/has layout
// paid two per call and allocated two maps per node).
type EWITable struct {
	last map[mem.NodeID]mem.BlockAddr
}

// NewEWITable returns an empty table.
func NewEWITable() *EWITable {
	return &EWITable{last: make(map[mem.NodeID]mem.BlockAddr)}
}

// Update records that writer issued a write/upgrade for addr. It returns
// the previously recorded block for writer and reports whether that block
// exists and differs from addr — i.e., whether SWI should be considered
// for it.
func (t *EWITable) Update(writer mem.NodeID, addr mem.BlockAddr) (prev mem.BlockAddr, swiCandidate bool) {
	prev, ok := t.last[writer]
	t.last[writer] = addr
	if !ok || prev == addr {
		return 0, false
	}
	return prev, true
}

// Last returns the most recent write block recorded for writer.
func (t *EWITable) Last(writer mem.NodeID) (mem.BlockAddr, bool) {
	addr, ok := t.last[writer]
	return addr, ok
}

// Reset clears the table, retaining its storage.
func (t *EWITable) Reset() {
	clear(t.last)
}
