package core

import "specdsm/internal/mem"

// EWITable is the early-write-invalidate table of §4.1: per processor, the
// block address of its most recent write (or upgrade) request seen at this
// home node. A write by processor P to block B predicts that P is done
// writing its previously recorded block B' (if different), making B' a
// candidate for Speculative Write-Invalidation.
type EWITable struct {
	last map[mem.NodeID]mem.BlockAddr
	has  map[mem.NodeID]bool
}

// NewEWITable returns an empty table.
func NewEWITable() *EWITable {
	return &EWITable{
		last: make(map[mem.NodeID]mem.BlockAddr),
		has:  make(map[mem.NodeID]bool),
	}
}

// Update records that writer issued a write/upgrade for addr. It returns
// the previously recorded block for writer and reports whether that block
// exists and differs from addr — i.e., whether SWI should be considered
// for it.
func (t *EWITable) Update(writer mem.NodeID, addr mem.BlockAddr) (prev mem.BlockAddr, swiCandidate bool) {
	prev, ok := t.last[writer]
	t.last[writer] = addr
	t.has[writer] = true
	if !ok || prev == addr {
		return 0, false
	}
	return prev, true
}

// Last returns the most recent write block recorded for writer.
func (t *EWITable) Last(writer mem.NodeID) (mem.BlockAddr, bool) {
	if !t.has[writer] {
		return 0, false
	}
	return t.last[writer], true
}

// Reset clears the table.
func (t *EWITable) Reset() {
	t.last = make(map[mem.NodeID]mem.BlockAddr)
	t.has = make(map[mem.NodeID]bool)
}
