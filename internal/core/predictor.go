package core

import "specdsm/internal/mem"

// Outcome reports how a predictor scored one observed message.
type Outcome struct {
	// Tracked is false when the predictor ignores this message type
	// (e.g., MSP/VMSP ignore acknowledgements).
	Tracked bool
	// Predicted is true when the pattern table held a prediction for the
	// history at the time the message arrived.
	Predicted bool
	// Correct is true when that prediction matched the message.
	Correct bool
}

// Stats accumulates the accuracy/coverage counters reported in Figure 7,
// Figure 8, and Table 3 of the paper.
type Stats struct {
	// Tracked counts observed messages of tracked types.
	Tracked uint64
	// Predicted counts messages for which a prediction was issued.
	Predicted uint64
	// Correct counts correctly predicted messages.
	Correct uint64
}

// Accuracy is Correct/Predicted (Figure 7): the fraction of issued
// predictions that were right. Returns 0 when no predictions were issued.
func (s Stats) Accuracy() float64 {
	if s.Predicted == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Predicted)
}

// Coverage is Predicted/Tracked (Table 3): the fraction of tracked
// messages for which the predictor had learned a pattern.
func (s Stats) Coverage() float64 {
	if s.Tracked == 0 {
		return 0
	}
	return float64(s.Predicted) / float64(s.Tracked)
}

// CorrectFraction is Correct/Tracked (the parenthesized product column of
// Table 3): the overall fraction of messages predicted correctly.
func (s Stats) CorrectFraction() float64 {
	if s.Tracked == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Tracked)
}

func (s *Stats) add(o Outcome) {
	if !o.Tracked {
		return
	}
	s.Tracked++
	if o.Predicted {
		s.Predicted++
	}
	if o.Correct {
		s.Correct++
	}
}

// Census reports pattern-table occupancy for Table 4.
type Census struct {
	// Blocks counts allocated blocks (blocks that observed at least one
	// tracked message).
	Blocks int
	// Entries counts pattern-table entries across all blocks.
	Entries int
	// HistoryDepth is the predictor's configured depth.
	HistoryDepth int
}

// EntriesPerBlock is the average number of pattern-table entries per
// allocated block (the "pte" columns of Table 4).
func (c Census) EntriesPerBlock() float64 {
	if c.Blocks == 0 {
		return 0
	}
	return float64(c.Entries) / float64(c.Blocks)
}

// Predictor is the interface shared by Cosmos, MSP, and VMSP.
type Predictor interface {
	// Name returns "Cosmos", "MSP", or "VMSP".
	Name() string
	// HistoryDepth returns the configured history depth d.
	HistoryDepth() int
	// Observe feeds one directory-incoming message for block addr and
	// returns the scoring outcome. Observe must be called in message
	// arrival order.
	Observe(addr mem.BlockAddr, obs Observation) Outcome
	// Stats returns the accumulated accuracy counters.
	Stats() Stats
	// Census returns pattern-table occupancy for storage accounting.
	Census() Census
	// PredictReaders returns the set of nodes predicted to read block addr
	// next, given the block's current history, together with a handle for
	// verification feedback. ok is false when no read prediction exists.
	PredictReaders(addr mem.BlockAddr) (ReadPrediction, bool)
	// PredictNext returns the predicted next symbol for the block's
	// current history, if any.
	PredictNext(addr mem.BlockAddr) (Symbol, bool)
	// PredictsUpgradeBy reports whether, assuming reader joins the current
	// read run, the predicted next symbol is a write/upgrade by that same
	// reader — the migratory-sharing signature used by the speculative
	// upgrade extension.
	PredictsUpgradeBy(addr mem.BlockAddr, reader mem.NodeID) bool
	// SWIAllowed reports whether speculative write-invalidation is
	// permitted for the block's most recent write pattern (its premature
	// bit is clear). Blocks with no recorded write pattern allow SWI.
	SWIAllowed(addr mem.BlockAddr) bool
	// SWIGuard returns a handle on the pattern entry that recorded the
	// block's most recent write/upgrade. The speculation hardware captures
	// the guard when it fires SWI and marks it premature if the producer
	// turns out not to have been done with the block (§4.1). The guard
	// stays bound to the entry even if the block's history advances.
	SWIGuard(addr mem.BlockAddr) SWIGuard
	// AssumeReaders tells the predictor that the speculation hardware has
	// forwarded read-only copies to vec, so the block's history should
	// evolve as if those reads had arrived (they never will as request
	// messages — that is the point of speculation). Without this, the
	// next write would overwrite the learned read pattern.
	AssumeReaders(addr mem.BlockAddr, vec mem.ReaderVec)
	// RetractReader undoes AssumeReaders for one node after verification
	// reports the speculative copy was never referenced.
	RetractReader(addr mem.BlockAddr, n mem.NodeID)
	// Reset clears all tables and counters.
	Reset()
}

// SWIGuard is a stable handle on the pattern-table entry carrying the SWI
// premature bit for one write pattern. The zero value is a no-op guard
// that always allows SWI. Guards reference entries by index, so they stay
// valid as the entry store grows; a guard issued before a Reset carries a
// stale generation and degrades to the no-op zero-value behaviour.
type SWIGuard struct {
	store *entryStore
	idx   int32
	gen   uint32
}

// live reports whether the guard still points into the current table
// generation.
func (g SWIGuard) live() bool { return g.store != nil && g.gen == g.store.gen }

// Allowed reports whether SWI may fire for this pattern.
func (g SWIGuard) Allowed() bool {
	return !g.live() || g.store.hot[g.idx].meta&metaNoSWI == 0
}

// MarkPremature sets the premature bit, permanently suppressing SWI for
// this pattern.
func (g SWIGuard) MarkPremature() {
	if g.live() {
		g.store.hot[g.idx].meta |= metaNoSWI
	}
}

// readPredPrefix is the inline entry capacity of a ReadPrediction. A
// VMSP prediction holds exactly one entry and an MSP/Cosmos chain one
// entry per chained reader, so the common cases fit the prefix and
// PredictReaders allocates nothing; only chains deeper than the prefix
// spill into the overflow slice.
const readPredPrefix = 4

// ReadPrediction is a predicted upcoming reader set plus the pattern-table
// entries that produced it, so that misspeculation verification can prune
// readers that never referenced a speculatively forwarded block. Like
// SWIGuard, it holds entry indices; Prune on a prediction issued before a
// Reset is a no-op. The first readPredPrefix indices live inline in the
// value itself (no heap allocation); longer chains append the remainder
// to the overflow slice.
type ReadPrediction struct {
	Readers  mem.ReaderVec
	store    *entryStore
	gen      uint32
	n        int32
	prefix   [readPredPrefix]int32
	overflow []int32
}

// addEntry records one more pattern-table index behind the prediction.
func (rp *ReadPrediction) addEntry(idx int32) {
	if int(rp.n) < len(rp.prefix) {
		rp.prefix[rp.n] = idx
	} else {
		rp.overflow = append(rp.overflow, idx)
	}
	rp.n++
}

// entryAt returns the i-th recorded index (0 ≤ i < rp.n).
func (rp *ReadPrediction) entryAt(i int32) int32 {
	if int(i) < len(rp.prefix) {
		return rp.prefix[i]
	}
	return rp.overflow[int(i)-len(rp.prefix)]
}

// Prune removes node n from the pattern entries behind this prediction.
// It implements the paper's "removes mispredicted request sequences from
// the pattern tables" on negative verification feedback.
func (rp ReadPrediction) Prune(n mem.NodeID) {
	if rp.store == nil || rp.gen != rp.store.gen {
		return
	}
	s := rp.store
	for i := int32(0); i < rp.n; i++ {
		idx := rp.entryAt(i)
		tn := s.hot[idx].tn
		if tnType(tn) != MsgRead {
			continue
		}
		if vec := s.vecAt(s.hot[idx].vec); !vec.Empty() {
			vec = vec.Without(n)
			if vec.Empty() {
				s.clearPred(idx)
			} else {
				s.hot[idx].vec = s.vecID(vec)
			}
		} else if tnNode(tn) == n {
			s.clearPred(idx)
		}
	}
}
