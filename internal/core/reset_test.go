package core

import (
	"fmt"
	"testing"

	"specdsm/internal/mem"
)

// resetWorkload is a message stream mixing the behaviours the tables must
// retain across Reset: plain producer/consumer cycles, read re-ordering,
// migratory write chains, untracked acks, and multiple blocks.
func resetWorkload() []struct {
	addr mem.BlockAddr
	obs  Observation
} {
	a := mem.MakeAddr(0, 0x10)
	b := mem.MakeAddr(1, 0x20)
	var seq []struct {
		addr mem.BlockAddr
		obs  Observation
	}
	add := func(addr mem.BlockAddr, o Observation) {
		seq = append(seq, struct {
			addr mem.BlockAddr
			obs  Observation
		}{addr, o})
	}
	for i := 0; i < 6; i++ {
		add(a, obs(MsgUpgrade, 3))
		add(a, obs(MsgAckInv, 1))
		if i%2 == 0 {
			add(a, obs(MsgRead, 1))
			add(a, obs(MsgRead, 2))
		} else {
			add(a, obs(MsgRead, 2))
			add(a, obs(MsgRead, 1))
		}
		n := mem.NodeID(1 + i%2)
		add(b, obs(MsgRead, n))
		add(b, obs(MsgWrite, n))
	}
	return seq
}

// snapshot captures every externally observable surface of a predictor.
func snapshot(p *TwoLevel) string {
	a := mem.MakeAddr(0, 0x10)
	b := mem.MakeAddr(1, 0x20)
	s := fmt.Sprintf("stats=%+v census=%+v", p.Stats(), p.Census())
	for _, addr := range []mem.BlockAddr{a, b} {
		sym, ok := p.PredictNext(addr)
		s += fmt.Sprintf(" next(%v)=%v,%v", addr, sym, ok)
		rp, ok := p.PredictReaders(addr)
		s += fmt.Sprintf(" readers(%v)=%v,%v", addr, rp.Readers, ok)
		s += fmt.Sprintf(" swi(%v)=%v", addr, p.SWIAllowed(addr))
		s += fmt.Sprintf(" upg(%v)=%v", addr, p.PredictsUpgradeBy(addr, 1))
	}
	return s
}

// TestResetThenReuseEquivalentToFresh pins the Reset contract the
// table-reuse optimization must uphold: a predictor that has been used
// and Reset must behave observably identically to a freshly constructed
// one — same per-message outcomes, stats, census, and speculation
// surfaces.
func TestResetThenReuseEquivalentToFresh(t *testing.T) {
	for _, kind := range []Kind{KindCosmos, KindMSP, KindVMSP} {
		for _, depth := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%v/d%d", kind, depth), func(t *testing.T) {
				fresh := New(kind, depth)
				reused := New(kind, depth)
				// Dirty the reused predictor with a different stream, then
				// Reset it.
				for i := 0; i < 40; i++ {
					reused.Observe(mem.MakeAddr(2, uint64(i%5)),
						obs(MsgWrite, mem.NodeID(i%7)))
					reused.Observe(mem.MakeAddr(2, uint64(i%5)),
						obs(MsgRead, mem.NodeID((i+1)%7)))
				}
				reused.Reset()
				if s := reused.Stats(); s != (Stats{}) {
					t.Fatalf("stats survive Reset: %+v", s)
				}
				if c := reused.Census(); c.Blocks != 0 || c.Entries != 0 {
					t.Fatalf("census survives Reset: %+v", c)
				}

				for i, m := range resetWorkload() {
					of := fresh.Observe(m.addr, m.obs)
					or := reused.Observe(m.addr, m.obs)
					if of != or {
						t.Fatalf("message %d: fresh %+v vs reset-reused %+v", i, of, or)
					}
				}
				if a, b := snapshot(fresh), snapshot(reused); a != b {
					t.Fatalf("surfaces diverged:\nfresh:  %s\nreused: %s", a, b)
				}
			})
		}
	}
}

// TestStaleHandlesAfterResetAreNoOps pins the fail-safe contract of the
// index-based handles: a SWIGuard or ReadPrediction captured before a
// Reset must neither panic nor mutate the reused tables — it degrades to
// the zero-value no-op, like the orphaned-entry writes of the old
// pointer-based design.
func TestStaleHandlesAfterResetAreNoOps(t *testing.T) {
	p := NewVMSP(1)
	feed(p, producerConsumerIter()...)
	feed(p, producerConsumerIter()...)
	feed(p, obs(MsgUpgrade, 3))
	guard := p.SWIGuard(blk)
	rp, ok := p.PredictReaders(blk)
	if !ok {
		t.Fatal("no prediction before Reset")
	}

	p.Reset()
	feed(p, producerConsumerIter()...)
	feed(p, producerConsumerIter()...)
	feed(p, obs(MsgUpgrade, 3))

	// Stale handles must be inert against the re-learned tables.
	guard.MarkPremature()
	rp.Prune(1)
	rp.Prune(2)
	if !guard.Allowed() {
		t.Error("stale guard must report Allowed (no-op zero-value behaviour)")
	}
	if !p.SWIAllowed(blk) {
		t.Error("stale MarkPremature leaked into the re-learned write pattern")
	}
	rp2, ok := p.PredictReaders(blk)
	if !ok || !rp2.Readers.Equal(mem.VecOf(1, 2)) {
		t.Errorf("stale Prune leaked into re-learned prediction: %v ok=%v", rp2.Readers, ok)
	}
}

// TestResetReusesStorage verifies the point of the exercise: a second run
// over the same working set allocates (almost) nothing, because Reset
// retains map buckets and slice capacity.
func TestResetReusesStorage(t *testing.T) {
	p := NewVMSP(2)
	seq := resetWorkload()
	work := func() {
		for _, m := range seq {
			p.Observe(m.addr, m.obs)
		}
	}
	work()
	avg := testing.AllocsPerRun(50, func() {
		p.Reset()
		work()
	})
	// A fresh predictor pays hundreds of allocations for this workload;
	// reset-reuse steady state must pay none.
	if avg != 0 {
		t.Errorf("reset-then-rerun allocates %.2f/run, want 0", avg)
	}
}
