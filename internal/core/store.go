package core

import "specdsm/internal/mem"

// Structure-of-arrays pattern-entry storage.
//
// A pattern entry used to be a 40-byte struct (predicted Symbol, 2-bit
// confidence, SWI premature bit, uses/hits instrumentation) behind a Go
// map with 48-byte keys. The hot surfaces — Observe's score-and-learn,
// PredictReaders, PredictNext — read only the predicted symbol and the
// confidence bits, so the store splits each entry across parallel arrays
// keyed by one int32 index:
//
//   - hot:  the predicted symbol (vec holds the reader vector, tn the
//     packed (type, node) pair — a zero low byte means MsgInvalid, i.e.
//     "no prediction") plus the meta byte (2-bit confidence counter and
//     the SWI premature bit). 16 bytes — everything a score, predict, or
//     confidence update touches, in one cache-line-friendly record.
//   - keys: the (addr, packed history) identity of the entry, read only
//     to confirm a probe match.
//   - stats: uses/hits instrumentation (learning-speed analysis), off
//     every predict path. It is write-hot on Observe but never read
//     there, so keeping it out of keys preserves the probe path's
//     read-only cache lines.
//
// The fast path therefore drags 16 hot bytes per entry through the cache
// instead of the whole record. Indices are stable across growth
// (append-only slices), which is what SWIGuard and ReadPrediction
// handles rely on; gen counts Resets so stale handles degrade to no-ops.
type entryStore struct {
	keys  []patternKey
	hot   []entryHot
	stats []entryStats
	gen   uint32
}

// entryHot packs the per-entry words every scoring/predict path reads.
type entryHot struct {
	vec  uint64
	tn   uint16
	meta uint8
}

// entryStats instruments per-entry reuse; nothing on a predict or score
// path reads it, so it lives in its own cold array.
type entryStats struct {
	uses uint64
	hits uint64
}

// meta byte layout: bits 0-1 hold the saturating confidence counter,
// bit 2 the SWI premature ("noSWI") bit.
const (
	metaConfMask = 0b11
	metaNoSWI    = 1 << 2
)

// confMax saturates the 2-bit confidence counter.
const confMax = 3

// alloc appends a new entry predicting sym for key and returns its index.
func (s *entryStore) alloc(key patternKey, sym Symbol) int32 {
	s.keys = append(s.keys, key)
	s.hot = append(s.hot, entryHot{tn: sym.pack(), vec: uint64(sym.Vec)})
	s.stats = append(s.stats, entryStats{})
	return int32(len(s.keys) - 1)
}

// len returns the number of live entries.
func (s *entryStore) len() int { return len(s.keys) }

// pred reconstructs entry i's predicted symbol.
func (s *entryStore) pred(i int32) Symbol {
	h := &s.hot[i]
	return Symbol{
		Type: MsgType(h.tn & 0xff),
		Node: mem.NodeID(h.tn >> 8),
		Vec:  mem.ReaderVec(h.vec),
	}
}

// setPred replaces entry i's predicted symbol.
func (s *entryStore) setPred(i int32, sym Symbol) {
	s.hot[i].tn = sym.pack()
	s.hot[i].vec = uint64(sym.Vec)
}

// predValid reports whether entry i holds a real prediction (the packed
// type byte is non-zero exactly when Type != MsgInvalid).
func (s *entryStore) predValid(i int32) bool { return s.hot[i].tn&0xff != 0 }

// conf returns entry i's confidence counter.
func (s *entryStore) conf(i int32) uint8 { return s.hot[i].meta & metaConfMask }

func (s *entryStore) confUp(i int32) {
	if c := s.hot[i].meta & metaConfMask; c < confMax {
		s.hot[i].meta++
	}
}

func (s *entryStore) confDown(i int32) {
	if s.hot[i].meta&metaConfMask > 0 {
		s.hot[i].meta--
	}
}

// reset clears all entries, retaining the array storage, and bumps the
// generation so outstanding handles turn into no-ops.
func (s *entryStore) reset() {
	s.keys = s.keys[:0]
	s.hot = s.hot[:0]
	s.stats = s.stats[:0]
	s.gen++
}

// patTable is the open-addressed (addr, history) → entry-index table that
// replaced the predictor-wide Go map. Entry keys live in the store's keys
// array; each occupied slot packs an 8-bit hash tag over the entry index
// + 1 (0 meaning empty), so a probe walks a dense uint32 slot array,
// rejects ~255/256 of colliding slots on the tag byte alone, and touches
// one 48-byte key for the final confirm — no per-lookup hashing of the
// key through the runtime map machinery, and almost never more than one
// full-key comparison. The table is insert-only (patterns are never
// unlearned; Prune only clears an entry's prediction in place), which is
// what makes linear probing with clear-but-retain reset safe, mirroring
// mem.BlockMap's discipline at the block level.
type patTable struct {
	slots []uint32
	n     int
	// vecKeys selects whether the hash mixes the per-slot reader-vector
	// words. Only VMSP read-run symbols set them (see the patKey
	// commentary); for Cosmos/MSP they are always zero, so hashing
	// addr+tn alone is a complete discriminator at half the cost. The
	// slot layout is internal to the table, so the hash choice cannot
	// affect any observable result.
	vecKeys bool
}

// Slot layout: bits 0-23 hold entry index + 1, bits 24-31 the hash tag.
const (
	patIdxMask  = 1<<24 - 1
	patTagShift = 24
)

// patTableInitial is the slot count allocated on first insert, sized so a
// typical per-node working set (see New's pre-sizing) never rehashes.
const patTableInitial = 512

// hash mixes the key's words into one well-spread value with
// multiply-xorshift rounds (splitmix64's building block) rather than a
// sum: histories differ in few bits — often one symbol slot.
func (t *patTable) hash(pk *patternKey) uint64 {
	h := uint64(pk.addr) ^ 0x9e3779b97f4a7c15
	h = (h ^ pk.key.tn) * 0xbf58476d1ce4e5b9
	h ^= h >> 29
	if t.vecKeys {
		h = (h ^ pk.key.vec[0]) * 0x94d049bb133111eb
		h ^= h >> 32
		h = (h ^ pk.key.vec[1]) * 0xff51afd7ed558ccd
		h ^= h >> 29
		h = (h ^ pk.key.vec[2]) * 0xc4ceb9fe1a85ec53
		h ^= h >> 32
	}
	h = (h ^ h>>31) * 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return h
}

// lookup returns the index of pk's entry in store, if present.
func (t *patTable) lookup(store *entryStore, pk patternKey) (int32, bool) {
	if len(t.slots) == 0 {
		return 0, false
	}
	h := t.hash(&pk)
	want := uint32(h>>56) << patTagShift
	mask := uint64(len(t.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := t.slots[i]
		if s == 0 {
			return 0, false
		}
		if s&^uint32(patIdxMask) == want {
			if idx := int32(s&patIdxMask) - 1; store.keys[idx] == pk {
				return idx, true
			}
		}
	}
}

// insert maps pk (already allocated in store at idx) into the table.
// Callers must have checked pk is absent; duplicates would shadow.
func (t *patTable) insert(store *entryStore, pk patternKey, idx int32) {
	if idx >= patIdxMask {
		panic("core: pattern table exceeds 2^24-1 entries")
	}
	if len(t.slots)*3 < (t.n+1)*4 { // grow beyond 3/4 load
		t.grow(store)
	}
	h := t.hash(&pk)
	mask := uint64(len(t.slots) - 1)
	i := h & mask
	for t.slots[i] != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = uint32(h>>56)<<patTagShift | uint32(idx+1)
	t.n++
}

// grow doubles the slot array (or allocates the initial one) and
// reinserts every entry. Entry indices are values, so rehashing moves
// nothing a handle can observe.
func (t *patTable) grow(store *entryStore) {
	newLen := patTableInitial
	if len(t.slots) > 0 {
		newLen = len(t.slots) * 2
	}
	t.slots = make([]uint32, newLen)
	mask := uint64(newLen - 1)
	for idx := range store.keys {
		h := t.hash(&store.keys[idx])
		i := h & mask
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = uint32(h>>56)<<patTagShift | uint32(idx+1)
	}
}

// reset empties the table, retaining its slot storage.
func (t *patTable) reset() {
	clear(t.slots)
	t.n = 0
}
