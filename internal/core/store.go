package core

import "specdsm/internal/mem"

// Structure-of-arrays pattern-entry storage.
//
// A pattern entry used to be a 40-byte struct (predicted Symbol, 2-bit
// confidence, SWI premature bit, uses/hits instrumentation) behind a Go
// map with 48-byte keys. The hot surfaces — Observe's score-and-learn,
// PredictReaders, PredictNext — read only the predicted symbol and the
// confidence bits, so the store splits each entry across parallel arrays
// keyed by one int32 index:
//
//   - hot:  the predicted symbol (vec holds the reader vector, tn the
//     packed (type, node) pair — a zero low byte means MsgInvalid, i.e.
//     "no prediction") plus the meta byte (2-bit confidence counter and
//     the SWI premature bit). 16 bytes — everything a score, predict, or
//     confidence update touches, in one cache-line-friendly record.
//   - keys: the (addr, packed history) identity of the entry, read only
//     to confirm a probe match.
//   - stats: uses/hits instrumentation (learning-speed analysis), off
//     every predict path. It is write-hot on Observe but never read
//     there, so keeping it out of keys preserves the probe path's
//     read-only cache lines.
//
// The fast path therefore drags 16 hot bytes per entry through the cache
// instead of the whole record. Indices are stable across growth
// (append-only slices), which is what SWIGuard and ReadPrediction
// handles rely on; gen counts Resets so stale handles degrade to no-ops.
type entryStore struct {
	keys  []patternKey
	hot   []entryHot
	stats []entryStats
	gen   uint32
	// vecs is the reader-vector interner, non-nil only on wide predictors
	// (machines with more than mem.InlineNodes nodes). Narrow predictors
	// store the vector's inline word directly in entryHot.vec/patKey.vec —
	// today's exact layout — while wide predictors store a dense intern id
	// there (see vecID).
	vecs *vecIntern
}

// vecID packs a reader vector into the uint64 an entry/key slot holds:
// the raw inline word on narrow predictors, a content-interned id on wide
// ones. Either way the packing is a bijection of the vector value, which
// is what keeps packed-word equality equivalent to set equality.
func (s *entryStore) vecID(v mem.ReaderVec) uint64 {
	if s.vecs == nil {
		return v.LowWord()
	}
	return s.vecs.id(v)
}

// vecIDIfPresent is vecID for predict-only paths: it reports ok = false
// instead of interning a never-seen wide vector (no table entry can pack a
// vector that was never learned, so the lookup it feeds must miss anyway).
func (s *entryStore) vecIDIfPresent(v mem.ReaderVec) (uint64, bool) {
	if s.vecs == nil {
		return v.LowWord(), true
	}
	return s.vecs.lookup(v)
}

// vecAt is the inverse of vecID.
func (s *entryStore) vecAt(id uint64) mem.ReaderVec {
	if s.vecs == nil {
		return mem.VecFromLow(id)
	}
	return s.vecs.at(id)
}

// entryHot packs the per-entry words every scoring/predict path reads.
type entryHot struct {
	vec  uint64
	tn   uint16
	meta uint8
}

// entryStats instruments per-entry reuse; nothing on a predict or score
// path reads it, so it lives in its own cold array.
type entryStats struct {
	uses uint64
	hits uint64
}

// meta byte layout: bits 0-1 hold the saturating confidence counter,
// bit 2 the SWI premature ("noSWI") bit.
const (
	metaConfMask = 0b11
	metaNoSWI    = 1 << 2
)

// confMax saturates the 2-bit confidence counter.
const confMax = 3

// alloc appends a new entry predicting (tn, vid) for key and returns its
// index. tn/vid are the pack()/vecID packings of the predicted symbol.
func (s *entryStore) alloc(key patternKey, tn uint16, vid uint64) int32 {
	s.keys = append(s.keys, key)
	s.hot = append(s.hot, entryHot{tn: tn, vec: vid})
	s.stats = append(s.stats, entryStats{})
	return int32(len(s.keys) - 1)
}

// len returns the number of live entries.
func (s *entryStore) len() int { return len(s.keys) }

// pred reconstructs entry i's predicted symbol.
func (s *entryStore) pred(i int32) Symbol {
	h := &s.hot[i]
	return Symbol{
		Type: tnType(h.tn),
		Node: tnNode(h.tn),
		Vec:  s.vecAt(h.vec),
	}
}

// setPred replaces entry i's predicted symbol with the packed (tn, vid).
func (s *entryStore) setPred(i int32, tn uint16, vid uint64) {
	s.hot[i].tn = tn
	s.hot[i].vec = vid
}

// clearPred erases entry i's prediction (MsgInvalid, empty vector).
func (s *entryStore) clearPred(i int32) {
	s.hot[i].tn = 0
	s.hot[i].vec = 0
}

// predValid reports whether entry i holds a real prediction (the packed
// type bits are non-zero exactly when Type != MsgInvalid).
func (s *entryStore) predValid(i int32) bool { return s.hot[i].tn&symTypeMask != 0 }

// conf returns entry i's confidence counter.
func (s *entryStore) conf(i int32) uint8 { return s.hot[i].meta & metaConfMask }

func (s *entryStore) confUp(i int32) {
	if c := s.hot[i].meta & metaConfMask; c < confMax {
		s.hot[i].meta++
	}
}

func (s *entryStore) confDown(i int32) {
	if s.hot[i].meta&metaConfMask > 0 {
		s.hot[i].meta--
	}
}

// reset clears all entries, retaining the array storage, and bumps the
// generation so outstanding handles turn into no-ops.
func (s *entryStore) reset() {
	s.keys = s.keys[:0]
	s.hot = s.hot[:0]
	s.stats = s.stats[:0]
	s.gen++
	if s.vecs != nil {
		s.vecs.reset()
	}
}

// vecIntern assigns dense ids to distinct wide reader vectors so that
// pattern keys and entries can keep holding one comparable uint64 per
// vector slot at any machine width. Ids are issued in first-seen order by
// a single-threaded predictor, so they are deterministic for a given
// observation sequence; id 0 is reserved for the empty vector. Interned
// vectors are immutable (ReaderVec mutations copy-on-write), so at() can
// hand them out without cloning. The table is an open-addressed
// content-hash index over the dense vecs slice, reset clear-but-retain
// like patTable.
type vecIntern struct {
	slots []int32 // dense index + 1; 0 = empty slot
	vecs  []mem.ReaderVec
}

// lookup returns the id for v if it was interned before.
func (t *vecIntern) lookup(v mem.ReaderVec) (uint64, bool) {
	if v.Empty() {
		return 0, true
	}
	if len(t.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(t.slots) - 1)
	for i := v.Hash() & mask; ; i = (i + 1) & mask {
		s := t.slots[i]
		if s == 0 {
			return 0, false
		}
		if t.vecs[s-1].Equal(v) {
			return uint64(s), true
		}
	}
}

// id returns the id for v, interning it on first sight.
func (t *vecIntern) id(v mem.ReaderVec) uint64 {
	if id, ok := t.lookup(v); ok {
		return id
	}
	if len(t.slots)*3 < (len(t.vecs)+1)*4 { // grow beyond 3/4 load
		t.grow()
	}
	t.vecs = append(t.vecs, v)
	id := int32(len(t.vecs))
	mask := uint64(len(t.slots) - 1)
	i := v.Hash() & mask
	for t.slots[i] != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = id
	return uint64(id)
}

// at returns the vector for id (the inverse of id).
func (t *vecIntern) at(id uint64) mem.ReaderVec {
	if id == 0 {
		return mem.ReaderVec{}
	}
	return t.vecs[id-1]
}

// grow doubles the slot array (or allocates the initial one) and
// reinserts every interned vector; ids are dense indices, so nothing an
// entry holds moves.
func (t *vecIntern) grow() {
	newLen := 64
	if len(t.slots) > 0 {
		newLen = len(t.slots) * 2
	}
	t.slots = make([]int32, newLen)
	mask := uint64(newLen - 1)
	for idx := range t.vecs {
		i := t.vecs[idx].Hash() & mask
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = int32(idx + 1)
	}
}

// reset empties the interner, retaining its storage.
func (t *vecIntern) reset() {
	clear(t.slots)
	t.vecs = t.vecs[:0]
}

// patTable is the open-addressed (addr, history) → entry-index table that
// replaced the predictor-wide Go map. Entry keys live in the store's keys
// array; each occupied slot packs an 8-bit hash tag over the entry index
// + 1 (0 meaning empty), so a probe walks a dense uint32 slot array,
// rejects ~255/256 of colliding slots on the tag byte alone, and touches
// one 48-byte key for the final confirm — no per-lookup hashing of the
// key through the runtime map machinery, and almost never more than one
// full-key comparison. The table is insert-only (patterns are never
// unlearned; Prune only clears an entry's prediction in place), which is
// what makes linear probing with clear-but-retain reset safe, mirroring
// mem.BlockMap's discipline at the block level.
type patTable struct {
	slots []uint32
	n     int
	// vecKeys selects whether the hash mixes the per-slot reader-vector
	// words. Only VMSP read-run symbols set them (see the patKey
	// commentary); for Cosmos/MSP they are always zero, so hashing
	// addr+tn alone is a complete discriminator at half the cost. The
	// slot layout is internal to the table, so the hash choice cannot
	// affect any observable result.
	vecKeys bool
}

// Slot layout: bits 0-23 hold entry index + 1, bits 24-31 the hash tag.
const (
	patIdxMask  = 1<<24 - 1
	patTagShift = 24
)

// patTableInitial is the slot count allocated on first insert, sized so a
// typical per-node working set (see New's pre-sizing) never rehashes.
const patTableInitial = 512

// hash mixes the key's words into one well-spread value with
// multiply-xorshift rounds (splitmix64's building block) rather than a
// sum: histories differ in few bits — often one symbol slot.
func (t *patTable) hash(pk *patternKey) uint64 {
	h := uint64(pk.addr) ^ 0x9e3779b97f4a7c15
	h = (h ^ pk.key.tn) * 0xbf58476d1ce4e5b9
	h ^= h >> 29
	if t.vecKeys {
		h = (h ^ pk.key.vec[0]) * 0x94d049bb133111eb
		h ^= h >> 32
		h = (h ^ pk.key.vec[1]) * 0xff51afd7ed558ccd
		h ^= h >> 29
		h = (h ^ pk.key.vec[2]) * 0xc4ceb9fe1a85ec53
		h ^= h >> 32
	}
	h = (h ^ h>>31) * 0xbf58476d1ce4e5b9
	h ^= h >> 31
	return h
}

// lookup returns the index of pk's entry in store, if present.
func (t *patTable) lookup(store *entryStore, pk patternKey) (int32, bool) {
	if len(t.slots) == 0 {
		return 0, false
	}
	h := t.hash(&pk)
	want := uint32(h>>56) << patTagShift
	mask := uint64(len(t.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := t.slots[i]
		if s == 0 {
			return 0, false
		}
		if s&^uint32(patIdxMask) == want {
			if idx := int32(s&patIdxMask) - 1; store.keys[idx] == pk {
				return idx, true
			}
		}
	}
}

// insert maps pk (already allocated in store at idx) into the table.
// Callers must have checked pk is absent; duplicates would shadow.
func (t *patTable) insert(store *entryStore, pk patternKey, idx int32) {
	if idx >= patIdxMask {
		panic("core: pattern table exceeds 2^24-1 entries")
	}
	if len(t.slots)*3 < (t.n+1)*4 { // grow beyond 3/4 load
		t.grow(store)
	}
	h := t.hash(&pk)
	mask := uint64(len(t.slots) - 1)
	i := h & mask
	for t.slots[i] != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = uint32(h>>56)<<patTagShift | uint32(idx+1)
	t.n++
}

// grow doubles the slot array (or allocates the initial one) and
// reinserts every entry. Entry indices are values, so rehashing moves
// nothing a handle can observe.
func (t *patTable) grow(store *entryStore) {
	newLen := patTableInitial
	if len(t.slots) > 0 {
		newLen = len(t.slots) * 2
	}
	t.slots = make([]uint32, newLen)
	mask := uint64(newLen - 1)
	for idx := range store.keys {
		h := t.hash(&store.keys[idx])
		i := h & mask
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = uint32(h>>56)<<patTagShift | uint32(idx+1)
	}
}

// reset empties the table, retaining its slot storage.
func (t *patTable) reset() {
	clear(t.slots)
	t.n = 0
}
