package core

import (
	"fmt"

	"specdsm/internal/mem"
)

// MsgType enumerates the directory-incoming coherence message types that
// predictors may observe. Requests (Read/Write/Upgrade) are tracked by all
// predictors; acknowledgement types (AckInv, Writeback) only by Cosmos.
type MsgType uint8

const (
	// MsgInvalid marks an empty/cleared symbol slot.
	MsgInvalid MsgType = iota
	// MsgRead is a request for a read-only copy.
	MsgRead
	// MsgWrite is a request for a writable copy.
	MsgWrite
	// MsgUpgrade promotes a read-only copy to writable.
	MsgUpgrade
	// MsgAckInv is a sharer's response to a read-only invalidation.
	MsgAckInv
	// MsgWriteback is an owner's data response to a recall/invalidation.
	MsgWriteback
)

func (t MsgType) String() string {
	switch t {
	case MsgInvalid:
		return "-"
	case MsgRead:
		return "Read"
	case MsgWrite:
		return "Write"
	case MsgUpgrade:
		return "Upgrade"
	case MsgAckInv:
		return "ack"
	case MsgWriteback:
		return "writeback"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// IsRequest reports whether t is a memory request message.
func (t MsgType) IsRequest() bool {
	return t == MsgRead || t == MsgWrite || t == MsgUpgrade
}

// IsWriteLike reports whether t acquires write permission.
func (t MsgType) IsWriteLike() bool { return t == MsgWrite || t == MsgUpgrade }

// ReqMsgType converts a protocol request kind to the predictor alphabet.
func ReqMsgType(k mem.ReqKind) MsgType {
	switch k {
	case mem.ReqRead:
		return MsgRead
	case mem.ReqWrite:
		return MsgWrite
	case mem.ReqUpgrade:
		return MsgUpgrade
	default:
		panic(fmt.Sprintf("core: unknown request kind %v", k))
	}
}

// Observation is one incoming coherence message at the directory, as seen
// by a predictor.
type Observation struct {
	Type MsgType
	Node mem.NodeID
}

// Symbol is one element of a predictor's history/pattern alphabet. For
// Cosmos and MSP a symbol is a (type, node) pair. For VMSP a read run is a
// single symbol carrying the reader vector (Node is unused for vectors).
type Symbol struct {
	Type MsgType
	Node mem.NodeID
	Vec  mem.ReaderVec
}

// Equal reports exact symbol equality.
func (s Symbol) Equal(o Symbol) bool {
	return s.Type == o.Type && s.Node == o.Node && s.Vec.Equal(o.Vec)
}

// Valid reports whether the symbol holds a real observation.
func (s Symbol) Valid() bool { return s.Type != MsgInvalid }

func (s Symbol) String() string {
	if s.Type == MsgRead && !s.Vec.Empty() {
		return fmt.Sprintf("<Read,%v>", s.Vec)
	}
	return fmt.Sprintf("<%v,P%d>", s.Type, s.Node)
}

// Packed (type, node) layout for one 16-bit pattern-key slot: the message
// type in the low symTypeBits bits, the node id in the remaining 12 (wide
// enough for mem.MaxNodes-1). The reader vector is carried separately in
// the key (see patKey in twolevel.go).
const (
	symTypeBits = 4
	symTypeMask = 1<<symTypeBits - 1
)

// packTN encodes a (type, node) pair into one pattern-key slot.
func packTN(t MsgType, n mem.NodeID) uint16 {
	return uint16(t) | uint16(n)<<symTypeBits
}

// tnType extracts the message type from a packed slot.
func tnType(tn uint16) MsgType { return MsgType(tn & symTypeMask) }

// tnNode extracts the node id from a packed slot.
func tnNode(tn uint16) mem.NodeID { return mem.NodeID(tn >> symTypeBits) }

// pack encodes the symbol's (type, node) pair into one pattern-key slot.
func (s Symbol) pack() uint16 { return packTN(s.Type, s.Node) }
