package core

import (
	"fmt"

	"specdsm/internal/mem"
)

// Kind selects one of the three predictor variants.
type Kind uint8

const (
	// KindCosmos is the general message predictor baseline [17].
	KindCosmos Kind = iota
	// KindMSP is the request-only Memory Sharing Predictor (§3).
	KindMSP
	// KindVMSP is the Vector MSP with read-run folding (§3.1).
	KindVMSP
)

func (k Kind) String() string {
	switch k {
	case KindCosmos:
		return "Cosmos"
	case KindMSP:
		return "MSP"
	case KindVMSP:
		return "VMSP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// MaxDepth is the largest supported history depth. The paper evaluates
// depths 1, 2, and 4; the packed pattern-key encoding (see patKey) sizes
// its fixed slots for MaxDepth symbols.
const MaxDepth = 4

// Pattern-key encoding and determinism contract
//
// A pattern key packs up to MaxDepth history symbols into one fixed-size
// comparable value instead of a heap-allocated string:
//
//   - tn holds the packed (type, node) pair of slot i in bits
//     [16i, 16i+16) (see packTN in symbol.go);
//   - vec[i] holds slot i's reader vector, packed through entryStore.vecID
//     (the raw inline word on narrow machines, a dense intern id on wide
//     ones — either way a bijection of the vector value). Non-zero only
//     for VMSP read-run symbols.
//
// Slot 0 is the oldest symbol. Unused slots are zero; since every pushed
// symbol has Type != MsgInvalid (= 0), histories of different lengths can
// never collide, so no explicit length field is needed in the key. The
// encoding is a bijection of the symbol sequence, which is what keeps the
// optimization observably identical to the old string-keyed tables: the
// pattern tables hold exactly the same (history → prediction) pairs, so
// every Observe/Predict result — and therefore every simulated cycle
// count pinned by the golden tests — is unchanged.
//
// patKey is a value type: blockState maintains the current history key
// incrementally (push shifts in place), and chain expansion in
// PredictReaders works on a stack copy instead of cloning a blockState.
type patKey struct {
	tn  uint64
	vec [MaxDepth]uint64
}

// push appends a packed symbol (tn slot word, vecID-packed vector) to a
// history holding have symbols at the given depth, shifting out the
// oldest symbol when full. It returns the new symbol count.
func (k *patKey) push(tn uint16, vid uint64, have, depth int) int {
	if have == depth {
		k.tn >>= 16
		copy(k.vec[:depth-1], k.vec[1:depth])
		k.vec[depth-1] = 0
		have--
	}
	k.tn |= uint64(tn) << (16 * uint(have))
	k.vec[have] = vid
	return have + 1
}

// patternKey identifies one pattern-table entry: the block plus its
// packed history. Entries live in the structure-of-arrays entryStore and
// are indexed through the open-addressed patTable (see store.go); folding
// every block's patterns into one predictor-wide table is what lets Reset
// reuse all storage without per-block containers.
type patternKey struct {
	addr mem.BlockAddr
	key  patKey
}

// noEntry marks an empty entry reference (blockState.lastWrite).
const noEntry int32 = -1

// blockState holds the per-block history register.
type blockState struct {
	// key is the packed history, maintained incrementally by push.
	key patKey
	// n is the number of symbols currently in the history (≤ depth).
	n uint8
	// open is the read run accumulated since the last non-read symbol
	// (VMSP only).
	open mem.ReaderVec
	// lastWrite indexes the entry whose prediction recorded the block's
	// most recent write/upgrade; it carries the SWI premature bit.
	lastWrite int32
}

func (bs *blockState) push(tn uint16, vid uint64, depth int) {
	bs.n = uint8(bs.key.push(tn, vid, int(bs.n), depth))
}

// TwoLevel is the shared two-level adaptive predictor engine. It is
// configured as Cosmos, MSP, or VMSP via Kind; see New.
type TwoLevel struct {
	kind  Kind
	depth int
	// blocks maps a block to its index in blockStates; both containers
	// are retained (cleared, not reallocated) across Reset.
	blocks      mem.BlockMap
	blockStates []blockState
	// table is the single predictor-wide pattern table over store's
	// structure-of-arrays entries.
	table patTable
	store *entryStore
	stats Stats
	// maxChain bounds reader-chain expansion for non-vector predictors in
	// PredictReaders.
	maxChain int
	// confThreshold gates the speculation surfaces (PredictReaders,
	// PredictNext, PredictsUpgradeBy) on per-entry confidence; 0 disables
	// gating (the paper's behaviour). Accuracy scoring is unaffected.
	confThreshold uint8
}

// New constructs a predictor of the given kind with history depth d (the
// paper evaluates d = 1, 2, 4; at most MaxDepth is supported) for a
// machine of at most mem.InlineNodes nodes.
func New(kind Kind, depth int) *TwoLevel {
	return NewSized(kind, depth, mem.InlineNodes)
}

// NewSized is New for a machine of the given node count (≤ mem.MaxNodes).
// Predictors sized beyond mem.InlineNodes nodes intern reader vectors
// behind dense ids (see entryStore.vecID); narrow ones keep the exact
// single-word layout, so NewSized(k, d, n≤64) is observably identical to
// New(k, d).
func NewSized(kind Kind, depth, nodes int) *TwoLevel {
	if depth < 1 {
		panic(fmt.Sprintf("core: history depth %d < 1", depth))
	}
	if depth > MaxDepth {
		panic(fmt.Sprintf("core: history depth %d > MaxDepth %d", depth, MaxDepth))
	}
	if nodes < 1 || nodes > mem.MaxNodes {
		panic(fmt.Sprintf("core: node count %d out of range [1, %d]", nodes, mem.MaxNodes))
	}
	// The containers are pre-sized for a typical per-node working set so
	// that cold-path table growth costs a handful of allocations instead
	// of a full doubling chain per structure (sizing only; behaviour and
	// contents are unchanged).
	const presize = 256
	p := &TwoLevel{
		kind:        kind,
		depth:       depth,
		blockStates: make([]blockState, 0, 128),
		table:       patTable{vecKeys: kind == KindVMSP},
		store: &entryStore{
			keys:  make([]patternKey, 0, presize),
			hot:   make([]entryHot, 0, presize),
			stats: make([]entryStats, 0, presize),
		},
		maxChain: mem.InlineNodes,
	}
	if nodes > mem.InlineNodes {
		p.store.vecs = &vecIntern{}
		p.maxChain = nodes
	}
	return p
}

// NewCosmos returns the general message predictor baseline.
func NewCosmos(depth int) *TwoLevel { return New(KindCosmos, depth) }

// NewMSP returns the request-only Memory Sharing Predictor.
func NewMSP(depth int) *TwoLevel { return New(KindMSP, depth) }

// NewVMSP returns the Vector Memory Sharing Predictor.
func NewVMSP(depth int) *TwoLevel { return New(KindVMSP, depth) }

// SetConfidenceThreshold enables confidence gating of the speculation
// surfaces: only pattern entries whose 2-bit counter has reached n drive
// speculation. n is clamped to [0, 3]; 0 restores the paper's behaviour.
func (p *TwoLevel) SetConfidenceThreshold(n int) {
	switch {
	case n <= 0:
		p.confThreshold = 0
	case n > confMax:
		p.confThreshold = confMax
	default:
		p.confThreshold = uint8(n)
	}
}

// confident reports whether entry idx may drive speculation.
func (p *TwoLevel) confident(idx int32) bool {
	return p.store.conf(idx) >= p.confThreshold
}

// Name implements Predictor.
func (p *TwoLevel) Name() string { return p.kind.String() }

// Kind returns the predictor variant.
func (p *TwoLevel) Kind() Kind { return p.kind }

// HistoryDepth implements Predictor.
func (p *TwoLevel) HistoryDepth() int { return p.depth }

// Stats implements Predictor.
func (p *TwoLevel) Stats() Stats { return p.stats }

// Reset implements Predictor. Tables are cleared but their storage is
// retained, so a reset predictor re-learns without re-allocating; it is
// observably equivalent to a freshly constructed one. Outstanding
// SWIGuard and ReadPrediction handles are invalidated by Reset: their
// methods become no-ops (a generation check keeps them from touching the
// reused tables).
func (p *TwoLevel) Reset() {
	p.blocks.Reset()
	p.blockStates = p.blockStates[:0]
	p.table.reset()
	p.store.reset()
	p.stats = Stats{}
}

// tracks reports whether this predictor observes the message type. Cosmos
// tracks everything; MSP/VMSP only requests (§3: "an MSP only predicts
// memory request messages").
func (p *TwoLevel) tracks(t MsgType) bool {
	if t == MsgInvalid {
		return false
	}
	if p.kind == KindCosmos {
		return true
	}
	return t.IsRequest()
}

// block returns the state for addr, allocating it on first touch. The
// returned pointer is valid until the next block call (slice growth).
func (p *TwoLevel) block(addr mem.BlockAddr) *blockState {
	idx, created := p.blocks.Reserve(addr, int32(len(p.blockStates)))
	if created {
		p.blockStates = append(p.blockStates, blockState{lastWrite: noEntry})
	}
	return &p.blockStates[idx]
}

// lookup returns the state for addr without allocating.
func (p *TwoLevel) lookup(addr mem.BlockAddr) *blockState {
	idx, ok := p.blocks.Get(addr)
	if !ok {
		return nil
	}
	return &p.blockStates[idx]
}

// Observe implements Predictor. Messages must be fed in directory arrival
// order; each tracked message is scored exactly once against the
// prediction in effect when it arrived, then learned.
func (p *TwoLevel) Observe(addr mem.BlockAddr, obs Observation) Outcome {
	if !p.tracks(obs.Type) {
		return Outcome{}
	}
	bs := p.block(addr)

	if p.kind == KindVMSP {
		return p.observeVMSP(addr, bs, obs)
	}

	sym := Symbol{Type: obs.Type, Node: obs.Node}
	out := p.scoreAndLearn(addr, bs, sym)
	p.stats.add(out)
	return out
}

// observeVMSP folds reads into the open run vector (§3.1). Each read is
// scored by membership in the predicted vector; a non-read first closes
// any open run (recording the complete vector as one history symbol) and
// is then scored as an ordinary symbol.
func (p *TwoLevel) observeVMSP(addr mem.BlockAddr, bs *blockState, obs Observation) Outcome {
	if obs.Type == MsgRead {
		out := Outcome{Tracked: true}
		if idx, ok := p.table.lookup(p.store, patternKey{addr, bs.key}); ok {
			s := p.store
			if s.predValid(idx) {
				out.Predicted = true
				s.stats[idx].uses++
				h := &s.hot[idx]
				// A read type with Node 0 is how a vector symbol packs,
				// but membership is what scores a VMSP read.
				if tnType(h.tn) == MsgRead &&
					s.vecAt(h.vec).Has(obs.Node) && !bs.open.Has(obs.Node) {
					out.Correct = true
					s.stats[idx].hits++
					s.confUp(idx)
				} else {
					s.confDown(idx)
				}
			}
		}
		bs.open = bs.open.With(obs.Node)
		p.stats.add(out)
		return out
	}

	// Non-read: close the open run first, recording the actual complete
	// vector as the successor of the pre-run history. The individual reads
	// were already scored; recording is scoreless.
	if !bs.open.Empty() {
		vec := Symbol{Type: MsgRead, Vec: bs.open}
		p.learn(addr, bs, vec)
		bs.open = mem.ReaderVec{}
	}
	sym := Symbol{Type: obs.Type, Node: obs.Node}
	out := p.scoreAndLearn(addr, bs, sym)
	p.stats.add(out)
	return out
}

// scoreAndLearn scores sym against the entry for the current history, then
// records sym as that history's new prediction and pushes it.
func (p *TwoLevel) scoreAndLearn(addr mem.BlockAddr, bs *blockState, sym Symbol) Outcome {
	out := Outcome{Tracked: true}
	tn, vid := sym.pack(), p.store.vecID(sym.Vec)
	pk := patternKey{addr, bs.key}
	idx, ok := p.table.lookup(p.store, pk)
	if ok {
		s := p.store
		if s.predValid(idx) {
			out.Predicted = true
			s.stats[idx].uses++
			// Packed equality: (type, node) word and vector word match ⟺
			// Symbol.Equal, since pack() and vecID are bijections.
			if h := &s.hot[idx]; h.tn == tn && h.vec == vid {
				out.Correct = true
				s.stats[idx].hits++
				s.confUp(idx)
			} else {
				s.confDown(idx)
			}
		}
		s.setPred(idx, tn, vid)
	} else {
		idx = p.store.alloc(pk, tn, vid)
		p.table.insert(p.store, pk, idx)
	}
	if sym.Type.IsWriteLike() {
		bs.lastWrite = idx
	}
	bs.push(tn, vid, p.depth)
	return out
}

// learn records sym as the successor of the current history without
// scoring (used when closing VMSP read runs).
func (p *TwoLevel) learn(addr mem.BlockAddr, bs *blockState, sym Symbol) {
	tn, vid := sym.pack(), p.store.vecID(sym.Vec)
	pk := patternKey{addr, bs.key}
	if idx, ok := p.table.lookup(p.store, pk); ok {
		p.store.setPred(idx, tn, vid)
	} else {
		p.table.insert(p.store, pk, p.store.alloc(pk, tn, vid))
	}
	bs.push(tn, vid, p.depth)
}

// PredictNext implements Predictor: the predicted successor of the
// block's current (closed) history.
func (p *TwoLevel) PredictNext(addr mem.BlockAddr) (Symbol, bool) {
	bs := p.lookup(addr)
	if bs == nil {
		return Symbol{}, false
	}
	idx, ok := p.table.lookup(p.store, patternKey{addr, bs.key})
	if !ok {
		return Symbol{}, false
	}
	if !p.store.predValid(idx) || !p.confident(idx) {
		return Symbol{}, false
	}
	return p.store.pred(idx), true
}

// PredictReaders implements Predictor.
//
// For VMSP the prediction is the single vector entry following the current
// history. For MSP and Cosmos — which record reads individually — the
// reader set is expanded by chaining predictions: follow the predicted
// read symbols through the pattern table until a non-read prediction, a
// missing entry, a repeated reader, or the chain bound is reached. The
// paper's speculative DSM uses VMSP; chaining lets the benchmarks compare
// speculation quality across predictors as an ablation.
func (p *TwoLevel) PredictReaders(addr mem.BlockAddr) (ReadPrediction, bool) {
	bs := p.lookup(addr)
	if bs == nil {
		return ReadPrediction{}, false
	}
	if p.kind == KindVMSP {
		idx, ok := p.table.lookup(p.store, patternKey{addr, bs.key})
		if !ok {
			return ReadPrediction{}, false
		}
		s := p.store
		vec := s.vecAt(s.hot[idx].vec)
		if tnType(s.hot[idx].tn) != MsgRead || vec.Empty() || !p.confident(idx) {
			return ReadPrediction{}, false
		}
		rp := ReadPrediction{Readers: vec, store: s, gen: s.gen}
		rp.addEntry(idx)
		return rp, true
	}

	// Chain expansion over a stack copy of the packed history key (the
	// old implementation cloned the whole blockState here).
	key := bs.key
	n := int(bs.n)
	rp := ReadPrediction{store: p.store, gen: p.store.gen}
	for i := 0; i < p.maxChain; i++ {
		idx, ok := p.table.lookup(p.store, patternKey{addr, key})
		if !ok {
			break
		}
		h := &p.store.hot[idx]
		if tnType(h.tn) != MsgRead || !p.confident(idx) {
			break
		}
		node := tnNode(h.tn)
		if rp.Readers.Has(node) {
			break
		}
		rp.Readers = rp.Readers.With(node)
		rp.addEntry(idx)
		n = key.push(h.tn, h.vec, n, p.depth)
	}
	if rp.Readers.Empty() {
		return ReadPrediction{}, false
	}
	return rp, true
}

// PredictsUpgradeBy implements Predictor. It must be called after the
// reader's request has been observed. For MSP/Cosmos the observation
// already pushed the read into the history, so the current history's
// prediction is the read's successor; for VMSP the read only opened the
// run, so the run is hypothetically closed (with reader included) first.
func (p *TwoLevel) PredictsUpgradeBy(addr mem.BlockAddr, reader mem.NodeID) bool {
	bs := p.lookup(addr)
	if bs == nil {
		return false
	}
	key := bs.key
	if p.kind == KindVMSP {
		// A run vector that was never learned cannot key any entry, so a
		// missing intern id is already a miss (vecIDIfPresent avoids
		// interning vectors on this predict-only path).
		vid, ok := p.store.vecIDIfPresent(bs.open.With(reader))
		if !ok {
			return false
		}
		key.push(packTN(MsgRead, 0), vid, int(bs.n), p.depth)
	}
	idx, ok := p.table.lookup(p.store, patternKey{addr, key})
	if !ok {
		return false
	}
	if !p.store.predValid(idx) || !p.confident(idx) {
		return false
	}
	tn := p.store.hot[idx].tn
	return tnType(tn).IsWriteLike() && tnNode(tn) == reader
}

// SWIAllowed implements Predictor.
func (p *TwoLevel) SWIAllowed(addr mem.BlockAddr) bool {
	return p.SWIGuard(addr).Allowed()
}

// SWIGuard implements Predictor.
func (p *TwoLevel) SWIGuard(addr mem.BlockAddr) SWIGuard {
	bs := p.lookup(addr)
	if bs == nil || bs.lastWrite == noEntry {
		return SWIGuard{}
	}
	return SWIGuard{store: p.store, idx: bs.lastWrite, gen: p.store.gen}
}

// AssumeReaders implements Predictor. For VMSP the forwarded readers join
// the open run; for MSP/Cosmos they are recorded and pushed as individual
// read symbols (scorelessly), mirroring the history that real read
// requests would have produced.
func (p *TwoLevel) AssumeReaders(addr mem.BlockAddr, vec mem.ReaderVec) {
	if vec.Empty() {
		return
	}
	bs := p.block(addr)
	if p.kind == KindVMSP {
		bs.open = bs.open.Union(vec)
		return
	}
	for w := vec; !w.Empty(); {
		n := w.Lowest()
		w = w.Without(n)
		p.learn(addr, bs, Symbol{Type: MsgRead, Node: n})
	}
}

// RetractReader implements Predictor. Only the VMSP open run can be
// retracted; for MSP/Cosmos the pushed history symbol is left in place
// (the pattern entries themselves are fixed via ReadPrediction.Prune).
func (p *TwoLevel) RetractReader(addr mem.BlockAddr, n mem.NodeID) {
	bs := p.lookup(addr)
	if bs == nil {
		return
	}
	bs.open = bs.open.Without(n)
}

// Census implements Predictor.
func (p *TwoLevel) Census() Census {
	return Census{
		HistoryDepth: p.depth,
		Blocks:       p.blocks.Len(),
		Entries:      p.store.len(),
	}
}

// BytesPerBlock evaluates the paper's Table 4 storage formulas for a
// 16-processor machine at history depth one:
//
//	Cosmos: (7 + 14·pte)/8  — 3-bit type + 4-bit id per symbol
//	MSP:    (6 + 12·pte)/8  — 2-bit type + 4-bit id per symbol
//	VMSP:   (18 + 24·pte)/8 — 2-bit type + 16-bit vector history symbol;
//	        a pte holds one vector plus one 6-bit request
//
// pte is the average pattern-table entries per allocated block.
func BytesPerBlock(kind Kind, pte float64) float64 {
	switch kind {
	case KindCosmos:
		return (7 + 14*pte) / 8
	case KindMSP:
		return (6 + 12*pte) / 8
	case KindVMSP:
		return (18 + 24*pte) / 8
	default:
		panic(fmt.Sprintf("core: unknown kind %v", kind))
	}
}

var _ Predictor = (*TwoLevel)(nil)
