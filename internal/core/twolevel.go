package core

import (
	"fmt"

	"specdsm/internal/mem"
)

// Kind selects one of the three predictor variants.
type Kind uint8

const (
	// KindCosmos is the general message predictor baseline [17].
	KindCosmos Kind = iota
	// KindMSP is the request-only Memory Sharing Predictor (§3).
	KindMSP
	// KindVMSP is the Vector MSP with read-run folding (§3.1).
	KindVMSP
)

func (k Kind) String() string {
	switch k {
	case KindCosmos:
		return "Cosmos"
	case KindMSP:
		return "MSP"
	case KindVMSP:
		return "VMSP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// entry is one pattern-table entry: the predicted successor of a specific
// message-history sequence, plus the SWI premature bit (§4.1) for entries
// whose prediction is a write or upgrade.
type entry struct {
	pred Symbol
	// noSWI suppresses speculative write invalidation for this pattern
	// after a premature invalidation has been observed.
	noSWI bool
	// conf is a 2-bit saturating confidence counter (an extension beyond
	// the paper, off by default): incremented on a correct prediction,
	// decremented on a wrong one. When a confidence threshold is
	// configured, speculation surfaces only act on entries at or above it.
	conf uint8
	// uses/hits instrument per-entry reuse (learning-speed analysis).
	uses uint64
	hits uint64
}

// confMax saturates the 2-bit counter.
const confMax = 3

func (e *entry) confUp() {
	if e.conf < confMax {
		e.conf++
	}
}

func (e *entry) confDown() {
	if e.conf > 0 {
		e.conf--
	}
}

// blockState holds the per-block history register and pattern table.
type blockState struct {
	// hist holds up to depth most-recent symbols, oldest first.
	hist []Symbol
	// open is the read run accumulated since the last non-read symbol
	// (VMSP only).
	open mem.ReaderVec
	// patterns maps an encoded history to its entry.
	patterns map[string]*entry
	// lastWriteEntry is the entry whose prediction recorded the block's
	// most recent write/upgrade; it carries the SWI premature bit.
	lastWriteEntry *entry
}

func (bs *blockState) key() string {
	b := make([]byte, 0, len(bs.hist)*10)
	for _, s := range bs.hist {
		b = s.appendKey(b)
	}
	return string(b)
}

func (bs *blockState) push(s Symbol, depth int) {
	if len(bs.hist) == depth {
		copy(bs.hist, bs.hist[1:])
		bs.hist[len(bs.hist)-1] = s
		return
	}
	bs.hist = append(bs.hist, s)
}

// TwoLevel is the shared two-level adaptive predictor engine. It is
// configured as Cosmos, MSP, or VMSP via Kind; see New.
type TwoLevel struct {
	kind   Kind
	depth  int
	blocks map[mem.BlockAddr]*blockState
	stats  Stats
	// maxChain bounds reader-chain expansion for non-vector predictors in
	// PredictReaders.
	maxChain int
	// confThreshold gates the speculation surfaces (PredictReaders,
	// PredictNext, PredictsUpgradeBy) on per-entry confidence; 0 disables
	// gating (the paper's behaviour). Accuracy scoring is unaffected.
	confThreshold uint8
}

// New constructs a predictor of the given kind with history depth d (the
// paper evaluates d = 1, 2, 4).
func New(kind Kind, depth int) *TwoLevel {
	if depth < 1 {
		panic(fmt.Sprintf("core: history depth %d < 1", depth))
	}
	return &TwoLevel{
		kind:     kind,
		depth:    depth,
		blocks:   make(map[mem.BlockAddr]*blockState),
		maxChain: mem.MaxNodes,
	}
}

// NewCosmos returns the general message predictor baseline.
func NewCosmos(depth int) *TwoLevel { return New(KindCosmos, depth) }

// NewMSP returns the request-only Memory Sharing Predictor.
func NewMSP(depth int) *TwoLevel { return New(KindMSP, depth) }

// NewVMSP returns the Vector Memory Sharing Predictor.
func NewVMSP(depth int) *TwoLevel { return New(KindVMSP, depth) }

// SetConfidenceThreshold enables confidence gating of the speculation
// surfaces: only pattern entries whose 2-bit counter has reached n drive
// speculation. n is clamped to [0, 3]; 0 restores the paper's behaviour.
func (p *TwoLevel) SetConfidenceThreshold(n int) {
	switch {
	case n <= 0:
		p.confThreshold = 0
	case n > confMax:
		p.confThreshold = confMax
	default:
		p.confThreshold = uint8(n)
	}
}

// confident reports whether the entry may drive speculation.
func (p *TwoLevel) confident(e *entry) bool {
	return e.conf >= p.confThreshold
}

// Name implements Predictor.
func (p *TwoLevel) Name() string { return p.kind.String() }

// Kind returns the predictor variant.
func (p *TwoLevel) Kind() Kind { return p.kind }

// HistoryDepth implements Predictor.
func (p *TwoLevel) HistoryDepth() int { return p.depth }

// Stats implements Predictor.
func (p *TwoLevel) Stats() Stats { return p.stats }

// Reset implements Predictor.
func (p *TwoLevel) Reset() {
	p.blocks = make(map[mem.BlockAddr]*blockState)
	p.stats = Stats{}
}

// tracks reports whether this predictor observes the message type. Cosmos
// tracks everything; MSP/VMSP only requests (§3: "an MSP only predicts
// memory request messages").
func (p *TwoLevel) tracks(t MsgType) bool {
	if t == MsgInvalid {
		return false
	}
	if p.kind == KindCosmos {
		return true
	}
	return t.IsRequest()
}

func (p *TwoLevel) block(addr mem.BlockAddr) *blockState {
	bs := p.blocks[addr]
	if bs == nil {
		bs = &blockState{patterns: make(map[string]*entry)}
		p.blocks[addr] = bs
	}
	return bs
}

// Observe implements Predictor. Messages must be fed in directory arrival
// order; each tracked message is scored exactly once against the
// prediction in effect when it arrived, then learned.
func (p *TwoLevel) Observe(addr mem.BlockAddr, obs Observation) Outcome {
	if !p.tracks(obs.Type) {
		return Outcome{}
	}
	bs := p.block(addr)

	if p.kind == KindVMSP {
		return p.observeVMSP(bs, obs)
	}

	sym := Symbol{Type: obs.Type, Node: obs.Node}
	out := p.scoreAndLearn(bs, sym)
	p.stats.add(out)
	return out
}

// observeVMSP folds reads into the open run vector (§3.1). Each read is
// scored by membership in the predicted vector; a non-read first closes
// any open run (recording the complete vector as one history symbol) and
// is then scored as an ordinary symbol.
func (p *TwoLevel) observeVMSP(bs *blockState, obs Observation) Outcome {
	if obs.Type == MsgRead {
		out := Outcome{Tracked: true}
		if e, ok := bs.patterns[bs.key()]; ok && e.pred.Valid() {
			out.Predicted = true
			e.uses++
			if e.pred.Type == MsgRead && e.pred.Vec.Has(obs.Node) && !bs.open.Has(obs.Node) {
				out.Correct = true
				e.hits++
				e.confUp()
			} else {
				e.confDown()
			}
		}
		bs.open = bs.open.With(obs.Node)
		p.stats.add(out)
		return out
	}

	// Non-read: close the open run first, recording the actual complete
	// vector as the successor of the pre-run history. The individual reads
	// were already scored; recording is scoreless.
	if !bs.open.Empty() {
		vec := Symbol{Type: MsgRead, Vec: bs.open}
		p.learn(bs, vec)
		bs.open = 0
	}
	sym := Symbol{Type: obs.Type, Node: obs.Node}
	out := p.scoreAndLearn(bs, sym)
	p.stats.add(out)
	return out
}

// scoreAndLearn scores sym against the entry for the current history, then
// records sym as that history's new prediction and pushes it.
func (p *TwoLevel) scoreAndLearn(bs *blockState, sym Symbol) Outcome {
	out := Outcome{Tracked: true}
	key := bs.key()
	e, ok := bs.patterns[key]
	if ok && e.pred.Valid() {
		out.Predicted = true
		e.uses++
		if e.pred.Equal(sym) {
			out.Correct = true
			e.hits++
			e.confUp()
		} else {
			e.confDown()
		}
		e.pred = sym
	} else if ok {
		e.pred = sym
	} else {
		e = &entry{pred: sym}
		bs.patterns[key] = e
	}
	if sym.Type.IsWriteLike() {
		bs.lastWriteEntry = e
	}
	bs.push(sym, p.depth)
	return out
}

// learn records sym as the successor of the current history without
// scoring (used when closing VMSP read runs).
func (p *TwoLevel) learn(bs *blockState, sym Symbol) {
	key := bs.key()
	if e, ok := bs.patterns[key]; ok {
		e.pred = sym
	} else {
		bs.patterns[key] = &entry{pred: sym}
	}
	bs.push(sym, p.depth)
}

// PredictNext implements Predictor: the predicted successor of the
// block's current (closed) history.
func (p *TwoLevel) PredictNext(addr mem.BlockAddr) (Symbol, bool) {
	bs := p.blocks[addr]
	if bs == nil {
		return Symbol{}, false
	}
	e, ok := bs.patterns[bs.key()]
	if !ok || !e.pred.Valid() || !p.confident(e) {
		return Symbol{}, false
	}
	return e.pred, true
}

// PredictReaders implements Predictor.
//
// For VMSP the prediction is the single vector entry following the current
// history. For MSP and Cosmos — which record reads individually — the
// reader set is expanded by chaining predictions: follow the predicted
// read symbols through the pattern table until a non-read prediction, a
// missing entry, a repeated reader, or the chain bound is reached. The
// paper's speculative DSM uses VMSP; chaining lets the benchmarks compare
// speculation quality across predictors as an ablation.
func (p *TwoLevel) PredictReaders(addr mem.BlockAddr) (ReadPrediction, bool) {
	bs := p.blocks[addr]
	if bs == nil {
		return ReadPrediction{}, false
	}
	if p.kind == KindVMSP {
		e, ok := bs.patterns[bs.key()]
		if !ok || e.pred.Type != MsgRead || e.pred.Vec.Empty() || !p.confident(e) {
			return ReadPrediction{}, false
		}
		return ReadPrediction{Readers: e.pred.Vec, entries: []*entry{e}}, true
	}

	// Chain expansion over a scratch copy of the history.
	hist := make([]Symbol, len(bs.hist))
	copy(hist, bs.hist)
	scratch := &blockState{hist: hist, patterns: bs.patterns}
	var rp ReadPrediction
	for i := 0; i < p.maxChain; i++ {
		e, ok := scratch.patterns[scratch.key()]
		if !ok || e.pred.Type != MsgRead || !e.pred.Valid() || !p.confident(e) {
			break
		}
		if rp.Readers.Has(e.pred.Node) {
			break
		}
		rp.Readers = rp.Readers.With(e.pred.Node)
		rp.entries = append(rp.entries, e)
		scratch.push(e.pred, p.depth)
	}
	if rp.Readers.Empty() {
		return ReadPrediction{}, false
	}
	return rp, true
}

// PredictsUpgradeBy implements Predictor. It must be called after the
// reader's request has been observed. For MSP/Cosmos the observation
// already pushed the read into the history, so the current history's
// prediction is the read's successor; for VMSP the read only opened the
// run, so the run is hypothetically closed (with reader included) first.
func (p *TwoLevel) PredictsUpgradeBy(addr mem.BlockAddr, reader mem.NodeID) bool {
	bs := p.blocks[addr]
	if bs == nil {
		return false
	}
	var e *entry
	var ok bool
	if p.kind == KindVMSP {
		hist := make([]Symbol, len(bs.hist))
		copy(hist, bs.hist)
		scratch := &blockState{hist: hist, patterns: bs.patterns}
		scratch.push(Symbol{Type: MsgRead, Vec: bs.open.With(reader)}, p.depth)
		e, ok = scratch.patterns[scratch.key()]
	} else {
		e, ok = bs.patterns[bs.key()]
	}
	if !ok || !e.pred.Valid() || !p.confident(e) {
		return false
	}
	return e.pred.Type.IsWriteLike() && e.pred.Node == reader
}

// SWIAllowed implements Predictor.
func (p *TwoLevel) SWIAllowed(addr mem.BlockAddr) bool {
	return p.SWIGuard(addr).Allowed()
}

// SWIGuard implements Predictor.
func (p *TwoLevel) SWIGuard(addr mem.BlockAddr) SWIGuard {
	bs := p.blocks[addr]
	if bs == nil {
		return SWIGuard{}
	}
	return SWIGuard{e: bs.lastWriteEntry}
}

// AssumeReaders implements Predictor. For VMSP the forwarded readers join
// the open run; for MSP/Cosmos they are recorded and pushed as individual
// read symbols (scorelessly), mirroring the history that real read
// requests would have produced.
func (p *TwoLevel) AssumeReaders(addr mem.BlockAddr, vec mem.ReaderVec) {
	if vec.Empty() {
		return
	}
	bs := p.block(addr)
	if p.kind == KindVMSP {
		bs.open |= vec
		return
	}
	vec.ForEach(func(n mem.NodeID) {
		p.learn(bs, Symbol{Type: MsgRead, Node: n})
	})
}

// RetractReader implements Predictor. Only the VMSP open run can be
// retracted; for MSP/Cosmos the pushed history symbol is left in place
// (the pattern entries themselves are fixed via ReadPrediction.Prune).
func (p *TwoLevel) RetractReader(addr mem.BlockAddr, n mem.NodeID) {
	bs := p.blocks[addr]
	if bs == nil {
		return
	}
	bs.open = bs.open.Without(n)
}

// Census implements Predictor.
func (p *TwoLevel) Census() Census {
	c := Census{HistoryDepth: p.depth, Blocks: len(p.blocks)}
	for _, bs := range p.blocks {
		c.Entries += len(bs.patterns)
	}
	return c
}

// BytesPerBlock evaluates the paper's Table 4 storage formulas for a
// 16-processor machine at history depth one:
//
//	Cosmos: (7 + 14·pte)/8  — 3-bit type + 4-bit id per symbol
//	MSP:    (6 + 12·pte)/8  — 2-bit type + 4-bit id per symbol
//	VMSP:   (18 + 24·pte)/8 — 2-bit type + 16-bit vector history symbol;
//	        a pte holds one vector plus one 6-bit request
//
// pte is the average pattern-table entries per allocated block.
func BytesPerBlock(kind Kind, pte float64) float64 {
	switch kind {
	case KindCosmos:
		return (7 + 14*pte) / 8
	case KindMSP:
		return (6 + 12*pte) / 8
	case KindVMSP:
		return (18 + 24*pte) / 8
	default:
		panic(fmt.Sprintf("core: unknown kind %v", kind))
	}
}

var _ Predictor = (*TwoLevel)(nil)
