package core

import (
	"testing"

	"specdsm/internal/mem"
)

var blk = mem.MakeAddr(0, 0x100)

func obs(t MsgType, n mem.NodeID) Observation { return Observation{Type: t, Node: n} }

// feed drives a message sequence into p for the test block and returns the
// outcomes of tracked messages.
func feed(p Predictor, seq ...Observation) []Outcome {
	var outs []Outcome
	for _, o := range seq {
		out := p.Observe(blk, o)
		if out.Tracked {
			outs = append(outs, out)
		}
	}
	return outs
}

// producerConsumerIter is the paper's running example (Figures 2-4):
// P3 upgrades the block; the directory invalidates readers P1 and P2 whose
// acks return; then P1 and P2 read again.
func producerConsumerIter() []Observation {
	return []Observation{
		obs(MsgUpgrade, 3),
		obs(MsgAckInv, 1),
		obs(MsgAckInv, 2),
		obs(MsgRead, 1),
		obs(MsgRead, 2),
	}
}

func TestMSPIgnoresAcks(t *testing.T) {
	p := NewMSP(1)
	out := p.Observe(blk, obs(MsgAckInv, 1))
	if out.Tracked {
		t.Fatal("MSP must not track acks")
	}
	out = p.Observe(blk, obs(MsgWriteback, 2))
	if out.Tracked {
		t.Fatal("MSP must not track writebacks")
	}
	if p.Stats().Tracked != 0 {
		t.Fatalf("stats counted untracked messages: %+v", p.Stats())
	}
}

func TestCosmosTracksAcks(t *testing.T) {
	p := NewCosmos(1)
	if out := p.Observe(blk, obs(MsgAckInv, 1)); !out.Tracked {
		t.Fatal("Cosmos must track acks")
	}
}

// Figure 3: MSP captures the producer/consumer pattern in a three-entry
// cycle (<Upgrade,P3>→<Read,P1>, <Read,P1>→<Read,P2>, <Read,P2>→<Upgrade,P3>),
// plus one dead cold-start entry for the empty history. From the third
// iteration on, every request is predicted correctly.
func TestMSPProducerConsumerLearns(t *testing.T) {
	p := NewMSP(1)
	feed(p, producerConsumerIter()...)
	feed(p, producerConsumerIter()...)
	c := p.Census()
	if c.Blocks != 1 {
		t.Fatalf("blocks = %d", c.Blocks)
	}
	if c.Entries != 4 {
		t.Fatalf("MSP entries = %d, want 4 (3-entry cycle of Figure 3 + cold start)", c.Entries)
	}
	outs := feed(p, producerConsumerIter()...)
	for i, o := range outs {
		if !o.Predicted || !o.Correct {
			t.Fatalf("iteration 3 message %d not predicted correctly: %+v", i, o)
		}
	}
	// Steady state: no further entries appear.
	feed(p, producerConsumerIter()...)
	if got := p.Census().Entries; got != 4 {
		t.Fatalf("steady-state entries = %d, want 4", got)
	}
}

// Figure 4: VMSP folds the two reads into one vector symbol, so its steady
// cycle needs only two entries (<Upgrade,P3>→<Read,{P1,P2}> and
// <Read,{P1,P2}>→<Upgrade,P3>), plus the dead cold-start entry — one fewer
// than MSP's three-entry cycle.
func TestVMSPProducerConsumerLearns(t *testing.T) {
	p := NewVMSP(1)
	feed(p, producerConsumerIter()...)
	feed(p, producerConsumerIter()...)
	c := p.Census()
	if c.Entries != 3 {
		t.Fatalf("VMSP entries = %d, want 3 (2-entry cycle of Figure 4 + cold start)", c.Entries)
	}
	outs := feed(p, producerConsumerIter()...)
	for i, o := range outs {
		if !o.Predicted || !o.Correct {
			t.Fatalf("iteration 3 message %d: %+v", i, o)
		}
	}
}

// §3.1: a re-ordering of the two reads defeats MSP at depth 1 but not
// VMSP, whose vector encoding is order-free.
func TestReadReorderingMSPvsVMSP(t *testing.T) {
	iterA := []Observation{obs(MsgUpgrade, 3), obs(MsgRead, 1), obs(MsgRead, 2)}
	iterB := []Observation{obs(MsgUpgrade, 3), obs(MsgRead, 2), obs(MsgRead, 1)}

	msp := NewMSP(1)
	vmsp := NewVMSP(1)
	for i := 0; i < 10; i++ {
		it := iterA
		if i%2 == 1 {
			it = iterB
		}
		feed(msp, it...)
		feed(vmsp, it...)
	}
	mspAcc := msp.Stats().Accuracy()
	vmspAcc := vmsp.Stats().Accuracy()
	if vmspAcc <= mspAcc {
		t.Fatalf("VMSP (%.2f) must beat MSP (%.2f) under read re-ordering", vmspAcc, mspAcc)
	}
	if vmspAcc < 0.9 {
		t.Fatalf("VMSP accuracy %.2f too low; reordering should not hurt it", vmspAcc)
	}
	// MSP needs depth 2 to capture both orders (§3.1).
	msp2 := NewMSP(2)
	for i := 0; i < 20; i++ {
		it := iterA
		if i%2 == 1 {
			it = iterB
		}
		feed(msp2, it...)
	}
	if msp2.Stats().Accuracy() <= mspAcc {
		t.Fatalf("MSP d=2 accuracy %.2f should exceed d=1 %.2f", msp2.Stats().Accuracy(), mspAcc)
	}
}

// §2.1: ack re-ordering perturbs Cosmos but is invisible to MSP.
func TestAckReorderingCosmosVsMSP(t *testing.T) {
	iterA := []Observation{
		obs(MsgUpgrade, 3), obs(MsgAckInv, 1), obs(MsgAckInv, 2),
		obs(MsgRead, 1), obs(MsgRead, 2),
	}
	iterB := []Observation{
		obs(MsgUpgrade, 3), obs(MsgAckInv, 2), obs(MsgAckInv, 1),
		obs(MsgRead, 1), obs(MsgRead, 2),
	}
	cosmos := NewCosmos(1)
	msp := NewMSP(1)
	for i := 0; i < 20; i++ {
		it := iterA
		if i%2 == 1 {
			it = iterB
		}
		feed(cosmos, it...)
		feed(msp, it...)
	}
	if cosmos.Stats().Accuracy() >= msp.Stats().Accuracy() {
		t.Fatalf("MSP (%.2f) must beat Cosmos (%.2f) under ack re-ordering",
			msp.Stats().Accuracy(), cosmos.Stats().Accuracy())
	}
}

// §2.1: alternating writers need history depth 2.
func TestHistoryDepthDisambiguatesWriters(t *testing.T) {
	mk := func(writer mem.NodeID, readers ...mem.NodeID) []Observation {
		seq := []Observation{obs(MsgUpgrade, writer)}
		for _, r := range readers {
			seq = append(seq, obs(MsgRead, r))
		}
		return seq
	}
	run := func(p Predictor) float64 {
		for i := 0; i < 30; i++ {
			if i%2 == 0 {
				feed(p, mk(3, 1, 2)...)
			} else {
				feed(p, mk(2, 1, 3)...)
			}
		}
		return p.Stats().Accuracy()
	}
	d1 := run(NewMSP(1))
	d2 := run(NewMSP(2))
	if d2 <= d1 {
		t.Fatalf("depth 2 accuracy %.2f should exceed depth 1 %.2f", d2, d1)
	}
	if d2 < 0.9 {
		t.Fatalf("depth 2 should capture the alternating pattern, got %.2f", d2)
	}
}

func TestVMSPMembershipScoring(t *testing.T) {
	p := NewVMSP(1)
	// Learn: Upgrade P3 -> reads {1,2} -> Upgrade P3 ...
	feed(p, obs(MsgUpgrade, 3), obs(MsgRead, 1), obs(MsgRead, 2), obs(MsgUpgrade, 3))
	// Next run arrives in the opposite order; both reads are members.
	outs := feed(p, obs(MsgRead, 2), obs(MsgRead, 1))
	for i, o := range outs {
		if !o.Correct {
			t.Fatalf("read %d should be correct by membership: %+v", i, o)
		}
	}
	// A read from a non-member scores incorrect.
	out := p.Observe(blk, obs(MsgRead, 7))
	if !out.Predicted || out.Correct {
		t.Fatalf("non-member read: %+v", out)
	}
}

func TestVMSPRepeatReaderScoresIncorrect(t *testing.T) {
	p := NewVMSP(1)
	feed(p, obs(MsgUpgrade, 3), obs(MsgRead, 1), obs(MsgRead, 2), obs(MsgUpgrade, 3))
	feed(p, obs(MsgRead, 1))
	out := p.Observe(blk, obs(MsgRead, 1)) // duplicate within open run
	if out.Correct {
		t.Fatal("duplicate read within a run must not score correct")
	}
}

func TestPredictNext(t *testing.T) {
	p := NewMSP(1)
	if _, ok := p.PredictNext(blk); ok {
		t.Fatal("cold block must not predict")
	}
	feed(p, producerConsumerIter()...)
	feed(p, obs(MsgUpgrade, 3))
	sym, ok := p.PredictNext(blk)
	if !ok || sym.Type != MsgRead || sym.Node != 1 {
		t.Fatalf("PredictNext = %v ok=%v, want <Read,P1>", sym, ok)
	}
}

func TestPredictReadersVMSP(t *testing.T) {
	p := NewVMSP(1)
	feed(p, producerConsumerIter()...)
	feed(p, producerConsumerIter()...)
	feed(p, obs(MsgUpgrade, 3))
	rp, ok := p.PredictReaders(blk)
	if !ok {
		t.Fatal("expected read prediction after learned upgrade")
	}
	want := mem.VecOf(1, 2)
	if !rp.Readers.Equal(want) {
		t.Fatalf("Readers = %v, want %v", rp.Readers, want)
	}
}

func TestPredictReadersMSPChains(t *testing.T) {
	p := NewMSP(1)
	feed(p, producerConsumerIter()...)
	feed(p, producerConsumerIter()...)
	feed(p, obs(MsgUpgrade, 3))
	rp, ok := p.PredictReaders(blk)
	if !ok {
		t.Fatal("expected chained read prediction")
	}
	want := mem.VecOf(1, 2)
	if !rp.Readers.Equal(want) {
		t.Fatalf("chained Readers = %v, want %v", rp.Readers, want)
	}
}

func TestPredictReadersNoneForWritePrediction(t *testing.T) {
	p := NewMSP(1)
	// Learn migratory: Read P1, Upgrade P1, Read P2, Upgrade P2 ...
	for i := 0; i < 4; i++ {
		n := mem.NodeID(1 + i%2)
		feed(p, obs(MsgRead, n), obs(MsgUpgrade, n))
	}
	// After an upgrade by P1 the successor is a read; after that read the
	// successor is an upgrade, so the chain stops at one reader.
	feed(p, obs(MsgRead, 1))
	if rp, ok := p.PredictReaders(blk); ok {
		if rp.Readers.Count() > 1 {
			t.Fatalf("migratory chain should stop at the upgrade, got %v", rp.Readers)
		}
	}
}

func TestPruneVMSP(t *testing.T) {
	p := NewVMSP(1)
	feed(p, producerConsumerIter()...)
	feed(p, producerConsumerIter()...)
	feed(p, obs(MsgUpgrade, 3))
	rp, ok := p.PredictReaders(blk)
	if !ok {
		t.Fatal("no prediction")
	}
	rp.Prune(2)
	rp2, ok := p.PredictReaders(blk)
	if !ok {
		t.Fatal("prediction should survive single prune")
	}
	if rp2.Readers.Has(2) || !rp2.Readers.Has(1) {
		t.Fatalf("after prune Readers = %v", rp2.Readers)
	}
	rp2.Prune(1)
	if _, ok := p.PredictReaders(blk); ok {
		t.Fatal("fully pruned vector must stop predicting")
	}
}

func TestSWIBits(t *testing.T) {
	p := NewVMSP(1)
	if !p.SWIAllowed(blk) {
		t.Fatal("cold block should allow SWI")
	}
	feed(p, producerConsumerIter()...)
	feed(p, obs(MsgUpgrade, 3))
	if !p.SWIAllowed(blk) {
		t.Fatal("SWI should be allowed before any premature invalidation")
	}
	g := p.SWIGuard(blk)
	if !g.Allowed() {
		t.Fatal("guard should allow before marking")
	}
	g.MarkPremature()
	if p.SWIAllowed(blk) {
		t.Fatal("premature bit must suppress SWI")
	}
	// The bit is per pattern entry: re-learning the same pattern keeps the
	// bit set.
	feed(p, obs(MsgRead, 1), obs(MsgRead, 2), obs(MsgUpgrade, 3))
	if p.SWIAllowed(blk) {
		t.Fatal("same pattern must stay suppressed")
	}
}

// The guard stays bound to the entry it was captured from, even after the
// block's history advances and lastWriteEntry moves on — the premature bit
// must land on the pattern that caused the misfire, not whatever write
// pattern is most recent when the misfire is detected.
func TestSWIGuardStableAcrossHistoryAdvance(t *testing.T) {
	p := NewMSP(1)
	feed(p, obs(MsgWrite, 3), obs(MsgRead, 1), obs(MsgWrite, 3), obs(MsgRead, 1))
	g := p.SWIGuard(blk) // entry for pattern [Read P1] -> Write P3
	// Advance with a different write pattern.
	feed(p, obs(MsgRead, 2), obs(MsgWrite, 5))
	g.MarkPremature()
	// The newest write entry ([Read P2] -> Write P5) must be unaffected.
	if !p.SWIAllowed(blk) {
		t.Fatal("marking an old guard must not suppress the current pattern")
	}
}

func TestAssumeAndRetractReaders(t *testing.T) {
	p := NewVMSP(1)
	// Learn Upgrade P3 -> Read {1,2} over two iterations.
	feed(p, obs(MsgUpgrade, 3), obs(MsgRead, 1), obs(MsgRead, 2))
	feed(p, obs(MsgUpgrade, 3), obs(MsgRead, 1), obs(MsgRead, 2))
	// Speculative round: the upgrade arrives, readers are served
	// speculatively so no read requests reach the directory.
	feed(p, obs(MsgUpgrade, 3))
	rp, ok := p.PredictReaders(blk)
	if !ok || !rp.Readers.Equal(mem.VecOf(1, 2)) {
		t.Fatalf("prediction = %v ok=%v", rp.Readers, ok)
	}
	p.AssumeReaders(blk, rp.Readers)
	// Next upgrade closes the assumed run; the read pattern must survive.
	feed(p, obs(MsgUpgrade, 3))
	rp2, ok := p.PredictReaders(blk)
	if !ok || !rp2.Readers.Equal(mem.VecOf(1, 2)) {
		t.Fatalf("pattern lost after assumed run: %v ok=%v", rp2.Readers, ok)
	}

	// Next speculative round: forward again, then verification reports
	// node 2 never referenced its copy — retract it from the open run and
	// prune it from the pattern entries before the run closes.
	p.AssumeReaders(blk, rp2.Readers)
	p.RetractReader(blk, 2)
	rp2.Prune(2)
	feed(p, obs(MsgUpgrade, 3))
	rp4, ok := p.PredictReaders(blk)
	if !ok || !rp4.Readers.Equal(mem.VecOf(1)) {
		t.Fatalf("after retract+prune prediction = %v ok=%v", rp4.Readers, ok)
	}
}

func TestStatsInvariant(t *testing.T) {
	p := NewVMSP(2)
	seqs := [][]Observation{
		producerConsumerIter(),
		{obs(MsgRead, 5), obs(MsgWrite, 6)},
		{obs(MsgUpgrade, 2), obs(MsgRead, 0), obs(MsgRead, 7), obs(MsgWrite, 2)},
	}
	for i := 0; i < 50; i++ {
		feed(p, seqs[i%len(seqs)]...)
	}
	s := p.Stats()
	if s.Correct > s.Predicted || s.Predicted > s.Tracked {
		t.Fatalf("invariant violated: %+v", s)
	}
	if s.Accuracy() < 0 || s.Accuracy() > 1 || s.Coverage() < 0 || s.Coverage() > 1 {
		t.Fatalf("ratios out of range: %+v", s)
	}
}

func TestCensusCountsBlocks(t *testing.T) {
	p := NewMSP(1)
	a := mem.MakeAddr(0, 1)
	b := mem.MakeAddr(1, 2)
	p.Observe(a, obs(MsgRead, 0))
	p.Observe(b, obs(MsgRead, 1))
	p.Observe(b, obs(MsgWrite, 2))
	c := p.Census()
	if c.Blocks != 2 {
		t.Fatalf("blocks = %d", c.Blocks)
	}
	if c.Entries != 3 {
		t.Fatalf("entries = %d", c.Entries)
	}
	if got := c.EntriesPerBlock(); got != 1.5 {
		t.Fatalf("pte = %v", got)
	}
}

func TestBytesPerBlockFormulas(t *testing.T) {
	// Spot values from the paper's §7.3 formulas.
	if got := BytesPerBlock(KindCosmos, 5); got != (7+14*5)/8.0 {
		t.Fatalf("cosmos: %v", got)
	}
	if got := BytesPerBlock(KindMSP, 3); got != (6+12*3)/8.0 {
		t.Fatalf("msp: %v", got)
	}
	if got := BytesPerBlock(KindVMSP, 2); got != (18+24*2)/8.0 {
		t.Fatalf("vmsp: %v", got)
	}
}

func TestReset(t *testing.T) {
	p := NewVMSP(1)
	feed(p, producerConsumerIter()...)
	p.Reset()
	if p.Stats() != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", p.Stats())
	}
	if c := p.Census(); c.Blocks != 0 || c.Entries != 0 {
		t.Fatalf("census not cleared: %+v", c)
	}
}

func TestKindStrings(t *testing.T) {
	if KindCosmos.String() != "Cosmos" || KindMSP.String() != "MSP" || KindVMSP.String() != "VMSP" {
		t.Fatal("kind strings wrong")
	}
}

func TestDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for depth 0")
		}
	}()
	New(KindMSP, 0)
}

func TestEWITable(t *testing.T) {
	tbl := NewEWITable()
	a := mem.MakeAddr(0, 1)
	b := mem.MakeAddr(0, 2)

	if _, ok := tbl.Last(3); ok {
		t.Fatal("empty table must not report a last write")
	}
	if _, cand := tbl.Update(3, a); cand {
		t.Fatal("first write is not an SWI candidate")
	}
	if _, cand := tbl.Update(3, a); cand {
		t.Fatal("repeat write to same block is not a candidate")
	}
	prev, cand := tbl.Update(3, b)
	if !cand || prev != a {
		t.Fatalf("Update = (%v,%v), want (a,true)", prev, cand)
	}
	if last, ok := tbl.Last(3); !ok || last != b {
		t.Fatalf("Last = (%v,%v)", last, ok)
	}
	tbl.Reset()
	if _, ok := tbl.Last(3); ok {
		t.Fatal("reset failed")
	}
}
