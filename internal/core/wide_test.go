package core

import (
	"fmt"
	"testing"

	"specdsm/internal/mem"
)

// TestWideVMSPReadRunPrediction drives the paper's producer-consumer
// pattern with readers beyond the inline tier (nodes 100, 200, 1000) on a
// predictor sized for 1024 nodes: the read-run vector must be learned,
// predicted, and scored exactly as at narrow widths.
func TestWideVMSPReadRunPrediction(t *testing.T) {
	p := NewSized(KindVMSP, 1, 1024)
	readers := []mem.NodeID{100, 200, 1000}
	iter := []Observation{obs(MsgWrite, 0)}
	for _, r := range readers {
		iter = append(iter, obs(MsgRead, r))
	}
	// Two iterations teach (write → run) and (run → write); the third is
	// fully predicted.
	var outs []Outcome
	for i := 0; i < 3; i++ {
		outs = append(outs, feed(p, iter...)...)
	}
	last := outs[len(outs)-len(readers):]
	for i, out := range last {
		if !out.Predicted || !out.Correct {
			t.Fatalf("iteration 3 read %d: outcome %+v, want predicted+correct", i, out)
		}
	}
	rp, ok := p.PredictReaders(blk)
	if !ok {
		t.Fatal("no read prediction after the write pattern")
	}
	if !rp.Readers.Equal(mem.VecOf(readers...)) {
		t.Fatalf("predicted readers %v, want %v", rp.Readers, mem.VecOf(readers...))
	}
}

// TestWideNarrowObservationEquivalence pins the ≤64-node equivalence
// contract at the predictor level: a wide-sized predictor fed only narrow
// nodes must produce outcome-for-outcome identical results to New's
// narrow one, for every kind and depth.
func TestWideNarrowObservationEquivalence(t *testing.T) {
	seq := []Observation{
		obs(MsgWrite, 3), obs(MsgRead, 1), obs(MsgRead, 2), obs(MsgUpgrade, 3),
		obs(MsgAckInv, 1), obs(MsgAckInv, 2), obs(MsgRead, 1), obs(MsgRead, 2),
		obs(MsgUpgrade, 3), obs(MsgRead, 1), obs(MsgRead, 2), obs(MsgWrite, 5),
		obs(MsgRead, 1), obs(MsgRead, 2), obs(MsgWrite, 5),
	}
	for _, kind := range []Kind{KindCosmos, KindMSP, KindVMSP} {
		for _, depth := range []int{1, 2, 4} {
			narrow := New(kind, depth)
			wide := NewSized(kind, depth, mem.MaxNodes)
			for i := 0; i < 4; i++ {
				for _, o := range seq {
					a := narrow.Observe(blk, o)
					b := wide.Observe(blk, o)
					if a != b {
						t.Fatalf("%v d=%d: outcome diverged on %v: %+v vs %+v", kind, depth, o, a, b)
					}
				}
			}
			if narrow.Stats() != wide.Stats() {
				t.Fatalf("%v d=%d: stats diverged: %+v vs %+v", kind, depth, narrow.Stats(), wide.Stats())
			}
			ns, nok := narrow.PredictNext(blk)
			ws, wok := wide.PredictNext(blk)
			if nok != wok || !ns.Equal(ws) {
				t.Fatalf("%v d=%d: PredictNext diverged", kind, depth)
			}
		}
	}
}

// TestWideResetEquivalence mirrors reset_test.go at width 256: a reset
// wide predictor (interner included) must answer exactly like a fresh one.
func TestWideResetEquivalence(t *testing.T) {
	seq := func(p Predictor) []Outcome {
		var outs []Outcome
		for i := 0; i < 3; i++ {
			outs = append(outs, feed(p,
				obs(MsgWrite, 70), obs(MsgRead, 100), obs(MsgRead, 255),
				obs(MsgUpgrade, 70), obs(MsgRead, 100), obs(MsgRead, 255))...)
		}
		return outs
	}
	fresh := NewSized(KindVMSP, 2, 256)
	reused := NewSized(KindVMSP, 2, 256)
	// Dirty the reused predictor with a different wide pattern, then Reset.
	feed(reused, obs(MsgWrite, 200), obs(MsgRead, 64), obs(MsgRead, 65), obs(MsgWrite, 200))
	reused.Reset()
	a, b := seq(fresh), seq(reused)
	if len(a) != len(b) {
		t.Fatalf("outcome counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	if fresh.Stats() != reused.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", fresh.Stats(), reused.Stats())
	}
}

// FuzzPatKeyPack checks the packed pattern-key encoding against a
// map-backed oracle at mixed widths: pushing symbol sequences must stay a
// bijection (equal keys ⟺ equal recent-window sequences), and the
// open-addressed patTable must agree with a reference map on every
// insert/lookup.
func FuzzPatKeyPack(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x00, 0x40, 0x01, 0x04, 0x00, 0x10, 0x00}, uint8(1))
	f.Add([]byte{0x00, 0x01, 0x00, 0x03, 0x03, 0x02, 0x01, 0x00, 0x02}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, depthRaw uint8) {
		depth := int(depthRaw)%MaxDepth + 1
		if len(data) == 0 {
			return
		}
		wide := data[0]&1 == 1
		width := mem.NodeID(mem.InlineNodes)
		store := &entryStore{}
		if wide {
			width = mem.MaxNodes
			store.vecs = &vecIntern{}
		}
		table := patTable{vecKeys: true}
		refTable := map[patternKey]int32{}
		addr := mem.MakeAddr(0, 1)

		var key patKey
		have := 0
		var window []string
		keyBySeq := map[string]patKey{}
		seqByKey := map[patKey]string{}
		for i := 1; i+3 < len(data); i += 4 {
			typ := MsgType(data[i]%5 + 1)
			node := mem.NodeID(uint16(data[i+1])<<8|uint16(data[i+2])) % width
			var vec mem.ReaderVec
			if typ == MsgRead && data[i+3]&1 == 1 {
				vec = mem.VecOf(node, mem.NodeID(data[i+3])%width)
				node = 0
			}
			sym := Symbol{Type: typ, Node: node, Vec: vec}
			tn, vid := sym.pack(), store.vecID(sym.Vec)
			have = key.push(tn, vid, have, depth)
			window = append(window, sym.String())
			if len(window) > depth {
				window = window[1:]
			}
			seq := fmt.Sprint(window)
			if k, seen := keyBySeq[seq]; seen {
				if k != key {
					t.Fatalf("sequence %s packed to two keys", seq)
				}
			} else {
				keyBySeq[seq] = key
			}
			if s, seen := seqByKey[key]; seen {
				if s != seq {
					t.Fatalf("key collision: %s and %s pack equally", s, seq)
				}
			} else {
				seqByKey[key] = seq
			}
			pk := patternKey{addr, key}
			if idx, ok := table.lookup(store, pk); ok {
				if want, seen := refTable[pk]; !seen || want != idx {
					t.Fatalf("lookup(%v) = %d, oracle has %d", pk, idx, want)
				}
			} else {
				if _, seen := refTable[pk]; seen {
					t.Fatalf("table lost key %v", pk)
				}
				idx := store.alloc(pk, tn, vid)
				table.insert(store, pk, idx)
				refTable[pk] = idx
			}
		}
		for pk, want := range refTable {
			got, ok := table.lookup(store, pk)
			if !ok || got != want {
				t.Fatalf("final lookup(%v) = %d,%v, oracle has %d", pk, got, ok, want)
			}
		}
	})
}
