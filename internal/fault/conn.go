package fault

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Conn wraps a net.Conn with the injector's connection-fault schedule:
// drops that break the connection mid-operation, short reads that
// deliver a correct prefix of the requested bytes, and artificial
// scheduling delays. Decisions are drawn per operation from the
// connection's own counter, so a fixed seed yields a fixed fault script
// over the connection's lifetime regardless of goroutine interleaving.
//
// A drop closes the underlying connection, so every later operation
// fails too — the same view a dispatcher gets of a shard that died or
// fell off the network. Short reads never corrupt data: the bytes
// delivered are the real stream prefix, exercising the peer's
// io.ReadFull reassembly rather than its checksum path.
type Conn struct {
	in *Injector
	c  net.Conn
	op atomic.Uint64
}

// Wrap dresses c in the injector's connection-fault schedule. A nil
// injector or one with all connection rates zero returns c unchanged,
// so the production path pays nothing.
func Wrap(in *Injector, c net.Conn) net.Conn {
	if in == nil || (in.ConnDrop <= 0 && in.ConnShort <= 0 && in.ConnDelay <= 0) {
		return c
	}
	return &Conn{in: in, c: c}
}

func (fc *Conn) Read(p []byte) (int, error) {
	op := fc.op.Add(1)
	fc.in.connDelay(op)
	if fc.in.connDrop(op) {
		fc.c.Close()
		return 0, fmt.Errorf("%w: conn drop (read op %d)", ErrInjected, op)
	}
	if n, short := fc.in.connShort(op, len(p)); short {
		return fc.c.Read(p[:n])
	}
	return fc.c.Read(p)
}

func (fc *Conn) Write(p []byte) (int, error) {
	op := fc.op.Add(1)
	fc.in.connDelay(op)
	if fc.in.connDrop(op) {
		// A real mid-write failure can leave a prefix on the wire; the
		// peer sees a torn frame followed by EOF.
		n, _ := fc.c.Write(p[:len(p)/2])
		fc.c.Close()
		return n, fmt.Errorf("%w: conn drop (write op %d, %d of %d bytes)", ErrInjected, op, n, len(p))
	}
	return fc.c.Write(p)
}

func (fc *Conn) Close() error                       { return fc.c.Close() }
func (fc *Conn) LocalAddr() net.Addr                { return fc.c.LocalAddr() }
func (fc *Conn) RemoteAddr() net.Addr               { return fc.c.RemoteAddr() }
func (fc *Conn) SetDeadline(t time.Time) error      { return fc.c.SetDeadline(t) }
func (fc *Conn) SetReadDeadline(t time.Time) error  { return fc.c.SetReadDeadline(t) }
func (fc *Conn) SetWriteDeadline(t time.Time) error { return fc.c.SetWriteDeadline(t) }
