package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

// pipePair returns both ends of an in-memory connection with the client
// end wrapped in the injector's fault schedule.
func pipePair(in *Injector) (client net.Conn, server net.Conn) {
	c, s := net.Pipe()
	return Wrap(in, c), s
}

func TestWrapPassthrough(t *testing.T) {
	c, _ := net.Pipe()
	if Wrap(nil, c) != c {
		t.Fatal("Wrap(nil, c) did not return c unchanged")
	}
	in := New(1) // all conn rates zero
	if Wrap(in, c) != c {
		t.Fatal("Wrap with zero conn rates did not return c unchanged")
	}
}

// TestConnShortReadsPreserveData pins the short-read contract: reads may
// return fewer bytes than asked, but io.ReadFull reassembly recovers the
// exact stream — short reads perturb framing, never data.
func TestConnShortReadsPreserveData(t *testing.T) {
	in := New(11)
	in.ConnShort = 1.0 // every read is short
	client, server := pipePair(in)
	payload := bytes.Repeat([]byte("0123456789abcdef"), 64)
	go func() {
		server.Write(payload)
		server.Close()
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("short reads corrupted the stream")
	}
}

// TestConnShortIsActuallyShort verifies the fault fires: a large read
// against a willing writer returns a strict prefix.
func TestConnShortIsActuallyShort(t *testing.T) {
	in := New(11)
	in.ConnShort = 1.0
	client, server := pipePair(in)
	go server.Write(bytes.Repeat([]byte{0xCD}, 256))
	buf := make([]byte, 256)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n >= 256 {
		t.Fatalf("read returned %d bytes, want a strict non-empty prefix of 256", n)
	}
}

// TestConnDropBreaksConnection pins the drop contract: the faulted op
// reports ErrInjected and the connection is closed, so later operations
// fail too — a shard death as the peer observes it.
func TestConnDropBreaksConnection(t *testing.T) {
	in := New(13)
	in.ConnDrop = 1.0
	client, server := pipePair(in)
	done := make(chan struct{})
	go func() {
		// The drop path writes a prefix before closing; drain so the
		// pipe write cannot block forever.
		io.Copy(io.Discard, server)
		close(done)
	}()
	if _, err := client.Write([]byte("hello shard")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	<-done
	if _, err := client.Write([]byte("again")); err == nil {
		t.Fatal("write after drop succeeded; connection should be closed")
	}
}

// TestConnScheduleDeterministic pins that the per-connection fault
// script depends only on (seed, op): two connections with same-seed
// injectors draw identical decisions at every operation index.
func TestConnScheduleDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	a.ConnDrop, b.ConnDrop = 0.3, 0.3
	a.ConnShort, b.ConnShort = 0.3, 0.3
	for op := uint64(1); op <= 500; op++ {
		if a.connDrop(op) != b.connDrop(op) {
			t.Fatalf("connDrop(%d) diverged across same-seed injectors", op)
		}
		an, ashort := a.connShort(op, 100)
		bn, bshort := b.connShort(op, 100)
		if an != bn || ashort != bshort {
			t.Fatalf("connShort(%d) diverged: (%d,%v) vs (%d,%v)", op, an, ashort, bn, bshort)
		}
		if ashort && (an < 1 || an >= 100) {
			t.Fatalf("connShort(%d) length %d out of [1,100)", op, an)
		}
	}
}

func TestConnDelayYieldsWithoutFaulting(t *testing.T) {
	in := New(17)
	in.ConnDelay = 1.0
	client, server := pipePair(in)
	msg := []byte("delayed but intact")
	go func() {
		server.Write(msg)
		server.Close()
	}()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("delayed conn returned %q, want %q", got, msg)
	}
}

func TestParseSpecConnKeys(t *testing.T) {
	in, err := ParseSpec("seed=3,conndrop=0.1,connshort=0.2,conndelay=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 3 || in.ConnDrop != 0.1 || in.ConnShort != 0.2 || in.ConnDelay != 0.3 {
		t.Fatalf("spec parsed into %+v", in)
	}
	for _, bad := range []string{"conndrop=2", "connshort=-1", "conndelay=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
