// Package fault is a deterministic, seeded fault injector for the sweep
// engine and its checkpoint layer.
//
// Every decision an Injector makes — "does job 17's second attempt fail
// transiently?", "does the 40th checkpoint write tear?" — is a pure
// function of the injector's seed and the coordinates of the event
// (site, index, attempt or operation count). No wall clock and no
// global rand are consulted, so a fault schedule replays identically
// across runs, worker counts, and goroutine interleavings: the property
// that lets the chaos harness byte-compare a fault-injected sweep
// against a clean one.
//
// Two seams consume an Injector:
//
//   - The sweep pool (sweep.Pool.Inject) asks it per job attempt for
//     transient errors, panics, and artificial scheduling delays.
//   - The checkpoint writer takes an FS (see NewFS) whose operations
//     fail on the injector's schedule: short writes that tear a frame
//     mid-flush, and renames that fail before the snapshot swap.
//
// A nil *Injector is valid everywhere and injects nothing; callers pay
// one nil check on the disabled path.
package fault

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
)

// ErrInjected marks every error produced by the injector, so tests and
// retry logic can tell deliberate faults from real ones with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Decision sites. Mixing a distinct site constant into the hash keeps
// the per-site fault streams independent: a job that draws a delay does
// not thereby change whether it draws a transient error.
const (
	siteTransient uint64 = 0xA11CE
	sitePanic     uint64 = 0xB0B0
	siteDelay     uint64 = 0xDE1A4
	siteDelayLen  uint64 = 0xDE1A5
	siteWrite     uint64 = 0x3317E
	siteRename    uint64 = 0x4E4AE
	siteConnDrop  uint64 = 0xD40BB
	siteConnShort uint64 = 0x54027
	siteConnSLen  uint64 = 0x54028
	siteConnDelay uint64 = 0xCDE1A
	siteConnDLen  uint64 = 0xCDE1B
)

// Injector draws deterministic fault decisions from a seed. The rate
// fields are probabilities in [0, 1]; zero disables that fault class.
// The struct is immutable after construction and safe for concurrent
// use (the FS wrapper adds its own operation counter).
type Injector struct {
	seed uint64
	// Transient is the per-attempt probability that a job fails with a
	// retryable (sweep.Transient-wrapped) error before running.
	Transient float64
	// Panic is the per-attempt probability that a job panics — a fatal
	// failure exercising the *sweep.PanicError path.
	Panic float64
	// Delay is the per-attempt probability of an artificial scheduling
	// delay (a bounded burst of runtime.Gosched yields): a straggler
	// model that perturbs completion order without touching results.
	Delay float64
	// DelayMax bounds the yield burst length (0 selects 64).
	DelayMax int
	// ShortWrite is the per-operation probability that a checkpoint
	// file write stops short and errors, tearing the frame being
	// flushed.
	ShortWrite float64
	// Rename is the per-operation probability that the checkpoint's
	// atomic snapshot rename fails.
	Rename float64
	// ConnDrop is the per-operation probability that a wrapped network
	// connection (see Wrap) breaks: the op errors and the connection is
	// closed, so every later op fails too — a shard death or partition
	// as the dispatcher observes it.
	ConnDrop float64
	// ConnShort is the per-read probability that a wrapped connection
	// returns fewer bytes than asked for. The bytes delivered are
	// correct — short reads are legal for net.Conn — so this exercises
	// reassembly (io.ReadFull) rather than corrupting the stream.
	ConnShort float64
	// ConnDelay is the per-operation probability of an artificial
	// scheduling delay on a wrapped connection (a bounded Gosched
	// burst): a slow-link model that perturbs timing, not data.
	ConnDelay float64
}

// New returns an injector with the given seed and all rates zero.
func New(seed uint64) *Injector { return &Injector{seed: seed} }

// Seed reports the injector's seed.
func (in *Injector) Seed() uint64 { return in.seed }

// splitmix64 is the standard SplitMix64 finalizer: a cheap, high-quality
// bijective mix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Mix folds four words into one hash. Fixed arity keeps the call
// allocation-free on hot paths (a variadic slice could escape).
func Mix(a, b, c, d uint64) uint64 {
	h := splitmix64(a)
	h = splitmix64(h ^ b)
	h = splitmix64(h ^ c)
	return splitmix64(h ^ d)
}

// roll maps (seed, site, a, b) to a uniform draw in [0, 1).
func (in *Injector) roll(site, a, b uint64) float64 {
	return float64(Mix(in.seed, site, a, b)>>11) / float64(uint64(1)<<53)
}

// JobTransient reports whether the given job attempt draws an injected
// transient failure.
func (in *Injector) JobTransient(index, attempt int) bool {
	return in != nil && in.Transient > 0 &&
		in.roll(siteTransient, uint64(index), uint64(attempt)) < in.Transient
}

// JobPanic reports whether the given job attempt draws an injected
// panic.
func (in *Injector) JobPanic(index, attempt int) bool {
	return in != nil && in.Panic > 0 &&
		in.roll(sitePanic, uint64(index), uint64(attempt)) < in.Panic
}

// JobDelay performs the attempt's artificial delay, if it draws one: a
// deterministic-length burst of scheduler yields. It never touches the
// wall clock, so delays reorder completions without slowing tests down.
func (in *Injector) JobDelay(index, attempt int) {
	if in == nil || in.Delay <= 0 ||
		in.roll(siteDelay, uint64(index), uint64(attempt)) >= in.Delay {
		return
	}
	max := in.DelayMax
	if max <= 0 {
		max = 64
	}
	n := 1 + int(Mix(in.seed, siteDelayLen, uint64(index), uint64(attempt))%uint64(max))
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// writeFault reports whether checkpoint write operation op draws a
// short write.
func (in *Injector) writeFault(op uint64) bool {
	return in != nil && in.ShortWrite > 0 && in.roll(siteWrite, op, 0) < in.ShortWrite
}

// renameFault reports whether checkpoint rename operation op fails.
func (in *Injector) renameFault(op uint64) bool {
	return in != nil && in.Rename > 0 && in.roll(siteRename, op, 0) < in.Rename
}

// connDrop reports whether connection operation op draws a drop.
func (in *Injector) connDrop(op uint64) bool {
	return in != nil && in.ConnDrop > 0 && in.roll(siteConnDrop, op, 0) < in.ConnDrop
}

// connShort reports whether connection read op draws a short read, and
// if so how many of the n requested bytes to deliver (at least one —
// a zero-byte read would look like EOF to bufio-style callers).
func (in *Injector) connShort(op uint64, n int) (int, bool) {
	if in == nil || in.ConnShort <= 0 || n <= 1 ||
		in.roll(siteConnShort, op, 0) >= in.ConnShort {
		return n, false
	}
	return 1 + int(Mix(in.seed, siteConnSLen, op, 0)%uint64(n-1)), true
}

// connDelay performs connection operation op's artificial delay, if it
// draws one: a deterministic-length burst of scheduler yields.
func (in *Injector) connDelay(op uint64) {
	if in == nil || in.ConnDelay <= 0 || in.roll(siteConnDelay, op, 0) >= in.ConnDelay {
		return
	}
	max := in.DelayMax
	if max <= 0 {
		max = 64
	}
	n := 1 + int(Mix(in.seed, siteConnDLen, op, 0)%uint64(max))
	for i := 0; i < n; i++ {
		runtime.Gosched()
	}
}

// ParseSpec builds an injector from a compact comma-separated spec, the
// form the CLIs accept:
//
//	seed=7,transient=0.2,panic=0.01,delay=0.5,delaymax=32,shortwrite=0.05,rename=0.05
//
// Every key is optional; seed defaults to 1 and omitted rates to 0. An
// empty spec is an error — disabling injection is done by not passing
// one at all.
func ParseSpec(spec string) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("fault: empty spec")
	}
	in := New(1)
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok || v == "" {
			return nil, fmt.Errorf("fault: bad spec field %q (want key=value)", field)
		}
		rate := func() (float64, error) {
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r < 0 || r > 1 {
				return 0, fmt.Errorf("fault: %s=%q is not a probability in [0,1]", k, v)
			}
			return r, nil
		}
		var err error
		switch k {
		case "seed":
			in.seed, err = strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
		case "transient":
			in.Transient, err = rate()
		case "panic":
			in.Panic, err = rate()
		case "delay":
			in.Delay, err = rate()
		case "delaymax":
			in.DelayMax, err = strconv.Atoi(v)
			if err != nil || in.DelayMax < 1 {
				return nil, fmt.Errorf("fault: bad delaymax %q (want a positive count)", v)
			}
		case "shortwrite":
			in.ShortWrite, err = rate()
		case "rename":
			in.Rename, err = rate()
		case "conndrop":
			in.ConnDrop, err = rate()
		case "connshort":
			in.ConnShort, err = rate()
		case "conndelay":
			in.ConnDelay, err = rate()
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q (have seed, transient, panic, delay, delaymax, shortwrite, rename, conndrop, connshort, conndelay)", k)
		}
		if err != nil {
			return nil, err
		}
	}
	return in, nil
}
