package fault

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestDecisionsDeterministic pins the core contract: every decision is
// a pure function of (seed, site, index, attempt) — repeated queries and
// a second injector with the same seed agree exactly.
func TestDecisionsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	a.Transient, b.Transient = 0.3, 0.3
	a.Panic, b.Panic = 0.1, 0.1
	for i := 0; i < 200; i++ {
		for attempt := 0; attempt < 4; attempt++ {
			if a.JobTransient(i, attempt) != b.JobTransient(i, attempt) {
				t.Fatalf("transient(%d,%d) diverged across same-seed injectors", i, attempt)
			}
			if a.JobPanic(i, attempt) != a.JobPanic(i, attempt) {
				t.Fatalf("panic(%d,%d) not stable across repeated queries", i, attempt)
			}
		}
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	in := New(7)
	in.Transient = 0.25
	hits := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if in.JobTransient(i, 0) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.20 || got > 0.30 {
		t.Fatalf("transient rate 0.25 produced %.3f over %d draws", got, n)
	}
}

func TestSitesIndependent(t *testing.T) {
	in := New(9)
	in.Transient, in.Panic = 0.5, 0.5
	same := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if in.JobTransient(i, 0) == in.JobPanic(i, 0) {
			same++
		}
	}
	// Perfectly correlated sites would agree always; independent ones
	// agree about half the time.
	if same < n/3 || same > 2*n/3 {
		t.Fatalf("transient and panic sites agree %d/%d times — streams look correlated", same, n)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.JobTransient(0, 0) || in.JobPanic(0, 0) {
		t.Fatal("nil injector injected a fault")
	}
	in.JobDelay(0, 0) // must not panic
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec("seed=7,transient=0.2,panic=0.01,delay=0.5,delaymax=32,shortwrite=0.05,rename=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 7 || in.Transient != 0.2 || in.Panic != 0.01 ||
		in.Delay != 0.5 || in.DelayMax != 32 || in.ShortWrite != 0.05 || in.Rename != 0.1 {
		t.Fatalf("spec parsed into %+v", in)
	}
	for _, bad := range []string{
		"", "transient", "transient=", "transient=1.5", "transient=-0.1",
		"seed=x", "bogus=1", "delaymax=0",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestFaultyFSShortWrite pins the torn-frame shape: a faulted write
// persists a strict prefix of the buffer and reports ErrInjected.
func TestFaultyFSShortWrite(t *testing.T) {
	in := New(3)
	in.ShortWrite = 1.0 // every write faults
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	fsys := NewFS(in, nil)
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 100)
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	if n >= len(payload) {
		t.Fatalf("short write wrote %d of %d bytes", n, len(payload))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != n {
		t.Fatalf("file holds %d bytes, write reported %d", len(b), n)
	}
}

func TestFaultyFSRename(t *testing.T) {
	in := New(5)
	in.Rename = 1.0
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := NewFS(in, nil)
	if err := fsys.Rename(src, filepath.Join(dir, "dst")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(src); err != nil {
		t.Fatalf("failed rename moved the source: %v", err)
	}
}
