package fault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync/atomic"
)

// File is the write side of the checkpoint FS seam: what the checkpoint
// writer needs from a freshly created snapshot temp file.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// ReadFile is the read side: sequential reads plus seeking past the
// header, which is all load, replay, and copy-forward use.
type ReadFile interface {
	io.Reader
	io.Seeker
	io.Closer
}

// FS is the filesystem seam the checkpoint layer writes and reads
// through. The production implementation is OS; NewFS wraps any FS with
// injected I/O faults.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (ReadFile, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Lstat(name string) (fs.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error)       { return os.Create(name) }
func (osFS) Open(name string) (ReadFile, error)     { return os.Open(name) }
func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error               { return os.Remove(name) }
func (osFS) Lstat(name string) (fs.FileInfo, error) { return os.Lstat(name) }

// NewFS wraps base (nil selects OS) with the injector's I/O fault
// schedule: writes may stop short (tearing the frame being written) and
// renames may fail. Decisions are drawn per operation from a counter,
// so a fixed seed yields a fixed fault script over the sequence of
// checkpoint operations. Reads are never faulted — read-side corruption
// is exercised by mutating real files instead (see the salvage tests).
func NewFS(in *Injector, base FS) FS {
	if base == nil {
		base = OS
	}
	return &faultFS{in: in, base: base}
}

type faultFS struct {
	in   *Injector
	base FS
	op   atomic.Uint64
}

func (f *faultFS) Create(name string) (File, error) {
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *faultFS) Open(name string) (ReadFile, error) { return f.base.Open(name) }

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.in.renameFault(f.op.Add(1)) {
		return fmt.Errorf("%w: rename %s", ErrInjected, newpath)
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *faultFS) Remove(name string) error               { return f.base.Remove(name) }
func (f *faultFS) Lstat(name string) (fs.FileInfo, error) { return f.base.Lstat(name) }

// faultFile injects short writes: the fault writes a prefix of the
// buffer through to the underlying file and then errors, leaving a torn
// frame — exactly the state a crash mid-write leaves on disk.
type faultFile struct {
	fs *faultFS
	f  File
}

func (w *faultFile) Write(p []byte) (int, error) {
	if w.fs.in.writeFault(w.fs.op.Add(1)) {
		n, _ := w.f.Write(p[:len(p)/2])
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, n, len(p))
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error  { return w.f.Sync() }
func (w *faultFile) Close() error { return w.f.Close() }
