package machine

import (
	"strconv"
	"strings"

	"specdsm/internal/sim"
)

// Arena is a reusable pool of built machines, keyed by configuration
// shape. Sweep workers construct their simulated machine once and replay
// every subsequent job through it: Run fetches (or builds, on first use
// of a configuration) the machine for cfg, re-arms it with Reset, and
// executes the programs. Because Reset restores a machine to its
// just-constructed state while retaining all table/queue/pool storage,
// a reused machine produces results identical to a freshly built one —
// the property the arena reset-equivalence tests pin — while skipping
// per-run construction entirely.
//
// An arena is NOT safe for concurrent use; give each sweep worker its
// own (sweep.MapWorker's worker-local state is the intended carrier).
type Arena struct {
	machines map[string]*Machine
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{machines: make(map[string]*Machine)}
}

// Run executes one program per node on the arena's machine for cfg,
// building the machine on first use of the configuration and resetting
// it on every reuse. Network timing is not part of the machine's
// identity: configurations differing only in NetCfg share one machine,
// which is reconfigured in place per run (Network.Reconfigure), so a
// latency sweep pays construction once per mode instead of once per
// sweep point. Results are identical to New(cfg).Run(programs).
func (a *Arena) Run(cfg Config, programs []Program) (*Result, error) {
	cfg = cfg.withDefaults()
	m, reused := a.machine(cfg)
	if reused {
		m.Reset()
	}
	if m.cfg.NetCfg != cfg.NetCfg {
		m.ReconfigureNetwork(cfg.NetCfg)
	}
	return m.Run(programs)
}

// Machines reports how many distinct machine configurations the arena
// currently holds.
func (a *Arena) Machines() int { return len(a.machines) }

// machine fetches the machine for cfg (which must already have defaults
// applied), reporting whether it already ran (and therefore needs a
// Reset before reuse); a miss builds it fresh.
func (a *Arena) machine(cfg Config) (*Machine, bool) {
	key := cfg.arenaKey()
	if m, ok := a.machines[key]; ok {
		return m, true
	}
	m := New(cfg)
	a.machines[key] = m
	return m, false
}

// arenaKey serializes every machine-identity Config field into a
// comparable string (Config itself holds a slice and a pointer, so it
// cannot be a map key directly). NetCfg is deliberately omitted: network
// timing is mutable on a built machine (ReconfigureNetwork), so configs
// differing only there share one arena slot. Call on a config that
// already has defaults applied, so equivalent zero-value and explicit
// configs share one machine.
func (c Config) arenaKey() string {
	var b strings.Builder
	b.Grow(96)
	w := func(v uint64) {
		b.WriteString(strconv.FormatUint(v, 10))
		b.WriteByte(',')
	}
	w(uint64(c.Nodes))
	for _, cy := range [...]sim.Cycle{
		c.Timing.HitLatency, c.Timing.LocalMem, c.Timing.BusOverhead,
		c.Timing.FillOverhead, c.Timing.DirOccupancy, c.Timing.MemAccess,
		c.Timing.CacheAccess, c.Timing.LocalHop,
		c.BarrierExit, c.LockTransfer,
	} {
		w(uint64(cy))
	}
	w(c.MaxEvents)
	w(uint64(c.CacheCapacity))
	var flags uint64
	if c.EnableFR {
		flags |= 1
	}
	if c.EnableSWI {
		flags |= 2
	}
	if c.EnableSpecUpgrade {
		flags |= 4
	}
	if c.DisableCoherenceCheck {
		flags |= 8
	}
	w(flags)
	spec := func(s PredictorSpec) {
		w(uint64(s.Kind))
		w(uint64(s.Depth))
		w(uint64(s.Confidence))
	}
	for _, s := range c.Observers {
		b.WriteByte('o')
		spec(s)
	}
	if c.Active != nil {
		b.WriteByte('a')
		spec(*c.Active)
	}
	return b.String()
}
