package machine

import (
	"math/rand"
	"reflect"
	"testing"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/network"
	"specdsm/internal/sim"
)

// arenaProgs generates a deterministic synthetic workload exercising
// every machine surface the arena must reset: remote reads and writes
// (producer/consumer and migratory blocks), compute delays, barriers,
// and a contended lock.
func arenaProgs(shape string, nodes int, seed int64) []Program {
	rng := rand.New(rand.NewSource(seed))
	progs := make([]Program, nodes)
	shared := make([]mem.BlockAddr, 2*nodes)
	for i := range shared {
		shared[i] = mem.MakeAddr(mem.NodeID(i%nodes), uint64(i/nodes))
	}
	iters := 4
	for it := 0; it < iters; it++ {
		for n := 0; n < nodes; n++ {
			blk := shared[(n+it)%len(shared)]
			switch shape {
			case "pc": // producer writes, two consumers read
				progs[n] = append(progs[n], Write(blk), Compute(sim.Cycle(10+rng.Intn(20))))
				progs[n] = append(progs[n], Read(shared[(n+it+1)%len(shared)]))
			case "mig": // read-then-write migration chain with a lock
				progs[n] = append(progs[n], Lock(0), Read(blk), Write(blk), Unlock(0))
				progs[n] = append(progs[n], Compute(sim.Cycle(5+rng.Intn(10))))
			}
		}
		for n := range progs {
			progs[n] = append(progs[n], Barrier())
		}
	}
	return progs
}

func arenaCfg(mode string) Config {
	cfg := Config{Nodes: 4}
	switch mode {
	case "base":
	case "swi":
		cfg.EnableFR = true
		cfg.EnableSWI = true
		cfg.Active = &PredictorSpec{Kind: core.KindVMSP, Depth: 1}
		cfg.Observers = []PredictorSpec{{Kind: core.KindMSP, Depth: 2}}
	}
	return cfg
}

// TestArenaResetEquivalence is the tentpole contract: a machine reused
// through an Arena produces results deep-equal to a freshly built
// machine for every job, across two workload shapes, two seeds, and two
// machine configurations — interleaved so every reuse follows a
// different (workload, config) than the one that warmed the machine.
func TestArenaResetEquivalence(t *testing.T) {
	arena := NewArena()
	for _, seed := range []int64{11, 23} {
		for _, shape := range []string{"pc", "mig"} {
			for _, mode := range []string{"base", "swi"} {
				progs := arenaProgs(shape, 4, seed)
				fresh, err := New(arenaCfg(mode)).Run(progs)
				if err != nil {
					t.Fatalf("%s/%s/seed%d fresh: %v", shape, mode, seed, err)
				}
				reused, err := arena.Run(arenaCfg(mode), progs)
				if err != nil {
					t.Fatalf("%s/%s/seed%d arena: %v", shape, mode, seed, err)
				}
				if !reflect.DeepEqual(fresh, reused) {
					t.Errorf("%s/%s/seed%d: arena result diverged from fresh build\nfresh:  %+v\nreused: %+v",
						shape, mode, seed, fresh, reused)
				}
			}
		}
	}
	if n := arena.Machines(); n != 2 {
		t.Errorf("arena holds %d machines, want 2 (one per distinct config)", n)
	}
}

// TestArenaRepeatedReuseStable replays the same job many times through
// one arena machine: any state leaking across runs would drift the
// result.
func TestArenaRepeatedReuseStable(t *testing.T) {
	arena := NewArena()
	progs := arenaProgs("pc", 4, 7)
	first, err := arena.Run(arenaCfg("swi"), progs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := arena.Run(arenaCfg("swi"), progs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("reuse %d drifted:\nfirst: %+v\nagain: %+v", i, first, again)
		}
	}
}

// TestArenaReconfiguresNetwork pins the latency-sweep folding: configs
// that differ only in network timing share one arena machine, which is
// reconfigured in place per run and still produces results deep-equal to
// a machine freshly built with that NetCfg — including when the sweep
// revisits an earlier latency.
func TestArenaReconfiguresNetwork(t *testing.T) {
	arena := NewArena()
	progs := arenaProgs("pc", 4, 7)
	for _, flight := range []sim.Cycle{20, 80, 320, 20} {
		cfg := arenaCfg("swi")
		cfg.NetCfg = network.Config{FlightLatency: flight, SendOccupancy: 20, RecvOccupancy: 20}
		fresh, err := New(cfg).Run(progs)
		if err != nil {
			t.Fatalf("flight %d fresh: %v", flight, err)
		}
		reused, err := arena.Run(cfg, progs)
		if err != nil {
			t.Fatalf("flight %d arena: %v", flight, err)
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Errorf("flight %d: reconfigured arena machine diverged from fresh build\nfresh:  %+v\nreused: %+v",
				flight, fresh, reused)
		}
	}
	if n := arena.Machines(); n != 1 {
		t.Errorf("arena holds %d machines, want 1 (NetCfg must not split the key)", n)
	}
}

// TestFixedLatenciesFitNearWheel asserts the model's fixed scheduling
// delays — node timing, default and RTL-sweep network configs, barrier
// and lock hand-off — all land on the kernel's O(1) near wheel. If a new
// latency outgrows sim.WheelSpan the simulator stays correct (the
// overflow heap absorbs it) but the hot path silently slows; this guard
// makes that a conscious decision.
func TestFixedLatenciesFitNearWheel(t *testing.T) {
	cfg := Config{}.withDefaults()
	lat := map[string]sim.Cycle{
		"HitLatency":   cfg.Timing.HitLatency,
		"LocalMem":     cfg.Timing.LocalMem,
		"BusOverhead":  cfg.Timing.BusOverhead,
		"FillOverhead": cfg.Timing.FillOverhead,
		"DirOccupancy": cfg.Timing.DirOccupancy,
		"MemAccess":    cfg.Timing.MemAccess,
		"CacheAccess":  cfg.Timing.CacheAccess,
		"LocalHop":     cfg.Timing.LocalHop,
		"BarrierExit":  cfg.BarrierExit,
		"LockTransfer": cfg.LockTransfer,
		"MinLatency":   cfg.NetCfg.SendOccupancy + cfg.NetCfg.FlightLatency + cfg.NetCfg.RecvOccupancy,
		"RTLFlightMax": 320 + cfg.NetCfg.SendOccupancy + cfg.NetCfg.RecvOccupancy,
	}
	for name, c := range lat {
		if c >= sim.WheelSpan {
			t.Errorf("%s = %d cycles does not fit the near wheel (WheelSpan %d)", name, c, sim.WheelSpan)
		}
	}
}

// TestMachineRearmZeroAllocs guards the re-arm path: once a machine has
// run, Reset re-arms it for the next workload without touching the heap
// (tables, queues, dense slices, and pools are all retained).
func TestMachineRearmZeroAllocs(t *testing.T) {
	m := New(arenaCfg("swi"))
	progs := arenaProgs("pc", 4, 7)
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		m.Reset()
	})
	if avg != 0 {
		t.Errorf("Machine.Reset allocates %.2f/op, want 0", avg)
	}
	// The machine must still be runnable (and correct) after the guard's
	// resets.
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
}
