// Package machine assembles the full simulated CC-NUMA: in-order
// processors executing per-node programs of memory accesses, compute
// delays, and synchronization, on top of the coherence protocol
// (internal/protocol), with predictors (internal/core) attached at every
// directory.
//
// The machine produces the measurements behind every experiment in the
// paper: execution-time breakdowns (Figure 9), request/speculation counts
// (Table 5), and — through passively attached predictors — accuracy,
// coverage, and storage occupancy (Figures 7-8, Tables 3-4).
package machine
