// Package machine assembles the full simulated CC-NUMA: in-order
// processors executing per-node programs of memory accesses, compute
// delays, and synchronization, on top of the coherence protocol
// (internal/protocol), with predictors (internal/core) attached at every
// directory.
//
// The machine produces the measurements behind every experiment in the
// paper: execution-time breakdowns (Figure 9), request/speculation counts
// (Table 5), and — through passively attached predictors — accuracy,
// coverage, and storage occupancy (Figures 7-8, Tables 3-4).
//
// # Run arenas
//
// Building a machine is the expensive part of a study cell: per-node
// predictors, protocol tables, and processors all have to be allocated
// before the first cycle runs. Machine.Reset re-arms a machine that has
// completed a run — kernel clock, network, protocol state, predictors,
// barriers, locks — to its just-constructed state while retaining every
// table, dense slice, queue, and event pool, and is observably
// equivalent to building fresh (pinned by the arena reset-equivalence
// tests). Arena packages that into a per-sweep-worker cache keyed by
// configuration shape: Arena.Run fetches or builds the machine for a
// Config and replays each job through it, so an app×mode×seed matrix
// pays construction once per distinct configuration per worker instead
// of once per cell. Network timing is not part of a machine's identity —
// Arena reconfigures the interconnect in place (ReconfigureNetwork), so
// a latency sweep like RTLSweep shares one machine per mode across all
// its sweep points. Arenas are single-goroutine; sweep.MapWorker is the
// intended carrier.
package machine
