package machine

import (
	"errors"
	"fmt"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/network"
	"specdsm/internal/protocol"
	"specdsm/internal/sim"
)

// OpKind enumerates program operations.
type OpKind uint8

const (
	// OpRead loads one coherence block.
	OpRead OpKind = iota
	// OpWrite stores to one coherence block.
	OpWrite
	// OpCompute advances the processor's clock without memory traffic.
	OpCompute
	// OpBarrier blocks until every processor reaches the same barrier op.
	OpBarrier
	// OpLock acquires a global queue lock (FIFO).
	OpLock
	// OpUnlock releases a lock held by this processor.
	OpUnlock
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCompute:
		return "compute"
	case OpBarrier:
		return "barrier"
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	default:
		return "?"
	}
}

// Op is one program operation.
type Op struct {
	Kind   OpKind
	Addr   mem.BlockAddr // OpRead/OpWrite
	Cycles sim.Cycle     // OpCompute
	ID     int           // OpLock/OpUnlock lock identifier
}

// Read returns a load op.
func Read(addr mem.BlockAddr) Op { return Op{Kind: OpRead, Addr: addr} }

// Write returns a store op.
func Write(addr mem.BlockAddr) Op { return Op{Kind: OpWrite, Addr: addr} }

// Compute returns a compute-delay op.
func Compute(cycles sim.Cycle) Op { return Op{Kind: OpCompute, Cycles: cycles} }

// Barrier returns a global barrier op.
func Barrier() Op { return Op{Kind: OpBarrier} }

// Lock returns a lock-acquire op.
func Lock(id int) Op { return Op{Kind: OpLock, ID: id} }

// Unlock returns a lock-release op.
func Unlock(id int) Op { return Op{Kind: OpUnlock, ID: id} }

// Program is the op sequence executed by one processor.
type Program []Op

// PredictorSpec names a predictor variant to instantiate per node.
// Confidence > 0 gates the speculation surfaces on 2-bit per-entry
// confidence counters (an extension; 0 is the paper's behaviour).
type PredictorSpec struct {
	Kind       core.Kind
	Depth      int
	Confidence int
}

func (s PredictorSpec) String() string {
	if s.Confidence > 0 {
		return fmt.Sprintf("%v(d=%d,conf=%d)", s.Kind, s.Depth, s.Confidence)
	}
	return fmt.Sprintf("%v(d=%d)", s.Kind, s.Depth)
}

// build instantiates the predictor for a machine of the given node count
// (wide machines need vector-interning predictors; see core.NewSized).
func (s PredictorSpec) build(nodes int) *core.TwoLevel {
	p := core.NewSized(s.Kind, s.Depth, nodes)
	p.SetConfidenceThreshold(s.Confidence)
	return p
}

// Config describes one machine instantiation.
type Config struct {
	// Nodes is the machine size; the paper simulates 16.
	Nodes int
	// Timing and NetCfg default to Table 1 values when zero.
	Timing protocol.Timing
	NetCfg network.Config
	// Observers are passive predictor variants instantiated at every
	// node's directory; their stats are summed machine-wide.
	Observers []PredictorSpec
	// Active enables speculation with this predictor variant (the paper
	// uses VMSP depth 1).
	Active *PredictorSpec
	// EnableFR / EnableSWI select the speculative DSM flavor: FR-DSM sets
	// only EnableFR; SWI-DSM sets both (§7.4).
	EnableFR  bool
	EnableSWI bool
	// EnableSpecUpgrade turns on the migratory extension.
	EnableSpecUpgrade bool
	// CacheCapacity bounds valid cache lines per node (0 = unbounded,
	// the paper's assumption).
	CacheCapacity int
	// DisableCoherenceCheck turns the version checker off (benches).
	DisableCoherenceCheck bool
	// BarrierExit is the release latency after the last arrival.
	BarrierExit sim.Cycle
	// LockTransfer is the hand-off latency for the abstract queue lock.
	LockTransfer sim.Cycle
	// MaxEvents guards against runaway simulations (0 = default guard).
	MaxEvents uint64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Timing == (protocol.Timing{}) {
		c.Timing = protocol.DefaultTiming()
	}
	if c.NetCfg == (network.Config{}) {
		c.NetCfg = network.DefaultConfig()
	}
	if c.BarrierExit == 0 {
		c.BarrierExit = 140 // one network traversal + dispatch
	}
	if c.LockTransfer == 0 {
		c.LockTransfer = 300 // remote lock hand-off
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 2_000_000_000
	}
	return c
}

// ProcStats is the per-processor time breakdown. Figure 9 reports two
// buckets: computation (Compute+Sync) and remote-request waiting (ReqWait).
type ProcStats struct {
	Compute  sim.Cycle // compute ops, cache hits, local memory accesses
	Sync     sim.Cycle // barrier and lock waiting
	ReqWait  sim.Cycle // coherence-transaction waiting
	Finish   sim.Cycle
	Accesses uint64
	Hits     uint64
	SpecHits uint64
	Locals   uint64
	Remotes  uint64
}

// Busy is the Figure 9 "computation" bucket.
func (p ProcStats) Busy() sim.Cycle { return p.Compute + p.Sync }

// Result aggregates one run.
type Result struct {
	// Cycles is the makespan (last processor finish time).
	Cycles sim.Cycle
	Procs  []ProcStats
	// Summed time buckets across processors.
	TotalCompute sim.Cycle
	TotalSync    sim.Cycle
	TotalReqWait sim.Cycle
	// Machine-wide protocol counters.
	Dir   protocol.DirStats
	Cache protocol.CacheStats
	// Predictor measurements, summed across nodes, keyed by spec.
	PredStats  map[PredictorSpec]core.Stats
	PredCensus map[PredictorSpec]core.Census
	// Active-predictor measurements when speculation is on.
	ActiveStats  core.Stats
	ActiveCensus core.Census
	// UnreferencedSpec counts speculative lines never referenced by the
	// end of the run (misspeculations not yet caught by invalidation).
	UnreferencedSpec uint64
	Network          network.Stats
	Events           uint64
}

// RequestShare is the fraction of aggregate processor time spent waiting
// on coherence transactions (the dark bar segment of Figure 9).
func (r *Result) RequestShare() float64 {
	total := r.TotalCompute + r.TotalSync + r.TotalReqWait
	if total == 0 {
		return 0
	}
	return float64(r.TotalReqWait) / float64(total)
}

// Machine is one ready-to-run simulated CC-NUMA.
type Machine struct {
	cfg       Config
	kernel    *sim.Kernel
	sys       *protocol.System
	observers [][]core.Predictor // [node][spec index]
	actives   []core.Predictor   // [node], nil entries when inactive
	procs     []*proc
	barriers  map[int]*barrier
	locks     map[int]*lock
	running   int
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	k := sim.NewKernel()
	m := &Machine{
		cfg:      cfg,
		kernel:   k,
		barriers: make(map[int]*barrier),
		locks:    make(map[int]*lock),
	}
	opts := make([]protocol.Options, cfg.Nodes)
	m.observers = make([][]core.Predictor, cfg.Nodes)
	m.actives = make([]core.Predictor, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		var obs []core.Predictor
		for _, spec := range cfg.Observers {
			obs = append(obs, spec.build(cfg.Nodes))
		}
		m.observers[i] = obs
		var active core.Predictor
		if cfg.Active != nil {
			active = cfg.Active.build(cfg.Nodes)
			m.actives[i] = active
		}
		opts[i] = protocol.Options{
			Observers:         obs,
			Active:            active,
			EnableFR:          cfg.EnableFR,
			EnableSWI:         cfg.EnableSWI,
			EnableSpecUpgrade: cfg.EnableSpecUpgrade,
			CacheCapacity:     cfg.CacheCapacity,
		}
	}
	m.sys = protocol.NewSystem(k, cfg.Nodes, cfg.Timing, cfg.NetCfg, opts)
	if cfg.DisableCoherenceCheck {
		m.sys.SetCoherenceChecking(false)
	}
	return m
}

// System exposes the underlying protocol system (tests, examples).
func (m *Machine) System() *protocol.System { return m.sys }

// Kernel exposes the simulation clock (e.g., for trace recorders).
func (m *Machine) Kernel() *sim.Kernel { return m.kernel }

// AttachObserver adds one pre-instantiated passive observer to every
// node's directory, seeing the machine-wide directory message stream in
// processing order. Must be called before Run.
func (m *Machine) AttachObserver(p core.Predictor) {
	for i := 0; i < m.cfg.Nodes; i++ {
		m.sys.Node(mem.NodeID(i)).AddObserver(p)
	}
}

// Reset re-arms a machine that has completed a run so it can Run again:
// the kernel clock, network, protocol system, predictors, barriers, and
// locks all return to their just-constructed state while retaining their
// storage (tables, dense slices, queues, event pools). A reset machine
// is observably equivalent to a freshly built one with the same Config —
// the contract pinned by the arena reset-equivalence tests — which is
// what lets Arena replay many workloads through one machine without
// paying construction again. Call only after Run has returned.
func (m *Machine) Reset() {
	m.kernel.Reset()
	m.sys.Reset()
	for _, obs := range m.observers {
		for _, p := range obs {
			p.Reset()
		}
	}
	for _, a := range m.actives {
		if a != nil {
			a.Reset()
		}
	}
	for _, b := range m.barriers {
		b.waiters = b.waiters[:0]
	}
	for _, l := range m.locks {
		l.held = false
		l.owner = 0
		l.queue = l.queue[:0]
	}
	m.running = 0
}

// ReconfigureNetwork swaps the machine's interconnect timing in place, so
// an arena can replay one built machine across sweep points that differ
// only in network configuration (the RTL sweep's flight-latency axis).
// Call between runs, next to Reset; the machine then behaves exactly like
// one freshly built with the new NetCfg.
func (m *Machine) ReconfigureNetwork(cfg network.Config) {
	m.cfg.NetCfg = cfg
	m.sys.ReconfigureNetwork(cfg)
}

// Run executes one program per node to completion and returns the
// aggregated result. It errors if programs deadlock (unbalanced barriers,
// abandoned locks) or the event guard trips. Run may be called again on
// the same machine after Reset; processors are then re-armed in place
// rather than rebuilt.
func (m *Machine) Run(programs []Program) (*Result, error) {
	if len(programs) != m.cfg.Nodes {
		return nil, fmt.Errorf("machine: %d programs for %d nodes", len(programs), m.cfg.Nodes)
	}
	if m.procs == nil {
		m.procs = make([]*proc, m.cfg.Nodes)
		for i := range m.procs {
			m.procs[i] = newProc(m, mem.NodeID(i), nil)
		}
	}
	for i := range programs {
		p := m.procs[i]
		p.rearm(programs[i])
		m.running++
		m.kernel.At(0, p.stepFn)
	}
	executed := m.kernel.Run(m.cfg.MaxEvents)
	if executed >= m.cfg.MaxEvents {
		return nil, fmt.Errorf("machine: event guard tripped at %d events", executed)
	}
	for _, p := range m.procs {
		if !p.finished {
			return nil, fmt.Errorf("machine: processor %d deadlocked at pc=%d (%v)",
				p.id, p.pc, opAt(p.prog, p.pc))
		}
	}
	if v := m.sys.Violations(); len(v) != 0 {
		return nil, fmt.Errorf("machine: coherence violations: %v", v)
	}
	if err := m.sys.CheckQuiescent(); err != nil {
		return nil, err
	}
	if !m.cfg.DisableCoherenceCheck {
		if err := m.sys.AuditConsistency(); err != nil {
			return nil, err
		}
	}
	return m.collect(executed), nil
}

func opAt(prog Program, pc int) any {
	if pc-1 >= 0 && pc-1 < len(prog) {
		return prog[pc-1]
	}
	return "end"
}

func (m *Machine) collect(events uint64) *Result {
	r := &Result{
		PredStats:  make(map[PredictorSpec]core.Stats),
		PredCensus: make(map[PredictorSpec]core.Census),
		Network:    m.sys.NetworkStats(),
		Events:     events,
	}
	for _, p := range m.procs {
		ps := ProcStats{
			Compute:  p.compute,
			Sync:     p.sync,
			ReqWait:  p.reqWait,
			Finish:   p.finishTime,
			Accesses: p.accesses,
			Hits:     p.hits,
			SpecHits: p.specHits,
			Locals:   p.locals,
			Remotes:  p.remotes,
		}
		r.Procs = append(r.Procs, ps)
		r.TotalCompute += p.compute
		r.TotalSync += p.sync
		r.TotalReqWait += p.reqWait
		if p.finishTime > r.Cycles {
			r.Cycles = p.finishTime
		}
	}
	for i := 0; i < m.cfg.Nodes; i++ {
		node := m.sys.Node(mem.NodeID(i))
		addDirStats(&r.Dir, node.DirStats())
		addCacheStats(&r.Cache, node.CacheStats())
		r.UnreferencedSpec += node.SweepUnreferencedSpec()
		for j, spec := range m.cfg.Observers {
			p := m.observers[i][j]
			r.PredStats[spec] = addStats(r.PredStats[spec], p.Stats())
			r.PredCensus[spec] = addCensus(r.PredCensus[spec], p.Census(), spec.Depth)
		}
		if a := m.actives[i]; a != nil {
			r.ActiveStats = addStats(r.ActiveStats, a.Stats())
			r.ActiveCensus = addCensus(r.ActiveCensus, a.Census(), m.cfg.Active.Depth)
		}
	}
	return r
}

func addStats(a, b core.Stats) core.Stats {
	a.Tracked += b.Tracked
	a.Predicted += b.Predicted
	a.Correct += b.Correct
	return a
}

func addCensus(a, b core.Census, depth int) core.Census {
	a.Blocks += b.Blocks
	a.Entries += b.Entries
	a.HistoryDepth = depth
	return a
}

func addDirStats(dst *protocol.DirStats, s protocol.DirStats) {
	dst.Reads += s.Reads
	dst.Writes += s.Writes
	dst.Upgrades += s.Upgrades
	dst.InvalsSent += s.InvalsSent
	dst.RecallsSent += s.RecallsSent
	dst.AcksReceived += s.AcksReceived
	dst.Writebacks += s.Writebacks
	dst.QueuedReqs += s.QueuedReqs
	dst.UpgradeGrants += s.UpgradeGrants
	dst.SpecReadsFR += s.SpecReadsFR
	dst.SpecReadsSWI += s.SpecReadsSWI
	dst.SpecReadUnused += s.SpecReadUnused
	dst.SWIRecalls += s.SWIRecalls
	dst.SWIPremature += s.SWIPremature
	dst.SpecUpgrades += s.SpecUpgrades
	dst.SpecUpgradeMisfires += s.SpecUpgradeMisfires
}

func addCacheStats(dst *protocol.CacheStats, s protocol.CacheStats) {
	dst.Hits += s.Hits
	dst.SpecHits += s.SpecHits
	dst.LocalAccesses += s.LocalAccesses
	dst.ProtocolReads += s.ProtocolReads
	dst.ProtocolWrites += s.ProtocolWrites
	dst.InvalsReceived += s.InvalsReceived
	dst.RecallsReceived += s.RecallsReceived
	dst.SpecInstalled += s.SpecInstalled
	dst.SpecDropped += s.SpecDropped
	dst.SpecReferenced += s.SpecReferenced
	dst.Evictions += s.Evictions
	dst.EvictionWritebacks += s.EvictionWritebacks
	dst.SpecDeclinedFull += s.SpecDeclinedFull
}

// ErrDeadlock reports a workload that cannot make progress.
var ErrDeadlock = errors.New("machine: deadlock")
