package machine

import (
	"testing"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

func smallCfg(nodes int) Config {
	return Config{Nodes: nodes}
}

func TestComputeOnlyProgram(t *testing.T) {
	m := New(smallCfg(2))
	progs := []Program{
		{Compute(100), Compute(50)},
		{Compute(30)},
	}
	r, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Procs[0].Compute != 150 || r.Procs[1].Compute != 30 {
		t.Fatalf("compute = %d/%d", r.Procs[0].Compute, r.Procs[1].Compute)
	}
	if r.Cycles != 150 {
		t.Fatalf("makespan = %d, want 150", r.Cycles)
	}
	if r.TotalReqWait != 0 {
		t.Fatalf("reqWait = %d for compute-only run", r.TotalReqWait)
	}
}

func TestAccessAccounting(t *testing.T) {
	m := New(smallCfg(2))
	local := mem.MakeAddr(0, 0)
	remote := mem.MakeAddr(1, 0)
	progs := []Program{
		{Read(local), Read(local), Read(remote)},
		{},
	}
	r, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Procs[0]
	if p.Locals != 1 || p.Hits != 1 || p.Remotes != 1 {
		t.Fatalf("locals/hits/remotes = %d/%d/%d, want 1/1/1", p.Locals, p.Hits, p.Remotes)
	}
	// 104 (local) + 1 (hit) compute; 418 remote wait.
	if p.Compute != 105 {
		t.Fatalf("compute = %d, want 105", p.Compute)
	}
	if p.ReqWait != 418 {
		t.Fatalf("reqWait = %d, want 418", p.ReqWait)
	}
	if share := r.RequestShare(); share < 0.7 {
		t.Fatalf("request share = %.2f, want > 0.7 for this program", share)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	m := New(smallCfg(3))
	progs := []Program{
		{Compute(1000), Barrier(), Compute(10)},
		{Compute(10), Barrier(), Compute(10)},
		{Compute(10), Barrier(), Compute(10)},
	}
	r, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	// Fast processors wait ~990 cycles at the barrier.
	if r.Procs[1].Sync < 900 || r.Procs[2].Sync < 900 {
		t.Fatalf("sync = %d/%d, want ~990", r.Procs[1].Sync, r.Procs[2].Sync)
	}
	if r.Procs[0].Sync != 0 {
		t.Fatalf("last arriver sync = %d, want 0", r.Procs[0].Sync)
	}
	// All finish after the barrier release.
	for i, p := range r.Procs {
		if p.Finish < 1000 {
			t.Fatalf("proc %d finished at %d, before barrier release", i, p.Finish)
		}
	}
}

func TestBarrierReuseAcrossPhases(t *testing.T) {
	m := New(smallCfg(2))
	progs := []Program{
		{Barrier(), Compute(5), Barrier(), Compute(5), Barrier()},
		{Barrier(), Compute(500), Barrier(), Compute(5), Barrier()},
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
}

func TestUnbalancedBarrierDeadlocks(t *testing.T) {
	m := New(smallCfg(2))
	progs := []Program{
		{Barrier(), Barrier()},
		{Barrier()},
	}
	// Proc 1 finishes after one barrier; proc 0 then waits alone at its
	// second barrier — which releases because only one runner remains.
	// That is the permissive epilogue behaviour; a true deadlock needs a
	// proc blocked while others also block on something unsatisfiable.
	if _, err := m.Run(progs); err != nil {
		t.Fatalf("permissive epilogue should not deadlock: %v", err)
	}

	m = New(smallCfg(2))
	progs = []Program{
		{Lock(1), Lock(2)}, // holds 1, wants 2
		{Lock(2), Lock(1)}, // holds 2, wants 1
	}
	if _, err := m.Run(progs); err == nil {
		t.Fatal("expected deadlock error for lock cycle")
	}
}

func TestLockMutualExclusionFIFO(t *testing.T) {
	m := New(smallCfg(3))
	blk := mem.MakeAddr(0, 0)
	progs := []Program{
		{Lock(7), Write(blk), Compute(200), Unlock(7)},
		{Compute(10), Lock(7), Write(blk), Unlock(7)},
		{Compute(20), Lock(7), Write(blk), Unlock(7)},
	}
	r, err := m.Run(progs)
	if err != nil {
		t.Fatal(err)
	}
	// Later lockers wait for earlier critical sections.
	if r.Procs[1].Sync == 0 || r.Procs[2].Sync == 0 {
		t.Fatalf("contended lockers did not wait: %d/%d", r.Procs[1].Sync, r.Procs[2].Sync)
	}
	if r.Procs[2].Sync < r.Procs[1].Sync {
		t.Fatalf("FIFO violated: proc2 waited %d < proc1 %d", r.Procs[2].Sync, r.Procs[1].Sync)
	}
	view := m.System().InspectEntry(blk)
	if view.Version != 3 {
		t.Fatalf("version = %d, want 3 serialized writes", view.Version)
	}
}

func TestUnlockWithoutHoldPanics(t *testing.T) {
	m := New(smallCfg(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = m.Run([]Program{{Unlock(3)}})
}

func TestProgramCountMismatch(t *testing.T) {
	m := New(smallCfg(2))
	if _, err := m.Run([]Program{{}}); err == nil {
		t.Fatal("expected error for wrong program count")
	}
}

// producerConsumerPrograms builds a small em3d-like workload: node 0 owns
// and writes blocks; the consumer nodes read them every iteration.
// Consumers are staggered (as real consumers are, by their own compute) so
// that First-Read forwarding has a window: a forward that races with an
// already-in-flight read is dropped by the protocol.
func producerConsumerPrograms(nodes, blocks, iters int) []Program {
	progs := make([]Program, nodes)
	addrs := make([]mem.BlockAddr, blocks)
	for b := range addrs {
		addrs[b] = mem.MakeAddr(0, uint64(b))
	}
	for it := 0; it < iters; it++ {
		for b := range addrs {
			progs[0] = append(progs[0], Write(addrs[b]))
		}
		progs[0] = append(progs[0], Compute(500), Barrier())
		for n := 1; n < nodes; n++ {
			progs[n] = append(progs[n], Compute(sim.Cycle(n)*1500))
			for b := range addrs {
				progs[n] = append(progs[n], Read(addrs[b]), Compute(100))
			}
		}
		for n := 1; n < nodes; n++ {
			progs[n] = append(progs[n], Barrier())
		}
		for n := 0; n < nodes; n++ {
			progs[n] = append(progs[n], Barrier())
		}
	}
	return progs
}

func TestSpeculationReducesRequestWait(t *testing.T) {
	run := func(fr, swi bool) *Result {
		cfg := Config{Nodes: 4, EnableFR: fr, EnableSWI: swi}
		if fr || swi {
			cfg.Active = &PredictorSpec{Kind: core.KindVMSP, Depth: 1}
		}
		m := New(cfg)
		r, err := m.Run(producerConsumerPrograms(4, 8, 6))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(false, false)
	fr := run(true, false)
	swi := run(true, true)

	if base.TotalReqWait == 0 {
		t.Fatal("base run has no request waiting; workload broken")
	}
	if fr.TotalReqWait >= base.TotalReqWait {
		t.Fatalf("FR did not reduce request wait: base %d, fr %d", base.TotalReqWait, fr.TotalReqWait)
	}
	if swi.TotalReqWait >= fr.TotalReqWait {
		t.Fatalf("SWI did not beat FR: fr %d, swi %d", fr.TotalReqWait, swi.TotalReqWait)
	}
	if swi.Cycles >= base.Cycles {
		t.Fatalf("SWI-DSM not faster: base %d, swi %d", base.Cycles, swi.Cycles)
	}
	if swi.Dir.SpecReadsSWI == 0 || fr.Dir.SpecReadsFR == 0 {
		t.Fatalf("speculation counters empty: fr=%d swi=%d", fr.Dir.SpecReadsFR, swi.Dir.SpecReadsSWI)
	}
	if swi.Cache.SpecHits == 0 {
		t.Fatal("no speculative hits recorded")
	}
}

func TestObserversCollectStats(t *testing.T) {
	specs := []PredictorSpec{
		{Kind: core.KindCosmos, Depth: 1},
		{Kind: core.KindMSP, Depth: 1},
		{Kind: core.KindVMSP, Depth: 1},
	}
	m := New(Config{Nodes: 4, Observers: specs})
	r, err := m.Run(producerConsumerPrograms(4, 8, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		st, ok := r.PredStats[s]
		if !ok || st.Tracked == 0 {
			t.Fatalf("no stats for %v", s)
		}
		c := r.PredCensus[s]
		if c.Blocks == 0 || c.Entries == 0 {
			t.Fatalf("no census for %v", s)
		}
	}
	cosmos := r.PredStats[specs[0]]
	msp := r.PredStats[specs[1]]
	if cosmos.Tracked <= msp.Tracked {
		t.Fatalf("Cosmos should track more messages: %d vs %d", cosmos.Tracked, msp.Tracked)
	}
	// In this clean producer/consumer workload all predictors do well, and
	// MSP/VMSP at least as well as Cosmos.
	if r.PredStats[specs[2]].Accuracy() < r.PredStats[specs[0]].Accuracy()-0.05 {
		t.Fatalf("VMSP accuracy %.2f far below Cosmos %.2f",
			r.PredStats[specs[2]].Accuracy(), r.PredStats[specs[0]].Accuracy())
	}
}

func TestResultAggregates(t *testing.T) {
	m := New(smallCfg(2))
	r, err := m.Run([]Program{
		{Write(mem.MakeAddr(1, 0))},
		{Compute(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dir.Writes != 1 {
		t.Fatalf("dir writes = %d", r.Dir.Writes)
	}
	if r.Network.Sent == 0 {
		t.Fatal("no network traffic counted")
	}
	if r.Events == 0 {
		t.Fatal("no events counted")
	}
}

func TestEventGuard(t *testing.T) {
	m := New(Config{Nodes: 1, MaxEvents: 10})
	_, err := m.Run([]Program{make(Program, 100, 100)})
	// 100 zero-cycle compute ops exceed the 10-event guard... each op is
	// one event, so expect the guard error.
	if err == nil {
		t.Fatal("expected event-guard error")
	}
}
