package machine

import (
	"testing"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/trace"
)

func TestAttachObserverSeesAllDirectories(t *testing.T) {
	m := New(Config{Nodes: 4})
	rec := trace.NewRecorder(m.Kernel(), "test", 4, 0)
	m.AttachObserver(rec)
	// Traffic to two different homes.
	progs := []Program{
		{Write(mem.MakeAddr(1, 0)), Read(mem.MakeAddr(2, 0))},
		{Read(mem.MakeAddr(1, 0))},
		{},
		{},
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if len(tr.Events) == 0 {
		t.Fatal("recorder saw nothing")
	}
	homes := map[mem.NodeID]bool{}
	for _, e := range tr.Events {
		homes[mem.BlockAddr(e.Addr).Home()] = true
	}
	if !homes[1] || !homes[2] {
		t.Fatalf("recorder missed a directory: %v", homes)
	}
	// Events carry nonzero cycles (stamped by the machine's kernel).
	var sawNonzero bool
	for _, e := range tr.Events {
		if e.Cycle > 0 {
			sawNonzero = true
		}
	}
	if !sawNonzero {
		t.Fatal("events not clock-stamped")
	}
}

func TestSpecHitLatencyAccounting(t *testing.T) {
	cfg := Config{Nodes: 4, EnableFR: true, EnableSWI: true}
	cfg.Active = &PredictorSpec{Kind: core.KindVMSP, Depth: 1}
	m := New(cfg)
	r, err := m.Run(producerConsumerPrograms(4, 8, 6))
	if err != nil {
		t.Fatal(err)
	}
	var specHits uint64
	for _, p := range r.Procs {
		specHits += p.SpecHits
	}
	if specHits == 0 {
		t.Fatal("no spec hits")
	}
	if specHits != r.Cache.SpecReferenced {
		t.Fatalf("proc spec hits %d != cache referenced %d", specHits, r.Cache.SpecReferenced)
	}
	// Spec hits must not be double-counted as ordinary hits or remotes.
	var total uint64
	for _, p := range r.Procs {
		total += p.Hits + p.SpecHits + p.Locals + p.Remotes
		if p.Accesses != p.Hits+p.SpecHits+p.Locals+p.Remotes {
			t.Fatalf("access classes don't sum: %+v", p)
		}
	}
	if total == 0 {
		t.Fatal("no accesses")
	}
}

func TestPredictorSpecString(t *testing.T) {
	s := PredictorSpec{Kind: core.KindVMSP, Depth: 2}
	if s.String() != "VMSP(d=2)" {
		t.Fatalf("String = %q", s.String())
	}
	s.Confidence = 2
	if s.String() != "VMSP(d=2,conf=2)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestConfidenceSpecBuilds(t *testing.T) {
	cfg := Config{Nodes: 4, EnableFR: true}
	cfg.Active = &PredictorSpec{Kind: core.KindVMSP, Depth: 1, Confidence: 3}
	m := New(cfg)
	r, err := m.Run(producerConsumerPrograms(4, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	// With a max-confidence gate and only 3 iterations, forwards are rare
	// or absent — but the run must be correct either way.
	if r.Cycles == 0 {
		t.Fatal("degenerate run")
	}
}
