package machine

import (
	"fmt"

	"specdsm/internal/mem"
	"specdsm/internal/protocol"
	"specdsm/internal/sim"
)

// proc is one in-order processor: it executes its program sequentially,
// blocking on every memory access until completion (the paper's simulated
// processors stall on remote accesses; speculation's benefit is turning
// those stalls into local hits).
type proc struct {
	m    *Machine
	id   mem.NodeID
	prog Program
	pc   int

	compute  sim.Cycle
	sync     sim.Cycle
	reqWait  sim.Cycle
	accesses uint64
	hits     uint64
	specHits uint64
	locals   uint64
	remotes  uint64

	finished   bool
	finishTime sim.Cycle
	waitStart  sim.Cycle // barrier/lock arrival time

	// stepFn and accessDone are method values bound once at construction:
	// a method-value expression like p.step allocates a closure at every
	// evaluation, and step/access completion run once per program op.
	stepFn     func()
	accessDone func(protocol.AccessOutcome)
}

// newProc builds a processor with its event callbacks pre-bound.
func newProc(m *Machine, id mem.NodeID, prog Program) *proc {
	p := &proc{m: m, id: id, prog: prog}
	p.stepFn = p.step
	p.accessDone = p.onAccessDone
	return p
}

// rearm points the processor at a new program and zeroes all execution
// state, leaving the pre-bound callbacks in place. A re-armed processor
// behaves identically to a freshly constructed one.
func (p *proc) rearm(prog Program) {
	p.prog = prog
	p.pc = 0
	p.compute, p.sync, p.reqWait = 0, 0, 0
	p.accesses, p.hits, p.specHits, p.locals, p.remotes = 0, 0, 0, 0, 0
	p.finished = false
	p.finishTime = 0
	p.waitStart = 0
}

func (p *proc) step() {
	if p.pc >= len(p.prog) {
		p.finished = true
		p.finishTime = p.m.kernel.Now()
		p.m.running--
		// A processor finishing can satisfy a barrier among the remaining
		// runners (workloads where epilogues differ in barrier counts).
		p.m.recheckBarriers()
		return
	}
	op := p.prog[p.pc]
	p.pc++
	switch op.Kind {
	case OpCompute:
		p.compute += op.Cycles
		p.m.kernel.After(op.Cycles, p.stepFn)
	case OpRead, OpWrite:
		p.accesses++
		p.m.sys.Node(p.id).Access(op.Kind == OpWrite, op.Addr, p.accessDone)
	case OpBarrier:
		p.waitStart = p.m.kernel.Now()
		p.m.barrier(op.ID).arrive(p)
	case OpLock:
		p.waitStart = p.m.kernel.Now()
		p.m.lock(op.ID).acquire(p)
	case OpUnlock:
		p.m.lock(op.ID).release(p)
		p.step()
	default:
		panic(fmt.Sprintf("machine: unknown op kind %v", op.Kind))
	}
}

// onAccessDone classifies a completed memory access and resumes the
// program.
func (p *proc) onAccessDone(out protocol.AccessOutcome) {
	switch out.Class {
	case protocol.ClassHit:
		p.hits++
		p.compute += out.Latency
	case protocol.ClassSpecHit:
		p.specHits++
		p.compute += out.Latency
	case protocol.ClassLocal:
		p.locals++
		p.compute += out.Latency
	case protocol.ClassProtocol:
		p.remotes++
		p.reqWait += out.Latency
	}
	p.step()
}

// barrier is a centralized all-processor barrier. Waiting time counts as
// synchronization (folded into Figure 9's computation bucket, per the
// paper's definition).
type barrier struct {
	m       *Machine
	waiters []*proc
}

func (m *Machine) barrier(id int) *barrier {
	b := m.barriers[id]
	if b == nil {
		b = &barrier{m: m}
		m.barriers[id] = b
	}
	return b
}

func (b *barrier) arrive(p *proc) {
	b.waiters = append(b.waiters, p)
	b.tryRelease()
}

func (b *barrier) tryRelease() {
	if len(b.waiters) == 0 || len(b.waiters) < b.m.running {
		return
	}
	now := b.m.kernel.Now()
	ws := b.waiters
	b.waiters = nil
	for _, w := range ws {
		w.sync += now - w.waitStart
		b.m.kernel.After(b.m.cfg.BarrierExit, w.stepFn)
	}
}

func (m *Machine) recheckBarriers() {
	for _, b := range m.barriers {
		b.tryRelease()
	}
}

// lock is an abstract FIFO queue lock with a fixed hand-off latency,
// modeling a contended remote lock without routing it through the
// coherence protocol.
type lock struct {
	m     *Machine
	held  bool
	owner mem.NodeID
	queue []*proc
}

func (m *Machine) lock(id int) *lock {
	l := m.locks[id]
	if l == nil {
		l = &lock{m: m}
		m.locks[id] = l
	}
	return l
}

func (l *lock) acquire(p *proc) {
	if !l.held {
		l.held = true
		l.owner = p.id
		l.m.kernel.After(l.m.cfg.LockTransfer, p.stepFn)
		return
	}
	l.queue = append(l.queue, p)
}

func (l *lock) release(p *proc) {
	if !l.held || l.owner != p.id {
		panic(fmt.Sprintf("machine: processor %d releasing lock it does not hold", p.id))
	}
	if len(l.queue) == 0 {
		l.held = false
		return
	}
	next := l.queue[0]
	l.queue = l.queue[1:]
	l.owner = next.id
	now := l.m.kernel.Now()
	next.sync += now - next.waitStart
	l.m.kernel.After(l.m.cfg.LockTransfer, next.stepFn)
}
