package mem

// BlockMap is an insert-only open-addressed hash table from BlockAddr to
// a caller-managed dense index. It is the block-keyed analogue of the
// predictor's entryStore scheme (internal/core): callers keep their
// per-block records inline in a slice they append to, and the map holds
// stable int32 indices into that slice. The indices survive both slice
// growth and table rehashes, so a handle captured before either remains
// valid — unlike an interior pointer into a Go map value.
//
// The table never stores pointers and never deletes (per-block records
// are retired by clearing flags inside the caller's record, not by
// unmapping the block), so lookups are a probe over a flat slot array
// with no write barriers and no steady-state allocation. Reset clears
// the table but retains its storage, mirroring the clear-but-retain
// contract of the predictor tables.
//
// The zero value is an empty, ready-to-use table.
type BlockMap struct {
	// slots is the open-addressed array; len is always a power of two
	// (or zero before first use). A slot with idx == blockMapEmpty is
	// free; linear probing resolves collisions.
	slots []blockSlot
	n     int
}

type blockSlot struct {
	addr BlockAddr
	idx  int32
}

// blockMapEmpty marks a free slot. Caller indices must be non-negative.
const blockMapEmpty int32 = -1

// blockMapInitial is the slot count allocated on first Put.
const blockMapInitial = 64

// hashAddr finalizes a BlockAddr into a well-mixed 64-bit hash
// (splitmix64's finalizer). BlockAddr packs the home node into the top
// byte over small dense per-home indices, so the raw value's entropy is
// concentrated at both ends; the finalizer spreads it across all bits,
// which linear probing needs to avoid clustering.
func hashAddr(a BlockAddr) uint64 {
	x := uint64(a)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of mapped blocks.
func (m *BlockMap) Len() int { return m.n }

// Get returns the index mapped to addr.
func (m *BlockMap) Get(addr BlockAddr) (int32, bool) {
	if len(m.slots) == 0 {
		return 0, false
	}
	mask := uint64(len(m.slots) - 1)
	for i := hashAddr(addr) & mask; ; i = (i + 1) & mask {
		s := &m.slots[i]
		if s.idx == blockMapEmpty {
			return 0, false
		}
		if s.addr == addr {
			return s.idx, true
		}
	}
}

// Put maps addr to idx (idx must be >= 0). Mapping an addr twice
// panics: the caller's dense-slice discipline allocates exactly one
// record per block, so a re-map always indicates a bookkeeping bug.
func (m *BlockMap) Put(addr BlockAddr, idx int32) {
	if idx < 0 {
		panic("mem: BlockMap index must be non-negative")
	}
	if len(m.slots)*3 < (m.n+1)*4 { // grow beyond 3/4 load
		m.grow()
	}
	mask := uint64(len(m.slots) - 1)
	for i := hashAddr(addr) & mask; ; i = (i + 1) & mask {
		s := &m.slots[i]
		if s.idx == blockMapEmpty {
			s.addr, s.idx = addr, idx
			m.n++
			return
		}
		if s.addr == addr {
			panic("mem: BlockMap.Put of an already-mapped address")
		}
	}
}

// Reserve maps addr to next if absent, in one probe sequence. It returns
// the index now mapped to addr and whether this call created the mapping
// (created == false means addr was already present and idx is its
// existing mapping; next is ignored). It replaces the Get-miss-then-Put
// pattern on first-touch paths, which would otherwise walk the same
// probe chain twice per new block.
func (m *BlockMap) Reserve(addr BlockAddr, next int32) (idx int32, created bool) {
	if next < 0 {
		panic("mem: BlockMap index must be non-negative")
	}
	if len(m.slots)*3 < (m.n+1)*4 { // grow beyond 3/4 load
		m.grow()
	}
	mask := uint64(len(m.slots) - 1)
	for i := hashAddr(addr) & mask; ; i = (i + 1) & mask {
		s := &m.slots[i]
		if s.idx == blockMapEmpty {
			s.addr, s.idx = addr, next
			m.n++
			return next, true
		}
		if s.addr == addr {
			return s.idx, false
		}
	}
}

// grow doubles the slot array (or allocates the initial one) and
// rehashes every occupied slot. Indices are values, so rehashing moves
// nothing the caller can observe.
func (m *BlockMap) grow() {
	old := m.slots
	newLen := blockMapInitial
	if len(old) > 0 {
		newLen = len(old) * 2
	}
	m.slots = make([]blockSlot, newLen)
	for i := range m.slots {
		m.slots[i].idx = blockMapEmpty
	}
	mask := uint64(newLen - 1)
	for _, s := range old {
		if s.idx == blockMapEmpty {
			continue
		}
		for i := hashAddr(s.addr) & mask; ; i = (i + 1) & mask {
			if m.slots[i].idx == blockMapEmpty {
				m.slots[i] = s
				break
			}
		}
	}
}

// Reset empties the table but retains its slot storage, so a reused
// table reaches steady state without reallocating (the contract pinned
// by the reset-equivalence tests, mirroring internal/core's Reset).
func (m *BlockMap) Reset() {
	for i := range m.slots {
		m.slots[i].idx = blockMapEmpty
	}
	m.n = 0
}
