package mem

import (
	"math/rand"
	"testing"
)

// randAddrs returns a deterministic mix of addresses exercising every
// entropy corner of the encoding: dense low indices, scattered large
// indices, all homes, and address zero.
func randAddrs(n int) []BlockAddr {
	rng := rand.New(rand.NewSource(42))
	addrs := make([]BlockAddr, 0, n)
	addrs = append(addrs, MakeAddr(0, 0)) // the zero BlockAddr is valid
	for len(addrs) < n {
		home := NodeID(rng.Intn(MaxNodes))
		var idx uint64
		if rng.Intn(2) == 0 {
			idx = uint64(rng.Intn(1024))
		} else {
			idx = rng.Uint64() & (1<<52 - 1)
		}
		addrs = append(addrs, MakeAddr(home, idx))
	}
	return addrs
}

// TestBlockMapAgainstReferenceMap drives BlockMap and a plain Go map with
// the same insert/lookup sequence and requires identical answers.
func TestBlockMapAgainstReferenceMap(t *testing.T) {
	var bm BlockMap
	ref := map[BlockAddr]int32{}
	for i, addr := range randAddrs(5000) {
		if _, dup := ref[addr]; dup {
			continue
		}
		bm.Put(addr, int32(i))
		ref[addr] = int32(i)
	}
	if bm.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", bm.Len(), len(ref))
	}
	for addr, want := range ref {
		got, ok := bm.Get(addr)
		if !ok || got != want {
			t.Fatalf("Get(%v) = %d,%v, want %d,true", addr, got, ok, want)
		}
	}
	// Probe absent addresses (including near-collisions of present ones).
	for _, addr := range randAddrs(5000) {
		probe := MakeAddr(addr.Home(), addr.Index()^(1<<51))
		_, wantOK := ref[probe]
		if _, ok := bm.Get(probe); ok != wantOK {
			t.Fatalf("Get(%v) present=%v, want %v", probe, ok, wantOK)
		}
	}
}

// TestBlockMapResetThenReuseEquivalentToFresh pins the clear-but-retain
// contract, mirroring internal/core/reset_test.go: a table that has been
// filled and Reset must answer exactly like a fresh one.
func TestBlockMapResetThenReuseEquivalentToFresh(t *testing.T) {
	var fresh, reused BlockMap
	// Dirty the reused table with a different population, then Reset.
	for i, addr := range randAddrs(700) {
		if _, ok := reused.Get(addr); !ok {
			reused.Put(addr, int32(i))
		}
	}
	reused.Reset()
	if reused.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", reused.Len())
	}

	addrs := randAddrs(300)
	next := int32(0)
	for _, addr := range addrs {
		_, fOK := fresh.Get(addr)
		_, rOK := reused.Get(addr)
		if fOK != rOK {
			t.Fatalf("presence diverged for %v: fresh %v, reused %v", addr, fOK, rOK)
		}
		if !fOK {
			fresh.Put(addr, next)
			reused.Put(addr, next)
			next++
		}
	}
	for _, addr := range addrs {
		f, fOK := fresh.Get(addr)
		r, rOK := reused.Get(addr)
		if f != r || fOK != rOK {
			t.Fatalf("Get(%v): fresh %d,%v vs reused %d,%v", addr, f, fOK, r, rOK)
		}
	}
}

// TestBlockMapResetReusesStorage verifies the point of Reset: refilling a
// reset table with the same working set allocates nothing.
func TestBlockMapResetReusesStorage(t *testing.T) {
	var bm BlockMap
	addrs := randAddrs(500)
	fill := func() {
		for i, addr := range addrs {
			if _, ok := bm.Get(addr); !ok {
				bm.Put(addr, int32(i))
			}
		}
	}
	fill()
	avg := testing.AllocsPerRun(20, func() {
		bm.Reset()
		fill()
	})
	if avg != 0 {
		t.Errorf("reset-then-refill allocates %.2f/run, want 0", avg)
	}
}

// TestBlockMapGetZeroAllocs guards the hot lookup path.
func TestBlockMapGetZeroAllocs(t *testing.T) {
	var bm BlockMap
	addrs := randAddrs(64)
	for i, addr := range addrs {
		if _, ok := bm.Get(addr); !ok {
			bm.Put(addr, int32(i))
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, addr := range addrs {
			if _, ok := bm.Get(addr); !ok {
				t.Fatal("lost an address")
			}
		}
	})
	if avg != 0 {
		t.Errorf("Get allocates %.2f/run, want 0", avg)
	}
}

// TestBlockMapReserveAgainstReferenceMap drives Reserve and a plain Go
// map with the same first-touch sequence (including repeats) and requires
// identical answers: the first Reserve of an addr creates the mapping,
// every later one returns it untouched.
func TestBlockMapReserveAgainstReferenceMap(t *testing.T) {
	var bm BlockMap
	ref := map[BlockAddr]int32{}
	next := int32(0)
	addrs := randAddrs(3000)
	// Visit each address twice, interleaved, so half the Reserve calls hit.
	seq := append(append([]BlockAddr{}, addrs...), addrs...)
	for _, addr := range seq {
		idx, created := bm.Reserve(addr, next)
		want, present := ref[addr]
		if created == present {
			t.Fatalf("Reserve(%v) created=%v but reference present=%v", addr, created, present)
		}
		if created {
			if idx != next {
				t.Fatalf("Reserve(%v) created with idx %d, want %d", addr, idx, next)
			}
			ref[addr] = next
			next++
		} else if idx != want {
			t.Fatalf("Reserve(%v) = %d, want existing %d", addr, idx, want)
		}
	}
	if bm.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", bm.Len(), len(ref))
	}
	for addr, want := range ref {
		if got, ok := bm.Get(addr); !ok || got != want {
			t.Fatalf("Get(%v) = %d,%v after Reserve, want %d,true", addr, got, ok, want)
		}
	}
}

// TestBlockMapReserveHitZeroAllocs guards the steady-state Reserve path:
// once the working set is mapped, re-reserving it allocates nothing.
func TestBlockMapReserveHitZeroAllocs(t *testing.T) {
	var bm BlockMap
	addrs := randAddrs(64)
	next := int32(0)
	for _, addr := range addrs {
		if _, created := bm.Reserve(addr, next); created {
			next++
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, addr := range addrs {
			if _, created := bm.Reserve(addr, next); created {
				t.Fatal("steady-state Reserve created a mapping")
			}
		}
	})
	if avg != 0 {
		t.Errorf("Reserve hit allocates %.2f/run, want 0", avg)
	}
}

func TestBlockMapReservePanicsOnNegativeIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative index Reserve did not panic")
		}
	}()
	var bm BlockMap
	bm.Reserve(MakeAddr(1, 2), -1)
}

func TestBlockMapPutPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Put did not panic")
		}
	}()
	var bm BlockMap
	bm.Put(MakeAddr(1, 2), 0)
	bm.Put(MakeAddr(1, 2), 1)
}

func TestBlockMapPutPanicsOnNegativeIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative index Put did not panic")
		}
	}()
	var bm BlockMap
	bm.Put(MakeAddr(1, 2), -1)
}
