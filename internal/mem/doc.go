// Package mem defines the fundamental identifiers shared by every layer of
// the simulated distributed shared memory machine: node identifiers, block
// addresses, request kinds, and reader bit-vectors.
//
// The package is deliberately tiny and dependency-free; both the coherence
// protocol (internal/protocol) and the predictors (internal/core) build on
// it without depending on each other.
//
// Key invariants:
//
//   - A BlockAddr embeds its home node in its top bits, so home lookup is
//     a shift, not a table walk, at every layer.
//   - ReaderVec is a two-tier reader set. The inline tier is one machine
//     word covering nodes 0..63 (InlineNodes), so at the paper's machine
//     sizes set algebra on sharer lists and VMSP read-run symbols stays
//     branch-free bit arithmetic on a single uint64 and mutation never
//     allocates. Beyond that a hierarchical extension covers up to
//     MaxNodes = 4096 nodes: a summary word whose bit g mirrors group g's
//     occupancy over up to 63 leaf words, so Count/Lowest/iteration skip
//     empty groups instead of scanning them.
//   - The extension obeys three structural invariants that make values
//     canonical: ext is nil if and only if no member ≥ InlineNodes exists
//     (mutators prune on the way down), a summary bit is set if and only
//     if its leaf word is non-zero, and summary bit 0 is never set (group
//     0 is the inline word). Canonical form means set equality is
//     structural — Equal compares the inline word and, at most, one
//     fixed-size extension block.
//   - The extension is copy-on-write: mutators clone it before writing,
//     so ReaderVec values can be freely copied, shared, and stored in
//     history tables like the plain word they replaced. Wide-set mutation
//     pays one bounded allocation; the narrow tier's zero-allocation
//     guarantee is unchanged and enforced by allocation-counting tests.
//   - BlockMap is the canonical block-keyed lookup structure for per-block
//     state kept inline in dense slices (the directory's entries, the
//     cache's lines): an insert-only open-addressed table mapping
//     BlockAddr to a stable int32 index, with clear-but-retain Reset. It
//     is the block-addressed analogue of internal/core's entryStore index
//     scheme and exists for the same reason — steady-state protocol
//     operation must not allocate.
package mem
