// Package mem defines the fundamental identifiers shared by every layer of
// the simulated distributed shared memory machine: node identifiers, block
// addresses, request kinds, and reader bit-vectors.
//
// The package is deliberately tiny and dependency-free; both the coherence
// protocol (internal/protocol) and the predictors (internal/core) build on
// it without depending on each other.
//
// Key invariants:
//
//   - A BlockAddr embeds its home node in the top byte, so home lookup is
//     a shift, not a table walk, at every layer.
//   - ReaderVec is one machine word (MaxNodes = 64); set algebra on sharer
//     lists and VMSP read-run symbols is branch-free bit arithmetic, and
//     Lowest gives closure-free ascending iteration for hot paths.
//   - BlockMap is the canonical block-keyed lookup structure for per-block
//     state kept inline in dense slices (the directory's entries, the
//     cache's lines): an insert-only open-addressed table mapping
//     BlockAddr to a stable int32 index, with clear-but-retain Reset. It
//     is the block-addressed analogue of internal/core's entryStore index
//     scheme and exists for the same reason — steady-state protocol
//     operation must not allocate.
package mem
