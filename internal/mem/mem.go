package mem

import (
	"fmt"
	"math/bits"
	"strings"
)

// NodeID identifies one node of the machine. Nodes are numbered 0..N-1.
// The paper simulates a 16-node CC-NUMA; the implementation supports up to
// MaxNodes (4096) via the two-tier ReaderVec representation.
type NodeID uint16

// NoNode is a sentinel for "no owner"/"no node".
const NoNode NodeID = 0xFFFF

// InlineNodes is the width of the inline reader-vector word: machines with
// at most this many nodes never touch the extension tier (see ReaderVec).
const InlineNodes = 64

// MaxNodes is the largest machine size supported by ReaderVec:
// InlineNodes groups of InlineNodes nodes each.
const MaxNodes = InlineNodes * InlineNodes

// BlockAddr is the address of one coherence block. Addresses are already
// block-aligned indices (the simulator has no byte-level addressing needs);
// a block address embeds its home node so that home lookup is O(1).
type BlockAddr uint64

// BlockBytes is the coherence block size from Table 1 of the paper.
const BlockBytes = 32

// homeShift positions the home node in the top 12 bits of a BlockAddr
// (enough for MaxNodes distinct homes).
const homeShift = 52

// MakeAddr constructs the address of the idx-th block homed at node home.
// Every distinctly numbered block is a distinct 32-byte coherence unit.
func MakeAddr(home NodeID, idx uint64) BlockAddr {
	if idx >= 1<<homeShift {
		panic(fmt.Sprintf("mem: block index %d out of range", idx))
	}
	return BlockAddr(uint64(home)<<homeShift | idx)
}

// Home returns the node that owns the directory entry for the block.
func (a BlockAddr) Home() NodeID { return NodeID(a >> homeShift) }

// Index returns the per-home block index encoded in the address.
func (a BlockAddr) Index() uint64 { return uint64(a) & (1<<homeShift - 1) }

// String renders "home:index" for debugging.
func (a BlockAddr) String() string {
	return fmt.Sprintf("%d:%#x", a.Home(), a.Index())
}

// ReqKind enumerates the three memory request message types of the
// full-map write-invalidate protocol (paper §2): Read fetches a read-only
// copy, Write fetches a writable copy, Upgrade promotes an already cached
// read-only copy to writable.
type ReqKind uint8

const (
	ReqRead ReqKind = iota
	ReqWrite
	ReqUpgrade
	numReqKinds
)

// NumReqKinds is the number of distinct request kinds (used by encoders).
const NumReqKinds = int(numReqKinds)

// IsWriteLike reports whether the request acquires write permission.
func (k ReqKind) IsWriteLike() bool { return k == ReqWrite || k == ReqUpgrade }

func (k ReqKind) String() string {
	switch k {
	case ReqRead:
		return "Read"
	case ReqWrite:
		return "Write"
	case ReqUpgrade:
		return "Upgrade"
	default:
		return fmt.Sprintf("ReqKind(%d)", uint8(k))
	}
}

// ReaderVec is a set of node identifiers, used by the full-map directory
// for its sharer list and by VMSP to encode a read run (paper §3.1). The
// zero value is the empty vector.
//
// Representation (two tiers):
//
//   - lo holds nodes 0..InlineNodes-1 inline, one bit each. Machines with
//     N ≤ InlineNodes nodes live entirely in this word — exactly the old
//     single-uint64 layout — so every fast path stays one word wide and
//     allocation-free.
//   - ext, when non-nil, holds nodes InlineNodes..MaxNodes-1 as a
//     two-level bitmap: leaf[g-1] is the word for node group g (nodes
//     [64g, 64g+64)), and sum bit g is set exactly when leaf[g-1] is
//     non-zero, so scans skip empty groups with one summary-word test.
//
// Invariants:
//
//  1. ext == nil ⟺ the vector has no member ≥ InlineNodes. Operations
//     that empty the extension tier prune the pointer, so logically equal
//     vectors are structurally equal and Empty is a two-field test.
//  2. ext is copy-on-write: vectors share extensions freely and every
//     mutating operation clones before writing, so ReaderVec keeps value
//     semantics. A *vecExt reachable from more than one vector is never
//     written through.
//  3. sum bit g ⟺ leaf[g-1] != 0, and ext != nil ⟹ sum != 0.
//
// ReaderVec is deliberately non-comparable (== would compare extension
// pointers, not contents); use Equal.
type ReaderVec struct {
	_   [0]func() // non-comparable: force Equal instead of ==
	lo  uint64
	ext *vecExt
}

// vecExt is the extension tier: a summary word over up to InlineNodes-1
// leaf words (group 0 is the inline lo word and has no leaf here).
type vecExt struct {
	sum  uint64
	leaf [InlineNodes - 1]uint64
}

// VecOf builds a vector containing the given nodes.
func VecOf(nodes ...NodeID) ReaderVec {
	var v ReaderVec
	for _, n := range nodes {
		v = v.With(n)
	}
	return v
}

// VecFromLow reconstructs a vector from its inline word. It is the inverse
// of LowWord for vectors with no member ≥ InlineNodes.
func VecFromLow(w uint64) ReaderVec { return ReaderVec{lo: w} }

// LowWord returns the inline word (nodes 0..InlineNodes-1). It panics if
// the vector has members beyond the inline tier: callers use it to pack a
// narrow-machine vector into one uint64, and a wide member would be
// silently dropped.
func (v ReaderVec) LowWord() uint64 {
	if v.ext != nil {
		panic("mem: LowWord on vector with members >= InlineNodes")
	}
	return v.lo
}

// With returns the vector with node n added. Out-of-range nodes panic:
// silently dropping a node would corrupt a sharer set.
func (v ReaderVec) With(n NodeID) ReaderVec {
	if n < InlineNodes {
		v.lo |= 1 << n
		return v
	}
	if n >= MaxNodes {
		panic(fmt.Sprintf("mem: node %d out of range", n))
	}
	g, b := uint(n)/InlineNodes, uint(n)%InlineNodes
	if v.ext != nil && v.ext.leaf[g-1]&(1<<b) != 0 {
		return v
	}
	e := &vecExt{}
	if v.ext != nil {
		*e = *v.ext
	}
	e.leaf[g-1] |= 1 << b
	e.sum |= 1 << g
	v.ext = e
	return v
}

// Without returns the vector with node n removed. Out-of-range nodes
// (including NoNode) are a safe no-op.
func (v ReaderVec) Without(n NodeID) ReaderVec {
	if n < InlineNodes {
		v.lo &^= 1 << n
		return v
	}
	if n >= MaxNodes || v.ext == nil {
		return v
	}
	g, b := uint(n)/InlineNodes, uint(n)%InlineNodes
	if v.ext.leaf[g-1]&(1<<b) == 0 {
		return v
	}
	e := *v.ext
	e.leaf[g-1] &^= 1 << b
	if e.leaf[g-1] == 0 {
		e.sum &^= 1 << g
	}
	if e.sum == 0 {
		v.ext = nil
	} else {
		v.ext = &e
	}
	return v
}

// Has reports whether node n is in the vector. Out-of-range nodes report
// false.
func (v ReaderVec) Has(n NodeID) bool {
	if n < InlineNodes {
		return v.lo&(1<<n) != 0
	}
	if n >= MaxNodes || v.ext == nil {
		return false
	}
	return v.ext.leaf[n/InlineNodes-1]&(1<<(n%InlineNodes)) != 0
}

// Empty reports whether no nodes are set.
func (v ReaderVec) Empty() bool { return v.lo == 0 && v.ext == nil }

// Equal reports set equality. Invariant 1 makes this structural: a nil
// extension on one side with a non-nil on the other cannot hide equal
// contents.
func (v ReaderVec) Equal(o ReaderVec) bool {
	if v.lo != o.lo {
		return false
	}
	if v.ext == o.ext {
		return true
	}
	if v.ext == nil || o.ext == nil {
		return false
	}
	return *v.ext == *o.ext
}

// Count returns the number of nodes in the vector.
func (v ReaderVec) Count() int {
	c := bits.OnesCount64(v.lo)
	if v.ext != nil {
		for s := v.ext.sum; s != 0; s &= s - 1 {
			c += bits.OnesCount64(v.ext.leaf[bits.TrailingZeros64(s)-1])
		}
	}
	return c
}

// Lowest returns the smallest member node. It is the zero-allocation
// iteration primitive for hot paths (ForEach costs a closure):
//
//	for w := v; !w.Empty(); {
//		n := w.Lowest()
//		w = w.Without(n)
//		...
//	}
//
// Lowest of the empty vector returns MaxNodes (out of range).
func (v ReaderVec) Lowest() NodeID {
	if v.lo != 0 {
		return NodeID(bits.TrailingZeros64(v.lo))
	}
	if v.ext != nil {
		g := bits.TrailingZeros64(v.ext.sum)
		return NodeID(g*InlineNodes + bits.TrailingZeros64(v.ext.leaf[g-1]))
	}
	return MaxNodes
}

// Union returns the set union v ∪ o. When only one side has an extension
// it is shared, not copied (safe under copy-on-write).
func (v ReaderVec) Union(o ReaderVec) ReaderVec {
	v.lo |= o.lo
	if o.ext == nil || v.ext == o.ext {
		return v
	}
	if v.ext == nil {
		v.ext = o.ext
		return v
	}
	e := *v.ext
	e.sum |= o.ext.sum
	for s := o.ext.sum; s != 0; s &= s - 1 {
		g := bits.TrailingZeros64(s)
		e.leaf[g-1] |= o.ext.leaf[g-1]
	}
	v.ext = &e
	return v
}

// AndNot returns the set difference v \ o.
func (v ReaderVec) AndNot(o ReaderVec) ReaderVec {
	v.lo &^= o.lo
	if v.ext == nil || o.ext == nil {
		return v
	}
	if v.ext == o.ext {
		v.ext = nil
		return v
	}
	e := vecExt{}
	for s := v.ext.sum; s != 0; s &= s - 1 {
		g := bits.TrailingZeros64(s)
		if w := v.ext.leaf[g-1] &^ o.ext.leaf[g-1]; w != 0 {
			e.leaf[g-1] = w
			e.sum |= 1 << uint(g)
		}
	}
	if e.sum == 0 {
		v.ext = nil
	} else {
		v.ext = &e
	}
	return v
}

// Hash returns a deterministic content hash (equal vectors hash equally
// regardless of extension sharing). Used by the predictor's vector
// interner.
func (v ReaderVec) Hash() uint64 {
	h := (v.lo ^ 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	h ^= h >> 29
	if v.ext != nil {
		for s := v.ext.sum; s != 0; s &= s - 1 {
			g := bits.TrailingZeros64(s)
			h = (h ^ uint64(g) ^ v.ext.leaf[g-1]) * 0x94d049bb133111eb
			h ^= h >> 32
		}
	}
	h = (h ^ h>>31) * 0xff51afd7ed558ccd
	h ^= h >> 31
	return h
}

// Nodes returns the member nodes in ascending order.
func (v ReaderVec) Nodes() []NodeID {
	out := make([]NodeID, 0, v.Count())
	v.ForEach(func(n NodeID) { out = append(out, n) })
	return out
}

// ForEach calls fn for every member node in ascending order.
func (v ReaderVec) ForEach(fn func(NodeID)) {
	for w := v.lo; w != 0; w &= w - 1 {
		fn(NodeID(bits.TrailingZeros64(w)))
	}
	if v.ext == nil {
		return
	}
	for s := v.ext.sum; s != 0; s &= s - 1 {
		g := bits.TrailingZeros64(s)
		for w := v.ext.leaf[g-1]; w != 0; w &= w - 1 {
			fn(NodeID(g*InlineNodes + bits.TrailingZeros64(w)))
		}
	}
}

// String renders "{0,3,7}".
func (v ReaderVec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.ForEach(func(n NodeID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", n)
	})
	b.WriteByte('}')
	return b.String()
}
