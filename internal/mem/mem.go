package mem

import (
	"fmt"
	"math/bits"
	"strings"
)

// NodeID identifies one node of the machine. Nodes are numbered 0..N-1.
// The paper simulates a 16-node CC-NUMA; the implementation supports up to
// 64 nodes (the width of a reader vector word).
type NodeID uint8

// NoNode is a sentinel for "no owner"/"no node".
const NoNode NodeID = 0xFF

// MaxNodes is the largest machine size supported by ReaderVec.
const MaxNodes = 64

// BlockAddr is the address of one coherence block. Addresses are already
// block-aligned indices (the simulator has no byte-level addressing needs);
// a block address embeds its home node so that home lookup is O(1).
type BlockAddr uint64

// BlockBytes is the coherence block size from Table 1 of the paper.
const BlockBytes = 32

// homeShift positions the home node in the top byte of a BlockAddr.
const homeShift = 56

// MakeAddr constructs the address of the idx-th block homed at node home.
// Every distinctly numbered block is a distinct 32-byte coherence unit.
func MakeAddr(home NodeID, idx uint64) BlockAddr {
	if idx >= 1<<homeShift {
		panic(fmt.Sprintf("mem: block index %d out of range", idx))
	}
	return BlockAddr(uint64(home)<<homeShift | idx)
}

// Home returns the node that owns the directory entry for the block.
func (a BlockAddr) Home() NodeID { return NodeID(a >> homeShift) }

// Index returns the per-home block index encoded in the address.
func (a BlockAddr) Index() uint64 { return uint64(a) & (1<<homeShift - 1) }

// String renders "home:index" for debugging.
func (a BlockAddr) String() string {
	return fmt.Sprintf("%d:%#x", a.Home(), a.Index())
}

// ReqKind enumerates the three memory request message types of the
// full-map write-invalidate protocol (paper §2): Read fetches a read-only
// copy, Write fetches a writable copy, Upgrade promotes an already cached
// read-only copy to writable.
type ReqKind uint8

const (
	ReqRead ReqKind = iota
	ReqWrite
	ReqUpgrade
	numReqKinds
)

// NumReqKinds is the number of distinct request kinds (used by encoders).
const NumReqKinds = int(numReqKinds)

// IsWriteLike reports whether the request acquires write permission.
func (k ReqKind) IsWriteLike() bool { return k == ReqWrite || k == ReqUpgrade }

func (k ReqKind) String() string {
	switch k {
	case ReqRead:
		return "Read"
	case ReqWrite:
		return "Write"
	case ReqUpgrade:
		return "Upgrade"
	default:
		return fmt.Sprintf("ReqKind(%d)", uint8(k))
	}
}

// ReaderVec is a bit-vector of node identifiers, used by the full-map
// directory for its sharer list and by VMSP to encode a read run
// (paper §3.1). The zero value is the empty vector.
type ReaderVec uint64

// VecOf builds a vector containing the given nodes.
func VecOf(nodes ...NodeID) ReaderVec {
	var v ReaderVec
	for _, n := range nodes {
		v = v.With(n)
	}
	return v
}

// With returns the vector with node n added.
func (v ReaderVec) With(n NodeID) ReaderVec {
	if n >= MaxNodes {
		panic(fmt.Sprintf("mem: node %d out of range", n))
	}
	return v | 1<<n
}

// Without returns the vector with node n removed.
func (v ReaderVec) Without(n NodeID) ReaderVec { return v &^ (1 << n) }

// Has reports whether node n is in the vector.
func (v ReaderVec) Has(n NodeID) bool {
	return n < MaxNodes && v&(1<<n) != 0
}

// Empty reports whether no nodes are set.
func (v ReaderVec) Empty() bool { return v == 0 }

// Count returns the number of nodes in the vector.
func (v ReaderVec) Count() int { return bits.OnesCount64(uint64(v)) }

// Lowest returns the smallest member node. It is the zero-allocation
// iteration primitive for hot paths (ForEach costs a closure):
//
//	for w := v; !w.Empty(); {
//		n := w.Lowest()
//		w = w.Without(n)
//		...
//	}
//
// Lowest of the empty vector returns MaxNodes (out of range).
func (v ReaderVec) Lowest() NodeID { return NodeID(bits.TrailingZeros64(uint64(v))) }

// Nodes returns the member nodes in ascending order.
func (v ReaderVec) Nodes() []NodeID {
	out := make([]NodeID, 0, v.Count())
	for w := uint64(v); w != 0; w &= w - 1 {
		out = append(out, NodeID(bits.TrailingZeros64(w)))
	}
	return out
}

// ForEach calls fn for every member node in ascending order.
func (v ReaderVec) ForEach(fn func(NodeID)) {
	for w := uint64(v); w != 0; w &= w - 1 {
		fn(NodeID(bits.TrailingZeros64(w)))
	}
}

// String renders "{0,3,7}".
func (v ReaderVec) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	v.ForEach(func(n NodeID) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", n)
	})
	b.WriteByte('}')
	return b.String()
}
