package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeAddrRoundTrip(t *testing.T) {
	cases := []struct {
		home NodeID
		idx  uint64
	}{
		{0, 0},
		{1, 1},
		{15, 12345},
		{63, 1<<40 - 1},
	}
	for _, c := range cases {
		a := MakeAddr(c.home, c.idx)
		if a.Home() != c.home {
			t.Errorf("MakeAddr(%d,%d).Home() = %d", c.home, c.idx, a.Home())
		}
		if a.Index() != c.idx {
			t.Errorf("MakeAddr(%d,%d).Index() = %d", c.home, c.idx, a.Index())
		}
	}
}

func TestMakeAddrDistinct(t *testing.T) {
	seen := map[BlockAddr]bool{}
	for home := NodeID(0); home < 16; home++ {
		for idx := uint64(0); idx < 64; idx++ {
			a := MakeAddr(home, idx)
			if seen[a] {
				t.Fatalf("duplicate address %v", a)
			}
			seen[a] = true
		}
	}
}

func TestMakeAddrPanicsOnHugeIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	MakeAddr(0, 1<<homeShift)
}

func TestAddrRoundTripQuick(t *testing.T) {
	f := func(home uint16, idx uint64) bool {
		h := NodeID(home) % MaxNodes
		i := idx % (1 << homeShift)
		a := MakeAddr(h, i)
		return a.Home() == h && a.Index() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReqKindString(t *testing.T) {
	if ReqRead.String() != "Read" || ReqWrite.String() != "Write" || ReqUpgrade.String() != "Upgrade" {
		t.Fatalf("unexpected strings: %v %v %v", ReqRead, ReqWrite, ReqUpgrade)
	}
	if got := ReqKind(9).String(); got != "ReqKind(9)" {
		t.Fatalf("unknown kind rendered %q", got)
	}
}

func TestIsWriteLike(t *testing.T) {
	if ReqRead.IsWriteLike() {
		t.Error("Read must not be write-like")
	}
	if !ReqWrite.IsWriteLike() || !ReqUpgrade.IsWriteLike() {
		t.Error("Write and Upgrade must be write-like")
	}
}

func TestReaderVecBasics(t *testing.T) {
	v := VecOf(1, 2)
	if !v.Has(1) || !v.Has(2) || v.Has(3) {
		t.Fatalf("membership wrong: %v", v)
	}
	if v.Count() != 2 {
		t.Fatalf("Count = %d, want 2", v.Count())
	}
	v = v.Without(1)
	if v.Has(1) || !v.Has(2) {
		t.Fatalf("Without failed: %v", v)
	}
	if v.Empty() {
		t.Fatal("vector with node 2 reported empty")
	}
	if !v.Without(2).Empty() {
		t.Fatal("emptied vector not empty")
	}
}

func TestReaderVecNodesSorted(t *testing.T) {
	v := VecOf(7, 0, 3, 15)
	nodes := v.Nodes()
	want := []NodeID{0, 3, 7, 15}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", nodes, want)
		}
	}
}

func TestReaderVecString(t *testing.T) {
	if got := VecOf(0, 2).String(); got != "{0,2}" {
		t.Fatalf("String() = %q", got)
	}
	if got := (ReaderVec{}).String(); got != "{}" {
		t.Fatalf("empty String() = %q", got)
	}
}

func TestReaderVecHasOutOfRange(t *testing.T) {
	if VecFromLow(0xFFFFFFFFFFFFFFFF).Has(NoNode) {
		t.Fatal("Has(NoNode) must be false")
	}
}

// Property: With/Without are inverses for nodes not already present, and
// Count tracks membership exactly.
func TestReaderVecQuick(t *testing.T) {
	f := func(raw uint64, n uint8) bool {
		v := VecFromLow(raw)
		node := NodeID(n) % MaxNodes
		with := v.With(node)
		if !with.Has(node) {
			return false
		}
		without := with.Without(node)
		if without.Has(node) {
			return false
		}
		// Adding a member not present grows count by one.
		if !v.Has(node) && with.Count() != v.Count()+1 {
			return false
		}
		return true
	}
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits exactly the Nodes() set in the same order.
func TestReaderVecForEachMatchesNodes(t *testing.T) {
	f := func(raw uint64) bool {
		v := VecFromLow(raw)
		var visited []NodeID
		v.ForEach(func(n NodeID) { visited = append(visited, n) })
		nodes := v.Nodes()
		if len(visited) != len(nodes) {
			return false
		}
		for i := range nodes {
			if visited[i] != nodes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
