package mem

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// refReaderSet is the map-backed oracle for ReaderVec: every operation is
// restated in terms of a plain set of node ids, and the differential tests
// drive both representations with the same operation sequence and require
// identical answers. This mirrors how sim.ReferenceKernel pinned the time
// wheel rewrite.
type refReaderSet map[NodeID]bool

func (r refReaderSet) clone() refReaderSet {
	out := make(refReaderSet, len(r))
	for n := range r {
		out[n] = true
	}
	return out
}

func (r refReaderSet) with(n NodeID) refReaderSet    { c := r.clone(); c[n] = true; return c }
func (r refReaderSet) without(n NodeID) refReaderSet { c := r.clone(); delete(c, n); return c }

func (r refReaderSet) union(o refReaderSet) refReaderSet {
	c := r.clone()
	for n := range o {
		c[n] = true
	}
	return c
}

func (r refReaderSet) andNot(o refReaderSet) refReaderSet {
	c := r.clone()
	for n := range o {
		delete(c, n)
	}
	return c
}

func (r refReaderSet) nodes() []NodeID {
	out := make([]NodeID, 0, len(r))
	for n := range r {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r refReaderSet) lowest() NodeID {
	if len(r) == 0 {
		return MaxNodes
	}
	return r.nodes()[0]
}

func (r refReaderSet) equal(o refReaderSet) bool {
	if len(r) != len(o) {
		return false
	}
	for n := range r {
		if !o[n] {
			return false
		}
	}
	return true
}

func (r refReaderSet) str() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range r.nodes() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	b.WriteByte('}')
	return b.String()
}

// checkAgainstRef compares every observable of v against the oracle.
func checkAgainstRef(t *testing.T, tag string, v ReaderVec, ref refReaderSet, width int) {
	t.Helper()
	if v.Count() != len(ref) {
		t.Fatalf("%s: Count = %d, want %d", tag, v.Count(), len(ref))
	}
	if v.Empty() != (len(ref) == 0) {
		t.Fatalf("%s: Empty = %v, want %v", tag, v.Empty(), len(ref) == 0)
	}
	if v.Lowest() != ref.lowest() {
		t.Fatalf("%s: Lowest = %d, want %d", tag, v.Lowest(), ref.lowest())
	}
	wantNodes := ref.nodes()
	gotNodes := v.Nodes()
	if len(gotNodes) != len(wantNodes) {
		t.Fatalf("%s: Nodes = %v, want %v", tag, gotNodes, wantNodes)
	}
	for i := range wantNodes {
		if gotNodes[i] != wantNodes[i] {
			t.Fatalf("%s: Nodes = %v, want %v", tag, gotNodes, wantNodes)
		}
	}
	var visited []NodeID
	v.ForEach(func(n NodeID) { visited = append(visited, n) })
	for i := range wantNodes {
		if len(visited) != len(wantNodes) || visited[i] != wantNodes[i] {
			t.Fatalf("%s: ForEach visited %v, want %v", tag, visited, wantNodes)
		}
	}
	if got, want := v.String(), ref.str(); got != want {
		t.Fatalf("%s: String = %q, want %q", tag, got, want)
	}
	checkInvariants(t, tag, v)
	// Membership probes across the whole width plus the boundary beyond.
	probes := []NodeID{0, 1, InlineNodes - 1, InlineNodes, InlineNodes + 1,
		NodeID(width - 1), NoNode}
	for _, n := range probes {
		if n >= MaxNodes && n != NoNode {
			continue
		}
		if v.Has(n) != ref[n] {
			t.Fatalf("%s: Has(%d) = %v, want %v", tag, n, v.Has(n), ref[n])
		}
	}
}

// checkInvariants asserts the two-tier representation invariants that the
// package documents: the extension pointer is pruned when empty, and the
// summary word mirrors leaf occupancy exactly.
func checkInvariants(t *testing.T, tag string, v ReaderVec) {
	t.Helper()
	if v.ext == nil {
		return
	}
	if v.ext.sum == 0 {
		t.Fatalf("%s: non-nil ext with empty summary (normalization broken)", tag)
	}
	for g := 1; g < InlineNodes; g++ {
		leafSet := v.ext.leaf[g-1] != 0
		sumSet := v.ext.sum&(1<<uint(g)) != 0
		if leafSet != sumSet {
			t.Fatalf("%s: sum bit %d = %v but leaf occupancy = %v", tag, g, sumSet, leafSet)
		}
	}
	if v.ext.sum&1 != 0 {
		t.Fatalf("%s: summary bit 0 set (group 0 is the inline word)", tag)
	}
}

// diffWidths are the widths the ISSUE's acceptance criteria name.
var diffWidths = []int{1, 63, 64, 65, 256, 4096}

// TestReaderVecDifferential drives long random operation sequences
// against the map oracle at every contract width.
func TestReaderVecDifferential(t *testing.T) {
	for _, width := range diffWidths {
		width := width
		t.Run(fmt.Sprintf("width%d", width), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(width)*7919 + 1))
			v := ReaderVec{}
			ref := refReaderSet{}
			// other is a second (vector, oracle) pair for the binary ops.
			other := ReaderVec{}
			refOther := refReaderSet{}
			for step := 0; step < 4000; step++ {
				n := NodeID(rng.Intn(width))
				tag := fmt.Sprintf("width %d step %d", width, step)
				switch rng.Intn(10) {
				case 0, 1, 2:
					v = v.With(n)
					ref = ref.with(n)
				case 3, 4:
					v = v.Without(n)
					ref = ref.without(n)
				case 5:
					other = other.With(n)
					refOther = refOther.with(n)
				case 6:
					u := v.Union(other)
					checkAgainstRef(t, tag+" union", u, ref.union(refOther), width)
				case 7:
					d := v.AndNot(other)
					checkAgainstRef(t, tag+" andnot", d, ref.andNot(refOther), width)
				case 8:
					if v.Equal(other) != ref.equal(refOther) {
						t.Fatalf("%s: Equal = %v, want %v", tag, v.Equal(other), ref.equal(refOther))
					}
					if !v.Equal(v) || !other.Equal(other) {
						t.Fatalf("%s: Equal not reflexive", tag)
					}
				case 9:
					// Value-semantics check: mutating a copy must not
					// disturb the original (copy-on-write aliasing).
					saved := ref.clone()
					mutated := v.With(n).Without(ref.lowest())
					_ = mutated
					checkAgainstRef(t, tag+" after copy-mutation", v, saved, width)
				}
				checkAgainstRef(t, tag, v, ref, width)
			}
			// Drain to empty through Lowest/Without, the hot-loop idiom.
			for w, guard := v, 0; !w.Empty(); guard++ {
				if guard > width {
					t.Fatal("Lowest/Without drain did not terminate")
				}
				low := w.Lowest()
				if !w.Has(low) {
					t.Fatalf("Lowest() = %d not a member", low)
				}
				w = w.Without(low)
			}
		})
	}
}

// TestReaderVecHashEqualConsistency: equal vectors hash equally even when
// built along different operation paths (different ext sharing).
func TestReaderVecHashEqualConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		nodes := make([]NodeID, rng.Intn(20)+1)
		for i := range nodes {
			nodes[i] = NodeID(rng.Intn(MaxNodes))
		}
		a := VecOf(nodes...)
		// Build b in shuffled order with a detour through extra members.
		perm := rng.Perm(len(nodes))
		b := ReaderVec{}
		extra := NodeID(rng.Intn(MaxNodes))
		b = b.With(extra)
		for _, i := range perm {
			b = b.With(nodes[i])
		}
		if !a.Has(extra) {
			b = b.Without(extra)
		}
		if !a.Equal(b) {
			t.Fatalf("trial %d: equal sets compare unequal: %v vs %v", trial, a, b)
		}
		if a.Hash() != b.Hash() {
			t.Fatalf("trial %d: equal sets hash differently", trial)
		}
	}
}

// TestReaderVecBoundary pins the out-of-range contract at the exact edge:
// n = MaxNodes-1 is accepted, n = MaxNodes panics (the silent-drop
// footgun the old API had), and the tolerant read-side ops stay safe.
func TestReaderVecBoundary(t *testing.T) {
	v := VecOf(MaxNodes - 1)
	if !v.Has(MaxNodes-1) || v.Count() != 1 || v.Lowest() != MaxNodes-1 {
		t.Fatalf("VecOf(MaxNodes-1) = %v", v)
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("With(MaxNodes)", func() { _ = ReaderVec{}.With(MaxNodes) })
	mustPanic("VecOf(MaxNodes)", func() { _ = VecOf(MaxNodes) })
	mustPanic("With(NoNode)", func() { _ = ReaderVec{}.With(NoNode) })

	// Read-side operations tolerate out-of-range ids (NoNode flows
	// through Without/Has in the protocol's owner bookkeeping).
	full := VecOf(0, InlineNodes, MaxNodes-1)
	if full.Has(NoNode) || full.Has(MaxNodes) {
		t.Fatal("Has out of range must be false")
	}
	if got := full.Without(NoNode); !got.Equal(full) {
		t.Fatal("Without(NoNode) must be a no-op")
	}
	// Inline-tier boundary: 63 stays in lo, 64 opens the extension.
	lo := VecOf(InlineNodes - 1)
	if lo.ext != nil {
		t.Fatal("node 63 must stay in the inline word")
	}
	hi := VecOf(InlineNodes)
	if hi.ext == nil {
		t.Fatal("node 64 must open the extension tier")
	}
	if pruned := hi.Without(InlineNodes); pruned.ext != nil {
		t.Fatal("removing the last wide member must prune the extension")
	}
}

// TestReaderVecLowWord pins the narrow-machine packing contract.
func TestReaderVecLowWord(t *testing.T) {
	v := VecOf(0, 5, 63)
	if got := v.LowWord(); got != 1|1<<5|1<<63 {
		t.Fatalf("LowWord = %#x", got)
	}
	if !VecFromLow(v.LowWord()).Equal(v) {
		t.Fatal("VecFromLow(LowWord) must round-trip")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LowWord on a wide vector must panic")
		}
	}()
	_ = VecOf(64).LowWord()
}

// FuzzReaderVec interprets the fuzz input as an operation program over one
// vector and replays it against the map oracle.
func FuzzReaderVec(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x42, 0xff, 0x10})
	f.Add([]byte{0x80, 0x81, 0x02, 0x90, 0x41, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		v := ReaderVec{}
		ref := refReaderSet{}
		other := ReaderVec{}
		refOther := refReaderSet{}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 6
			n := NodeID(uint16(data[i+1])<<8|uint16(data[i+2])) % MaxNodes
			switch op {
			case 0:
				v = v.With(n)
				ref = ref.with(n)
			case 1:
				v = v.Without(n)
				ref = ref.without(n)
			case 2:
				other = other.With(n)
				refOther = refOther.with(n)
			case 3:
				v = v.Union(other)
				ref = ref.union(refOther)
			case 4:
				v = v.AndNot(other)
				ref = ref.andNot(refOther)
			case 5:
				if v.Equal(other) != ref.equal(refOther) {
					t.Fatalf("Equal diverged from oracle")
				}
			}
		}
		if v.Count() != len(ref) || v.Empty() != (len(ref) == 0) {
			t.Fatalf("Count/Empty diverged: %d vs %d", v.Count(), len(ref))
		}
		if v.Lowest() != ref.lowest() {
			t.Fatalf("Lowest diverged: %d vs %d", v.Lowest(), ref.lowest())
		}
		nodes := v.Nodes()
		want := ref.nodes()
		if len(nodes) != len(want) {
			t.Fatalf("Nodes diverged: %v vs %v", nodes, want)
		}
		for i := range want {
			if nodes[i] != want[i] {
				t.Fatalf("Nodes diverged: %v vs %v", nodes, want)
			}
		}
		if got, wantS := v.String(), ref.str(); got != wantS {
			t.Fatalf("String diverged: %q vs %q", got, wantS)
		}
		rebuilt := VecOf(nodes...)
		if !rebuilt.Equal(v) || rebuilt.Hash() != v.Hash() {
			t.Fatal("VecOf(Nodes()) must rebuild an equal, equally-hashing vector")
		}
	})
}
