// Package network models the point-to-point interconnect of the simulated
// DSM: a constant-latency switched fabric with contention modeled at the
// network interfaces (NIs), as in the paper's methodology (§6): "we assume
// a point-to-point network with a constant latency of 80 cycles but model
// contention at the network interfaces."
//
// Each node has one send-side NI and one receive-side NI. An NI processes
// one message at a time, each occupying the interface for a fixed number of
// cycles; messages queue FIFO when the interface is busy. This queueing is
// one of the two sources of message re-ordering that perturb pattern-based
// predictors (the other is the blocking directory in internal/protocol).
//
// The network is generic over the payload type so protocol messages travel
// as concrete values instead of being boxed into interfaces, and every
// in-flight message rides a pooled carrier whose kernel callbacks are
// bound once — steady-state sends do not allocate.
package network
