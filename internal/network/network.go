// Package network models the point-to-point interconnect of the simulated
// DSM: a constant-latency switched fabric with contention modeled at the
// network interfaces (NIs), as in the paper's methodology (§6): "we assume
// a point-to-point network with a constant latency of 80 cycles but model
// contention at the network interfaces."
//
// Each node has one send-side NI and one receive-side NI. An NI processes
// one message at a time, each occupying the interface for a fixed number of
// cycles; messages queue FIFO when the interface is busy. This queueing is
// one of the two sources of message re-ordering that perturb pattern-based
// predictors (the other is the blocking directory in internal/protocol).
package network

import (
	"fmt"

	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

// Config holds the interconnect timing parameters, in processor cycles.
type Config struct {
	// FlightLatency is the switch traversal time for any src→dst pair.
	FlightLatency sim.Cycle
	// SendOccupancy is how long a message occupies the sender NI.
	SendOccupancy sim.Cycle
	// RecvOccupancy is how long a message occupies the receiver NI.
	RecvOccupancy sim.Cycle
}

// DefaultConfig matches Table 1 of the paper: an 80-cycle network with
// NI processing calibrated so a clean two-hop remote miss totals 418
// cycles (see internal/machine for the full latency budget).
func DefaultConfig() Config {
	return Config{FlightLatency: 80, SendOccupancy: 20, RecvOccupancy: 20}
}

// Handler consumes a delivered message at a node.
type Handler func(src mem.NodeID, payload any)

// Network connects n nodes through the simulated fabric.
type Network struct {
	cfg      Config
	kernel   *sim.Kernel
	handlers []Handler
	sendFree []sim.Cycle // next cycle each sender NI is free
	recvFree []sim.Cycle // next cycle each receiver NI is free

	// Stats
	sent      uint64
	delivered uint64
	// sendQueueCycles accumulates cycles messages spent waiting for a
	// busy sender NI (a contention measure).
	sendQueueCycles sim.Cycle
	recvQueueCycles sim.Cycle
}

// New creates a network for nodes 0..n-1 on the given kernel.
func New(k *sim.Kernel, n int, cfg Config) *Network {
	if n <= 0 || n > mem.MaxNodes {
		panic(fmt.Sprintf("network: invalid node count %d", n))
	}
	return &Network{
		cfg:      cfg,
		kernel:   k,
		handlers: make([]Handler, n),
		sendFree: make([]sim.Cycle, n),
		recvFree: make([]sim.Cycle, n),
	}
}

// Nodes returns the number of attached nodes.
func (nw *Network) Nodes() int { return len(nw.handlers) }

// SetHandler registers the message handler for node id. Must be called for
// every node before any message addressed to it is delivered.
func (nw *Network) SetHandler(id mem.NodeID, h Handler) {
	nw.handlers[id] = h
}

// Send transmits payload from src to dst, modeling sender NI occupancy,
// flight latency, and receiver NI occupancy. Delivery invokes dst's
// handler. Sending to self is allowed (some protocol replies are local)
// and still pays NI costs, modeling the loopback through the DSM board.
func (nw *Network) Send(src, dst mem.NodeID, payload any) {
	now := nw.kernel.Now()
	start := now
	if nw.sendFree[int(src)] > start {
		nw.sendQueueCycles += nw.sendFree[int(src)] - start
		start = nw.sendFree[int(src)]
	}
	done := start + nw.cfg.SendOccupancy
	nw.sendFree[int(src)] = done
	arrive := done + nw.cfg.FlightLatency
	nw.sent++

	nw.kernel.At(arrive, func() {
		at := nw.kernel.Now()
		begin := at
		if nw.recvFree[int(dst)] > begin {
			nw.recvQueueCycles += nw.recvFree[int(dst)] - begin
			begin = nw.recvFree[int(dst)]
		}
		ready := begin + nw.cfg.RecvOccupancy
		nw.recvFree[int(dst)] = ready
		nw.kernel.At(ready, func() {
			nw.delivered++
			h := nw.handlers[dst]
			if h == nil {
				panic(fmt.Sprintf("network: no handler for node %d", dst))
			}
			h(src, payload)
		})
	})
}

// Stats reports message and contention counters.
type Stats struct {
	Sent            uint64
	Delivered       uint64
	SendQueueCycles sim.Cycle
	RecvQueueCycles sim.Cycle
}

// Stats returns a snapshot of the network counters.
func (nw *Network) Stats() Stats {
	return Stats{
		Sent:            nw.sent,
		Delivered:       nw.delivered,
		SendQueueCycles: nw.sendQueueCycles,
		RecvQueueCycles: nw.recvQueueCycles,
	}
}

// MinLatency returns the no-contention latency from send to delivery.
func (nw *Network) MinLatency() sim.Cycle {
	return nw.cfg.SendOccupancy + nw.cfg.FlightLatency + nw.cfg.RecvOccupancy
}
