package network

import (
	"fmt"

	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

// Config holds the interconnect timing parameters, in processor cycles.
type Config struct {
	// FlightLatency is the switch traversal time for any src→dst pair.
	FlightLatency sim.Cycle
	// SendOccupancy is how long a message occupies the sender NI.
	SendOccupancy sim.Cycle
	// RecvOccupancy is how long a message occupies the receiver NI.
	RecvOccupancy sim.Cycle
}

// DefaultConfig matches Table 1 of the paper: an 80-cycle network with
// NI processing calibrated so a clean two-hop remote miss totals 418
// cycles (see internal/machine for the full latency budget).
func DefaultConfig() Config {
	return Config{FlightLatency: 80, SendOccupancy: 20, RecvOccupancy: 20}
}

// Handler consumes a delivered message at a node.
type Handler[T any] func(src mem.NodeID, payload T)

// inflight carries one message through its arrival and delivery events.
// Carriers are pooled per network; arrive/deliver are method-value
// closures created once per carrier and reused for its whole lifetime.
type inflight[T any] struct {
	nw       *Network[T]
	src, dst mem.NodeID
	payload  T
	// counted marks messages that entered through Send (and so count in
	// the delivered statistic); DeliverLocal bypasses the NI model and the
	// network counters, like the node-internal hop it models.
	counted bool
	arrive  func()
	deliver func()
}

func (m *inflight[T]) onArrive() {
	nw := m.nw
	begin := nw.kernel.Now()
	if nw.recvFree[m.dst] > begin {
		nw.recvQueueCycles += nw.recvFree[m.dst] - begin
		begin = nw.recvFree[m.dst]
	}
	ready := begin + nw.cfg.RecvOccupancy
	nw.recvFree[m.dst] = ready
	nw.kernel.At(ready, m.deliver)
}

func (m *inflight[T]) onDeliver() {
	nw := m.nw
	if m.counted {
		nw.delivered++
	}
	h := nw.handlers[m.dst]
	if h == nil {
		panic(fmt.Sprintf("network: no handler for node %d", m.dst))
	}
	src, payload := m.src, m.payload
	var zero T
	m.payload = zero
	nw.pool.Put(m)
	h(src, payload)
}

// Network connects n nodes through the simulated fabric.
type Network[T any] struct {
	cfg      Config
	kernel   *sim.Kernel
	handlers []Handler[T]
	sendFree []sim.Cycle // next cycle each sender NI is free
	recvFree []sim.Cycle // next cycle each receiver NI is free
	pool     sim.FreeList[inflight[T]]

	// Stats
	sent      uint64
	delivered uint64
	// sendQueueCycles accumulates cycles messages spent waiting for a
	// busy sender NI (a contention measure).
	sendQueueCycles sim.Cycle
	recvQueueCycles sim.Cycle
}

// New creates a network for nodes 0..n-1 on the given kernel.
func New[T any](k *sim.Kernel, n int, cfg Config) *Network[T] {
	if n <= 0 || n > mem.MaxNodes {
		panic(fmt.Sprintf("network: invalid node count %d", n))
	}
	return &Network[T]{
		cfg:      cfg,
		kernel:   k,
		handlers: make([]Handler[T], n),
		sendFree: make([]sim.Cycle, n),
		recvFree: make([]sim.Cycle, n),
	}
}

// Nodes returns the number of attached nodes.
func (nw *Network[T]) Nodes() int { return len(nw.handlers) }

// SetHandler registers the message handler for node id. Must be called for
// every node before any message addressed to it is delivered.
func (nw *Network[T]) SetHandler(id mem.NodeID, h Handler[T]) {
	nw.handlers[id] = h
}

// get returns a carrier from the pool, creating (and binding its event
// closures for) a new one only when the pool is empty.
func (nw *Network[T]) get(src, dst mem.NodeID, payload T, counted bool) *inflight[T] {
	m, ok := nw.pool.Get()
	if !ok {
		m = &inflight[T]{nw: nw}
		m.arrive = m.onArrive
		m.deliver = m.onDeliver
	}
	m.src, m.dst, m.payload, m.counted = src, dst, payload, counted
	return m
}

// Send transmits payload from src to dst, modeling sender NI occupancy,
// flight latency, and receiver NI occupancy. Delivery invokes dst's
// handler. Sending to self is allowed (some protocol replies are local)
// and still pays NI costs, modeling the loopback through the DSM board.
func (nw *Network[T]) Send(src, dst mem.NodeID, payload T) {
	start := nw.kernel.Now()
	if nw.sendFree[int(src)] > start {
		nw.sendQueueCycles += nw.sendFree[int(src)] - start
		start = nw.sendFree[int(src)]
	}
	done := start + nw.cfg.SendOccupancy
	nw.sendFree[int(src)] = done
	nw.sent++

	m := nw.get(src, dst, payload, true)
	// Occupancy + flight are fixed small latencies chosen to fit the
	// kernel's near wheel (sim.WheelSpan covers every Config this repo
	// sweeps), so arrival scheduling is O(1); only a deep send-queue
	// backlog can push an arrival out to the overflow heap.
	nw.kernel.At(done+nw.cfg.FlightLatency, m.arrive)
}

// DeliverLocal hands payload to dst's handler after delay, bypassing the
// NI contention model and the network counters — the node-internal hop
// between co-located controllers. It exists here so node-internal traffic
// shares the pooled carrier path.
func (nw *Network[T]) DeliverLocal(src, dst mem.NodeID, delay sim.Cycle, payload T) {
	m := nw.get(src, dst, payload, false)
	// The local hop is a fixed small latency (Table 1's 12 cycles), so
	// this schedules on the kernel's near wheel in O(1) — zero delay goes
	// straight to the same-cycle dispatch ring.
	nw.kernel.After(delay, m.deliver)
}

// Reconfigure replaces the interconnect timing parameters of a built
// network, so one machine can be re-armed across sweep points that vary
// only the fabric (the RTL sweep's flight-latency axis). Call only on a
// quiescent network (no messages in flight), typically next to Reset;
// subsequent sends price at the new configuration.
func (nw *Network[T]) Reconfigure(cfg Config) {
	nw.cfg = cfg
}

// Reset re-arms the network for a fresh run on a reset kernel: NI
// occupancy horizons return to cycle 0 and the counters clear. Handlers
// and the carrier pool are retained (carriers already hold zeroed
// payloads when pooled), so a reused network reaches steady state
// without reallocating. Must not be called with messages in flight.
func (nw *Network[T]) Reset() {
	clear(nw.sendFree)
	clear(nw.recvFree)
	nw.sent = 0
	nw.delivered = 0
	nw.sendQueueCycles = 0
	nw.recvQueueCycles = 0
}

// Stats reports message and contention counters.
type Stats struct {
	Sent            uint64
	Delivered       uint64
	SendQueueCycles sim.Cycle
	RecvQueueCycles sim.Cycle
}

// Stats returns a snapshot of the network counters.
func (nw *Network[T]) Stats() Stats {
	return Stats{
		Sent:            nw.sent,
		Delivered:       nw.delivered,
		SendQueueCycles: nw.sendQueueCycles,
		RecvQueueCycles: nw.recvQueueCycles,
	}
}

// MinLatency returns the no-contention latency from send to delivery.
func (nw *Network[T]) MinLatency() sim.Cycle {
	return nw.cfg.SendOccupancy + nw.cfg.FlightLatency + nw.cfg.RecvOccupancy
}
