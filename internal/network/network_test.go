package network

import (
	"testing"

	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

func testNet(t *testing.T, n int) (*sim.Kernel, *Network[any]) {
	t.Helper()
	k := sim.NewKernel()
	nw := New[any](k, n, DefaultConfig())
	return k, nw
}

func TestUncontendedLatency(t *testing.T) {
	k, nw := testNet(t, 2)
	var deliveredAt sim.Cycle = -1
	nw.SetHandler(1, func(src mem.NodeID, payload any) {
		deliveredAt = k.Now()
		if src != 0 {
			t.Errorf("src = %d, want 0", src)
		}
		if payload.(string) != "hello" {
			t.Errorf("payload = %v", payload)
		}
	})
	k.At(100, func() { nw.Send(0, 1, "hello") })
	k.Run(0)
	want := sim.Cycle(100) + nw.MinLatency()
	if deliveredAt != want {
		t.Fatalf("delivered at %d, want %d (min latency %d)", deliveredAt, want, nw.MinLatency())
	}
}

func TestMinLatencyMatchesConfig(t *testing.T) {
	_, nw := testNet(t, 2)
	if nw.MinLatency() != 120 {
		t.Fatalf("default MinLatency = %d, want 120 (20+80+20)", nw.MinLatency())
	}
}

// TestReconfigureRetimesDelivery pins the latency-sweep reuse contract:
// after Reset+Reconfigure, a built network delivers at the new config's
// timing, indistinguishable from a freshly constructed network.
func TestReconfigureRetimesDelivery(t *testing.T) {
	k, nw := testNet(t, 2)
	var deliveredAt sim.Cycle = -1
	nw.SetHandler(1, func(src mem.NodeID, payload any) { deliveredAt = k.Now() })
	nw.Send(0, 1, "warm")
	k.Run(0)
	if deliveredAt != nw.MinLatency() {
		t.Fatalf("warm delivery at %d, want %d", deliveredAt, nw.MinLatency())
	}

	k.Reset()
	nw.Reset()
	slow := Config{FlightLatency: 320, SendOccupancy: 20, RecvOccupancy: 20}
	nw.Reconfigure(slow)
	if nw.MinLatency() != 360 {
		t.Fatalf("reconfigured MinLatency = %d, want 360", nw.MinLatency())
	}
	deliveredAt = -1
	nw.Send(0, 1, "slow")
	k.Run(0)
	if deliveredAt != 360 {
		t.Fatalf("reconfigured delivery at %d, want 360", deliveredAt)
	}
	if s := nw.Stats(); s.Sent != 1 || s.Delivered != 1 {
		t.Fatalf("stats after reset = %+v, want 1 sent / 1 delivered", s)
	}
}

func TestSenderNIContentionSerializes(t *testing.T) {
	k, nw := testNet(t, 3)
	var times []sim.Cycle
	h := func(src mem.NodeID, payload any) { times = append(times, k.Now()) }
	nw.SetHandler(1, h)
	nw.SetHandler(2, h)
	// Two messages sent by node 0 at the same cycle to different targets:
	// the second must wait for the sender NI.
	k.At(0, func() {
		nw.Send(0, 1, 1)
		nw.Send(0, 2, 2)
	})
	k.Run(0)
	if len(times) != 2 {
		t.Fatalf("delivered %d messages", len(times))
	}
	if times[0] != 120 {
		t.Fatalf("first delivery at %d, want 120", times[0])
	}
	if times[1] != 140 {
		t.Fatalf("second delivery at %d, want 140 (20-cycle sender occupancy)", times[1])
	}
	st := nw.Stats()
	if st.SendQueueCycles != 20 {
		t.Fatalf("SendQueueCycles = %d, want 20", st.SendQueueCycles)
	}
}

func TestReceiverNIContentionSerializes(t *testing.T) {
	k, nw := testNet(t, 3)
	var times []sim.Cycle
	nw.SetHandler(2, func(src mem.NodeID, payload any) { times = append(times, k.Now()) })
	// Two different senders to one receiver, same cycle: flight is equal,
	// so both arrive together and the receiver NI serializes them.
	k.At(0, func() {
		nw.Send(0, 2, 1)
		nw.Send(1, 2, 2)
	})
	k.Run(0)
	if len(times) != 2 {
		t.Fatalf("delivered %d messages", len(times))
	}
	if times[0] != 120 || times[1] != 140 {
		t.Fatalf("deliveries at %v, want [120 140]", times)
	}
	st := nw.Stats()
	if st.RecvQueueCycles != 20 {
		t.Fatalf("RecvQueueCycles = %d, want 20", st.RecvQueueCycles)
	}
}

func TestFIFODeliveryPerPair(t *testing.T) {
	k, nw := testNet(t, 2)
	var got []int
	nw.SetHandler(1, func(src mem.NodeID, payload any) { got = append(got, payload.(int)) })
	k.At(0, func() {
		for i := 0; i < 10; i++ {
			nw.Send(0, 1, i)
		}
	})
	k.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("out-of-order delivery: %v", got)
		}
	}
}

func TestSelfSendPaysNICosts(t *testing.T) {
	k, nw := testNet(t, 2)
	var at sim.Cycle = -1
	nw.SetHandler(0, func(src mem.NodeID, payload any) { at = k.Now() })
	k.At(0, func() { nw.Send(0, 0, nil) })
	k.Run(0)
	if at != 120 {
		t.Fatalf("self delivery at %d, want 120", at)
	}
}

func TestStatsCount(t *testing.T) {
	k, nw := testNet(t, 2)
	nw.SetHandler(1, func(mem.NodeID, any) {})
	k.At(0, func() {
		nw.Send(0, 1, nil)
		nw.Send(0, 1, nil)
	})
	k.Run(0)
	st := nw.Stats()
	if st.Sent != 2 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMissingHandlerPanics(t *testing.T) {
	k, nw := testNet(t, 2)
	k.At(0, func() { nw.Send(0, 1, nil) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing handler")
		}
	}()
	k.Run(0)
}

func TestInvalidNodeCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[any](sim.NewKernel(), 0, DefaultConfig())
}

// Messages re-order across distinct sender NIs under load: a heavily queued
// sender's early message can arrive after a lightly loaded sender's later
// message. This is the mechanism behind ack re-ordering in the protocol.
func TestCrossSenderReordering(t *testing.T) {
	k, nw := testNet(t, 3)
	var got []string
	nw.SetHandler(2, func(src mem.NodeID, payload any) { got = append(got, payload.(string)) })
	k.At(0, func() {
		// Node 0 queues 3 messages; its last is "late".
		nw.Send(0, 2, "a0")
		nw.Send(0, 2, "a1")
		nw.Send(0, 2, "late")
	})
	// Node 1 sends at cycle 10; beats node 0's third message.
	k.At(10, func() { nw.Send(1, 2, "fast") })
	k.Run(0)
	if len(got) != 4 {
		t.Fatalf("delivered %d", len(got))
	}
	// "fast" leaves node 1 NI at 30, arrives 110. "late" leaves node 0 NI at
	// 60, arrives 140. So "fast" must precede "late".
	idx := map[string]int{}
	for i, s := range got {
		idx[s] = i
	}
	if idx["fast"] > idx["late"] {
		t.Fatalf("expected cross-sender reordering, got %v", got)
	}
}
