package protocol

import (
	"testing"

	"specdsm/internal/core"
	"specdsm/internal/mem"
)

func TestSystemAccessors(t *testing.T) {
	h := newHarness(t, 3)
	if h.sys.Nodes() != 3 {
		t.Fatalf("Nodes = %d", h.sys.Nodes())
	}
	if h.sys.Kernel() != h.k {
		t.Fatal("Kernel accessor wrong")
	}
	if h.sys.Timing() != DefaultTiming() {
		t.Fatal("Timing accessor wrong")
	}
	n := h.sys.Node(2)
	if n.ID() != 2 {
		t.Fatalf("node ID = %d", n.ID())
	}
}

func TestAccessClassStrings(t *testing.T) {
	want := map[AccessClass]string{
		ClassHit:       "hit",
		ClassSpecHit:   "spec-hit",
		ClassLocal:     "local",
		ClassProtocol:  "protocol",
		AccessClass(9): "?",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestSetCoherenceCheckingOff(t *testing.T) {
	h := newHarness(t, 2)
	h.sys.SetCoherenceChecking(false)
	h.read(0, mem.MakeAddr(1, 0))
	h.write(1, mem.MakeAddr(0, 0))
	if len(h.sys.Violations()) != 0 {
		t.Fatal("checker disabled but recorded violations")
	}
}

func TestAddObserverOnNode(t *testing.T) {
	h := newHarness(t, 2)
	p := core.NewMSP(1)
	h.sys.Node(1).AddObserver(p)
	// Traffic to node 1's home blocks reaches the added observer.
	h.read(0, mem.MakeAddr(1, 0))
	if p.Stats().Tracked == 0 {
		t.Fatal("added observer saw nothing")
	}
	// Traffic to node 0's home does not (observer attached at node 1 only).
	before := p.Stats().Tracked
	h.read(1, mem.MakeAddr(0, 0))
	if p.Stats().Tracked != before {
		t.Fatal("observer saw traffic for another node's directory")
	}
	h.finish()
}

func TestSweepUnreferencedSpec(t *testing.T) {
	h := specHarness(t, true, false)
	addr := mem.MakeAddr(0, 0)
	producerConsumerRound(h, addr)
	producerConsumerRound(h, addr)
	// Trigger a forward to node 3 but end the run before it reads.
	h.write(1, addr)
	h.read(2, addr)
	h.k.Run(0)
	total := uint64(0)
	for n := 0; n < 4; n++ {
		total += h.sys.Node(mem.NodeID(n)).SweepUnreferencedSpec()
	}
	if total == 0 {
		t.Fatal("expected an unreferenced speculative line at end of run")
	}
}
