package protocol

import (
	"testing"

	"specdsm/internal/mem"
	"specdsm/internal/network"
	"specdsm/internal/sim"
)

// allocHarness drives a system without the testing.T plumbing of harness
// so the measured closures stay allocation-free themselves: the done
// callback is bound once and every access drains the kernel.
type allocHarness struct {
	k    *sim.Kernel
	sys  *System
	noop func(AccessOutcome)
}

func newAllocHarness(n int, opts ...Options) *allocHarness {
	k := sim.NewKernel()
	return &allocHarness{
		k:    k,
		sys:  NewSystem(k, n, DefaultTiming(), network.DefaultConfig(), opts),
		noop: func(AccessOutcome) {},
	}
}

func (h *allocHarness) access(node mem.NodeID, isWrite bool, addr mem.BlockAddr) {
	h.sys.Node(node).Access(isWrite, addr, h.noop)
	h.k.Run(0)
}

// serveCycle exercises every steady-state directory serve path against
// one block homed at node 0: a read recalling an exclusive owner, a plain
// shared-grant read, an upgrade invalidating the other sharer (inval +
// ack + upgrade-ack), and a write recalling the new owner (writeback +
// exclusive grant).
func (h *allocHarness) serveCycle(addr mem.BlockAddr) {
	h.access(1, false, addr)
	h.access(2, false, addr)
	h.access(1, true, addr)
	h.access(2, true, addr)
}

// TestDirectoryServeSteadyStateZeroAllocs guards the tentpole contract of
// the pooled-transaction / inline-entry directory: once the working set
// is warm (entries created, free lists primed, queues at capacity), a
// full recall/inval/upgrade/writeback serve cycle allocates nothing.
func TestDirectoryServeSteadyStateZeroAllocs(t *testing.T) {
	h := newAllocHarness(3)
	addr := mem.MakeAddr(0, 1)
	for i := 0; i < 50; i++ {
		h.serveCycle(addr)
	}
	avg := testing.AllocsPerRun(100, func() {
		h.serveCycle(addr)
	})
	if avg != 0 {
		t.Errorf("steady-state serve cycle allocates %.2f/run, want 0", avg)
	}
	if err := h.sys.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	if v := h.sys.Violations(); len(v) != 0 {
		t.Fatalf("coherence violations: %v", v)
	}
}

// TestCacheHitZeroAllocs guards the most frequent operation in the whole
// simulator: a processor cache hit (read on a shared line, store on an
// exclusive line) completes through the pooled done-event path without
// allocating.
func TestCacheHitZeroAllocs(t *testing.T) {
	h := newAllocHarness(2)
	rd := mem.MakeAddr(1, 1) // remote shared line, read hits
	wr := mem.MakeAddr(1, 2) // remote exclusive line, store hits
	h.access(0, false, rd)
	h.access(0, true, wr)
	for i := 0; i < 20; i++ {
		h.access(0, false, rd)
		h.access(0, true, wr)
	}
	avg := testing.AllocsPerRun(100, func() {
		h.access(0, false, rd)
		h.access(0, true, wr)
	})
	if avg != 0 {
		t.Errorf("cache hits allocate %.2f/run, want 0", avg)
	}
	if err := h.sys.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolSteadyStateZeroAllocsManyBlocks repeats the serve guard
// over a working set large enough to have grown the dense entry slices
// and the BlockMap through several rehashes, proving the growth path
// leaves no steady-state residue.
func TestProtocolSteadyStateZeroAllocsManyBlocks(t *testing.T) {
	h := newAllocHarness(3)
	addrs := make([]mem.BlockAddr, 200)
	for i := range addrs {
		addrs[i] = mem.MakeAddr(mem.NodeID(i%3), uint64(i))
	}
	warm := func() {
		for _, a := range addrs {
			h.access(1, true, a)
			h.access(2, false, a)
		}
	}
	warm()
	warm()
	avg := testing.AllocsPerRun(10, warm)
	if avg != 0 {
		t.Errorf("steady-state sweep over %d blocks allocates %.2f/run, want 0", len(addrs), avg)
	}
}
