package protocol

import (
	"testing"

	"specdsm/internal/mem"
)

// BenchmarkDirectoryServe measures one full steady-state serve cycle
// (read recall, shared grant, upgrade invalidation, write recall) against
// a warm directory entry — the protocol-side hot path of every study.
// The alloc guard in alloc_test.go pins this at 0 allocs/op.
func BenchmarkDirectoryServe(b *testing.B) {
	h := newAllocHarness(3)
	addr := mem.MakeAddr(0, 1)
	for i := 0; i < 10; i++ {
		h.serveCycle(addr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.serveCycle(addr)
	}
}

// BenchmarkCacheHit measures one read hit plus one store hit, completion
// callback included — the most frequent operation in the simulator.
func BenchmarkCacheHit(b *testing.B) {
	h := newAllocHarness(2)
	rd := mem.MakeAddr(1, 1)
	wr := mem.MakeAddr(1, 2)
	for i := 0; i < 20; i++ {
		h.access(0, false, rd)
		h.access(0, true, wr)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.access(0, false, rd)
		h.access(0, true, wr)
	}
}
