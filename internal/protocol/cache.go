package protocol

import (
	"fmt"

	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

type lineState uint8

const (
	lineInvalid lineState = iota
	lineShared
	lineExclusive
)

// line is one cached block: the merged processor-cache/remote-cache model.
// spec marks a speculatively placed copy; referenced is the verification
// bit of §4.2 (set on first processor reference); written tracks whether
// the processor stored to the line since fill (used by the speculative
// upgrade extension's verification); lastUse orders LRU eviction in
// finite-cache mode.
type line struct {
	state      lineState
	version    uint64
	spec       bool
	referenced bool
	written    bool
	lastUse    uint64
}

// pendingAccess is the single outstanding miss of the in-order processor.
// invalOnFill implements the standard MSHR rule for an invalidation that
// arrives while the fill is in flight: the data is used exactly once to
// complete the access (the read is ordered before the conflicting write)
// and the line is then dropped.
type pendingAccess struct {
	isWrite     bool
	start       sim.Cycle
	done        func(AccessOutcome)
	invalOnFill bool
}

// cache is the processor-side controller of one node.
type cache struct {
	n     *Node
	lines map[mem.BlockAddr]*line
	pend  map[mem.BlockAddr]*pendingAccess
	stats CacheStats
	// Finite-cache mode state.
	valid    int    // current valid-line count
	useClock uint64 // LRU timestamp source
	// evictPending marks exclusive lines whose voluntary writeback is in
	// flight; a recall crossing it is ignored (the writeback doubles as
	// the recall response). Cleared on the next exclusive fill.
	evictPending map[mem.BlockAddr]bool
}

func newCache(n *Node) *cache {
	return &cache{
		n:            n,
		lines:        make(map[mem.BlockAddr]*line),
		pend:         make(map[mem.BlockAddr]*pendingAccess),
		evictPending: make(map[mem.BlockAddr]bool),
	}
}

func (c *cache) line(addr mem.BlockAddr) *line {
	l := c.lines[addr]
	if l == nil {
		l = &line{}
		c.lines[addr] = l
	}
	return l
}

// touch stamps the line for LRU.
func (c *cache) touch(l *line) {
	c.useClock++
	l.lastUse = c.useClock
}

// install accounts a line transitioning invalid -> valid, evicting first
// if the capacity bound requires it. Re-acquiring a block also retires
// any eviction-writeback flag: a recall crossing that writeback must have
// arrived before the new grant (per-pair FIFO), so a recall seen after
// this point is a fresh one.
func (c *cache) install(addr mem.BlockAddr, l *line) {
	delete(c.evictPending, addr)
	cap := c.n.opts.CacheCapacity
	if cap > 0 && l.state == lineInvalid {
		for c.valid >= cap {
			if !c.evictOne(addr) {
				break // nothing evictable; exceed rather than deadlock
			}
		}
	}
	if l.state == lineInvalid {
		c.valid++
	}
}

// drop accounts a line transitioning valid -> invalid.
func (c *cache) drop(l *line) {
	if l.state != lineInvalid {
		c.valid--
	}
	l.state = lineInvalid
	l.spec = false
	l.written = false
}

// evictOne removes the least-recently-used valid line other than keep.
// Shared victims drop silently (the directory's sharer list tolerates
// over-approximation); exclusive victims write back voluntarily.
func (c *cache) evictOne(keep mem.BlockAddr) bool {
	var victimAddr mem.BlockAddr
	var victim *line
	found := false
	for addr, l := range c.lines {
		if l.state == lineInvalid || addr == keep {
			continue
		}
		if !found || l.lastUse < victim.lastUse || (l.lastUse == victim.lastUse && addr < victimAddr) {
			victimAddr, victim, found = addr, l, true
		}
	}
	if !found {
		return false
	}
	c.stats.Evictions++
	if victim.state == lineExclusive {
		c.stats.EvictionWritebacks++
		c.evictPending[victimAddr] = true
		wb := writebackMsg{
			Addr:      victimAddr,
			Version:   victim.version,
			Written:   victim.written,
			Voluntary: true,
		}
		home := victimAddr.Home()
		c.n.sys.kernel.After(c.n.sys.timing.CacheAccess, func() {
			c.n.sys.route(c.n.id, home, wb)
		})
	}
	c.drop(victim)
	return true
}

// Access issues one processor load (isWrite=false) or store (isWrite=true).
// done fires when the access completes, with its latency classification.
// The machine layer guarantees one outstanding access per processor.
func (c *cache) Access(isWrite bool, addr mem.BlockAddr, done func(AccessOutcome)) {
	t := c.n.sys.timing
	k := c.n.sys.kernel
	l := c.lines[addr]

	// Hit: load on S/E, store on E.
	if l != nil && l.state != lineInvalid && (!isWrite || l.state == lineExclusive) {
		c.touch(l)
		class := ClassHit
		if l.spec && !l.referenced {
			l.referenced = true
			c.stats.SpecReferenced++
			class = ClassSpecHit
			c.stats.SpecHits++
		} else {
			c.stats.Hits++
		}
		if isWrite {
			l.written = true
		}
		c.n.sys.checkObserved(c.n.id, addr, l.version)
		k.After(t.HitLatency, func() {
			done(AccessOutcome{Class: class, Latency: t.HitLatency})
		})
		return
	}

	home := addr.Home()

	// Local fast path: an access to one's own home blocks that needs no
	// coherence activity costs Table 1's flat 104-cycle local latency and
	// produces no coherence message (so it is invisible to predictors).
	if home == c.n.id {
		if version, ok := c.n.dir.tryLocalFastPath(addr, isWrite); ok {
			nl := c.line(addr)
			c.install(addr, nl)
			nl.state = lineShared
			if isWrite {
				nl.state = lineExclusive
			}
			nl.version = version
			nl.spec = false
			nl.referenced = false
			nl.written = isWrite
			c.touch(nl)
			c.stats.LocalAccesses++
			c.n.sys.checkObserved(c.n.id, addr, version)
			k.After(t.LocalMem, func() {
				done(AccessOutcome{Class: ClassLocal, Latency: t.LocalMem})
			})
			return
		}
	}

	// Coherence transaction required.
	if c.pend[addr] != nil {
		panic(fmt.Sprintf("protocol: node %d duplicate outstanding access to %v", c.n.id, addr))
	}
	kind := mem.ReqRead
	if isWrite {
		if l != nil && l.state == lineShared {
			kind = mem.ReqUpgrade
		} else {
			kind = mem.ReqWrite
		}
	}
	if isWrite {
		c.stats.ProtocolWrites++
	} else {
		c.stats.ProtocolReads++
	}
	c.pend[addr] = &pendingAccess{isWrite: isWrite, start: k.Now(), done: done}
	req := reqMsg{Kind: kind, Addr: addr}
	var hint *swiHintMsg
	if isWrite && c.n.opts.EnableSWI && c.n.opts.Active != nil {
		if prev, candidate := c.n.ewi.Update(c.n.id, addr); candidate {
			hint = &swiHintMsg{Addr: prev}
		}
	}
	k.After(t.BusOverhead, func() {
		c.n.sys.route(c.n.id, home, req)
		if hint != nil {
			c.n.sys.route(c.n.id, hint.Addr.Home(), *hint)
		}
	})
}

// deliver dispatches a protocol message addressed to this node's cache.
func (c *cache) deliver(src mem.NodeID, msg any) {
	switch m := msg.(type) {
	case invalMsg:
		c.handleInval(m)
	case recallMsg:
		c.handleRecall(m)
	case dataMsg:
		c.handleData(m)
	case upgradeAckMsg:
		c.handleUpgradeAck(m)
	case specDataMsg:
		c.handleSpecData(m)
	default:
		panic(fmt.Sprintf("protocol: cache %d got unknown message %T", c.n.id, msg))
	}
}

func (c *cache) handleInval(m invalMsg) {
	t := c.n.sys.timing
	l := c.lines[m.Addr]
	c.stats.InvalsReceived++
	specUnused := false
	switch {
	case l != nil && l.state == lineShared:
		specUnused = l.spec && !l.referenced
		c.drop(l)
	case l != nil && l.state == lineExclusive:
		panic(fmt.Sprintf("protocol: inval for exclusive line %v at node %d", m.Addr, c.n.id))
	default:
		// No valid copy: either a speculative copy we dropped, or the fill
		// for our outstanding read is still in flight. In the latter case
		// the data will be used once and discarded.
		if p := c.pend[m.Addr]; p != nil && !p.isWrite {
			p.invalOnFill = true
		}
	}
	ack := ackInvMsg{Addr: m.Addr, SpecUnused: specUnused}
	c.n.sys.kernel.After(t.CacheAccess, func() {
		c.n.sys.route(c.n.id, m.Addr.Home(), ack)
	})
}

func (c *cache) handleRecall(m recallMsg) {
	// A recall that crossed our voluntary eviction writeback is already
	// answered by that writeback (finite-cache mode).
	if c.evictPending[m.Addr] {
		delete(c.evictPending, m.Addr)
		return
	}
	t := c.n.sys.timing
	l := c.lines[m.Addr]
	if l == nil || l.state != lineExclusive {
		panic(fmt.Sprintf("protocol: recall for non-exclusive line %v at node %d", m.Addr, c.n.id))
	}
	c.stats.RecallsReceived++
	wb := writebackMsg{Addr: m.Addr, Version: l.version, SWI: m.SWI, Written: l.written}
	c.drop(l)
	c.n.sys.kernel.After(t.CacheAccess, func() {
		c.n.sys.route(c.n.id, m.Addr.Home(), wb)
	})
}

func (c *cache) handleData(m dataMsg) {
	t := c.n.sys.timing
	p := c.pend[m.Addr]
	if p == nil {
		panic(fmt.Sprintf("protocol: unsolicited data for %v at node %d", m.Addr, c.n.id))
	}
	delete(c.pend, m.Addr)
	l := c.line(m.Addr)
	c.install(m.Addr, l)
	l.version = m.Version
	l.spec = false
	l.referenced = false
	l.written = p.isWrite
	if m.Excl {
		l.state = lineExclusive
	} else {
		l.state = lineShared
	}
	c.touch(l)
	c.n.sys.checkObserved(c.n.id, m.Addr, m.Version)
	if p.invalOnFill {
		// The invalidation that raced with our fill applies now: the data
		// satisfies the ordered-earlier access exactly once.
		if m.Excl {
			panic("protocol: invalOnFill set for exclusive grant")
		}
		c.drop(l)
	}
	latency := c.n.sys.kernel.Now() + t.FillOverhead - p.start
	c.n.sys.kernel.After(t.FillOverhead, func() {
		p.done(AccessOutcome{Class: ClassProtocol, Latency: latency})
	})
}

func (c *cache) handleUpgradeAck(m upgradeAckMsg) {
	t := c.n.sys.timing
	p := c.pend[m.Addr]
	if p == nil || !p.isWrite {
		panic(fmt.Sprintf("protocol: unsolicited upgrade ack for %v at node %d", m.Addr, c.n.id))
	}
	l := c.lines[m.Addr]
	if l == nil || l.state != lineShared {
		panic(fmt.Sprintf("protocol: upgrade ack but line not shared for %v at node %d", m.Addr, c.n.id))
	}
	delete(c.pend, m.Addr)
	l.state = lineExclusive
	l.version = m.Version
	l.spec = false
	l.written = true
	c.touch(l)
	c.n.sys.checkObserved(c.n.id, m.Addr, m.Version)
	latency := c.n.sys.kernel.Now() + t.FillOverhead - p.start
	c.n.sys.kernel.After(t.FillOverhead, func() {
		p.done(AccessOutcome{Class: ClassProtocol, Latency: latency})
	})
}

// handleSpecData installs a speculatively forwarded read-only copy, or
// drops it under the paper's race rule: "upon a race between a
// speculatively-sent block and an in-flight read request for the block,
// the DSM node receiving the block drops the speculated message."
func (c *cache) handleSpecData(m specDataMsg) {
	l := c.lines[m.Addr]
	if c.pend[m.Addr] != nil || (l != nil && l.state != lineInvalid) {
		c.stats.SpecDropped++
		return
	}
	// Speculative data never displaces demand data in finite-cache mode.
	if cap := c.n.opts.CacheCapacity; cap > 0 && c.valid >= cap {
		c.stats.SpecDeclinedFull++
		c.stats.SpecDropped++
		return
	}
	nl := c.line(m.Addr)
	c.install(m.Addr, nl)
	nl.state = lineShared
	nl.version = m.Version
	nl.spec = true
	nl.referenced = false
	nl.written = false
	c.touch(nl)
	c.stats.SpecInstalled++
}

// sweepSpecLines reports speculative lines never referenced by the end of
// a run (misspeculations that were not yet caught by an invalidation).
func (c *cache) sweepSpecLines() (unreferenced uint64) {
	for _, l := range c.lines {
		if l.state != lineInvalid && l.spec && !l.referenced {
			unreferenced++
		}
	}
	return unreferenced
}
