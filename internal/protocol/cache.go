package protocol

import (
	"fmt"

	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

type lineState uint8

const (
	lineInvalid lineState = iota
	lineShared
	lineExclusive
)

// line is one cached block: the merged processor-cache/remote-cache model.
// spec marks a speculatively placed copy; referenced is the verification
// bit of §4.2 (set on first processor reference); written tracks whether
// the processor stored to the line since fill (used by the speculative
// upgrade extension's verification); lastUse orders LRU eviction in
// finite-cache mode.
//
// A line also carries the block's transient per-cache state that used to
// live in separate maps keyed by the same address: the single outstanding
// miss (hasPend/pend, the old pend map) and the in-flight voluntary
// eviction writeback marker (evictPending, the old evictPending map).
// Lines live inline in the cache's dense lines slice, indexed through a
// mem.BlockMap; addr is kept in the line so eviction scans and audits can
// walk the slice directly. "Deleting" transient state is clearing a flag,
// so the insert-only table suffices and steady state allocates nothing.
type line struct {
	addr       mem.BlockAddr
	state      lineState
	version    uint64
	spec       bool
	referenced bool
	written    bool
	lastUse    uint64
	// hasPend/pend is the single outstanding miss of the in-order
	// processor for this block.
	hasPend bool
	pend    pendingAccess
	// evictPending marks an exclusive line whose voluntary writeback is
	// in flight; a recall crossing it is ignored (the writeback doubles
	// as the recall response). Cleared on the next fill of the block.
	evictPending bool
}

// pendingAccess is the single outstanding miss of the in-order processor.
// invalOnFill implements the standard MSHR rule for an invalidation that
// arrives while the fill is in flight: the data is used exactly once to
// complete the access (the read is ordered before the conflicting write)
// and the line is then dropped. Stored by value inside the line so a miss
// allocates nothing.
type pendingAccess struct {
	isWrite     bool
	start       sim.Cycle
	done        func(AccessOutcome)
	invalOnFill bool
}

// doneEvent is a pooled deferred completion callback: every access ends
// with "invoke done(outcome) after a latency", and hits are the most
// frequent operation in the whole simulator, so this path must not
// allocate a closure per access.
type doneEvent struct {
	c   *cache
	fn  func(AccessOutcome)
	out AccessOutcome
	run func()
}

func (ev *doneEvent) fire() {
	c, fn, out := ev.c, ev.fn, ev.out
	ev.fn = nil
	c.donePool.Put(ev)
	fn(out)
}

// cache is the processor-side controller of one node. Per-block state
// lives inline in the dense lines slice; table maps a block to its stable
// index (lines are created on first touch and never removed).
type cache struct {
	n        *Node
	table    mem.BlockMap
	lines    []line
	stats    CacheStats
	donePool sim.FreeList[doneEvent]
	// pendCount tracks outstanding misses (quiescence checking).
	pendCount int
	// Finite-cache mode state.
	valid    int    // current valid-line count
	useClock uint64 // LRU timestamp source
}

func newCache(n *Node) *cache {
	return &cache{n: n}
}

// reset re-arms the cache for a fresh run: the block table and dense
// lines slice are cleared but their storage is retained (zeroing the
// vacated elements so stale completion closures are not pinned), and the
// counters return to zero. The done-event pool is kept. A reset cache is
// observably equivalent to a freshly constructed one: line indices are
// re-assigned by first touch, which the workload determines.
func (c *cache) reset() {
	c.table.Reset()
	clear(c.lines)
	c.lines = c.lines[:0]
	c.stats = CacheStats{}
	c.pendCount = 0
	c.valid = 0
	c.useClock = 0
}

// line returns addr's line, creating it (invalid) on first touch. The
// pointer is only valid until the next line creation (slice growth); it
// must not be held across scheduled events.
func (c *cache) line(addr mem.BlockAddr) *line {
	if li, ok := c.table.Get(addr); ok {
		return &c.lines[li]
	}
	li := int32(len(c.lines))
	c.lines = append(c.lines, line{addr: addr})
	c.table.Put(addr, li)
	return &c.lines[li]
}

// lookup returns addr's line without creating it, or nil.
func (c *cache) lookup(addr mem.BlockAddr) *line {
	if li, ok := c.table.Get(addr); ok {
		return &c.lines[li]
	}
	return nil
}

// doneAfter schedules done(out) after delay cycles via the pooled event.
func (c *cache) doneAfter(delay sim.Cycle, done func(AccessOutcome), out AccessOutcome) {
	ev, ok := c.donePool.Get()
	if !ok {
		ev = &doneEvent{c: c}
		ev.run = ev.fire
	}
	ev.fn, ev.out = done, out
	c.n.sys.kernel.After(delay, ev.run)
}

// touch stamps the line for LRU.
func (c *cache) touch(l *line) {
	c.useClock++
	l.lastUse = c.useClock
}

// install accounts a line transitioning invalid -> valid, evicting first
// if the capacity bound requires it. Re-acquiring a block also retires
// any eviction-writeback flag: a recall crossing that writeback must have
// arrived before the new grant (per-pair FIFO), so a recall seen after
// this point is a fresh one.
func (c *cache) install(l *line) {
	l.evictPending = false
	cap := c.n.opts.CacheCapacity
	if cap > 0 && l.state == lineInvalid {
		for c.valid >= cap {
			if !c.evictOne(l.addr) {
				break // nothing evictable; exceed rather than deadlock
			}
		}
	}
	if l.state == lineInvalid {
		c.valid++
	}
}

// drop accounts a line transitioning valid -> invalid.
func (c *cache) drop(l *line) {
	if l.state != lineInvalid {
		c.valid--
	}
	l.state = lineInvalid
	l.spec = false
	l.written = false
}

// evictOne removes the least-recently-used valid line other than keep.
// Shared victims drop silently (the directory's sharer list tolerates
// over-approximation); exclusive victims write back voluntarily. The
// linear scan over the dense slice picks the minimum (lastUse, addr)
// pair, so the victim is deterministic.
func (c *cache) evictOne(keep mem.BlockAddr) bool {
	var victim *line
	for i := range c.lines {
		l := &c.lines[i]
		if l.state == lineInvalid || l.addr == keep {
			continue
		}
		if victim == nil || l.lastUse < victim.lastUse || (l.lastUse == victim.lastUse && l.addr < victim.addr) {
			victim = l
		}
	}
	if victim == nil {
		return false
	}
	c.stats.Evictions++
	if victim.state == lineExclusive {
		c.stats.EvictionWritebacks++
		victim.evictPending = true
		c.n.sys.routeAfter(c.n.sys.timing.CacheAccess, c.n.id, victim.addr.Home(), Msg{
			Kind:      MsgWriteback,
			Addr:      victim.addr,
			Version:   victim.version,
			Written:   victim.written,
			Voluntary: true,
		})
	}
	c.drop(victim)
	return true
}

// Access issues one processor load (isWrite=false) or store (isWrite=true).
// done fires when the access completes, with its latency classification.
// The machine layer guarantees one outstanding access per processor.
func (c *cache) Access(isWrite bool, addr mem.BlockAddr, done func(AccessOutcome)) {
	t := c.n.sys.timing
	k := c.n.sys.kernel
	l := c.lookup(addr)

	// Hit: load on S/E, store on E.
	if l != nil && l.state != lineInvalid && (!isWrite || l.state == lineExclusive) {
		c.touch(l)
		class := ClassHit
		if l.spec && !l.referenced {
			l.referenced = true
			c.stats.SpecReferenced++
			class = ClassSpecHit
			c.stats.SpecHits++
		} else {
			c.stats.Hits++
		}
		if isWrite {
			l.written = true
		}
		c.n.sys.checkObserved(c.n.id, addr, l.version)
		c.doneAfter(t.HitLatency, done, AccessOutcome{Class: class, Latency: t.HitLatency})
		return
	}

	home := addr.Home()

	// Local fast path: an access to one's own home blocks that needs no
	// coherence activity costs Table 1's flat 104-cycle local latency and
	// produces no coherence message (so it is invisible to predictors).
	if home == c.n.id {
		if version, ok := c.n.dir.tryLocalFastPath(addr, isWrite); ok {
			nl := c.line(addr)
			c.install(nl)
			nl.state = lineShared
			if isWrite {
				nl.state = lineExclusive
			}
			nl.version = version
			nl.spec = false
			nl.referenced = false
			nl.written = isWrite
			c.touch(nl)
			c.stats.LocalAccesses++
			c.n.sys.checkObserved(c.n.id, addr, version)
			c.doneAfter(t.LocalMem, done, AccessOutcome{Class: ClassLocal, Latency: t.LocalMem})
			return
		}
	}

	// Coherence transaction required. (c.line may have just created the
	// entry, so re-derive the state from it rather than from l.)
	nl := c.line(addr)
	if nl.hasPend {
		panic(fmt.Sprintf("protocol: node %d duplicate outstanding access to %v", c.n.id, addr))
	}
	kind := mem.ReqRead
	if isWrite {
		if nl.state == lineShared {
			kind = mem.ReqUpgrade
		} else {
			kind = mem.ReqWrite
		}
	}
	if isWrite {
		c.stats.ProtocolWrites++
	} else {
		c.stats.ProtocolReads++
	}
	nl.hasPend = true
	nl.pend = pendingAccess{isWrite: isWrite, start: k.Now(), done: done}
	c.pendCount++
	c.n.sys.routeAfter(t.BusOverhead, c.n.id, home, Msg{Kind: MsgReq, Req: kind, Addr: addr})
	if isWrite && c.n.opts.EnableSWI && c.n.opts.Active != nil {
		if prev, candidate := c.n.ewi.Update(c.n.id, addr); candidate {
			c.n.sys.routeAfter(t.BusOverhead, c.n.id, prev.Home(), Msg{Kind: MsgSWIHint, Addr: prev})
		}
	}
}

// deliver dispatches a protocol message addressed to this node's cache.
func (c *cache) deliver(src mem.NodeID, m Msg) {
	switch m.Kind {
	case MsgInval:
		c.handleInval(m)
	case MsgRecall:
		c.handleRecall(m)
	case MsgData:
		c.handleData(m)
	case MsgUpgradeAck:
		c.handleUpgradeAck(m)
	case MsgSpecData:
		c.handleSpecData(m)
	default:
		panic(fmt.Sprintf("protocol: cache %d got unexpected message %v", c.n.id, m.Kind))
	}
}

// clearPend retires l's outstanding miss and returns it. The stored copy
// is zeroed so the completion closure is not pinned past the access.
func (c *cache) clearPend(l *line) pendingAccess {
	p := l.pend
	l.hasPend = false
	l.pend = pendingAccess{}
	c.pendCount--
	return p
}

func (c *cache) handleInval(m Msg) {
	t := c.n.sys.timing
	l := c.lookup(m.Addr)
	c.stats.InvalsReceived++
	specUnused := false
	switch {
	case l != nil && l.state == lineShared:
		specUnused = l.spec && !l.referenced
		c.drop(l)
	case l != nil && l.state == lineExclusive:
		panic(fmt.Sprintf("protocol: inval for exclusive line %v at node %d", m.Addr, c.n.id))
	default:
		// No valid copy: either a speculative copy we dropped, or the fill
		// for our outstanding read is still in flight. In the latter case
		// the data will be used once and discarded.
		if l != nil && l.hasPend && !l.pend.isWrite {
			l.pend.invalOnFill = true
		}
	}
	c.n.sys.routeAfter(t.CacheAccess, c.n.id, m.Addr.Home(),
		Msg{Kind: MsgAckInv, Addr: m.Addr, SpecUnused: specUnused})
}

func (c *cache) handleRecall(m Msg) {
	l := c.lookup(m.Addr)
	// A recall that crossed our voluntary eviction writeback is already
	// answered by that writeback (finite-cache mode).
	if l != nil && l.evictPending {
		l.evictPending = false
		return
	}
	t := c.n.sys.timing
	if l == nil || l.state != lineExclusive {
		panic(fmt.Sprintf("protocol: recall for non-exclusive line %v at node %d", m.Addr, c.n.id))
	}
	c.stats.RecallsReceived++
	wb := Msg{Kind: MsgWriteback, Addr: m.Addr, Version: l.version, SWI: m.SWI, Written: l.written}
	c.drop(l)
	c.n.sys.routeAfter(t.CacheAccess, c.n.id, m.Addr.Home(), wb)
}

func (c *cache) handleData(m Msg) {
	t := c.n.sys.timing
	l := c.lookup(m.Addr)
	if l == nil || !l.hasPend {
		panic(fmt.Sprintf("protocol: unsolicited data for %v at node %d", m.Addr, c.n.id))
	}
	p := c.clearPend(l)
	c.install(l)
	l.version = m.Version
	l.spec = false
	l.referenced = false
	l.written = p.isWrite
	if m.Excl {
		l.state = lineExclusive
	} else {
		l.state = lineShared
	}
	c.touch(l)
	c.n.sys.checkObserved(c.n.id, m.Addr, m.Version)
	if p.invalOnFill {
		// The invalidation that raced with our fill applies now: the data
		// satisfies the ordered-earlier access exactly once.
		if m.Excl {
			panic("protocol: invalOnFill set for exclusive grant")
		}
		c.drop(l)
	}
	latency := c.n.sys.kernel.Now() + t.FillOverhead - p.start
	c.doneAfter(t.FillOverhead, p.done, AccessOutcome{Class: ClassProtocol, Latency: latency})
}

func (c *cache) handleUpgradeAck(m Msg) {
	t := c.n.sys.timing
	l := c.lookup(m.Addr)
	if l == nil || !l.hasPend || !l.pend.isWrite {
		panic(fmt.Sprintf("protocol: unsolicited upgrade ack for %v at node %d", m.Addr, c.n.id))
	}
	if l.state != lineShared {
		panic(fmt.Sprintf("protocol: upgrade ack but line not shared for %v at node %d", m.Addr, c.n.id))
	}
	p := c.clearPend(l)
	l.state = lineExclusive
	l.version = m.Version
	l.spec = false
	l.written = true
	c.touch(l)
	c.n.sys.checkObserved(c.n.id, m.Addr, m.Version)
	latency := c.n.sys.kernel.Now() + t.FillOverhead - p.start
	c.doneAfter(t.FillOverhead, p.done, AccessOutcome{Class: ClassProtocol, Latency: latency})
}

// handleSpecData installs a speculatively forwarded read-only copy, or
// drops it under the paper's race rule: "upon a race between a
// speculatively-sent block and an in-flight read request for the block,
// the DSM node receiving the block drops the speculated message."
func (c *cache) handleSpecData(m Msg) {
	l := c.lookup(m.Addr)
	if l != nil && (l.hasPend || l.state != lineInvalid) {
		c.stats.SpecDropped++
		return
	}
	// Speculative data never displaces demand data in finite-cache mode.
	if cap := c.n.opts.CacheCapacity; cap > 0 && c.valid >= cap {
		c.stats.SpecDeclinedFull++
		c.stats.SpecDropped++
		return
	}
	nl := c.line(m.Addr)
	c.install(nl)
	nl.state = lineShared
	nl.version = m.Version
	nl.spec = true
	nl.referenced = false
	nl.written = false
	c.touch(nl)
	c.stats.SpecInstalled++
}

// sweepSpecLines reports speculative lines never referenced by the end of
// a run (misspeculations that were not yet caught by an invalidation).
func (c *cache) sweepSpecLines() (unreferenced uint64) {
	for i := range c.lines {
		l := &c.lines[i]
		if l.state != lineInvalid && l.spec && !l.referenced {
			unreferenced++
		}
	}
	return unreferenced
}
