package protocol

import (
	"fmt"

	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

type lineState uint8

const (
	lineInvalid lineState = iota
	lineShared
	lineExclusive
)

// line is one cached block: the merged processor-cache/remote-cache model.
// spec marks a speculatively placed copy; referenced is the verification
// bit of §4.2 (set on first processor reference); written tracks whether
// the processor stored to the line since fill (used by the speculative
// upgrade extension's verification); lastUse orders LRU eviction in
// finite-cache mode.
type line struct {
	state      lineState
	version    uint64
	spec       bool
	referenced bool
	written    bool
	lastUse    uint64
}

// pendingAccess is the single outstanding miss of the in-order processor.
// invalOnFill implements the standard MSHR rule for an invalidation that
// arrives while the fill is in flight: the data is used exactly once to
// complete the access (the read is ordered before the conflicting write)
// and the line is then dropped. Stored by value in the pend map so a miss
// allocates nothing.
type pendingAccess struct {
	isWrite     bool
	start       sim.Cycle
	done        func(AccessOutcome)
	invalOnFill bool
}

// doneEvent is a pooled deferred completion callback: every access ends
// with "invoke done(outcome) after a latency", and hits are the most
// frequent operation in the whole simulator, so this path must not
// allocate a closure per access.
type doneEvent struct {
	c   *cache
	fn  func(AccessOutcome)
	out AccessOutcome
	run func()
}

func (ev *doneEvent) fire() {
	c, fn, out := ev.c, ev.fn, ev.out
	ev.fn = nil
	c.donePool.Put(ev)
	fn(out)
}

// cache is the processor-side controller of one node.
type cache struct {
	n        *Node
	lines    map[mem.BlockAddr]*line
	pend     map[mem.BlockAddr]pendingAccess
	stats    CacheStats
	donePool sim.FreeList[doneEvent]
	// Finite-cache mode state.
	valid    int    // current valid-line count
	useClock uint64 // LRU timestamp source
	// evictPending marks exclusive lines whose voluntary writeback is in
	// flight; a recall crossing it is ignored (the writeback doubles as
	// the recall response). Cleared on the next exclusive fill.
	evictPending map[mem.BlockAddr]bool
}

func newCache(n *Node) *cache {
	return &cache{
		n:            n,
		lines:        make(map[mem.BlockAddr]*line),
		pend:         make(map[mem.BlockAddr]pendingAccess),
		evictPending: make(map[mem.BlockAddr]bool),
	}
}

func (c *cache) line(addr mem.BlockAddr) *line {
	l := c.lines[addr]
	if l == nil {
		l = &line{}
		c.lines[addr] = l
	}
	return l
}

// doneAfter schedules done(out) after delay cycles via the pooled event.
func (c *cache) doneAfter(delay sim.Cycle, done func(AccessOutcome), out AccessOutcome) {
	ev, ok := c.donePool.Get()
	if !ok {
		ev = &doneEvent{c: c}
		ev.run = ev.fire
	}
	ev.fn, ev.out = done, out
	c.n.sys.kernel.After(delay, ev.run)
}

// touch stamps the line for LRU.
func (c *cache) touch(l *line) {
	c.useClock++
	l.lastUse = c.useClock
}

// install accounts a line transitioning invalid -> valid, evicting first
// if the capacity bound requires it. Re-acquiring a block also retires
// any eviction-writeback flag: a recall crossing that writeback must have
// arrived before the new grant (per-pair FIFO), so a recall seen after
// this point is a fresh one.
func (c *cache) install(addr mem.BlockAddr, l *line) {
	delete(c.evictPending, addr)
	cap := c.n.opts.CacheCapacity
	if cap > 0 && l.state == lineInvalid {
		for c.valid >= cap {
			if !c.evictOne(addr) {
				break // nothing evictable; exceed rather than deadlock
			}
		}
	}
	if l.state == lineInvalid {
		c.valid++
	}
}

// drop accounts a line transitioning valid -> invalid.
func (c *cache) drop(l *line) {
	if l.state != lineInvalid {
		c.valid--
	}
	l.state = lineInvalid
	l.spec = false
	l.written = false
}

// evictOne removes the least-recently-used valid line other than keep.
// Shared victims drop silently (the directory's sharer list tolerates
// over-approximation); exclusive victims write back voluntarily.
func (c *cache) evictOne(keep mem.BlockAddr) bool {
	var victimAddr mem.BlockAddr
	var victim *line
	found := false
	for addr, l := range c.lines {
		if l.state == lineInvalid || addr == keep {
			continue
		}
		if !found || l.lastUse < victim.lastUse || (l.lastUse == victim.lastUse && addr < victimAddr) {
			victimAddr, victim, found = addr, l, true
		}
	}
	if !found {
		return false
	}
	c.stats.Evictions++
	if victim.state == lineExclusive {
		c.stats.EvictionWritebacks++
		c.evictPending[victimAddr] = true
		c.n.sys.routeAfter(c.n.sys.timing.CacheAccess, c.n.id, victimAddr.Home(), Msg{
			Kind:      MsgWriteback,
			Addr:      victimAddr,
			Version:   victim.version,
			Written:   victim.written,
			Voluntary: true,
		})
	}
	c.drop(victim)
	return true
}

// Access issues one processor load (isWrite=false) or store (isWrite=true).
// done fires when the access completes, with its latency classification.
// The machine layer guarantees one outstanding access per processor.
func (c *cache) Access(isWrite bool, addr mem.BlockAddr, done func(AccessOutcome)) {
	t := c.n.sys.timing
	k := c.n.sys.kernel
	l := c.lines[addr]

	// Hit: load on S/E, store on E.
	if l != nil && l.state != lineInvalid && (!isWrite || l.state == lineExclusive) {
		c.touch(l)
		class := ClassHit
		if l.spec && !l.referenced {
			l.referenced = true
			c.stats.SpecReferenced++
			class = ClassSpecHit
			c.stats.SpecHits++
		} else {
			c.stats.Hits++
		}
		if isWrite {
			l.written = true
		}
		c.n.sys.checkObserved(c.n.id, addr, l.version)
		c.doneAfter(t.HitLatency, done, AccessOutcome{Class: class, Latency: t.HitLatency})
		return
	}

	home := addr.Home()

	// Local fast path: an access to one's own home blocks that needs no
	// coherence activity costs Table 1's flat 104-cycle local latency and
	// produces no coherence message (so it is invisible to predictors).
	if home == c.n.id {
		if version, ok := c.n.dir.tryLocalFastPath(addr, isWrite); ok {
			nl := c.line(addr)
			c.install(addr, nl)
			nl.state = lineShared
			if isWrite {
				nl.state = lineExclusive
			}
			nl.version = version
			nl.spec = false
			nl.referenced = false
			nl.written = isWrite
			c.touch(nl)
			c.stats.LocalAccesses++
			c.n.sys.checkObserved(c.n.id, addr, version)
			c.doneAfter(t.LocalMem, done, AccessOutcome{Class: ClassLocal, Latency: t.LocalMem})
			return
		}
	}

	// Coherence transaction required.
	if _, dup := c.pend[addr]; dup {
		panic(fmt.Sprintf("protocol: node %d duplicate outstanding access to %v", c.n.id, addr))
	}
	kind := mem.ReqRead
	if isWrite {
		if l != nil && l.state == lineShared {
			kind = mem.ReqUpgrade
		} else {
			kind = mem.ReqWrite
		}
	}
	if isWrite {
		c.stats.ProtocolWrites++
	} else {
		c.stats.ProtocolReads++
	}
	c.pend[addr] = pendingAccess{isWrite: isWrite, start: k.Now(), done: done}
	c.n.sys.routeAfter(t.BusOverhead, c.n.id, home, Msg{Kind: MsgReq, Req: kind, Addr: addr})
	if isWrite && c.n.opts.EnableSWI && c.n.opts.Active != nil {
		if prev, candidate := c.n.ewi.Update(c.n.id, addr); candidate {
			c.n.sys.routeAfter(t.BusOverhead, c.n.id, prev.Home(), Msg{Kind: MsgSWIHint, Addr: prev})
		}
	}
}

// deliver dispatches a protocol message addressed to this node's cache.
func (c *cache) deliver(src mem.NodeID, m Msg) {
	switch m.Kind {
	case MsgInval:
		c.handleInval(m)
	case MsgRecall:
		c.handleRecall(m)
	case MsgData:
		c.handleData(m)
	case MsgUpgradeAck:
		c.handleUpgradeAck(m)
	case MsgSpecData:
		c.handleSpecData(m)
	default:
		panic(fmt.Sprintf("protocol: cache %d got unexpected message %v", c.n.id, m.Kind))
	}
}

func (c *cache) handleInval(m Msg) {
	t := c.n.sys.timing
	l := c.lines[m.Addr]
	c.stats.InvalsReceived++
	specUnused := false
	switch {
	case l != nil && l.state == lineShared:
		specUnused = l.spec && !l.referenced
		c.drop(l)
	case l != nil && l.state == lineExclusive:
		panic(fmt.Sprintf("protocol: inval for exclusive line %v at node %d", m.Addr, c.n.id))
	default:
		// No valid copy: either a speculative copy we dropped, or the fill
		// for our outstanding read is still in flight. In the latter case
		// the data will be used once and discarded.
		if p, ok := c.pend[m.Addr]; ok && !p.isWrite {
			p.invalOnFill = true
			c.pend[m.Addr] = p
		}
	}
	c.n.sys.routeAfter(t.CacheAccess, c.n.id, m.Addr.Home(),
		Msg{Kind: MsgAckInv, Addr: m.Addr, SpecUnused: specUnused})
}

func (c *cache) handleRecall(m Msg) {
	// A recall that crossed our voluntary eviction writeback is already
	// answered by that writeback (finite-cache mode).
	if c.evictPending[m.Addr] {
		delete(c.evictPending, m.Addr)
		return
	}
	t := c.n.sys.timing
	l := c.lines[m.Addr]
	if l == nil || l.state != lineExclusive {
		panic(fmt.Sprintf("protocol: recall for non-exclusive line %v at node %d", m.Addr, c.n.id))
	}
	c.stats.RecallsReceived++
	wb := Msg{Kind: MsgWriteback, Addr: m.Addr, Version: l.version, SWI: m.SWI, Written: l.written}
	c.drop(l)
	c.n.sys.routeAfter(t.CacheAccess, c.n.id, m.Addr.Home(), wb)
}

func (c *cache) handleData(m Msg) {
	t := c.n.sys.timing
	p, ok := c.pend[m.Addr]
	if !ok {
		panic(fmt.Sprintf("protocol: unsolicited data for %v at node %d", m.Addr, c.n.id))
	}
	delete(c.pend, m.Addr)
	l := c.line(m.Addr)
	c.install(m.Addr, l)
	l.version = m.Version
	l.spec = false
	l.referenced = false
	l.written = p.isWrite
	if m.Excl {
		l.state = lineExclusive
	} else {
		l.state = lineShared
	}
	c.touch(l)
	c.n.sys.checkObserved(c.n.id, m.Addr, m.Version)
	if p.invalOnFill {
		// The invalidation that raced with our fill applies now: the data
		// satisfies the ordered-earlier access exactly once.
		if m.Excl {
			panic("protocol: invalOnFill set for exclusive grant")
		}
		c.drop(l)
	}
	latency := c.n.sys.kernel.Now() + t.FillOverhead - p.start
	c.doneAfter(t.FillOverhead, p.done, AccessOutcome{Class: ClassProtocol, Latency: latency})
}

func (c *cache) handleUpgradeAck(m Msg) {
	t := c.n.sys.timing
	p, ok := c.pend[m.Addr]
	if !ok || !p.isWrite {
		panic(fmt.Sprintf("protocol: unsolicited upgrade ack for %v at node %d", m.Addr, c.n.id))
	}
	l := c.lines[m.Addr]
	if l == nil || l.state != lineShared {
		panic(fmt.Sprintf("protocol: upgrade ack but line not shared for %v at node %d", m.Addr, c.n.id))
	}
	delete(c.pend, m.Addr)
	l.state = lineExclusive
	l.version = m.Version
	l.spec = false
	l.written = true
	c.touch(l)
	c.n.sys.checkObserved(c.n.id, m.Addr, m.Version)
	latency := c.n.sys.kernel.Now() + t.FillOverhead - p.start
	c.doneAfter(t.FillOverhead, p.done, AccessOutcome{Class: ClassProtocol, Latency: latency})
}

// handleSpecData installs a speculatively forwarded read-only copy, or
// drops it under the paper's race rule: "upon a race between a
// speculatively-sent block and an in-flight read request for the block,
// the DSM node receiving the block drops the speculated message."
func (c *cache) handleSpecData(m Msg) {
	l := c.lines[m.Addr]
	if _, out := c.pend[m.Addr]; out || (l != nil && l.state != lineInvalid) {
		c.stats.SpecDropped++
		return
	}
	// Speculative data never displaces demand data in finite-cache mode.
	if cap := c.n.opts.CacheCapacity; cap > 0 && c.valid >= cap {
		c.stats.SpecDeclinedFull++
		c.stats.SpecDropped++
		return
	}
	nl := c.line(m.Addr)
	c.install(m.Addr, nl)
	nl.state = lineShared
	nl.version = m.Version
	nl.spec = true
	nl.referenced = false
	nl.written = false
	c.touch(nl)
	c.stats.SpecInstalled++
}

// sweepSpecLines reports speculative lines never referenced by the end of
// a run (misspeculations that were not yet caught by an invalidation).
func (c *cache) sweepSpecLines() (unreferenced uint64) {
	for _, l := range c.lines {
		if l.state != lineInvalid && l.spec && !l.referenced {
			unreferenced++
		}
	}
	return unreferenced
}
