package protocol

import (
	"fmt"

	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

type lineState uint8

const (
	lineInvalid lineState = iota
	lineShared
	lineExclusive
)

// Cache-line state is split structure-of-arrays across two parallel
// slices sharing one stable index (see cache.hot/cold): lineHot is the
// 24-byte record a hit reads — state, the flags byte, the granted
// version, and the LRU stamp — while lineCold carries the block address
// and the outstanding-miss record (the old pend map), which only misses,
// evictions, and audits touch. The hit path, the most frequent operation
// in the whole simulator, dispatches entirely out of lineHot.
type lineHot struct {
	version uint64
	lastUse uint64
	state   lineState
	flags   uint8
}

// lineHot.flags bits. spec marks a speculatively placed copy; referenced
// is the verification bit of §4.2 (set on first processor reference);
// written tracks whether the processor stored to the line since fill
// (used by the speculative upgrade extension's verification); hasPend
// mirrors "cold.pend holds the single outstanding miss"; evictPending
// marks an exclusive line whose voluntary writeback is in flight — a
// recall crossing it is ignored (the writeback doubles as the recall
// response), and the flag clears on the next fill of the block.
const (
	lfSpec uint8 = 1 << iota
	lfReferenced
	lfWritten
	lfHasPend
	lfEvictPending
)

// lineCold is the cold half of one cache line; addr is kept here so
// eviction scans and audits can walk the slice directly.
type lineCold struct {
	addr mem.BlockAddr
	// pend is the single outstanding miss of the in-order processor for
	// this block (guarded by lfHasPend).
	pend pendingAccess
}

// pendingAccess is the single outstanding miss of the in-order processor.
// invalOnFill implements the standard MSHR rule for an invalidation that
// arrives while the fill is in flight: the data is used exactly once to
// complete the access (the read is ordered before the conflicting write)
// and the line is then dropped. Stored by value inside the cold record so
// a miss allocates nothing.
type pendingAccess struct {
	isWrite     bool
	start       sim.Cycle
	done        func(AccessOutcome)
	invalOnFill bool
}

// doneEvent is a pooled deferred completion callback: every access ends
// with "invoke done(outcome) after a latency", and hits are the most
// frequent operation in the whole simulator, so this path must not
// allocate a closure per access.
type doneEvent struct {
	c   *cache
	fn  func(AccessOutcome)
	out AccessOutcome
	run func()
}

func (ev *doneEvent) fire() {
	c, fn, out := ev.c, ev.fn, ev.out
	ev.fn = nil
	c.donePool.Put(ev)
	fn(out)
}

// cache is the processor-side controller of one node. Per-block state
// lives inline in the parallel hot/cold slices; table maps a block to its
// stable index (lines are created on first touch and never removed, so
// hot[i]/cold[i] are two halves of the same line forever).
type cache struct {
	n        *Node
	table    mem.BlockMap
	hot      []lineHot
	cold     []lineCold
	stats    CacheStats
	donePool sim.FreeList[doneEvent]
	// pendCount tracks outstanding misses (quiescence checking).
	pendCount int
	// Finite-cache mode state.
	valid    int    // current valid-line count
	useClock uint64 // LRU timestamp source
}

func newCache(n *Node) *cache {
	// Pre-sizing the parallel slices turns the first-touch doubling chain
	// (one reallocation per power of two) into a single allocation per
	// array; a node's referenced-line working set typically fits.
	return &cache{
		n:    n,
		hot:  make([]lineHot, 0, 128),
		cold: make([]lineCold, 0, 128),
	}
}

// reset re-arms the cache for a fresh run: the block table and dense
// hot/cold slices are cleared but their storage is retained (zeroing the
// vacated elements so stale completion closures are not pinned), and the
// counters return to zero. The done-event pool is kept. A reset cache is
// observably equivalent to a freshly constructed one: line indices are
// re-assigned by first touch, which the workload determines.
func (c *cache) reset() {
	c.table.Reset()
	clear(c.hot)
	c.hot = c.hot[:0]
	clear(c.cold)
	c.cold = c.cold[:0]
	c.stats = CacheStats{}
	c.pendCount = 0
	c.valid = 0
	c.useClock = 0
}

// lineIdx returns the stable index of addr's line, creating it (invalid)
// on first touch.
func (c *cache) lineIdx(addr mem.BlockAddr) int32 {
	li, created := c.table.Reserve(addr, int32(len(c.hot)))
	if created {
		c.hot = append(c.hot, lineHot{})
		c.cold = append(c.cold, lineCold{addr: addr})
	}
	return li
}

// lookupIdx returns the stable index of addr's line without creating it.
func (c *cache) lookupIdx(addr mem.BlockAddr) (int32, bool) {
	return c.table.Get(addr)
}

// doneAfter schedules done(out) after delay cycles via the pooled event.
func (c *cache) doneAfter(delay sim.Cycle, done func(AccessOutcome), out AccessOutcome) {
	ev, ok := c.donePool.Get()
	if !ok {
		ev = &doneEvent{c: c}
		ev.run = ev.fire
	}
	ev.fn, ev.out = done, out
	c.n.sys.kernel.After(delay, ev.run)
}

// touch stamps the line for LRU.
func (c *cache) touch(h *lineHot) {
	c.useClock++
	h.lastUse = c.useClock
}

// install accounts line li transitioning invalid -> valid, evicting first
// if the capacity bound requires it. Re-acquiring a block also retires
// any eviction-writeback flag: a recall crossing that writeback must have
// arrived before the new grant (per-pair FIFO), so a recall seen after
// this point is a fresh one.
func (c *cache) install(li int32) {
	c.hot[li].flags &^= lfEvictPending
	cap := c.n.opts.CacheCapacity
	if cap > 0 && c.hot[li].state == lineInvalid {
		for c.valid >= cap {
			if !c.evictOne(c.cold[li].addr) {
				break // nothing evictable; exceed rather than deadlock
			}
		}
	}
	if c.hot[li].state == lineInvalid {
		c.valid++
	}
}

// drop accounts line li transitioning valid -> invalid.
func (c *cache) drop(li int32) {
	h := &c.hot[li]
	if h.state != lineInvalid {
		c.valid--
	}
	h.state = lineInvalid
	h.flags &^= lfSpec | lfWritten
}

// evictOne removes the least-recently-used valid line other than keep.
// Shared victims drop silently (the directory's sharer list tolerates
// over-approximation); exclusive victims write back voluntarily. The
// linear scan over the dense hot slice picks the minimum (lastUse, addr)
// pair, so the victim is deterministic; only valid candidates touch the
// cold array for their address.
func (c *cache) evictOne(keep mem.BlockAddr) bool {
	victim := int32(-1)
	var victimAddr mem.BlockAddr
	for i := range c.hot {
		h := &c.hot[i]
		if h.state == lineInvalid {
			continue
		}
		addr := c.cold[i].addr
		if addr == keep {
			continue
		}
		if victim < 0 || h.lastUse < c.hot[victim].lastUse ||
			(h.lastUse == c.hot[victim].lastUse && addr < victimAddr) {
			victim = int32(i)
			victimAddr = addr
		}
	}
	if victim < 0 {
		return false
	}
	c.stats.Evictions++
	vh := &c.hot[victim]
	if vh.state == lineExclusive {
		c.stats.EvictionWritebacks++
		vh.flags |= lfEvictPending
		c.n.sys.routeAfter(c.n.sys.timing.CacheAccess, c.n.id, victimAddr.Home(), Msg{
			Kind:      MsgWriteback,
			Addr:      victimAddr,
			Version:   vh.version,
			Written:   vh.flags&lfWritten != 0,
			Voluntary: true,
		})
	}
	c.drop(victim)
	return true
}

// Access issues one processor load (isWrite=false) or store (isWrite=true).
// done fires when the access completes, with its latency classification.
// The machine layer guarantees one outstanding access per processor.
func (c *cache) Access(isWrite bool, addr mem.BlockAddr, done func(AccessOutcome)) {
	t := c.n.sys.timing
	k := c.n.sys.kernel
	li, found := c.lookupIdx(addr)

	// Hit: load on S/E, store on E — served entirely out of the hot array.
	if found {
		h := &c.hot[li]
		if h.state != lineInvalid && (!isWrite || h.state == lineExclusive) {
			c.touch(h)
			class := ClassHit
			if h.flags&(lfSpec|lfReferenced) == lfSpec {
				h.flags |= lfReferenced
				c.stats.SpecReferenced++
				class = ClassSpecHit
				c.stats.SpecHits++
			} else {
				c.stats.Hits++
			}
			if isWrite {
				h.flags |= lfWritten
			}
			c.n.sys.checkObserved(c.n.id, addr, h.version)
			c.doneAfter(t.HitLatency, done, AccessOutcome{Class: class, Latency: t.HitLatency})
			return
		}
	}

	home := addr.Home()

	// Local fast path: an access to one's own home blocks that needs no
	// coherence activity costs Table 1's flat 104-cycle local latency and
	// produces no coherence message (so it is invisible to predictors).
	if home == c.n.id {
		if version, ok := c.n.dir.tryLocalFastPath(addr, isWrite); ok {
			nli := c.lineIdx(addr)
			c.install(nli)
			h := &c.hot[nli]
			h.state = lineShared
			h.flags &^= lfSpec | lfReferenced | lfWritten
			if isWrite {
				h.state = lineExclusive
				h.flags |= lfWritten
			}
			h.version = version
			c.touch(h)
			c.stats.LocalAccesses++
			c.n.sys.checkObserved(c.n.id, addr, version)
			c.doneAfter(t.LocalMem, done, AccessOutcome{Class: ClassLocal, Latency: t.LocalMem})
			return
		}
	}

	// Coherence transaction required. (lineIdx may have just created the
	// line, so re-derive the state from it rather than from li.)
	nli := c.lineIdx(addr)
	h := &c.hot[nli]
	if h.flags&lfHasPend != 0 {
		panic(fmt.Sprintf("protocol: node %d duplicate outstanding access to %v", c.n.id, addr))
	}
	kind := mem.ReqRead
	if isWrite {
		if h.state == lineShared {
			kind = mem.ReqUpgrade
		} else {
			kind = mem.ReqWrite
		}
	}
	if isWrite {
		c.stats.ProtocolWrites++
	} else {
		c.stats.ProtocolReads++
	}
	h.flags |= lfHasPend
	c.cold[nli].pend = pendingAccess{isWrite: isWrite, start: k.Now(), done: done}
	c.pendCount++
	c.n.sys.routeAfter(t.BusOverhead, c.n.id, home, Msg{Kind: MsgReq, Req: kind, Addr: addr})
	if isWrite && c.n.opts.EnableSWI && c.n.opts.Active != nil {
		if prev, candidate := c.n.ewi.Update(c.n.id, addr); candidate {
			c.n.sys.routeAfter(t.BusOverhead, c.n.id, prev.Home(), Msg{Kind: MsgSWIHint, Addr: prev})
		}
	}
}

// deliver dispatches a protocol message addressed to this node's cache.
func (c *cache) deliver(src mem.NodeID, m Msg) {
	switch m.Kind {
	case MsgInval:
		c.handleInval(m)
	case MsgRecall:
		c.handleRecall(m)
	case MsgData:
		c.handleData(m)
	case MsgUpgradeAck:
		c.handleUpgradeAck(m)
	case MsgSpecData:
		c.handleSpecData(m)
	default:
		panic(fmt.Sprintf("protocol: cache %d got unexpected message %v", c.n.id, m.Kind))
	}
}

// clearPend retires line li's outstanding miss and returns it. The stored
// copy is zeroed so the completion closure is not pinned past the access.
func (c *cache) clearPend(li int32) pendingAccess {
	p := c.cold[li].pend
	c.hot[li].flags &^= lfHasPend
	c.cold[li].pend = pendingAccess{}
	c.pendCount--
	return p
}

func (c *cache) handleInval(m Msg) {
	t := c.n.sys.timing
	li, found := c.lookupIdx(m.Addr)
	c.stats.InvalsReceived++
	specUnused := false
	switch {
	case found && c.hot[li].state == lineShared:
		specUnused = c.hot[li].flags&(lfSpec|lfReferenced) == lfSpec
		c.drop(li)
	case found && c.hot[li].state == lineExclusive:
		panic(fmt.Sprintf("protocol: inval for exclusive line %v at node %d", m.Addr, c.n.id))
	default:
		// No valid copy: either a speculative copy we dropped, or the fill
		// for our outstanding read is still in flight. In the latter case
		// the data will be used once and discarded.
		if found && c.hot[li].flags&lfHasPend != 0 && !c.cold[li].pend.isWrite {
			c.cold[li].pend.invalOnFill = true
		}
	}
	c.n.sys.routeAfter(t.CacheAccess, c.n.id, m.Addr.Home(),
		Msg{Kind: MsgAckInv, Addr: m.Addr, SpecUnused: specUnused})
}

func (c *cache) handleRecall(m Msg) {
	li, found := c.lookupIdx(m.Addr)
	// A recall that crossed our voluntary eviction writeback is already
	// answered by that writeback (finite-cache mode).
	if found && c.hot[li].flags&lfEvictPending != 0 {
		c.hot[li].flags &^= lfEvictPending
		return
	}
	t := c.n.sys.timing
	if !found || c.hot[li].state != lineExclusive {
		panic(fmt.Sprintf("protocol: recall for non-exclusive line %v at node %d", m.Addr, c.n.id))
	}
	c.stats.RecallsReceived++
	h := &c.hot[li]
	wb := Msg{Kind: MsgWriteback, Addr: m.Addr, Version: h.version, SWI: m.SWI, Written: h.flags&lfWritten != 0}
	c.drop(li)
	c.n.sys.routeAfter(t.CacheAccess, c.n.id, m.Addr.Home(), wb)
}

func (c *cache) handleData(m Msg) {
	t := c.n.sys.timing
	li, found := c.lookupIdx(m.Addr)
	if !found || c.hot[li].flags&lfHasPend == 0 {
		panic(fmt.Sprintf("protocol: unsolicited data for %v at node %d", m.Addr, c.n.id))
	}
	p := c.clearPend(li)
	c.install(li)
	h := &c.hot[li]
	h.version = m.Version
	h.flags &^= lfSpec | lfReferenced | lfWritten
	if p.isWrite {
		h.flags |= lfWritten
	}
	if m.Excl {
		h.state = lineExclusive
	} else {
		h.state = lineShared
	}
	c.touch(h)
	c.n.sys.checkObserved(c.n.id, m.Addr, m.Version)
	if p.invalOnFill {
		// The invalidation that raced with our fill applies now: the data
		// satisfies the ordered-earlier access exactly once.
		if m.Excl {
			panic("protocol: invalOnFill set for exclusive grant")
		}
		c.drop(li)
	}
	latency := c.n.sys.kernel.Now() + t.FillOverhead - p.start
	c.doneAfter(t.FillOverhead, p.done, AccessOutcome{Class: ClassProtocol, Latency: latency})
}

func (c *cache) handleUpgradeAck(m Msg) {
	t := c.n.sys.timing
	li, found := c.lookupIdx(m.Addr)
	if !found || c.hot[li].flags&lfHasPend == 0 || !c.cold[li].pend.isWrite {
		panic(fmt.Sprintf("protocol: unsolicited upgrade ack for %v at node %d", m.Addr, c.n.id))
	}
	if c.hot[li].state != lineShared {
		panic(fmt.Sprintf("protocol: upgrade ack but line not shared for %v at node %d", m.Addr, c.n.id))
	}
	p := c.clearPend(li)
	h := &c.hot[li]
	h.state = lineExclusive
	h.version = m.Version
	h.flags &^= lfSpec
	h.flags |= lfWritten
	c.touch(h)
	c.n.sys.checkObserved(c.n.id, m.Addr, m.Version)
	latency := c.n.sys.kernel.Now() + t.FillOverhead - p.start
	c.doneAfter(t.FillOverhead, p.done, AccessOutcome{Class: ClassProtocol, Latency: latency})
}

// handleSpecData installs a speculatively forwarded read-only copy, or
// drops it under the paper's race rule: "upon a race between a
// speculatively-sent block and an in-flight read request for the block,
// the DSM node receiving the block drops the speculated message."
func (c *cache) handleSpecData(m Msg) {
	if li, ok := c.lookupIdx(m.Addr); ok {
		if h := &c.hot[li]; h.flags&lfHasPend != 0 || h.state != lineInvalid {
			c.stats.SpecDropped++
			return
		}
	}
	// Speculative data never displaces demand data in finite-cache mode.
	if cap := c.n.opts.CacheCapacity; cap > 0 && c.valid >= cap {
		c.stats.SpecDeclinedFull++
		c.stats.SpecDropped++
		return
	}
	nli := c.lineIdx(m.Addr)
	c.install(nli)
	h := &c.hot[nli]
	h.state = lineShared
	h.version = m.Version
	h.flags &^= lfReferenced | lfWritten
	h.flags |= lfSpec
	c.touch(h)
	c.stats.SpecInstalled++
}

// sweepSpecLines reports speculative lines never referenced by the end of
// a run (misspeculations that were not yet caught by an invalidation).
func (c *cache) sweepSpecLines() (unreferenced uint64) {
	for i := range c.hot {
		h := &c.hot[i]
		if h.state != lineInvalid && h.flags&(lfSpec|lfReferenced) == lfSpec {
			unreferenced++
		}
	}
	return unreferenced
}
