package protocol

import (
	"math/rand"
	"testing"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/network"
	"specdsm/internal/sim"
)

func capacityHarness(t *testing.T, nodes, capacity int, fr, swi bool) *harness {
	t.Helper()
	opts := make([]Options, nodes)
	for i := range opts {
		opts[i] = Options{CacheCapacity: capacity}
		if fr || swi {
			opts[i].Active = core.NewVMSP(1)
			opts[i].EnableFR = fr
			opts[i].EnableSWI = swi
		}
	}
	k := sim.NewKernel()
	sys := NewSystem(k, nodes, DefaultTiming(), network.DefaultConfig(), opts)
	return &harness{t: t, k: k, sys: sys}
}

func TestCapacityEvictsLRUSharedLine(t *testing.T) {
	h := capacityHarness(t, 2, 2, false, false)
	a := mem.MakeAddr(1, 0)
	b := mem.MakeAddr(1, 1)
	c := mem.MakeAddr(1, 2)
	h.read(0, a)
	h.read(0, b)
	h.read(0, c) // evicts a (LRU)
	cs := h.sys.Node(0).CacheStats()
	if cs.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", cs.Evictions)
	}
	if cs.EvictionWritebacks != 0 {
		t.Fatal("shared eviction must be silent")
	}
	// a misses again; b (touched after a) may still be resident.
	if out := h.read(0, a); out.Class != ClassProtocol {
		t.Fatalf("evicted block should miss, got %+v", out)
	}
	h.finish()
}

func TestCapacityEvictionWritesBackExclusive(t *testing.T) {
	h := capacityHarness(t, 2, 1, false, false)
	a := mem.MakeAddr(1, 0)
	b := mem.MakeAddr(1, 1)
	h.write(0, a)
	view := h.sys.InspectEntry(a)
	if view.State != "Exclusive" || view.Owner != 0 {
		t.Fatalf("setup: %+v", view)
	}
	h.read(0, b) // evicts a, voluntary writeback
	h.k.Run(0)
	cs := h.sys.Node(0).CacheStats()
	if cs.EvictionWritebacks != 1 {
		t.Fatalf("eviction writebacks = %d, want 1", cs.EvictionWritebacks)
	}
	view = h.sys.InspectEntry(a)
	if view.State != "Idle" {
		t.Fatalf("directory after voluntary writeback: %+v", view)
	}
	// The block remains usable: the evictor re-reads it remotely (evicting
	// b in turn), and the home reads it locally.
	if out := h.read(0, a); out.Class != ClassProtocol {
		t.Fatalf("evictor re-read = %+v, want protocol", out)
	}
	if out := h.read(1, a); out.Class != ClassLocal {
		t.Fatalf("home read = %+v, want local", out)
	}
	h.finish()
}

func TestCapacityLocalFastPathRespectsBound(t *testing.T) {
	h := capacityHarness(t, 2, 2, false, false)
	for i := uint64(0); i < 6; i++ {
		h.write(0, mem.MakeAddr(0, i))
	}
	h.k.Run(0)
	cs := h.sys.Node(0).CacheStats()
	if cs.Evictions < 4 {
		t.Fatalf("evictions = %d, want >= 4", cs.Evictions)
	}
	h.finish()
}

func TestCapacityCrossingRecall(t *testing.T) {
	// Node 0 owns a; node 1 requests it at the same time node 0's
	// eviction writeback for a goes out: the recall crosses the
	// writeback, which doubles as its response.
	h := capacityHarness(t, 3, 1, false, false)
	a := mem.MakeAddr(2, 0)
	b := mem.MakeAddr(2, 1)
	h.write(0, a)
	done := 0
	// The read from node 1 recalls a from node 0, while node 0's next
	// access evicts a.
	h.sys.Node(1).Access(false, a, func(AccessOutcome) { done++ })
	h.sys.Node(0).Access(false, b, func(AccessOutcome) { done++ })
	h.k.Run(0)
	if done != 2 {
		t.Fatalf("completed %d", done)
	}
	h.finish()
}

func TestCapacityStressAllModes(t *testing.T) {
	for _, cfg := range []struct {
		name    string
		fr, swi bool
	}{{"base", false, false}, {"fr", true, false}, {"swi", true, true}} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			const nodes = 6
			h := capacityHarness(t, nodes, 4, cfg.fr, cfg.swi)
			rng := rand.New(rand.NewSource(13))
			blocks := make([]mem.BlockAddr, 30)
			for i := range blocks {
				blocks[i] = mem.MakeAddr(mem.NodeID(rng.Intn(nodes)), uint64(i))
			}
			for round := 0; round < 50; round++ {
				pending := 0
				for n := 0; n < nodes; n++ {
					addr := blocks[rng.Intn(len(blocks))]
					isWrite := rng.Intn(3) == 0
					pending++
					h.sys.Node(mem.NodeID(n)).Access(isWrite, addr, func(AccessOutcome) { pending-- })
				}
				h.k.Run(0)
				if pending != 0 {
					t.Fatalf("round %d: %d incomplete", round, pending)
				}
			}
			// Capacity misses must actually occur for this to test anything.
			var evictions uint64
			for n := 0; n < nodes; n++ {
				evictions += h.sys.Node(mem.NodeID(n)).CacheStats().Evictions
			}
			if evictions == 0 {
				t.Fatal("no evictions under a 4-line cache")
			}
			h.finish()
		})
	}
}

func TestCapacitySpecDataDeclinedWhenFull(t *testing.T) {
	h := capacityHarness(t, 4, 1, true, false)
	addr := mem.MakeAddr(0, 0)
	producerConsumerRound(h, addr)
	producerConsumerRound(h, addr)
	// Fill node 3's one-line cache with an unrelated block, then trigger
	// an FR forward toward it: the spec data must be declined, not
	// displace the demand line.
	other := mem.MakeAddr(1, 9)
	h.read(3, other)
	h.write(1, addr)
	h.read(2, addr) // FR forwards to node 3
	h.k.Run(0)
	cs := h.sys.Node(3).CacheStats()
	if cs.SpecDeclinedFull == 0 {
		t.Fatal("expected spec data declined due to full cache")
	}
	h.finish()
}
