package protocol

import (
	"fmt"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

type dirState uint8

const (
	dirIdle dirState = iota
	dirShared
	dirExclusive
)

func (s dirState) String() string {
	switch s {
	case dirIdle:
		return "Idle"
	case dirShared:
		return "Shared"
	case dirExclusive:
		return "Exclusive"
	default:
		return "?"
	}
}

type transKind uint8

const (
	// transReadRecall: a read found the block Exclusive; the owner's copy
	// is being recalled (Figure 1 right).
	transReadRecall transKind = iota
	// transWriteRecall: a write found the block Exclusive elsewhere.
	transWriteRecall
	// transInval: a write/upgrade is invalidating the read-only sharers.
	transInval
	// transSWI: a speculative write-invalidation recall is in flight.
	transSWI
	// transGrant: the grant/forward data send is in progress; the entry
	// stays busy so queued requests cannot observe a half-applied grant.
	transGrant
)

// trans is the single in-flight transaction of a blocking directory entry.
// Transactions are pooled per directory (startTrans/endTrans): an entry
// begins and ends thousands of transactions over a run, and recycling the
// carrier is what keeps the serve path allocation-free in steady state.
type trans struct {
	kind         transKind
	requester    mem.NodeID
	reqKind      mem.ReqKind
	acksLeft     int
	grantUpgrade bool
	// SWI premature verification: when the producer's own write follows an
	// SWI with speculative copies outstanding, the guard is marked
	// premature unless some consumer referenced its copy.
	swiVerify   core.SWIGuard
	swiVerifyOn bool
	sawSpecRef  bool
}

// queuedReq is a waiting request packed into one word — request kind in
// the low bits, source node above, mirroring internal/core's symbol
// packing — so a wait-queue element stays two bytes at any machine
// width (a kind+NodeID struct doubled when NodeID widened, and bigger
// elements mean earlier append growth on the per-entry queues).
type queuedReq uint16

const qreqKindBits = 4 // 3 request kinds; 12 bits above fit mem.MaxNodes-1

func packReq(kind mem.ReqKind, src mem.NodeID) queuedReq {
	return queuedReq(kind) | queuedReq(src)<<qreqKindBits
}

func (q queuedReq) kind() mem.ReqKind { return mem.ReqKind(q & (1<<qreqKindBits - 1)) }
func (q queuedReq) src() mem.NodeID   { return mem.NodeID(q >> qreqKindBits) }

// specPend records one node holding an unverified speculative copy,
// together with the prediction that produced it. The per-entry list
// replaces the old map[NodeID]ReadPrediction: a handful of linear-probed
// inline records whose backing array is retained across reuse, instead of
// a per-entry heap-allocated map.
type specPend struct {
	node mem.NodeID
	rp   core.ReadPrediction
}

// Directory entry state is split structure-of-arrays across two parallel
// slices sharing one stable index (see directory.hot/cold): dirHot is the
// 32-byte record the serve path reads on every request — coherence state,
// owner, sharer vector, version, the transaction pointer, and a flags
// byte that caches "does this entry have cold state worth looking at" —
// while dirCold carries the bookkeeping (wait queue, speculative-copy
// tracking, SWI watch identity, audit address) that only queued, racing,
// or speculative traffic touches. A request that hits a quiescent entry
// dispatches entirely out of dirHot.
type dirHot struct {
	sharers mem.ReaderVec
	// version counts write-permission grants; every data message carries
	// it and the system checker asserts per-node monotonicity.
	version uint64
	tr      *trans
	owner   mem.NodeID
	state   dirState
	flags   uint8
}

// dirHot.flags bits. The queue and spec-pend bits mirror the emptiness of
// the corresponding dirCold slices so the fast path can skip the cold
// lookup entirely; the SWI and spec-upgrade bits are the state itself.
const (
	// dfSWIWatch: an SWI writeback completed; the next request decides
	// whether the invalidation was premature (§4.1). The guard and owner
	// identity live in dirCold.
	dfSWIWatch uint8 = 1 << iota
	// dfSpecUpgraded: the current exclusive grant was made speculatively
	// for migratory sharing (extension).
	dfSpecUpgraded
	// dfHasWait mirrors len(cold.waitq) > 0.
	dfHasWait
	// dfHasSpec mirrors len(cold.specPending) > 0.
	dfHasSpec
)

// dirCold is the cold half of one directory entry; addr is kept here so
// audits can walk the slice directly.
type dirCold struct {
	addr     mem.BlockAddr
	waitq    []queuedReq
	swiOwner mem.NodeID
	swiGuard core.SWIGuard
	// specPending lists nodes holding unverified speculative copies with
	// the prediction that produced each.
	specPending []specPend
}

// popWait removes and returns entry ei's oldest queued request, shifting
// in place so the slice's capacity is reused instead of walking off its
// backing array. Callers check dfHasWait first; the flag clears here when
// the queue empties.
func (d *directory) popWait(ei int32) queuedReq {
	c := &d.cold[ei]
	q := c.waitq[0]
	n := copy(c.waitq, c.waitq[1:])
	c.waitq = c.waitq[:n]
	if n == 0 {
		d.hot[ei].flags &^= dfHasWait
	}
	return q
}

// pushWait queues a request on entry ei.
func (d *directory) pushWait(ei int32, q queuedReq) {
	d.cold[ei].waitq = append(d.cold[ei].waitq, q)
	d.hot[ei].flags |= dfHasWait
}

// setSpecPend records (or replaces) the tracked prediction for node on
// entry ei.
func (d *directory) setSpecPend(ei int32, node mem.NodeID, rp core.ReadPrediction) {
	c := &d.cold[ei]
	for i := range c.specPending {
		if c.specPending[i].node == node {
			c.specPending[i].rp = rp
			return
		}
	}
	c.specPending = append(c.specPending, specPend{node: node, rp: rp})
	d.hot[ei].flags |= dfHasSpec
}

// clearSpecPend removes and returns the tracked prediction for node on
// entry ei. The hot flag is consulted first, so entries with no
// speculative copies (the common case) never touch the cold array; the
// vacated tail record is zeroed so its ReadPrediction does not pin
// predictor storage.
func (d *directory) clearSpecPend(ei int32, node mem.NodeID) (core.ReadPrediction, bool) {
	if d.hot[ei].flags&dfHasSpec == 0 {
		return core.ReadPrediction{}, false
	}
	c := &d.cold[ei]
	for i := range c.specPending {
		if c.specPending[i].node == node {
			rp := c.specPending[i].rp
			last := len(c.specPending) - 1
			c.specPending[i] = c.specPending[last]
			c.specPending[last] = specPend{}
			c.specPending = c.specPending[:last]
			if last == 0 {
				d.hot[ei].flags &^= dfHasSpec
			}
			return rp, true
		}
	}
	return core.ReadPrediction{}, false
}

// inMsg is one directory-bound message waiting behind the occupancy
// model.
type inMsg struct {
	src mem.NodeID
	msg Msg
}

// grantEvent is a pooled deferred grant: after the home memory access it
// optionally sends a data grant, optionally runs speculative read
// forwarding, and always finishes the entry's transaction. It replaces
// the per-grant closures that previously dominated directory-side
// allocation. The entry is referenced by its stable dense-slice index
// (ei), never by pointer: the entries slice may grow between scheduling
// and firing, and indices survive that growth.
type grantEvent struct {
	d         *directory
	addr      mem.BlockAddr
	ei        int32
	dst       mem.NodeID
	msg       Msg
	sendData  bool
	doFR      bool          // run specForward after the send
	frExclude mem.ReaderVec // nodes excluded from the forward
	frSWI     bool          // forward was triggered by SWI (stats)
	run       func()
}

func (g *grantEvent) fire() {
	d, addr, ei := g.d, g.addr, g.ei
	if g.sendData {
		d.n.sys.route(d.n.id, g.dst, g.msg)
	}
	if g.doFR {
		d.specForward(addr, ei, g.frExclude, g.frSWI)
	}
	d.grantPool.Put(g)
	d.finish(addr, ei)
}

// directory is the home-side controller of one node. Per-block state
// lives inline in the parallel hot/cold slices; table maps a home block
// to its stable index (entries are created on first touch and never
// removed, so the insert-only BlockMap suffices, and hot[i]/cold[i] are
// two halves of the same entry forever).
type directory struct {
	n     *Node
	table mem.BlockMap
	hot   []dirHot
	cold  []dirCold
	// free serializes directory occupancy, modeling queueing delay.
	free  sim.Cycle
	stats DirStats
	// inq is the FIFO of delivered-but-unprocessed messages; processNext
	// is the single bound dispatch closure scheduled once per message, so
	// deliver allocates nothing in steady state.
	inq         []inMsg
	inqHead     int
	processNext func()
	grantPool   sim.FreeList[grantEvent]
	transPool   sim.FreeList[trans]
}

func newDirectory(n *Node) *directory {
	// Pre-sizing the parallel slices turns the first-touch doubling chain
	// (one reallocation per power of two) into a single allocation per
	// array; a node's share of home blocks typically fits.
	d := &directory{
		n:    n,
		hot:  make([]dirHot, 0, 64),
		cold: make([]dirCold, 0, 64),
	}
	d.processNext = d.dispatch
	return d
}

// entryIdx returns the stable index of addr's entry, creating the entry
// on first touch. Creation within the slices' capacity re-initializes
// the vacated elements in place, keeping the waitq/specPending backing
// arrays a previous run left behind (see reset) instead of dropping them.
func (d *directory) entryIdx(addr mem.BlockAddr) int32 {
	idx, created := d.table.Reserve(addr, int32(len(d.hot)))
	if !created {
		return idx
	}
	if addr.Home() != d.n.id {
		panic(fmt.Sprintf("protocol: block %v is not homed at node %d", addr, d.n.id))
	}
	d.hot = append(d.hot, dirHot{owner: mem.NoNode})
	if int(idx) < cap(d.cold) {
		d.cold = d.cold[:idx+1]
		c := &d.cold[idx]
		wq, sp := c.waitq[:0], c.specPending[:0]
		*c = dirCold{addr: addr, waitq: wq, specPending: sp}
	} else {
		d.cold = append(d.cold, dirCold{addr: addr})
	}
	return idx
}

// reset re-arms the directory for a fresh run: the block table, dense
// hot/cold slices, input queue, occupancy horizon, and counters clear,
// retaining all storage — including each retired entry's waitq and
// specPending backing arrays, which entryIdx re-adopts when the slot is
// reused. The grant and transaction pools are kept. Entries must be
// quiescent (no live transaction, empty waitq), which a completed run
// guarantees via CheckQuiescent.
func (d *directory) reset() {
	d.table.Reset()
	clear(d.hot)
	d.hot = d.hot[:0]
	for i := range d.cold {
		c := &d.cold[i]
		// Zero the record but keep the slice headers for reuse; the queues
		// hold only values (and pooled-store handles), so truncation alone
		// retires their contents.
		*c = dirCold{waitq: c.waitq[:0], specPending: c.specPending[:0]}
	}
	d.cold = d.cold[:0]
	d.free = 0
	d.stats = DirStats{}
	d.inq = d.inq[:0]
	d.inqHead = 0
}

// lookupIdx returns the stable index of addr's entry without creating it.
func (d *directory) lookupIdx(addr mem.BlockAddr) (int32, bool) {
	return d.table.Get(addr)
}

// startTrans begins a transaction on entry h, recycling a pooled carrier.
func (d *directory) startTrans(h *dirHot, t trans) {
	tr, ok := d.transPool.Get()
	if !ok {
		tr = &trans{}
	}
	*tr = t
	h.tr = tr
}

// endTrans clears entry h's transaction and recycles the carrier. The
// carrier is zeroed on release so a stale SWIGuard cannot pin predictor
// storage.
func (d *directory) endTrans(h *dirHot) {
	if tr := h.tr; tr != nil {
		*tr = trans{}
		d.transPool.Put(tr)
		h.tr = nil
	}
}

// deliver enqueues a directory-bound message behind the directory's
// occupancy; messages are processed strictly in arrival order. The
// occupancy horizon is monotonic and every queued message gets exactly
// one dispatch event, so the FIFO pop in dispatch sees messages in the
// same order they were delivered here.
func (d *directory) deliver(src mem.NodeID, msg Msg) {
	k := d.n.sys.kernel
	start := k.Now()
	if d.free > start {
		start = d.free
	}
	d.free = start + d.n.sys.timing.DirOccupancy
	d.inq = append(d.inq, inMsg{src: src, msg: msg})
	k.At(d.free, d.processNext)
}

// dispatch pops and processes the oldest undelivered message.
func (d *directory) dispatch() {
	m := d.inq[d.inqHead]
	d.inq[d.inqHead] = inMsg{}
	d.inqHead++
	switch {
	case d.inqHead == len(d.inq):
		d.inq = d.inq[:0]
		d.inqHead = 0
	case d.inqHead >= 32 && d.inqHead*2 >= len(d.inq):
		// Compact a persistently backlogged queue so its memory tracks
		// peak depth, not total messages processed.
		n := copy(d.inq, d.inq[d.inqHead:])
		d.inq = d.inq[:n]
		d.inqHead = 0
	}
	d.process(m.src, m.msg)
}

func (d *directory) process(src mem.NodeID, m Msg) {
	switch m.Kind {
	case MsgReq:
		d.processRequest(src, m.Req, m.Addr)
	case MsgAckInv:
		d.processAck(src, m.Addr, m.SpecUnused)
	case MsgWriteback:
		d.processWriteback(src, m)
	case MsgSWIHint:
		// §4.1: the writer's node signals it is probably done with Addr.
		if d.n.opts.EnableSWI {
			d.maybeSWI(m.Addr, src)
		}
	default:
		panic(fmt.Sprintf("protocol: directory %d got unexpected message %v", d.n.id, m.Kind))
	}
}

// observe feeds one incoming message to every attached predictor.
func (d *directory) observe(addr mem.BlockAddr, t core.MsgType, node mem.NodeID) {
	o := core.Observation{Type: t, Node: node}
	for _, p := range d.n.opts.Observers {
		p.Observe(addr, o)
	}
	if a := d.n.opts.Active; a != nil {
		a.Observe(addr, o)
	}
}

func (d *directory) processRequest(src mem.NodeID, kind mem.ReqKind, addr mem.BlockAddr) {
	switch kind {
	case mem.ReqRead:
		d.stats.Reads++
	case mem.ReqWrite:
		d.stats.Writes++
	case mem.ReqUpgrade:
		d.stats.Upgrades++
	}
	d.observe(addr, core.ReqMsgType(kind), src)

	ei := d.entryIdx(addr)
	if d.hot[ei].tr != nil {
		d.stats.QueuedReqs++
		d.pushWait(ei, packReq(kind, src))
		return
	}
	d.serve(addr, ei, kind, src)
}

// checkSWIWatch resolves the premature-invalidation watch on the first
// request served after an SWI completes. The watch bit lives in the hot
// flags so unwatched entries (the common case) never read the cold guard.
func (d *directory) checkSWIWatch(addr mem.BlockAddr, ei int32, kind mem.ReqKind, src mem.NodeID) (verify core.SWIGuard, verifyOn bool) {
	h := &d.hot[ei]
	if h.flags&dfSWIWatch == 0 {
		return core.SWIGuard{}, false
	}
	h.flags &^= dfSWIWatch
	c := &d.cold[ei]
	guard := c.swiGuard
	c.swiGuard = core.SWIGuard{}
	if src != c.swiOwner {
		return core.SWIGuard{}, false // a consumer intervened: SWI succeeded
	}
	if kind == mem.ReqRead || h.flags&dfHasSpec == 0 {
		// The producer wants the block back before anyone consumed it.
		d.premature(addr, guard)
		return core.SWIGuard{}, false
	}
	// The producer is writing again while speculative copies are still
	// outstanding: defer the verdict to the invalidation acks — if no
	// consumer referenced its copy, the SWI was premature.
	return guard, true
}

func (d *directory) premature(addr mem.BlockAddr, guard core.SWIGuard) {
	guard.MarkPremature()
	d.stats.SWIPremature++
}

// serve executes one request against a non-busy entry.
func (d *directory) serve(addr mem.BlockAddr, ei int32, kind mem.ReqKind, src mem.NodeID) {
	verify, verifyOn := d.checkSWIWatch(addr, ei, kind, src)

	switch kind {
	case mem.ReqRead:
		d.serveRead(addr, ei, src)
	case mem.ReqWrite, mem.ReqUpgrade:
		d.serveWrite(addr, ei, kind, src, verify, verifyOn)
	default:
		panic(fmt.Sprintf("protocol: unknown request kind %v", kind))
	}
}

// grantAfter schedules a pooled grantEvent after the given delay.
func (d *directory) grantAfter(delay sim.Cycle, g grantEvent) {
	ev, ok := d.grantPool.Get()
	if !ok {
		ev = &grantEvent{}
		ev.run = ev.fire
	}
	run := ev.run
	*ev = g
	ev.run = run
	ev.d = d
	d.n.sys.kernel.After(delay, ev.run)
}

func (d *directory) serveRead(addr mem.BlockAddr, ei int32, src mem.NodeID) {
	t := d.n.sys.timing
	h := &d.hot[ei]
	switch h.state {
	case dirIdle, dirShared:
		phaseStart := h.state == dirIdle
		// Speculative upgrade extension: if the predictor expects this
		// reader to upgrade next (migratory sharing), grant exclusively.
		if phaseStart && d.specUpgradeApplies(addr, src) {
			d.stats.SpecUpgrades++
			h.flags |= dfSpecUpgraded
			d.grantExclusive(addr, ei, src, mem.ReqWrite, false)
			return
		}
		h.state = dirShared
		h.sharers = h.sharers.With(src)
		d.startTrans(h, trans{kind: transGrant, requester: src})
		d.grantAfter(t.MemAccess, grantEvent{
			addr:      addr,
			ei:        ei,
			dst:       src,
			msg:       Msg{Kind: MsgData, Addr: addr, Version: h.version},
			sendData:  true,
			doFR:      phaseStart && d.n.opts.EnableFR,
			frExclude: mem.VecOf(src),
		})
	case dirExclusive:
		if h.owner == src {
			panic(fmt.Sprintf("protocol: owner %d re-reading %v", src, addr))
		}
		d.startTrans(h, trans{kind: transReadRecall, requester: src, reqKind: mem.ReqRead})
		d.stats.RecallsSent++
		d.n.sys.route(d.n.id, h.owner, Msg{Kind: MsgRecall, Addr: addr})
	}
}

func (d *directory) serveWrite(addr mem.BlockAddr, ei int32, kind mem.ReqKind, src mem.NodeID, verify core.SWIGuard, verifyOn bool) {
	h := &d.hot[ei]
	switch h.state {
	case dirIdle:
		if verifyOn {
			// No sharers to consult: nobody consumed, so it was premature.
			d.premature(addr, verify)
		}
		d.grantExclusive(addr, ei, src, kind, false)
	case dirShared:
		others := h.sharers.Without(src)
		// If src's sharer membership came from an unverified speculative
		// forward, the home cannot assume src kept the copy (it may have
		// dropped the speculated message under the race rule), so the
		// grant must carry data rather than permission only.
		_, specTainted := d.clearSpecPend(ei, src)
		viaUpgrade := kind == mem.ReqUpgrade && h.sharers.Has(src) && !specTainted
		if others.Empty() {
			if verifyOn {
				d.premature(addr, verify)
			}
			d.grantExclusive(addr, ei, src, kind, viaUpgrade)
			return
		}
		d.startTrans(h, trans{
			kind:         transInval,
			requester:    src,
			reqKind:      kind,
			acksLeft:     others.Count(),
			grantUpgrade: viaUpgrade,
			swiVerify:    verify,
			swiVerifyOn:  verifyOn,
		})
		for w := others; !w.Empty(); {
			q := w.Lowest()
			w = w.Without(q)
			d.stats.InvalsSent++
			d.n.sys.route(d.n.id, q, Msg{Kind: MsgInval, Addr: addr})
		}
	case dirExclusive:
		if h.owner == src {
			panic(fmt.Sprintf("protocol: owner %d re-requesting write for %v", src, addr))
		}
		d.startTrans(h, trans{kind: transWriteRecall, requester: src, reqKind: kind})
		d.stats.RecallsSent++
		d.n.sys.route(d.n.id, h.owner, Msg{Kind: MsgRecall, Addr: addr})
	}
}

// grantExclusive makes src the owner at a new version, retiring whatever
// transaction the entry was running. With viaUpgradeAck the requester
// kept its read-only copy, so only a permission message is needed;
// otherwise data is supplied after a memory access, with the entry held
// busy until the grant is on the wire.
func (d *directory) grantExclusive(addr mem.BlockAddr, ei int32, src mem.NodeID, kind mem.ReqKind, viaUpgradeAck bool) {
	t := d.n.sys.timing
	h := &d.hot[ei]
	d.endTrans(h)
	h.version++
	h.state = dirExclusive
	h.owner = src
	h.sharers = mem.ReaderVec{}
	v := h.version
	d.n.sys.noteVersion(addr, v)
	if viaUpgradeAck {
		d.stats.UpgradeGrants++
		d.n.sys.route(d.n.id, src, Msg{Kind: MsgUpgradeAck, Addr: addr, Version: v})
		d.finish(addr, ei)
		return
	}
	d.startTrans(h, trans{kind: transGrant, requester: src})
	d.grantAfter(t.MemAccess, grantEvent{
		addr:     addr,
		ei:       ei,
		dst:      src,
		msg:      Msg{Kind: MsgData, Addr: addr, Version: v, Excl: true},
		sendData: true,
	})
}

// finish clears the entry's transaction and serves queued requests until
// one of them blocks the entry again.
func (d *directory) finish(addr mem.BlockAddr, ei int32) {
	d.endTrans(&d.hot[ei])
	for {
		h := &d.hot[ei]
		if h.tr != nil || h.flags&dfHasWait == 0 {
			return
		}
		q := d.popWait(ei)
		d.serve(addr, ei, q.kind(), q.src())
	}
}

func (d *directory) processAck(src mem.NodeID, addr mem.BlockAddr, specUnused bool) {
	d.observe(addr, core.MsgAckInv, src)
	ei := d.entryIdx(addr)
	h := &d.hot[ei]
	d.stats.AcksReceived++

	// Speculation verification (§4.2): the piggy-backed bit reports
	// whether a speculatively placed copy was ever referenced.
	if rp, ok := d.clearSpecPend(ei, src); ok {
		if specUnused {
			rp.Prune(src)
			if a := d.n.opts.Active; a != nil {
				a.RetractReader(addr, src)
			}
			d.stats.SpecReadUnused++
		} else if h.tr != nil {
			h.tr.sawSpecRef = true
		}
	}

	h.sharers = h.sharers.Without(src)
	if h.tr == nil || h.tr.kind != transInval {
		// Ack for a non-invalidating entry would be a protocol bug.
		panic(fmt.Sprintf("protocol: stray ack for %v from %d", addr, src))
	}
	h.tr.acksLeft--
	if h.tr.acksLeft > 0 {
		return
	}
	tr := h.tr
	if tr.swiVerifyOn && !tr.sawSpecRef {
		d.premature(addr, tr.swiVerify)
	}
	// Copy out before grantExclusive retires (and recycles) the carrier.
	req, reqKind, upgrade := tr.requester, tr.reqKind, tr.grantUpgrade
	d.grantExclusive(addr, ei, req, reqKind, upgrade)
}

func (d *directory) processWriteback(src mem.NodeID, m Msg) {
	d.observe(m.Addr, core.MsgWriteback, src)
	ei := d.entryIdx(m.Addr)
	h := &d.hot[ei]
	d.stats.Writebacks++
	if h.tr == nil {
		// Only a capacity eviction may write back unsolicited; it retires
		// the ownership in place. (If a recall is outstanding, the
		// voluntary writeback instead falls through and serves as that
		// recall's response — the crossing recall is ignored at the
		// cache.)
		if !m.Voluntary {
			panic(fmt.Sprintf("protocol: unsolicited writeback for %v from %d", m.Addr, src))
		}
		if h.state != dirExclusive || h.owner != src {
			panic(fmt.Sprintf("protocol: voluntary writeback for %v from %d but directory says %v owner %d",
				m.Addr, src, h.state, h.owner))
		}
		if m.Version != h.version {
			panic(fmt.Sprintf("protocol: voluntary writeback version %d != directory %d for %v",
				m.Version, h.version, m.Addr))
		}
		if h.flags&dfSpecUpgraded != 0 {
			if !m.Written {
				d.stats.SpecUpgradeMisfires++
			}
			h.flags &^= dfSpecUpgraded
		}
		h.state = dirIdle
		h.owner = mem.NoNode
		h.sharers = mem.ReaderVec{}
		return
	}
	if h.owner != src {
		panic(fmt.Sprintf("protocol: writeback for %v from non-owner %d", m.Addr, src))
	}
	if m.Version != h.version {
		panic(fmt.Sprintf("protocol: writeback version %d != directory %d for %v", m.Version, h.version, m.Addr))
	}
	if h.flags&dfSpecUpgraded != 0 {
		if !m.Written {
			d.stats.SpecUpgradeMisfires++
		}
		h.flags &^= dfSpecUpgraded
	}
	h.owner = mem.NoNode
	t := d.n.sys.timing

	switch h.tr.kind {
	case transReadRecall:
		req := h.tr.requester
		d.endTrans(h)
		h.state = dirIdle
		h.sharers = mem.ReaderVec{}
		// Migratory sharing arrives through this recall path: if the
		// predictor expects the reader to upgrade next, grant exclusively
		// (speculative upgrade extension).
		if d.specUpgradeApplies(m.Addr, req) {
			d.stats.SpecUpgrades++
			h.flags |= dfSpecUpgraded
			d.grantExclusive(m.Addr, ei, req, mem.ReqWrite, false)
			return
		}
		h.state = dirShared
		h.sharers = mem.VecOf(req)
		d.startTrans(h, trans{kind: transGrant, requester: req})
		d.grantAfter(t.MemAccess, grantEvent{
			addr:      m.Addr,
			ei:        ei,
			dst:       req,
			msg:       Msg{Kind: MsgData, Addr: m.Addr, Version: h.version},
			sendData:  true,
			doFR:      d.n.opts.EnableFR,
			frExclude: mem.VecOf(req),
		})
	case transWriteRecall:
		req, reqKind := h.tr.requester, h.tr.reqKind
		h.state = dirIdle
		h.sharers = mem.ReaderVec{}
		d.grantExclusive(m.Addr, ei, req, reqKind, false)
	case transSWI:
		d.endTrans(h)
		h.state = dirIdle
		h.sharers = mem.ReaderVec{}
		h.flags |= dfSWIWatch
		d.cold[ei].swiOwner = src
		d.startTrans(h, trans{kind: transGrant})
		d.grantAfter(t.MemAccess, grantEvent{
			addr:  m.Addr,
			ei:    ei,
			doFR:  true,
			frSWI: true,
		})
	default:
		panic(fmt.Sprintf("protocol: writeback during %v transaction for %v", h.tr.kind, m.Addr))
	}
}

// tryLocalFastPath serves a local access that needs no coherence activity,
// mutating directory state directly (the access is ordered at call time).
// Returns the observed/granted version.
func (d *directory) tryLocalFastPath(addr mem.BlockAddr, isWrite bool) (uint64, bool) {
	ei := d.entryIdx(addr)
	h := &d.hot[ei]
	if h.tr != nil || h.flags&dfHasWait != 0 {
		return 0, false
	}
	self := d.n.id
	if !isWrite {
		if h.state == dirIdle || h.state == dirShared {
			d.resolveLocalSWIWatch(addr, ei, mem.ReqRead)
			h.state = dirShared
			h.sharers = h.sharers.With(self)
			return h.version, true
		}
		// state Exclusive: even owner==self is possible in finite-cache
		// mode (the line was evicted and its voluntary writeback is still
		// in flight); take the slow path, which queues behind it.
		return 0, false
	}
	soleLocal := h.state == dirIdle ||
		(h.state == dirShared && h.sharers.Without(self).Empty())
	if !soleLocal {
		return 0, false
	}
	d.resolveLocalSWIWatch(addr, ei, mem.ReqWrite)
	h.version++
	h.state = dirExclusive
	h.owner = self
	h.sharers = mem.ReaderVec{}
	d.n.sys.noteVersion(addr, h.version)
	return h.version, true
}

// resolveLocalSWIWatch applies the premature-invalidation watch to local
// fast-path accesses: the home node's processor is itself the producer in
// many sharing patterns, and its silent local re-access after an SWI is
// exactly the "producer was not done" signal.
func (d *directory) resolveLocalSWIWatch(addr mem.BlockAddr, ei int32, kind mem.ReqKind) {
	if d.hot[ei].flags&dfSWIWatch == 0 {
		return
	}
	d.hot[ei].flags &^= dfSWIWatch
	c := &d.cold[ei]
	guard := c.swiGuard
	c.swiGuard = core.SWIGuard{}
	if d.n.id == c.swiOwner {
		d.premature(addr, guard)
	}
	_ = kind
}
