// Package protocol implements the full-map write-invalidate coherence
// protocol of the simulated CC-NUMA (paper §2), together with the
// speculation mechanisms of the speculative coherent DSM (§4).
//
// Every node hosts three cooperating controllers:
//
//   - a cache controller holding the processor's view of memory (a merged
//     model of the processor data cache and the node's remote cache — the
//     paper assumes a remote cache large enough to hold all remote data, so
//     only cold and coherence misses exist);
//   - a directory controlling the node's home blocks: per-block state
//     (Idle/Shared/Exclusive), a full-map sharer vector, an owner, and a
//     FIFO queue of requests that arrive while a transaction is in flight
//     (the blocking directory is one of the two race sources that perturb
//     message predictors; network-interface queueing is the other);
//   - optionally, a predictor (internal/core) observing the directory's
//     incoming message stream and driving read speculation via the
//     First-Read (FR) and Speculative Write-Invalidation (SWI) triggers.
//
// The speculation machinery never modifies base protocol transitions: it
// only schedules existing operations early (an early recall, an early
// read-only forward). Speculative data that races with a real request is
// dropped at the receiver, exactly as the paper specifies, so a failed
// speculation degrades to the base protocol.
//
// # Allocation discipline
//
// The protocol layer is on the critical path of every simulated access, so
// its steady state allocates nothing (enforced by the alloc-guard tests in
// alloc_test.go):
//
//   - Per-block directory and cache state lives inline in dense slices
//     indexed through mem.BlockMap — no per-block heap objects. Deferred
//     events reference entries by stable index, never by pointer, because
//     the slices grow.
//   - Directory transactions, grant events, completion callbacks, and
//     delayed sends all ride pooled carriers (sim.FreeList) whose kernel
//     closures are bound once per object.
//   - Transient per-block state (the outstanding miss, the
//     eviction-writeback marker, speculative-copy tracking) is folded into
//     the block's inline record and retired by clearing a flag, so no map
//     insert or delete happens after a block's first touch.
package protocol
