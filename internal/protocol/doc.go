// Package protocol implements the full-map write-invalidate coherence
// protocol of the simulated CC-NUMA (paper §2), together with the
// speculation mechanisms of the speculative coherent DSM (§4).
//
// Every node hosts three cooperating controllers:
//
//   - a cache controller holding the processor's view of memory (a merged
//     model of the processor data cache and the node's remote cache — the
//     paper assumes a remote cache large enough to hold all remote data, so
//     only cold and coherence misses exist);
//   - a directory controlling the node's home blocks: per-block state
//     (Idle/Shared/Exclusive), a full-map sharer vector, an owner, and a
//     FIFO queue of requests that arrive while a transaction is in flight
//     (the blocking directory is one of the two race sources that perturb
//     message predictors; network-interface queueing is the other);
//   - optionally, a predictor (internal/core) observing the directory's
//     incoming message stream and driving read speculation via the
//     First-Read (FR) and Speculative Write-Invalidation (SWI) triggers.
//
// The speculation machinery never modifies base protocol transitions: it
// only schedules existing operations early (an early recall, an early
// read-only forward). Speculative data that races with a real request is
// dropped at the receiver, exactly as the paper specifies, so a failed
// speculation degrades to the base protocol.
//
// # Storage layout and allocation discipline
//
// The protocol layer is on the critical path of every simulated access, so
// its steady state allocates nothing (enforced by the alloc-guard tests in
// alloc_test.go) and its per-block state is laid out structure-of-arrays:
//
//   - Each directory splits per-block state into two parallel slices,
//     dirHot and dirCold, sharing one index space; each cache does the
//     same with lineHot and lineCold. The hot record carries only what
//     the serve/hit paths read on every access (state, version, sharer
//     vector, owner, a flag byte); everything touched off the fast path —
//     the block address, wait queues, SWI watch bookkeeping, speculative
//     pending lists — lives in the cold record, so a fast-path access
//     pulls a fraction of a cache line instead of the whole entry.
//   - The hot flag byte mirrors cold-state emptiness (dfHasWait,
//     dfHasSpec, dfSWIWatch, ...): the fast path decides "is there
//     deferred work?" from the hot record alone and only dereferences
//     the cold slice when a flag says there is something to find. Any
//     code that empties a cold field must clear the mirroring flag.
//   - Both slices are indexed through mem.BlockMap (first touch goes
//     through BlockMap.Reserve, a single-probe get-or-insert). Indices
//     are stable for the lifetime of the table — growth appends, Reset
//     truncates — so deferred events and kernel callbacks reference
//     entries by int32 index, never by pointer, and a *dirHot/*lineHot
//     taken inside one handler must not be held across anything that can
//     create a new entry.
//   - Directory transactions, grant events, completion callbacks, and
//     delayed sends all ride pooled carriers (sim.FreeList) whose kernel
//     closures are bound once per object.
//   - Transient per-block state (the outstanding miss, the
//     eviction-writeback marker, speculative-copy tracking) is folded into
//     the cold record and retired by clearing its hot flag, so no map
//     insert or delete happens after a block's first touch.
package protocol
