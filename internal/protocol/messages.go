package protocol

import "specdsm/internal/mem"

// The coherence message set. Requests travel requester→home; Inval/Recall
// travel home→cache; acks and writebacks travel cache→home; data grants
// travel home→requester. All messages for a (src,dst) pair are delivered
// FIFO by the network model.

// reqMsg is a memory request message: Read, Write, or Upgrade (§2).
type reqMsg struct {
	Kind mem.ReqKind
	Addr mem.BlockAddr
}

// invalMsg invalidates a read-only copy; the cache answers with ackInvMsg.
type invalMsg struct {
	Addr mem.BlockAddr
}

// recallMsg invalidates a writable copy and requests a writeback. SWI
// marks speculative (early) recalls so stats distinguish them; protocol
// handling is identical — that is the point of the design (§4.2).
type recallMsg struct {
	Addr mem.BlockAddr
	SWI  bool
}

// ackInvMsg acknowledges an invalidation. SpecUnused piggy-backs the
// verification bit: the invalidated line had been placed speculatively and
// was never referenced (§4.2).
type ackInvMsg struct {
	Addr       mem.BlockAddr
	SpecUnused bool
}

// writebackMsg returns a dirty writable copy to the home. Written reports
// whether the owner actually stored to the line since it was granted; the
// speculative-upgrade extension uses it to verify exclusive grants.
// Voluntary marks a capacity-eviction writeback (finite-cache mode): sent
// without a recall, it may cross a recall in flight, in which case it
// doubles as that recall's response.
type writebackMsg struct {
	Addr      mem.BlockAddr
	Version   uint64
	SWI       bool
	Written   bool
	Voluntary bool
}

// dataMsg grants a copy to a requester. Excl grants ownership.
type dataMsg struct {
	Addr    mem.BlockAddr
	Version uint64
	Excl    bool
}

// upgradeAckMsg grants write permission to a requester that retained its
// read-only copy throughout the invalidation of the other sharers.
type upgradeAckMsg struct {
	Addr    mem.BlockAddr
	Version uint64
}

// specDataMsg is a speculatively forwarded read-only copy. A receiver with
// a valid copy or an outstanding request for the block drops it (§4.2's
// race rule), so the base protocol is never perturbed.
type specDataMsg struct {
	Addr    mem.BlockAddr
	Version uint64
}

// swiHintMsg tells the home of Addr that the sender's processor has moved
// on to writing a different block — the §4.1 early-write-invalidate
// signal. The requester-side DSM hardware maintains the per-processor
// last-write table (it observes all of its processor's write requests,
// regardless of home) and notifies the previous block's home off the
// critical path. A hint is purely advisory; the home revalidates that the
// block is still exclusively owned by the sender before recalling it.
type swiHintMsg struct {
	Addr mem.BlockAddr
}
