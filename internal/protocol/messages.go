package protocol

import "specdsm/internal/mem"

// The coherence message set. Requests travel requester→home; Inval/Recall
// travel home→cache; acks and writebacks travel cache→home; data grants
// travel home→requester. All messages for a (src,dst) pair are delivered
// FIFO by the network model.
//
// Messages are one tagged-union value type rather than a family of
// structs behind an interface: the network is instantiated as
// network.Network[Msg], so sending a message never boxes it onto the heap
// and dispatch is a jump on Kind instead of a type switch. The union is
// small (the variants share Addr and Version), so passing it by value is
// cheaper than the allocation it replaces.

// MsgKind discriminates the Msg union.
type MsgKind uint8

const (
	// msgNone is the zero Msg: never sent, panics on dispatch.
	msgNone MsgKind = iota
	// MsgReq is a memory request message: Read, Write, or Upgrade (§2),
	// selected by Msg.Req.
	MsgReq
	// MsgInval invalidates a read-only copy; the cache answers MsgAckInv.
	MsgInval
	// MsgRecall invalidates a writable copy and requests a writeback. SWI
	// marks speculative (early) recalls so stats distinguish them;
	// protocol handling is identical — that is the point of the design
	// (§4.2).
	MsgRecall
	// MsgAckInv acknowledges an invalidation. SpecUnused piggy-backs the
	// verification bit: the invalidated line had been placed speculatively
	// and was never referenced (§4.2).
	MsgAckInv
	// MsgWriteback returns a dirty writable copy to the home. Written
	// reports whether the owner actually stored to the line since it was
	// granted; the speculative-upgrade extension uses it to verify
	// exclusive grants. Voluntary marks a capacity-eviction writeback
	// (finite-cache mode): sent without a recall, it may cross a recall in
	// flight, in which case it doubles as that recall's response.
	MsgWriteback
	// MsgData grants a copy to a requester. Excl grants ownership.
	MsgData
	// MsgUpgradeAck grants write permission to a requester that retained
	// its read-only copy throughout the invalidation of the other sharers.
	MsgUpgradeAck
	// MsgSpecData is a speculatively forwarded read-only copy. A receiver
	// with a valid copy or an outstanding request for the block drops it
	// (§4.2's race rule), so the base protocol is never perturbed.
	MsgSpecData
	// MsgSWIHint tells the home of Addr that the sender's processor has
	// moved on to writing a different block — the §4.1
	// early-write-invalidate signal. The requester-side DSM hardware
	// maintains the per-processor last-write table (it observes all of its
	// processor's write requests, regardless of home) and notifies the
	// previous block's home off the critical path. A hint is purely
	// advisory; the home revalidates that the block is still exclusively
	// owned by the sender before recalling it.
	MsgSWIHint
)

func (k MsgKind) String() string {
	switch k {
	case MsgReq:
		return "req"
	case MsgInval:
		return "inval"
	case MsgRecall:
		return "recall"
	case MsgAckInv:
		return "ack-inv"
	case MsgWriteback:
		return "writeback"
	case MsgData:
		return "data"
	case MsgUpgradeAck:
		return "upgrade-ack"
	case MsgSpecData:
		return "spec-data"
	case MsgSWIHint:
		return "swi-hint"
	default:
		return "none"
	}
}

// Msg is one coherence message. Kind selects the variant; the other
// fields are meaningful only for the variants documented on the MsgKind
// constants.
type Msg struct {
	Kind    MsgKind
	Req     mem.ReqKind // MsgReq
	Addr    mem.BlockAddr
	Version uint64 // MsgWriteback, MsgData, MsgUpgradeAck, MsgSpecData
	// Flags.
	Excl       bool // MsgData: grant is exclusive
	SWI        bool // MsgRecall/MsgWriteback: speculative recall chain
	Written    bool // MsgWriteback: owner stored to the line
	Voluntary  bool // MsgWriteback: capacity eviction, not recall response
	SpecUnused bool // MsgAckInv: speculative copy was never referenced
}
