package protocol

import (
	"specdsm/internal/core"
	"specdsm/internal/sim"
)

// Timing collects the latency parameters of the node model, in processor
// cycles. DefaultTiming is calibrated to Table 1 of the paper.
type Timing struct {
	// HitLatency is a processor cache hit.
	HitLatency sim.Cycle
	// LocalMem is a local memory (or remote-cache) access that needs no
	// coherence activity: Table 1's 104 cycles.
	LocalMem sim.Cycle
	// BusOverhead is miss detection plus bus acquisition before a request
	// leaves the node.
	BusOverhead sim.Cycle
	// FillOverhead is the bus transfer and cache fill when a response
	// arrives.
	FillOverhead sim.Cycle
	// DirOccupancy is the directory's per-message processing time; the
	// directory is a serialized resource.
	DirOccupancy sim.Cycle
	// MemAccess is the memory read/write at the home node when supplying
	// or accepting block data.
	MemAccess sim.Cycle
	// CacheAccess is the remote-cache probe when servicing an external
	// invalidation or recall.
	CacheAccess sim.Cycle
	// LocalHop is the node-internal hop between the processor side and the
	// node's own directory (requests to one's own home skip the network).
	LocalHop sim.Cycle
}

// DefaultTiming reproduces Table 1: a clean two-hop remote read totals
// 25 + (20+80+20) + 24 + 104 + (20+80+20) + 25 = 418 cycles, local access
// is 104 cycles, and the remote-to-local ratio is ~4.
func DefaultTiming() Timing {
	return Timing{
		HitLatency:   1,
		LocalMem:     104,
		BusOverhead:  25,
		FillOverhead: 25,
		DirOccupancy: 24,
		MemAccess:    104,
		CacheAccess:  12,
		LocalHop:     12,
	}
}

// Options configures a node's predictor attachment and speculation.
type Options struct {
	// Observers are passive predictors fed every message arriving at this
	// node's directory. They never influence protocol behaviour; they are
	// how Figures 7-8 and Tables 3-4 measure Cosmos/MSP/VMSP on identical
	// message streams.
	Observers []core.Predictor
	// Active is the predictor consulted for speculation (the paper's
	// speculative DSMs use a VMSP with history depth one). It also
	// observes all messages. Nil disables speculation entirely.
	Active core.Predictor
	// EnableFR turns on First-Read triggering of read-sequence speculation.
	EnableFR bool
	// EnableSWI turns on Speculative Write-Invalidation. The paper's
	// SWI-DSM runs SWI and FR together; EnableSWI without EnableFR is
	// permitted for ablation.
	EnableSWI bool
	// EnableSpecUpgrade enables the migratory-sharing extension sketched
	// in §4.1 (future work in the paper): when the predictor's next symbol
	// after a read by P is an upgrade by P, the directory grants the read
	// exclusively, eliminating the upgrade round trip.
	EnableSpecUpgrade bool
	// CacheCapacity bounds the node's valid cache lines (0 = unbounded,
	// the paper's §6 assumption of a remote cache large enough for all
	// remote data). With a bound, fills evict the least-recently-used
	// line: shared victims drop silently, exclusive victims write back
	// voluntarily; speculative forwards never displace demand data.
	CacheCapacity int
}

// AccessClass labels how a processor access was satisfied, for the
// execution-time breakdown of Figure 9.
type AccessClass uint8

const (
	// ClassHit is a processor cache hit.
	ClassHit AccessClass = iota
	// ClassSpecHit is a hit on a speculatively forwarded block — a remote
	// access converted into a local one. First reference clears the
	// verification bit.
	ClassSpecHit
	// ClassLocal is a local memory access with no coherence activity.
	ClassLocal
	// ClassProtocol is an access that required a coherence transaction
	// (remote request waiting time in Figure 9's breakdown).
	ClassProtocol
)

func (c AccessClass) String() string {
	switch c {
	case ClassHit:
		return "hit"
	case ClassSpecHit:
		return "spec-hit"
	case ClassLocal:
		return "local"
	case ClassProtocol:
		return "protocol"
	default:
		return "?"
	}
}

// AccessOutcome reports the completion of one processor access.
type AccessOutcome struct {
	Class   AccessClass
	Latency sim.Cycle
}

// CacheStats counts processor-side events at one node.
type CacheStats struct {
	Hits            uint64
	SpecHits        uint64
	LocalAccesses   uint64
	ProtocolReads   uint64
	ProtocolWrites  uint64
	InvalsReceived  uint64
	RecallsReceived uint64
	SpecInstalled   uint64
	SpecDropped     uint64
	SpecReferenced  uint64
	// Finite-cache mode.
	Evictions          uint64
	EvictionWritebacks uint64
	SpecDeclinedFull   uint64
}

// DirStats counts directory-side events at one node (its home blocks).
type DirStats struct {
	// Request messages processed, by kind.
	Reads    uint64
	Writes   uint64
	Upgrades uint64
	// Protocol actions.
	InvalsSent    uint64
	RecallsSent   uint64
	AcksReceived  uint64
	Writebacks    uint64
	QueuedReqs    uint64
	UpgradeGrants uint64
	// Speculation (reads forwarded speculatively, by trigger).
	SpecReadsFR    uint64
	SpecReadsSWI   uint64
	SpecReadUnused uint64 // verified misspeculations (never referenced)
	// SWI.
	SWIRecalls   uint64
	SWIPremature uint64
	// Extension: speculative exclusive grants for migratory sharing.
	SpecUpgrades        uint64
	SpecUpgradeMisfires uint64
}
