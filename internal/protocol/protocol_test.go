package protocol

import (
	"math/rand"
	"testing"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/network"
	"specdsm/internal/sim"
)

type harness struct {
	t   *testing.T
	k   *sim.Kernel
	sys *System
}

func newHarness(t *testing.T, n int, opts ...Options) *harness {
	t.Helper()
	k := sim.NewKernel()
	sys := NewSystem(k, n, DefaultTiming(), network.DefaultConfig(), opts)
	return &harness{t: t, k: k, sys: sys}
}

// access issues one access and runs the simulation until it completes.
func (h *harness) access(node mem.NodeID, isWrite bool, addr mem.BlockAddr) AccessOutcome {
	h.t.Helper()
	var out AccessOutcome
	fired := false
	h.sys.Node(node).Access(isWrite, addr, func(o AccessOutcome) {
		out = o
		fired = true
	})
	h.k.Run(0)
	if !fired {
		h.t.Fatalf("access by node %d to %v never completed", node, addr)
	}
	return out
}

func (h *harness) read(node mem.NodeID, addr mem.BlockAddr) AccessOutcome {
	h.t.Helper()
	return h.access(node, false, addr)
}

func (h *harness) write(node mem.NodeID, addr mem.BlockAddr) AccessOutcome {
	h.t.Helper()
	return h.access(node, true, addr)
}

// finish drains the event queue and asserts coherence, quiescence, and
// cache/directory consistency.
func (h *harness) finish() {
	h.t.Helper()
	h.k.Run(0)
	if v := h.sys.Violations(); len(v) != 0 {
		h.t.Fatalf("coherence violations: %v", v)
	}
	if err := h.sys.CheckQuiescent(); err != nil {
		h.t.Fatal(err)
	}
	if err := h.sys.AuditConsistency(); err != nil {
		h.t.Fatal(err)
	}
}

func TestRemoteCleanReadIs418Cycles(t *testing.T) {
	h := newHarness(t, 2)
	addr := mem.MakeAddr(1, 0) // homed at node 1, read by node 0
	out := h.read(0, addr)
	if out.Class != ClassProtocol {
		t.Fatalf("class = %v, want protocol", out.Class)
	}
	if out.Latency != 418 {
		t.Fatalf("clean remote read latency = %d, want 418 (Table 1)", out.Latency)
	}
	h.finish()
}

func TestLocalAccessIs104Cycles(t *testing.T) {
	h := newHarness(t, 2)
	addr := mem.MakeAddr(0, 0)
	out := h.read(0, addr)
	if out.Class != ClassLocal || out.Latency != 104 {
		t.Fatalf("local read = %+v, want local/104 (Table 1)", out)
	}
	out = h.write(0, mem.MakeAddr(0, 1))
	if out.Class != ClassLocal || out.Latency != 104 {
		t.Fatalf("local write = %+v, want local/104", out)
	}
	h.finish()
}

func TestRemoteToLocalRatioIsAboutFour(t *testing.T) {
	h := newHarness(t, 2)
	remote := h.read(0, mem.MakeAddr(1, 0)).Latency
	local := h.read(0, mem.MakeAddr(0, 0)).Latency
	rtl := float64(remote) / float64(local)
	if rtl < 3.5 || rtl > 4.5 {
		t.Fatalf("rtl = %.2f, want ~4 (Table 1)", rtl)
	}
	h.finish()
}

func TestCacheHitAfterFill(t *testing.T) {
	h := newHarness(t, 2)
	addr := mem.MakeAddr(1, 0)
	h.read(0, addr)
	out := h.read(0, addr)
	if out.Class != ClassHit || out.Latency != 1 {
		t.Fatalf("second read = %+v, want hit/1", out)
	}
	h.finish()
}

func TestReadFromExclusiveRecallsOwner(t *testing.T) {
	h := newHarness(t, 3)
	addr := mem.MakeAddr(0, 0)
	h.write(1, addr) // node 1 becomes exclusive owner
	view := h.sys.InspectEntry(addr)
	if view.State != "Exclusive" || view.Owner != 1 {
		t.Fatalf("after write: %+v", view)
	}
	out := h.read(2, addr)
	if out.Class != ClassProtocol {
		t.Fatalf("read class = %v", out.Class)
	}
	// 3-hop: must cost more than a clean 2-hop read.
	if out.Latency <= 418 {
		t.Fatalf("3-hop read latency = %d, should exceed 418", out.Latency)
	}
	view = h.sys.InspectEntry(addr)
	if view.State != "Shared" || !view.Sharers.Has(2) || view.Sharers.Has(1) {
		t.Fatalf("after recall: %+v", view)
	}
	// The former owner's next access misses (its copy was invalidated).
	out = h.read(1, addr)
	if out.Class != ClassProtocol {
		t.Fatalf("former owner read = %+v, want protocol (copy recalled)", out)
	}
	h.finish()
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := newHarness(t, 4)
	addr := mem.MakeAddr(0, 0)
	h.read(1, addr)
	h.read(2, addr)
	h.read(3, addr)
	if got := h.sys.InspectEntry(addr).Sharers.Count(); got != 3 {
		t.Fatalf("sharers = %d, want 3", got)
	}
	h.write(1, addr) // upgrade: 1 holds a read-only copy
	view := h.sys.InspectEntry(addr)
	if view.State != "Exclusive" || view.Owner != 1 {
		t.Fatalf("after upgrade: %+v", view)
	}
	st := h.sys.Node(0).DirStats()
	if st.Upgrades != 1 {
		t.Fatalf("upgrade count = %d", st.Upgrades)
	}
	if st.InvalsSent != 2 || st.AcksReceived != 2 {
		t.Fatalf("invals/acks = %d/%d, want 2/2", st.InvalsSent, st.AcksReceived)
	}
	if st.UpgradeGrants != 1 {
		t.Fatalf("upgrade grants = %d, want 1 (requester kept its copy)", st.UpgradeGrants)
	}
	// Invalidated sharers miss on their next access.
	if out := h.read(2, addr); out.Class != ClassProtocol {
		t.Fatalf("invalidated sharer read = %+v", out)
	}
	h.finish()
}

func TestWriteMissFromExclusive(t *testing.T) {
	h := newHarness(t, 3)
	addr := mem.MakeAddr(0, 0)
	h.write(1, addr)
	h.write(2, addr) // write-recall path
	view := h.sys.InspectEntry(addr)
	if view.State != "Exclusive" || view.Owner != 2 {
		t.Fatalf("after second write: %+v", view)
	}
	if view.Version != 2 {
		t.Fatalf("version = %d, want 2", view.Version)
	}
	h.finish()
}

func TestVersionMonotonicityAcrossOwners(t *testing.T) {
	h := newHarness(t, 4)
	addr := mem.MakeAddr(3, 7)
	for i := 0; i < 5; i++ {
		h.write(mem.NodeID(i%3), addr)
		h.read(mem.NodeID((i+1)%3), addr)
	}
	if got := h.sys.InspectEntry(addr).Version; got != 5 {
		t.Fatalf("version = %d, want 5", got)
	}
	h.finish()
}

func TestConcurrentReadersQueueAtDirectory(t *testing.T) {
	h := newHarness(t, 4)
	addr := mem.MakeAddr(0, 0)
	done := 0
	for n := mem.NodeID(1); n <= 3; n++ {
		h.sys.Node(n).Access(false, addr, func(AccessOutcome) { done++ })
	}
	h.k.Run(0)
	if done != 3 {
		t.Fatalf("completed %d reads, want 3", done)
	}
	view := h.sys.InspectEntry(addr)
	if view.Sharers.Count() != 3 || view.State != "Shared" {
		t.Fatalf("entry = %+v", view)
	}
	h.finish()
}

func TestConcurrentWritersSerialize(t *testing.T) {
	h := newHarness(t, 4)
	addr := mem.MakeAddr(0, 0)
	done := 0
	for n := mem.NodeID(1); n <= 3; n++ {
		h.sys.Node(n).Access(true, addr, func(AccessOutcome) { done++ })
	}
	h.k.Run(0)
	if done != 3 {
		t.Fatalf("completed %d writes, want 3", done)
	}
	view := h.sys.InspectEntry(addr)
	if view.State != "Exclusive" || view.Version != 3 {
		t.Fatalf("entry = %+v, want exclusive at version 3", view)
	}
	h.finish()
}

func TestReadWriteRace(t *testing.T) {
	// A reader and a writer race for the same block; the reader may be
	// invalidated mid-fill (use-once rule) but coherence must hold.
	h := newHarness(t, 3)
	addr := mem.MakeAddr(0, 0)
	done := 0
	h.sys.Node(1).Access(false, addr, func(AccessOutcome) { done++ })
	h.sys.Node(2).Access(true, addr, func(AccessOutcome) { done++ })
	h.k.Run(0)
	if done != 2 {
		t.Fatalf("completed %d, want 2", done)
	}
	h.finish()
}

// specHarness builds a 4-node system with an active VMSP at every node.
func specHarness(t *testing.T, fr, swi bool) *harness {
	opts := make([]Options, 4)
	for i := range opts {
		opts[i] = Options{
			Active:    core.NewVMSP(1),
			EnableFR:  fr,
			EnableSWI: swi,
		}
	}
	return newHarness(t, 4, opts...)
}

// producerConsumerRound: node 1 writes the block, nodes 2 and 3 read it.
func producerConsumerRound(h *harness, addr mem.BlockAddr) {
	h.write(1, addr)
	h.read(2, addr)
	h.read(3, addr)
}

func TestFRForwardsToSecondReader(t *testing.T) {
	h := specHarness(t, true, false)
	addr := mem.MakeAddr(0, 0)
	// Two training rounds to learn Write(1) -> Read{2,3}.
	producerConsumerRound(h, addr)
	producerConsumerRound(h, addr)
	// Third round: the first read triggers forwarding to node 3.
	h.write(1, addr)
	out2 := h.read(2, addr)
	if out2.Class != ClassProtocol {
		t.Fatalf("first reader should pay the remote latency, got %+v", out2)
	}
	out3 := h.read(3, addr)
	if out3.Class != ClassSpecHit {
		t.Fatalf("second reader = %+v, want spec-hit (FR forward)", out3)
	}
	if out3.Latency != 1 {
		t.Fatalf("spec hit latency = %d, want 1", out3.Latency)
	}
	st := h.sys.Node(0).DirStats()
	if st.SpecReadsFR == 0 {
		t.Fatal("no FR speculative reads recorded")
	}
	if st.SpecReadsSWI != 0 {
		t.Fatalf("SWI reads = %d in FR-only mode", st.SpecReadsSWI)
	}
	h.finish()
}

// swiRound: producer (node 1) writes two blocks homed at node 0, then the
// consumers read them. The write to B tells the EWI table the producer is
// done with A (and vice versa next round). Both blocks have readers, so
// neither SWI is premature.
func swiRound(h *harness, a, b mem.BlockAddr) {
	h.write(1, a)
	h.write(1, b)
	h.read(2, a)
	h.read(3, a)
	h.read(2, b)
}

func TestSWIInvalidatesEarlyAndForwards(t *testing.T) {
	h := specHarness(t, true, true)
	a := mem.MakeAddr(0, 0)
	b := mem.MakeAddr(0, 1)
	swiRound(h, a, b)
	swiRound(h, a, b)
	// Third round: after the write to B, block A is speculatively
	// invalidated and forwarded to both predicted readers.
	h.write(1, a)
	h.write(1, b)
	h.k.Run(0) // let the SWI recall and forwards complete
	out2 := h.read(2, a)
	out3 := h.read(3, a)
	if out2.Class != ClassSpecHit || out3.Class != ClassSpecHit {
		t.Fatalf("readers = %v/%v, want spec-hit/spec-hit (SWI forward)", out2.Class, out3.Class)
	}
	st := h.sys.Node(0).DirStats()
	if st.SWIRecalls == 0 {
		t.Fatal("no SWI recalls recorded")
	}
	if st.SpecReadsSWI < 2 {
		t.Fatalf("SWI spec reads = %d, want >= 2", st.SpecReadsSWI)
	}
	if st.SWIPremature != 0 {
		t.Fatalf("premature SWI = %d, want 0 (both blocks have consumers)", st.SWIPremature)
	}
	h.finish()
}

func TestSWINeedsReadPrediction(t *testing.T) {
	h := specHarness(t, true, true)
	a := mem.MakeAddr(0, 0)
	b := mem.MakeAddr(0, 1)
	// No block is ever read, so no read sequence is ever predicted — SWI
	// has nothing to trigger and must not fire at all (§4.1: SWI exists to
	// trigger speculation for the consumers' reads).
	for i := 0; i < 5; i++ {
		h.write(1, a)
		h.write(1, b)
		h.k.Run(0)
	}
	st := h.sys.Node(0).DirStats()
	if st.SWIRecalls != 0 {
		t.Fatalf("SWI fired %d times with no read predictions", st.SWIRecalls)
	}
	h.finish()
}

func TestSWIPrematureSuppressed(t *testing.T) {
	h := specHarness(t, true, true)
	a := mem.MakeAddr(0, 0)
	b := mem.MakeAddr(0, 1)
	// Train read predictions for both blocks.
	for i := 0; i < 2; i++ {
		h.write(1, a)
		h.write(1, b)
		h.read(2, a)
		h.read(2, b)
	}
	// Now the producer starts re-reading its freshly written blocks: every
	// SWI recall is premature. The premature bit is per pattern-table
	// entry, so SWI activity must die out rather than repeat forever.
	var lastRecalls, lastPremature uint64
	for i := 0; i < 6; i++ {
		h.write(1, a)
		h.write(1, b)
		h.k.Run(0)
		h.read(1, a)
		h.read(1, b)
		h.k.Run(0)
		st := h.sys.Node(0).DirStats()
		lastRecalls, lastPremature = st.SWIRecalls, st.SWIPremature
	}
	if lastPremature == 0 {
		t.Fatal("expected premature SWI detections")
	}
	// Steady state: two more rounds must not add SWI activity.
	for i := 0; i < 2; i++ {
		h.write(1, a)
		h.write(1, b)
		h.k.Run(0)
		h.read(1, a)
		h.read(1, b)
		h.k.Run(0)
	}
	st := h.sys.Node(0).DirStats()
	if st.SWIRecalls != lastRecalls || st.SWIPremature != lastPremature {
		t.Fatalf("SWI still firing in steady state: recalls %d->%d premature %d->%d",
			lastRecalls, st.SWIRecalls, lastPremature, st.SWIPremature)
	}
	h.finish()
}

func TestSpecMisspeculationPrunesPrediction(t *testing.T) {
	h := specHarness(t, true, false)
	addr := mem.MakeAddr(0, 0)
	// Train Write(1) -> Read{2,3}.
	producerConsumerRound(h, addr)
	producerConsumerRound(h, addr)
	// Now node 3 stops reading. Round: write, read by 2 (forwards to 3
	// speculatively), write again (invalidates 3's unused copy).
	h.write(1, addr)
	h.read(2, addr)
	h.write(1, addr)
	h.k.Run(0)
	st := h.sys.Node(0).DirStats()
	if st.SpecReadUnused == 0 {
		t.Fatal("unused speculative copy not detected")
	}
	// Next round: node 3 must no longer receive speculative copies.
	before := h.sys.Node(0).DirStats().SpecReadsFR
	h.read(2, addr)
	h.k.Run(0)
	after := h.sys.Node(0).DirStats().SpecReadsFR
	if after != before {
		t.Fatalf("prediction not pruned: FR forwards went %d -> %d", before, after)
	}
	h.finish()
}

func TestSpecDataDroppedOnRaceWithInFlightRead(t *testing.T) {
	h := specHarness(t, true, false)
	addr := mem.MakeAddr(0, 0)
	producerConsumerRound(h, addr)
	producerConsumerRound(h, addr)
	h.write(1, addr)
	// Issue both reads concurrently: node 3's read is in flight when the
	// FR forward (triggered by node 2's read) arrives, so the speculative
	// copy is dropped and the real response is used.
	done := 0
	h.sys.Node(2).Access(false, addr, func(AccessOutcome) { done++ })
	h.sys.Node(3).Access(false, addr, func(AccessOutcome) { done++ })
	h.k.Run(0)
	if done != 2 {
		t.Fatalf("completed %d reads", done)
	}
	cs := h.sys.Node(3).CacheStats()
	if cs.SpecDropped == 0 {
		t.Fatal("expected the raced speculative copy to be dropped")
	}
	h.finish()
}

func TestSpeculativeUpgradeExtension(t *testing.T) {
	opts := make([]Options, 3)
	for i := range opts {
		opts[i] = Options{Active: core.NewMSP(1), EnableSpecUpgrade: true}
	}
	h := newHarness(t, 3, opts...)
	addr := mem.MakeAddr(0, 0)
	// Migratory pattern: each node reads then writes.
	migrate := func(n mem.NodeID) {
		h.read(n, addr)
		h.write(n, addr)
	}
	for i := 0; i < 3; i++ {
		migrate(1)
		migrate(2)
	}
	st := h.sys.Node(0).DirStats()
	if st.SpecUpgrades == 0 {
		t.Fatal("speculative upgrades never fired for migratory pattern")
	}
	// Once granted exclusively on a read, the subsequent write hits.
	h.read(1, addr)
	out := h.write(1, addr)
	if out.Class != ClassHit {
		t.Fatalf("write after spec-upgraded read = %+v, want hit", out)
	}
	h.finish()
}

func TestRandomStressCoherence(t *testing.T) {
	// Randomized accesses across nodes and blocks with all speculation
	// enabled; the version checker and quiescence assertions must hold.
	for _, cfg := range []struct {
		name    string
		fr, swi bool
	}{
		{"base", false, false},
		{"fr", true, false},
		{"swi", true, true},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			const nodes = 8
			opts := make([]Options, nodes)
			for i := range opts {
				opts[i] = Options{Active: core.NewVMSP(1), EnableFR: cfg.fr, EnableSWI: cfg.swi}
			}
			h := newHarness(t, nodes, opts...)
			rng := rand.New(rand.NewSource(7))
			blocks := make([]mem.BlockAddr, 24)
			for i := range blocks {
				blocks[i] = mem.MakeAddr(mem.NodeID(rng.Intn(nodes)), uint64(i))
			}
			// Issue batches of concurrent accesses.
			for round := 0; round < 60; round++ {
				pending := 0
				for n := 0; n < nodes; n++ {
					addr := blocks[rng.Intn(len(blocks))]
					isWrite := rng.Intn(3) == 0
					pending++
					h.sys.Node(mem.NodeID(n)).Access(isWrite, addr, func(AccessOutcome) { pending-- })
				}
				h.k.Run(0)
				if pending != 0 {
					t.Fatalf("round %d: %d accesses incomplete", round, pending)
				}
			}
			h.finish()
		})
	}
}

func TestPassiveObserversSeeIdenticalStreams(t *testing.T) {
	// Attach Cosmos/MSP/VMSP as passive observers; their tracked counts
	// must relate (Cosmos sees requests plus acks/writebacks).
	cosmos := core.NewCosmos(1)
	msp := core.NewMSP(1)
	vmsp := core.NewVMSP(1)
	opts := []Options{{Observers: []core.Predictor{cosmos, msp, vmsp}}}
	h := newHarness(t, 4, opts[0], opts[0], opts[0], opts[0])
	addr := mem.MakeAddr(0, 0)
	for i := 0; i < 5; i++ {
		producerConsumerRound(h, addr)
	}
	cs, ms, vs := cosmos.Stats(), msp.Stats(), vmsp.Stats()
	if ms.Tracked != vs.Tracked {
		t.Fatalf("MSP/VMSP tracked differ: %d vs %d", ms.Tracked, vs.Tracked)
	}
	if cs.Tracked <= ms.Tracked {
		t.Fatalf("Cosmos must track more messages (acks): %d vs %d", cs.Tracked, ms.Tracked)
	}
	h.finish()
}

func TestQuiescenceDetectsPending(t *testing.T) {
	h := newHarness(t, 2)
	addr := mem.MakeAddr(1, 0)
	h.sys.Node(0).Access(false, addr, func(AccessOutcome) {})
	// Do not run the kernel: the access is in flight.
	if err := h.sys.CheckQuiescent(); err == nil {
		t.Fatal("expected quiescence check to fail with pending access")
	}
	h.k.Run(0)
	if err := h.sys.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkStatsExposed(t *testing.T) {
	h := newHarness(t, 2)
	h.read(0, mem.MakeAddr(1, 0))
	if h.sys.NetworkStats().Sent == 0 {
		t.Fatal("expected network traffic for a remote read")
	}
	h.finish()
}
