package protocol

import (
	"math/rand"
	"testing"

	"specdsm/internal/core"
	"specdsm/internal/mem"
)

// Regression for a race found by the coherence checker: a speculative
// forward adds the target to the sharer vector, but the target may have
// dropped the copy (it had its own request in flight). A later upgrade
// from that node must then be granted with data, not permission-only.
//
// Construction: node 3 holds a shared copy and upgrades; a competing
// write invalidates node 3's line while the upgrade is in flight; node
// 3's ack removes it from the sharers; an FR forward then re-adds node 3
// speculatively, but node 3 drops it (pending upgrade). When the queued
// upgrade is finally served, the directory sees node 3 as a (speculative)
// sharer whose copy it cannot trust.
func TestSpecTaintedUpgradeGetsData(t *testing.T) {
	h := specHarness(t, true, false)
	addr := mem.MakeAddr(0, 0)

	// Train the predictor: write by 1, reads by {2,3}.
	producerConsumerRound(h, addr)
	producerConsumerRound(h, addr)

	// Node 3 reads (sharer), then node 1 writes while node 3
	// simultaneously upgrades: the write invalidates 3 mid-flight.
	h.read(3, addr)
	done := 0
	h.sys.Node(1).Access(true, addr, func(AccessOutcome) { done++ })
	h.sys.Node(3).Access(true, addr, func(AccessOutcome) { done++ })
	h.k.Run(0)
	if done != 2 {
		t.Fatalf("completed %d accesses", done)
	}
	// Node 2 reads, triggering an FR forward whose predicted set includes
	// node 3; races like the above may leave 3's membership spec-tainted.
	h.read(2, addr)
	h.write(3, addr)
	h.finish()
}

// Randomized mixed-sharing stress across modes and seeds: consumers that
// also write, plus SWI, exercise the spec-forward/upgrade interleavings.
func TestRandomReadWriteSharerStress(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		for _, swi := range []bool{false, true} {
			h := specHarness(t, true, swi)
			rng := rand.New(rand.NewSource(seed))
			blocks := []mem.BlockAddr{
				mem.MakeAddr(0, 0), mem.MakeAddr(0, 1), mem.MakeAddr(1, 0), mem.MakeAddr(2, 5),
			}
			for round := 0; round < 40; round++ {
				pending := 0
				for n := mem.NodeID(0); n < 4; n++ {
					addr := blocks[rng.Intn(len(blocks))]
					// Read-mostly with frequent upgrades: maximizes
					// sharer/spec interleavings.
					isWrite := rng.Intn(4) == 0
					pending++
					h.sys.Node(n).Access(isWrite, addr, func(AccessOutcome) { pending-- })
				}
				h.k.Run(0)
				if pending != 0 {
					t.Fatalf("seed %d round %d: %d incomplete", seed, round, pending)
				}
			}
			h.finish()
		}
	}
}

// The SWI hint path must be harmless when the hinted block has moved on:
// not exclusive, wrong owner, busy, or queued.
func TestSWIHintRevalidation(t *testing.T) {
	h := specHarness(t, true, true)
	a := mem.MakeAddr(0, 0)
	b := mem.MakeAddr(0, 1)

	// Train a reader for a so SWI has a prediction to trigger.
	h.write(1, a)
	h.read(2, a)
	h.write(1, a)
	h.read(2, a)

	// Now node 2 takes a exclusively; node 1's write to b still emits a
	// hint naming a, but the ownership check must reject it.
	h.write(2, a)
	before := h.sys.Node(0).DirStats().SWIRecalls
	h.write(1, b)
	h.k.Run(0)
	after := h.sys.Node(0).DirStats().SWIRecalls
	if after != before {
		t.Fatalf("SWI fired on a block owned by another node")
	}
	h.finish()
}

// Confidence-gated active predictors plug into the protocol unchanged.
func TestActivePredictorWithConfidence(t *testing.T) {
	opts := make([]Options, 4)
	for i := range opts {
		p := core.NewVMSP(1)
		p.SetConfidenceThreshold(2)
		opts[i] = Options{Active: p, EnableFR: true, EnableSWI: true}
	}
	h := newHarness(t, 4, opts...)
	addr := mem.MakeAddr(0, 0)
	// Below-threshold: no forwards yet after a single round.
	producerConsumerRound(h, addr)
	producerConsumerRound(h, addr)
	early := h.sys.Node(0).DirStats().SpecReadsFR + h.sys.Node(0).DirStats().SpecReadsSWI
	if early != 0 {
		t.Fatalf("speculation fired before confidence built: %d", early)
	}
	// After enough stable rounds the gate opens.
	for i := 0; i < 4; i++ {
		producerConsumerRound(h, addr)
	}
	st := h.sys.Node(0).DirStats()
	if st.SpecReadsFR+st.SpecReadsSWI == 0 {
		t.Fatal("speculation never passed the confidence gate")
	}
	h.finish()
}
