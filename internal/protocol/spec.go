package protocol

import (
	"specdsm/internal/mem"
)

// This file implements the speculation triggers of §4: Speculative
// Write-Invalidation (SWI) and the speculative read forwarding shared by
// SWI and First-Read (FR) triggering. The mechanisms only schedule
// existing protocol operations early; they never add protocol states.

// maybeSWI considers speculatively invalidating block addr, which the
// early-write-invalidate table says writer is probably done with. Fires
// only if the block is exclusively owned by that writer, the entry is
// quiescent, and the write pattern's premature bit is clear.
func (d *directory) maybeSWI(addr mem.BlockAddr, writer mem.NodeID) {
	act := d.n.opts.Active
	if act == nil {
		return
	}
	ei := d.entryIdx(addr)
	h := &d.hot[ei]
	if h.state != dirExclusive || h.owner != writer {
		return
	}
	if h.tr != nil || h.flags&dfHasWait != 0 {
		return
	}
	guard := act.SWIGuard(addr)
	if !guard.Allowed() {
		return
	}
	// SWI exists to trigger a predicted read sequence (§4.1); without a
	// learned read prediction there is nothing to trigger and the recall
	// would only risk a premature invalidation.
	if _, ok := act.PredictReaders(addr); !ok {
		return
	}
	d.cold[ei].swiGuard = guard
	d.startTrans(h, trans{kind: transSWI, requester: writer})
	d.stats.SWIRecalls++
	d.stats.RecallsSent++
	d.n.sys.route(d.n.id, writer, Msg{Kind: MsgRecall, Addr: addr, SWI: true})
}

// specForward sends speculative read-only copies of addr to the readers
// the active predictor expects next, excluding the given nodes and anyone
// already sharing. Each forwarded copy is tracked for verification, and
// the predictor's history advances as if the reads had arrived (§4.2).
func (d *directory) specForward(addr mem.BlockAddr, ei int32, exclude mem.ReaderVec, viaSWI bool) {
	act := d.n.opts.Active
	if act == nil {
		return
	}
	rp, ok := act.PredictReaders(addr)
	if !ok {
		return
	}
	h := &d.hot[ei]
	targets := rp.Readers.AndNot(exclude).AndNot(h.sharers)
	if targets.Empty() {
		return
	}
	if h.state == dirExclusive {
		return
	}
	v := h.version
	for w := targets; !w.Empty(); {
		q := w.Lowest()
		w = w.Without(q)
		h.sharers = h.sharers.With(q)
		d.setSpecPend(ei, q, rp)
		if viaSWI {
			d.stats.SpecReadsSWI++
		} else {
			d.stats.SpecReadsFR++
		}
		d.n.sys.route(d.n.id, q, Msg{Kind: MsgSpecData, Addr: addr, Version: v})
	}
	h.state = dirShared
	act.AssumeReaders(addr, targets)
}

// specUpgradeApplies implements the migratory-sharing extension (§4.1
// future work, gated by Options.EnableSpecUpgrade): when the predictor
// expects the arriving reader to upgrade next, the read is granted
// exclusively, folding the read+upgrade pair into one transaction.
func (d *directory) specUpgradeApplies(addr mem.BlockAddr, reader mem.NodeID) bool {
	if !d.n.opts.EnableSpecUpgrade {
		return false
	}
	act := d.n.opts.Active
	if act == nil {
		return false
	}
	return act.PredictsUpgradeBy(addr, reader)
}
