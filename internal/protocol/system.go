package protocol

import (
	"fmt"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/network"
	"specdsm/internal/sim"
)

// Node is one DSM node: a processor-side cache controller plus the
// directory for the node's home blocks, plus (optionally) a predictor.
// The node also hosts the requester-side early-write-invalidate table
// (§4.1): it records the processor's most recent write request and emits
// SWI hints to the previous block's home.
type Node struct {
	id    mem.NodeID
	sys   *System
	cache *cache
	dir   *directory
	ewi   *core.EWITable
	opts  Options
}

// ID returns the node's identifier.
func (n *Node) ID() mem.NodeID { return n.id }

// AddObserver attaches one more passive predictor to this node's
// directory. Must be called before simulation starts.
func (n *Node) AddObserver(p core.Predictor) {
	n.opts.Observers = append(n.opts.Observers, p)
}

// Access issues a processor load or store. done fires at completion.
func (n *Node) Access(isWrite bool, addr mem.BlockAddr, done func(AccessOutcome)) {
	n.cache.Access(isWrite, addr, done)
}

// CacheStats returns the node's processor-side counters.
func (n *Node) CacheStats() CacheStats { return n.cache.stats }

// DirStats returns the node's home-side counters.
func (n *Node) DirStats() DirStats { return n.dir.stats }

// SweepUnreferencedSpec counts speculative lines never referenced by the
// end of a run (misspeculations not yet caught by an invalidation).
func (n *Node) SweepUnreferencedSpec() uint64 { return n.cache.sweepSpecLines() }

// deliver dispatches a message arriving at this node, to the directory
// (home-bound traffic) or the cache (copy-holder-bound traffic).
func (n *Node) deliver(src mem.NodeID, msg Msg) {
	switch msg.Kind {
	case MsgReq, MsgAckInv, MsgWriteback, MsgSWIHint:
		n.dir.deliver(src, msg)
	case MsgInval, MsgRecall, MsgData, MsgUpgradeAck, MsgSpecData:
		n.cache.deliver(src, msg)
	default:
		panic(fmt.Sprintf("protocol: node %d got unknown message kind %v", n.id, msg.Kind))
	}
}

// System assembles the nodes, network, and coherence checker.
type System struct {
	kernel *sim.Kernel
	net    *network.Network[Msg]
	timing Timing
	nodes  []*Node
	// sendPool recycles the deferred-send events used by routeAfter.
	sendPool sim.FreeList[sendEvent]

	// Coherence checking (simulator-level omniscience, assertions only).
	checkEnabled bool
	latest       map[mem.BlockAddr]uint64
	observed     map[obsKey]uint64
	violations   []string
}

// sendEvent is a pooled "route msg after a fixed delay" kernel event
// (cache probe and bus-overhead latencies); its run closure is bound once.
type sendEvent struct {
	s        *System
	src, dst mem.NodeID
	msg      Msg
	run      func()
}

func (ev *sendEvent) fire() {
	s, src, dst, msg := ev.s, ev.src, ev.dst, ev.msg
	s.sendPool.Put(ev)
	s.route(src, dst, msg)
}

// routeAfter routes msg from src to dst after delay cycles, without
// allocating a closure per call.
func (s *System) routeAfter(delay sim.Cycle, src, dst mem.NodeID, msg Msg) {
	ev, ok := s.sendPool.Get()
	if !ok {
		ev = &sendEvent{s: s}
		ev.run = ev.fire
	}
	ev.src, ev.dst, ev.msg = src, dst, msg
	s.kernel.After(delay, ev.run)
}

type obsKey struct {
	node mem.NodeID
	addr mem.BlockAddr
}

// NewSystem builds an n-node DSM on the given kernel. opts[i] configures
// node i; a single-element opts slice applies to every node.
func NewSystem(k *sim.Kernel, n int, timing Timing, netCfg network.Config, opts []Options) *System {
	if n <= 0 || n > mem.MaxNodes {
		panic(fmt.Sprintf("protocol: invalid node count %d", n))
	}
	s := &System{
		kernel:       k,
		net:          network.New[Msg](k, n, netCfg),
		timing:       timing,
		checkEnabled: true,
		latest:       make(map[mem.BlockAddr]uint64),
		observed:     make(map[obsKey]uint64),
	}
	for i := 0; i < n; i++ {
		var o Options
		switch {
		case len(opts) == 1:
			o = opts[0]
		case len(opts) == n:
			o = opts[i]
		case len(opts) == 0:
			// zero Options: plain Base-DSM node
		default:
			panic("protocol: opts must have length 0, 1, or n")
		}
		node := &Node{id: mem.NodeID(i), sys: s, opts: o, ewi: core.NewEWITable()}
		node.cache = newCache(node)
		node.dir = newDirectory(node)
		s.nodes = append(s.nodes, node)
		s.net.SetHandler(node.id, node.deliver)
	}
	return s
}

// Reset re-arms the system for a fresh run on a reset kernel: every
// node's cache, directory, and early-write-invalidate table clear (all
// retaining their storage), the network's occupancy horizons and
// counters clear, and the coherence checker forgets its version history.
// Attached predictors are NOT reset — they belong to the caller (the
// machine layer owns and resets them alongside this call). Call only on
// a quiescent system (a completed run); a reset system is observably
// equivalent to a freshly constructed one.
func (s *System) Reset() {
	for _, n := range s.nodes {
		n.cache.reset()
		n.dir.reset()
		n.ewi.Reset()
	}
	s.net.Reset()
	clear(s.latest)
	clear(s.observed)
	s.violations = s.violations[:0]
}

// ReconfigureNetwork swaps the interconnect timing of a built system, for
// reuse across sweep points that vary only the fabric. Call only on a
// quiescent system, alongside Reset.
func (s *System) ReconfigureNetwork(cfg network.Config) {
	s.net.Reconfigure(cfg)
}

// Node returns node id.
func (s *System) Node(id mem.NodeID) *Node { return s.nodes[id] }

// Nodes returns the node count.
func (s *System) Nodes() int { return len(s.nodes) }

// Kernel returns the simulation kernel the system runs on.
func (s *System) Kernel() *sim.Kernel { return s.kernel }

// Timing returns the latency configuration.
func (s *System) Timing() Timing { return s.timing }

// NetworkStats returns interconnect counters.
func (s *System) NetworkStats() network.Stats { return s.net.Stats() }

// SetCoherenceChecking toggles the version checker (on by default).
func (s *System) SetCoherenceChecking(on bool) { s.checkEnabled = on }

// route delivers a message from src to dst: node-internal traffic takes
// the local hop (via the network's pooled carrier path, bypassing the NI
// model and counters), everything else crosses the network.
func (s *System) route(src, dst mem.NodeID, msg Msg) {
	if src == dst {
		s.net.DeliverLocal(src, dst, s.timing.LocalHop, msg)
		return
	}
	s.net.Send(src, dst, msg)
}

// noteVersion records a write-permission grant for coherence checking.
func (s *System) noteVersion(addr mem.BlockAddr, v uint64) {
	if !s.checkEnabled {
		return
	}
	if prev := s.latest[addr]; v != prev+1 {
		s.violations = append(s.violations,
			fmt.Sprintf("version grant %d follows %d for %v", v, prev, addr))
	}
	s.latest[addr] = v
}

// checkObserved asserts per-node version monotonicity: a processor must
// never observe an older version of a block than it has already seen.
func (s *System) checkObserved(node mem.NodeID, addr mem.BlockAddr, v uint64) {
	if !s.checkEnabled {
		return
	}
	k := obsKey{node, addr}
	if prev, ok := s.observed[k]; ok && v < prev {
		s.violations = append(s.violations,
			fmt.Sprintf("node %d observed version %d after %d for %v", node, v, prev, addr))
	}
	s.observed[k] = v
}

// Violations returns all coherence-checker findings (empty on a correct
// run). Tests fail on any entry.
func (s *System) Violations() []string { return s.violations }

// CheckQuiescent verifies that no directory entry has an in-flight
// transaction or queued requests; call after the workload drains.
func (s *System) CheckQuiescent() error {
	for _, n := range s.nodes {
		for i := range n.dir.hot {
			h := &n.dir.hot[i]
			if h.tr != nil {
				return fmt.Errorf("protocol: entry %v still has transaction at node %d", n.dir.cold[i].addr, n.id)
			}
			if wq := len(n.dir.cold[i].waitq); wq != 0 {
				return fmt.Errorf("protocol: entry %v has %d queued requests at node %d", n.dir.cold[i].addr, wq, n.id)
			}
		}
		if n.cache.pendCount != 0 {
			return fmt.Errorf("protocol: node %d has %d pending accesses", n.id, n.cache.pendCount)
		}
	}
	return nil
}

// AuditConsistency cross-checks every valid cache line against directory
// state. The directory's sharer vector may over-approximate (a node can
// drop a speculative copy the home still lists), but the reverse must be
// exact: any valid line must be backed by matching directory state and
// the current version. Call on a quiescent system.
func (s *System) AuditConsistency() error {
	for _, n := range s.nodes {
		for i := range n.cache.hot {
			l := &n.cache.hot[i]
			if l.state == lineInvalid {
				continue
			}
			addr := n.cache.cold[i].addr
			home := s.nodes[addr.Home()]
			ei, ok := home.dir.lookupIdx(addr)
			if !ok {
				return fmt.Errorf("protocol: node %d holds %v with no directory entry", n.id, addr)
			}
			e := &home.dir.hot[ei]
			switch l.state {
			case lineExclusive:
				if e.state != dirExclusive || e.owner != n.id {
					return fmt.Errorf("protocol: node %d holds %v exclusive but directory says %v owner %d",
						n.id, addr, e.state, e.owner)
				}
			case lineShared:
				if e.state != dirShared || !e.sharers.Has(n.id) {
					return fmt.Errorf("protocol: node %d holds %v shared but directory says %v sharers %v",
						n.id, addr, e.state, e.sharers)
				}
			}
			if l.version != e.version {
				return fmt.Errorf("protocol: node %d holds %v at version %d, directory at %d",
					n.id, addr, l.version, e.version)
			}
		}
		// Exclusive directory entries must be backed by a real owner line.
		for i := range n.dir.hot {
			e := &n.dir.hot[i]
			if e.state != dirExclusive {
				continue
			}
			addr := n.dir.cold[i].addr
			owner := s.nodes[e.owner]
			li, ok := owner.cache.lookupIdx(addr)
			if !ok || owner.cache.hot[li].state != lineExclusive {
				return fmt.Errorf("protocol: directory says %d owns %v but its line is absent/invalid",
					e.owner, addr)
			}
		}
	}
	return nil
}

// DirEntryView is a read-only snapshot of directory state for tests.
type DirEntryView struct {
	State    string
	Sharers  mem.ReaderVec
	Owner    mem.NodeID
	Version  uint64
	Busy     bool
	QueueLen int
}

// InspectEntry exposes directory state for tests and debugging.
func (s *System) InspectEntry(addr mem.BlockAddr) DirEntryView {
	d := s.nodes[addr.Home()].dir
	ei, ok := d.lookupIdx(addr)
	if !ok {
		return DirEntryView{State: dirIdle.String(), Owner: mem.NoNode}
	}
	h := &d.hot[ei]
	return DirEntryView{
		State:    h.state.String(),
		Sharers:  h.sharers,
		Owner:    h.owner,
		Version:  h.version,
		Busy:     h.tr != nil,
		QueueLen: len(d.cold[ei].waitq),
	}
}
