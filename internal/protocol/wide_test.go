package protocol

import (
	"testing"

	"specdsm/internal/mem"
)

// wideNodes spreads readers across both reader-vector tiers: inline
// (< 64) and extension (≥ 64) groups, including group boundaries.
var wideNodes = []mem.NodeID{1, 63, 64, 65, 90, 127}

// TestWideSharerSetInvalidation exercises the full-map protocol with
// sharers beyond the inline tier on a 128-node system: every reader gets
// a copy, the directory tracks all of them, an upgrade invalidates them
// all, and the post-run audit (quiescence + cache/directory consistency)
// passes — the kernel-level N > 64 safety check.
func TestWideSharerSetInvalidation(t *testing.T) {
	h := newHarness(t, 128)
	addr := mem.MakeAddr(100, 0) // homed beyond the inline tier
	h.write(64, addr)            // exclusive owner in extension group 1
	for _, n := range wideNodes {
		h.read(n, addr)
	}
	view := h.sys.InspectEntry(addr)
	want := mem.VecOf(wideNodes...).With(64)
	if !view.Sharers.Equal(want) {
		t.Fatalf("sharers = %v, want %v", view.Sharers, want)
	}
	out := h.write(65, addr) // upgrade path: invalidate every other sharer
	if out.Class == ClassHit {
		t.Fatalf("write by sharer 65 = %+v, want a protocol transaction", out)
	}
	view = h.sys.InspectEntry(addr)
	if !view.Sharers.Empty() || view.Owner != 65 {
		t.Fatalf("after upgrade: sharers %v owner %d, want empty/65", view.Sharers, view.Owner)
	}
	h.finish()
}

// TestWideSystemResetEquivalence mirrors the narrow reset-equivalence
// contract at N = 128: a reset system must serve the same access pattern
// with the same latencies and stats as a fresh one.
func TestWideSystemResetEquivalence(t *testing.T) {
	run := func(h *harness) []AccessOutcome {
		var outs []AccessOutcome
		addr := mem.MakeAddr(127, 3)
		outs = append(outs, h.write(80, addr))
		for _, n := range wideNodes {
			outs = append(outs, h.access(n, false, addr))
		}
		outs = append(outs, h.write(1, addr))
		h.finish()
		return outs
	}
	fresh := newHarness(t, 128)
	reused := newHarness(t, 128)
	// Dirty the reused system with different traffic, then reset.
	reused.write(100, mem.MakeAddr(5, 9))
	reused.read(64, mem.MakeAddr(5, 9))
	reused.finish()
	reused.sys.Reset()
	a, b := run(fresh), run(reused)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	fs, rs := fresh.sys.NetworkStats(), reused.sys.NetworkStats()
	if fs != rs {
		t.Fatalf("network stats diverged: %+v vs %+v", fs, rs)
	}
}
