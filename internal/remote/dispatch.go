package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"specdsm/internal/fault"
)

// Result is one settled job as the dispatcher delivers it: either the
// worker's gob-encoded row, or the job's failure text. A non-empty Err
// is a job-level outcome (the job ran and failed fatally after its
// retry budget), never a transport condition — transport failures are
// re-dispatched, not delivered.
type Result struct {
	Payload []byte
	Err     string
}

// Dispatcher defaults.
const (
	DefaultBatchSize        = 4
	DefaultHeartbeatTimeout = 5 * time.Second
	DefaultStealAfter       = 2 * time.Second
	DefaultMaxRedispatch    = 3
	defaultDialTimeout      = 5 * time.Second
	// claimPollEvery is how often an idle connection or the local
	// lifeline re-checks the board for claimable work. Pure robustness
	// timing: it never influences delivery order or content.
	claimPollEvery = 2 * time.Millisecond
	// backoffBase is the reconnect backoff unit; attempt k waits
	// base<<min(k,5) plus seeded jitter.
	backoffBase = 25 * time.Millisecond
	// dialSite salts the reconnect-jitter hash away from the fault
	// injector's decision sites.
	dialSite uint64 = 0xD1A7
)

// Dispatcher fans a sweep's job indices across remote shards under the
// sweep engine's index-ordered delivery contract. Robustness model:
//
//   - Job-level failures (the job ran on a shard and failed after its
//     retry budget) are authoritative and delivered — the same jobs
//     fail with the same texts a local run would produce, because every
//     shard executes the identical deterministic job function.
//   - Transport failures (connection drop, heartbeat timeout, refused
//     handshake) are never delivered: the affected lease is requeued
//     and the jobs re-dispatched to surviving shards, down to the
//     in-process Local runner when no shard is reachable.
//   - Duplicate completions (a stale shard answering after its lease
//     was stolen) resolve first-write-wins per index; delivery is
//     strictly in index order either way, so duplicates and steals
//     cannot reorder or repeat output.
type Dispatcher struct {
	// Hosts lists the shard addresses (host:port). An empty list runs
	// everything on Local.
	Hosts []string
	// Spec is the opaque study spec shipped in the handshake; workers
	// rebuild the job function from it (see Server.NewRunner).
	Spec []byte
	// Local executes jobs in-process: the degradation floor when every
	// shard is unreachable, and the executor of poison jobs that have
	// exhausted MaxRedispatch transport re-dispatches. Required.
	Local Runner
	// BatchSize is how many job indices one exec frame carries
	// (0 selects DefaultBatchSize).
	BatchSize int
	// Window bounds how far dispatch runs ahead of the ordered delivery,
	// capping buffered results exactly like sweep.Pool.Window
	// (0 selects max(4×BatchSize×shards, 64)).
	Window int
	// HeartbeatTimeout is the per-frame read deadline on shard
	// connections; a shard silent for this long (no result, no
	// heartbeat) is declared dead and its lease requeued (0 selects
	// DefaultHeartbeatTimeout).
	HeartbeatTimeout time.Duration
	// StealAfter is the lease age past which an idle shard may steal a
	// straggler's job (0 selects DefaultStealAfter).
	StealAfter time.Duration
	// MaxRedispatch caps transport-failure re-dispatches per job; a job
	// that keeps killing shards falls through to Local (0 selects
	// DefaultMaxRedispatch).
	MaxRedispatch int
	// Seed drives the deterministic reconnect-backoff jitter.
	Seed uint64
	// KeepGoing mirrors the sweep's keep-going mode: when false, a
	// delivered job failure will abort the sweep, so dispatch past the
	// lowest failed index stops early (delivery semantics are unchanged
	// — this only avoids wasted work).
	KeepGoing bool
	// OnJobDone, when non-nil, fires once per successfully settled job
	// with the worker-measured duration — first-write-wins, so a
	// duplicate completion never double-fires. Called from dispatcher
	// goroutines, concurrently and out of index order.
	OnJobDone func(index int, d time.Duration)
	// Inject, when non-nil, dresses every dialed connection in its
	// connection-fault schedule (fault.Wrap) — the dispatcher-side seam
	// of the chaos harness.
	Inject *fault.Injector
	// Dial overrides connection establishment (tests script shards
	// through net.Pipe). Nil selects TCP with a timeout.
	Dial func(addr string) (net.Conn, error)
	// Logf, when non-nil, receives shard lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (d *Dispatcher) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

func (d *Dispatcher) batchSize() int {
	if d.BatchSize > 0 {
		return d.BatchSize
	}
	return DefaultBatchSize
}

func (d *Dispatcher) window() int {
	if d.Window > 0 {
		return d.Window
	}
	w := 4 * d.batchSize() * max(len(d.Hosts), 1)
	if w < 64 {
		w = 64
	}
	return w
}

func (d *Dispatcher) heartbeatTimeout() time.Duration {
	if d.HeartbeatTimeout > 0 {
		return d.HeartbeatTimeout
	}
	return DefaultHeartbeatTimeout
}

func (d *Dispatcher) stealAfter() time.Duration {
	if d.StealAfter > 0 {
		return d.StealAfter
	}
	return DefaultStealAfter
}

func (d *Dispatcher) maxRedispatch() int {
	if d.MaxRedispatch > 0 {
		return d.MaxRedispatch
	}
	return DefaultMaxRedispatch
}

func (d *Dispatcher) dial(addr string) (net.Conn, error) {
	if d.Dial != nil {
		return d.Dial(addr)
	}
	return net.DialTimeout("tcp", addr, defaultDialTimeout)
}

// Run executes job indices [start, n) and delivers every result to
// deliver strictly in index order on the calling goroutine — the same
// contract as sweep.Stream, so the caller's emit/checkpoint plumbing
// is oblivious to sharding. A non-nil error from deliver stops the
// sweep and is returned. Run returns when all jobs are delivered,
// deliver errors, or ctx is cancelled.
func (d *Dispatcher) Run(ctx context.Context, start, n int, deliver func(i int, r Result) error) error {
	if n <= start {
		return ctx.Err()
	}
	if d.Local == nil {
		return errors.New("remote: dispatcher needs a Local runner (degradation floor)")
	}
	ctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()

	b := newBoard(start, n, d.window())
	if !d.KeepGoing {
		b.stopOnError = true
	}
	stopWake := context.AfterFunc(ctx, b.wake)
	defer stopWake()

	// live counts currently-connected shards; attempted counts hosts
	// whose first dial has resolved. The local lifeline holds back until
	// every host has had a chance to answer, so a healthy fleet actually
	// receives the work — but a missing fleet degrades to local
	// execution without waiting out long timeouts.
	var live, attempted atomic.Int64
	for k, host := range d.Hosts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.shardLoop(ctx, k, host, b, &live, &attempted)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.localLoop(ctx, b, &live, &attempted)
	}()

	for i := start; i < n; i++ {
		r, ok := b.awaitDone(ctx, i)
		if !ok {
			return ctx.Err()
		}
		if err := deliver(i, r); err != nil {
			return err
		}
		b.advance(i + 1)
	}
	return nil
}

// shardLoop owns one host: connect, serve batches, and on any transport
// failure reconnect with seeded exponential backoff, until the sweep
// finishes or the host refuses the handshake (permanent).
func (d *Dispatcher) shardLoop(ctx context.Context, k int, host string, b *board, live, attempted *atomic.Int64) {
	first := true
	for attempt := 0; ctx.Err() == nil && !b.finished(); attempt++ {
		err := d.serveShard(ctx, host, b, live)
		if first {
			attempted.Add(1)
			first = false
		}
		if err == nil {
			return // sweep finished or ctx cancelled
		}
		if errors.Is(err, errRefused) {
			d.logf("shard %s: %v (giving up on this host)", host, err)
			return
		}
		d.logf("shard %s: %v (reconnect %d)", host, err, attempt+1)
		d.backoff(ctx, k, attempt)
	}
}

// errRefused marks a worker rejecting the handshake — wrong protocol
// version or a spec its build cannot run. Retrying cannot help.
var errRefused = errors.New("handshake refused")

// serveShard runs one connection session: handshake, then claim/exec
// cycles until the board has no more work for us. Returns nil on a
// clean end (sweep finished or ctx cancelled), an error on any
// transport failure (caller reconnects).
func (d *Dispatcher) serveShard(ctx context.Context, host string, b *board, live *atomic.Int64) error {
	conn, err := d.dial(host)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	conn = fault.Wrap(d.Inject, conn)

	hbTimeout := d.heartbeatTimeout()
	if err := writeMsg(conn, &msg{Op: opHello, Proto: ProtoVersion, Spec: d.Spec}); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(hbTimeout))
	m, err := readMsg(conn)
	if err != nil {
		return fmt.Errorf("handshake: %w", err)
	}
	switch m.Op {
	case opHelloOK:
	case opRefuse:
		return fmt.Errorf("%w: %s", errRefused, m.Err)
	default:
		return fmt.Errorf("handshake: unexpected op %d", m.Op)
	}
	live.Add(1)
	defer live.Add(-1)
	d.logf("shard %s: connected", host)

	// outstanding tracks this session's claimed-but-unanswered indices;
	// whatever remains when the session dies is requeued for the
	// survivors.
	outstanding := make(map[int]bool)
	defer func() { b.requeue(outstanding) }()

	var seq uint64
	for ctx.Err() == nil {
		batch := b.claim(time.Now(), d.batchSize(), d.stealAfter(), d.maxRedispatch())
		if batch == nil {
			if b.finished() {
				return nil
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(claimPollEvery):
			}
			continue
		}
		seq++
		for _, i := range batch {
			outstanding[i] = true
		}
		if err := writeMsg(conn, &msg{Op: opExec, Seq: seq, Indices: batch}); err != nil {
			return fmt.Errorf("exec: %w", err)
		}
		for done := false; !done; {
			conn.SetReadDeadline(time.Now().Add(hbTimeout))
			m, err := readMsg(conn)
			if err != nil {
				return fmt.Errorf("read: %w", err)
			}
			switch m.Op {
			case opHeartbeat:
				// Liveness only: it proves the shard is computing, but does
				// not refresh the lease — a straggler that heartbeats
				// without finishing is still eligible for stealing.
			case opJobDone:
				delete(outstanding, m.Index)
				d.complete(b, m)
			case opBatchDone:
				done = true
			default:
				return fmt.Errorf("unexpected op %d", m.Op)
			}
		}
	}
	return nil
}

// complete settles one job on the board and fires OnJobDone exactly
// once per successful index (duplicates lose the first-write-wins race
// and fire nothing).
func (d *Dispatcher) complete(b *board, m *msg) {
	if b.complete(m.Index, Result{Payload: m.Payload, Err: m.Err}) &&
		m.Err == "" && d.OnJobDone != nil {
		d.OnJobDone(m.Index, time.Duration(m.DurNS))
	}
}

// localLoop is the degradation floor: it executes jobs in-process
// whenever no shard is connected (after every host's first dial has
// resolved), and adopts poison jobs whose transport re-dispatch budget
// is spent regardless of fleet health.
func (d *Dispatcher) localLoop(ctx context.Context, b *board, live, attempted *atomic.Int64) {
	nHosts := int64(len(d.Hosts))
	for ctx.Err() == nil && !b.finished() {
		degraded := live.Load() == 0 && attempted.Load() == nHosts
		i, ok := b.claimLocal(time.Now(), degraded, d.maxRedispatch())
		if !ok {
			select {
			case <-ctx.Done():
				return
			case <-time.After(claimPollEvery):
			}
			continue
		}
		start := time.Now()
		payload, err := d.Local.Run(ctx, i)
		if ctx.Err() != nil {
			return
		}
		r := Result{Payload: payload}
		if err != nil {
			r.Err = err.Error()
		}
		if b.complete(i, r) && r.Err == "" && d.OnJobDone != nil {
			d.OnJobDone(i, time.Since(start))
		}
	}
}

// backoff parks a shard's reconnect loop: exponential in the attempt
// number with seeded deterministic jitter, so a flapping host cannot
// hammer the fleet and two dispatchers with the same seed replay the
// same schedule.
func (d *Dispatcher) backoff(ctx context.Context, host, attempt int) {
	shift := attempt
	if shift > 5 {
		shift = 5
	}
	wait := backoffBase << shift
	wait += time.Duration(fault.Mix(d.Seed, dialSite, uint64(host), uint64(attempt)) % uint64(backoffBase))
	select {
	case <-ctx.Done():
	case <-time.After(wait):
	}
}

// Job states on the board.
const (
	statePending uint8 = iota
	stateLeased
	stateDone
)

// board is the dispatcher's job ledger: per-index state, leases with
// timestamps (for stealing), transport-failure counts (for poison
// detection), and the settled results awaiting ordered delivery.
type board struct {
	mu   sync.Mutex
	cond *sync.Cond

	start, n int
	window   int
	nextEmit int
	// stopIdx bounds dispatch in stop-on-error mode: no index at or
	// beyond it is handed out once a failure below it has settled.
	stopIdx     int
	stopOnError bool

	state   []uint8
	res     []Result
	leaseAt []time.Time
	fails   []int // transport-failure (requeue) count per index
}

func newBoard(start, n, window int) *board {
	size := n - start
	b := &board{
		start: start, n: n, window: window,
		nextEmit: start, stopIdx: n,
		state:   make([]uint8, size),
		res:     make([]Result, size),
		leaseAt: make([]time.Time, size),
		fails:   make([]int, size),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *board) idx(i int) int { return i - b.start }

// claim hands out up to batch pending indices within the dispatch
// window, lowest-first. With nothing pending it steals the oldest
// stale lease (one job) so an idle shard relieves a straggler.
func (b *board) claim(now time.Time, batch int, stealAfter time.Duration, maxRedispatch int) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	limit := min(b.stopIdx, b.nextEmit+b.window)
	var got []int
	for i := b.nextEmit; i < limit && len(got) < batch; i++ {
		j := b.idx(i)
		if b.state[j] == statePending && b.fails[j] < maxRedispatch {
			b.state[j] = stateLeased
			b.leaseAt[j] = now
			got = append(got, i)
		}
	}
	if got != nil {
		return got
	}
	steal := -1
	for i := b.nextEmit; i < limit; i++ {
		j := b.idx(i)
		if b.state[j] == stateLeased && now.Sub(b.leaseAt[j]) >= stealAfter {
			if steal < 0 || b.leaseAt[j].Before(b.leaseAt[b.idx(steal)]) {
				steal = i
			}
		}
	}
	if steal >= 0 {
		b.leaseAt[b.idx(steal)] = now
		return []int{steal}
	}
	return nil
}

// claimLocal hands the local lifeline one job: the lowest pending index
// when the fleet is degraded (no live shard), or a poison index whose
// transport re-dispatch budget is spent regardless of fleet health.
func (b *board) claimLocal(now time.Time, degraded bool, maxRedispatch int) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	limit := min(b.stopIdx, b.nextEmit+b.window)
	for i := b.nextEmit; i < limit; i++ {
		j := b.idx(i)
		if b.state[j] == statePending && (degraded || b.fails[j] >= maxRedispatch) {
			b.state[j] = stateLeased
			b.leaseAt[j] = now
			return i, true
		}
	}
	return 0, false
}

// requeue returns a dead session's unanswered leases to the pending
// pool, counting the transport failure against each job. Jobs another
// holder settled in the meantime stay settled.
func (b *board) requeue(outstanding map[int]bool) {
	if len(outstanding) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range outstanding {
		j := b.idx(i)
		if b.state[j] == stateLeased {
			b.state[j] = statePending
			b.fails[j]++
		}
	}
}

// complete settles index i first-write-wins, reporting whether this
// call won (false = duplicate, dropped).
func (b *board) complete(i int, r Result) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	j := b.idx(i)
	if b.state[j] == stateDone {
		return false
	}
	b.state[j] = stateDone
	b.res[j] = r
	if r.Err != "" && b.stopOnError && i+1 < b.stopIdx {
		// Delivery will abort at i; dispatching beyond it is wasted work.
		// Jobs below i still run — an in-flight lower failure must win,
		// exactly as in the local pool's merge.
		b.stopIdx = i + 1
	}
	b.cond.Broadcast()
	return true
}

// awaitDone blocks until index i settles or ctx ends.
func (b *board) awaitDone(ctx context.Context, i int) (Result, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	j := b.idx(i)
	for b.state[j] != stateDone && ctx.Err() == nil {
		b.cond.Wait()
	}
	if b.state[j] != stateDone {
		return Result{}, false
	}
	return b.res[j], true
}

// advance publishes the ordered-delivery progress, sliding the dispatch
// window forward.
func (b *board) advance(next int) {
	b.mu.Lock()
	b.nextEmit = next
	b.mu.Unlock()
	b.cond.Broadcast()
}

// finished reports whether every index has been delivered.
func (b *board) finished() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextEmit >= b.n
}

// wake re-evaluates every waiter's condition (ctx cancellation).
func (b *board) wake() { b.cond.Broadcast() }
