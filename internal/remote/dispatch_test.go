package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"specdsm/internal/fault"
)

// rowPayload is the deterministic "row" every runner in these tests
// produces for a job index, so any executor — remote shard, resurrected
// shard, local lifeline — yields identical bytes and the merge contract
// can be pinned exactly.
func rowPayload(i int) []byte { return []byte(fmt.Sprintf("row-%04d", i)) }

func testRunner() Runner {
	return RunnerFunc(func(ctx context.Context, i int) ([]byte, error) {
		return rowPayload(i), nil
	})
}

type delivery struct {
	i int
	r Result
}

func collector() (func(int, Result) error, *[]delivery) {
	var got []delivery
	return func(i int, r Result) error {
		got = append(got, delivery{i, r})
		return nil
	}, &got
}

// verifyDeliveries pins the full contract: every index in [start, n)
// delivered exactly once, in ascending order, with the deterministic
// payload. Any duplicate, gap, or reorder fails here.
func verifyDeliveries(t *testing.T, got []delivery, start, n int) {
	t.Helper()
	if len(got) != n-start {
		t.Fatalf("delivered %d results, want %d", len(got), n-start)
	}
	for k, d := range got {
		want := start + k
		if d.i != want {
			t.Fatalf("delivery %d has index %d, want %d (reorder or duplicate)", k, d.i, want)
		}
		if d.r.Err != "" {
			t.Fatalf("index %d delivered failure %q, want success", d.i, d.r.Err)
		}
		if !bytes.Equal(d.r.Payload, rowPayload(d.i)) {
			t.Fatalf("index %d delivered payload %q, want %q", d.i, d.r.Payload, rowPayload(d.i))
		}
	}
}

// startServer runs a worker Server on a loopback listener for the test's
// lifetime and returns its address.
func startServer(t testing.TB, s *Server) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go s.Serve(ctx, lis)
	return lis.Addr().String()
}

func specCheckedServer(t testing.TB, wantSpec string) *Server {
	return &Server{
		NewRunner: func(spec []byte) (Runner, error) {
			if string(spec) != wantSpec {
				return nil, fmt.Errorf("spec %q, want %q", spec, wantSpec)
			}
			return testRunner(), nil
		},
	}
}

func TestLoopbackSweep(t *testing.T) {
	addr := startServer(t, specCheckedServer(t, "spec-v1"))
	d := &Dispatcher{
		Hosts: []string{addr},
		Spec:  []byte("spec-v1"),
		Local: testRunner(),
		Seed:  1,
	}
	deliver, got := collector()
	if err := d.Run(context.Background(), 0, 40, deliver); err != nil {
		t.Fatal(err)
	}
	verifyDeliveries(t, *got, 0, 40)
}

func TestLoopbackMultiShard(t *testing.T) {
	var hosts []string
	for range 3 {
		hosts = append(hosts, startServer(t, specCheckedServer(t, "spec-v1")))
	}
	var done atomic.Int64
	d := &Dispatcher{
		Hosts:     hosts,
		Spec:      []byte("spec-v1"),
		Local:     testRunner(),
		BatchSize: 3,
		Seed:      2,
		OnJobDone: func(i int, dur time.Duration) { done.Add(1) },
	}
	deliver, got := collector()
	if err := d.Run(context.Background(), 0, 60, deliver); err != nil {
		t.Fatal(err)
	}
	verifyDeliveries(t, *got, 0, 60)
	if done.Load() != 60 {
		t.Fatalf("OnJobDone fired %d times, want 60", done.Load())
	}
}

// TestLocalOnly pins the degenerate fleet: no hosts at all runs the
// whole range on the Local runner, including a non-zero resume offset.
func TestLocalOnly(t *testing.T) {
	d := &Dispatcher{Local: testRunner(), Seed: 3}
	deliver, got := collector()
	if err := d.Run(context.Background(), 10, 30, deliver); err != nil {
		t.Fatal(err)
	}
	verifyDeliveries(t, *got, 10, 30)
}

// TestUnreachableHostsDegradeToLocal pins graceful degradation: every
// dial fails, so after each host's first attempt resolves the local
// lifeline executes the sweep — same bytes, no error.
func TestUnreachableHostsDegradeToLocal(t *testing.T) {
	d := &Dispatcher{
		Hosts: []string{"shard-a", "shard-b"},
		Local: testRunner(),
		Seed:  4,
		Dial: func(addr string) (net.Conn, error) {
			return nil, errors.New("no route to host")
		},
	}
	deliver, got := collector()
	if err := d.Run(context.Background(), 0, 20, deliver); err != nil {
		t.Fatal(err)
	}
	verifyDeliveries(t, *got, 0, 20)
}

// TestRefusedWorkerFallsBackToLocal pins the permanent-refusal path: a
// worker whose NewRunner rejects the spec is abandoned (no reconnect
// storm) and the sweep degrades to local.
func TestRefusedWorkerFallsBackToLocal(t *testing.T) {
	srv := &Server{NewRunner: func(spec []byte) (Runner, error) {
		return nil, errors.New("unknown study")
	}}
	addr := startServer(t, srv)
	d := &Dispatcher{
		Hosts: []string{addr},
		Spec:  []byte("spec-v1"),
		Local: testRunner(),
		Seed:  5,
	}
	deliver, got := collector()
	if err := d.Run(context.Background(), 0, 12, deliver); err != nil {
		t.Fatal(err)
	}
	verifyDeliveries(t, *got, 0, 12)
}

// --- scripted shards -------------------------------------------------

// scriptedDialer turns a per-session script into a Dispatcher.Dial: each
// dial hands the script the worker side of an in-memory pipe, with a
// 1-based session number so scripts can misbehave once and then recover.
func scriptedDialer(script func(sess int, conn net.Conn)) func(string) (net.Conn, error) {
	var sessions atomic.Int64
	return func(addr string) (net.Conn, error) {
		c, s := net.Pipe()
		go script(int(sessions.Add(1)), s)
		return c, nil
	}
}

// shardHandshake speaks the worker side of the handshake.
func shardHandshake(conn net.Conn) bool {
	m, err := readMsg(conn)
	if err != nil || m.Op != opHello || m.Proto != ProtoVersion {
		return false
	}
	return writeMsg(conn, &msg{Op: opHelloOK}) == nil
}

// behaveShard is a fully well-behaved worker session: handshake, then
// answer every exec batch index-by-index until the dispatcher hangs up.
func behaveShard(conn net.Conn) {
	defer conn.Close()
	if !shardHandshake(conn) {
		return
	}
	for {
		m, err := readMsg(conn)
		if err != nil || m.Op != opExec {
			return
		}
		for _, i := range m.Indices {
			if writeMsg(conn, &msg{Op: opJobDone, Seq: m.Seq, Index: i, Payload: rowPayload(i)}) != nil {
				return
			}
		}
		if writeMsg(conn, &msg{Op: opBatchDone, Seq: m.Seq}) != nil {
			return
		}
	}
}

// TestScriptedShardFailures is the failure-mode table: each script
// misbehaves in a specific way on its first session(s) and the test pins
// that the merged output is byte-identical to a clean run — exactly-once,
// in-order, deterministic payloads — with OnJobDone firing exactly once
// per job despite duplicate completions.
func TestScriptedShardFailures(t *testing.T) {
	tests := []struct {
		name   string
		script func() func(sess int, conn net.Conn)
	}{
		{
			// Dial succeeds but the shard dies before the handshake
			// completes — the dispatcher's first claim never happens.
			name: "die-before-claim",
			script: func() func(int, net.Conn) {
				return func(sess int, conn net.Conn) {
					if sess == 1 {
						conn.Close()
						return
					}
					behaveShard(conn)
				}
			},
		},
		{
			// The shard claims a batch (reads the exec frame) and dies
			// without answering a single job.
			name: "die-after-claim",
			script: func() func(int, net.Conn) {
				return func(sess int, conn net.Conn) {
					if sess == 1 {
						defer conn.Close()
						if !shardHandshake(conn) {
							return
						}
						readMsg(conn) // claim the batch, then die
						return
					}
					behaveShard(conn)
				}
			},
		},
		{
			// The shard dies mid-stream: some jobDone frames land, the
			// rest of the batch is torn away with the connection.
			name: "die-mid-stream",
			script: func() func(int, net.Conn) {
				return func(sess int, conn net.Conn) {
					if sess == 1 {
						defer conn.Close()
						if !shardHandshake(conn) {
							return
						}
						m, err := readMsg(conn)
						if err != nil || m.Op != opExec {
							return
						}
						i := m.Indices[0]
						writeMsg(conn, &msg{Op: opJobDone, Seq: m.Seq, Index: i, Payload: rowPayload(i)})
						return // remaining batch indices die with us
					}
					behaveShard(conn)
				}
			},
		},
		{
			// The shard dies holding a lease, resurrects, and answers the
			// *old* lease's indices before serving new work — stale
			// completions that race re-dispatched ones. First-write-wins
			// must keep the emit stream exactly-once.
			name: "resurrect-stale-lease",
			script: func() func(int, net.Conn) {
				var stale []int
				return func(sess int, conn net.Conn) {
					defer conn.Close()
					switch sess {
					case 1:
						if !shardHandshake(conn) {
							return
						}
						m, err := readMsg(conn)
						if err != nil || m.Op != opExec {
							return
						}
						stale = m.Indices // die holding this lease
						return
					case 2:
						if !shardHandshake(conn) {
							return
						}
						m, err := readMsg(conn)
						if err != nil || m.Op != opExec {
							return
						}
						// Answer the dead session's lease first — these
						// indices are also in (or racing) the new batch.
						for _, i := range stale {
							writeMsg(conn, &msg{Op: opJobDone, Seq: m.Seq, Index: i, Payload: rowPayload(i)})
						}
						for _, i := range m.Indices {
							writeMsg(conn, &msg{Op: opJobDone, Seq: m.Seq, Index: i, Payload: rowPayload(i)})
						}
						if writeMsg(conn, &msg{Op: opBatchDone, Seq: m.Seq}) != nil {
							return
						}
						behaveShardLoop(conn)
					default:
						behaveShard(conn)
					}
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var done atomic.Int64
			d := &Dispatcher{
				Hosts:            []string{"scripted"},
				Local:            testRunner(),
				Dial:             scriptedDialer(tc.script()),
				BatchSize:        4,
				HeartbeatTimeout: time.Second,
				StealAfter:       100 * time.Millisecond,
				Seed:             42,
				OnJobDone:        func(i int, dur time.Duration) { done.Add(1) },
			}
			deliver, got := collector()
			if err := d.Run(context.Background(), 0, 25, deliver); err != nil {
				t.Fatal(err)
			}
			verifyDeliveries(t, *got, 0, 25)
			if done.Load() != 25 {
				t.Fatalf("OnJobDone fired %d times, want 25 (duplicate completion leaked)", done.Load())
			}
		})
	}
}

// behaveShardLoop is behaveShard after the handshake already happened.
func behaveShardLoop(conn net.Conn) {
	for {
		m, err := readMsg(conn)
		if err != nil || m.Op != opExec {
			return
		}
		for _, i := range m.Indices {
			if writeMsg(conn, &msg{Op: opJobDone, Seq: m.Seq, Index: i, Payload: rowPayload(i)}) != nil {
				return
			}
		}
		if writeMsg(conn, &msg{Op: opBatchDone, Seq: m.Seq}) != nil {
			return
		}
	}
}

// TestPoisonBatchFallsBackToLocal pins the fatal-everywhere path: a
// shard that dies whenever its batch contains a particular index burns
// that batch's transport budget, and the local lifeline adopts the
// poisoned jobs while the fleet keeps serving the rest.
func TestPoisonBatchFallsBackToLocal(t *testing.T) {
	const poison = 5
	script := func(sess int, conn net.Conn) {
		defer conn.Close()
		if !shardHandshake(conn) {
			return
		}
		for {
			m, err := readMsg(conn)
			if err != nil || m.Op != opExec {
				return
			}
			for _, i := range m.Indices {
				if i == poison {
					return // die rather than answer a batch holding the poison job
				}
			}
			for _, i := range m.Indices {
				if writeMsg(conn, &msg{Op: opJobDone, Seq: m.Seq, Index: i, Payload: rowPayload(i)}) != nil {
					return
				}
			}
			if writeMsg(conn, &msg{Op: opBatchDone, Seq: m.Seq}) != nil {
				return
			}
		}
	}
	d := &Dispatcher{
		Hosts:            []string{"scripted"},
		Local:            testRunner(),
		Dial:             scriptedDialer(script),
		BatchSize:        2,
		HeartbeatTimeout: time.Second,
		StealAfter:       50 * time.Millisecond,
		MaxRedispatch:    2,
		Seed:             7,
	}
	deliver, got := collector()
	if err := d.Run(context.Background(), 0, 16, deliver); err != nil {
		t.Fatal(err)
	}
	verifyDeliveries(t, *got, 0, 16)
}

// TestJobFailureDeliveredInOrder pins that a job-level failure is a
// delivered outcome, not a transport event: it arrives at its index
// position with the runner's error text, and a deliver error (the
// stop-on-error sweep aborting) propagates out of Run.
func TestJobFailureDeliveredInOrder(t *testing.T) {
	const failAt = 7
	failing := RunnerFunc(func(ctx context.Context, i int) ([]byte, error) {
		if i == failAt {
			return nil, errors.New("job 7: deterministic fatal failure")
		}
		return rowPayload(i), nil
	})
	srv := &Server{NewRunner: func(spec []byte) (Runner, error) { return failing, nil }}
	addr := startServer(t, srv)
	d := &Dispatcher{
		Hosts: []string{addr},
		Local: failing,
		Seed:  8,
	}
	var got []delivery
	abort := errors.New("sweep aborted")
	err := d.Run(context.Background(), 0, 30, func(i int, r Result) error {
		got = append(got, delivery{i, r})
		if r.Err != "" {
			return abort
		}
		return nil
	})
	if !errors.Is(err, abort) {
		t.Fatalf("Run returned %v, want the deliver abort error", err)
	}
	if len(got) != failAt+1 {
		t.Fatalf("delivered %d results, want %d (0..%d)", len(got), failAt+1, failAt)
	}
	for k, dv := range got[:failAt] {
		if dv.i != k || dv.r.Err != "" {
			t.Fatalf("delivery %d = index %d err %q, want clean index %d", k, dv.i, dv.r.Err, k)
		}
	}
	last := got[failAt]
	if last.i != failAt || last.r.Err != "job 7: deterministic fatal failure" {
		t.Fatalf("failure delivered as index %d err %q", last.i, last.r.Err)
	}
}

// TestKeepGoingDeliversAllFailures pins keep-going mode: failures are
// delivered in place and the sweep continues to the end.
func TestKeepGoingDeliversAllFailures(t *testing.T) {
	flaky := RunnerFunc(func(ctx context.Context, i int) ([]byte, error) {
		if i%5 == 2 {
			return nil, fmt.Errorf("job %d failed", i)
		}
		return rowPayload(i), nil
	})
	srv := &Server{NewRunner: func(spec []byte) (Runner, error) { return flaky, nil }}
	addr := startServer(t, srv)
	d := &Dispatcher{
		Hosts:     []string{addr},
		Local:     flaky,
		KeepGoing: true,
		Seed:      9,
	}
	deliver, got := collector()
	if err := d.Run(context.Background(), 0, 20, deliver); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 20 {
		t.Fatalf("delivered %d results, want 20", len(*got))
	}
	for k, dv := range *got {
		if dv.i != k {
			t.Fatalf("delivery %d has index %d", k, dv.i)
		}
		if k%5 == 2 {
			if want := fmt.Sprintf("job %d failed", k); dv.r.Err != want {
				t.Fatalf("index %d err %q, want %q", k, dv.r.Err, want)
			}
		} else if dv.r.Err != "" || !bytes.Equal(dv.r.Payload, rowPayload(k)) {
			t.Fatalf("index %d = (%q, %q), want clean row", k, dv.r.Payload, dv.r.Err)
		}
	}
}

// TestConnFaultsByteIdentical turns on the full connection-fault
// schedule on both ends of real TCP loopback connections and pins that
// the delivered stream is still exactly the clean stream — drops tear
// sessions (re-dispatched), short reads fragment frames (reassembled),
// delays shuffle timing (order restored by the board).
func TestConnFaultsByteIdentical(t *testing.T) {
	serverInj, err := fault.ParseSpec("seed=101,conndrop=0.002,connshort=0.2,conndelay=0.1")
	if err != nil {
		t.Fatal(err)
	}
	dialInj, err := fault.ParseSpec("seed=202,conndrop=0.002,connshort=0.2,conndelay=0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv := specCheckedServer(t, "spec-v1")
	srv.Inject = serverInj
	addr := startServer(t, srv)
	d := &Dispatcher{
		Hosts:            []string{addr, addr},
		Spec:             []byte("spec-v1"),
		Local:            testRunner(),
		Inject:           dialInj,
		BatchSize:        3,
		HeartbeatTimeout: 2 * time.Second,
		StealAfter:       200 * time.Millisecond,
		Seed:             11,
	}
	deliver, got := collector()
	if err := d.Run(context.Background(), 0, 50, deliver); err != nil {
		t.Fatal(err)
	}
	verifyDeliveries(t, *got, 0, 50)
}

// TestBoardFirstWriteWins pins the duplicate-resolution primitive
// directly: the second completion of an index is dropped.
func TestBoardFirstWriteWins(t *testing.T) {
	b := newBoard(0, 4, 64)
	if !b.complete(2, Result{Payload: []byte("first")}) {
		t.Fatal("first completion reported as duplicate")
	}
	if b.complete(2, Result{Payload: []byte("second")}) {
		t.Fatal("duplicate completion reported as a win")
	}
	r, ok := b.awaitDone(context.Background(), 2)
	if !ok || string(r.Payload) != "first" {
		t.Fatalf("board holds %q, want the first write", r.Payload)
	}
}

// TestRunCancelled pins that ctx cancellation unblocks Run.
func TestRunCancelled(t *testing.T) {
	stall := RunnerFunc(func(ctx context.Context, i int) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	d := &Dispatcher{Local: stall, Seed: 12}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	deliver, _ := collector()
	if err := d.Run(ctx, 0, 4, deliver); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// BenchmarkLoopbackDispatch measures per-job dispatcher overhead over a
// real TCP loopback worker with a trivial runner: framing, batching,
// board bookkeeping, and ordered delivery with no simulation cost.
func BenchmarkLoopbackDispatch(b *testing.B) {
	addr := startServer(b, specCheckedServer(b, "bench"))
	d := &Dispatcher{
		Hosts: []string{addr},
		Spec:  []byte("bench"),
		Local: testRunner(),
		Seed:  13,
	}
	b.ResetTimer()
	err := d.Run(context.Background(), 0, b.N, func(i int, r Result) error { return nil })
	if err != nil {
		b.Fatal(err)
	}
}
