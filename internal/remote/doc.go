// Package remote shards a deterministic sweep across worker processes:
// a Dispatcher fans job indices out to long-running sweepd workers over
// TCP and merges the results back in strict index order, so a study's
// output — rows, keep-going failures, checkpoint contents — is
// byte-identical to a local single-worker run at any shard count,
// under any pattern of shard death, restart, or transport damage.
//
// # Wire protocol
//
// One connection carries one sweep session. Every frame is a 4-byte
// little-endian length prefix followed by a fresh gob encoding of the
// universal msg struct, so the reader resynchronizes per frame and a
// torn connection never corrupts decoder state shared across frames.
// The session opens with a handshake — hello (protocol version + the
// study spec, an opaque byte blob the worker hands to its
// Server.NewRunner) answered by helloOK or refuse — and then loops:
//
//	dispatcher → worker:  exec       seq + a batch of job indices
//	worker → dispatcher:  jobDone    one job's result or failure text
//	worker → dispatcher:  batchDone  every index of the batch answered
//	worker → dispatcher:  heartbeat  liveness while a long job computes
//
// Results stream back per job, not per batch, so a worker that dies
// mid-batch loses only its unanswered indices. A refuse is permanent
// (the spec cannot get better on retry); any transport error is
// temporary and handled by reconnection.
//
// # Failure handling
//
// The dispatcher tracks every job on a lease board. The failure matrix:
//
//   - Worker death mid-batch: the connection read fails (or the
//     per-frame heartbeat deadline expires), the session's leased jobs
//     return to the board, and another shard — or the same one after
//     reconnect — re-runs them.
//   - Silent stall: a shard whose lease outlives StealAfter has its
//     jobs claimable by idle shards (work-stealing). Heartbeats prove
//     liveness but deliberately do not refresh leases, so a live
//     straggler's work is still stolen; duplicate completions settle
//     first-write-wins, which is safe because every executor computes
//     the identical result.
//   - Repeated poison: a job failing MaxRedispatch shard deaths in a
//     row falls back to the dispatcher's local runner.
//   - Dead fleet: when no shard is reachable, the local runner claims
//     jobs directly — graceful degradation to in-process execution.
//   - Reconnect storms: dial retries use seeded deterministic backoff
//     (fault.Mix jitter, no wall-clock randomness in results).
//
// Job-level failures are not transport failures: a job that fails
// fatally after its retry budget settles as a Result with Err text and
// is never re-dispatched.
//
// # Determinism
//
// Three invariants make shard execution invisible in the output.
// Results are delivered to the caller in strict index order on one
// goroutine, regardless of completion order. Every executor — any
// shard, and the local fallback — rebuilds the job function from the
// same spec and settles each job under the same retry/fault schedule
// (sweep.RunOne), so a job's outcome does not depend on where it ran.
// And duplicate settlements are idempotent by first-write-wins. The
// fault.Conn seam (connection drops, short reads, scheduling delays)
// exists so tests can tear the transport while byte-comparing output
// against a clean local run.
package remote
