package remote

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
)

// ProtoVersion is the wire protocol version. The hello/helloOK handshake
// pins it on both ends, so a stale worker refuses cleanly instead of
// mis-decoding frames.
const ProtoVersion = 1

// Message ops. One universal frame type keeps the framing layer dumb:
// every frame is a length prefix plus a fresh gob of msg, so a reader
// can resynchronize per frame and a torn connection never corrupts
// decoder state shared across frames.
const (
	opHello     uint8 = iota + 1 // dispatcher → worker: version + study spec
	opHelloOK                    // worker → dispatcher: spec accepted
	opRefuse                     // worker → dispatcher: handshake rejected (Err says why)
	opExec                       // dispatcher → worker: run the job indices in Indices
	opJobDone                    // worker → dispatcher: one job's result or failure
	opBatchDone                  // worker → dispatcher: every index of the batch answered
	opHeartbeat                  // worker → dispatcher: liveness while a long job runs
)

// msg is the universal wire frame. Unused fields stay zero; gob omits
// them, so small frames (heartbeats) stay small.
type msg struct {
	Op      uint8
	Proto   int    // opHello
	Spec    []byte // opHello: gob-encoded study spec
	Seq     uint64 // opExec / opBatchDone correlation
	Indices []int  // opExec: absolute job indices to run, in order
	Index   int    // opJobDone
	Payload []byte // opJobDone: gob-encoded result row
	Err     string // opJobDone failure text, opRefuse reason
	DurNS   int64  // opJobDone: job wall-clock duration
}

// maxFrame bounds one frame's encoded size; like the checkpoint layer's
// frame bound it keeps a corrupted length prefix from demanding a
// multi-gigabyte allocation.
const maxFrame = 1 << 24

// writeMsg frames m onto w: a 4-byte little-endian length prefix
// followed by a fresh gob encoding. Encoding into a buffer first means
// w sees one write per frame — an injected connection drop tears at a
// frame boundary or inside exactly one frame, never across two.
func writeMsg(w io.Writer, m *msg) error {
	var body bytes.Buffer
	body.Write([]byte{0, 0, 0, 0})
	if err := gob.NewEncoder(&body).Encode(m); err != nil {
		return fmt.Errorf("remote: encode frame: %w", err)
	}
	n := body.Len() - 4
	if n > maxFrame {
		return fmt.Errorf("remote: frame of %d bytes exceeds the %d-byte bound", n, maxFrame)
	}
	binary.LittleEndian.PutUint32(body.Bytes()[:4], uint32(n))
	_, err := w.Write(body.Bytes())
	return err
}

// readMsg reads one frame from r. io.ReadFull reassembles short reads
// (legal for net.Conn, and exactly what fault.Conn injects), so partial
// delivery perturbs timing, never content.
func readMsg(r io.Reader) (*msg, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if n > maxFrame {
		return nil, fmt.Errorf("remote: frame length %d exceeds the %d-byte bound", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var m msg
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
		return nil, fmt.Errorf("remote: decode frame: %w", err)
	}
	return &m, nil
}

// lockedConn serializes frame writes to one connection. The worker
// needs it — the heartbeat goroutine and the batch executor share the
// conn — and the dispatcher gets it for free.
type lockedConn struct {
	mu sync.Mutex
	c  net.Conn
}

func (lc *lockedConn) write(m *msg) error {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return writeMsg(lc.c, m)
}
