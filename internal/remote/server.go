package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"specdsm/internal/fault"
)

// Runner executes one registered study's jobs on a worker. Run returns
// the gob-encoded result row for the given absolute job index, or the
// job's (already retry-settled) failure. Implementations are used from
// one goroutine at a time — the server builds a fresh Runner per
// connection, so per-runner state (a machine.Arena) needs no locking.
type Runner interface {
	Run(ctx context.Context, index int) ([]byte, error)
}

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc func(ctx context.Context, index int) ([]byte, error)

// Run implements Runner.
func (f RunnerFunc) Run(ctx context.Context, index int) ([]byte, error) { return f(ctx, index) }

// DefaultHeartbeatEvery is the worker's liveness cadence while a batch
// executes. It must be comfortably under the dispatcher's per-frame
// read deadline (Dispatcher.HeartbeatTimeout).
const DefaultHeartbeatEvery = 250 * time.Millisecond

// Server is the worker side of the shard protocol: it accepts
// dispatcher connections, builds a Runner per connection from the
// handshake's study spec, and executes job batches, streaming one
// jobDone frame per job. A long-running sweepd process serves any
// number of sequential or concurrent dispatchers; each connection's
// Runner (and the arena inside it) amortizes across that dispatcher's
// batches.
type Server struct {
	// NewRunner builds the per-connection job executor from the
	// handshake's study spec. An error refuses the connection with the
	// error text (the dispatcher gives up on this worker rather than
	// retrying a spec that cannot get better).
	NewRunner func(spec []byte) (Runner, error)
	// Inject, when non-nil, dresses every accepted connection in its
	// connection-fault schedule (fault.Wrap) — the chaos harness's
	// worker-side drops/short-reads/delays.
	Inject *fault.Injector
	// HeartbeatEvery overrides the liveness cadence (0 selects
	// DefaultHeartbeatEvery).
	HeartbeatEvery time.Duration
	// Logf, when non-nil, receives per-connection and per-batch
	// diagnostics (the chaos harness watches for the batch lines to time
	// its kill).
	Logf func(format string, args ...any)
}

// Serve accepts and handles connections on lis until ctx is cancelled
// (which closes the listener and every open connection) or the listener
// fails. The error on a ctx-driven shutdown is nil.
func (s *Server) Serve(ctx context.Context, lis net.Listener) error {
	stop := context.AfterFunc(ctx, func() { lis.Close() })
	defer stop()
	var nconn atomic.Uint64
	for {
		conn, err := lis.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("remote: accept: %w", err)
		}
		go s.handle(ctx, conn, nconn.Add(1))
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handle speaks the protocol on one dispatcher connection until the
// connection dies or ctx ends. Job execution is sequential within the
// connection; parallelism across the fleet comes from the dispatcher
// fanning batches over many workers.
func (s *Server) handle(ctx context.Context, conn net.Conn, id uint64) {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	conn = fault.Wrap(s.Inject, conn)
	lc := &lockedConn{c: conn}

	hello, err := readMsg(conn)
	if err != nil || hello.Op != opHello {
		s.logf("conn %d: bad handshake: %v", id, err)
		return
	}
	if hello.Proto != ProtoVersion {
		lc.write(&msg{Op: opRefuse, Err: fmt.Sprintf("protocol version %d, worker speaks %d", hello.Proto, ProtoVersion)})
		return
	}
	runner, err := s.NewRunner(hello.Spec)
	if err != nil {
		s.logf("conn %d: spec refused: %v", id, err)
		lc.write(&msg{Op: opRefuse, Err: err.Error()})
		return
	}
	if err := lc.write(&msg{Op: opHelloOK}); err != nil {
		return
	}
	s.logf("conn %d: dispatcher connected", id)

	// The heartbeat goroutine keeps frames flowing while a long job
	// computes, so the dispatcher can hold a short read deadline without
	// mistaking slow work for death. It only beats while a batch is
	// executing — an idle connection is not being read, and unsolicited
	// frames would pile up in the transport.
	var executing atomic.Bool
	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		every := s.HeartbeatEvery
		if every <= 0 {
			every = DefaultHeartbeatEvery
		}
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-tick.C:
				if executing.Load() {
					lc.write(&msg{Op: opHeartbeat})
				}
			}
		}
	}()

	for {
		m, err := readMsg(conn)
		if err != nil {
			s.logf("conn %d: dispatcher gone: %v", id, err)
			return
		}
		if m.Op != opExec {
			s.logf("conn %d: unexpected op %d", id, m.Op)
			return
		}
		s.logf("conn %d: exec batch seq=%d jobs=%v", id, m.Seq, m.Indices)
		executing.Store(true)
		ok := s.runBatch(ctx, lc, runner, m)
		executing.Store(false)
		if !ok {
			return
		}
		if err := lc.write(&msg{Op: opBatchDone, Seq: m.Seq}); err != nil {
			return
		}
	}
}

// runBatch executes one exec frame's indices in order, streaming a
// jobDone per index. A write failure means the dispatcher is gone —
// the batch is abandoned (its lease will be re-dispatched) and the
// connection torn down.
func (s *Server) runBatch(ctx context.Context, lc *lockedConn, runner Runner, m *msg) bool {
	for _, idx := range m.Indices {
		if ctx.Err() != nil {
			return false
		}
		start := time.Now()
		payload, err := runner.Run(ctx, idx)
		done := msg{Op: opJobDone, Seq: m.Seq, Index: idx, Payload: payload, DurNS: int64(time.Since(start))}
		if err != nil {
			// The failure is job-level and already settled (the runner
			// applied the study's retry budget): ship the text, not the
			// payload. Transport errors never take this path.
			done.Err = err.Error()
			done.Payload = nil
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return false
			}
		}
		if werr := lc.write(&done); werr != nil {
			return false
		}
	}
	return true
}
