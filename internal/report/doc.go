// Package report renders experiment results as fixed-width text tables
// and ASCII charts, mirroring the tables and figures of the paper.
//
// It also provides the online aggregation primitives behind streaming
// studies: Stats (single-pass Welford mean/std/extrema), Grouped
// (insertion-ordered per-key Stats, e.g. per-application accumulators
// fed seed by seed), and Rolling (a fixed-capacity sliding window, e.g.
// the recent-completion-rate window behind sweep progress ETAs). All
// three hold O(1)-or-O(window) state, so aggregating a sweep's rows as
// they stream keeps study memory independent of the total job count.
package report
