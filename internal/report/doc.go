// Package report renders experiment results as fixed-width text tables
// and ASCII charts, mirroring the tables and figures of the paper.
package report
