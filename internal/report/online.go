package report

import "math"

// Stats is a single-pass (online) accumulator for mean, standard
// deviation, and extrema, using Welford's algorithm. It is the streaming
// replacement for buffer-everything-then-aggregate study code: memory is
// O(1) regardless of how many values flow through, so a million-job
// sweep can aggregate as rows arrive instead of holding them all.
//
// The zero value is ready to use. Stats is not safe for concurrent use;
// the sweep engine's ordered merge delivers rows from one goroutine.
type Stats struct {
	n          int64
	mean, m2   float64
	minV, maxV float64
}

// Add folds one value into the accumulator.
func (s *Stats) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.minV, s.maxV = x, x
	} else {
		if x < s.minV {
			s.minV = x
		}
		if x > s.maxV {
			s.maxV = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of values added.
func (s *Stats) N() int64 { return s.n }

// Mean returns the running mean (0 with no values).
func (s *Stats) Mean() float64 { return s.mean }

// Var returns the population variance (0 with fewer than two values).
func (s *Stats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Stats) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest value seen (0 with no values).
func (s *Stats) Min() float64 { return s.minV }

// Max returns the largest value seen (0 with no values).
func (s *Stats) Max() float64 { return s.maxV }

// Grouped is a set of Stats accumulators keyed by string, remembering
// first-insertion order so streamed aggregation reports groups in the
// order the sweep first produced them (for the studies: cfg.Apps order).
// The zero value is ready to use.
type Grouped struct {
	order []string
	m     map[string]*Stats
}

// Add folds x into key's accumulator, creating it on first use.
func (g *Grouped) Add(key string, x float64) {
	if g.m == nil {
		g.m = make(map[string]*Stats)
	}
	s := g.m[key]
	if s == nil {
		s = &Stats{}
		g.m[key] = s
		g.order = append(g.order, key)
	}
	s.Add(x)
}

// Keys returns the group keys in first-insertion order.
func (g *Grouped) Keys() []string { return g.order }

// Get returns the accumulator for key, or nil if the key was never added.
func (g *Grouped) Get(key string) *Stats { return g.m[key] }

// Rolling is a fixed-capacity sliding window over the most recent values:
// bounded-memory aggregation over "the last K" rather than over
// everything. It backs windowed rate estimates (sweep progress ETA).
type Rolling struct {
	buf   []float64
	next  int   // ring write position
	total int64 // values ever added
}

// NewRolling returns a window retaining the last capacity values
// (capacity < 1 is treated as 1).
func NewRolling(capacity int) *Rolling {
	if capacity < 1 {
		capacity = 1
	}
	return &Rolling{buf: make([]float64, 0, capacity)}
}

// Add pushes a value, evicting the oldest once the window is full.
func (r *Rolling) Add(x float64) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, x)
	} else {
		r.buf[r.next] = x
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// N returns how many values the window currently holds.
func (r *Rolling) N() int { return len(r.buf) }

// Total returns how many values were ever added.
func (r *Rolling) Total() int64 { return r.total }

// Mean returns the mean of the retained values (0 when empty).
func (r *Rolling) Mean() float64 {
	if len(r.buf) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.buf {
		sum += v
	}
	return sum / float64(len(r.buf))
}

// First returns the oldest retained value (0 when empty).
func (r *Rolling) First() float64 {
	switch {
	case len(r.buf) == 0:
		return 0
	case len(r.buf) < cap(r.buf):
		return r.buf[0]
	default:
		return r.buf[r.next]
	}
}

// Last returns the newest value (0 when empty).
func (r *Rolling) Last() float64 {
	if len(r.buf) == 0 {
		return 0
	}
	return r.buf[(r.next+cap(r.buf)-1)%cap(r.buf)]
}
