package report

import (
	"math"
	"testing"
)

func TestStatsMatchesTwoPass(t *testing.T) {
	xs := []float64{4, 7, 13, 16, 1.5, -2.25, 99, 0.125}
	var s Stats
	for _, x := range xs {
		s.Add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	std := math.Sqrt(m2 / float64(len(xs)))
	if s.N() != int64(len(xs)) {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-mean) > 1e-12 {
		t.Fatalf("mean %v, want %v", s.Mean(), mean)
	}
	if math.Abs(s.Std()-std) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std(), std)
	}
	if s.Min() != -2.25 || s.Max() != 99 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStatsDegenerate(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Std() != 0 || s.N() != 0 {
		t.Fatalf("zero-value stats not zero: %+v", s)
	}
	s.Add(5)
	if s.Mean() != 5 || s.Std() != 0 || s.Min() != 5 || s.Max() != 5 {
		t.Fatalf("single-value stats wrong: mean %v std %v", s.Mean(), s.Std())
	}
}

func TestGroupedPreservesFirstInsertionOrder(t *testing.T) {
	var g Grouped
	for i := 0; i < 3; i++ { // several "seeds" over the same apps
		g.Add("em3d", float64(i))
		g.Add("moldyn", float64(10*i))
		g.Add("appbt", float64(100*i))
	}
	want := []string{"em3d", "moldyn", "appbt"}
	got := g.Keys()
	if len(got) != len(want) {
		t.Fatalf("keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
	if g.Get("moldyn").N() != 3 || g.Get("moldyn").Mean() != 10 {
		t.Fatalf("moldyn stats wrong: %+v", g.Get("moldyn"))
	}
	if g.Get("absent") != nil {
		t.Fatal("absent key returned non-nil stats")
	}
}

func TestRollingWindow(t *testing.T) {
	r := NewRolling(3)
	if r.Mean() != 0 || r.First() != 0 || r.Last() != 0 {
		t.Fatal("empty rolling not zero")
	}
	r.Add(1)
	r.Add(2)
	if r.N() != 2 || r.First() != 1 || r.Last() != 2 || r.Mean() != 1.5 {
		t.Fatalf("partial window wrong: n=%d first=%v last=%v mean=%v", r.N(), r.First(), r.Last(), r.Mean())
	}
	r.Add(3)
	r.Add(4) // evicts 1
	if r.N() != 3 || r.First() != 2 || r.Last() != 4 {
		t.Fatalf("full window wrong: n=%d first=%v last=%v", r.N(), r.First(), r.Last())
	}
	if r.Mean() != 3 {
		t.Fatalf("mean = %v, want 3", r.Mean())
	}
	if r.Total() != 4 {
		t.Fatalf("total = %d, want 4", r.Total())
	}
	if NewRolling(0).N() != 0 {
		t.Fatal("capacity clamp broken")
	}
}
