package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple fixed-width text table builder.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f", v*100) }

// F1 formats with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// BarChart renders grouped horizontal bars (one group per row label),
// scaled to maxWidth characters at 100 units.
type BarChart struct {
	title    string
	maxValue float64
	width    int
	groups   []barGroup
}

type barGroup struct {
	label string
	bars  []bar
}

type bar struct {
	name  string
	value float64
}

// NewBarChart creates a chart; maxValue maps to full width.
func NewBarChart(title string, maxValue float64, width int) *BarChart {
	if width <= 0 {
		width = 50
	}
	if maxValue <= 0 {
		maxValue = 100
	}
	return &BarChart{title: title, maxValue: maxValue, width: width}
}

// AddGroup appends a labeled group of (name, value) bars.
func (c *BarChart) AddGroup(label string, namesAndValues ...any) {
	g := barGroup{label: label}
	for i := 0; i+1 < len(namesAndValues); i += 2 {
		g.bars = append(g.bars, bar{
			name:  fmt.Sprint(namesAndValues[i]),
			value: toFloat(namesAndValues[i+1]),
		})
	}
	c.groups = append(c.groups, g)
}

func toFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case uint64:
		return float64(x)
	default:
		return math.NaN()
	}
}

// String renders the chart.
func (c *BarChart) String() string {
	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	nameW, labelW := 0, 0
	for _, g := range c.groups {
		if len(g.label) > labelW {
			labelW = len(g.label)
		}
		for _, bb := range g.bars {
			if len(bb.name) > nameW {
				nameW = len(bb.name)
			}
		}
	}
	for _, g := range c.groups {
		fmt.Fprintf(&b, "%-*s\n", labelW, g.label)
		for _, bb := range g.bars {
			n := int(bb.value / c.maxValue * float64(c.width))
			if n < 0 {
				n = 0
			}
			if n > c.width {
				n = c.width
			}
			fmt.Fprintf(&b, "  %-*s |%s %.1f\n", nameW, bb.name, strings.Repeat("#", n), bb.value)
		}
	}
	return b.String()
}

// LineChart renders multiple series as a character grid (used for the
// Figure 6 analytic curves).
type LineChart struct {
	title  string
	xLabel string
	yLabel string
	series []lineSeries
	width  int
	height int
	yMax   float64
}

type lineSeries struct {
	label  string
	marker byte
	xs, ys []float64
}

// NewLineChart creates a chart of the given character dimensions; yMax of
// zero auto-scales.
func NewLineChart(title, xLabel, yLabel string, width, height int, yMax float64) *LineChart {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	return &LineChart{title: title, xLabel: xLabel, yLabel: yLabel, width: width, height: height, yMax: yMax}
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// AddSeries appends one curve. xs must be ascending in [0,1].
func (c *LineChart) AddSeries(label string, xs, ys []float64) {
	m := markers[len(c.series)%len(markers)]
	c.series = append(c.series, lineSeries{label: label, marker: m, xs: xs, ys: ys})
}

// String renders the chart.
func (c *LineChart) String() string {
	yMax := c.yMax
	if yMax <= 0 {
		for _, s := range c.series {
			for _, y := range s.ys {
				if y > yMax {
					yMax = y
				}
			}
		}
		if yMax == 0 {
			yMax = 1
		}
	}
	grid := make([][]byte, c.height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", c.width))
	}
	for _, s := range c.series {
		for i := range s.xs {
			col := int(s.xs[i] * float64(c.width-1))
			rowF := s.ys[i] / yMax * float64(c.height-1)
			row := c.height - 1 - int(rowF)
			if row < 0 {
				row = 0
			}
			if row >= c.height {
				row = c.height - 1
			}
			if col >= 0 && col < c.width {
				grid[row][col] = s.marker
			}
		}
	}
	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	fmt.Fprintf(&b, "%s (max %.1f)\n", c.yLabel, yMax)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s> %s\n", strings.Repeat("-", c.width), c.xLabel)
	for _, s := range c.series {
		fmt.Fprintf(&b, "  %c %s\n", s.marker, s.label)
	}
	return b.String()
}
