package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "App", "Value")
	tbl.AddRow("em3d", "12.5")
	tbl.AddRow("averylongappname", "3")
	tbl.AddNote("note %d", 1)
	out := tbl.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "App") || !strings.Contains(out, "Value") {
		t.Error("missing headers")
	}
	if !strings.Contains(out, "em3d") || !strings.Contains(out, "averylongappname") {
		t.Error("missing rows")
	}
	if !strings.Contains(out, "note 1") {
		t.Error("missing note")
	}
	// Columns aligned: every line at least as wide as the longest label.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestTableDropsExtraCells(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("x", "dropped")
	out := tbl.String()
	if strings.Contains(out, "dropped") {
		t.Error("extra cell should be dropped")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.125) != "12.5" {
		t.Errorf("Pct = %q", Pct(0.125))
	}
	if F1(3.14159) != "3.1" || F2(3.14159) != "3.14" {
		t.Errorf("F1/F2 wrong: %q %q", F1(3.14159), F2(3.14159))
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("chart", 100, 20)
	c.AddGroup("em3d", "base", 100.0, "swi", 70.5)
	out := c.String()
	if !strings.Contains(out, "em3d") || !strings.Contains(out, "base") {
		t.Fatalf("missing labels: %s", out)
	}
	if !strings.Contains(out, "####") {
		t.Fatalf("missing bars: %s", out)
	}
	if !strings.Contains(out, "70.5") {
		t.Fatalf("missing values: %s", out)
	}
}

func TestBarChartClamps(t *testing.T) {
	c := NewBarChart("", 100, 10)
	c.AddGroup("g", "over", 250.0, "neg", -5.0)
	out := c.String()
	if strings.Contains(out, strings.Repeat("#", 11)) {
		t.Error("bar exceeded width")
	}
}

func TestLineChart(t *testing.T) {
	c := NewLineChart("fig", "c", "speedup", 40, 10, 4)
	xs := []float64{0, 0.5, 1}
	c.AddSeries("p=1.0", xs, []float64{1, 2, 4})
	c.AddSeries("p=0.5", xs, []float64{1, 0.8, 0.6})
	out := c.String()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "p=1.0") {
		t.Fatalf("missing labels: %s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("missing markers: %s", out)
	}
	if !strings.Contains(out, "speedup") {
		t.Fatal("missing y label")
	}
}

func TestLineChartAutoScale(t *testing.T) {
	c := NewLineChart("", "x", "y", 20, 8, 0)
	c.AddSeries("s", []float64{0, 1}, []float64{0, 7.5})
	out := c.String()
	if !strings.Contains(out, "max 7.5") {
		t.Fatalf("auto-scale failed: %s", out)
	}
}
