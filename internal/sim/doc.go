// Package sim provides the discrete-event simulation kernel underneath the
// DSM machine model: a cycle-granular clock and an event queue with
// deterministic ordering.
//
// Components schedule closures to run at absolute or relative cycle times;
// the kernel runs them in (time, insertion) order so that simulations are
// bit-reproducible for a given seed and workload.
//
// # Queue structure
//
// The queue is a hierarchical time wheel with three tiers, classified per
// schedule by delay (plus a sparse-case register: a kernel whose entire
// pending set is one event holds it in two hot fields and touches no
// tier at all — the 0↔1-population request/response ping-pong common in
// protocol microstates stays as cheap as a one-element heap):
//
//   - Same-cycle ring: an event at exactly the current cycle is appended
//     to the dispatch ring the kernel is already draining — zero-delay
//     work (After(0), completion callbacks, routeAfter(0)) never touches
//     the wheel or the heap.
//   - Near wheel: an event within WheelSpan cycles of now is appended to
//     the per-cycle FIFO bucket for its cycle, O(1). Every fixed latency
//     in the machine model (Table 1 node timing, NI occupancies, flight
//     latencies up to the RTL sweep's slowest fabric, barrier exit, lock
//     hand-off) is below WheelSpan by construction, so steady-state
//     scheduling is constant-time.
//   - Overflow heap: anything at or beyond now+WheelSpan waits in a
//     value-based 4-ary min-heap and is promoted into the wheel when the
//     clock advances to within WheelSpan of it. Each far-future event
//     pays one heap push and one pop, total — never more.
//
// # Ordering contract
//
// Dispatch order is exactly (time, insertion-seq), the same total order
// the pre-wheel heap kernel produced; any heap shape or bucket layout
// yielding that order is observationally identical, which is what keeps
// study output byte-stable across kernel rewrites. The wheel maintains it
// through two invariants:
//
//   - Window invariant: every bucketed event lies in [now, now+WheelSpan).
//     Two distinct times in a WheelSpan-wide window cannot collide in the
//     modular bucket index, so each bucket holds events of one single
//     cycle and FIFO append order within a bucket is insertion order.
//   - Promotion invariant: the overflow heap only ever holds events at or
//     beyond now+WheelSpan. When the clock advances, overflow events the
//     new horizon reaches are promoted immediately, popped in (time, seq)
//     order — so same-cycle promotions enter their bucket in insertion
//     order, and always ahead of any later direct insert (whose seq is
//     necessarily larger, because scheduling a cycle directly requires
//     the horizon to have already passed it).
//
// # Storage
//
// Bucket chains are intrusive singly-linked lists over one pooled node
// arena (index-linked, 0 the nil sentinel); popped nodes return to a free
// list with their closures cleared. Schedule and dispatch are 0 allocs/op
// in steady state for all three tiers, and Reset clears-but-retains every
// structure — O(1) after a drained run — so an arena-reused kernel replays
// tie-breaks identically (the seq counter restarts).
//
// ReferenceKernel is the retained pre-wheel implementation (a single
// 4-ary heap): the differential-testing oracle that pins the wheel's
// dispatch order, and the baseline its microbenchmarks are judged
// against.
package sim
