// Package sim provides the discrete-event simulation kernel underneath the
// DSM machine model: a cycle-granular clock and an event queue with
// deterministic ordering.
//
// Components schedule closures to run at absolute or relative cycle times;
// the kernel runs them in (time, insertion) order so that simulations are
// bit-reproducible for a given seed and workload.
//
// The queue is a value-based 4-ary heap over event structs: scheduling
// appends into a reused slice (no per-event heap allocation, no
// container/heap interface boxing), and dispatch pops in exactly the same
// (time, insertion-sequence) total order as the previous pointer-based
// binary heap — the comparator is a total order, so any heap shape yields
// the identical dispatch sequence.
package sim
