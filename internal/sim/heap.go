package sim

// event is a scheduled action waiting in the overflow heap.
type event struct {
	at  Cycle
	seq uint64 // insertion order; breaks ties deterministically
	fn  func()
}

// before reports whether e dispatches before o: earlier time first,
// insertion order breaking ties.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// heapArity is the overflow heap's branching factor. A 4-ary heap halves
// the tree depth of a binary heap, trading slightly more comparisons per
// level for far fewer cache-missing level hops — the usual win for small
// elements.
const heapArity = 4

// eventHeap is a value-based 4-ary min-heap ordered by event.before. The
// kernel uses it only for far-future events (beyond the near wheel's
// horizon), so its O(log n) sift is off the hot path; it is also the
// complete ordering structure of ReferenceKernel, the differential-testing
// oracle the wheel is checked against.
type eventHeap struct {
	q []event
}

func (h *eventHeap) len() int { return len(h.q) }

// top returns the minimum event without removing it. Call only when
// len() > 0.
func (h *eventHeap) top() *event { return &h.q[0] }

// push appends e and restores the heap property (sift-up).
func (h *eventHeap) push(e event) {
	q := append(h.q, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q[i].before(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	h.q = q
}

// pop removes and returns the minimum event (sift-down). The vacated tail
// slot is zeroed so the queue's backing array does not pin the closure.
func (h *eventHeap) pop() event {
	q := h.q
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	i := 0
	for {
		min := i
		first := i*heapArity + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if q[c].before(&q[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	h.q = q
	return top
}

// reset discards all events, retaining the backing array; vacated slots
// are zeroed so no stale closure stays pinned.
func (h *eventHeap) reset() {
	clear(h.q)
	h.q = h.q[:0]
}
