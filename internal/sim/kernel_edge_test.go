package sim

import (
	"testing"
)

// These tests pin the Kernel semantics every queue rewrite must preserve
// (they survived the pointer-heap → value-heap → time-wheel rewrites
// unchanged): RunUntil's deadline handling, Stop in the middle of a run,
// and tie-breaking by insertion order under heavy same-cycle load —
// including events scheduled at the current cycle from inside a handler.

func TestRunUntilStopMidRun(t *testing.T) {
	k := NewKernel()
	var fired []Cycle
	for _, c := range []Cycle{10, 20, 30, 40} {
		c := c
		k.At(c, func() {
			fired = append(fired, c)
			if c == 20 {
				k.Stop()
			}
		})
	}
	n := k.RunUntil(35)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("executed %d (fired %v), want 2", n, fired)
	}
	// A stopped RunUntil must not advance the clock to the deadline: the
	// simulation halted at the stopping event's time.
	if k.Now() != 20 {
		t.Fatalf("Now = %d after Stop, want 20 (not deadline 35)", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
	// Resume picks up where the stop left off.
	if n := k.RunUntil(35); n != 1 || k.Now() != 35 {
		t.Fatalf("resume executed %d at %d, want 1 at 35", n, k.Now())
	}
	if n := k.Run(0); n != 1 || k.Now() != 40 {
		t.Fatalf("drain executed %d at %d, want 1 at 40", n, k.Now())
	}
}

func TestRunUntilDeadlineIsInclusive(t *testing.T) {
	k := NewKernel()
	ran := false
	k.At(25, func() { ran = true })
	if n := k.RunUntil(25); n != 1 || !ran {
		t.Fatalf("event at the deadline must dispatch (n=%d ran=%v)", n, ran)
	}
	if k.Now() != 25 {
		t.Fatalf("Now = %d, want 25", k.Now())
	}
}

func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	k := NewKernel()
	if n := k.RunUntil(100); n != 0 {
		t.Fatalf("executed %d on empty queue", n)
	}
	if k.Now() != 100 {
		t.Fatalf("Now = %d, want deadline 100", k.Now())
	}
	// A deadline in the past never rewinds the clock.
	if k.RunUntil(50); k.Now() != 100 {
		t.Fatalf("Now = %d after past deadline, want 100", k.Now())
	}
}

func TestStopMidRunKeepsClock(t *testing.T) {
	k := NewKernel()
	for i := Cycle(1); i <= 5; i++ {
		i := i
		k.At(i*10, func() {
			if i == 3 {
				k.Stop()
			}
		})
	}
	k.Run(0)
	if k.Now() != 30 {
		t.Fatalf("Now = %d, want 30 (the stopping event's time)", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", k.Pending())
	}
}

// TestHeavySameCycleTieBreak schedules thousands of events at one cycle —
// including events appended at that same cycle from inside handlers — and
// requires strict global insertion-order dispatch. This is the pattern a
// 16-node directory burst produces, and the ordering property that makes
// the simulator bit-reproducible.
func TestHeavySameCycleTieBreak(t *testing.T) {
	k := NewKernel()
	const base = 3000
	var got []int
	next := base
	for i := 0; i < base; i++ {
		i := i
		k.At(7, func() {
			got = append(got, i)
			// Every 10th handler appends two more same-cycle events; they
			// must run after everything already scheduled.
			if i%10 == 0 {
				for j := 0; j < 2; j++ {
					id := next
					next++
					k.At(7, func() { got = append(got, id) })
				}
			}
		})
	}
	k.Run(0)
	if len(got) != next {
		t.Fatalf("executed %d events, want %d", len(got), next)
	}
	// The first base dispatches are 0..base-1 in order; the appended ones
	// follow in append order.
	for i, v := range got {
		if i < base && v != i {
			t.Fatalf("position %d got %d; pre-scheduled events out of insertion order", i, v)
		}
		if i >= base && v != i {
			t.Fatalf("position %d got %d; same-cycle appends out of insertion order", i, v)
		}
	}
	if k.Now() != 7 {
		t.Fatalf("Now = %d, want 7", k.Now())
	}
}

// TestKernelScheduleZeroAllocs is the acceptance guard for the event
// queue: once its storage is warm, scheduling and dispatching pre-built
// closures must not allocate. (The wheel-specific per-tier guards live in
// wheel_bench_test.go.)
func TestKernelScheduleZeroAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the queue capacity.
	for i := 0; i < 256; i++ {
		k.At(Cycle(i), fn)
	}
	k.Run(0)
	avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			k.After(Cycle(i%5), fn)
		}
		k.Run(0)
	})
	if avg != 0 {
		t.Errorf("schedule+dispatch allocates %.2f/run, want 0", avg)
	}
}

// BenchmarkKernelSchedule measures steady-state schedule+dispatch with a
// standing event population, the kernel's hot loop in every simulation.
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	const standing = 64
	remaining := b.N
	var fn func()
	fn = func() {
		if remaining > 0 {
			remaining--
			k.After(Cycle(remaining%7+1), fn)
		}
	}
	for i := 0; i < standing; i++ {
		k.At(Cycle(i%7), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(uint64(b.N))
}
