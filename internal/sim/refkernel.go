package sim

import "fmt"

// ReferenceKernel is the pre-wheel event kernel: a single value-based
// 4-ary heap ordered by (time, insertion-seq). It is retained verbatim as
// the differential-testing oracle for Kernel — the wheel must dispatch
// every schedule in exactly the order this heap does — and as the
// baseline for the scheduler microbenchmarks. It is not used by the
// simulator itself.
type ReferenceKernel struct {
	now      Cycle
	seq      uint64
	queue    eventHeap
	stopped  bool
	executed uint64
}

// NewReferenceKernel returns a reference kernel with the clock at cycle 0.
func NewReferenceKernel() *ReferenceKernel {
	return &ReferenceKernel{}
}

// Now returns the current simulated cycle.
func (k *ReferenceKernel) Now() Cycle { return k.now }

// Executed returns the number of events dispatched so far.
func (k *ReferenceKernel) Executed() uint64 { return k.executed }

// Pending returns the number of events waiting in the queue.
func (k *ReferenceKernel) Pending() int { return k.queue.len() }

// At schedules fn to run at absolute cycle at.
func (k *ReferenceKernel) At(at Cycle, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, k.now))
	}
	k.seq++
	k.queue.push(event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (k *ReferenceKernel) After(delay Cycle, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.At(k.now+delay, fn)
}

// Stop makes Run return after the currently dispatching event completes.
func (k *ReferenceKernel) Stop() { k.stopped = true }

// Reset re-arms the kernel for a fresh run, discarding queued events but
// retaining the heap's backing array.
func (k *ReferenceKernel) Reset() {
	k.queue.reset()
	k.now = 0
	k.seq = 0
	k.stopped = false
	k.executed = 0
}

// Run dispatches events in order until the queue drains, Stop is called,
// or maxEvents events have executed (0 means no limit).
func (k *ReferenceKernel) Run(maxEvents uint64) uint64 {
	k.stopped = false
	var n uint64
	for k.queue.len() > 0 && !k.stopped {
		if maxEvents != 0 && n >= maxEvents {
			break
		}
		e := k.queue.pop()
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		k.executed++
		n++
		e.fn()
	}
	return n
}

// RunUntil dispatches events with timestamps <= deadline; the clock
// advances to the deadline if the run was not stopped early.
func (k *ReferenceKernel) RunUntil(deadline Cycle) uint64 {
	k.stopped = false
	var n uint64
	for k.queue.len() > 0 && !k.stopped {
		if k.queue.top().at > deadline {
			break
		}
		e := k.queue.pop()
		k.now = e.at
		k.executed++
		n++
		e.fn()
	}
	if k.now < deadline && !k.stopped {
		k.now = deadline
	}
	return n
}
