package sim

import (
	"fmt"
)

// Cycle is a point in simulated time, measured in processor clock cycles.
type Cycle int64

// event is a scheduled action.
type event struct {
	at  Cycle
	seq uint64 // insertion order; breaks ties deterministically
	fn  func()
}

// before reports whether e dispatches before o: earlier time first,
// insertion order breaking ties.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Kernel is the event-driven simulation core. The zero value is usable and
// starts at cycle 0; NewKernel is the conventional constructor.
type Kernel struct {
	now     Cycle
	seq     uint64
	queue   []event // 4-ary min-heap ordered by event.before
	stopped bool
	// executed counts dispatched events, for statistics and runaway guards.
	executed uint64
}

// NewKernel returns a kernel with the clock at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Executed returns the number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// heapArity is the heap's branching factor. A 4-ary heap halves the tree
// depth of a binary heap, trading slightly more comparisons per level for
// far fewer cache-missing level hops — the usual win for small elements.
const heapArity = 4

// push appends e and restores the heap property (sift-up).
func (k *Kernel) push(e event) {
	q := append(k.queue, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q[i].before(&q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	k.queue = q
}

// pop removes and returns the minimum event (sift-down). The vacated tail
// slot is zeroed so the queue's backing array does not pin the closure.
func (k *Kernel) pop() event {
	q := k.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{}
	q = q[:n]
	i := 0
	for {
		min := i
		first := i*heapArity + 1
		if first >= n {
			break
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if q[c].before(&q[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	k.queue = q
	return top
}

// At schedules fn to run at absolute cycle at. Scheduling in the past
// panics: it always indicates a model bug.
func (k *Kernel) At(at Cycle, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, k.now))
	}
	k.seq++
	k.push(event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Cycle, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.At(k.now+delay, fn)
}

// Stop makes Run return after the currently dispatching event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Reset re-arms the kernel for a fresh run: the clock returns to cycle 0,
// the insertion-sequence counter restarts (so tie-breaking replays
// identically), and the executed count clears. Queued events are
// discarded but the heap's backing array is retained; the vacated slots
// are zeroed so no stale closure stays pinned. A reset kernel is
// observably equivalent to a freshly constructed one.
func (k *Kernel) Reset() {
	clear(k.queue)
	k.queue = k.queue[:0]
	k.now = 0
	k.seq = 0
	k.stopped = false
	k.executed = 0
}

// Run dispatches events in order until the queue drains, Stop is called,
// or maxEvents events have executed (0 means no limit). It returns the
// number of events executed by this call.
func (k *Kernel) Run(maxEvents uint64) uint64 {
	k.stopped = false
	var n uint64
	for len(k.queue) > 0 && !k.stopped {
		if maxEvents != 0 && n >= maxEvents {
			break
		}
		e := k.pop()
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		k.executed++
		n++
		e.fn()
	}
	return n
}

// FreeList is a tiny LIFO recycler for pooled event-carrier objects (the
// model components schedule the same few callback shapes millions of
// times; pooling the carriers keeps steady-state scheduling
// allocation-free). Get returns a recycled object or false when the
// caller must construct (and bind the once-per-object run closure of) a
// fresh one; Put recycles an object whose fields have been copied out or
// cleared.
type FreeList[T any] struct {
	items []*T
}

// Get pops a recycled object, if any.
func (f *FreeList[T]) Get() (*T, bool) {
	n := len(f.items)
	if n == 0 {
		return nil, false
	}
	x := f.items[n-1]
	f.items = f.items[:n-1]
	return x, true
}

// Put recycles x for a later Get.
func (f *FreeList[T]) Put(x *T) {
	f.items = append(f.items, x)
}

// RunUntil dispatches events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. Returns the number executed; the
// clock advances to the deadline if the run was not stopped early.
func (k *Kernel) RunUntil(deadline Cycle) uint64 {
	k.stopped = false
	var n uint64
	for len(k.queue) > 0 && !k.stopped {
		if k.queue[0].at > deadline {
			break
		}
		e := k.pop()
		k.now = e.at
		k.executed++
		n++
		e.fn()
	}
	if k.now < deadline && !k.stopped {
		k.now = deadline
	}
	return n
}
