package sim

import (
	"fmt"
	"math/bits"
)

// Cycle is a point in simulated time, measured in processor clock cycles.
type Cycle int64

// Near-wheel geometry. WheelSpan cycles from the current one are covered
// by per-cycle buckets; everything further out waits in the overflow
// heap until the clock advances to within WheelSpan of it.
const (
	// WheelSpan is the number of cycles the near wheel covers, starting
	// at the current cycle. It is sized so every fixed model latency in
	// internal/protocol, internal/network, and internal/machine (hit 1,
	// NI occupancy 20, bus 25, directory 24, memory 104, flight 80 — and
	// the RTL sweep's slowest 320-cycle interconnect, barrier exit 140,
	// lock transfer 300) schedules in O(1) on the wheel; only contention
	// backlogs pile delays past it.
	WheelSpan = 1024

	wheelMask  = WheelSpan - 1
	wheelWords = WheelSpan / 64
)

// wheelNode is one queued event in the near wheel: an intrusive
// singly-linked list cell in the kernel's pooled node arena. Nodes carry
// no timestamp — a bucket holds events of exactly one cycle (see fifo) —
// and no sequence number — FIFO bucket order is insertion order.
type wheelNode struct {
	fn   func()
	next int32 // arena index of the next node; 0 terminates
}

// fifo is a bucket's (or the dispatch ring's) intrusive list: arena
// indices of its first and last node, 0 when empty (arena index 0 is a
// reserved sentinel). All events on one fifo share a single cycle: the
// kernel keeps every bucketed event within [now, now+WheelSpan), and two
// distinct times in a WheelSpan-wide window cannot map to the same
// bucket, so appending preserves the global (time, insertion) order.
type fifo struct {
	head, tail int32
}

// Kernel is the event-driven simulation core. The zero value is usable and
// starts at cycle 0; NewKernel is the conventional constructor.
//
// The queue is a hierarchical time wheel: events within WheelSpan cycles
// of now sit in per-cycle FIFO buckets (O(1) schedule and dispatch),
// events at exactly the current cycle go straight onto the dispatch ring
// (cur), and far-future events wait in a 4-ary overflow heap from which
// they are promoted — in (time, insertion-seq) order — as the clock
// advances. Dispatch order is exactly (time, insertion-seq), bit-identical
// to ReferenceKernel's heap order; the differential tests pin this.
type Kernel struct {
	now     Cycle
	seq     uint64
	stopped bool
	// executed counts dispatched events, for statistics and runaway guards.
	executed uint64

	// Near wheel. nodes is the pooled node arena (index 0 reserved so 0
	// can mean "nil"); freeHead chains recycled nodes; occ is the bucket
	// occupancy bitmap scanned to find the next busy cycle; near counts
	// events in the buckets plus the dispatch ring; limit = now + WheelSpan
	// is the wheel/overflow boundary invariant. buckets and occ are inline
	// arrays, not slices: a kernel costs exactly one arena allocation
	// beyond its own struct, which matters to benchmarks that build a
	// machine per iteration.
	nodes    []wheelNode
	freeHead int32
	buckets  [WheelSpan]fifo
	occ      [wheelWords]uint64
	near     int
	limit    Cycle

	// cur is the same-cycle direct-dispatch ring: events at exactly the
	// current cycle, dispatched before the wheel is consulted. Zero-delay
	// work (After(0), At(now) from inside a handler) is appended here
	// directly, bypassing bucket indexing and the occupancy bitmap.
	cur fifo

	// one is the sparse-case register: a kernel whose entire pending set
	// is a single event keeps it here, in two hot fields, instead of
	// paying the wheel's bucket/bitmap/arena traffic. Request/response
	// ping-pong — a directory waiting on exactly one ack, a processor
	// stalled on one fill — runs the queue at 0↔1 population for long
	// stretches, and this register keeps that case as cheap as the old
	// tiny heap was. Invariant: oneValid implies near == 0 and an empty
	// overflow; a second schedule demotes the register into the wheel
	// (preserving its original seq) before inserting.
	one      event
	oneValid bool

	// overflow holds events at or beyond limit.
	overflow eventHeap
}

// NewKernel returns a kernel with the clock at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Executed returns the number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int {
	n := k.near + k.overflow.len()
	if k.oneValid {
		n++
	}
	return n
}

// ensureInit lazily allocates the node arena so the zero-value Kernel
// stays usable.
func (k *Kernel) ensureInit() {
	if k.nodes == nil {
		// Index 0 is the nil sentinel. Starting the arena at a realistic
		// standing population skips most of the append-doubling a machine
		// pays while warming up.
		k.nodes = make([]wheelNode, 1, 1024)
		k.limit = k.now + WheelSpan
	}
}

// allocNode takes a node from the free list, growing the arena only when
// it is empty (steady state recycles; the arena tracks peak population).
func (k *Kernel) allocNode(fn func()) int32 {
	if i := k.freeHead; i != 0 {
		k.freeHead = k.nodes[i].next
		k.nodes[i] = wheelNode{fn: fn}
		return i
	}
	k.nodes = append(k.nodes, wheelNode{fn: fn})
	return int32(len(k.nodes) - 1)
}

// push appends fn to f's tail.
func (k *Kernel) push(f *fifo, fn func()) {
	n := k.allocNode(fn)
	if f.head == 0 {
		f.head = n
	} else {
		k.nodes[f.tail].next = n
	}
	f.tail = n
}

// bucketPush appends fn to the bucket for cycle at (which must lie in
// [now, limit)), marking the bucket occupied.
func (k *Kernel) bucketPush(at Cycle, fn func()) {
	idx := int(at) & wheelMask
	b := &k.buckets[idx]
	if b.head == 0 {
		k.occ[idx>>6] |= 1 << uint(idx&63)
	}
	k.push(b, fn)
}

// At schedules fn to run at absolute cycle at. Scheduling in the past
// panics: it always indicates a model bug. The classification here is the
// whole scheduling cost model: the sole pending event sits in a register,
// same-cycle work goes straight onto the dispatch ring, anything within
// WheelSpan cycles is an O(1) bucket append, and only far-future events
// pay the heap's O(log n).
func (k *Kernel) At(at Cycle, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, k.now))
	}
	k.ensureInit()
	k.seq++
	if k.near == 0 && k.overflow.len() == 0 {
		if !k.oneValid {
			k.one = event{at: at, seq: k.seq, fn: fn}
			k.oneValid = true
			return
		}
		// Second event: demote the register into the wheel first. Its seq
		// is smaller, so in a shared bucket it lands ahead — insertion
		// order preserved.
		e := k.one
		k.one = event{}
		k.oneValid = false
		k.place(e)
	}
	k.place(event{at: at, seq: k.seq, fn: fn})
}

// place routes one event into the ring, the wheel, or the overflow heap.
func (k *Kernel) place(e event) {
	switch {
	case e.at == k.now:
		k.near++
		k.push(&k.cur, e.fn)
	case e.at < k.limit:
		k.near++
		k.bucketPush(e.at, e.fn)
	default:
		k.overflow.push(e)
	}
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Cycle, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.At(k.now+delay, fn)
}

// Stop makes Run return after the currently dispatching event completes.
func (k *Kernel) Stop() { k.stopped = true }

// scanFrom returns the distance (1..WheelSpan-1) from bucket idx to the
// next occupied bucket, scanning the occupancy bitmap word-wise with
// wraparound. Call only with at least one occupied bucket other than idx.
func (k *Kernel) scanFrom(idx int) int {
	w := idx >> 6
	// Bits strictly above idx in its word (a shift count of 64 yields 0).
	word := k.occ[w] & (^uint64(0) << (uint(idx&63) + 1))
	for n := 0; n <= wheelWords; n++ {
		if word != 0 {
			abs := w<<6 + bits.TrailingZeros64(word)
			return (abs - idx) & wheelMask
		}
		w = (w + 1) & (wheelWords - 1)
		word = k.occ[w]
	}
	panic("sim: near events recorded but no occupied bucket")
}

// advanceTo moves the clock to t and promotes every overflow event that
// the new horizon reaches into the wheel. Promotion pops the heap in
// (time, seq) order, so events landing in one bucket arrive in insertion
// order — and any event scheduled directly into that bucket afterwards
// carries a larger seq, so FIFO bucket order stays the global total
// order. (Overflow events at cycle t itself — possible only when the
// wheel was empty and the clock jumps to the heap top — go straight onto
// the dispatch ring.)
func (k *Kernel) advanceTo(t Cycle) {
	if t < k.now {
		panic("sim: time went backwards")
	}
	k.now = t
	k.limit = t + WheelSpan
	for k.overflow.len() > 0 && k.overflow.top().at < k.limit {
		e := k.overflow.pop()
		k.near++
		if e.at == t {
			k.push(&k.cur, e.fn)
		} else {
			k.bucketPush(e.at, e.fn)
		}
	}
}

// splice moves bucket idx's whole chain onto the (empty) dispatch ring.
func (k *Kernel) splice(idx int) {
	k.cur = k.buckets[idx]
	k.buckets[idx] = fifo{}
	k.occ[idx>>6] &^= 1 << uint(idx&63)
}

// refill makes the dispatch ring non-empty, advancing the clock to the
// next busy cycle; false when no events remain anywhere.
func (k *Kernel) refill() bool {
	if k.near > 0 {
		idx := int(k.now) & wheelMask
		if k.occ[idx>>6]&(1<<uint(idx&63)) == 0 {
			d := k.scanFrom(idx)
			k.advanceTo(k.now + Cycle(d))
			idx = (idx + d) & wheelMask
		}
		k.splice(idx)
		return true
	}
	if k.overflow.len() == 0 {
		return false
	}
	// The wheel is empty: jump straight to the heap top. advanceTo puts
	// the top (and any same-cycle followers) on the dispatch ring.
	k.advanceTo(k.overflow.top().at)
	return true
}

// pop removes and returns the next event's callback in (time, seq) order,
// advancing the clock to its cycle; ok is false when the queue is empty.
// The popped node returns to the free list with its closure cleared so
// the arena does not pin it.
func (k *Kernel) pop() (fn func(), ok bool) {
	if k.cur.head == 0 {
		if k.oneValid {
			e := k.one
			k.one = event{}
			k.oneValid = false
			k.advanceTo(e.at) // overflow is empty; this only moves the clock
			return e.fn, true
		}
		if !k.refill() {
			return nil, false
		}
	}
	i := k.cur.head
	n := &k.nodes[i]
	fn = n.fn
	k.cur.head = n.next
	if n.next == 0 {
		k.cur.tail = 0
	}
	n.fn = nil
	n.next = k.freeHead
	k.freeHead = i
	k.near--
	return fn, true
}

// drainRing dispatches the ring's whole FIFO as one batch — every event
// already sits at the current cycle, so no per-event scan/refill/register
// check is needed between dispatches. Handlers that schedule at the
// current cycle append to the ring mid-drain and are dispatched in the
// same batch, preserving global insertion order (the ring IS the current
// cycle's FIFO). Dispatch stops when the ring empties, Stop is called, or
// budget events have run (budget 0 = unlimited). The node is recycled and
// its fields copied out before the handler runs: the handler may grow the
// node arena, invalidating the pointer, and may immediately reuse the
// freed node for a same-cycle append.
func (k *Kernel) drainRing(budget uint64) uint64 {
	var n uint64
	for {
		i := k.cur.head
		if i == 0 {
			break
		}
		nd := &k.nodes[i]
		fn := nd.fn
		next := nd.next
		nd.fn = nil
		nd.next = k.freeHead
		k.freeHead = i
		k.cur.head = next
		if next == 0 {
			k.cur.tail = 0
		}
		k.near--
		k.executed++
		n++
		fn()
		if k.stopped || n == budget {
			break
		}
	}
	return n
}

// peekTime reports the next event's cycle without dispatching or
// advancing the clock.
func (k *Kernel) peekTime() (Cycle, bool) {
	if k.cur.head != 0 {
		return k.now, true
	}
	if k.oneValid {
		return k.one.at, true
	}
	if k.near > 0 {
		idx := int(k.now) & wheelMask
		if k.occ[idx>>6]&(1<<uint(idx&63)) != 0 {
			return k.now, true
		}
		return k.now + Cycle(k.scanFrom(idx)), true
	}
	if k.overflow.len() > 0 {
		return k.overflow.top().at, true
	}
	return 0, false
}

// Reset re-arms the kernel for a fresh run: the clock returns to cycle 0,
// the insertion-sequence counter restarts (so tie-breaking replays
// identically), and the executed count clears. Queued events are
// discarded but all storage — the node arena, buckets, occupancy bitmap,
// and the overflow heap's backing array — is retained; dropped closures
// are cleared so nothing stays pinned. After a drained run this is O(1):
// every arena node is already on the free list. A reset kernel is
// observably equivalent to a freshly constructed one.
func (k *Kernel) Reset() {
	if k.near > 0 || k.overflow.len() > 0 {
		// Events pending (a stopped run): drop them, clearing their
		// closures, and rebuild the free list from scratch.
		clear(k.nodes)
		if len(k.nodes) > 0 {
			k.nodes = k.nodes[:1]
		}
		k.freeHead = 0
		clear(k.buckets[:])
		clear(k.occ[:])
		k.cur = fifo{}
		k.near = 0
		k.overflow.reset()
	}
	k.one = event{}
	k.oneValid = false
	k.now = 0
	k.seq = 0
	k.stopped = false
	k.executed = 0
	if k.nodes != nil {
		k.limit = WheelSpan
	}
}

// Run dispatches events in order until the queue drains, Stop is called,
// or maxEvents events have executed (0 means no limit). It returns the
// number of events executed by this call.
//
// The loop is batched: each iteration makes the dispatch ring non-empty
// (the one-event register, or a whole cycle spliced from the wheel by
// refill) and then drains the ring's FIFO in one pass, paying the
// register/refill classification once per cycle instead of once per
// event.
func (k *Kernel) Run(maxEvents uint64) uint64 {
	k.stopped = false
	var n uint64
	for !k.stopped {
		if maxEvents != 0 && n >= maxEvents {
			break
		}
		if k.cur.head == 0 {
			if k.oneValid {
				e := k.one
				k.one = event{}
				k.oneValid = false
				k.advanceTo(e.at) // overflow is empty; this only moves the clock
				k.executed++
				n++
				e.fn()
				continue
			}
			if !k.refill() {
				break
			}
		}
		var budget uint64
		if maxEvents != 0 {
			budget = maxEvents - n
		}
		n += k.drainRing(budget)
	}
	return n
}

// RunUntil dispatches events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. Returns the number executed; the
// clock advances to the deadline if the run was not stopped early.
func (k *Kernel) RunUntil(deadline Cycle) uint64 {
	k.stopped = false
	var n uint64
	for !k.stopped {
		if k.cur.head != 0 && k.now <= deadline {
			// The whole ring sits at the current cycle, already checked
			// against the deadline: drain it as a batch (same-cycle appends
			// from handlers land at now and belong to this batch too).
			n += k.drainRing(0)
			continue
		}
		t, ok := k.peekTime()
		if !ok || t > deadline {
			break
		}
		fn, _ := k.pop()
		k.executed++
		n++
		fn()
	}
	if k.now < deadline && !k.stopped {
		k.advanceTo(deadline)
	}
	return n
}

// FreeList is a tiny LIFO recycler for pooled event-carrier objects (the
// model components schedule the same few callback shapes millions of
// times; pooling the carriers keeps steady-state scheduling
// allocation-free). Get returns a recycled object or false when the
// caller must construct (and bind the once-per-object run closure of) a
// fresh one; Put recycles an object whose fields have been copied out or
// cleared.
type FreeList[T any] struct {
	items []*T
}

// Get pops a recycled object, if any.
func (f *FreeList[T]) Get() (*T, bool) {
	n := len(f.items)
	if n == 0 {
		return nil, false
	}
	x := f.items[n-1]
	f.items = f.items[:n-1]
	return x, true
}

// Put recycles x for a later Get.
func (f *FreeList[T]) Put(x *T) {
	f.items = append(f.items, x)
}
