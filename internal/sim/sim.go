// Package sim provides the discrete-event simulation kernel underneath the
// DSM machine model: a cycle-granular clock and an event queue with
// deterministic ordering.
//
// Components schedule closures to run at absolute or relative cycle times;
// the kernel runs them in (time, insertion) order so that simulations are
// bit-reproducible for a given seed and workload.
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in processor clock cycles.
type Cycle int64

// Event is a scheduled action.
type event struct {
	at  Cycle
	seq uint64 // insertion order; breaks ties deterministically
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the event-driven simulation core. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now     Cycle
	seq     uint64
	queue   eventHeap
	stopped bool
	// executed counts dispatched events, for statistics and runaway guards.
	executed uint64
}

// NewKernel returns a kernel with the clock at cycle 0.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.queue)
	return k
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() Cycle { return k.now }

// Executed returns the number of events dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events waiting in the queue.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run at absolute cycle at. Scheduling in the past
// panics: it always indicates a model bug.
func (k *Kernel) At(at Cycle, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, k.now))
	}
	k.seq++
	heap.Push(&k.queue, &event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Cycle, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.At(k.now+delay, fn)
}

// Stop makes Run return after the currently dispatching event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run dispatches events in order until the queue drains, Stop is called,
// or maxEvents events have executed (0 means no limit). It returns the
// number of events executed by this call.
func (k *Kernel) Run(maxEvents uint64) uint64 {
	k.stopped = false
	var n uint64
	for len(k.queue) > 0 && !k.stopped {
		if maxEvents != 0 && n >= maxEvents {
			break
		}
		e := heap.Pop(&k.queue).(*event)
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		k.executed++
		n++
		e.fn()
	}
	return n
}

// RunUntil dispatches events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. Returns the number executed.
func (k *Kernel) RunUntil(deadline Cycle) uint64 {
	k.stopped = false
	var n uint64
	for len(k.queue) > 0 && !k.stopped {
		if k.queue[0].at > deadline {
			break
		}
		e := heap.Pop(&k.queue).(*event)
		k.now = e.at
		k.executed++
		n++
		e.fn()
	}
	if k.now < deadline && !k.stopped {
		k.now = deadline
	}
	return n
}
