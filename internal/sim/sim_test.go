package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []Cycle
	for _, c := range []Cycle{30, 10, 20, 5, 25} {
		c := c
		k.At(c, func() { order = append(order, c) })
	}
	k.Run(0)
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("executed %d events, want 5", len(order))
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %d, want 30", k.Now())
	}
}

func TestTieBreakIsInsertionOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(7, func() { order = append(order, i) })
	}
	k.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not in insertion order: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel()
	var at Cycle = -1
	k.At(100, func() {
		k.After(50, func() { at = k.Now() })
	})
	k.Run(0)
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		k.At(5, func() {})
	})
	k.Run(0)
}

func TestNegativeDelayPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	k.After(-1, func() {})
}

func TestStop(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := Cycle(1); i <= 10; i++ {
		k.At(i, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	n := k.Run(0)
	if n != 3 || count != 3 {
		t.Fatalf("ran %d events (count %d), want 3", n, count)
	}
	if k.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", k.Pending())
	}
	// Run can resume after a Stop.
	n = k.Run(0)
	if n != 7 {
		t.Fatalf("resume ran %d, want 7", n)
	}
}

func TestMaxEvents(t *testing.T) {
	k := NewKernel()
	for i := Cycle(1); i <= 10; i++ {
		k.At(i, func() {})
	}
	if n := k.Run(4); n != 4 {
		t.Fatalf("Run(4) executed %d", n)
	}
	if k.Pending() != 6 {
		t.Fatalf("pending = %d", k.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Cycle
	for _, c := range []Cycle{10, 20, 30, 40} {
		c := c
		k.At(c, func() { fired = append(fired, c) })
	}
	n := k.RunUntil(25)
	if n != 2 {
		t.Fatalf("RunUntil executed %d, want 2", n)
	}
	if k.Now() != 25 {
		t.Fatalf("Now = %d, want clock advanced to deadline 25", k.Now())
	}
	n = k.Run(0)
	if n != 2 || k.Now() != 40 {
		t.Fatalf("drain executed %d at %d", n, k.Now())
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.After(1, recurse)
		}
	}
	k.At(0, recurse)
	k.Run(0)
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if k.Now() != 99 {
		t.Fatalf("Now = %d, want 99", k.Now())
	}
}

// Randomized ordering property: regardless of insertion order, dispatch is
// globally sorted by (time, insertion seq).
func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		k := NewKernel()
		type stamp struct {
			at  Cycle
			seq int
		}
		var got []stamp
		n := 200
		for i := 0; i < n; i++ {
			at := Cycle(rng.Intn(50))
			i := i
			k.At(at, func() { got = append(got, stamp{at, i}) })
		}
		k.Run(0)
		if len(got) != n {
			t.Fatalf("executed %d, want %d", len(got), n)
		}
		for i := 1; i < n; i++ {
			if got[i].at < got[i-1].at {
				t.Fatalf("trial %d: out of time order at %d", trial, i)
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				t.Fatalf("trial %d: tie broken out of insertion order", trial)
			}
		}
	}
}

func TestExecutedCounter(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 5; i++ {
		k.At(Cycle(i), func() {})
	}
	k.Run(0)
	if k.Executed() != 5 {
		t.Fatalf("Executed = %d", k.Executed())
	}
}
