package sim

import "testing"

// Wheel-specific zero-alloc guards: each scheduling class — same-cycle
// ring, near-wheel bucket, far-future overflow — must be allocation-free
// in steady state once its storage is warm. They extend the acceptance
// guard TestKernelScheduleZeroAllocs, which mixes the classes.

func TestKernelSameCycleRingZeroAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	var chain func()
	depth := 0
	chain = func() {
		if depth > 0 {
			depth--
			k.At(k.Now(), chain) // same-cycle ring append from inside a handler
		}
	}
	// Warm the node arena.
	for i := 0; i < 64; i++ {
		k.At(0, fn)
	}
	k.Run(0)
	avg := testing.AllocsPerRun(1000, func() {
		depth = 16
		k.At(k.Now(), chain)
		k.Run(0)
	})
	if avg != 0 {
		t.Errorf("same-cycle ring allocates %.2f/run, want 0", avg)
	}
}

func TestKernelFarFutureOverflowZeroAllocs(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the overflow heap's backing array and the wheel nodes the
	// promoted events land in.
	for i := 0; i < 64; i++ {
		k.After(2*WheelSpan+Cycle(i), fn)
	}
	k.Run(0)
	avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 16; i++ {
			k.After(2*WheelSpan+Cycle(i%7), fn) // overflow push + later promotion
		}
		k.Run(0)
	})
	if avg != 0 {
		t.Errorf("overflow schedule+promotion allocates %.2f/run, want 0", avg)
	}
}

// standingSchedule measures steady-state schedule+dispatch with a
// standing event population at the given base delay — the kernel's hot
// loop shape in every simulation. A zero base keeps traffic on the near
// wheel; a base beyond WheelSpan forces every schedule through the
// overflow heap and a promotion.
func standingSchedule(b *testing.B, k scheduler, base Cycle) {
	const standing = 64
	remaining := b.N
	var fn func()
	fn = func() {
		if remaining > 0 {
			remaining--
			k.After(base+Cycle(remaining%7+1), fn)
		}
	}
	for i := 0; i < standing; i++ {
		k.At(Cycle(i%7), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(uint64(b.N))
}

// BenchmarkKernelScheduleWheel is the headline scheduler microbench:
// hot = steady-state near-wheel traffic on a warm kernel; cold = first
// event after a Reset, paying the re-arm plus an occupancy scan.
func BenchmarkKernelScheduleWheel(b *testing.B) {
	b.Run("hot", func(b *testing.B) {
		standingSchedule(b, NewKernel(), 0)
	})
	b.Run("cold", func(b *testing.B) {
		k := NewKernel()
		fn := func() {}
		k.At(3, fn)
		k.Run(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Reset()
			k.At(3, fn)
			k.Run(0)
		}
	})
}

// BenchmarkKernelSameCycleRing measures zero-delay dispatch: every event
// schedules its successor at the current cycle, so the whole run stays on
// the direct-dispatch ring without touching buckets or the bitmap.
func BenchmarkKernelSameCycleRing(b *testing.B) {
	k := NewKernel()
	remaining := b.N
	var fn func()
	fn = func() {
		if remaining > 0 {
			remaining--
			k.At(k.Now(), fn)
		}
	}
	k.At(0, fn)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(uint64(b.N))
}

// BenchmarkKernelFarFutureOverflow forces every schedule beyond the near
// horizon: each event costs a heap push plus a promotion back into the
// wheel when the clock reaches it.
func BenchmarkKernelFarFutureOverflow(b *testing.B) {
	standingSchedule(b, NewKernel(), 2*WheelSpan)
}

// BenchmarkKernelScheduleRef is BenchmarkKernelScheduleWheel/hot on the
// retained pre-wheel heap kernel: the committed baseline the wheel's
// ns/op is judged against.
func BenchmarkKernelScheduleRef(b *testing.B) {
	standingSchedule(b, NewReferenceKernel(), 0)
}
