package sim

import (
	"math/rand"
	"testing"
)

// Differential tests: the time-wheel Kernel must dispatch every schedule
// in exactly the (time, insertion-seq) order of ReferenceKernel, the
// retained pre-wheel 4-ary heap. Each scenario drives both kernels with
// an identical randomized workload — times spanning the same-cycle ring,
// the near wheel, and the overflow heap, with ties and nested scheduling
// from inside handlers — and requires identical dispatch sequences and
// identical clock/counter state, including across Stop and Reset.

// scheduler is the kernel surface the differential tests exercise;
// *Kernel and *ReferenceKernel both implement it.
type scheduler interface {
	Now() Cycle
	At(Cycle, func())
	After(Cycle, func())
	Run(uint64) uint64
	RunUntil(Cycle) uint64
	Stop()
	Reset()
	Pending() int
	Executed() uint64
}

// stamp records one dispatch: the clock when the handler ran and the
// event's identity.
type stamp struct {
	at Cycle
	id int
}

// randomDelay draws from a mix that covers all three scheduling classes:
// zero (same-cycle ring), small (near wheel), and far-future (overflow).
func randomDelay(rng *rand.Rand) Cycle {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1, 2:
		return Cycle(rng.Intn(4)) // heavy ties at nearby cycles
	case 3:
		return WheelSpan + Cycle(rng.Intn(3*WheelSpan)) // overflow
	default:
		return Cycle(rng.Intn(WheelSpan)) // near wheel
	}
}

// runRandomWorkload schedules n root events at random times on k, each
// handler re-scheduling up to two children, and returns the dispatch
// sequence. The rng drives all choices, so two kernels given the same
// seed see byte-identical workloads as long as their dispatch orders
// agree (any divergence shows up in the compared sequences).
func runRandomWorkload(k scheduler, seed int64, n int) []stamp {
	rng := rand.New(rand.NewSource(seed))
	var got []stamp
	next := n
	var handler func(id int) func()
	handler = func(id int) func() {
		return func() {
			got = append(got, stamp{at: k.Now(), id: id})
			for c := rng.Intn(3); c > 0; c-- {
				cid := next
				next++
				k.After(randomDelay(rng), handler(cid))
			}
		}
	}
	for i := 0; i < n; i++ {
		k.At(Cycle(rng.Intn(4*WheelSpan)), handler(i))
	}
	k.Run(200 * uint64(n)) // generous cap; the workload branches subcritically
	return got
}

func compareStamps(t *testing.T, label string, ref, got []stamp) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: dispatched %d events, reference %d", label, len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("%s: dispatch %d = %+v, reference %+v", label, i, got[i], ref[i])
		}
	}
}

func compareState(t *testing.T, label string, ref, got scheduler) {
	t.Helper()
	if ref.Now() != got.Now() {
		t.Fatalf("%s: Now = %d, reference %d", label, got.Now(), ref.Now())
	}
	if ref.Pending() != got.Pending() {
		t.Fatalf("%s: Pending = %d, reference %d", label, got.Pending(), ref.Pending())
	}
	if ref.Executed() != got.Executed() {
		t.Fatalf("%s: Executed = %d, reference %d", label, got.Executed(), ref.Executed())
	}
}

func TestWheelMatchesReferenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		ref := runRandomWorkload(NewReferenceKernel(), seed, 150)
		got := runRandomWorkload(NewKernel(), seed, 150)
		compareStamps(t, "random", ref, got)
	}
}

// TestWheelMatchesReferenceTies floods single cycles so every dispatch is
// a tie broken purely by insertion seq, including insertions from inside
// handlers at the current cycle (the same-cycle ring path).
func TestWheelMatchesReferenceTies(t *testing.T) {
	workload := func(k scheduler) []stamp {
		var got []stamp
		next := 300
		for i := 0; i < 300; i++ {
			id := i
			at := Cycle((i % 3) * WheelSpan) // three contested cycles, one per class
			k.At(at, func() {
				got = append(got, stamp{k.Now(), id})
				if id%5 == 0 {
					cid := next
					next++
					k.After(0, func() { got = append(got, stamp{k.Now(), cid}) })
				}
			})
		}
		k.Run(0)
		return got
	}
	compareStamps(t, "ties", workload(NewReferenceKernel()), workload(NewKernel()))
}

// TestWheelMatchesReferenceStopResume stops both kernels mid-run at the
// same dispatch, compares the stopped state, then drains and compares.
func TestWheelMatchesReferenceStopResume(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		workload := func(k scheduler) ([]stamp, scheduler) {
			rng := rand.New(rand.NewSource(seed))
			var got []stamp
			stopAt := 40 + rng.Intn(40)
			for i := 0; i < 200; i++ {
				id := i
				k.At(Cycle(rng.Intn(3*WheelSpan)), func() {
					got = append(got, stamp{k.Now(), id})
					if len(got) == stopAt {
						k.Stop()
					}
				})
			}
			k.Run(0)
			return got, k
		}
		refStamps, ref := workload(NewReferenceKernel())
		gotStamps, got := workload(NewKernel())
		compareStamps(t, "stopped prefix", refStamps, gotStamps)
		compareState(t, "stopped", ref, got)

		// Resume in bounded chunks, then drain.
		for ref.Pending() > 0 || got.Pending() > 0 {
			nr, ng := ref.Run(17), got.Run(17)
			if nr != ng {
				t.Fatalf("resume chunk ran %d, reference %d", ng, nr)
			}
			if nr == 0 {
				break
			}
		}
		compareState(t, "drained", ref, got)
	}
}

// TestWheelMatchesReferenceRunUntil interleaves RunUntil deadlines with
// full drains, covering deadline clamping and promotion on idle advance.
func TestWheelMatchesReferenceRunUntil(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		workload := func(k scheduler) []stamp {
			rng := rand.New(rand.NewSource(seed))
			var got []stamp
			for i := 0; i < 120; i++ {
				id := i
				k.At(Cycle(rng.Intn(4*WheelSpan)), func() {
					got = append(got, stamp{k.Now(), id})
					if id%7 == 0 {
						cid := 1000 + id
						k.After(randomDelay(rng), func() { got = append(got, stamp{k.Now(), cid}) })
					}
				})
			}
			deadline := Cycle(0)
			for j := 0; j < 12; j++ {
				deadline += Cycle(rng.Intn(WheelSpan))
				k.RunUntil(deadline)
			}
			k.Run(0)
			return got
		}
		compareStamps(t, "rununtil", workload(NewReferenceKernel()), workload(NewKernel()))
	}
}

// TestWheelMatchesReferenceBatchStraddle targets the batched per-cycle
// drain: handlers keep scheduling zero-delay events into the cycle that
// is currently draining (the batch must absorb them in insertion order),
// while bounded Run budgets cut the drain mid-batch so the next Run call
// resumes the same cycle's leftover FIFO. The reference kernel has no
// batch concept, so any ordering or accounting drift at these boundaries
// diverges the sequences.
func TestWheelMatchesReferenceBatchStraddle(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		workload := func(k scheduler) []stamp {
			rng := rand.New(rand.NewSource(seed))
			var got []stamp
			next := 100
			var handler func(id, depth int) func()
			handler = func(id, depth int) func() {
				return func() {
					got = append(got, stamp{at: k.Now(), id: id})
					if depth < 4 && rng.Intn(3) > 0 {
						// Same-cycle child: joins the batch being drained.
						cid := next
						next++
						k.After(0, handler(cid, depth+1))
					}
					if rng.Intn(4) == 0 {
						// Next-cycle child: lands just past the batch boundary.
						cid := next
						next++
						k.After(1, handler(cid, 0))
					}
				}
			}
			// Dense clusters on a handful of contested cycles.
			for i := 0; i < 100; i++ {
				k.At(Cycle(rng.Intn(5)), handler(i, 0))
			}
			// Drain in deliberately awkward budgets (1, 2, 3, ... events) so
			// Run exits inside a cycle's batch repeatedly.
			for budget := uint64(1); k.Pending() > 0 && budget < 64; budget++ {
				k.Run(budget)
			}
			k.Run(0)
			return got
		}
		refStamps := workload(NewReferenceKernel())
		gotStamps := workload(NewKernel())
		compareStamps(t, "batch straddle", refStamps, gotStamps)
	}
}

// TestKernelBatchDrainZeroAllocs guards the batch drain path: once the
// node arena is warm, draining dense same-cycle FIFOs — including
// handlers appending into the draining cycle — allocates nothing.
func TestKernelBatchDrainZeroAllocs(t *testing.T) {
	k := NewKernel()
	fns := make([]func(), 64)
	for i := range fns {
		i := i
		fns[i] = func() {
			if i%4 == 0 {
				k.After(0, func() {}) // join the currently-draining batch
			}
		}
	}
	load := func() {
		for _, fn := range fns {
			k.After(1, fn)
		}
		k.Run(0)
	}
	load() // warm the arena, ring, and closure pool
	avg := testing.AllocsPerRun(100, load)
	if avg != 0 {
		t.Errorf("batch drain allocates %.2f/run, want 0", avg)
	}
}

// TestWheelResetMidRunMatchesReference resets both kernels while events
// are still pending (the slow clearing path) and requires the following
// fresh workload to replay identically — seq restart included.
func TestWheelResetMidRunMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		workload := func(k scheduler) []stamp {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				k.At(Cycle(rng.Intn(3*WheelSpan)), func() {})
			}
			k.Run(30) // leave events pending in every structure
			k.Reset()
			return runRandomWorkload(k, seed+100, 80)
		}
		compareStamps(t, "reset", workload(NewReferenceKernel()), workload(NewKernel()))
	}
}

// TestWheelResetEquivalentToFresh pins Reset's contract directly on the
// wheel: a reset kernel replays a workload with the same dispatch
// sequence as a newly constructed one.
func TestWheelResetEquivalentToFresh(t *testing.T) {
	reused := NewKernel()
	runRandomWorkload(reused, 7, 120)
	reused.Reset()
	fresh := NewKernel()
	compareStamps(t, "reset-vs-fresh",
		runRandomWorkload(fresh, 8, 120), runRandomWorkload(reused, 8, 120))
	compareState(t, "reset-vs-fresh", fresh, reused)
}
