package sweep

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"strings"

	"specdsm/internal/fault"
)

// Checkpoint file format (version 2). A checkpoint persists the ordered
// prefix of jobs a streaming sweep has already settled — emitted rows
// and, in keep-going mode, recorded failures — so an interrupted sweep
// resumes by replaying the saved prefix and running only the remaining
// job indices. Because emission is strictly in index order, "which jobs
// are settled" is exactly "the first Rows() jobs" — at most one merge
// window of out-of-order work is lost on a crash.
//
// Layout (all integers little-endian):
//
//	magic      [8]byte  "SPDSMCKP"
//	version    uint32   2
//	keyLen     uint32
//	key        [keyLen]byte   study identity (name + config + job count)
//	count      uint64   number of frames in the payload
//	payloadLen uint64   payload size in bytes
//	payloadCRC uint32   CRC-32 (IEEE) of the whole payload
//	payload    count frames, each:
//	    len      uint32   payload byte count
//	    kind     uint8    0 = row (gob-encoded row), 1 = failure (gob string)
//	    frameCRC uint32   CRC-32 (IEEE) of len+kind+payload
//	    payload  [len]byte
//
// Version 2 adds the per-frame kind and CRC. The kind lets a failure
// (keep-going mode) occupy its index's slot in the prefix, so resume
// semantics are unchanged by partial failure; the per-frame CRC lets
// SalvageCheckpoint find the longest valid prefix of a damaged file
// instead of rejecting it whole, which the single whole-payload CRC
// cannot do.
//
// Every flush rewrites the whole snapshot to a temp file in the same
// directory and renames it over the old one, so a crash at any moment
// leaves either the previous complete snapshot or the new complete
// snapshot — never a torn file. Frames pending in memory between
// flushes are bounded by Every, and the rewrite streams the old payload
// from disk, so checkpoint memory does not scale with the sweep size.
const (
	ckptMagic   = "SPDSMCKP"
	ckptVersion = 2
)

// Frame kinds.
const (
	frameRow  = 0 // gob-encoded result row
	frameFail = 1 // gob-encoded error string (keep-going mode)
)

// frameOverhead is the per-frame byte cost beyond the payload:
// len (4) + kind (1) + frameCRC (4).
const frameOverhead = 9

// DefaultCheckpointEvery is the flush cadence used when Every is zero:
// the snapshot is rewritten after this many newly settled frames.
const DefaultCheckpointEvery = 16

// Sentinel errors for checkpoint validation. All are wrapped with the
// file path and a human-readable cause.
var (
	// ErrCheckpointExists reports that OpenCheckpoint found a previous
	// checkpoint file; the caller must either resume from it or remove it
	// — a fresh sweep never silently clobbers saved work.
	ErrCheckpointExists = errors.New("checkpoint file already exists (resume, or remove it to start over)")
	// ErrCheckpointCorrupt reports a structurally invalid checkpoint:
	// bad magic, a truncated header or payload, or a CRC mismatch.
	ErrCheckpointCorrupt = errors.New("corrupt checkpoint file")
	// ErrCheckpointMismatch reports a well-formed checkpoint that does
	// not belong to this sweep: wrong version, wrong study key, or more
	// saved rows than the sweep has jobs.
	ErrCheckpointMismatch = errors.New("checkpoint does not match this sweep")
)

// KeyMismatchError is the specific ErrCheckpointMismatch for a
// well-formed checkpoint recorded under a different study key: the file
// is readable, it just belongs to a different configuration. Stored and
// Want hold the two keys; Diff explains which fields differ.
type KeyMismatchError struct {
	Path   string
	Stored string // key recorded in the file
	Want   string // key of the current sweep
}

func (e *KeyMismatchError) Error() string {
	return fmt.Sprintf("sweep: checkpoint %s: %v: recorded for a different study/config:\n  file: %s\n  want: %s",
		e.Path, ErrCheckpointMismatch, e.Stored, e.Want)
}

// Is makes the error satisfy errors.Is(err, ErrCheckpointMismatch).
func (e *KeyMismatchError) Is(target error) bool { return target == ErrCheckpointMismatch }

// Diff compares the two keys field by field (fields are the
// "|"-separated "name=value" segments study keys are built from) and
// returns one line per difference, of the form
// "name: checkpoint has X, this run has Y". Fields missing on one side
// are reported as "(absent)". A structurally alien key yields a single
// whole-key line.
func (e *KeyMismatchError) Diff() []string {
	stored := keyFields(e.Stored)
	want := keyFields(e.Want)
	if stored == nil || want == nil {
		return []string{fmt.Sprintf("key: checkpoint has %q, this run has %q", e.Stored, e.Want)}
	}
	names := make(map[string]bool, len(stored)+len(want))
	for k := range stored {
		names[k] = true
	}
	for k := range want {
		names[k] = true
	}
	ordered := make([]string, 0, len(names))
	for k := range names {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	var diff []string
	for _, k := range ordered {
		s, sok := stored[k]
		w, wok := want[k]
		if sok && wok && s == w {
			continue
		}
		if !sok {
			s = "(absent)"
		}
		if !wok {
			w = "(absent)"
		}
		diff = append(diff, fmt.Sprintf("%s: checkpoint has %s, this run has %s", k, s, w))
	}
	return diff
}

// keyFields splits a study key into its name=value fields, keyed by
// name. The leading study-name segment (no '=') is filed under "study".
// Returns nil if the key has no recognizable structure.
func keyFields(key string) map[string]string {
	if key == "" {
		return nil
	}
	fields := make(map[string]string)
	for i, seg := range strings.Split(key, "|") {
		if name, val, ok := strings.Cut(seg, "="); ok {
			fields[name] = val
		} else if i == 0 {
			fields["study"] = seg
		} else {
			return nil
		}
	}
	return fields
}

// SalvageReport describes what SalvageCheckpoint recovered. Reason is
// empty when the file was fully valid (or absent) and nothing was
// dropped.
type SalvageReport struct {
	// Rows is the length of the valid prefix adopted (same as
	// Checkpoint.Rows()).
	Rows int
	// DroppedBytes counts payload bytes discarded after the valid
	// prefix.
	DroppedBytes int64
	// Reason describes the first defect found, empty if none.
	Reason string
}

// Checkpoint persists the settled-prefix of one streaming sweep.
// Create one with OpenCheckpoint (fresh), ResumeCheckpoint (continue,
// strict), or SalvageCheckpoint (continue, tolerating a damaged tail);
// pass it to StreamCheckpoint or StreamCheckpointFail, and frames are
// appended and flushed automatically. A Checkpoint is used from the
// merge goroutine only and is not safe for concurrent use.
type Checkpoint struct {
	fsys  fault.FS
	path  string
	key   string
	every int

	rows    int    // frames persisted in the on-disk snapshot
	payload int64  // payload bytes in the on-disk snapshot
	crc     uint32 // running CRC-32 of the on-disk payload

	pend     bytes.Buffer // serialized frames not yet flushed
	pendRows int
}

// OpenCheckpoint starts a fresh checkpoint at path for the study
// identified by key, flushing every `every` frames (0 selects
// DefaultCheckpointEvery). An existing file at path is an error
// (ErrCheckpointExists): starting over must be an explicit choice. The
// empty initial snapshot is written immediately, so an unwritable path
// fails before any simulation work is spent.
func OpenCheckpoint(path, key string, every int) (*Checkpoint, error) {
	return OpenCheckpointFS(nil, path, key, every)
}

// OpenCheckpointFS is OpenCheckpoint through an explicit filesystem
// seam (nil selects the real one); it exists so fault-injection tests
// can tear checkpoint writes.
func OpenCheckpointFS(fsys fault.FS, path, key string, every int) (*Checkpoint, error) {
	ck := newCheckpoint(fsys, path, key, every)
	if _, err := ck.fsys.Lstat(path); err == nil {
		return nil, fmt.Errorf("sweep: checkpoint %s: %w", path, ErrCheckpointExists)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
	}
	if err := ck.Flush(); err != nil {
		return nil, err
	}
	return ck, nil
}

// ResumeCheckpoint continues from the checkpoint at path. A missing file
// starts fresh (so the same resume-enabled command line works both
// before and after an interruption); an existing file is fully
// validated — magic, version, study key, frame structure, per-frame and
// whole-payload CRCs — and any defect is reported as a descriptive
// error rather than silently recomputing or panicking downstream. For a
// damaged file whose valid prefix is still worth resuming from, use
// SalvageCheckpoint instead.
func ResumeCheckpoint(path, key string, every int) (*Checkpoint, error) {
	return ResumeCheckpointFS(nil, path, key, every)
}

// ResumeCheckpointFS is ResumeCheckpoint through an explicit filesystem
// seam (nil selects the real one).
func ResumeCheckpointFS(fsys fault.FS, path, key string, every int) (*Checkpoint, error) {
	ck := newCheckpoint(fsys, path, key, every)
	f, err := ck.fsys.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return OpenCheckpointFS(fsys, path, key, every)
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
	}
	defer f.Close()
	if err := ck.load(f); err != nil {
		return nil, err
	}
	return ck, nil
}

// SalvageCheckpoint continues from the checkpoint at path, recovering
// the longest valid frame prefix of a damaged file instead of rejecting
// it. The salvage policy:
//
//   - missing file: start fresh (like ResumeCheckpoint);
//   - unreadable header or wrong format version: nothing is trustable —
//     salvage to an empty checkpoint and re-run from job 0;
//   - readable header with a different study key: hard error
//     (*KeyMismatchError) — the file belongs to a different study, and
//     "salvaging" it would silently mix configurations;
//   - valid header: scan frames, stop at the first truncated frame, bad
//     kind, or frame-CRC mismatch, adopt everything before it, and
//     rewrite the snapshot so the damage is gone from disk. The
//     header's own count/length/CRC promises are ignored — after a torn
//     flush they describe a file that no longer exists.
func SalvageCheckpoint(path, key string, every int) (*Checkpoint, SalvageReport, error) {
	return SalvageCheckpointFS(nil, path, key, every)
}

// SalvageCheckpointFS is SalvageCheckpoint through an explicit
// filesystem seam (nil selects the real one).
func SalvageCheckpointFS(fsys fault.FS, path, key string, every int) (*Checkpoint, SalvageReport, error) {
	ck := newCheckpoint(fsys, path, key, every)
	f, err := ck.fsys.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		ck, err := OpenCheckpointFS(fsys, path, key, every)
		return ck, SalvageReport{}, err
	}
	if err != nil {
		return nil, SalvageReport{}, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
	}
	rep, err := ck.salvage(f)
	f.Close()
	if err != nil {
		return nil, SalvageReport{}, err
	}
	// Rewrite the snapshot: Flush copies forward exactly the adopted
	// payload prefix under a fresh, truthful header, so the damaged tail
	// is physically gone and a later strict resume succeeds.
	if err := ck.Flush(); err != nil {
		return nil, SalvageReport{}, err
	}
	return ck, rep, nil
}

func newCheckpoint(fsys fault.FS, path, key string, every int) *Checkpoint {
	if fsys == nil {
		fsys = fault.OS
	}
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	return &Checkpoint{fsys: fsys, path: path, key: key, every: every, crc: 0}
}

// Rows returns how many frames the on-disk snapshot holds (the resume
// point: jobs [0, Rows()) will be replayed, not re-run).
func (ck *Checkpoint) Rows() int { return ck.rows }

// Path returns the checkpoint file path.
func (ck *Checkpoint) Path() string { return ck.path }

func (ck *Checkpoint) corrupt(format string, args ...any) error {
	return fmt.Errorf("sweep: checkpoint %s: %w: %s", ck.path, ErrCheckpointCorrupt, fmt.Sprintf(format, args...))
}

func (ck *Checkpoint) mismatch(format string, args ...any) error {
	return fmt.Errorf("sweep: checkpoint %s: %w: %s", ck.path, ErrCheckpointMismatch, fmt.Sprintf(format, args...))
}

// header is the decoded fixed part of a checkpoint file.
type ckptHeader struct {
	key        string
	count      uint64
	payloadLen uint64
	payloadCRC uint32
}

func (ck *Checkpoint) headerLen() int {
	return 8 + 4 + 4 + len(ck.key) + 8 + 8 + 4
}

func writeHeader(w io.Writer, key string, count, payloadLen uint64, crc uint32) error {
	var b bytes.Buffer
	b.WriteString(ckptMagic)
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) { binary.LittleEndian.PutUint32(u32[:], v); b.Write(u32[:]) }
	put64 := func(v uint64) { binary.LittleEndian.PutUint64(u64[:], v); b.Write(u64[:]) }
	put32(ckptVersion)
	put32(uint32(len(key)))
	b.WriteString(key)
	put64(count)
	put64(payloadLen)
	put32(crc)
	_, err := w.Write(b.Bytes())
	return err
}

// readHeader parses and structurally validates the header. Key
// mismatches are left to the caller, which knows the expected value.
func (ck *Checkpoint) readHeader(r io.Reader) (ckptHeader, error) {
	var h ckptHeader
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return h, ck.corrupt("file shorter than the %d-byte magic", len(magic))
	}
	if string(magic[:]) != ckptMagic {
		return h, ck.corrupt("bad magic %q (not a sweep checkpoint file)", magic[:])
	}
	var u32 [4]byte
	var u64 [8]byte
	read32 := func(what string) (uint32, error) {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return 0, ck.corrupt("truncated header: missing %s", what)
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	read64 := func(what string) (uint64, error) {
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return 0, ck.corrupt("truncated header: missing %s", what)
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	version, err := read32("version")
	if err != nil {
		return h, err
	}
	if version != ckptVersion {
		return h, ck.mismatch("format version %d, this build reads version %d", version, ckptVersion)
	}
	keyLen, err := read32("key length")
	if err != nil {
		return h, err
	}
	const maxKeyLen = 1 << 20
	if keyLen > maxKeyLen {
		return h, ck.corrupt("implausible key length %d", keyLen)
	}
	keyBuf := make([]byte, keyLen)
	if _, err := io.ReadFull(r, keyBuf); err != nil {
		return h, ck.corrupt("truncated header: key cut short")
	}
	h.key = string(keyBuf)
	if h.count, err = read64("frame count"); err != nil {
		return h, err
	}
	if h.payloadLen, err = read64("payload length"); err != nil {
		return h, err
	}
	if h.payloadCRC, err = read32("payload CRC"); err != nil {
		return h, err
	}
	return h, nil
}

// maxFrameLen bounds a single frame's payload. Real rows are small
// gobs; the bound keeps a corrupted length field from demanding a
// multi-gigabyte allocation before the CRC check can reject the frame.
const maxFrameLen = 1 << 24

// readFrame reads and verifies one frame: length, kind, per-frame CRC,
// payload. It returns io.EOF cleanly at end of input before any frame
// bytes; any other defect is an error describing it.
func readFrame(r io.Reader, crc *uint32) (kind byte, payload []byte, err error) {
	var hdr [frameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("frame header cut short")
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, fmt.Errorf("frame header cut short")
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	kind = hdr[4]
	frameCRC := binary.LittleEndian.Uint32(hdr[5:9])
	if kind != frameRow && kind != frameFail {
		return 0, nil, fmt.Errorf("unknown frame kind %d", kind)
	}
	if length > maxFrameLen {
		return 0, nil, fmt.Errorf("implausible frame length %d", length)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("frame payload cut short (%d bytes promised)", length)
	}
	sum := crc32.Update(0, crc32.IEEETable, hdr[0:5])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if sum != frameCRC {
		return 0, nil, fmt.Errorf("frame CRC mismatch (file %08x, computed %08x)", frameCRC, sum)
	}
	if crc != nil {
		*crc = crc32.Update(*crc, crc32.IEEETable, hdr[:])
		*crc = crc32.Update(*crc, crc32.IEEETable, payload)
	}
	return kind, payload, nil
}

// appendFrame serializes one frame into the pending buffer.
func (ck *Checkpoint) appendFrame(kind byte, payload []byte) {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[4] = kind
	sum := crc32.Update(0, crc32.IEEETable, hdr[0:5])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[5:9], sum)
	ck.pend.Write(hdr[:])
	ck.pend.Write(payload)
	ck.pendRows++
}

// load validates an existing checkpoint file and adopts its state.
func (ck *Checkpoint) load(f fault.ReadFile) error {
	h, err := ck.readHeader(f)
	if err != nil {
		return err
	}
	if h.key != ck.key {
		return &KeyMismatchError{Path: ck.path, Stored: h.key, Want: ck.key}
	}
	// Walk the payload frames, verifying each frame plus the byte
	// length, frame count, and CRC the header promises.
	var (
		crc      uint32
		frames   uint64
		lr       = io.LimitReader(f, int64(h.payloadLen))
		consumed = &countingReader{r: lr}
	)
	for {
		_, _, err := readFrame(consumed, &crc)
		if err == io.EOF {
			break
		}
		if err != nil {
			return ck.corrupt("frame %d: %v", frames, err)
		}
		frames++
	}
	if consumed.n != int64(h.payloadLen) {
		return ck.corrupt("truncated payload: %d of %d bytes present", consumed.n, h.payloadLen)
	}
	if frames != h.count {
		return ck.corrupt("header promises %d frames, payload holds %d", h.count, frames)
	}
	if crc != h.payloadCRC {
		return ck.corrupt("payload CRC mismatch (file %08x, computed %08x)", h.payloadCRC, crc)
	}
	if extra, err := io.CopyN(io.Discard, f, 1); err == nil && extra > 0 {
		return ck.corrupt("trailing data after the payload")
	}
	ck.rows = int(h.count)
	ck.payload = int64(h.payloadLen)
	ck.crc = crc
	return nil
}

// salvage scans the file for the longest valid frame prefix and adopts
// it, returning a report of what was dropped. The header's
// count/length/CRC fields are ignored: after a torn flush they promise
// bytes that are no longer there.
func (ck *Checkpoint) salvage(f fault.ReadFile) (SalvageReport, error) {
	var rep SalvageReport
	h, err := ck.readHeader(f)
	if err != nil {
		// Unreadable header or wrong version: nothing in the file can be
		// trusted (frame boundaries depend on the key length). Restart.
		ck.rows, ck.payload, ck.crc = 0, 0, 0
		if n, serr := io.Copy(io.Discard, f); serr == nil {
			rep.DroppedBytes = n
		}
		rep.Reason = fmt.Sprintf("unreadable header (%v); restarting from job 0", err)
		return rep, nil
	}
	if h.key != ck.key {
		return rep, &KeyMismatchError{Path: ck.path, Stored: h.key, Want: ck.key}
	}
	var (
		crc      uint32
		valid    int64
		validCRC uint32
		frames   int
		counted  = &countingReader{r: f}
	)
	for {
		kind, _, err := readFrame(counted, &crc)
		if err == io.EOF {
			break
		}
		if err != nil {
			rep.Reason = fmt.Sprintf("frame %d: %v; keeping the %d-frame prefix", frames, err, frames)
			break
		}
		_ = kind
		valid = counted.n
		validCRC = crc
		frames++
	}
	rep.DroppedBytes = counted.n - valid
	if rep.Reason == "" && rep.DroppedBytes > 0 {
		rep.Reason = fmt.Sprintf("%d trailing bytes beyond the last whole frame", rep.DroppedBytes)
	}
	ck.rows = frames
	ck.payload = valid
	ck.crc = validCRC
	rep.Rows = frames
	return rep, nil
}

// countingReader counts bytes consumed from r.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// AppendRow serializes one completed row into the pending buffer,
// flushing the snapshot when the cadence is reached. Frames must be
// appended in emission (index) order.
func AppendRow[T any](ck *Checkpoint, v T) error {
	var rec bytes.Buffer
	if err := gob.NewEncoder(&rec).Encode(&v); err != nil {
		return fmt.Errorf("sweep: checkpoint %s: encode row %d: %w", ck.path, ck.rows+ck.pendRows, err)
	}
	ck.appendFrame(frameRow, rec.Bytes())
	if ck.pendRows >= ck.every {
		return ck.Flush()
	}
	return nil
}

// AppendFail records a fatal job failure as the frame for its index, so
// a keep-going sweep's settled prefix advances past failed jobs and a
// resume neither re-runs nor forgets them. Only the error text is
// persisted.
func (ck *Checkpoint) AppendFail(err error) error {
	var rec bytes.Buffer
	if gerr := gob.NewEncoder(&rec).Encode(err.Error()); gerr != nil {
		return fmt.Errorf("sweep: checkpoint %s: encode failure %d: %w", ck.path, ck.rows+ck.pendRows, gerr)
	}
	ck.appendFrame(frameFail, rec.Bytes())
	if ck.pendRows >= ck.every {
		return ck.Flush()
	}
	return nil
}

// Flush rewrites the snapshot to include every pending frame: a temp
// file in the same directory receives the new header, the old payload
// (streamed from the previous snapshot), and the pending frames, is
// synced, and atomically renamed over the old file.
func (ck *Checkpoint) Flush() error {
	newCount := uint64(ck.rows + ck.pendRows)
	newLen := uint64(ck.payload) + uint64(ck.pend.Len())
	newCRC := crc32.Update(ck.crc, crc32.IEEETable, ck.pend.Bytes())

	tmp := ck.path + ".tmp"
	f, err := ck.fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	fail := func(err error) error {
		f.Close()
		ck.fsys.Remove(tmp)
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	if err := writeHeader(f, ck.key, newCount, newLen, newCRC); err != nil {
		return fail(err)
	}
	if ck.payload > 0 {
		old, err := ck.fsys.Open(ck.path)
		if err != nil {
			return fail(err)
		}
		if _, err := old.Seek(int64(ck.headerLen()), io.SeekStart); err != nil {
			old.Close()
			return fail(err)
		}
		if _, err := io.CopyN(f, old, ck.payload); err != nil {
			old.Close()
			return fail(err)
		}
		old.Close()
	}
	if _, err := f.Write(ck.pend.Bytes()); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		ck.fsys.Remove(tmp)
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	if err := ck.fsys.Rename(tmp, ck.path); err != nil {
		ck.fsys.Remove(tmp)
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	ck.rows = int(newCount)
	ck.payload = int64(newLen)
	ck.crc = newCRC
	ck.pend.Reset()
	ck.pendRows = 0
	return nil
}

// recordedError is a failure replayed from a checkpoint: only the
// original error's text survived serialization.
type recordedError string

func (e recordedError) Error() string { return string(e) }

// ReplayCheckpoint decodes the saved frames in order and hands each row
// to emit with its original job index. A failure frame (written by a
// keep-going sweep) is an error here: resuming such a file requires a
// failure sink — use ReplayCheckpointFail.
func ReplayCheckpoint[T any](ck *Checkpoint, emit func(i int, v T) error) error {
	return ReplayCheckpointFail(ck, emit, nil)
}

// ReplayCheckpointFail is ReplayCheckpoint with a failure sink: rows go
// to emit, recorded failures go to fail (carrying the persisted error
// text), each with its original job index. With a nil fail, a failure
// frame aborts the replay.
func ReplayCheckpointFail[T any](ck *Checkpoint, emit func(i int, v T) error, fail FailFunc) error {
	if ck.rows == 0 {
		return nil
	}
	f, err := ck.fsys.Open(ck.path)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	defer f.Close()
	if _, err := f.Seek(int64(ck.headerLen()), io.SeekStart); err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	for i := 0; i < ck.rows; i++ {
		kind, payload, err := readFrame(f, nil)
		if err != nil {
			return ck.corrupt("replay: frame %d: %v", i, err)
		}
		switch kind {
		case frameRow:
			var v T
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&v); err != nil {
				return ck.corrupt("replay: row %d does not decode: %v", i, err)
			}
			if err := emit(i, v); err != nil {
				return err
			}
		case frameFail:
			var msg string
			if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&msg); err != nil {
				return ck.corrupt("replay: failure %d does not decode: %v", i, err)
			}
			if fail == nil {
				return fmt.Errorf("sweep: checkpoint %s: job %d is a recorded failure (%s); resume with keep-going enabled or start over", ck.path, i, msg)
			}
			if err := fail(i, recordedError(msg)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ValidateJobs checks that the checkpoint's recorded frames fit a sweep
// of n jobs, with the same error StreamCheckpointFail reports — for
// callers that replay the checkpoint themselves and run the remaining
// indices through another executor (the remote dispatcher).
func (ck *Checkpoint) ValidateJobs(n int) error {
	if ck.rows > n {
		return ck.mismatch("holds %d frames but the sweep has only %d jobs", ck.rows, n)
	}
	return nil
}

// StreamCheckpoint is StreamWorker with persistence: frames already in
// the checkpoint are replayed through emit without re-running their
// jobs, the remaining indices run on the pool, and every newly emitted
// row is appended to the checkpoint (flushed on the checkpoint's
// cadence, and once more when the sweep ends, successfully or not). A
// nil checkpoint degenerates to plain StreamWorker.
//
// Because replayed rows are byte-identical to the rows the original run
// emitted and new rows are produced by the same deterministic jobs, an
// interrupted-then-resumed sweep emits exactly the sequence an
// uninterrupted run would have — at any worker count.
func StreamCheckpoint[S, T any](ctx context.Context, p *Pool, n int, ck *Checkpoint, newState func() S, fn func(ctx context.Context, s S, i int) (T, error), emit func(i int, v T) error) error {
	return StreamCheckpointFail(ctx, p, n, ck, newState, fn, emit, nil)
}

// StreamCheckpointFail is StreamCheckpoint in keep-going mode: fatal
// job failures are recorded as failure frames in the checkpoint and
// routed to fail in index order instead of aborting the sweep (see
// StreamWorkerFail). Replayed failure frames reach fail too, so an
// interrupted keep-going sweep resumes with the same complete
// emit/fail sequence an uninterrupted run would have produced.
func StreamCheckpointFail[S, T any](ctx context.Context, p *Pool, n int, ck *Checkpoint, newState func() S, fn func(ctx context.Context, s S, i int) (T, error), emit func(i int, v T) error, fail FailFunc) error {
	if ck == nil {
		return StreamWorkerFail(ctx, p, n, newState, fn, emit, fail)
	}
	if ck.rows > n {
		return ck.mismatch("holds %d frames but the sweep has only %d jobs", ck.rows, n)
	}
	if err := ReplayCheckpointFail(ck, emit, fail); err != nil {
		return err
	}
	if ck.rows == n {
		return nil
	}
	base := ck.rows
	var ckFail FailFunc
	if fail != nil {
		ckFail = func(j int, ferr error) error {
			if err := ck.AppendFail(ferr); err != nil {
				return err
			}
			return fail(base+j, ferr)
		}
	}
	err := StreamWorkerFail(ctx, p, n-base, newState,
		func(ctx context.Context, s S, j int) (T, error) { return fn(ctx, s, base+j) },
		func(j int, v T) error {
			if err := AppendRow(ck, v); err != nil {
				return err
			}
			return emit(base+j, v)
		}, ckFail)
	// Persist whatever settled even when the sweep failed or was
	// cancelled — that is the resume point. The sweep's own error wins.
	if ferr := ck.Flush(); err == nil {
		err = ferr
	}
	return err
}
