package sweep

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Checkpoint file format (version 1). A checkpoint persists the ordered
// prefix of rows a streaming sweep has already emitted, so an
// interrupted sweep resumes by replaying the saved prefix and running
// only the remaining job indices. Because emission is strictly in index
// order, "which jobs are complete" is exactly "the first Rows() jobs" —
// at most one merge window of out-of-order work is lost on a crash.
//
// Layout (all integers little-endian):
//
//	magic      [8]byte  "SPDSMCKP"
//	version    uint32   1
//	keyLen     uint32
//	key        [keyLen]byte   study identity (name + config + job count)
//	count      uint64   number of row records in the payload
//	payloadLen uint64   payload size in bytes
//	payloadCRC uint32   CRC-32 (IEEE) of the payload
//	payload    count records, each: uint32 length + gob-encoded row
//
// Every flush rewrites the whole snapshot to a temp file in the same
// directory and renames it over the old one, so a crash at any moment
// leaves either the previous complete snapshot or the new complete
// snapshot — never a torn file. Rows pending in memory between flushes
// are bounded by Every, and the rewrite streams the old payload from
// disk, so checkpoint memory does not scale with the sweep size.
const (
	ckptMagic   = "SPDSMCKP"
	ckptVersion = 1
)

// DefaultCheckpointEvery is the flush cadence used when Every is zero:
// the snapshot is rewritten after this many newly completed rows.
const DefaultCheckpointEvery = 16

// Sentinel errors for checkpoint validation. All are wrapped with the
// file path and a human-readable cause.
var (
	// ErrCheckpointExists reports that OpenCheckpoint found a previous
	// checkpoint file; the caller must either resume from it or remove it
	// — a fresh sweep never silently clobbers saved work.
	ErrCheckpointExists = errors.New("checkpoint file already exists (resume, or remove it to start over)")
	// ErrCheckpointCorrupt reports a structurally invalid checkpoint:
	// bad magic, a truncated header or payload, or a CRC mismatch.
	ErrCheckpointCorrupt = errors.New("corrupt checkpoint file")
	// ErrCheckpointMismatch reports a well-formed checkpoint that does
	// not belong to this sweep: wrong version, wrong study key, or more
	// saved rows than the sweep has jobs.
	ErrCheckpointMismatch = errors.New("checkpoint does not match this sweep")
)

// Checkpoint persists the emitted-row prefix of one streaming sweep.
// Create one with OpenCheckpoint (fresh) or ResumeCheckpoint (continue),
// pass it to StreamCheckpoint, and rows are appended and flushed
// automatically. A Checkpoint is used from the merge goroutine only and
// is not safe for concurrent use.
type Checkpoint struct {
	path  string
	key   string
	every int

	rows    int    // rows persisted in the on-disk snapshot
	payload int64  // payload bytes in the on-disk snapshot
	crc     uint32 // running CRC-32 of the on-disk payload

	pend     bytes.Buffer // serialized rows not yet flushed
	pendRows int
}

// OpenCheckpoint starts a fresh checkpoint at path for the study
// identified by key, flushing every `every` rows (0 selects
// DefaultCheckpointEvery). An existing file at path is an error
// (ErrCheckpointExists): starting over must be an explicit choice. The
// empty initial snapshot is written immediately, so an unwritable path
// fails before any simulation work is spent.
func OpenCheckpoint(path, key string, every int) (*Checkpoint, error) {
	if _, err := os.Lstat(path); err == nil {
		return nil, fmt.Errorf("sweep: checkpoint %s: %w", path, ErrCheckpointExists)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
	}
	ck := newCheckpoint(path, key, every)
	if err := ck.Flush(); err != nil {
		return nil, err
	}
	return ck, nil
}

// ResumeCheckpoint continues from the checkpoint at path. A missing file
// starts fresh (so the same resume-enabled command line works both
// before and after an interruption); an existing file is fully
// validated — magic, version, study key, row count, payload length, and
// CRC — and any defect is reported as a descriptive error rather than
// silently recomputing or panicking downstream.
func ResumeCheckpoint(path, key string, every int) (*Checkpoint, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return OpenCheckpoint(path, key, every)
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: checkpoint %s: %w", path, err)
	}
	defer f.Close()
	ck := newCheckpoint(path, key, every)
	if err := ck.load(f); err != nil {
		return nil, err
	}
	return ck, nil
}

func newCheckpoint(path, key string, every int) *Checkpoint {
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	return &Checkpoint{path: path, key: key, every: every, crc: 0}
}

// Rows returns how many rows the on-disk snapshot holds (the resume
// point: jobs [0, Rows()) will be replayed, not re-run).
func (ck *Checkpoint) Rows() int { return ck.rows }

// Path returns the checkpoint file path.
func (ck *Checkpoint) Path() string { return ck.path }

func (ck *Checkpoint) corrupt(format string, args ...any) error {
	return fmt.Errorf("sweep: checkpoint %s: %w: %s", ck.path, ErrCheckpointCorrupt, fmt.Sprintf(format, args...))
}

func (ck *Checkpoint) mismatch(format string, args ...any) error {
	return fmt.Errorf("sweep: checkpoint %s: %w: %s", ck.path, ErrCheckpointMismatch, fmt.Sprintf(format, args...))
}

// header is the decoded fixed part of a checkpoint file.
type ckptHeader struct {
	key        string
	count      uint64
	payloadLen uint64
	payloadCRC uint32
}

func (ck *Checkpoint) headerLen() int {
	return 8 + 4 + 4 + len(ck.key) + 8 + 8 + 4
}

func writeHeader(w io.Writer, key string, count, payloadLen uint64, crc uint32) error {
	var b bytes.Buffer
	b.WriteString(ckptMagic)
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) { binary.LittleEndian.PutUint32(u32[:], v); b.Write(u32[:]) }
	put64 := func(v uint64) { binary.LittleEndian.PutUint64(u64[:], v); b.Write(u64[:]) }
	put32(ckptVersion)
	put32(uint32(len(key)))
	b.WriteString(key)
	put64(count)
	put64(payloadLen)
	put32(crc)
	_, err := w.Write(b.Bytes())
	return err
}

// readHeader parses and structurally validates the header. Key/version
// mismatches are left to the caller, which knows the expected values.
func (ck *Checkpoint) readHeader(r io.Reader) (ckptHeader, error) {
	var h ckptHeader
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return h, ck.corrupt("file shorter than the %d-byte magic", len(magic))
	}
	if string(magic[:]) != ckptMagic {
		return h, ck.corrupt("bad magic %q (not a sweep checkpoint file)", magic[:])
	}
	var u32 [4]byte
	var u64 [8]byte
	read32 := func(what string) (uint32, error) {
		if _, err := io.ReadFull(r, u32[:]); err != nil {
			return 0, ck.corrupt("truncated header: missing %s", what)
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	read64 := func(what string) (uint64, error) {
		if _, err := io.ReadFull(r, u64[:]); err != nil {
			return 0, ck.corrupt("truncated header: missing %s", what)
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	version, err := read32("version")
	if err != nil {
		return h, err
	}
	if version != ckptVersion {
		return h, ck.mismatch("format version %d, this build reads version %d", version, ckptVersion)
	}
	keyLen, err := read32("key length")
	if err != nil {
		return h, err
	}
	const maxKeyLen = 1 << 20
	if keyLen > maxKeyLen {
		return h, ck.corrupt("implausible key length %d", keyLen)
	}
	keyBuf := make([]byte, keyLen)
	if _, err := io.ReadFull(r, keyBuf); err != nil {
		return h, ck.corrupt("truncated header: key cut short")
	}
	h.key = string(keyBuf)
	if h.count, err = read64("row count"); err != nil {
		return h, err
	}
	if h.payloadLen, err = read64("payload length"); err != nil {
		return h, err
	}
	if h.payloadCRC, err = read32("payload CRC"); err != nil {
		return h, err
	}
	return h, nil
}

// load validates an existing checkpoint file and adopts its state.
func (ck *Checkpoint) load(f *os.File) error {
	h, err := ck.readHeader(f)
	if err != nil {
		return err
	}
	if h.key != ck.key {
		return ck.mismatch("recorded for a different study/config:\n  file: %s\n  want: %s", h.key, ck.key)
	}
	// Walk the payload record frames, verifying the byte length, record
	// count, and CRC the header promises.
	var (
		crc      uint32
		consumed uint64
		records  uint64
		lenBuf   [4]byte
	)
	lr := io.LimitReader(f, int64(h.payloadLen))
	for consumed < h.payloadLen {
		if _, err := io.ReadFull(lr, lenBuf[:]); err != nil {
			return ck.corrupt("truncated payload: %d of %d bytes present", consumed, h.payloadLen)
		}
		crc = crc32.Update(crc, crc32.IEEETable, lenBuf[:])
		recLen := binary.LittleEndian.Uint32(lenBuf[:])
		consumed += 4
		if uint64(recLen) > h.payloadLen-consumed {
			return ck.corrupt("record %d overruns the payload (%d bytes claimed, %d remain)",
				records, recLen, h.payloadLen-consumed)
		}
		rec := make([]byte, recLen)
		if _, err := io.ReadFull(lr, rec); err != nil {
			return ck.corrupt("truncated payload: record %d cut short", records)
		}
		crc = crc32.Update(crc, crc32.IEEETable, rec)
		consumed += uint64(recLen)
		records++
	}
	if records != h.count {
		return ck.corrupt("header promises %d rows, payload holds %d", h.count, records)
	}
	if crc != h.payloadCRC {
		return ck.corrupt("payload CRC mismatch (file %08x, computed %08x)", h.payloadCRC, crc)
	}
	if extra, err := io.CopyN(io.Discard, f, 1); err == nil && extra > 0 {
		return ck.corrupt("trailing data after the payload")
	}
	ck.rows = int(h.count)
	ck.payload = int64(h.payloadLen)
	ck.crc = crc
	return nil
}

// AppendRow serializes one completed row into the pending buffer,
// flushing the snapshot when the cadence is reached. Rows must be
// appended in emission (index) order.
func AppendRow[T any](ck *Checkpoint, v T) error {
	var rec bytes.Buffer
	if err := gob.NewEncoder(&rec).Encode(&v); err != nil {
		return fmt.Errorf("sweep: checkpoint %s: encode row %d: %w", ck.path, ck.rows+ck.pendRows, err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(rec.Len()))
	ck.pend.Write(lenBuf[:])
	ck.pend.Write(rec.Bytes())
	ck.pendRows++
	if ck.pendRows >= ck.every {
		return ck.Flush()
	}
	return nil
}

// Flush rewrites the snapshot to include every pending row: a temp file
// in the same directory receives the new header, the old payload
// (streamed from the previous snapshot), and the pending records, is
// synced, and atomically renamed over the old file.
func (ck *Checkpoint) Flush() error {
	newCount := uint64(ck.rows + ck.pendRows)
	newLen := uint64(ck.payload) + uint64(ck.pend.Len())
	newCRC := crc32.Update(ck.crc, crc32.IEEETable, ck.pend.Bytes())

	tmp := ck.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	if err := writeHeader(f, ck.key, newCount, newLen, newCRC); err != nil {
		return fail(err)
	}
	if ck.payload > 0 {
		old, err := os.Open(ck.path)
		if err != nil {
			return fail(err)
		}
		if _, err := old.Seek(int64(ck.headerLen()), io.SeekStart); err != nil {
			old.Close()
			return fail(err)
		}
		if _, err := io.CopyN(f, old, ck.payload); err != nil {
			old.Close()
			return fail(err)
		}
		old.Close()
	}
	if _, err := f.Write(ck.pend.Bytes()); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	if err := os.Rename(tmp, ck.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	ck.rows = int(newCount)
	ck.payload = int64(newLen)
	ck.crc = newCRC
	ck.pend.Reset()
	ck.pendRows = 0
	return nil
}

// ReplayCheckpoint decodes the saved rows in order and hands each to
// emit with its original job index. The file was already validated at
// ResumeCheckpoint time; decode failures still surface as corruption
// errors rather than panics.
func ReplayCheckpoint[T any](ck *Checkpoint, emit func(i int, v T) error) error {
	if ck.rows == 0 {
		return nil
	}
	f, err := os.Open(ck.path)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	defer f.Close()
	if _, err := f.Seek(int64(ck.headerLen()), io.SeekStart); err != nil {
		return fmt.Errorf("sweep: checkpoint %s: %w", ck.path, err)
	}
	var lenBuf [4]byte
	for i := 0; i < ck.rows; i++ {
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			return ck.corrupt("replay: row %d frame missing", i)
		}
		rec := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(f, rec); err != nil {
			return ck.corrupt("replay: row %d cut short", i)
		}
		var v T
		if err := gob.NewDecoder(bytes.NewReader(rec)).Decode(&v); err != nil {
			return ck.corrupt("replay: row %d does not decode: %v", i, err)
		}
		if err := emit(i, v); err != nil {
			return err
		}
	}
	return nil
}

// StreamCheckpoint is StreamWorker with persistence: rows already in the
// checkpoint are replayed through emit without re-running their jobs,
// the remaining indices run on the pool, and every newly emitted row is
// appended to the checkpoint (flushed on the checkpoint's cadence, and
// once more when the sweep ends, successfully or not). A nil checkpoint
// degenerates to plain StreamWorker.
//
// Because replayed rows are byte-identical to the rows the original run
// emitted and new rows are produced by the same deterministic jobs, an
// interrupted-then-resumed sweep emits exactly the sequence an
// uninterrupted run would have — at any worker count.
func StreamCheckpoint[S, T any](ctx context.Context, p *Pool, n int, ck *Checkpoint, newState func() S, fn func(ctx context.Context, s S, i int) (T, error), emit func(i int, v T) error) error {
	if ck == nil {
		return StreamWorker(ctx, p, n, newState, fn, emit)
	}
	if ck.rows > n {
		return ck.mismatch("holds %d rows but the sweep has only %d jobs", ck.rows, n)
	}
	if err := ReplayCheckpoint(ck, emit); err != nil {
		return err
	}
	if ck.rows == n {
		return nil
	}
	base := ck.rows
	err := StreamWorker(ctx, p, n-base, newState,
		func(ctx context.Context, s S, j int) (T, error) { return fn(ctx, s, base+j) },
		func(j int, v T) error {
			if err := AppendRow(ck, v); err != nil {
				return err
			}
			return emit(base+j, v)
		})
	// Persist whatever completed even when the sweep failed or was
	// cancelled — that is the resume point. The sweep's own error wins.
	if ferr := ck.Flush(); err == nil {
		err = ferr
	}
	return err
}
