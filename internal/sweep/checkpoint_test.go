package sweep_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"specdsm/internal/sweep"
)

// row is a representative study row: nested struct, map, slice — the
// shapes the real drivers checkpoint.
type row struct {
	Index  int
	Name   string
	Values map[string]float64
	Series []int64
}

func mkRow(i int) row {
	return row{
		Index:  i,
		Name:   fmt.Sprintf("app-%d", i%3),
		Values: map[string]float64{"acc": float64(i) * 1.5, "cov": 1 / float64(i+1)},
		Series: []int64{int64(i), int64(i * i)},
	}
}

func ckPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "study.ckpt")
}

// runCheckpointed streams n jobs through a checkpoint, failing job
// failAt (-1 = none), and returns the emitted rows and error.
func runCheckpointed(t *testing.T, path string, n, workers, every, failAt int, resume bool, ran *atomic.Int64) ([]row, error) {
	t.Helper()
	var ck *sweep.Checkpoint
	var err error
	if resume {
		ck, err = sweep.ResumeCheckpoint(path, "test-study|n=unbounded", every)
	} else {
		ck, err = sweep.OpenCheckpoint(path, "test-study|n=unbounded", every)
	}
	if err != nil {
		return nil, err
	}
	var out []row
	err = sweep.StreamCheckpoint(context.Background(), sweep.New(workers), n, ck, func() struct{} { return struct{}{} },
		func(_ context.Context, _ struct{}, i int) (row, error) {
			if ran != nil {
				ran.Add(1)
			}
			if i == failAt {
				return row{}, fmt.Errorf("job %d interrupted", i)
			}
			return mkRow(i), nil
		},
		func(i int, v row) error {
			out = append(out, v)
			return nil
		})
	return out, err
}

func TestCheckpointInterruptResumeEqualsFresh(t *testing.T) {
	const n = 50
	// Uninterrupted reference run, no checkpoint.
	var want []row
	if err := sweep.Stream(context.Background(), sweep.New(1), n,
		func(_ context.Context, i int) (row, error) { return mkRow(i), nil },
		func(i int, v row) error { want = append(want, v); return nil }); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			path := ckPath(t)
			// First run dies at job 23: rows up to the last flush survive.
			if _, err := runCheckpointed(t, path, n, workers, 4, 23, false, nil); err == nil {
				t.Fatal("interrupted run reported success")
			}
			var ran atomic.Int64
			got, err := runCheckpointed(t, path, n, workers, 4, -1, true, &ran)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("resumed emission diverged from uninterrupted run:\n got %+v\nwant %+v", got, want)
			}
			if ran.Load() == n {
				t.Fatal("resume re-ran every job; checkpoint replay did nothing")
			}
		})
	}
}

func TestCheckpointCompletedSweepReplaysWithoutWork(t *testing.T) {
	path := ckPath(t)
	const n = 20
	want, err := runCheckpointed(t, path, n, 4, 3, -1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	got, err := runCheckpointed(t, path, n, 4, 3, -1, true, &ran)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Fatalf("fully checkpointed sweep still ran %d jobs", ran.Load())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed rows diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointOpenRefusesExistingFile(t *testing.T) {
	path := ckPath(t)
	if _, err := runCheckpointed(t, path, 5, 1, 2, -1, false, nil); err != nil {
		t.Fatal(err)
	}
	_, err := sweep.OpenCheckpoint(path, "test-study|n=unbounded", 2)
	if !errors.Is(err, sweep.ErrCheckpointExists) {
		t.Fatalf("err = %v, want ErrCheckpointExists", err)
	}
}

func TestCheckpointKeyMismatch(t *testing.T) {
	path := ckPath(t)
	if _, err := sweep.OpenCheckpoint(path, "study-A", 2); err != nil {
		t.Fatal(err)
	}
	_, err := sweep.ResumeCheckpoint(path, "study-B", 2)
	if !errors.Is(err, sweep.ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestCheckpointMoreRowsThanJobs(t *testing.T) {
	path := ckPath(t)
	if _, err := runCheckpointed(t, path, 30, 1, 1, -1, false, nil); err != nil {
		t.Fatal(err)
	}
	_, err := runCheckpointed(t, path, 10, 1, 1, -1, true, nil)
	if !errors.Is(err, sweep.ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	mutate := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)-5] },
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
		"flipped byte": func(b []byte) []byte { b[len(b)-3] ^= 0x01; return b },
		"trailing":     func(b []byte) []byte { return append(b, 0xde, 0xad) },
		"empty":        func(b []byte) []byte { return nil },
		"version": func(b []byte) []byte {
			b[8] = 0xfe // version field follows the 8-byte magic
			return b
		},
	}
	for name, fn := range mutate {
		fn := fn
		t.Run(name, func(t *testing.T) {
			path := ckPath(t)
			if _, err := runCheckpointed(t, path, 12, 1, 2, -1, false, nil); err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, fn(b), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = sweep.ResumeCheckpoint(path, "test-study|n=unbounded", 2)
			if err == nil {
				t.Fatal("corrupted checkpoint accepted")
			}
			if !errors.Is(err, sweep.ErrCheckpointCorrupt) && !errors.Is(err, sweep.ErrCheckpointMismatch) {
				t.Fatalf("err = %v, want corrupt/mismatch sentinel", err)
			}
		})
	}
}

func TestCheckpointResumeMissingFileStartsFresh(t *testing.T) {
	path := ckPath(t)
	got, err := runCheckpointed(t, path, 8, 2, 2, -1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("emitted %d rows, want 8", len(got))
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}
}

// TestCheckpointFlushLeavesNoTempFile pins the write-rename discipline:
// after any successful flush the temp file is gone and the snapshot is
// complete.
func TestCheckpointFlushLeavesNoTempFile(t *testing.T) {
	path := ckPath(t)
	if _, err := runCheckpointed(t, path, 9, 1, 2, -1, false, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// The snapshot must validate cleanly and hold all 9 rows.
	ck, err := sweep.ResumeCheckpoint(path, "test-study|n=unbounded", 2)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Rows() != 9 {
		t.Fatalf("snapshot holds %d rows, want 9", ck.Rows())
	}
}

// TestStreamWindowBoundsLookahead pins the bounded-merge contract: with
// Window = W, no job starts more than W indices ahead of the emission
// frontier, even when low indices are slow.
func TestStreamWindowBoundsLookahead(t *testing.T) {
	const (
		n      = 200
		window = 8
	)
	var emitted atomic.Int64
	var maxAhead atomic.Int64
	p := sweep.New(16)
	p.Window = window
	err := sweep.Stream(context.Background(), p, n,
		func(_ context.Context, i int) (int, error) {
			ahead := int64(i) - emitted.Load()
			for {
				cur := maxAhead.Load()
				if ahead <= cur || maxAhead.CompareAndSwap(cur, ahead) {
					break
				}
			}
			return i, nil
		},
		func(i, v int) error {
			emitted.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := maxAhead.Load(); got > window {
		t.Fatalf("job ran %d ahead of the merge frontier, window is %d", got, window)
	}
}
