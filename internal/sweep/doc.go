// Package sweep is a deterministic worker pool for the paper studies.
//
// Every experiment in the evaluation (Figures 7-9, Tables 3-5, the rtl
// and multi-seed sweeps) is a set of independent app×mode×depth×seed
// simulations. The pool fans those jobs out across GOMAXPROCS
// goroutines while guaranteeing that the observable outcome — results,
// their order, and which error is reported — is identical to running
// the jobs sequentially:
//
//   - Jobs are dispatched in index order and results are merged back in
//     index order, regardless of completion order.
//   - When jobs fail, the failure with the lowest index wins, exactly
//     as a sequential loop would have reported it. Dispatch of new jobs
//     stops, but lower-index jobs already in flight run to completion so
//     an earlier (more authoritative) failure is never lost.
//   - A panicking job is captured as a *PanicError rather than taking
//     down the process, on both the sequential and parallel paths.
//
// A Pool with one worker executes jobs strictly sequentially on the
// calling goroutine — byte-identical to the pre-pool study loops.
package sweep
