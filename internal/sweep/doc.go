// Package sweep is a deterministic worker pool for the paper studies.
//
// Every experiment in the evaluation (Figures 7-9, Tables 3-5, the rtl
// and multi-seed sweeps) is a set of independent app×mode×depth×seed
// simulations. The pool fans those jobs out across GOMAXPROCS
// goroutines while guaranteeing that the observable outcome — results,
// their order, and which error is reported — is identical to running
// the jobs sequentially:
//
//   - Jobs are dispatched in index order and results are merged back in
//     index order, regardless of completion order.
//   - When jobs fail, the failure with the lowest index wins, exactly
//     as a sequential loop would have reported it. Dispatch of new jobs
//     stops, but lower-index jobs already in flight run to completion so
//     an earlier (more authoritative) failure is never lost.
//   - A panicking job is captured as a *PanicError rather than taking
//     down the process, on both the sequential and parallel paths.
//
// A Pool with one worker executes jobs strictly sequentially on the
// calling goroutine — byte-identical to the pre-pool study loops.
//
// MapWorker and StreamWorker add worker-local state to the same
// contract: each worker goroutine lazily builds one state value
// (typically a machine.Arena that amortizes simulated-machine
// construction across the worker's jobs) and threads it through every
// job it claims. State never crosses workers; since job results must not
// depend on which worker ran them, the ordered-merge guarantee is
// unchanged.
//
// Streaming is bounded-memory: Pool.Window caps how far job claiming may
// run ahead of the ordered merge, so completed-but-unemitted results
// never exceed the window regardless of the total job count — the
// property that lets million-job sweeps aggregate online instead of
// buffering every result.
//
// Checkpointing makes streams restartable. A Checkpoint persists the
// emitted-row prefix (versioned header, CRC-verified payload, every
// flush an atomic temp-file+rename snapshot) and StreamCheckpoint
// replays saved rows then runs only the missing indices, so an
// interrupted-then-resumed sweep emits exactly the sequence an
// uninterrupted run would have, at any worker count. Resume validation
// is strict: truncated, corrupt, or mismatched (wrong study, wrong
// version) files fail with descriptive errors instead of silently
// recomputing.
//
// Pool.OnJobDone is an optional per-job completion hook (index +
// wall-clock duration) for live progress on big matrices; Progress
// adapts it to a log/slog logger, and ProgressETA adds completed/total
// counts plus an ETA from a sliding window of recent completions. The
// hook observes jobs, never influences them.
package sweep
