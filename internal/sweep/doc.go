// Package sweep is a deterministic worker pool for the paper studies.
//
// Every experiment in the evaluation (Figures 7-9, Tables 3-5, the rtl
// and multi-seed sweeps) is a set of independent app×mode×depth×seed
// simulations. The pool fans those jobs out across GOMAXPROCS
// goroutines while guaranteeing that the observable outcome — results,
// their order, and which error is reported — is identical to running
// the jobs sequentially:
//
//   - Jobs are dispatched in index order and results are merged back in
//     index order, regardless of completion order.
//   - When jobs fail, the failure with the lowest index wins, exactly
//     as a sequential loop would have reported it. Dispatch of new jobs
//     stops, but lower-index jobs already in flight run to completion so
//     an earlier (more authoritative) failure is never lost.
//   - A panicking job is captured as a *PanicError rather than taking
//     down the process, on both the sequential and parallel paths.
//
// A Pool with one worker executes jobs strictly sequentially on the
// calling goroutine — byte-identical to the pre-pool study loops.
//
// MapWorker and StreamWorker add worker-local state to the same
// contract: each worker goroutine lazily builds one state value
// (typically a machine.Arena that amortizes simulated-machine
// construction across the worker's jobs) and threads it through every
// job it claims. State never crosses workers; since job results must not
// depend on which worker ran them, the ordered-merge guarantee is
// unchanged.
//
// Pool.OnJobDone is an optional per-job completion hook (index +
// wall-clock duration) for live progress on big matrices; Progress
// adapts it to a log/slog logger. The hook observes jobs, never
// influences them.
package sweep
