// Package sweep is a deterministic worker pool for the paper studies.
//
// Every experiment in the evaluation (Figures 7-9, Tables 3-5, the rtl
// and multi-seed sweeps) is a set of independent app×mode×depth×seed
// simulations. The pool fans those jobs out across GOMAXPROCS
// goroutines while guaranteeing that the observable outcome — results,
// their order, and which error is reported — is identical to running
// the jobs sequentially:
//
//   - Jobs are dispatched in index order and results are merged back in
//     index order, regardless of completion order.
//   - When jobs fail, the failure with the lowest index wins, exactly
//     as a sequential loop would have reported it. Dispatch of new jobs
//     stops, but lower-index jobs already in flight run to completion so
//     an earlier (more authoritative) failure is never lost.
//   - A panicking job is captured as a *PanicError rather than taking
//     down the process, on both the sequential and parallel paths.
//
// A Pool with one worker executes jobs strictly sequentially on the
// calling goroutine — byte-identical to the pre-pool study loops.
//
// MapWorker and StreamWorker add worker-local state to the same
// contract: each worker goroutine lazily builds one state value
// (typically a machine.Arena that amortizes simulated-machine
// construction across the worker's jobs) and threads it through every
// job it claims. State never crosses workers; since job results must not
// depend on which worker ran them, the ordered-merge guarantee is
// unchanged.
//
// Streaming is bounded-memory: Pool.Window caps how far job claiming may
// run ahead of the ordered merge, so completed-but-unemitted results
// never exceed the window regardless of the total job count — the
// property that lets million-job sweeps aggregate online instead of
// buffering every result.
//
// Checkpointing makes streams restartable. A Checkpoint persists the
// emitted-row prefix (versioned header, CRC-verified payload, every
// flush an atomic temp-file+rename snapshot) and StreamCheckpoint
// replays saved rows then runs only the missing indices, so an
// interrupted-then-resumed sweep emits exactly the sequence an
// uninterrupted run would have, at any worker count. Resume validation
// is strict: truncated, corrupt, or mismatched (wrong study, wrong
// version) files fail with descriptive errors instead of silently
// recomputing.
//
// Pool.OnJobDone is an optional per-job completion hook (index +
// wall-clock duration) for live progress on big matrices; Progress
// adapts it to a log/slog logger, and ProgressETA adds completed/total
// counts plus an ETA from a sliding window of recent completions. The
// hook observes jobs, never influences them.
//
// # Failure model
//
// Job errors are classified transient or fatal. An error wrapped with
// Transient (detectable via IsTransient) is worth retrying: with
// Pool.Retries > 0 the pool reruns the job up to that many extra
// attempts before giving up, with deterministic backoff — seeded yield
// bursts derived from (RetrySeed, index, attempt), never wall-clock
// sleeps, so a retried sweep stays bit-reproducible. Everything else,
// including *PanicError, is fatal on the first attempt. Because retries
// happen inside the job slot, a sweep whose transient failures all
// resolve within budget produces output byte-identical to one that
// never failed.
//
// Fatal errors abort the sweep with the lowest-index failure, unless
// the caller supplies a FailFunc (StreamFail and the *Fail variants):
// then each fatal failure is delivered to the fail sink in strict index
// order, interleaved with emitted successes exactly as a sequential
// loop would observe them, and the sweep keeps going. Checkpoints
// record such failures as failure frames so a resumed run replays the
// same outcome rather than retrying failed indices.
//
// Resume has a second, forgiving mode: SalvageCheckpoint scans a
// damaged checkpoint and adopts the longest valid frame prefix,
// truncating torn or corrupt tails (a crash mid-rename, a bad disk) so
// the sweep recomputes only what was actually lost. A checkpoint whose
// header reads cleanly but names a different study key is never
// salvaged — that is a configuration error (*KeyMismatchError, with a
// field-by-field Diff), not damage.
//
// The fault package supplies the matching test seam: an Injector
// (Pool.Inject) deterministically injects transient job errors, job
// panics, and scheduling delays, and its FS wrapper injects short
// writes and failed renames under the checkpoint writer. All decisions
// are pure hashes of (seed, site, index, attempt), so every injected
// failure schedule replays exactly.
package sweep
