package sweep_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"specdsm/internal/sweep"
)

// FuzzCheckpointFrames feeds arbitrary bytes to the checkpoint decoder
// as a file on disk and checks the two resume paths against each other:
// neither may panic, strict success implies salvage agrees frame for
// frame, and a key mismatch is a verdict both paths must share.
func FuzzCheckpointFrames(f *testing.F) {
	const key = "fuzz-study|n=8"
	// Seed with a real two-row checkpoint plus degenerate shapes, so
	// mutation starts from structurally meaningful bytes.
	seedDir := f.TempDir()
	seedPath := filepath.Join(seedDir, "seed.ckpt")
	ck, err := sweep.OpenCheckpoint(seedPath, key, 1)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := sweep.AppendRow(ck, map[string]int{"row": i}); err != nil {
			f.Fatal(err)
		}
	}
	if err := ck.Flush(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte("SPDSMCKP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		strict, strictErr := sweep.ResumeCheckpoint(path, key, 100)

		// Salvage must never panic and only hard-fails on a readable
		// header with a foreign key.
		salvaged, rep, salvageErr := sweep.SalvageCheckpoint(path, key, 100)
		if salvageErr != nil {
			if strictErr == nil {
				t.Fatalf("strict resume accepted what salvage rejected: %v", salvageErr)
			}
			return
		}
		if strictErr == nil && strict.Rows() != salvaged.Rows() {
			t.Fatalf("strict sees %d frames, salvage kept %d", strict.Rows(), salvaged.Rows())
		}
		if strictErr == nil && rep.DroppedBytes != 0 {
			t.Fatalf("file passed strict validation but salvage dropped %d bytes", rep.DroppedBytes)
		}
		// The salvaged prefix must replay cleanly end to end (decode
		// failures surface as errors, never panics), and the rewritten
		// file must now satisfy the strict path.
		replayErr := sweep.StreamCheckpoint(context.Background(), sweep.New(1), 8, salvaged,
			func() struct{} { return struct{}{} },
			func(_ context.Context, _ struct{}, i int) (map[string]int, error) {
				return map[string]int{"row": i}, nil
			},
			func(i int, v map[string]int) error { return nil })
		_ = replayErr // may fail (e.g. valid CRC, alien gob) — it just must not panic
		if _, err := sweep.ResumeCheckpoint(path, key, 100); err != nil {
			t.Fatalf("strict resume rejects a salvage-rewritten file: %v", err)
		}
	})
}
