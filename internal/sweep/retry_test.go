package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"specdsm/internal/fault"
)

func TestTransientMarker(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
	base := errors.New("flaky")
	te := Transient(base)
	if !IsTransient(te) {
		t.Fatal("Transient error not detected by IsTransient")
	}
	if !errors.Is(te, base) {
		t.Fatal("Transient hides the wrapped error from errors.Is")
	}
	if !IsTransient(fmt.Errorf("context: %w", te)) {
		t.Fatal("IsTransient misses a wrapped transient")
	}
	if IsTransient(base) || IsTransient(nil) {
		t.Fatal("IsTransient fired on a plain error or nil")
	}
	if IsTransient(&PanicError{Index: 1, Value: "x"}) {
		t.Fatal("PanicError must never be transient")
	}
}

// TestRetryClearsTransient: a job that fails transiently a fixed number
// of times succeeds under a sufficient retry budget, with the result
// slice identical to a clean run.
func TestRetryClearsTransient(t *testing.T) {
	const n, flakes = 40, 3
	for _, workers := range []int{1, 8} {
		var attempts atomic.Int64
		perJob := make([]atomic.Int32, n)
		p := New(workers)
		p.Retries = flakes
		got, err := Map(context.Background(), p, n, func(_ context.Context, i int) (int, error) {
			attempts.Add(1)
			if a := perJob[i].Add(1); i%5 == 0 && int(a) <= flakes {
				return 0, Transient(fmt.Errorf("job %d attempt %d flaked", i, a))
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		// 8 flaky jobs (i%5==0) × 3 extra attempts each.
		if want := int64(n + 8*flakes); attempts.Load() != want {
			t.Fatalf("workers=%d: %d attempts, want %d", workers, attempts.Load(), want)
		}
	}
}

// TestRetryBudgetExhausted: a persistently transient job fails after
// exactly Retries+1 attempts, and the error surfaces to the caller.
func TestRetryBudgetExhausted(t *testing.T) {
	const budget = 4
	var attempts atomic.Int64
	p := New(1)
	p.Retries = budget
	_, err := Map(context.Background(), p, 1, func(_ context.Context, i int) (int, error) {
		attempts.Add(1)
		return 0, Transient(errors.New("never clears"))
	})
	if err == nil || !IsTransient(err) {
		t.Fatalf("err = %v, want the transient error surfaced", err)
	}
	if attempts.Load() != budget+1 {
		t.Fatalf("%d attempts, want %d", attempts.Load(), budget+1)
	}
}

// TestFatalNotRetried: errors without the Transient marker (and panics)
// consume no retry budget — they run exactly once.
func TestFatalNotRetried(t *testing.T) {
	p := New(1)
	p.Retries = 10
	var ran atomic.Int64
	_, err := Map(context.Background(), p, 1, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		return 0, errors.New("fatal")
	})
	if err == nil || ran.Load() != 1 {
		t.Fatalf("fatal error ran %d times (err=%v), want 1", ran.Load(), err)
	}
	ran.Store(0)
	_, err = Map(context.Background(), p, 1, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		panic("bug")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || ran.Load() != 1 {
		t.Fatalf("panic ran %d times (err=%v), want 1", ran.Load(), err)
	}
}

// TestInjectedFaultsParallelInvariance is the tentpole determinism
// property: with a seeded injector producing transient faults and
// scheduling delays, plus a retry budget that absorbs them, every
// worker count produces the result slice of a clean sequential run.
func TestInjectedFaultsParallelInvariance(t *testing.T) {
	const n = 200
	job := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("row %04d = %d", i, i*7), nil
	}
	clean, err := Map(context.Background(), New(1), n, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		inj := fault.New(42)
		inj.Transient = 0.3
		inj.Delay = 0.5
		inj.DelayMax = 16
		p := New(workers)
		p.Retries = 8
		p.RetrySeed = 42
		p.Inject = inj
		got, err := Map(context.Background(), p, n, job)
		if err != nil {
			t.Fatalf("workers=%d under faults: %v", workers, err)
		}
		for i := range clean {
			if got[i] != clean[i] {
				t.Fatalf("workers=%d: row %d diverged under faults: %q vs %q", workers, i, got[i], clean[i])
			}
		}
	}
}

// TestKeepGoingOrdering: in keep-going mode every index reaches exactly
// one of emit or fail, in strict index order, with an identical
// interleaving at every worker count.
func TestKeepGoingOrdering(t *testing.T) {
	const n = 150
	bad := map[int]bool{0: true, 7: true, 8: true, 77: true, 149: true}
	run := func(workers int) ([]string, []int) {
		var trace []string
		var failed []int
		err := StreamFail(context.Background(), New(workers), n,
			func(_ context.Context, i int) (int, error) {
				if bad[i] {
					return 0, fmt.Errorf("job %d broke", i)
				}
				return i * 2, nil
			},
			func(i, v int) error {
				trace = append(trace, fmt.Sprintf("ok %d=%d", i, v))
				return nil
			},
			func(i int, err error) error {
				trace = append(trace, fmt.Sprintf("fail %d: %v", i, err))
				failed = append(failed, i)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return trace, failed
	}
	ref, refFailed := run(1)
	if len(ref) != n {
		t.Fatalf("trace has %d entries, want %d", len(ref), n)
	}
	if want := []int{0, 7, 8, 77, 149}; fmt.Sprint(refFailed) != fmt.Sprint(want) {
		t.Fatalf("failed manifest = %v, want %v", refFailed, want)
	}
	for _, workers := range []int{4, 16} {
		got, gotFailed := run(workers)
		if fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("workers=%d: emit/fail interleaving diverged from sequential", workers)
		}
		if fmt.Sprint(gotFailed) != fmt.Sprint(refFailed) {
			t.Fatalf("workers=%d: failed manifest %v, want %v", workers, gotFailed, refFailed)
		}
	}
}

// TestKeepGoingFailErrorStops: the failure sink can abort the sweep,
// exactly as an emit error does.
func TestKeepGoingFailErrorStops(t *testing.T) {
	tooMuch := errors.New("too many failures")
	for _, workers := range []int{1, 8} {
		var fails int
		err := StreamFail(context.Background(), New(workers), 100,
			func(_ context.Context, i int) (int, error) {
				return 0, fmt.Errorf("job %d broke", i)
			},
			func(i, v int) error { return nil },
			func(i int, err error) error {
				fails++
				if fails == 3 {
					return tooMuch
				}
				return nil
			})
		if !errors.Is(err, tooMuch) {
			t.Fatalf("workers=%d: err = %v, want fail sink's error", workers, err)
		}
		if fails != 3 {
			t.Fatalf("workers=%d: fail sink ran %d times, want 3", workers, fails)
		}
	}
}

// TestKeepGoingRetriesFirst: keep-going composes with retry — a
// transient failure within budget still emits normally; only exhausted
// or fatal failures reach the sink.
func TestKeepGoingRetriesFirst(t *testing.T) {
	const n = 30
	var once atomic.Int32
	p := New(4)
	p.Retries = 2
	var failed []int
	err := StreamWorkerFail(context.Background(), p, n, nothing,
		func(_ context.Context, _ struct{}, i int) (int, error) {
			if i == 5 && once.Add(1) == 1 {
				return 0, Transient(errors.New("one-shot flake"))
			}
			if i == 9 {
				return 0, errors.New("hard failure")
			}
			return i, nil
		},
		func(i, v int) error { return nil },
		func(i int, err error) error {
			failed = append(failed, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(failed) != "[9]" {
		t.Fatalf("failed = %v, want just job 9 (transient flake must have been retried)", failed)
	}
}

// panicDeep gives the trimmed stack some real user frames to keep.
func panicDeep(depth int) {
	if depth == 0 {
		panic("deliberate")
	}
	panicDeep(depth - 1)
}

// TestPanicErrorMessage pins the satellite contract: Error() names the
// job index, the panic value, and a trimmed stack with file:line info —
// and the text is identical whatever worker count ran the job.
func TestPanicErrorMessage(t *testing.T) {
	var msgs []string
	for _, workers := range []int{1, 8} {
		_, err := Map(context.Background(), New(workers), 64,
			func(_ context.Context, i int) (int, error) {
				if i == 17 {
					panicDeep(3)
				}
				return i, nil
			})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		msg := pe.Error()
		if !strings.Contains(msg, "job 17 panicked: deliberate") {
			t.Fatalf("Error() = %q, want job index and value", msg)
		}
		if !strings.Contains(msg, "panicDeep") || !strings.Contains(msg, ".go:") {
			t.Fatalf("Error() = %q, want trimmed stack with function and file:line", msg)
		}
		if strings.Contains(msg, "0x") || strings.Contains(msg, "goroutine") {
			t.Fatalf("Error() = %q leaks addresses or goroutine IDs", msg)
		}
		msgs = append(msgs, msg)
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("PanicError text differs across worker counts:\n  seq: %s\n  par: %s", msgs[0], msgs[1])
	}
}

// TestInjectedPanicsKeepGoing: an injector that panics every job, under
// keep-going, yields a complete ordered manifest with deterministic
// error text at every worker count.
func TestInjectedPanicsKeepGoing(t *testing.T) {
	const n = 25
	run := func(workers int) []string {
		inj := fault.New(7)
		inj.Panic = 1.0
		p := New(workers)
		p.Inject = inj
		var rows []string
		err := StreamWorkerFail(context.Background(), p, n, nothing,
			func(_ context.Context, _ struct{}, i int) (int, error) { return i, nil },
			func(i, v int) error {
				t.Fatalf("workers=%d: job %d emitted despite injected panic", workers, i)
				return nil
			},
			func(i int, err error) error {
				rows = append(rows, fmt.Sprintf("%d: %v", i, err))
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows
	}
	ref := run(1)
	if len(ref) != n {
		t.Fatalf("manifest has %d rows, want %d", len(ref), n)
	}
	for _, workers := range []int{4, 16} {
		if got := run(workers); fmt.Sprint(got) != fmt.Sprint(ref) {
			t.Fatalf("workers=%d: failure manifest text diverged from sequential:\n%v\nvs\n%v", workers, got, ref)
		}
	}
}

// TestRetryHookFiresOncePerSuccess: OnJobDone still fires exactly once
// per successful job when attempts were retried.
func TestRetryHookFiresOncePerSuccess(t *testing.T) {
	const n = 20
	var done atomic.Int64
	var tries atomic.Int32
	p := New(4)
	p.Retries = 3
	p.OnJobDone = func(index int, _ time.Duration) { done.Add(1) }
	_, err := Map(context.Background(), p, n, func(_ context.Context, i int) (int, error) {
		if i == 3 && tries.Add(1) <= 2 {
			return 0, Transient(errors.New("flake"))
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.Load() != n {
		t.Fatalf("OnJobDone fired %d times, want %d", done.Load(), n)
	}
}
