package sweep_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"specdsm/internal/fault"
	"specdsm/internal/sweep"
)

const salvageKey = "test-study|n=unbounded"

// writeFullCheckpoint runs a complete n-job checkpointed sweep at path
// and returns the emitted rows — the clean reference for salvage tests.
func writeFullCheckpoint(t *testing.T, path string, n int) []row {
	t.Helper()
	out, err := runCheckpointed(t, path, n, 1, 4, -1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// completeSalvaged finishes the sweep from a salvaged checkpoint and
// returns every emitted row (replayed prefix + re-run remainder).
func completeSalvaged(t *testing.T, ck *sweep.Checkpoint, n int, ran *atomic.Int64) []row {
	t.Helper()
	var out []row
	err := sweep.StreamCheckpoint(context.Background(), sweep.New(1), n, ck, func() struct{} { return struct{}{} },
		func(_ context.Context, _ struct{}, i int) (row, error) {
			if ran != nil {
				ran.Add(1)
			}
			return mkRow(i), nil
		},
		func(i int, v row) error { out = append(out, v); return nil })
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSalvageOffsetClasses corrupts a real checkpoint at each byte
// offset class — header, mid-frame, trailing garbage, truncation
// mid-CRC — and verifies salvage recovers a valid prefix and the
// completed sweep matches the clean run exactly.
func TestSalvageOffsetClasses(t *testing.T) {
	const n = 12
	mutate := map[string]struct {
		fn        func(b []byte) []byte
		fullRerun bool // corruption destroys the header: expect zero rows salvaged
	}{
		"header magic":    {func(b []byte) []byte { b[3] ^= 0xff; return b }, true},
		"header version":  {func(b []byte) []byte { b[8] = 0xfe; return b }, true},
		"mid frame":       {func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }, false},
		"trailing":        {func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe) }, false},
		"truncate in crc": {func(b []byte) []byte { return b[:len(b)-2] }, false},
	}
	for name, tc := range mutate {
		tc := tc
		t.Run(name, func(t *testing.T) {
			path := ckPath(t)
			want := writeFullCheckpoint(t, path, n)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.fn(append([]byte(nil), b...)), 0o644); err != nil {
				t.Fatal(err)
			}
			// Strict resume must still reject the damage.
			if _, err := sweep.ResumeCheckpoint(path, salvageKey, 4); err == nil {
				t.Fatal("strict resume accepted a corrupted file")
			}
			ck, rep, err := sweep.SalvageCheckpoint(path, salvageKey, 4)
			if err != nil {
				t.Fatal(err)
			}
			if tc.fullRerun && ck.Rows() != 0 {
				t.Fatalf("salvaged %d rows from an unreadable header", ck.Rows())
			}
			if ck.Rows() > n {
				t.Fatalf("salvaged %d rows from an %d-row file", ck.Rows(), n)
			}
			if rep.Rows != ck.Rows() {
				t.Fatalf("report says %d rows, checkpoint has %d", rep.Rows, ck.Rows())
			}
			var ran atomic.Int64
			got := completeSalvaged(t, ck, n, &ran)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("salvaged+completed output diverged from clean run:\n got %+v\nwant %+v", got, want)
			}
			if ran.Load() != int64(n-rep.Rows) {
				t.Fatalf("re-ran %d jobs, want %d (n=%d minus %d salvaged)", ran.Load(), n-rep.Rows, n, rep.Rows)
			}
			// Salvage rewrote the file: a strict resume now succeeds.
			if _, err := sweep.ResumeCheckpoint(path, salvageKey, 4); err != nil {
				t.Fatalf("strict resume after salvage+complete: %v", err)
			}
		})
	}
}

// TestSalvageEveryByteOffset is the exhaustive sweep: flip each single
// byte of a real checkpoint file and salvage. Every offset must yield
// either a successful salvage whose completed output equals the clean
// run, or — for corruption inside the header's key region only — a
// KeyMismatchError.
func TestSalvageEveryByteOffset(t *testing.T) {
	const n = 12
	base := ckPath(t)
	want := writeFullCheckpoint(t, base, n)
	clean, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := 8 + 4 + 4 + len(salvageKey) + 8 + 8 + 4
	dir := t.TempDir()
	// Every header byte and the file tail are tested exhaustively; deep
	// payload offsets are strided (each salvage rewrite costs an fsync,
	// and mid-payload bytes are all the same offset class).
	offsets := make([]int, 0, len(clean))
	for off := range clean {
		if off < headerLen+64 || off >= len(clean)-16 || off%7 == 0 {
			offsets = append(offsets, off)
		}
	}
	for _, off := range offsets {
		b := append([]byte(nil), clean...)
		b[off] ^= 0x41
		path := filepath.Join(dir, fmt.Sprintf("off%d.ckpt", off))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, _, err := sweep.SalvageCheckpoint(path, salvageKey, 4)
		if err != nil {
			var km *sweep.KeyMismatchError
			if !errors.As(err, &km) {
				t.Fatalf("offset %d: salvage failed with %v (only key mismatch is a hard error)", off, err)
			}
			if off >= headerLen {
				t.Fatalf("offset %d is payload, but salvage saw a key mismatch", off)
			}
			continue
		}
		got := completeSalvaged(t, ck, n, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("offset %d: salvaged+completed output diverged from clean run", off)
		}
	}
}

// frameBoundaries parses a checkpoint file's frame layout and returns
// every byte offset that ends a whole frame (the header end, then one
// offset per frame) — the exact set of truncation points that leave a
// structurally clean prefix.
func frameBoundaries(t *testing.T, b []byte, key string) []int {
	t.Helper()
	off := 8 + 4 + 4 + len(key) + 8 + 8 + 4 // fixed header + key
	bounds := []int{off}
	for off < len(b) {
		if off+4 > len(b) {
			t.Fatalf("frame header straddles EOF at offset %d", off)
		}
		payload := int(binary.LittleEndian.Uint32(b[off : off+4]))
		off += 9 + payload // len + kind + frameCRC + payload
		bounds = append(bounds, off)
	}
	if off != len(b) {
		t.Fatalf("frame walk overshot: %d of %d bytes", off, len(b))
	}
	return bounds
}

// TestSalvageDegenerateFiles pins the salvage edge cases that have no
// damaged bytes to detect — the file just ends too soon: a zero-length
// file, a header-only file, and truncation exactly on a frame boundary.
// Strict resume must reject each one (the header's promises are
// unmeetable), and salvage must adopt exactly the whole frames present
// — possibly zero — and complete to the clean run's output.
func TestSalvageDegenerateFiles(t *testing.T) {
	const n = 12
	base := ckPath(t)
	want := writeFullCheckpoint(t, base, n)
	clean, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	bounds := frameBoundaries(t, clean, salvageKey)
	if len(bounds) != n+1 {
		t.Fatalf("clean file has %d frames, want %d", len(bounds)-1, n)
	}

	cases := []struct {
		name string
		cut  int // file length to keep
		rows int // frames salvage must adopt
	}{
		{"zero length", 0, 0},
		{"header only", bounds[0], 0},
		{"boundary after frame 1", bounds[1], 1},
		{"boundary mid file", bounds[n/2], n / 2},
		{"boundary before last frame", bounds[n-1], n - 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := ckPath(t)
			if err := os.WriteFile(path, clean[:tc.cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := sweep.ResumeCheckpoint(path, salvageKey, 4); err == nil {
				t.Fatal("strict resume accepted a truncated file")
			} else if !errors.Is(err, sweep.ErrCheckpointCorrupt) {
				t.Fatalf("strict resume err = %v, want ErrCheckpointCorrupt", err)
			}
			ck, rep, err := sweep.SalvageCheckpoint(path, salvageKey, 4)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Rows() != tc.rows || rep.Rows != tc.rows {
				t.Fatalf("salvaged %d rows (report %d), want %d", ck.Rows(), rep.Rows, tc.rows)
			}
			// Truncation at a boundary leaves nothing past the last whole
			// frame, so no payload bytes are dropped.
			if rep.DroppedBytes != 0 {
				t.Fatalf("DroppedBytes = %d, want 0 (cut was on a boundary)", rep.DroppedBytes)
			}
			var ran atomic.Int64
			got := completeSalvaged(t, ck, n, &ran)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("salvaged+completed output diverged from clean run:\n got %+v\nwant %+v", got, want)
			}
			if ran.Load() != int64(n-tc.rows) {
				t.Fatalf("re-ran %d jobs, want %d", ran.Load(), n-tc.rows)
			}
			if _, err := sweep.ResumeCheckpoint(path, salvageKey, 4); err != nil {
				t.Fatalf("strict resume after salvage+complete: %v", err)
			}
		})
	}
}

// keepGoingEvents runs an n-job keep-going sweep (optionally
// checkpointed) over a fixed fatal-failure set and returns the ordered
// emit/fail event log.
func keepGoingEvents(t *testing.T, path string, n, workers int, interruptAt int) ([]string, error) {
	t.Helper()
	bad := map[int]bool{3: true, 17: true, 18: true, 35: true}
	var ck *sweep.Checkpoint
	if path != "" {
		var err error
		ck, err = sweep.ResumeCheckpoint(path, salvageKey, 4)
		if err != nil {
			return nil, err
		}
	}
	var events []string
	interrupted := errors.New("interrupted")
	emit := func(i int, v row) error {
		if interruptAt >= 0 && len(events) >= interruptAt {
			return interrupted
		}
		events = append(events, fmt.Sprintf("ok %d %s", i, v.Name))
		return nil
	}
	fail := func(i int, err error) error {
		if interruptAt >= 0 && len(events) >= interruptAt {
			return interrupted
		}
		events = append(events, fmt.Sprintf("FAILED %d: %v", i, err))
		return nil
	}
	err := sweep.StreamCheckpointFail(context.Background(), sweep.New(workers), n, ck, func() struct{} { return struct{}{} },
		func(_ context.Context, _ struct{}, i int) (row, error) {
			if bad[i] {
				return row{}, fmt.Errorf("job %d broke", i)
			}
			return mkRow(i), nil
		}, emit, fail)
	return events, err
}

// TestKeepGoingCheckpointResume pins the keep-going × checkpoint
// contract: failures occupy frames, so an interrupted keep-going sweep
// resumes into exactly the event sequence (including failure text) an
// uninterrupted run produces, at any worker count.
func TestKeepGoingCheckpointResume(t *testing.T) {
	const n = 40
	want, err := keepGoingEvents(t, "", n, 1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != n {
		t.Fatalf("reference produced %d events, want %d", len(want), n)
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			path := ckPath(t)
			if _, err := keepGoingEvents(t, path, n, workers, 20); err == nil {
				t.Fatal("interrupted run reported success")
			}
			got, err := keepGoingEvents(t, path, n, workers, -1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("resumed keep-going events diverged:\n got %v\nwant %v", got, want)
			}
		})
	}
}

// TestReplayFailureFrameWithoutSink: resuming a checkpoint that holds
// failure frames without keep-going enabled must explain itself.
func TestReplayFailureFrameWithoutSink(t *testing.T) {
	path := ckPath(t)
	const n = 10
	if _, err := keepGoingEvents(t, path, n, 1, -1); err != nil {
		t.Fatal(err)
	}
	ck, err := sweep.ResumeCheckpoint(path, salvageKey, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = sweep.StreamCheckpoint(context.Background(), sweep.New(1), n, ck, func() struct{} { return struct{}{} },
		func(_ context.Context, _ struct{}, i int) (row, error) { return mkRow(i), nil },
		func(i int, v row) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "recorded failure") {
		t.Fatalf("err = %v, want a recorded-failure explanation", err)
	}
}

func TestKeyMismatchDiff(t *testing.T) {
	path := ckPath(t)
	stored := "specdsm/fig9|apps=em3d|nodes=16|iters=100|seed=1"
	current := "specdsm/fig9|apps=em3d,moldyn|nodes=32|iters=100|seed=1|faults=seed=3"
	if _, err := sweep.OpenCheckpoint(path, stored, 2); err != nil {
		t.Fatal(err)
	}
	_, err := sweep.ResumeCheckpoint(path, current, 2)
	var km *sweep.KeyMismatchError
	if !errors.As(err, &km) {
		t.Fatalf("err = %v, want *KeyMismatchError", err)
	}
	if !errors.Is(err, sweep.ErrCheckpointMismatch) {
		t.Fatal("KeyMismatchError does not satisfy ErrCheckpointMismatch")
	}
	diff := strings.Join(km.Diff(), "\n")
	for _, wantLine := range []string{
		"apps: checkpoint has em3d, this run has em3d,moldyn",
		"nodes: checkpoint has 16, this run has 32",
		"faults: checkpoint has (absent), this run has seed=3",
	} {
		if !strings.Contains(diff, wantLine) {
			t.Errorf("Diff() missing %q:\n%s", wantLine, diff)
		}
	}
	for _, same := range []string{"iters", "seed:", "study"} {
		if strings.Contains(diff, same) {
			t.Errorf("Diff() reports unchanged field %q:\n%s", same, diff)
		}
	}
}

// TestFlushSurvivesInjectedIOFaults: a flush that dies on an injected
// short write or failed rename must error without damaging the previous
// snapshot — a later strict resume sees exactly the old rows.
func TestFlushSurvivesInjectedIOFaults(t *testing.T) {
	for _, mode := range []string{"shortwrite", "rename"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			path := ckPath(t)
			const n = 8
			writeFullCheckpoint(t, path, n)

			in := fault.New(11)
			switch mode {
			case "shortwrite":
				in.ShortWrite = 1.0
			case "rename":
				in.Rename = 1.0
			}
			ck, err := sweep.ResumeCheckpointFS(fault.NewFS(in, nil), path, salvageKey, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := sweep.AppendRow(ck, mkRow(n)); err != nil {
				t.Fatal(err)
			}
			if err := ck.Flush(); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("flush err = %v, want an injected fault", err)
			}
			if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("failed flush left a temp file: %v", err)
			}
			clean, err := sweep.ResumeCheckpoint(path, salvageKey, 4)
			if err != nil {
				t.Fatalf("snapshot damaged by failed flush: %v", err)
			}
			if clean.Rows() != n {
				t.Fatalf("snapshot holds %d rows after failed flush, want %d", clean.Rows(), n)
			}
		})
	}
}
