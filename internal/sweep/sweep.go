package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"specdsm/internal/fault"
	"specdsm/internal/report"
)

// Pool sizes the worker set for Map, Stream, and their worker-state
// variants. The zero value and New(0) both select runtime.NumCPU()
// workers. Pools carry no per-sweep state and may be reused and shared
// freely; a non-nil OnJobDone must itself be safe for concurrent use.
type Pool struct {
	workers int
	// Window bounds how far job claiming may run ahead of the ordered
	// merge: a worker only starts job i once i falls within Window slots
	// of the next index to be emitted. Completed-but-unemitted results
	// are therefore capped at Window, so a streaming sweep's buffer
	// memory is a function of the window, not of the total job count.
	// Zero selects a default of max(4×workers, 64). The window only
	// throttles; it never changes results or their order.
	Window int
	// OnJobDone, when non-nil, is invoked after every successfully
	// completed job with the job's index and wall-clock duration, from
	// the goroutine that ran the job — concurrently and out of index
	// order on a multi-worker pool. It exists for progress reporting
	// (see Progress and ProgressETA) and must not affect results.
	OnJobDone func(index int, d time.Duration)
	// Retries is the per-job retry budget for transient failures: a job
	// whose error satisfies IsTransient is re-run in place — same index,
	// same worker, same worker-local state — up to Retries more times
	// before the failure becomes permanent. Fatal errors (anything not
	// marked Transient, including *PanicError) are never retried.
	// Because the retry happens inside the job slot, the ordered merge
	// is undisturbed: a sweep whose transient faults all succeed within
	// budget emits output byte-identical to a fault-free run.
	Retries int
	// RetrySeed seeds the deterministic backoff between retry attempts.
	// Backoff is measured in scheduler yields (attempt count), never
	// wall time, so retried sweeps stay reproducible and fast.
	RetrySeed uint64
	// Inject, when non-nil, threads a deterministic fault injector into
	// every job attempt: seeded transient errors, panics, and
	// scheduling delays (see internal/fault). The disabled path costs
	// one nil check per job.
	Inject *fault.Injector
}

// New returns a pool with the given worker count; n <= 0 selects
// runtime.NumCPU().
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Pool{workers: n}
}

// Workers reports the configured worker count.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.NumCPU()
	}
	return p.workers
}

// Sequential reports whether the pool degenerates to in-order,
// single-goroutine execution.
func (p *Pool) Sequential() bool { return p.Workers() == 1 }

// window resolves the merge-window size for the given worker count.
func (p *Pool) window(workers int) int {
	if p != nil && p.Window > 0 {
		return p.Window
	}
	w := 4 * workers
	if w < 64 {
		w = 64
	}
	return w
}

// mergeGate throttles job claiming so that no job whose index lies at or
// beyond base+window starts before the merge has emitted up to base.
// With emission strictly in index order this caps completed-but-unemitted
// results at window entries.
type mergeGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	base   int // results emitted so far
	window int
	closed bool
}

func newMergeGate(window int) *mergeGate {
	g := &mergeGate{window: window}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// waitTurn blocks until job i may run (i < base+window), the gate closes,
// or ctx is cancelled, and reports whether the job should still run.
func (g *mergeGate) waitTurn(ctx context.Context, i int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i >= g.base+g.window && !g.closed && ctx.Err() == nil {
		g.cond.Wait()
	}
	return !g.closed && ctx.Err() == nil
}

// advance publishes the new emitted count and wakes gated workers.
func (g *mergeGate) advance(base int) {
	g.mu.Lock()
	g.base = base
	g.mu.Unlock()
	g.cond.Broadcast()
}

// close releases every current and future waiter; used when the sweep
// stops early (failure, emit error) so gated workers can exit.
func (g *mergeGate) close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// wake re-evaluates every waiter's condition (e.g. after ctx cancel).
func (g *mergeGate) wake() { g.cond.Broadcast() }

// transientError marks an error as retryable. It is created by
// Transient and detected by IsTransient; the wrapped error stays
// reachable through errors.Is/As.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as a transient failure: one that a bounded
// retry may clear (a lost RPC, a briefly unavailable resource, an
// injected fault). The pool re-runs transient failures in place when
// Pool.Retries allows; everything else — including *PanicError — is
// fatal on first occurrence. Transient(nil) is nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err carries the Transient marker anywhere
// in its chain.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// PanicError is a panic recovered from a job, preserving the job index,
// the panic value, and the goroutine stack at the panic site. A
// PanicError is always fatal: panics indicate bugs, not conditions a
// retry could clear.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error includes the job index, the panic value, and a trimmed one-line
// stack — enough to locate a panicking worker from study output alone.
// The trimmed form is deterministic (no addresses, no goroutine IDs,
// and no frames from the pool machinery, which differ between the
// sequential and parallel paths), so output containing it stays
// byte-identical at every worker count. The full raw stack remains in
// Stack.
func (e *PanicError) Error() string {
	s := trimStack(e.Stack)
	if s == "" {
		return fmt.Sprintf("sweep: job %d panicked: %v", e.Index, e.Value)
	}
	return fmt.Sprintf("sweep: job %d panicked: %v [%s]", e.Index, e.Value, s)
}

// trimStackFrames caps how many frames the one-line stack keeps.
const trimStackFrames = 6

// trimStack compresses a debug.Stack dump into a deterministic single
// line: up to trimStackFrames frames of "func (file:line)" joined by
// " < ", innermost first. Frames above the panic site (runtime
// machinery, the pool's recover) and below the pool's job runner are
// dropped, and addresses/offsets are stripped, so two identical panics
// — whatever goroutine or worker path they happen on — trim to the same
// text.
func trimStack(stack []byte) string {
	lines := strings.Split(string(bytes.TrimSpace(stack)), "\n")
	if len(lines) > 0 && strings.HasPrefix(lines[0], "goroutine ") {
		lines = lines[1:] // drop the "goroutine N [running]:" header
	}
	var frames []string
	for i := 0; i+1 < len(lines); i += 2 {
		fn, loc := lines[i], strings.TrimSpace(lines[i+1])
		switch {
		case strings.HasPrefix(fn, "runtime"),
			strings.HasPrefix(fn, "panic("),
			strings.Contains(fn, "debug.Stack"),
			strings.Contains(fn, "internal/sweep.runOnce") && strings.Contains(fn, ".func"):
			// Machinery above the panic site: the stack grabber, the
			// pool's deferred recover, and the runtime's panic plumbing.
			continue
		}
		if strings.Contains(fn, "specdsm/internal/sweep.") {
			// The pool's own job runner: everything below differs
			// between streamSeq and the worker goroutines. If the panic
			// originated here (an injected panic), keep this one frame
			// so the line is never empty.
			if len(frames) == 0 {
				frames = append(frames, frameText(fn, loc))
			}
			break
		}
		frames = append(frames, frameText(fn, loc))
		if len(frames) == trimStackFrames {
			frames = append(frames, "...")
			break
		}
	}
	return strings.Join(frames, " < ")
}

// frameText renders one stack frame as "func (file:line)", dropping the
// argument list (which prints raw pointer words) and the "+0x.." offset.
func frameText(fn, loc string) string {
	if i := strings.LastIndexByte(fn, '('); i > 0 {
		fn = fn[:i]
	}
	if i := strings.LastIndexByte(fn, '/'); i >= 0 {
		fn = fn[i+1:]
	}
	if i := strings.Index(loc, " +0x"); i > 0 {
		loc = loc[:i]
	}
	if i := strings.LastIndexByte(loc, '/'); i >= 0 {
		loc = loc[i+1:]
	}
	if loc == "" {
		return fn
	}
	return fn + " (" + loc + ")"
}

// Map runs fn for every index in [0, n) on the pool and returns the
// results in index order. On failure it returns the error of the
// lowest-index failed job — the same error a sequential loop over the
// jobs would have returned — and no results. Cancelling ctx stops
// dispatch of not-yet-started jobs and is reported as ctx.Err() unless
// a job failure takes precedence.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapWorker(ctx, p, n, nothing,
		func(ctx context.Context, _ struct{}, i int) (T, error) { return fn(ctx, i) })
}

// MapWorker is Map with worker-local state: every worker goroutine calls
// newState once, lazily, before its first job, and that state is passed
// to each job the worker claims. It exists for expensive reusable
// per-worker scaffolding — a machine.Arena that amortizes simulated
// machine construction across a worker's jobs is the motivating case.
// State never crosses workers, and fn must keep results independent of
// which worker (and therefore which state instance) ran the job, so
// output stays identical for every worker count.
func MapWorker[S, T any](ctx context.Context, p *Pool, n int, newState func() S, fn func(ctx context.Context, s S, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := StreamWorker(ctx, p, n, newState, fn, func(i int, v T) error {
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// nothing is the no-state constructor behind Map and Stream.
func nothing() struct{} { return struct{}{} }

// Stream runs fn for every index in [0, n) on the pool and delivers
// each result to emit in index order, as soon as the result and all of
// its predecessors are available. emit always runs on the calling
// goroutine and is never invoked for an index at or beyond a failed
// one. A non-nil error from emit stops the sweep and is returned.
func Stream[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error), emit func(i int, v T) error) error {
	return StreamWorker(ctx, p, n, nothing,
		func(ctx context.Context, _ struct{}, i int) (T, error) { return fn(ctx, i) }, emit)
}

// FailFunc receives a fatal job failure in keep-going mode. It is
// called from the same goroutine as emit, in strict index order
// interleaved with emissions: for every index exactly one of emit or
// fail runs. Returning a non-nil error stops the sweep, exactly as an
// emit error would.
type FailFunc func(index int, err error) error

// StreamFail is Stream in keep-going mode: a job whose failure is
// fatal (after the pool's retry budget, if any) is routed to fail
// instead of aborting the sweep, and later jobs still run and emit.
// The sweep then returns nil even if jobs failed — the caller owns the
// failure manifest fail accumulated.
func StreamFail[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error), emit func(i int, v T) error, fail FailFunc) error {
	return StreamWorkerFail(ctx, p, n, nothing,
		func(ctx context.Context, _ struct{}, i int) (T, error) { return fn(ctx, i) }, emit, fail)
}

// StreamWorker is Stream with worker-local state (see MapWorker).
func StreamWorker[S, T any](ctx context.Context, p *Pool, n int, newState func() S, fn func(ctx context.Context, s S, i int) (T, error), emit func(i int, v T) error) error {
	return StreamWorkerFail(ctx, p, n, newState, fn, emit, nil)
}

// StreamWorkerFail is StreamWorker with an optional keep-going failure
// sink: with a nil fail the first fatal job failure stops the sweep
// (StreamWorker semantics); with a non-nil fail every index reaches
// exactly one of emit or fail, in index order, and job failures do not
// stop dispatch. Because the failed indices and their errors flow
// through the same ordered merge as results, the interleaved
// emit/fail sequence is identical at every worker count.
func StreamWorkerFail[S, T any](ctx context.Context, p *Pool, n int, newState func() S, fn func(ctx context.Context, s S, i int) (T, error), emit func(i int, v T) error, fail FailFunc) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return streamSeq(ctx, p, n, newState, fn, emit, fail)
	}

	type item struct {
		i   int
		v   T
		err error
	}
	// The merge window bounds buffered results: jobs at or beyond
	// base+window do not start until the merge catches up, so at most
	// window completed results plus workers in-flight jobs exist at any
	// moment. Sizing the channel to that bound means workers never block
	// on send and the merger is free to drain until close without any
	// further worker-side coordination.
	window := p.window(workers)
	results := make(chan item, window+workers)
	gate := newMergeGate(window)
	stopWake := context.AfterFunc(ctx, gate.wake)
	defer stopWake()
	var (
		next atomic.Int64 // next index to claim
		stop atomic.Bool  // set on failure: claim no further jobs
		wg   sync.WaitGroup
	)
	// halt stops dispatch: no new claims, and gated workers wake to exit.
	halt := func() {
		stop.Store(true)
		gate.close()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker-local state is built lazily: a worker that never
			// claims a job (all indices taken, or an early failure) never
			// pays for it.
			var (
				state    S
				hasState bool
			)
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !gate.waitTurn(ctx, i) {
					return
				}
				if !hasState {
					state = newState()
					hasState = true
				}
				v, err := runJob(ctx, p, state, i, fn)
				results <- item{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered merge. pending buffers out-of-order completions (carrying
	// their errors in keep-going mode); failIdx tracks the lowest failed
	// index seen so far. With a nil fail, dispatch stops on the first
	// failure, but in-flight lower-index jobs still finish and may lower
	// failIdx further — exactly matching what a sequential loop would
	// have hit first. With a non-nil fail, failures are buffered like
	// results and delivered to fail when their turn in the order comes.
	pending := make(map[int]item, workers)
	nextEmit := 0
	failIdx := n
	var failErr, emitErr error
	for it := range results {
		if it.err != nil && fail == nil {
			if it.i < failIdx {
				failIdx, failErr = it.i, it.err
			}
			halt()
			continue
		}
		if it.i >= failIdx || emitErr != nil {
			continue
		}
		pending[it.i] = it
		for emitErr == nil && nextEmit < failIdx {
			cur, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			var err error
			if cur.err != nil {
				err = fail(nextEmit, cur.err)
			} else {
				err = emit(nextEmit, cur.v)
			}
			if err != nil {
				emitErr = err
				halt()
				break
			}
			nextEmit++
			gate.advance(nextEmit)
		}
	}
	switch {
	case emitErr != nil && nextEmit < failIdx:
		// emit(nextEmit) failed with every job before it successful: a
		// sequential loop would have died there too, before reaching any
		// later job failure.
		return emitErr
	case failErr != nil:
		return failErr
	case emitErr != nil:
		return emitErr
	default:
		return ctx.Err()
	}
}

// streamSeq is the one-worker fast path: in-order execution on the
// calling goroutine with a single state instance, stopping at the first
// failure (or routing failures to fail in keep-going mode) — the exact
// shape of the study loops the pool replaced.
func streamSeq[S, T any](ctx context.Context, p *Pool, n int, newState func() S, fn func(ctx context.Context, s S, i int) (T, error), emit func(i int, v T) error, fail FailFunc) error {
	state := newState()
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := runJob(ctx, p, state, i, fn)
		if err != nil {
			if fail == nil {
				return err
			}
			if ferr := fail(i, err); ferr != nil {
				return ferr
			}
			continue
		}
		if err := emit(i, v); err != nil {
			return err
		}
	}
	return nil
}

// RunOne executes a single job under the pool's retry policy — the same
// code path StreamWorker runs per index, exposed for executors that
// dispatch indices one at a time (a remote shard worker). The pool
// contributes Retries, RetrySeed, Inject, and OnJobDone; workers and
// windowing do not apply. Because the retry loop, injector seams, panic
// capture, and backoff schedule are identical to the in-process pool's,
// a job's settled outcome (value or error text) is the same wherever it
// executes.
func RunOne[S, T any](ctx context.Context, p *Pool, s S, i int, fn func(ctx context.Context, s S, i int) (T, error)) (T, error) {
	return runJob(ctx, p, s, i, fn)
}

// runJob runs job i under the pool's retry policy: runOnce per attempt,
// re-running in place while the error is Transient, budget remains, and
// the context is live. Retrying in place — same index, same worker,
// same worker-local state — leaves the ordered merge untouched, so a
// sweep whose transient faults clear within budget is indistinguishable
// from a fault-free one.
func runJob[S, T any](ctx context.Context, p *Pool, s S, i int, fn func(ctx context.Context, s S, i int) (T, error)) (T, error) {
	var retries int
	if p != nil {
		retries = p.Retries
	}
	for attempt := 0; ; attempt++ {
		v, err := runOnce(ctx, p, s, i, attempt, fn)
		if err == nil || attempt >= retries || !IsTransient(err) || ctx.Err() != nil {
			return v, err
		}
		var seed uint64
		if p != nil {
			seed = p.RetrySeed
		}
		backoff(seed, i, attempt)
	}
}

// runOnce executes a single attempt of job i: injector seams first
// (delay, panic, transient error), then the job itself, with panics
// converted to *PanicError and the completion hook fired on success.
func runOnce[S, T any](ctx context.Context, p *Pool, s S, i, attempt int, fn func(ctx context.Context, s S, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	if inj := p.injector(); inj != nil {
		inj.JobDelay(i, attempt)
		if inj.JobPanic(i, attempt) {
			panic(fmt.Sprintf("%v: injected panic (job %d, attempt %d)", fault.ErrInjected, i, attempt))
		}
		if inj.JobTransient(i, attempt) {
			return v, Transient(fmt.Errorf("%w: transient job fault (job %d, attempt %d)", fault.ErrInjected, i, attempt))
		}
	}
	hook := p.jobDoneHook()
	if hook == nil {
		return fn(ctx, s, i)
	}
	start := time.Now()
	v, err = fn(ctx, s, i)
	if err == nil {
		hook(i, time.Since(start))
	}
	return v, err
}

// backoffSite salts the backoff-length hash away from the injector's
// decision sites.
const backoffSite uint64 = 0xBACC0FF

// backoff parks job i between transient attempts: a deterministic burst
// of scheduler yields whose length grows with the attempt number plus a
// small seeded jitter. Measuring backoff in yields rather than wall
// time keeps retried sweeps reproducible and keeps tests fast.
func backoff(seed uint64, i, attempt int) {
	shift := attempt
	if shift > 5 {
		shift = 5
	}
	n := (1 << shift) + int(fault.Mix(seed, backoffSite, uint64(i), uint64(attempt))%8)
	for k := 0; k < n; k++ {
		runtime.Gosched()
	}
}

// jobDoneHook returns the pool's OnJobDone callback, tolerating nil
// pools (which Workers already treats as a default pool).
func (p *Pool) jobDoneHook() func(int, time.Duration) {
	if p == nil {
		return nil
	}
	return p.OnJobDone
}

// injector returns the pool's fault injector, tolerating nil pools.
func (p *Pool) injector() *fault.Injector {
	if p == nil {
		return nil
	}
	return p.Inject
}

// Progress returns an OnJobDone callback that reports each completed
// job through logger at Info level, with the job's index, the running
// count of completed jobs, and the job's wall-clock duration. The
// returned callback is safe for concurrent use, so it can drive a
// multi-worker pool directly:
//
//	pool := sweep.New(cfg.Parallel)
//	pool.OnJobDone = sweep.Progress(slog.Default())
func Progress(logger *slog.Logger) func(index int, d time.Duration) {
	var done atomic.Int64
	return func(index int, d time.Duration) {
		logger.Info("sweep job done",
			"index", index, "completed", done.Add(1), "dur", d.Round(time.Millisecond))
	}
}

// etaWindow is how many recent completion timestamps ProgressETA keeps:
// the ETA tracks the *current* completion rate (workers warmed up, caches
// hot) rather than averaging over the whole sweep's history.
const etaWindow = 32

// ProgressETA is Progress for a sweep of known total job count: every
// completed job logs index, completed/total, duration, and an ETA
// estimated from the completion rate over a sliding window of the most
// recent completions (report.Rolling). Like Progress, the returned
// callback is safe for concurrent use and only observes the sweep.
func ProgressETA(logger *slog.Logger, total int) func(index int, d time.Duration) {
	var (
		mu    sync.Mutex
		times = report.NewRolling(etaWindow)
		done  int64
	)
	start := time.Now()
	return func(index int, d time.Duration) {
		elapsed := time.Since(start)
		mu.Lock()
		done++
		n := done
		times.Add(float64(elapsed))
		remaining := float64(total) - float64(n)
		var eta time.Duration
		if span := times.Last() - times.First(); times.N() >= 2 && span > 0 && remaining > 0 {
			// Windowed rate: N()-1 completions over the window's span.
			perJob := span / float64(times.N()-1)
			eta = time.Duration(remaining * perJob)
		} else if n > 0 && remaining > 0 {
			eta = time.Duration(remaining * float64(elapsed) / float64(n))
		}
		mu.Unlock()
		logger.Info("sweep job done",
			"index", index, "completed", n, "total", total,
			"dur", d.Round(time.Millisecond), "eta", eta.Round(100*time.Millisecond))
	}
}
