package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool sizes the worker set for Map and Stream. The zero value and
// New(0) both select runtime.NumCPU() workers. Pools are stateless and
// may be reused and shared freely.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count; n <= 0 selects
// runtime.NumCPU().
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Pool{workers: n}
}

// Workers reports the configured worker count.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.NumCPU()
	}
	return p.workers
}

// Sequential reports whether the pool degenerates to in-order,
// single-goroutine execution.
func (p *Pool) Sequential() bool { return p.Workers() == 1 }

// PanicError is a panic recovered from a job, preserving the job index,
// the panic value, and the goroutine stack at the panic site.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweep: job %d panicked: %v", e.Index, e.Value)
}

// Map runs fn for every index in [0, n) on the pool and returns the
// results in index order. On failure it returns the error of the
// lowest-index failed job — the same error a sequential loop over the
// jobs would have returned — and no results. Cancelling ctx stops
// dispatch of not-yet-started jobs and is reported as ctx.Err() unless
// a job failure takes precedence.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Stream(ctx, p, n, fn, func(i int, v T) error {
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stream runs fn for every index in [0, n) on the pool and delivers
// each result to emit in index order, as soon as the result and all of
// its predecessors are available. emit always runs on the calling
// goroutine and is never invoked for an index at or beyond a failed
// one. A non-nil error from emit stops the sweep and is returned.
func Stream[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error), emit func(i int, v T) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return streamSeq(ctx, n, fn, emit)
	}

	type item struct {
		i   int
		v   T
		err error
	}
	// Buffered to n so workers never block on send: the merger is then
	// free to drain until close without any worker-side coordination.
	results := make(chan item, n)
	var (
		next atomic.Int64 // next index to claim
		stop atomic.Bool  // set on failure: claim no further jobs
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := runJob(ctx, i, fn)
				results <- item{i: i, v: v, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered merge. pending buffers out-of-order completions; failIdx
	// tracks the lowest failed index seen so far. Dispatch stops on the
	// first failure, but in-flight lower-index jobs still finish and may
	// lower failIdx further — exactly matching what a sequential loop
	// would have hit first.
	pending := make(map[int]T, workers)
	nextEmit := 0
	failIdx := n
	var failErr, emitErr error
	for it := range results {
		if it.err != nil {
			if it.i < failIdx {
				failIdx, failErr = it.i, it.err
			}
			stop.Store(true)
			continue
		}
		if it.i >= failIdx || emitErr != nil {
			continue
		}
		pending[it.i] = it.v
		for emitErr == nil && nextEmit < failIdx {
			v, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			if err := emit(nextEmit, v); err != nil {
				emitErr = err
				stop.Store(true)
				break
			}
			nextEmit++
		}
	}
	switch {
	case emitErr != nil && nextEmit < failIdx:
		// emit(nextEmit) failed with every job before it successful: a
		// sequential loop would have died there too, before reaching any
		// later job failure.
		return emitErr
	case failErr != nil:
		return failErr
	case emitErr != nil:
		return emitErr
	default:
		return ctx.Err()
	}
}

// streamSeq is the one-worker fast path: in-order execution on the
// calling goroutine, stopping at the first failure — the exact shape of
// the study loops the pool replaced.
func streamSeq[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error), emit func(i int, v T) error) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		v, err := runJob(ctx, i, fn)
		if err != nil {
			return err
		}
		if err := emit(i, v); err != nil {
			return err
		}
	}
	return nil
}

func runJob[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}
