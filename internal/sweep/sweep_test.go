package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// mixedLatency spreads job durations so completion order differs wildly
// from submission order: early indices are the slowest.
func mixedLatency(i, n int) time.Duration {
	return time.Duration((n-i)%7) * time.Millisecond
}

func TestMapOrderedUnderMixedLatency(t *testing.T) {
	const n = 96
	for _, workers := range []int{1, 2, 4, 16, 200} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			got, err := Map(context.Background(), New(workers), n,
				func(_ context.Context, i int) (int, error) {
					time.Sleep(mixedLatency(i, n))
					return i * i, nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("len = %d, want %d", len(got), n)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestStreamEmitsInSubmissionOrder(t *testing.T) {
	const n = 200
	var order []int
	err := Stream(context.Background(), New(8), n,
		func(_ context.Context, i int) (int, error) {
			time.Sleep(mixedLatency(i, n))
			return i, nil
		},
		func(i, v int) error {
			if i != v {
				t.Fatalf("emit index %d carries value %d", i, v)
			}
			order = append(order, i)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("emitted %d of %d", len(order), n)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("emission order broken at %d: got %d", i, v)
		}
	}
}

// TestHammer floods a small pool with far more jobs than workers, all
// touching shared counters, to give the race detector something to bite
// on if the pool's coordination were unsound.
func TestHammer(t *testing.T) {
	const n = 2000
	var started, sum atomic.Int64
	got, err := Map(context.Background(), New(runtime.NumCPU()*4), n,
		func(_ context.Context, i int) (int, error) {
			started.Add(1)
			if i%13 == 0 {
				time.Sleep(time.Millisecond)
			}
			sum.Add(int64(i))
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if started.Load() != n {
		t.Fatalf("started %d of %d jobs", started.Load(), n)
	}
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestCancellationMidSweep(t *testing.T) {
	const n = 500
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(ctx, New(4), n, func(ctx context.Context, i int) (int, error) {
		if ran.Add(1) == 20 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Dispatch must stop promptly: only jobs already claimed by the 4
	// workers at cancel time may still run.
	if ran.Load() == n {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestCancellationBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		_, err := Map(ctx, New(workers), 50, func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran under a cancelled context", ran.Load())
	}
}

func TestPanicCaptured(t *testing.T) {
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, err := Map(context.Background(), New(workers), 64,
				func(_ context.Context, i int) (int, error) {
					if i == 17 {
						panic("boom")
					}
					return i, nil
				})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v (%T), want *PanicError", err, err)
			}
			if pe.Index != 17 || pe.Value != "boom" {
				t.Fatalf("PanicError = {Index:%d Value:%v}", pe.Index, pe.Value)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("panic stack not captured")
			}
		})
	}
}

// TestLowestIndexErrorWins: with many failing jobs completing in
// arbitrary order, the reported error must be the one a sequential loop
// would hit first — every time.
func TestLowestIndexErrorWins(t *testing.T) {
	const n = 120
	fail := map[int]bool{7: true, 8: true, 40: true, 90: true}
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), New(16), n,
			func(_ context.Context, i int) (int, error) {
				time.Sleep(mixedLatency(i, n))
				if fail[i] {
					return 0, fmt.Errorf("job %d failed", i)
				}
				return i, nil
			})
		if err == nil || err.Error() != "job 7 failed" {
			t.Fatalf("trial %d: err = %v, want job 7's", trial, err)
		}
	}
}

func TestErrorStopsDispatch(t *testing.T) {
	const n = 10000
	var ran atomic.Int64
	boom := errors.New("early failure")
	_, err := Map(context.Background(), New(4), n, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(50 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == n {
		t.Fatal("failure did not stop dispatch")
	}
}

func TestStreamEmitErrorStops(t *testing.T) {
	stopAt := errors.New("enough")
	var emitted []int
	err := Stream(context.Background(), New(8), 100,
		func(_ context.Context, i int) (int, error) { return i, nil },
		func(i, v int) error {
			emitted = append(emitted, i)
			if i == 5 {
				return stopAt
			}
			return nil
		})
	if !errors.Is(err, stopAt) {
		t.Fatalf("err = %v, want emit error", err)
	}
	if len(emitted) != 6 {
		t.Fatalf("emitted %v, want exactly 0..5", emitted)
	}
}

// TestSingleWorkerIsStrictlySequential pins the -parallel 1 contract:
// jobs run one at a time, in order, on the calling goroutine.
func TestSingleWorkerIsStrictlySequential(t *testing.T) {
	var order []int // no lock: single-worker jobs must not overlap
	_, err := Map(context.Background(), New(1), 50,
		func(_ context.Context, i int) (int, error) {
			order = append(order, i)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("execution order broken at %d: got %d", i, v)
		}
	}
}

func TestSequentialStopsAtFirstError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(context.Background(), New(1), 50,
		func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			if i == 3 {
				return 0, errors.New("stop here")
			}
			return i, nil
		})
	if err == nil || err.Error() != "stop here" {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() != 4 {
		t.Fatalf("ran %d jobs, want exactly 4", ran.Load())
	}
}

func TestPoolDefaults(t *testing.T) {
	if got := New(0).Workers(); got != runtime.NumCPU() {
		t.Fatalf("New(0).Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := New(-3).Workers(); got != runtime.NumCPU() {
		t.Fatalf("New(-3).Workers() = %d", got)
	}
	var p *Pool
	if got := p.Workers(); got != runtime.NumCPU() {
		t.Fatalf("nil pool Workers() = %d", got)
	}
	if !New(1).Sequential() || New(2).Sequential() {
		t.Fatal("Sequential misreports")
	}
	if got := New(7).Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7", got)
	}
}

func TestZeroJobs(t *testing.T) {
	got, err := Map(context.Background(), New(8), 0,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestParallelMatchesSequential is the core determinism property the
// studies rely on: for pure functions of the index, any worker count
// yields exactly the sequential result slice.
func TestParallelMatchesSequential(t *testing.T) {
	const n = 300
	job := func(_ context.Context, i int) (string, error) {
		time.Sleep(mixedLatency(i, n))
		return fmt.Sprintf("r%04d", i*3), nil
	}
	seq, err := Map(context.Background(), New(1), n, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 32} {
		par, err := Map(context.Background(), New(workers), n, job)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: result %d diverged: %q vs %q", workers, i, seq[i], par[i])
			}
		}
	}
}
