package sweep_test

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specdsm/internal/sweep"
)

// counter is a toy worker-local state standing in for a run arena.
type counter struct {
	id   int64
	jobs int
}

// TestMapWorkerStateStaysWithinWorker checks the worker-state contract:
// every job sees a state instance, a state never runs two jobs
// concurrently, and the number of states built never exceeds the worker
// count (lazy construction may build fewer).
func TestMapWorkerStateStaysWithinWorker(t *testing.T) {
	const n = 64
	var built atomic.Int64
	newState := func() *counter {
		return &counter{id: built.Add(1)}
	}
	out, err := sweep.MapWorker(context.Background(), sweep.New(4), n, newState,
		func(_ context.Context, s *counter, i int) (int64, error) {
			s.jobs++ // unsynchronized: the race detector verifies exclusivity
			time.Sleep(time.Duration(i%3) * time.Millisecond)
			return s.id, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	if b := built.Load(); b < 1 || b > 4 {
		t.Fatalf("built %d states for a 4-worker pool", b)
	}
	for i, id := range out {
		if id < 1 || id > built.Load() {
			t.Fatalf("job %d ran with unknown state id %d", i, id)
		}
	}
}

// TestMapWorkerSequentialBuildsOneState pins the one-worker fast path:
// a single state instance carries the whole sweep, in order.
func TestMapWorkerSequentialBuildsOneState(t *testing.T) {
	var built, order []int
	_, err := sweep.MapWorker(context.Background(), sweep.New(1), 5,
		func() int { built = append(built, len(built)); return 42 },
		func(_ context.Context, s int, i int) (int, error) {
			if s != 42 {
				t.Fatalf("job %d got state %d", i, s)
			}
			order = append(order, i)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 1 {
		t.Fatalf("sequential path built %d states, want 1", len(built))
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("sequential order = %v", order)
	}
}

// TestOnJobDoneReportsEveryJob checks the progress hook fires exactly
// once per successful job with a plausible duration, on both the
// sequential and the parallel path.
func TestOnJobDoneReportsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 16
		var (
			mu   sync.Mutex
			seen = map[int]time.Duration{}
		)
		p := sweep.New(workers)
		p.OnJobDone = func(i int, d time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := seen[i]; dup {
				t.Errorf("workers=%d: job %d reported twice", workers, i)
			}
			seen[i] = d
		}
		_, err := sweep.Map(context.Background(), p, n,
			func(_ context.Context, i int) (int, error) {
				time.Sleep(100 * time.Microsecond)
				return i, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != n {
			t.Fatalf("workers=%d: hook fired for %d jobs, want %d", workers, len(seen), n)
		}
		for i, d := range seen {
			if d <= 0 {
				t.Errorf("workers=%d: job %d reported non-positive duration %v", workers, i, d)
			}
		}
	}
}

// TestOnJobDoneSkipsFailedJobs checks that failed jobs do not report.
func TestOnJobDoneSkipsFailedJobs(t *testing.T) {
	var fired atomic.Int64
	p := sweep.New(1)
	p.OnJobDone = func(int, time.Duration) { fired.Add(1) }
	_, err := sweep.Map(context.Background(), p, 5,
		func(_ context.Context, i int) (int, error) {
			if i == 3 {
				return 0, fmt.Errorf("boom")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("want error")
	}
	if got := fired.Load(); got != 3 {
		t.Fatalf("hook fired %d times, want 3 (jobs 0-2)", got)
	}
}

// TestProgressLogsThroughSlog checks the slog adapter: every completed
// job produces one Info line carrying index, completed count, and
// duration.
func TestProgressLogsThroughSlog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	p := sweep.New(4)
	p.OnJobDone = sweep.Progress(logger)
	const n = 8
	_, err := sweep.Map(context.Background(), p, n,
		func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != n {
		t.Fatalf("got %d log lines, want %d:\n%s", len(lines), n, buf.String())
	}
	for i := 0; i < n; i++ {
		if !strings.Contains(buf.String(), fmt.Sprintf("index=%d", i)) {
			t.Errorf("no log line for job index %d", i)
		}
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("completed=%d", n)) {
		t.Errorf("final completed count %d never logged", n)
	}
}

// TestProgressETALogsTotalsAndETA checks the ETA adapter: every job
// logs completed/total, and an eta attribute appears once enough
// completions exist to estimate a rate.
func TestProgressETALogsTotalsAndETA(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	const n = 12
	p := sweep.New(4)
	p.OnJobDone = sweep.ProgressETA(logger, n)
	_, err := sweep.Map(context.Background(), p, n,
		func(_ context.Context, i int) (int, error) {
			time.Sleep(200 * time.Microsecond)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != n {
		t.Fatalf("got %d log lines, want %d:\n%s", len(lines), n, out)
	}
	if !strings.Contains(out, fmt.Sprintf("total=%d", n)) {
		t.Errorf("total never logged:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("completed=%d", n)) {
		t.Errorf("final completed count never logged:\n%s", out)
	}
	if !strings.Contains(out, "eta=") {
		t.Errorf("no eta attribute logged:\n%s", out)
	}
}

// lockedWriter serializes concurrent handler writes in the test.
type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
