// Package trace captures the coherence message streams observed at the
// DSM directories and replays them into predictors offline.
//
// The paper's predictor evaluation (§7.1–7.3) is a function of the
// per-block message streams alone; capturing them once and replaying them
// makes predictor studies cheap (no re-simulation) and lets external
// traces be evaluated with the same machinery. A Recorder attaches to a
// running machine exactly like a passive predictor, so the captured
// stream is — by construction — identical to what an online predictor
// would have observed.
package trace
