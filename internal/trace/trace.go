package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

// Event is one directory-incoming coherence message.
type Event struct {
	// Cycle is the directory processing time.
	Cycle int64 `json:"c"`
	// Addr encodes the block (home node in the top bits, see mem.MakeAddr).
	Addr uint64 `json:"a"`
	// Type is the message type (core.MsgType numeric value).
	Type uint8 `json:"t"`
	// Node is the message source.
	Node uint16 `json:"n"`
}

// Trace is a captured run.
type Trace struct {
	Workload string  `json:"workload"`
	Nodes    int     `json:"nodes"`
	Seed     int64   `json:"seed"`
	Events   []Event `json:"events"`
}

// Blocks returns the number of distinct blocks in the trace.
func (t *Trace) Blocks() int {
	seen := make(map[uint64]struct{})
	for _, e := range t.Events {
		seen[e.Addr] = struct{}{}
	}
	return len(seen)
}

// Clock provides the current simulation time (implemented by sim.Kernel).
type Clock interface {
	Now() sim.Cycle
}

// Recorder captures directory message streams. It satisfies
// core.Predictor so it can be attached wherever a passive predictor can;
// all prediction surfaces are inert.
type Recorder struct {
	clock Clock
	trace Trace
}

// NewRecorder creates a recorder stamping events with the given clock.
func NewRecorder(clock Clock, workload string, nodes int, seed int64) *Recorder {
	return &Recorder{
		clock: clock,
		trace: Trace{Workload: workload, Nodes: nodes, Seed: seed},
	}
}

// Trace returns the captured trace (shared, not copied).
func (r *Recorder) Trace() *Trace { return &r.trace }

// Observe implements core.Predictor by recording the message.
func (r *Recorder) Observe(addr mem.BlockAddr, obs core.Observation) core.Outcome {
	var cycle int64
	if r.clock != nil {
		cycle = int64(r.clock.Now())
	}
	r.trace.Events = append(r.trace.Events, Event{
		Cycle: cycle,
		Addr:  uint64(addr),
		Type:  uint8(obs.Type),
		Node:  uint16(obs.Node),
	})
	return core.Outcome{}
}

// Name implements core.Predictor.
func (r *Recorder) Name() string { return "Recorder" }

// HistoryDepth implements core.Predictor.
func (r *Recorder) HistoryDepth() int { return 0 }

// Stats implements core.Predictor.
func (r *Recorder) Stats() core.Stats { return core.Stats{} }

// Census implements core.Predictor.
func (r *Recorder) Census() core.Census { return core.Census{} }

// PredictReaders implements core.Predictor (inert).
func (r *Recorder) PredictReaders(mem.BlockAddr) (core.ReadPrediction, bool) {
	return core.ReadPrediction{}, false
}

// PredictNext implements core.Predictor (inert).
func (r *Recorder) PredictNext(mem.BlockAddr) (core.Symbol, bool) {
	return core.Symbol{}, false
}

// PredictsUpgradeBy implements core.Predictor (inert).
func (r *Recorder) PredictsUpgradeBy(mem.BlockAddr, mem.NodeID) bool { return false }

// SWIAllowed implements core.Predictor (inert).
func (r *Recorder) SWIAllowed(mem.BlockAddr) bool { return false }

// SWIGuard implements core.Predictor (inert).
func (r *Recorder) SWIGuard(mem.BlockAddr) core.SWIGuard { return core.SWIGuard{} }

// AssumeReaders implements core.Predictor (inert).
func (r *Recorder) AssumeReaders(mem.BlockAddr, mem.ReaderVec) {}

// RetractReader implements core.Predictor (inert).
func (r *Recorder) RetractReader(mem.BlockAddr, mem.NodeID) {}

// Reset implements core.Predictor.
func (r *Recorder) Reset() { r.trace.Events = nil }

var _ core.Predictor = (*Recorder)(nil)

// Replay feeds the trace's events, in captured order, to each predictor
// and returns nothing; inspect the predictors' Stats/Census afterwards.
// Captured order preserves per-block arrival order, which is all the
// (per-block) two-level predictors depend on.
func Replay(t *Trace, predictors ...core.Predictor) {
	for _, e := range t.Events {
		obs := core.Observation{Type: core.MsgType(e.Type), Node: mem.NodeID(e.Node)}
		for _, p := range predictors {
			p.Observe(mem.BlockAddr(e.Addr), obs)
		}
	}
}

// fileHeader guards the serialization format.
const formatVersion = 1

type fileEnvelope struct {
	Format  int    `json:"format"`
	Version int    `json:"version"`
	Trace   *Trace `json:"trace"`
}

// Write serializes the trace as JSON.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(fileEnvelope{Format: formatVersion, Version: formatVersion, Trace: t}); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	var env fileEnvelope
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if env.Format != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format %d", env.Format)
	}
	if env.Trace == nil {
		return nil, fmt.Errorf("trace: empty envelope")
	}
	return env.Trace, nil
}
