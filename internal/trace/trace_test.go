package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"specdsm/internal/core"
	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

func sampleTrace() *Trace {
	t := &Trace{Workload: "test", Nodes: 4, Seed: 7}
	rng := rand.New(rand.NewSource(3))
	blocks := []mem.BlockAddr{
		mem.MakeAddr(0, 1), mem.MakeAddr(1, 2), mem.MakeAddr(2, 3),
	}
	types := []core.MsgType{core.MsgRead, core.MsgWrite, core.MsgUpgrade, core.MsgAckInv, core.MsgWriteback}
	for i := 0; i < 500; i++ {
		t.Events = append(t.Events, Event{
			Cycle: int64(i * 10),
			Addr:  uint64(blocks[rng.Intn(len(blocks))]),
			Type:  uint8(types[rng.Intn(len(types))]),
			Node:  uint16(rng.Intn(4)),
		})
	}
	return t
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := Read(strings.NewReader(`{"format":99,"trace":{"nodes":1}}`)); err == nil {
		t.Fatal("expected format error")
	}
	if _, err := Read(strings.NewReader(`{"format":1}`)); err == nil {
		t.Fatal("expected empty-envelope error")
	}
}

func TestBlocksCount(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Blocks(); got != 3 {
		t.Fatalf("Blocks = %d, want 3", got)
	}
}

func TestRecorderCaptures(t *testing.T) {
	k := sim.NewKernel()
	r := NewRecorder(k, "wl", 4, 9)
	addr := mem.MakeAddr(1, 5)
	k.At(100, func() {
		r.Observe(addr, core.Observation{Type: core.MsgRead, Node: 2})
	})
	k.Run(0)
	tr := r.Trace()
	if len(tr.Events) != 1 {
		t.Fatalf("%d events", len(tr.Events))
	}
	e := tr.Events[0]
	if e.Cycle != 100 || e.Addr != uint64(addr) || core.MsgType(e.Type) != core.MsgRead || e.Node != 2 {
		t.Fatalf("event = %+v", e)
	}
	if tr.Workload != "wl" || tr.Nodes != 4 || tr.Seed != 9 {
		t.Fatalf("metadata = %+v", tr)
	}
	r.Reset()
	if len(r.Trace().Events) != 0 {
		t.Fatal("reset failed")
	}
}

func TestRecorderIsInertPredictor(t *testing.T) {
	r := NewRecorder(nil, "", 2, 0)
	addr := mem.MakeAddr(0, 0)
	if out := r.Observe(addr, core.Observation{Type: core.MsgRead, Node: 1}); out.Tracked {
		t.Fatal("recorder must not score")
	}
	if _, ok := r.PredictReaders(addr); ok {
		t.Fatal("recorder must not predict")
	}
	if _, ok := r.PredictNext(addr); ok {
		t.Fatal("recorder must not predict")
	}
	if r.PredictsUpgradeBy(addr, 1) || r.SWIAllowed(addr) {
		t.Fatal("recorder speculation surface must be inert")
	}
	if s := r.Stats(); s != (core.Stats{}) {
		t.Fatal("recorder has no stats")
	}
}

// The defining property: replaying a captured stream into a predictor
// produces exactly the stats an identical predictor accumulated online.
func TestReplayMatchesOnlineObservation(t *testing.T) {
	tr := sampleTrace()
	online := core.NewVMSP(1)
	// Online: feed observations directly (as a directory would).
	for _, e := range tr.Events {
		online.Observe(mem.BlockAddr(e.Addr), core.Observation{
			Type: core.MsgType(e.Type),
			Node: mem.NodeID(e.Node),
		})
	}
	offline := core.NewVMSP(1)
	Replay(tr, offline)
	if online.Stats() != offline.Stats() {
		t.Fatalf("stats diverge: online %+v offline %+v", online.Stats(), offline.Stats())
	}
	if online.Census() != offline.Census() {
		t.Fatalf("census diverges: %+v vs %+v", online.Census(), offline.Census())
	}
}

func TestReplayMultiplePredictors(t *testing.T) {
	tr := sampleTrace()
	cosmos := core.NewCosmos(1)
	msp := core.NewMSP(2)
	Replay(tr, cosmos, msp)
	if cosmos.Stats().Tracked == 0 || msp.Stats().Tracked == 0 {
		t.Fatal("predictors saw nothing")
	}
	if cosmos.Stats().Tracked <= msp.Stats().Tracked {
		t.Fatal("Cosmos must track more (acks)")
	}
}
