package workload

import (
	"specdsm/internal/machine"
	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

// AppBT reproduces the NAS block-tridiagonal solver's sharing pattern
// (§7.1, §7.4): gaussian elimination over a cube of subcubes, proceeding
// along the x, y, and z dimensions in successive phases. Within a phase
// the processors form a pipeline along that dimension: each reads its
// predecessor's boundary blocks, computes, writes its own boundary, and
// re-reads its own values for the next step (which defeats SWI).
//
// Blocks on a subcube edge are consumed by a *different* successor in each
// dimension, so with history depth one every predictor confuses the
// alternating consumers — and, as the paper observes, the invalidation
// acknowledgements let Cosmos slightly out-predict MSP here, because the
// previous consumer's ack identifies the current dimension. Depth two
// disambiguates and pushes accuracy to ~100% (Figure 8).
func AppBT(p Params) []machine.Program {
	p = p.withDefaults(18)
	b := newBuild(p)
	facePerNodePerDim := p.scaled(5)
	edgePerNode := p.scaled(2)

	// Arrange nodes in a gx × gy × gz grid.
	gx, gy, gz := gridDims(p.Nodes)
	coord := func(n int) (int, int, int) {
		return n % gx, (n / gx) % gy, n / (gx * gy)
	}
	succ := func(n, dim int) mem.NodeID {
		x, y, z := coord(n)
		switch dim {
		case 0:
			x = (x + 1) % gx
		case 1:
			y = (y + 1) % gy
		default:
			z = (z + 1) % gz
		}
		return mem.NodeID(x + y*gx + z*gx*gy)
	}
	pipePos := func(n, dim int) int {
		x, y, z := coord(n)
		switch dim {
		case 0:
			return x
		case 1:
			return y
		default:
			return z
		}
	}

	// Face blocks participate in one dimension; edge blocks in two, with
	// a different consumer in each.
	type faceBlock struct {
		addr mem.BlockAddr
		prod mem.NodeID
		dim  int
	}
	type edgeBlock struct {
		addr mem.BlockAddr
		prod mem.NodeID
		dims [2]int
	}
	var faces []faceBlock
	var edges []edgeBlock
	idx := 0
	for n := 0; n < b.nodes; n++ {
		prod := mem.NodeID(n)
		for dim := 0; dim < 3; dim++ {
			for i := 0; i < facePerNodePerDim; i++ {
				faces = append(faces, faceBlock{b.allocRR(idx), prod, dim})
				idx++
			}
		}
		for i := 0; i < edgePerNode; i++ {
			edges = append(edges, edgeBlock{b.allocRR(idx), prod, [2]int{0, 1}})
			idx++
		}
	}

	// Phases cycle x, y, z. p.Iterations counts phases.
	for it := 0; it < p.Iterations; it++ {
		dim := it % 3
		// Pipeline stagger along the active dimension.
		for n := 0; n < b.nodes; n++ {
			b.compute(mem.NodeID(n), sim.Cycle(pipePos(n, dim))*1800+b.jitter(50, 200))
		}
		// Consumers read the predecessor's boundary written last phase;
		// producers then write their boundary and re-read it.
		for _, f := range faces {
			if f.dim != dim {
				continue
			}
			c := succ(int(f.prod), dim)
			b.read(c, f.addr)
			b.compute(c, b.jitter(80, 60))
		}
		for _, e := range edges {
			if e.dims[0] != dim && e.dims[1] != dim {
				continue
			}
			c := succ(int(e.prod), dim)
			b.read(c, e.addr)
			b.compute(c, b.jitter(80, 60))
		}
		// The elimination is a read-modify-write of the producer's own
		// boundary: the read is a visible remote request (blocks are homed
		// round-robin) that First-Read speculation can cover, and — after
		// an SWI recall — it is exactly the "producer reads the block upon
		// writing to it" behaviour that makes SWI premature in appbt.
		for _, f := range faces {
			if f.dim != dim {
				continue
			}
			b.compute(f.prod, b.jitter(60, 40))
			b.read(f.prod, f.addr)
			b.write(f.prod, f.addr)
		}
		for _, e := range edges {
			if e.dims[0] != dim && e.dims[1] != dim {
				continue
			}
			b.compute(e.prod, b.jitter(60, 40))
			b.read(e.prod, e.addr)
			b.write(e.prod, e.addr)
		}
		// The elimination immediately consumes the freshly written values
		// for the next step; normally these re-reads hit in the cache, but
		// after an SWI recall they miss — the paper's "producer reads the
		// block upon writing to it" failure mode for SWI in appbt.
		for _, f := range faces {
			if f.dim != dim {
				continue
			}
			b.read(f.prod, f.addr)
		}
		for _, e := range edges {
			if e.dims[0] != dim && e.dims[1] != dim {
				continue
			}
			b.read(e.prod, e.addr)
		}
		// Interior subcube elimination: local computation.
		for n := 0; n < b.nodes; n++ {
			b.compute(mem.NodeID(n), b.jitter(26000, 2000))
		}
		b.barrierAll()
	}
	return b.progs
}

// gridDims factors n into a 3-D grid, preferring wide x.
func gridDims(n int) (int, int, int) {
	switch {
	case n >= 16 && n%16 == 0:
		return 4, 2, 2 * (n / 16)
	case n%8 == 0:
		return 4, 2, n / 8
	case n%4 == 0:
		return 2, 2, n / 4
	case n%2 == 0:
		return 2, 1, n / 2
	default:
		return n, 1, 1
	}
}
