package workload

import (
	"specdsm/internal/machine"
	"specdsm/internal/mem"
)

// Barnes reproduces the SPLASH-2 N-body simulation's sharing pattern
// (§7.1, §7.4): processors traverse a shared octree whose structure is
// rebuilt every iteration. Each tree block has a stable writer (the owner
// of that region of space) but its reader set churns between iterations
// and the readers arrive in a different order every time (a processor's
// traversal workload changes with the octree). The result is the paper's
// worst case: low pattern reuse (low coverage), read re-ordering that
// hurts MSP but not VMSP, acknowledgement arrivals that are stable (so
// MSP does not beat Cosmos here), and a communication ratio low enough
// that speculation barely moves execution time (Figure 9).
func Barnes(p Params) []machine.Program {
	p = p.withDefaults(10)
	b := newBuild(p)
	treeBlocks := p.scaled(6 * p.Nodes)
	const readerChurn = 0.2

	type treeBlock struct {
		addr    mem.BlockAddr
		writer  mem.NodeID
		readers []mem.NodeID
	}
	blocks := make([]treeBlock, treeBlocks)
	for i := range blocks {
		writer := mem.NodeID(i % b.nodes)
		deg := 1 + b.rng.Intn(4)
		blocks[i] = treeBlock{
			addr:    b.allocRR(i),
			writer:  writer,
			readers: b.pickOthers(deg, writer),
		}
	}

	for it := 0; it < p.Iterations; it++ {
		// Tree rebuild: every block is rewritten by its owner; the reader
		// set churns, modeling bodies moving between octree cells. The
		// build inserts bodies in two passes, so each block is written
		// multiple times — which is why SWI's early-invalidation heuristic
		// fails on barnes (§7.4).
		for i := range blocks {
			if b.rng.Float64() < readerChurn {
				deg := 1 + b.rng.Intn(4)
				blocks[i].readers = b.pickOthers(deg, blocks[i].writer)
			}
			b.compute(blocks[i].writer, b.jitter(80, 60))
			b.write(blocks[i].writer, blocks[i].addr)
		}
		for i := range blocks {
			b.compute(blocks[i].writer, b.jitter(40, 30))
			b.write(blocks[i].writer, blocks[i].addr)
		}
		b.barrierAll()
		// Force computation: partial, re-ordered traversals. Each reader
		// visits its blocks in a fresh random order with heavy compute
		// between reads (barnes is computation-bound).
		reads := make([][]mem.BlockAddr, b.nodes)
		for _, blk := range blocks {
			for _, r := range blk.readers {
				reads[r] = append(reads[r], blk.addr)
			}
		}
		for n := 0; n < b.nodes; n++ {
			r := mem.NodeID(n)
			order := b.perm(len(reads[r]))
			b.compute(r, b.jitter(200, 2000))
			for _, j := range order {
				b.read(r, reads[r][j])
				b.compute(r, b.jitter(700, 500))
			}
		}
		b.barrierAll()
		// Per-iteration body updates: purely local heavy compute.
		for n := 0; n < b.nodes; n++ {
			b.compute(mem.NodeID(n), b.jitter(45000, 5000))
		}
		b.barrierAll()
	}
	return b.progs
}
