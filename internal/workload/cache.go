package workload

import (
	"sync"

	"specdsm/internal/machine"
)

// Generation cache: workload generation is deterministic in (app, Params),
// and study sweeps instantiate the same workload many times — every
// predictor-study/speculation-study pair regenerates each application,
// and each benchmark iteration regenerates the whole matrix. Programs
// returns one shared, immutable program set per distinct (app, Params)
// instead.
//
// Immutability contract: cached programs are shared across goroutines and
// machine runs, so neither callers nor the machine layer may ever mutate
// a returned Program (the simulator only reads them; generators build
// fresh slices before publishing).

// genKey identifies one cached generation. Params is a comparable struct
// of scalars, so the raw value (pre-defaulting) is the key; two Params
// that normalize to the same defaults but are spelled differently simply
// occupy two entries.
type genKey struct {
	name string
	p    Params
}

var genCache = struct {
	sync.Mutex
	m map[genKey][]machine.Program
}{m: make(map[genKey][]machine.Program)}

// genCacheCap bounds the cache. Study matrices touch a few dozen
// (app, params) cells; past the cap the whole cache is dropped and
// rebuilt on demand, keeping worst-case growth bounded without LRU
// bookkeeping (regeneration is deterministic, so correctness is
// unaffected).
const genCacheCap = 64

// Programs returns the generated programs for app at p, serving repeated
// identical requests from a process-wide concurrency-safe cache. The
// returned programs are shared: callers must treat them as immutable.
//
// Generation runs outside the lock so concurrent sweep workers warming
// different cells never serialize behind each other; if two workers race
// on the same key, both generate (deterministically identical) programs
// and the first insert wins, so every caller observes one shared
// instance per key.
func Programs(app App, p Params) []machine.Program {
	key := genKey{name: app.Name, p: p}
	genCache.Lock()
	progs, ok := genCache.m[key]
	genCache.Unlock()
	if ok {
		return progs
	}
	progs = app.Generate(p)
	genCache.Lock()
	defer genCache.Unlock()
	if won, ok := genCache.m[key]; ok {
		return won
	}
	if len(genCache.m) >= genCacheCap {
		clear(genCache.m)
	}
	genCache.m[key] = progs
	return progs
}
