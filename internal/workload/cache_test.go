package workload

import (
	"reflect"
	"sync"
	"testing"
)

// TestProgramsCacheSharesGenerations checks that identical (app, Params)
// requests return the same shared program set (same backing storage, not
// a regeneration), while any parameter change produces a distinct one.
func TestProgramsCacheSharesGenerations(t *testing.T) {
	app, _ := ByName("em3d")
	p := Params{Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 11}
	a := Programs(app, p)
	b := Programs(app, p)
	if &a[0][0] != &b[0][0] {
		t.Fatal("identical requests returned distinct generations; cache miss")
	}
	p2 := p
	p2.Seed = 12
	c := Programs(app, p2)
	if &a[0][0] == &c[0][0] {
		t.Fatal("different seeds share one generation")
	}
	// Cached output must equal a direct generation.
	if !reflect.DeepEqual(a, app.Generate(p)) {
		t.Fatal("cached programs differ from direct generation")
	}
}

// TestProgramsCacheConcurrent hammers one key from many goroutines; the
// race detector checks the cache's synchronization and every caller must
// observe an identical program set.
func TestProgramsCacheConcurrent(t *testing.T) {
	app, _ := ByName("moldyn")
	p := Params{Nodes: 8, Iterations: 2, Scale: 0.25, Seed: 77}
	want := Programs(app, p)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := Programs(app, p)
				if &got[0][0] != &want[0][0] {
					t.Error("concurrent caller observed a different generation")
					return
				}
			}
		}()
	}
	wg.Wait()
}
