// Package workload generates the per-processor programs for the seven
// shared-memory applications of the paper's evaluation (Table 2): appbt,
// barnes, em3d, moldyn, ocean, tomcatv, and unstructured.
//
// The generators are synthetic: rather than executing the original
// binaries (the paper used the Wisconsin Wind Tunnel II on real inputs),
// each generator reproduces the application's *sharing pattern* as the
// paper characterizes it in §7 — producer/consumer degree, migratory
// chains, stencil neighbourhoods, read re-ordering, phase-alternating
// consumers, rapidly-changing octree sharing. Pattern-based predictors and
// the FR/SWI speculation hardware observe only per-block coherence message
// streams and their timing, so generators that reproduce those streams
// exercise exactly the behaviour the paper evaluates (see DESIGN.md §2 for
// the substitution argument).
//
// All randomness is drawn from a seeded source; generation is
// deterministic for a given Params — which is what lets Programs serve
// repeated (app, Params) requests from a process-wide cache. Cached
// program sets are shared across goroutines and machine runs and are
// immutable by contract: the simulator only reads them, and no caller
// may modify a returned Program.
package workload
