package workload

import (
	"specdsm/internal/machine"
	"specdsm/internal/mem"
)

// EM3D reproduces the Split-C electromagnetic kernel's sharing pattern
// (paper §7.1, §7.4): a static bipartite graph of E and H nodes where each
// producer writes its own blocks exactly once per iteration and a small,
// fixed set of remote consumers (mean read degree ~2.4, matching the
// paper's "small read-sharing degree" and its 58% FR coverage) reads them.
//
// The pattern is maximally SWI-friendly: the producer never touches a
// block again until the next iteration, so a write to the next block
// reliably signals completion of the previous one — the paper measures 98%
// of writes speculatively invalidated and 95% of reads triggered.
func EM3D(p Params) []machine.Program {
	p = p.withDefaults(16)
	b := newBuild(p)
	blocksPerNode := p.scaled(12)
	// Per-node phase offsets are fixed for the whole run: em3d's schedule
	// is static, so consumers arrive in the same order every iteration
	// (the paper finds em3d highly predictable even for MSP).
	stagger := make([]int, b.nodes)
	for n := range stagger {
		stagger[n] = 100 + b.rng.Intn(1400)
	}

	type sharedBlock struct {
		addr      mem.BlockAddr
		owner     mem.NodeID
		consumers []mem.NodeID
	}
	mkPhase := func() []sharedBlock {
		var out []sharedBlock
		for n := 0; n < b.nodes; n++ {
			owner := mem.NodeID(n)
			for i := 0; i < blocksPerNode; i++ {
				deg := 2
				if b.rng.Float64() < 0.4 {
					deg = 3
				}
				out = append(out, sharedBlock{
					addr:      b.alloc(owner),
					owner:     owner,
					consumers: b.pickOthers(deg, owner),
				})
			}
		}
		return out
	}
	eBlocks := mkPhase() // E values computed from H neighbours
	hBlocks := mkPhase() // H values computed from E neighbours

	phase := func(blocks []sharedBlock) {
		// Local (non-shared) graph nodes: pure computation.
		for n := 0; n < b.nodes; n++ {
			b.compute(mem.NodeID(n), b.jitter(20000, 1500))
		}
		// Producers update their owned values, one write per block, with
		// the compute of the stencil kernel between writes.
		for _, blk := range blocks {
			b.compute(blk.owner, b.jitter(40, 30))
			b.write(blk.owner, blk.addr)
		}
		b.barrierAll()
		// Consumers read their remote dependencies in a fixed (static
		// graph) order, staggered by their own local work.
		reads := make([][]mem.BlockAddr, b.nodes)
		for _, blk := range blocks {
			for _, c := range blk.consumers {
				reads[c] = append(reads[c], blk.addr)
			}
		}
		for n := 0; n < b.nodes; n++ {
			c := mem.NodeID(n)
			b.compute(c, b.jitter(stagger[c], 40))
			for _, a := range reads[c] {
				b.read(c, a)
				b.compute(c, b.jitter(60, 20))
			}
		}
		b.barrierAll()
	}

	for it := 0; it < p.Iterations; it++ {
		phase(eBlocks)
		phase(hBlocks)
	}
	return b.progs
}
