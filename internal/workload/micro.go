package workload

import (
	"specdsm/internal/machine"
	"specdsm/internal/mem"
)

// MicroParams configures the micro-pattern generators used by examples
// and tests.
type MicroParams struct {
	Nodes      int
	Blocks     int
	Iterations int
	// Readers is the consumer count per block (ProducerConsumer).
	Readers int
	// ChainLen is the visit chain length (MigratoryPattern).
	ChainLen int
	Seed     int64
}

func (p MicroParams) withDefaults() MicroParams {
	if p.Nodes == 0 {
		p.Nodes = 4
	}
	if p.Blocks == 0 {
		p.Blocks = 8
	}
	if p.Iterations == 0 {
		p.Iterations = 6
	}
	if p.Readers == 0 {
		p.Readers = 2
	}
	if p.ChainLen == 0 {
		p.ChainLen = 3
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// ProducerConsumer builds the canonical sharing pattern of the paper's
// running example (Figures 2-4): node 0 writes each block once per
// iteration; a fixed set of consumers reads it, staggered.
func ProducerConsumer(p MicroParams) []machine.Program {
	p = p.withDefaults()
	b := newBuild(Params{Nodes: p.Nodes, Seed: p.Seed, Scale: 1, Iterations: p.Iterations})
	producer := mem.NodeID(0)
	addrs := make([]mem.BlockAddr, p.Blocks)
	consumers := make([][]mem.NodeID, p.Blocks)
	for i := range addrs {
		addrs[i] = b.alloc(producer)
		consumers[i] = b.pickOthers(p.Readers, producer)
	}
	for it := 0; it < p.Iterations; it++ {
		for _, a := range addrs {
			b.compute(producer, b.jitter(40, 20))
			b.write(producer, a)
		}
		b.barrierAll()
		reads := make([][]mem.BlockAddr, p.Nodes)
		for i, a := range addrs {
			for _, c := range consumers[i] {
				reads[c] = append(reads[c], a)
			}
		}
		for n := 0; n < p.Nodes; n++ {
			c := mem.NodeID(n)
			b.compute(c, b.jitter(100, 900))
			for _, a := range reads[c] {
				b.read(c, a)
				b.compute(c, b.jitter(50, 30))
			}
		}
		b.barrierAll()
	}
	return b.progs
}

// MigratoryPattern builds pure migratory sharing: each block is visited by
// a fixed chain of processors, each performing a read followed by a write.
func MigratoryPattern(p MicroParams) []machine.Program {
	p = p.withDefaults()
	b := newBuild(Params{Nodes: p.Nodes, Seed: p.Seed, Scale: 1, Iterations: p.Iterations})
	type chainBlock struct {
		addr  mem.BlockAddr
		chain []mem.NodeID
	}
	blocks := make([]chainBlock, p.Blocks)
	for i := range blocks {
		var chain []mem.NodeID
		for _, n := range b.perm(p.Nodes)[:p.ChainLen] {
			chain = append(chain, mem.NodeID(n))
		}
		blocks[i] = chainBlock{addr: b.allocRR(i), chain: chain}
	}
	for it := 0; it < p.Iterations; it++ {
		for _, blk := range blocks {
			for k, proc := range blk.chain {
				b.compute(proc, b.jitter(200+k*900, 200))
				b.read(proc, blk.addr)
				b.write(proc, blk.addr)
			}
		}
		b.barrierAll()
	}
	return b.progs
}

// StencilPattern builds near-neighbour sharing: each node owns a strip of
// blocks; the right neighbour reads the boundary each iteration.
func StencilPattern(p MicroParams) []machine.Program {
	p = p.withDefaults()
	b := newBuild(Params{Nodes: p.Nodes, Seed: p.Seed, Scale: 1, Iterations: p.Iterations})
	type bBlock struct {
		addr mem.BlockAddr
		prod mem.NodeID
		cons mem.NodeID
	}
	blocks := make([]bBlock, 0, p.Nodes*p.Blocks)
	idx := 0
	for n := 0; n < p.Nodes; n++ {
		for i := 0; i < p.Blocks; i++ {
			blocks = append(blocks, bBlock{
				addr: b.allocRR(idx),
				prod: mem.NodeID(n),
				cons: mem.NodeID((n + 1) % p.Nodes),
			})
			idx++
		}
	}
	for it := 0; it < p.Iterations; it++ {
		for _, blk := range blocks {
			b.compute(blk.prod, b.jitter(50, 30))
			b.read(blk.prod, blk.addr)
			b.write(blk.prod, blk.addr)
		}
		b.barrierAll()
		for _, blk := range blocks {
			b.compute(blk.cons, b.jitter(60, 40))
			b.read(blk.cons, blk.addr)
		}
		b.barrierAll()
	}
	return b.progs
}
