package workload

import (
	"specdsm/internal/machine"
	"specdsm/internal/mem"
)

// Moldyn reproduces the CHARMM-like molecular dynamics sharing pattern
// (§7.1, §7.4): a producer/consumer phase over particle coordinates with a
// small read degree — where the producer re-reads its blocks shortly after
// writing them, defeating SWI — plus a static migratory phase accumulating
// partial forces, where fixed processor chains perform read+upgrade pairs
// and SWI succeeds (the paper measures 68% of writes speculatively
// invalidated, all from the migratory phase).
func Moldyn(p Params) []machine.Program {
	p = p.withDefaults(14)
	b := newBuild(p)
	pcPerNode := p.scaled(10)
	chains := p.scaled(3 * p.Nodes)
	const chainLen = 3
	// Static interaction lists: consumer arrival order is stable across
	// iterations (the paper finds moldyn's producer/consumer phase highly
	// predictable even with MSP).
	stagger := make([]int, b.nodes)
	for n := range stagger {
		stagger[n] = 100 + b.rng.Intn(1200)
	}

	// Producer/consumer coordinate blocks, homed at their producer.
	type pcBlock struct {
		addr      mem.BlockAddr
		owner     mem.NodeID
		consumers []mem.NodeID
	}
	var pcBlocks []pcBlock
	for n := 0; n < b.nodes; n++ {
		owner := mem.NodeID(n)
		for i := 0; i < pcPerNode; i++ {
			pcBlocks = append(pcBlocks, pcBlock{
				addr:      b.alloc(owner),
				owner:     owner,
				consumers: b.pickOthers(3, owner),
			})
		}
	}

	// Migratory force blocks, homed round-robin, visited by a fixed chain
	// of processors every iteration (static interaction lists).
	type migBlock struct {
		addr  mem.BlockAddr
		chain []mem.NodeID
	}
	var migBlocks []migBlock
	for c := 0; c < chains; c++ {
		var chain []mem.NodeID
		for _, n := range b.perm(b.nodes)[:chainLen] {
			chain = append(chain, mem.NodeID(n))
		}
		migBlocks = append(migBlocks, migBlock{addr: b.allocRR(c), chain: chain})
	}

	for it := 0; it < p.Iterations; it++ {
		// Coordinate update: each producer writes all its blocks, then
		// immediately re-reads them for the local force computation. The
		// re-read lands after SWI's recall of the block, which is exactly
		// the premature-invalidation behaviour the paper reports for
		// moldyn's producer/consumer phase.
		for _, blk := range pcBlocks {
			b.compute(blk.owner, b.jitter(30, 20))
			b.write(blk.owner, blk.addr)
		}
		for _, blk := range pcBlocks {
			b.read(blk.owner, blk.addr)
			b.compute(blk.owner, b.jitter(20, 15))
		}
		b.barrierAll()
		// Consumers read remote coordinates, staggered.
		reads := make([][]mem.BlockAddr, b.nodes)
		for _, blk := range pcBlocks {
			for _, c := range blk.consumers {
				reads[c] = append(reads[c], blk.addr)
			}
		}
		for n := 0; n < b.nodes; n++ {
			c := mem.NodeID(n)
			b.compute(c, b.jitter(stagger[c], 30))
			for _, a := range reads[c] {
				b.read(c, a)
				b.compute(c, b.jitter(50, 15))
			}
		}
		b.barrierAll()
		// Migratory force accumulation: each chain member reads the
		// partial sum and writes its contribution; visits are staggered so
		// the block migrates down the chain.
		for _, blk := range migBlocks {
			for k, proc := range blk.chain {
				b.compute(proc, b.jitter(200+k*900, 150))
				b.read(proc, blk.addr)
				b.write(proc, blk.addr)
			}
		}
		b.barrierAll()
	}
	return b.progs
}
