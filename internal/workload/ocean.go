package workload

import (
	"specdsm/internal/machine"
	"specdsm/internal/mem"
)

// Ocean reproduces the SPLASH-2 ocean simulation's sharing pattern (§7.1,
// §7.4): near-neighbour stencil sharing with a single consumer per
// boundary block, a multi-sweep solver that writes each boundary block
// more than once per iteration (which defeats SWI — the paper measures
// only 4% of writes speculatively invalidated), and a lock-based global
// reduction whose entry order changes every iteration, costing VMSP its
// last fraction of a percent of accuracy.
func Ocean(p Params) []machine.Program {
	p = p.withDefaults(14)
	b := newBuild(p)
	boundaryPerNode := p.scaled(20)
	const reductionLock = 1
	stagger := make([]int, b.nodes)
	for n := range stagger {
		stagger[n] = 100 + b.rng.Intn(1100)
	}

	type bBlock struct {
		addr mem.BlockAddr
		prod mem.NodeID
		cons mem.NodeID
	}
	var blocks []bBlock
	idx := 0
	for n := 0; n < b.nodes; n++ {
		for i := 0; i < boundaryPerNode; i++ {
			blocks = append(blocks, bBlock{
				addr: b.allocRR(idx),
				prod: mem.NodeID(n),
				cons: mem.NodeID((n + 1) % b.nodes),
			})
			idx++
		}
	}
	// The global reduction scalar, homed at node 0.
	sum := b.alloc(0)

	for it := 0; it < p.Iterations; it++ {
		// Red/black sweeps: two passes over the boundary, each reading
		// and writing every block. The second sweep's writes re-acquire
		// blocks that SWI may have recalled, marking those patterns
		// premature.
		for sweep := 0; sweep < 2; sweep++ {
			// Interior grid points: local computation per sweep.
			for n := 0; n < b.nodes; n++ {
				b.compute(mem.NodeID(n), b.jitter(2500, 300))
			}
			for _, blk := range blocks {
				b.compute(blk.prod, b.jitter(50, 30))
				b.read(blk.prod, blk.addr)
				b.write(blk.prod, blk.addr)
			}
		}
		b.barrierAll()
		// Single consumer per block reads the neighbour boundary.
		reads := make([][]mem.BlockAddr, b.nodes)
		for _, blk := range blocks {
			reads[blk.cons] = append(reads[blk.cons], blk.addr)
		}
		for n := 0; n < b.nodes; n++ {
			c := mem.NodeID(n)
			b.compute(c, b.jitter(stagger[c], 30))
			for _, a := range reads[c] {
				b.read(c, a)
				b.compute(c, b.jitter(60, 20))
			}
		}
		b.barrierAll()
		// Lock-ordered reduction: the arrival order — and therefore the
		// read/upgrade order on the sum block — changes every iteration.
		for _, n := range b.perm(b.nodes) {
			proc := mem.NodeID(n)
			b.compute(proc, b.jitter(50, 900))
			b.lock(proc, reductionLock)
			b.read(proc, sum)
			b.write(proc, sum)
			b.unlock(proc, reductionLock)
		}
		b.barrierAll()
	}
	return b.progs
}
