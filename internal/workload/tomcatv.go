package workload

import (
	"specdsm/internal/machine"
	"specdsm/internal/mem"
)

// Tomcatv reproduces the SPEC mesh-generation stencil's sharing pattern
// (§7.1, §7.4): processors own contiguous row sets and share only at the
// set boundaries, with a single consumer (the next processor) per block.
// Every iteration the producer first reads then writes each boundary
// block; a correction phase then rewrites half of the boundary blocks
// before the consumers read. Blocks are homed round-robin (page placement
// oblivious to the writer), so the producer's accesses appear as request
// messages at the home — giving the paper's two-reader (producer +
// consumer) sequences, its ~46% FR coverage, and SWI succeeding on exactly
// the uncorrected half of the writes.
func Tomcatv(p Params) []machine.Program {
	p = p.withDefaults(16)
	b := newBuild(p)
	boundaryPerNode := p.scaled(10)
	stagger := make([]int, b.nodes)
	for n := range stagger {
		stagger[n] = 100 + b.rng.Intn(1200)
	}

	type bBlock struct {
		addr      mem.BlockAddr
		prod      mem.NodeID
		cons      mem.NodeID
		corrected bool
	}
	var blocks []bBlock
	idx := 0
	for n := 0; n < b.nodes; n++ {
		for i := 0; i < boundaryPerNode; i++ {
			blocks = append(blocks, bBlock{
				addr:      b.allocRR(idx),
				prod:      mem.NodeID(n),
				cons:      mem.NodeID((n + 1) % b.nodes),
				corrected: i%2 == 0,
			})
			idx++
		}
	}

	for it := 0; it < p.Iterations; it++ {
		// Interior rows: local computation dominates tomcatv's iteration.
		for n := 0; n < b.nodes; n++ {
			b.compute(mem.NodeID(n), b.jitter(9000, 800))
		}
		// Main phase: read-then-write each boundary block.
		for _, blk := range blocks {
			b.compute(blk.prod, b.jitter(60, 40))
			b.read(blk.prod, blk.addr)
			b.write(blk.prod, blk.addr)
		}
		// Correction phase: producers write again to half of the blocks.
		for _, blk := range blocks {
			if blk.corrected {
				b.compute(blk.prod, b.jitter(40, 20))
				b.write(blk.prod, blk.addr)
			}
		}
		b.barrierAll()
		// Consumers read the neighbour's boundary, staggered.
		reads := make([][]mem.BlockAddr, b.nodes)
		for _, blk := range blocks {
			reads[blk.cons] = append(reads[blk.cons], blk.addr)
		}
		for n := 0; n < b.nodes; n++ {
			c := mem.NodeID(n)
			b.compute(c, b.jitter(stagger[c], 30))
			for _, a := range reads[c] {
				b.read(c, a)
				b.compute(c, b.jitter(60, 20))
			}
		}
		b.barrierAll()
	}
	return b.progs
}
