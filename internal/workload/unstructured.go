package workload

import (
	"specdsm/internal/machine"
	"specdsm/internal/mem"
)

// Unstructured reproduces the CFD mesh kernel's sharing pattern (§7.1,
// §7.4) under the paper's cyclic (communication-intensive) partitioning:
//
//   - a producer/consumer phase with very wide read sharing — each block
//     written once by its owner and read by ~12 of the 16 processors, in
//     an order that changes every iteration. The re-ordering wrecks MSP at
//     history depth one (the paper measures under 65%) while VMSP's
//     vector encoding is immune;
//   - a sum-reduction phase with migratory sharing where processors whose
//     contribution is zero skip every other visit, so the participant
//     chain alternates between two overlapping sets. With depth one the
//     predictors mispredict at the alternation points (capping VMSP at
//     ~87%); depth two captures both chains (Figure 8's ~99%).
func Unstructured(p Params) []machine.Program {
	p = p.withDefaults(12)
	b := newBuild(p)
	pcPerNode := p.scaled(2)
	chains := p.scaled(4 * p.Nodes)
	readDegree := 12
	if readDegree > p.Nodes-1 {
		readDegree = p.Nodes - 1
	}
	// Each reader has a nominal traversal order; load imbalance re-orders
	// roughly half of its visits each iteration.
	stagger := make([]int, b.nodes)
	for n := range stagger {
		stagger[n] = 50 + b.rng.Intn(600)
	}

	// Wide producer/consumer mesh blocks, homed at their owner.
	type pcBlock struct {
		addr    mem.BlockAddr
		owner   mem.NodeID
		readers []mem.NodeID
	}
	var pcBlocks []pcBlock
	for n := 0; n < b.nodes; n++ {
		owner := mem.NodeID(n)
		for i := 0; i < pcPerNode; i++ {
			pcBlocks = append(pcBlocks, pcBlock{
				addr:    b.alloc(owner),
				owner:   owner,
				readers: b.pickOthers(readDegree, owner),
			})
		}
	}

	// Reduction blocks with alternating migratory chains: a common head
	// processor followed by an even-iteration tail or an odd-iteration
	// tail. The shared head makes depth-one prediction ambiguous.
	type migBlock struct {
		addr mem.BlockAddr
		head mem.NodeID
		even []mem.NodeID
		odd  []mem.NodeID
	}
	var migBlocks []migBlock
	for c := 0; c < chains; c++ {
		procs := b.perm(b.nodes)
		head := mem.NodeID(procs[0])
		even := []mem.NodeID{mem.NodeID(procs[1]), mem.NodeID(procs[2])}
		odd := []mem.NodeID{mem.NodeID(procs[3]), mem.NodeID(procs[4])}
		migBlocks = append(migBlocks, migBlock{b.allocRR(c), head, even, odd})
	}

	for it := 0; it < p.Iterations; it++ {
		// Producer phase: one write per block per iteration (SWI-friendly;
		// the paper measures 90% of writes speculatively invalidated).
		for _, blk := range pcBlocks {
			b.compute(blk.owner, b.jitter(40, 30))
			b.write(blk.owner, blk.addr)
		}
		b.barrierAll()
		// Wide read sharing with per-iteration re-ordering: each reader
		// visits its blocks in a fresh random order with little compute —
		// unstructured is communication-bound.
		reads := make([][]mem.BlockAddr, b.nodes)
		for _, blk := range pcBlocks {
			for _, r := range blk.readers {
				reads[r] = append(reads[r], blk.addr)
			}
		}
		for n := 0; n < b.nodes; n++ {
			r := mem.NodeID(n)
			order := make([]int, len(reads[r]))
			for i := range order {
				order[i] = i
			}
			if b.rng.Float64() < 0.5 {
				b.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			}
			b.compute(r, b.jitter(stagger[r], 100))
			for _, j := range order {
				b.read(r, reads[r][j])
				b.compute(r, b.jitter(25, 20))
			}
		}
		b.barrierAll()
		// Reduction: head visits first, then the parity-selected tail.
		for _, blk := range migBlocks {
			visit := append([]mem.NodeID{blk.head}, blk.even...)
			if it%2 == 1 {
				visit = append([]mem.NodeID{blk.head}, blk.odd...)
			}
			for k, proc := range visit {
				b.compute(proc, b.jitter(150+k*900, 250))
				b.read(proc, blk.addr)
				b.write(proc, blk.addr)
			}
		}
		b.barrierAll()
	}
	return b.progs
}
