package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"specdsm/internal/machine"
	"specdsm/internal/mem"
	"specdsm/internal/sim"
)

// Params configures one workload instantiation.
type Params struct {
	// Nodes is the machine size (default 16, as in Table 1).
	Nodes int
	// Iterations is the outer iteration count.
	Iterations int
	// Scale multiplies the per-node data-set size (1.0 = the scaled
	// default; the paper-scale inputs of Table 2 are impractical under a
	// cycle-accurate simulator and are approximated by Scale >> 1).
	Scale float64
	// Seed drives all generator randomness.
	Seed int64
}

func (p Params) withDefaults(iters int) Params {
	if p.Nodes == 0 {
		p.Nodes = 16
	}
	if p.Iterations == 0 {
		p.Iterations = iters
	}
	if p.Scale == 0 {
		p.Scale = 1.0
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

func (p Params) scaled(n int) int {
	v := int(float64(n) * p.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Generator builds one program per node.
type Generator func(Params) []machine.Program

// App describes one benchmark application.
type App struct {
	// Name is the lower-case benchmark name used throughout the paper.
	Name string
	// Description summarizes the sharing pattern being reproduced.
	Description string
	// PaperInput and PaperIterations echo Table 2 for reporting.
	PaperInput      string
	PaperIterations int
	// DefaultIterations is the scaled default for this reproduction.
	DefaultIterations int
	// Generate builds the programs.
	Generate Generator
}

// apps is the immutable application registry; ByName iterates it
// directly so per-job lookups in streaming sweeps stay allocation-free.
var apps = []App{
	{
		Name:              "appbt",
		Description:       "gaussian elimination over subcubes; edge blocks alternate consumers across dimensions; pipeline producer/consumer",
		PaperInput:        "12x12x12 cubes",
		PaperIterations:   40,
		DefaultIterations: 9,
		Generate:          AppBT,
	},
	{
		Name:              "barnes",
		Description:       "octree force calculation; rapidly-changing read sharing with per-iteration reader re-ordering; low communication ratio",
		PaperInput:        "4K particles",
		PaperIterations:   21,
		DefaultIterations: 8,
		Generate:          Barnes,
	},
	{
		Name:              "em3d",
		Description:       "static bipartite-graph producer/consumer with small read degree; producer writes each block once per iteration",
		PaperInput:        "76800 nodes, 15% remote",
		PaperIterations:   50,
		DefaultIterations: 8,
		Generate:          EM3D,
	},
	{
		Name:              "moldyn",
		Description:       "molecular dynamics: producer/consumer phase (producer re-reads after writing) plus static migratory force accumulation",
		PaperInput:        "2048 particles",
		PaperIterations:   60,
		DefaultIterations: 8,
		Generate:          Moldyn,
	},
	{
		Name:              "ocean",
		Description:       "near-neighbour stencil with multi-sweep writes (defeats SWI) and a lock-ordered reduction whose entry order changes per iteration",
		PaperInput:        "130x130 array",
		PaperIterations:   12,
		DefaultIterations: 8,
		Generate:          Ocean,
	},
	{
		Name:              "tomcatv",
		Description:       "row-partitioned stencil; producer reads-then-writes its boundary, correction phase rewrites half the boundary blocks",
		PaperInput:        "128x128 array",
		PaperIterations:   50,
		DefaultIterations: 8,
		Generate:          Tomcatv,
	},
	{
		Name:              "unstructured",
		Description:       "CFD mesh with wide read sharing (~12 readers/write, re-ordered per iteration) and a reduction with alternating migratory participants",
		PaperInput:        "mesh.2K",
		PaperIterations:   50,
		DefaultIterations: 8,
		Generate:          Unstructured,
	},
}

// Apps returns the seven applications in the paper's (alphabetical)
// order. The returned slice is a fresh copy the caller may reorder.
func Apps() []App {
	out := make([]App, len(apps))
	copy(out, apps)
	return out
}

// ByName looks up an application without allocating.
func ByName(name string) (App, bool) {
	for _, a := range apps {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Names returns the application names in order.
func Names() []string {
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	sort.Strings(out)
	return out
}

// build accumulates per-node programs.
type build struct {
	nodes int
	progs []machine.Program
	rng   *rand.Rand
	// next per-home block index for address allocation.
	next []uint64
}

func newBuild(p Params) *build {
	if p.Nodes < 2 || p.Nodes > mem.MaxNodes {
		panic(fmt.Sprintf("workload: invalid node count %d", p.Nodes))
	}
	b := &build{
		nodes: p.Nodes,
		progs: make([]machine.Program, p.Nodes),
		rng:   rand.New(rand.NewSource(p.Seed)),
		next:  make([]uint64, p.Nodes),
	}
	// Pre-size each program past append's small-slice doubling chain;
	// real program lengths are in the thousands of ops.
	for i := range b.progs {
		b.progs[i] = make(machine.Program, 0, 256)
	}
	return b
}

// alloc returns a fresh block homed at the given node.
func (b *build) alloc(home mem.NodeID) mem.BlockAddr {
	a := mem.MakeAddr(home, b.next[home])
	b.next[home]++
	return a
}

// allocRR returns a fresh block with round-robin home placement, modeling
// OS page placement that is oblivious to the writer (appbt, tomcatv,
// ocean, barnes use this: the producer's accesses then appear as request
// messages at a third-party home, as in the paper's DSM).
func (b *build) allocRR(i int) mem.BlockAddr {
	return b.alloc(mem.NodeID(i % b.nodes))
}

func (b *build) read(n mem.NodeID, addr mem.BlockAddr) {
	b.progs[n] = append(b.progs[n], machine.Read(addr))
}

func (b *build) write(n mem.NodeID, addr mem.BlockAddr) {
	b.progs[n] = append(b.progs[n], machine.Write(addr))
}

func (b *build) compute(n mem.NodeID, cycles sim.Cycle) {
	if cycles <= 0 {
		return
	}
	b.progs[n] = append(b.progs[n], machine.Compute(cycles))
}

func (b *build) lock(n mem.NodeID, id int) {
	b.progs[n] = append(b.progs[n], machine.Lock(id))
}

func (b *build) unlock(n mem.NodeID, id int) {
	b.progs[n] = append(b.progs[n], machine.Unlock(id))
}

// barrierAll appends a global barrier to every program.
func (b *build) barrierAll() {
	for n := range b.progs {
		b.progs[n] = append(b.progs[n], machine.Barrier())
	}
}

// jitter returns base plus a uniform random extra in [0, spread).
func (b *build) jitter(base, spread int) sim.Cycle {
	if spread <= 0 {
		return sim.Cycle(base)
	}
	return sim.Cycle(base + b.rng.Intn(spread))
}

// perm returns a random permutation of 0..n-1.
func (b *build) perm(n int) []int { return b.rng.Perm(n) }

// pickOthers selects k distinct nodes other than excl.
func (b *build) pickOthers(k int, excl mem.NodeID) []mem.NodeID {
	pool := make([]mem.NodeID, 0, b.nodes)
	for n := 0; n < b.nodes; n++ {
		if mem.NodeID(n) != excl {
			pool = append(pool, mem.NodeID(n))
		}
	}
	b.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if k > len(pool) {
		k = len(pool)
	}
	return pool[:k]
}
