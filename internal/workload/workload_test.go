package workload

import (
	"reflect"
	"testing"

	"specdsm/internal/machine"
	"specdsm/internal/mem"
)

func defaultParams() Params {
	return Params{Nodes: 16, Scale: 0.5, Seed: 3}
}

// checkStructure validates generator invariants shared by all apps.
func checkStructure(t *testing.T, name string, progs []machine.Program, nodes int) {
	t.Helper()
	if len(progs) != nodes {
		t.Fatalf("%s: %d programs for %d nodes", name, len(progs), nodes)
	}
	barriers := make([]int, nodes)
	lockDepth := make([]int, nodes)
	accesses := 0
	for n, prog := range progs {
		if len(prog) == 0 {
			t.Fatalf("%s: node %d has an empty program", name, n)
		}
		for _, op := range prog {
			switch op.Kind {
			case machine.OpBarrier:
				barriers[n]++
			case machine.OpLock:
				lockDepth[n]++
			case machine.OpUnlock:
				lockDepth[n]--
				if lockDepth[n] < 0 {
					t.Fatalf("%s: node %d unlocks before locking", name, n)
				}
			case machine.OpRead, machine.OpWrite:
				accesses++
				if op.Addr.Home() >= mem.NodeID(nodes) {
					t.Fatalf("%s: node %d accesses block homed at %d (only %d nodes)",
						name, n, op.Addr.Home(), nodes)
				}
			case machine.OpCompute:
				if op.Cycles <= 0 {
					t.Fatalf("%s: node %d has non-positive compute", name, n)
				}
			}
		}
		if lockDepth[n] != 0 {
			t.Fatalf("%s: node %d ends holding %d locks", name, n, lockDepth[n])
		}
	}
	for n := 1; n < nodes; n++ {
		if barriers[n] != barriers[0] {
			t.Fatalf("%s: unbalanced barriers: node 0 has %d, node %d has %d",
				name, barriers[0], n, barriers[n])
		}
	}
	if accesses == 0 {
		t.Fatalf("%s: no memory accesses generated", name)
	}
}

func TestAllAppsStructure(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			progs := app.Generate(defaultParams())
			checkStructure(t, app.Name, progs, 16)
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, app := range Apps() {
		a := app.Generate(defaultParams())
		b := app.Generate(defaultParams())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: generator not deterministic", app.Name)
		}
	}
}

func TestSeedChangesPrograms(t *testing.T) {
	p1, p2 := defaultParams(), defaultParams()
	p2.Seed = 99
	same := 0
	for _, app := range Apps() {
		if reflect.DeepEqual(app.Generate(p1), app.Generate(p2)) {
			same++
		}
	}
	if same == len(Apps()) {
		t.Fatal("no generator responds to the seed")
	}
}

func TestScaleGrowsPrograms(t *testing.T) {
	small, big := defaultParams(), defaultParams()
	small.Scale, big.Scale = 0.5, 2.0
	for _, app := range Apps() {
		s := opCount(app.Generate(small))
		l := opCount(app.Generate(big))
		if l <= s {
			t.Fatalf("%s: scale 2.0 (%d ops) not larger than 0.5 (%d ops)", app.Name, l, s)
		}
	}
}

func opCount(progs []machine.Program) int {
	n := 0
	for _, p := range progs {
		n += len(p)
	}
	return n
}

func TestByName(t *testing.T) {
	for _, app := range Apps() {
		got, ok := ByName(app.Name)
		if !ok || got.Name != app.Name {
			t.Fatalf("ByName(%q) failed", app.Name)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("ByName should fail for unknown app")
	}
	if len(Names()) != 7 {
		t.Fatalf("Names() = %v, want 7 apps", Names())
	}
}

func TestPaperMetadata(t *testing.T) {
	// Table 2 values must be preserved for reporting.
	want := map[string]int{
		"appbt": 40, "barnes": 21, "em3d": 50, "moldyn": 60,
		"ocean": 12, "tomcatv": 50, "unstructured": 50,
	}
	for _, app := range Apps() {
		if app.PaperIterations != want[app.Name] {
			t.Errorf("%s: paper iterations %d, want %d", app.Name, app.PaperIterations, want[app.Name])
		}
		if app.PaperInput == "" || app.Description == "" {
			t.Errorf("%s: missing metadata", app.Name)
		}
	}
}

// Every app must run to completion on the real machine with coherence
// checking enabled — the core integration test of generator + protocol.
func TestAllAppsRunOnMachine(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			p := Params{Nodes: 8, Iterations: 3, Scale: 0.25, Seed: 2}
			progs := app.Generate(p)
			m := machine.New(machine.Config{Nodes: 8})
			r, err := m.Run(progs)
			if err != nil {
				t.Fatalf("%s: %v", app.Name, err)
			}
			if r.Cycles == 0 || r.TotalReqWait == 0 {
				t.Fatalf("%s: degenerate run: cycles=%d reqWait=%d", app.Name, r.Cycles, r.TotalReqWait)
			}
		})
	}
}

func TestMicroPatternsRun(t *testing.T) {
	cases := []struct {
		name string
		gen  func(MicroParams) []machine.Program
	}{
		{"producer-consumer", ProducerConsumer},
		{"migratory", MigratoryPattern},
		{"stencil", StencilPattern},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			progs := c.gen(MicroParams{})
			m := machine.New(machine.Config{Nodes: 4})
			if _, err := m.Run(progs); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnstructuredWideSharing(t *testing.T) {
	progs := Unstructured(Params{Nodes: 16, Iterations: 2, Scale: 1, Seed: 1})
	// Count distinct readers of producer-owned blocks.
	readers := map[mem.BlockAddr]map[int]bool{}
	writers := map[mem.BlockAddr]int{}
	for n, prog := range progs {
		for _, op := range prog {
			switch op.Kind {
			case machine.OpRead:
				if readers[op.Addr] == nil {
					readers[op.Addr] = map[int]bool{}
				}
				readers[op.Addr][n] = true
			case machine.OpWrite:
				writers[op.Addr]++
			}
		}
	}
	wide := 0
	for _, rs := range readers {
		if len(rs) >= 10 {
			wide++
		}
	}
	if wide == 0 {
		t.Fatal("unstructured has no widely shared blocks")
	}
}
