package specdsm

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"

	"specdsm/internal/fault"
	"specdsm/internal/machine"
	"specdsm/internal/remote"
	"specdsm/internal/sweep"
)

// remoteSpec is the self-contained, gob-able description of one study's
// job space — everything a sweepd worker needs to rebuild the exact job
// function the dispatcher's process would run locally. It carries only
// value data (no callbacks, no checkpoint state): execution-side knobs
// like Parallel, Remote, and the checkpoint fields stay dispatcher-side
// because they cannot change any job's result.
type remoteSpec struct {
	// Study selects the job function: predictor, speculation, seeds,
	// scaling, rtl, or sweep.
	Study string
	// Base is the resume offset: job index j on the wire means absolute
	// study index Base+j. Shipping it keeps the worker's retry/injector
	// schedule keyed on the same relative indices the in-process pool
	// uses after a checkpoint replay, so a resumed remote sweep stays
	// byte-identical to a resumed local one.
	Base int

	Apps          []string
	Nodes         int
	Iterations    int
	Scale         float64
	Seed          int64
	Depths        []int
	DisableChecks bool
	Retries       int
	FaultSpec     string

	// Study-specific axes.
	Seeds      []int64        // seeds
	NodeCounts []int          // scaling
	RTLApp     string         // rtl
	RTLParams  WorkloadParams // rtl
	RTLFlights []int          // rtl
	Opts       MachineOptions // sweep (the CLI's machine configuration)
}

// remoteSpec lifts the config's job-identity scalars into a shippable
// spec for the named study. Call on a config that already has defaults
// applied, so both ends resolve to the same concrete values.
func (c StudyConfig) remoteSpec(study string) remoteSpec {
	return remoteSpec{
		Study:         study,
		Apps:          c.Apps,
		Nodes:         c.Nodes,
		Iterations:    c.Iterations,
		Scale:         c.Scale,
		Seed:          c.Seed,
		Depths:        c.Depths,
		DisableChecks: c.DisableChecks,
		Retries:       c.Retries,
		FaultSpec:     c.FaultSpec,
	}
}

// config is the worker-side inverse of StudyConfig.remoteSpec.
func (rs remoteSpec) config() StudyConfig {
	return StudyConfig{
		Apps:          rs.Apps,
		Nodes:         rs.Nodes,
		Iterations:    rs.Iterations,
		Scale:         rs.Scale,
		Seed:          rs.Seed,
		Depths:        rs.Depths,
		DisableChecks: rs.DisableChecks,
		Retries:       rs.Retries,
		FaultSpec:     rs.FaultSpec,
	}
}

func (rs remoteSpec) encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rs); err != nil {
		return nil, fmt.Errorf("specdsm: encoding study spec: %w", err)
	}
	return buf.Bytes(), nil
}

// NewRemoteRunner builds a shard-side job executor from a dispatcher's
// study spec — the remote.Server.NewRunner for a sweepd worker. The
// returned runner owns one simulation arena (the server builds a runner
// per connection, so the arena needs no locking) and settles each job
// under the same retry budget, fault-injection schedule, and backoff
// the in-process pool would apply, which is what makes a job's outcome
// — row bytes or failure text — independent of where it executes.
//
// An unknown study or an unparsable spec is a construction error; the
// server refuses the connection so the dispatcher abandons this worker
// instead of retrying a spec that cannot get better.
func NewRemoteRunner(spec []byte) (remote.Runner, error) {
	var rs remoteSpec
	if err := gob.NewDecoder(bytes.NewReader(spec)).Decode(&rs); err != nil {
		return nil, fmt.Errorf("specdsm: decoding study spec: %w", err)
	}
	cfg := rs.config()
	switch rs.Study {
	case "predictor":
		return runnerFor(rs, predictorJob(cfg))
	case "speculation":
		return runnerFor(rs, speculationJob(cfg))
	case "seeds":
		return runnerFor(rs, seedsJob(cfg, rs.Seeds))
	case "scaling":
		return runnerFor(rs, scalingJob(cfg, rs.NodeCounts))
	case "rtl":
		w, err := AppWorkload(rs.RTLApp, rs.RTLParams)
		if err != nil {
			return nil, err
		}
		return runnerFor(rs, rtlJob(w, rs.RTLFlights))
	case "sweep":
		return runnerFor(rs, sweepJob(cfg, rs.Opts))
	default:
		return nil, fmt.Errorf("specdsm: unknown remote study %q", rs.Study)
	}
}

// runnerFor wraps a study's job function as a remote.Runner: one arena,
// a single-job pool carrying the spec's retry/fault policy, and gob
// encoding of each settled row.
func runnerFor[T any](rs remoteSpec, fn func(context.Context, *machine.Arena, int) (T, error)) (remote.Runner, error) {
	p := sweep.New(1)
	p.Retries = rs.Retries
	p.RetrySeed = uint64(rs.Seed)
	if rs.FaultSpec != "" {
		inj, err := fault.ParseSpec(rs.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("specdsm: %w", err)
		}
		p.Inject = inj
	}
	arena := machine.NewArena()
	base := rs.Base
	return remote.RunnerFunc(func(ctx context.Context, j int) ([]byte, error) {
		v, err := sweep.RunOne(ctx, p, arena, j,
			func(ctx context.Context, a *machine.Arena, j int) (T, error) { return fn(ctx, a, base+j) })
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return nil, fmt.Errorf("specdsm: encoding job %d result: %w", base+j, err)
		}
		return buf.Bytes(), nil
	}), nil
}

// streamStudy is the execution backend every study driver fans out on:
// checkpoint replay plus an in-process worker pool (sweep.
// StreamCheckpointFail), or — when cfg.Remote names shard workers — the
// fault-tolerant remote dispatcher. Both paths deliver rows and
// keep-going failures to emit/fail strictly in index order, so a study
// cannot tell how (or where) its jobs ran.
func streamStudy[T any](cfg StudyConfig, rs remoteSpec, n int, extra string,
	fn func(context.Context, *machine.Arena, int) (T, error),
	emit func(int, T) error, fail sweep.FailFunc) error {
	ck, err := cfg.checkpoint(rs.Study, n, extra)
	if err != nil {
		return err
	}
	pool, err := cfg.pool(n)
	if err != nil {
		return err
	}
	if len(cfg.Remote) == 0 {
		return sweep.StreamCheckpointFail(context.Background(), pool, n, ck, machine.NewArena, fn, emit, fail)
	}
	return streamRemote(cfg, rs, n, ck, pool, emit, fail)
}

// streamRemote is streamStudy's dispatcher path, mirroring
// sweep.StreamCheckpointFail exactly: replay the checkpointed prefix,
// dispatch the remaining relative indices across the shard fleet,
// append every newly settled frame before handing it to the caller, and
// flush the checkpoint even when the sweep fails — that is the resume
// point. Job results come back as gob payloads; failures come back as
// error text, which is all the local path persists or prints either.
func streamRemote[T any](cfg StudyConfig, rs remoteSpec, n int, ck *sweep.Checkpoint, pool *sweep.Pool,
	emit func(int, T) error, fail sweep.FailFunc) error {
	base := 0
	if ck != nil {
		if err := ck.ValidateJobs(n); err != nil {
			return err
		}
		if err := sweep.ReplayCheckpointFail(ck, emit, fail); err != nil {
			return err
		}
		base = ck.Rows()
		if base == n {
			return nil
		}
	}
	rs.Base = base
	spec, err := rs.encode()
	if err != nil {
		return err
	}
	// The degradation floor runs the exact worker-side code path — spec
	// decode, per-runner arena, RunOne — so a sweep that falls back to
	// local execution (dead fleet, poison job) is byte-identical to one
	// a shard served.
	local, err := NewRemoteRunner(spec)
	if err != nil {
		return err
	}
	d := &remote.Dispatcher{
		Hosts:     cfg.Remote,
		Spec:      spec,
		Local:     local,
		KeepGoing: cfg.KeepGoing,
		Seed:      uint64(cfg.Seed),
		OnJobDone: pool.OnJobDone,
		Inject:    pool.Inject,
		Logf:      cfg.RemoteLogf,
	}
	deliver := func(j int, r remote.Result) error {
		i := base + j
		if r.Err != "" {
			ferr := errors.New(r.Err)
			if fail == nil {
				return ferr
			}
			if ck != nil {
				if err := ck.AppendFail(ferr); err != nil {
					return err
				}
			}
			return fail(i, ferr)
		}
		var v T
		if err := gob.NewDecoder(bytes.NewReader(r.Payload)).Decode(&v); err != nil {
			return fmt.Errorf("specdsm: remote job %d: decoding result: %w", i, err)
		}
		if ck != nil {
			if err := sweep.AppendRow(ck, v); err != nil {
				return err
			}
		}
		return emit(i, v)
	}
	err = d.Run(context.Background(), 0, n-base, deliver)
	if ck != nil {
		if ferr := ck.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

// RunSweepStream runs every cfg.Apps workload on one machine
// configuration — the study behind the specdsm CLI's multi-app sweep —
// and streams each run's result, in Apps order, to emit. All of cfg's
// execution machinery applies: worker-pool parallelism, checkpointing
// and resume, retry budgets, fault injection, and remote dispatch.
// fail receives fatal job failures in index order when the sweep runs
// keep-going (pass nil to abort on the first failure); unlike the
// figure studies there is no FAILED row shape here, so the caller
// renders failures itself.
func RunSweepStream(cfg StudyConfig, opts MachineOptions, emit func(i int, r *RunResult) error, fail sweep.FailFunc) error {
	cfg = cfg.withDefaults()
	n := len(cfg.Apps)
	rs := cfg.remoteSpec("sweep")
	rs.Opts = opts
	return streamStudy(cfg, rs, n, "|opts="+optsKey(opts), sweepJob(cfg, opts), emit, fail)
}

// sweepJob builds the CLI sweep's job function: application i of
// cfg.Apps simulated once under opts.
func sweepJob(cfg StudyConfig, opts MachineOptions) func(context.Context, *machine.Arena, int) (*RunResult, error) {
	wp := cfg.workloadParams()
	return func(_ context.Context, arena *machine.Arena, i int) (*RunResult, error) {
		w, err := AppWorkload(cfg.Apps[i], wp)
		if err != nil {
			return nil, err
		}
		return runInArena(arena, w, opts)
	}
}

// optsKey renders the machine configuration's job-identity fields for
// the sweep study's checkpoint key. Explicit (rather than %+v) because
// Active is a pointer: the key must describe its value, not its
// address.
func optsKey(o MachineOptions) string {
	active := "-"
	if o.Active != nil {
		active = fmt.Sprintf("%s/%d/%d", o.Active.Kind, o.Active.Depth, o.Active.Confidence)
	}
	return fmt.Sprintf("mode=%s|active=%s|obs=%v|specup=%t|cap=%d|flight=%d",
		o.Mode, active, o.Observers, o.SpecUpgrades, o.CacheCapacity, o.NetworkFlight)
}
