package specdsm_test

import (
	"context"
	"net"
	"path/filepath"
	"reflect"
	"testing"

	"specdsm"
	"specdsm/internal/remote"
)

// startWorkers spins up n in-process sweepd-equivalent workers (a
// remote.Server wired to specdsm.NewRemoteRunner, exactly what
// cmd/sweepd serves) and returns their addresses.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	var hosts []string
	for range n {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		srv := &remote.Server{NewRunner: specdsm.NewRemoteRunner}
		go srv.Serve(ctx, lis)
		hosts = append(hosts, lis.Addr().String())
	}
	return hosts
}

func equivCfg() specdsm.StudyConfig {
	return specdsm.StudyConfig{
		Apps:     []string{"em3d", "moldyn"},
		Scale:    0.1,
		Depths:   []int{1},
		Parallel: 1,
	}
}

// TestRemotePredictorStudyMatchesLocal pins the tentpole contract at
// the study level: the identical row sequence whether the jobs run on
// an in-process Parallel: 1 pool or fan out across shard workers.
func TestRemotePredictorStudyMatchesLocal(t *testing.T) {
	collect := func(cfg specdsm.StudyConfig) []specdsm.AppPrediction {
		var rows []specdsm.AppPrediction
		if err := specdsm.PredictorStudyStream(cfg, func(_ int, row specdsm.AppPrediction) error {
			rows = append(rows, row)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	local := collect(equivCfg())

	rcfg := equivCfg()
	rcfg.Remote = startWorkers(t, 2)
	got := collect(rcfg)
	if !reflect.DeepEqual(got, local) {
		t.Fatalf("remote rows differ from local:\nremote: %+v\nlocal:  %+v", got, local)
	}
}

// TestRemoteSweepKeepGoingMatchesLocal runs the CLI sweep study under
// injected job panics in keep-going mode, remotely and locally: the
// same jobs must fail with the same error text at the same indices,
// and the surviving rows must be identical — job-level failures are
// results, decided by the deterministic injector schedule, not by
// which executor happened to run the job.
func TestRemoteSweepKeepGoingMatchesLocal(t *testing.T) {
	type event struct {
		I    int
		Row  *specdsm.RunResult
		Fail string
	}
	collect := func(cfg specdsm.StudyConfig) []event {
		var events []event
		err := specdsm.RunSweepStream(cfg, specdsm.MachineOptions{Mode: specdsm.ModeSWI},
			func(i int, r *specdsm.RunResult) error {
				events = append(events, event{I: i, Row: r})
				return nil
			},
			func(i int, ferr error) error {
				events = append(events, event{I: i, Fail: ferr.Error()})
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return events
	}
	base := equivCfg()
	base.Apps = []string{"em3d", "moldyn", "appbt"}
	base.KeepGoing = true
	base.FaultSpec = "seed=5,panic=0.4"

	local := collect(base)
	var failures int
	for _, e := range local {
		if e.Fail != "" {
			failures++
		}
	}
	if failures == 0 || failures == len(local) {
		t.Fatalf("want a mix of failures and rows to compare, got %d/%d failures", failures, len(local))
	}

	rcfg := base
	rcfg.Remote = startWorkers(t, 2)
	got := collect(rcfg)
	if !reflect.DeepEqual(got, local) {
		t.Fatalf("remote event stream differs from local:\nremote: %+v\nlocal:  %+v", got, local)
	}
}

// TestRemoteCheckpointResumeMatchesLocal interrupts a remote sweep by
// aborting delivery mid-study, then resumes it remotely and compares
// the stitched row sequence against an uninterrupted local run — the
// dispatcher-restart leg of the determinism contract.
func TestRemoteCheckpointResumeMatchesLocal(t *testing.T) {
	collect := func(cfg specdsm.StudyConfig, stopAfter int) ([]specdsm.NodeScaling, error) {
		var rows []specdsm.NodeScaling
		err := specdsm.NodeScalingStudyStream(cfg, []int{4, 8}, func(_ int, row specdsm.NodeScaling) error {
			rows = append(rows, row)
			if stopAfter > 0 && len(rows) == stopAfter {
				return errAbort
			}
			return nil
		})
		return rows, err
	}
	local, err := collect(equivCfg(), 0)
	if err != nil {
		t.Fatal(err)
	}

	hosts := startWorkers(t, 3)
	rcfg := equivCfg()
	rcfg.Remote = hosts
	rcfg.CheckpointPath = filepath.Join(t.TempDir(), "ck")
	rcfg.CheckpointEvery = 1
	partial, err := collect(rcfg, 2)
	if err != errAbort {
		t.Fatalf("interrupted run returned %v, want the abort error", err)
	}
	rcfg.Resume = true
	resumed, err := collect(rcfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = partial
	if !reflect.DeepEqual(resumed, local) {
		t.Fatalf("resumed remote rows differ from local:\nremote: %+v\nlocal:  %+v", resumed, local)
	}
}

var errAbort = &abortError{}

type abortError struct{}

func (*abortError) Error() string { return "test: abort delivery" }
