package specdsm

import (
	"fmt"
	"strings"

	"specdsm/internal/report"
)

// This file renders experiment results in the layout of the paper's
// tables and figures. Every Render* function returns printable text.

// RenderTable1 prints the system configuration (Table 1).
func RenderTable1() string {
	t := report.NewTable("Table 1: system configuration parameters",
		"Parameter", "Value")
	t.AddRow("Number of nodes", "16")
	t.AddRow("Coherence block", "32 bytes")
	t.AddRow("Local memory / remote cache access", "104 cycles")
	t.AddRow("Network latency", "80 cycles")
	t.AddRow("Round-trip (clean 2-hop) miss latency", "418 cycles")
	t.AddRow("Remote-to-local access ratio (rtl)", "~4")
	t.AddRow("Directory occupancy", "24 cycles")
	t.AddRow("NI send/receive occupancy", "20 cycles")
	return t.String()
}

// RenderTable2 prints the application roster (Table 2).
func RenderTable2() string {
	t := report.NewTable("Table 2: applications and input data sets",
		"Application", "Paper input", "Paper iters", "Reproduction")
	for _, a := range AppInfos() {
		t.AddRow(a.Name, a.PaperInput, fmt.Sprint(a.PaperIterations),
			"synthetic sharing-pattern generator (see DESIGN.md)")
	}
	return t.String()
}

// RenderFigure6 prints the four analytic-model panels as ASCII charts.
func RenderFigure6() string {
	var b strings.Builder
	b.WriteString("Figure 6: potential speedup in a speculative coherent DSM (Equations 1-2)\n\n")
	for _, panel := range Figure6() {
		c := report.NewLineChart(panel.Title, "communication ratio c", "speedup", 64, 16, 4)
		for _, s := range panel.Series {
			c.AddSeries(s.Label, s.C, s.Y)
		}
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure7 prints base predictor accuracies (history depth 1).
func RenderFigure7(rows []Figure7Row) string {
	t := report.NewTable("Figure 7: base predictor accuracy (%), history depth 1",
		"Application", "Cosmos", "MSP", "VMSP")
	for _, r := range rows {
		if r.Failed != "" {
			t.AddRow(r.App, "FAILED", "FAILED", "FAILED")
			t.AddNote("%s failed: %s", r.App, r.Failed)
			continue
		}
		t.AddRow(r.App, report.Pct(r.Cosmos), report.Pct(r.MSP), report.Pct(r.VMSP))
	}
	c := report.NewBarChart("", 100, 40)
	for _, r := range rows {
		if r.Failed != "" {
			continue
		}
		c.AddGroup(r.App,
			"Cosmos", r.Cosmos*100,
			"MSP", r.MSP*100,
			"VMSP", r.VMSP*100)
	}
	return t.String() + "\n" + c.String()
}

// RenderFigure8 prints accuracy by history depth.
func RenderFigure8(rows []Figure8Row) string {
	if len(rows) == 0 {
		return ""
	}
	headers := []string{"Application", "Predictor"}
	for _, d := range rows[0].Depths {
		headers = append(headers, fmt.Sprintf("d=%d", d))
	}
	t := report.NewTable("Figure 8: predictor accuracy (%) with varying history depth", headers...)
	for _, r := range rows {
		if r.Failed != "" {
			cells := []string{r.App, "FAILED"}
			for range r.Depths {
				cells = append(cells, "FAILED")
			}
			t.AddRow(cells...)
			t.AddNote("%s failed: %s", r.App, r.Failed)
			continue
		}
		for _, kind := range Kinds() {
			cells := []string{r.App, string(kind)}
			for i := range r.Depths {
				cells = append(cells, report.Pct(r.Accuracy[kind][i]))
			}
			t.AddRow(cells...)
		}
	}
	return t.String()
}

// RenderTable3 prints coverage and correct fractions.
func RenderTable3(rows []Table3Row) string {
	t := report.NewTable("Table 3: messages predicted (and correctly predicted) %, history depth 1",
		"Application", "Cosmos", "MSP", "VMSP")
	for _, r := range rows {
		if r.Failed != "" {
			t.AddRow(r.App, "FAILED", "FAILED", "FAILED")
			t.AddNote("%s failed: %s", r.App, r.Failed)
			continue
		}
		cell := func(k PredictorKind) string {
			return fmt.Sprintf("%s (%s)", report.Pct(r.Coverage[k]), report.Pct(r.Correct[k]))
		}
		t.AddRow(r.App, cell(Cosmos), cell(MSP), cell(VMSP))
	}
	return t.String()
}

// RenderTable4 prints pattern-table occupancy and byte overhead.
func RenderTable4(rows []Table4Row) string {
	t := report.NewTable("Table 4: predictor storage overhead",
		"Application",
		"Cosmos pte d=1", "d=4", "ovh(B)",
		"MSP pte d=1", "d=4", "ovh(B)",
		"VMSP pte d=1", "d=4", "ovh(B)")
	for _, r := range rows {
		if r.Failed != "" {
			t.AddRow(r.App,
				"FAILED", "FAILED", "FAILED",
				"FAILED", "FAILED", "FAILED",
				"FAILED", "FAILED", "FAILED")
			t.AddNote("%s failed: %s", r.App, r.Failed)
			continue
		}
		t.AddRow(r.App,
			report.F1(r.PTE1[Cosmos]), report.F1(r.PTE4[Cosmos]), report.F1(r.Bytes[Cosmos]),
			report.F1(r.PTE1[MSP]), report.F1(r.PTE4[MSP]), report.F1(r.Bytes[MSP]),
			report.F1(r.PTE1[VMSP]), report.F1(r.PTE4[VMSP]), report.F1(r.Bytes[VMSP]))
	}
	t.AddNote("pte: average pattern-table entries per allocated block")
	t.AddNote("ovh: bytes per block at d=1 — Cosmos (7+14*pte)/8, MSP (6+12*pte)/8, VMSP (18+24*pte)/8")
	return t.String()
}

// RenderFigure9 prints normalized execution-time breakdowns.
func RenderFigure9(rows []Figure9Row) string {
	t := report.NewTable("Figure 9: execution time normalized to Base-DSM (computation + request wait)",
		"Application", "Base", "FR-DSM", "SWI-DSM")
	cell := func(p [2]float64) string {
		return fmt.Sprintf("%5.1f (%4.1f+%4.1f)", p[0]+p[1], p[0], p[1])
	}
	for _, r := range rows {
		if r.Failed != "" {
			t.AddRow(r.App, "FAILED", "FAILED", "FAILED")
			t.AddNote("%s failed: %s", r.App, r.Failed)
			continue
		}
		t.AddRow(r.App, cell(r.Base), cell(r.FR), cell(r.SWI))
	}
	c := report.NewBarChart("", 110, 44)
	for _, r := range rows {
		if r.Failed != "" {
			continue
		}
		c.AddGroup(r.App,
			"Base", r.Base[0]+r.Base[1],
			"FR  ", r.FR[0]+r.FR[1],
			"SWI ", r.SWI[0]+r.SWI[1])
	}
	// The mean covers completed applications only; FAILED rows would
	// otherwise drag it toward zero.
	var frSum, swiSum, n float64
	for _, r := range rows {
		if r.Failed != "" {
			continue
		}
		frSum += r.Total(ModeFR)
		swiSum += r.Total(ModeSWI)
		n++
	}
	summary := fmt.Sprintf("mean execution time: FR-DSM %.1f%%, SWI-DSM %.1f%% of Base-DSM (paper: 92%%, 88%%)\n",
		frSum/n, swiSum/n)
	if n == 0 {
		summary = "mean execution time: unavailable (all applications failed)\n"
	}
	return t.String() + "\n" + c.String() + "\n" + summary
}

// RenderTable5 prints speculation frequencies.
func RenderTable5(rows []Table5Row) string {
	t := report.NewTable("Table 5: frequency of requests, speculations, and misspeculations",
		"Application", "reads", "writes",
		"FR-DSM read sent/miss %",
		"SWI-DSM FR read %", "SWI read %", "write inval %")
	for _, r := range rows {
		if r.Failed != "" {
			t.AddRow(r.App, "FAILED", "FAILED", "FAILED", "FAILED", "FAILED", "FAILED")
			t.AddNote("%s failed: %s", r.App, r.Failed)
			continue
		}
		t.AddRow(r.App,
			fmt.Sprint(r.BaseReads), fmt.Sprint(r.BaseWrites),
			fmt.Sprintf("%.0f / %.0f", r.FRSent, r.FRMiss),
			fmt.Sprintf("%.0f / %.0f", r.SWIFRSent, r.SWIFRMiss),
			fmt.Sprintf("%.0f / %.0f", r.SWIReadSent, r.SWIReadMiss),
			fmt.Sprintf("%.0f / %.0f", r.SWIInvalSent, r.SWIInvalMiss))
	}
	t.AddNote("percentages relative to Base-DSM request counts; sent/miss per trigger")
	return t.String()
}
