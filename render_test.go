package specdsm_test

import (
	"strings"
	"testing"

	"specdsm"
)

func TestRenderFigure8(t *testing.T) {
	rows := []specdsm.Figure8Row{{
		App:    "appbt",
		Depths: []int{1, 2, 4},
		Accuracy: map[specdsm.PredictorKind][]float64{
			specdsm.Cosmos: {0.9, 0.95, 1.0},
			specdsm.MSP:    {0.92, 0.96, 1.0},
			specdsm.VMSP:   {0.92, 1.0, 1.0},
		},
	}}
	out := specdsm.RenderFigure8(rows)
	for _, want := range []string{"appbt", "d=1", "d=2", "d=4", "VMSP", "100.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if specdsm.RenderFigure8(nil) != "" {
		t.Error("empty rows should render empty")
	}
}

func TestRenderTable4(t *testing.T) {
	rows := []specdsm.Table4Row{{
		App:   "barnes",
		PTE1:  map[specdsm.PredictorKind]float64{specdsm.Cosmos: 11, specdsm.MSP: 7, specdsm.VMSP: 5},
		PTE4:  map[specdsm.PredictorKind]float64{specdsm.Cosmos: 42, specdsm.MSP: 25, specdsm.VMSP: 12},
		Bytes: map[specdsm.PredictorKind]float64{specdsm.Cosmos: 21, specdsm.MSP: 11, specdsm.VMSP: 18},
	}}
	out := specdsm.RenderTable4(rows)
	for _, want := range []string{"barnes", "42.0", "pte", "ovh"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFigure9AndTable5(t *testing.T) {
	f9 := []specdsm.Figure9Row{{
		App:  "em3d",
		Base: [2]float64{62, 38},
		FR:   [2]float64{53, 31},
		SWI:  [2]float64{54, 16.5},
	}}
	out := specdsm.RenderFigure9(f9)
	for _, want := range []string{"em3d", "Base", "FR", "SWI", "mean execution time"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 9 missing %q", want)
		}
	}
	if f9[0].Total(specdsm.ModeSWI) != 70.5 {
		t.Errorf("Total(SWI) = %v", f9[0].Total(specdsm.ModeSWI))
	}
	if f9[0].Total(specdsm.ModeBase) != 100 {
		t.Errorf("Total(Base) = %v", f9[0].Total(specdsm.ModeBase))
	}

	t5 := []specdsm.Table5Row{{
		App: "em3d", BaseReads: 100, BaseWrites: 50,
		FRSent: 51.3, SWIReadSent: 80.4, SWIInvalSent: 85.6,
	}}
	out = specdsm.RenderTable5(t5)
	for _, want := range []string{"em3d", "100", "86 /", "write inval"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 5 missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure9RowDerivation(t *testing.T) {
	// Figure9 must normalize to the Base run and split by request share.
	study := []specdsm.AppSpeculation{{
		App: "x",
		Base: &specdsm.RunResult{
			Cycles: 1000, ComputeCycles: 600, SyncCycles: 0, RequestWaitCycles: 400,
		},
		FR: &specdsm.RunResult{
			Cycles: 900, ComputeCycles: 600, SyncCycles: 0, RequestWaitCycles: 300,
		},
		SWI: &specdsm.RunResult{
			Cycles: 800, ComputeCycles: 600, SyncCycles: 0, RequestWaitCycles: 200,
		},
	}}
	rows := specdsm.Figure9(study)
	if len(rows) != 1 {
		t.Fatal("row count")
	}
	r := rows[0]
	if r.Base[0]+r.Base[1] != 100 {
		t.Fatalf("base total %v", r.Base)
	}
	if got := r.Total(specdsm.ModeFR); got != 90 {
		t.Fatalf("FR total = %v, want 90", got)
	}
	if got := r.Total(specdsm.ModeSWI); got != 80 {
		t.Fatalf("SWI total = %v, want 80", got)
	}
	// Request share of SWI: 200/800 of processor time -> 25% of its 80.
	if r.SWI[1] < 19 || r.SWI[1] > 21 {
		t.Fatalf("SWI request segment = %v, want ~20", r.SWI[1])
	}
}

func TestTable5Derivation(t *testing.T) {
	study := []specdsm.AppSpeculation{{
		App:  "x",
		Base: &specdsm.RunResult{Reads: 1000, Writes: 300, Upgrades: 200},
		FR:   &specdsm.RunResult{SpecReadsFR: 400, SpecReadUnused: 40},
		SWI: &specdsm.RunResult{
			SpecReadsFR: 100, SpecReadsSWI: 700, SpecReadUnused: 16,
			SWIRecalls: 350, SWIPremature: 10,
		},
	}}
	rows := specdsm.Table5(study)
	r := rows[0]
	if r.FRSent != 40 || r.FRMiss != 4 {
		t.Fatalf("FR sent/miss = %v/%v", r.FRSent, r.FRMiss)
	}
	if r.SWIFRSent != 10 || r.SWIReadSent != 70 {
		t.Fatalf("SWI fr/swi sent = %v/%v", r.SWIFRSent, r.SWIReadSent)
	}
	// Misses split proportionally: 16 * 700/800 = 14 to SWI, 2 to FR.
	near := func(got, want float64) bool { return got > want-0.01 && got < want+0.01 }
	if !near(r.SWIReadMiss, 1.4) || !near(r.SWIFRMiss, 0.2) {
		t.Fatalf("miss split = %v/%v", r.SWIFRMiss, r.SWIReadMiss)
	}
	if r.SWIInvalSent != 70 || r.SWIInvalMiss != 2 {
		t.Fatalf("inval = %v/%v", r.SWIInvalSent, r.SWIInvalMiss)
	}
}
