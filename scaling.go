package specdsm

import (
	"context"
	"fmt"

	"specdsm/internal/machine"
	"specdsm/internal/report"
)

// DefaultScalingNodes is the machine-size axis of the node-count
// scaling study: the paper's 16 nodes, the inline reader-vector tier
// boundary (64), and two points deep into the two-level tier.
var DefaultScalingNodes = []int{16, 64, 256, 1024}

// NodeScaling is one (application, node count) cell of the scaling
// study: a single SWI-DSM run (VMSP depth 1 active, as in §7.4) at
// that machine width.
type NodeScaling struct {
	App   string
	Nodes int
	Run   *RunResult
	// Failed marks a keep-going FAILED cell; Run is nil and the derived
	// metrics return zero values.
	Failed string
}

// Active returns the active predictor's measurements (SWI-DSM attaches
// it after any observers, so it is always the last entry).
func (s NodeScaling) Active() PredictorResult {
	if s.Run == nil {
		return PredictorResult{}
	}
	return s.Run.Predictors[len(s.Run.Predictors)-1]
}

// Requests is the run's coherence request count (reads + writes +
// upgrades) — the normalizer for the per-request traffic column.
func (s NodeScaling) Requests() uint64 {
	if s.Run == nil {
		return 0
	}
	return s.Run.Reads + s.Run.Writes + s.Run.Upgrades
}

// SpecReads is the total speculative forwarding activity: directory
// pushes at writes (FR) plus self-invalidation refetches (SWI).
func (s NodeScaling) SpecReads() uint64 {
	if s.Run == nil {
		return 0
	}
	return s.Run.SpecReadsFR + s.Run.SpecReadsSWI
}

// UnusedFraction is the fraction of speculative reads never referenced
// before invalidation — wasted traffic, the cost side of speculation.
func (s NodeScaling) UnusedFraction() float64 {
	if s.SpecReads() == 0 {
		return 0
	}
	return float64(s.Run.SpecReadUnused) / float64(s.SpecReads())
}

// MsgsPerRequest is interconnect messages sent per coherence request —
// the study's traffic metric. Invalidation fan-out grows with sharer
// count, so this is where machine width should show up first.
func (s NodeScaling) MsgsPerRequest() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return float64(s.Run.NetMsgs) / float64(s.Requests())
}

// NodeScalingStudyStream runs every application under SWI-DSM at each
// node count (nil selects DefaultScalingNodes) and streams the rows,
// application-major (node counts inner), to emit. cfg.Nodes is
// superseded by the node-count axis; every other config knob (scale,
// seed, iterations, parallelism, checkpointing) applies as in the
// other studies, and rows merge in submission order so output is
// independent of cfg.Parallel.
func NodeScalingStudyStream(cfg StudyConfig, nodeCounts []int, emit func(i int, row NodeScaling) error) error {
	cfg = cfg.withDefaults()
	if len(nodeCounts) == 0 {
		nodeCounts = DefaultScalingNodes
	}
	k := len(nodeCounts)
	n := len(cfg.Apps) * k
	fail := failRow(cfg, emit, func(j int, errText string) NodeScaling {
		return NodeScaling{App: cfg.Apps[j/k], Nodes: nodeCounts[j%k], Failed: errText}
	})
	rs := cfg.remoteSpec("scaling")
	rs.NodeCounts = nodeCounts
	return streamStudy(cfg, rs, n, fmt.Sprintf("|scalenodes=%v", nodeCounts), scalingJob(cfg, nodeCounts),
		func(j int, r *RunResult) error {
			return emit(j, NodeScaling{App: cfg.Apps[j/k], Nodes: nodeCounts[j%k], Run: r})
		},
		fail)
}

// scalingJob builds the node-scaling study's job function: application
// j/k at node count j%k of the axis, under SWI-DSM. Shared between the
// in-process pool and remote workers.
func scalingJob(cfg StudyConfig, nodeCounts []int) func(context.Context, *machine.Arena, int) (*RunResult, error) {
	k := len(nodeCounts)
	return func(_ context.Context, arena *machine.Arena, j int) (*RunResult, error) {
		wp := cfg.workloadParams()
		wp.Nodes = nodeCounts[j%k]
		w, err := AppWorkload(cfg.Apps[j/k], wp)
		if err != nil {
			return nil, err
		}
		return runInArena(arena, w, MachineOptions{Mode: ModeSWI, DisableChecks: cfg.DisableChecks})
	}
}

// NodeScalingStudy is NodeScalingStudyStream collected into a slice.
func NodeScalingStudy(cfg StudyConfig, nodeCounts []int) ([]NodeScaling, error) {
	var out []NodeScaling
	if err := NodeScalingStudyStream(cfg, nodeCounts, func(_ int, row NodeScaling) error {
		out = append(out, row)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderNodeScaling prints the scaling study in the style of the
// paper's figure tables. The paper evaluates a 16-node machine only;
// this study is the beyond-paper question its §8 raises — does
// pattern-based prediction hold up as sharer sets outgrow a single
// directory vector word?
func RenderNodeScaling(rows []NodeScaling) string {
	t := report.NewTable("Node scaling (beyond paper): SWI-DSM with active VMSP, depth 1",
		"app", "nodes", "accuracy", "coverage", "spec reads", "unused", "msgs/req", "cycles")
	for _, r := range rows {
		if r.Failed != "" {
			t.AddRow(r.App, fmt.Sprint(r.Nodes),
				"FAILED", "FAILED", "FAILED", "FAILED", "FAILED", "FAILED")
			t.AddNote("%s @ %d nodes failed: %s", r.App, r.Nodes, r.Failed)
			continue
		}
		a := r.Active()
		t.AddRow(r.App, fmt.Sprint(r.Nodes),
			report.Pct(a.Accuracy), report.Pct(a.Coverage),
			fmt.Sprint(r.SpecReads()), report.Pct(r.UnusedFraction()),
			report.F1(r.MsgsPerRequest()), fmt.Sprint(r.Run.Cycles))
	}
	t.AddNote("accuracy/coverage: active predictor; unused: speculative reads invalidated before use")
	t.AddNote("nodes > 64 exercise the two-level reader vectors (inline word + group bitmap)")
	return t.String()
}
