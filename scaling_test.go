package specdsm

import (
	"reflect"
	"strings"
	"testing"
)

// scalingCfg keeps the study's widest machine (N = 1024) fast enough
// for the test suite while still generating speculative activity: the
// predictors need at least three producer-consumer iterations to learn
// and act on the pattern.
var scalingCfg = StudyConfig{
	Apps:       []string{"em3d"},
	Iterations: 3,
	Scale:      0.25,
	Seed:       1,
}

// TestNodeScalingStudy runs the study across both reader-vector tiers
// up to N = 1024 and checks that every cell carries live data: the
// run completed, speculation actually happened, and the traffic metric
// is populated.
func TestNodeScalingStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("wide machines are slow in -short mode")
	}
	nodes := []int{16, 64, 256, 1024}
	rows, err := NodeScalingStudy(scalingCfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(nodes) {
		t.Fatalf("got %d rows, want %d", len(rows), len(nodes))
	}
	for i, r := range rows {
		if r.App != "em3d" || r.Nodes != nodes[i] {
			t.Fatalf("row %d = (%s, %d), want (em3d, %d)", i, r.App, r.Nodes, nodes[i])
		}
		if r.Run.Cycles == 0 || r.Requests() == 0 {
			t.Errorf("N=%d: empty run: %+v", r.Nodes, r.Run)
		}
		if r.SpecReads() == 0 {
			t.Errorf("N=%d: no speculative activity — study parameters too small", r.Nodes)
		}
		if r.Run.NetMsgs == 0 || r.MsgsPerRequest() <= 0 {
			t.Errorf("N=%d: traffic metric empty (NetMsgs=%d)", r.Nodes, r.Run.NetMsgs)
		}
		if a := r.Active(); a.Kind != VMSP || a.Predicted == 0 {
			t.Errorf("N=%d: active predictor %+v, want a live VMSP", r.Nodes, a)
		}
	}
	table := RenderNodeScaling(rows)
	for _, want := range []string{"Node scaling", "1024", "msgs/req"} {
		if !strings.Contains(table, want) {
			t.Errorf("rendered table missing %q:\n%s", want, table)
		}
	}
}

// TestNodeScalingParallelInvariance pins the study's determinism
// contract: the row stream is identical at -parallel 1 and -parallel 8,
// including order, so paperrepro -only scaling output never depends on
// the worker count.
func TestNodeScalingParallelInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("wide machines are slow in -short mode")
	}
	nodes := []int{16, 256}
	run := func(parallel int) []NodeScaling {
		cfg := scalingCfg
		cfg.Parallel = parallel
		rows, err := NodeScalingStudy(cfg, nodes)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("study diverged across parallelism:\nseq: %+v\npar: %+v", seq, par)
	}
}
