package specdsm

import (
	"fmt"

	"specdsm/internal/core"
	"specdsm/internal/machine"
	"specdsm/internal/network"
	"specdsm/internal/sim"
	"specdsm/internal/workload"
)

// Mode selects the DSM flavor of §7.4.
type Mode string

const (
	// ModeBase is the conventional DSM with no speculation.
	ModeBase Mode = "base"
	// ModeFR triggers read-sequence speculation on the first read only.
	ModeFR Mode = "fr"
	// ModeSWI uses Speculative Write-Invalidation plus First-Read.
	ModeSWI Mode = "swi"
)

// PredictorKind names a predictor variant.
type PredictorKind string

const (
	// Cosmos is the general message predictor baseline (Mukherjee & Hill).
	Cosmos PredictorKind = "Cosmos"
	// MSP is the request-only Memory Sharing Predictor.
	MSP PredictorKind = "MSP"
	// VMSP is the Vector MSP.
	VMSP PredictorKind = "VMSP"
)

// Kinds lists the predictor variants in the paper's comparison order.
func Kinds() []PredictorKind { return []PredictorKind{Cosmos, MSP, VMSP} }

// MaxDepth is the largest supported predictor history depth (the paper
// evaluates depths 1, 2, and 4). Every API that takes a depth accepts
// the range [1, MaxDepth]; tools can validate against it up front
// instead of discovering the limit mid-run.
const MaxDepth = core.MaxDepth

func (k PredictorKind) kind() (core.Kind, error) {
	switch k {
	case Cosmos:
		return core.KindCosmos, nil
	case MSP:
		return core.KindMSP, nil
	case VMSP:
		return core.KindVMSP, nil
	default:
		return 0, fmt.Errorf("specdsm: unknown predictor kind %q", k)
	}
}

// PredictorConfig selects a predictor variant and history depth.
// Confidence > 0 enables an extension beyond the paper: speculation only
// acts on pattern entries whose 2-bit confidence counter has reached the
// threshold (accuracy measurement is unaffected).
type PredictorConfig struct {
	Kind       PredictorKind
	Depth      int
	Confidence int
}

// WorkloadParams sizes a workload instantiation. Zero values select the
// defaults: 16 nodes, per-application iteration counts, scale 1.0, seed 1.
type WorkloadParams struct {
	Nodes      int
	Iterations int
	Scale      float64
	Seed       int64
}

// Workload is a generated multi-node program, ready to run. The program
// slices may be shared with other Workload values for the same
// (application, parameters) — generation is served from a process-wide
// cache — and are immutable: simulation only reads them, so one Workload
// can back any number of concurrent runs.
type Workload struct {
	Name     string
	Nodes    int
	programs []machine.Program
}

// Ops returns the total operation count across all per-node programs.
func (w Workload) Ops() int {
	n := 0
	for _, p := range w.programs {
		n += len(p)
	}
	return n
}

// AppNames returns the seven benchmark names (Table 2).
func AppNames() []string { return workload.Names() }

// AppInfo describes one benchmark for reporting.
type AppInfo struct {
	Name            string
	Description     string
	PaperInput      string
	PaperIterations int
}

// AppInfos returns Table 2 metadata for all benchmarks.
func AppInfos() []AppInfo {
	var out []AppInfo
	for _, a := range workload.Apps() {
		out = append(out, AppInfo{a.Name, a.Description, a.PaperInput, a.PaperIterations})
	}
	return out
}

// AppWorkload instantiates one of the seven paper benchmarks.
func AppWorkload(name string, p WorkloadParams) (Workload, error) {
	app, ok := workload.ByName(name)
	if !ok {
		return Workload{}, fmt.Errorf("specdsm: unknown application %q (have %v)", name, AppNames())
	}
	wp := workload.Params{
		Nodes:      p.Nodes,
		Iterations: p.Iterations,
		Scale:      p.Scale,
		Seed:       p.Seed,
	}
	if wp.Nodes == 0 {
		wp.Nodes = 16
	}
	return Workload{Name: name, Nodes: wp.Nodes, programs: workload.Programs(app, wp)}, nil
}

// MicroPattern names a synthetic micro-workload for examples and tests.
type MicroPattern string

const (
	// PatternProducerConsumer is the paper's running example (Figures 2-4).
	PatternProducerConsumer MicroPattern = "producer-consumer"
	// PatternMigratory is read+write ownership migration along a chain.
	PatternMigratory MicroPattern = "migratory"
	// PatternStencil is near-neighbour boundary sharing.
	PatternStencil MicroPattern = "stencil"
)

// MicroWorkload instantiates a micro-pattern.
func MicroWorkload(pattern MicroPattern, p WorkloadParams) (Workload, error) {
	mp := workload.MicroParams{
		Nodes:      p.Nodes,
		Iterations: p.Iterations,
		Seed:       p.Seed,
	}
	if mp.Nodes == 0 {
		mp.Nodes = 4
	}
	var progs []machine.Program
	switch pattern {
	case PatternProducerConsumer:
		progs = workload.ProducerConsumer(mp)
	case PatternMigratory:
		progs = workload.MigratoryPattern(mp)
	case PatternStencil:
		progs = workload.StencilPattern(mp)
	default:
		return Workload{}, fmt.Errorf("specdsm: unknown micro pattern %q", pattern)
	}
	return Workload{Name: string(pattern), Nodes: mp.Nodes, programs: progs}, nil
}

// MachineOptions configures the simulated DSM for one run.
type MachineOptions struct {
	// Mode selects Base-DSM, FR-DSM, or SWI-DSM. Empty means Base.
	Mode Mode
	// Observers attach passive predictors at every directory.
	Observers []PredictorConfig
	// Active overrides the speculation predictor (default: VMSP depth 1,
	// as in the paper's §7.4).
	Active *PredictorConfig
	// SpecUpgrades enables the migratory-sharing extension.
	SpecUpgrades bool
	// DisableChecks turns off the coherence checker (benchmarks).
	DisableChecks bool
	// NetworkFlight overrides the interconnect flight latency in cycles
	// (default 80, Table 1). Raising it raises the remote-to-local ratio:
	// the empirical analogue of Figure 6's rtl panel (NUMA-Q vs Mercury vs
	// Origin).
	NetworkFlight int
	// CacheCapacity bounds valid cache lines per node with LRU eviction
	// (0 = unbounded, the paper's §6 "remote cache large enough"
	// assumption). Lowering it reintroduces the capacity/conflict traffic
	// the paper deliberately excludes.
	CacheCapacity int
}

// PredictorResult reports one predictor's measurements over a run.
type PredictorResult struct {
	Kind            PredictorKind
	Depth           int
	Tracked         uint64
	Predicted       uint64
	Correct         uint64
	Accuracy        float64 // Correct/Predicted   (Figures 7-8)
	Coverage        float64 // Predicted/Tracked   (Table 3)
	CorrectFraction float64 // Correct/Tracked     (Table 3, parenthesized)
	Blocks          int
	Entries         int
	EntriesPerBlock float64 // Table 4 "pte"
	BytesPerBlock   float64 // Table 4 "ovh" (depth-1 formulas)
}

// RunResult aggregates one simulation run.
type RunResult struct {
	Workload string
	Mode     Mode
	Nodes    int
	// Time, in processor cycles.
	Cycles            int64
	ComputeCycles     int64
	SyncCycles        int64
	RequestWaitCycles int64
	// Requests observed at the directories.
	Reads    uint64
	Writes   uint64
	Upgrades uint64
	// Speculation activity.
	SpecHits            uint64
	SpecReadsFR         uint64
	SpecReadsSWI        uint64
	SpecReadUnused      uint64
	UnreferencedSpec    uint64
	SpecDropped         uint64
	SWIRecalls          uint64
	SWIPremature        uint64
	SpecUpgrades        uint64
	SpecUpgradeMisfires uint64
	// Finite-cache mode.
	Evictions          uint64
	EvictionWritebacks uint64
	// NetMsgs counts interconnect messages sent (the traffic metric of
	// the node-scaling study).
	NetMsgs uint64
	// Predictor measurements (observers, then active last if present).
	Predictors []PredictorResult
	Events     uint64
}

// WriteLike returns writes plus upgrades.
func (r *RunResult) WriteLike() uint64 { return r.Writes + r.Upgrades }

// RequestShare is the fraction of aggregate processor time spent waiting
// on coherence transactions.
func (r *RunResult) RequestShare() float64 {
	total := r.ComputeCycles + r.SyncCycles + r.RequestWaitCycles
	if total == 0 {
		return 0
	}
	return float64(r.RequestWaitCycles) / float64(total)
}

// buildConfig translates public options into a machine configuration.
func buildConfig(w Workload, opts MachineOptions) (machine.Config, Mode, error) {
	cfg := machine.Config{
		Nodes:                 w.Nodes,
		DisableCoherenceCheck: opts.DisableChecks,
		EnableSpecUpgrade:     opts.SpecUpgrades,
		CacheCapacity:         opts.CacheCapacity,
	}
	if opts.CacheCapacity < 0 {
		return cfg, "", fmt.Errorf("specdsm: negative cache capacity %d", opts.CacheCapacity)
	}
	if opts.NetworkFlight != 0 {
		if opts.NetworkFlight < 0 {
			return cfg, "", fmt.Errorf("specdsm: negative network flight latency %d", opts.NetworkFlight)
		}
		nc := network.DefaultConfig()
		nc.FlightLatency = sim.Cycle(opts.NetworkFlight)
		cfg.NetCfg = nc
	}
	var specs []machine.PredictorSpec
	for _, o := range opts.Observers {
		k, err := o.Kind.kind()
		if err != nil {
			return cfg, "", err
		}
		if o.Depth < 1 || o.Depth > core.MaxDepth {
			return cfg, "", fmt.Errorf("specdsm: observer depth %d out of range [1,%d]", o.Depth, core.MaxDepth)
		}
		specs = append(specs, machine.PredictorSpec{Kind: k, Depth: o.Depth, Confidence: o.Confidence})
	}
	cfg.Observers = specs

	mode := opts.Mode
	if mode == "" {
		mode = ModeBase
	}
	switch mode {
	case ModeBase:
		if opts.SpecUpgrades {
			return cfg, "", fmt.Errorf("specdsm: SpecUpgrades requires an active predictor mode")
		}
	case ModeFR:
		cfg.EnableFR = true
	case ModeSWI:
		cfg.EnableFR = true
		cfg.EnableSWI = true
	default:
		return cfg, "", fmt.Errorf("specdsm: unknown mode %q", mode)
	}
	if mode != ModeBase {
		active := PredictorConfig{Kind: VMSP, Depth: 1}
		if opts.Active != nil {
			active = *opts.Active
		}
		k, err := active.Kind.kind()
		if err != nil {
			return cfg, "", err
		}
		if active.Depth < 1 || active.Depth > core.MaxDepth {
			return cfg, "", fmt.Errorf("specdsm: active depth %d out of range [1,%d]", active.Depth, core.MaxDepth)
		}
		cfg.Active = &machine.PredictorSpec{Kind: k, Depth: active.Depth, Confidence: active.Confidence}
	}
	return cfg, mode, nil
}

// Run simulates the workload on a machine configured by opts.
func Run(w Workload, opts MachineOptions) (*RunResult, error) {
	if len(w.programs) == 0 {
		return nil, fmt.Errorf("specdsm: empty workload")
	}
	cfg, mode, err := buildConfig(w, opts)
	if err != nil {
		return nil, err
	}
	m := machine.New(cfg)
	res, err := m.Run(w.programs)
	if err != nil {
		return nil, fmt.Errorf("specdsm: %s/%s: %w", w.Name, mode, err)
	}
	return convert(w, mode, cfg, res), nil
}

// runInArena is Run against a worker-local run arena: the simulated
// machine for the options' configuration is built once per arena and
// re-armed in place for every subsequent run, so a sweep worker pays
// machine construction once per distinct configuration instead of once
// per job. Results are identical to Run (the arena reset-equivalence
// tests pin this).
func runInArena(a *machine.Arena, w Workload, opts MachineOptions) (*RunResult, error) {
	if len(w.programs) == 0 {
		return nil, fmt.Errorf("specdsm: empty workload")
	}
	cfg, mode, err := buildConfig(w, opts)
	if err != nil {
		return nil, err
	}
	res, err := a.Run(cfg, w.programs)
	if err != nil {
		return nil, fmt.Errorf("specdsm: %s/%s: %w", w.Name, mode, err)
	}
	return convert(w, mode, cfg, res), nil
}

func convert(w Workload, mode Mode, cfg machine.Config, res *machine.Result) *RunResult {
	out := &RunResult{
		Workload:            w.Name,
		Mode:                mode,
		Nodes:               w.Nodes,
		Cycles:              int64(res.Cycles),
		ComputeCycles:       int64(res.TotalCompute),
		SyncCycles:          int64(res.TotalSync),
		RequestWaitCycles:   int64(res.TotalReqWait),
		Reads:               res.Dir.Reads,
		Writes:              res.Dir.Writes,
		Upgrades:            res.Dir.Upgrades,
		SpecHits:            res.Cache.SpecHits,
		SpecReadsFR:         res.Dir.SpecReadsFR,
		SpecReadsSWI:        res.Dir.SpecReadsSWI,
		SpecReadUnused:      res.Dir.SpecReadUnused,
		UnreferencedSpec:    res.UnreferencedSpec,
		SpecDropped:         res.Cache.SpecDropped,
		SWIRecalls:          res.Dir.SWIRecalls,
		SWIPremature:        res.Dir.SWIPremature,
		SpecUpgrades:        res.Dir.SpecUpgrades,
		SpecUpgradeMisfires: res.Dir.SpecUpgradeMisfires,
		Evictions:           res.Cache.Evictions,
		EvictionWritebacks:  res.Cache.EvictionWritebacks,
		NetMsgs:             res.Network.Sent,
		Events:              res.Events,
	}
	for _, spec := range cfg.Observers {
		st := res.PredStats[spec]
		cs := res.PredCensus[spec]
		out.Predictors = append(out.Predictors, predictorResult(spec, st, cs))
	}
	if cfg.Active != nil {
		out.Predictors = append(out.Predictors,
			predictorResult(*cfg.Active, res.ActiveStats, res.ActiveCensus))
	}
	return out
}

func predictorResult(spec machine.PredictorSpec, st core.Stats, cs core.Census) PredictorResult {
	var kind PredictorKind
	switch spec.Kind {
	case core.KindCosmos:
		kind = Cosmos
	case core.KindMSP:
		kind = MSP
	case core.KindVMSP:
		kind = VMSP
	}
	return PredictorResult{
		Kind:            kind,
		Depth:           spec.Depth,
		Tracked:         st.Tracked,
		Predicted:       st.Predicted,
		Correct:         st.Correct,
		Accuracy:        st.Accuracy(),
		Coverage:        st.Coverage(),
		CorrectFraction: st.CorrectFraction(),
		Blocks:          cs.Blocks,
		Entries:         cs.Entries,
		EntriesPerBlock: cs.EntriesPerBlock(),
		BytesPerBlock:   core.BytesPerBlock(spec.Kind, cs.EntriesPerBlock()),
	}
}

// Predictor returns the result for one attached predictor configuration.
func (r *RunResult) Predictor(kind PredictorKind, depth int) (PredictorResult, bool) {
	for _, p := range r.Predictors {
		if p.Kind == kind && p.Depth == depth {
			return p, true
		}
	}
	return PredictorResult{}, false
}
