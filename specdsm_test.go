package specdsm_test

import (
	"strings"
	"testing"

	"specdsm"
)

func TestAppNamesAndInfos(t *testing.T) {
	names := specdsm.AppNames()
	if len(names) != 7 {
		t.Fatalf("AppNames = %v", names)
	}
	infos := specdsm.AppInfos()
	if len(infos) != 7 {
		t.Fatalf("AppInfos = %d entries", len(infos))
	}
	for _, in := range infos {
		if in.PaperInput == "" || in.PaperIterations == 0 {
			t.Errorf("%s missing Table 2 metadata", in.Name)
		}
	}
}

func TestAppWorkloadErrors(t *testing.T) {
	if _, err := specdsm.AppWorkload("nope", specdsm.WorkloadParams{}); err == nil {
		t.Fatal("expected error for unknown app")
	}
	if _, err := specdsm.MicroWorkload("nope", specdsm.WorkloadParams{}); err == nil {
		t.Fatal("expected error for unknown pattern")
	}
}

func TestRunValidation(t *testing.T) {
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Nodes: 4, Iterations: 1, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := specdsm.Run(w, specdsm.MachineOptions{Mode: "warp"}); err == nil {
		t.Fatal("expected unknown-mode error")
	}
	if _, err := specdsm.Run(w, specdsm.MachineOptions{
		Observers: []specdsm.PredictorConfig{{Kind: "Oracle", Depth: 1}},
	}); err == nil {
		t.Fatal("expected unknown-kind error")
	}
	if _, err := specdsm.Run(w, specdsm.MachineOptions{
		Observers: []specdsm.PredictorConfig{{Kind: specdsm.MSP, Depth: 0}},
	}); err == nil {
		t.Fatal("expected bad-depth error")
	}
	if _, err := specdsm.Run(w, specdsm.MachineOptions{SpecUpgrades: true}); err == nil {
		t.Fatal("expected error: SpecUpgrades without speculation mode")
	}
	if _, err := specdsm.Run(specdsm.Workload{}, specdsm.MachineOptions{}); err == nil {
		t.Fatal("expected empty-workload error")
	}
}

func TestRunBaseCollectsCounters(t *testing.T) {
	w, err := specdsm.AppWorkload("tomcatv", specdsm.WorkloadParams{Nodes: 8, Iterations: 2, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	r, err := specdsm.Run(w, specdsm.MachineOptions{
		Mode:      specdsm.ModeBase,
		Observers: []specdsm.PredictorConfig{{Kind: specdsm.VMSP, Depth: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.Reads == 0 || r.WriteLike() == 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.RequestShare() <= 0 || r.RequestShare() >= 1 {
		t.Fatalf("request share %v out of range", r.RequestShare())
	}
	pr, ok := r.Predictor(specdsm.VMSP, 1)
	if !ok || pr.Tracked == 0 {
		t.Fatalf("missing predictor result: %+v", r.Predictors)
	}
	if _, ok := r.Predictor(specdsm.Cosmos, 1); ok {
		t.Fatal("unexpected predictor result")
	}
	if r.SpecHits != 0 || r.SpecReadsFR != 0 {
		t.Fatal("speculation counters must be zero in base mode")
	}
}

func TestSpeculationModesOrdering(t *testing.T) {
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Nodes: 8, Iterations: 6, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode specdsm.Mode) *specdsm.RunResult {
		r, err := specdsm.Run(w, specdsm.MachineOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(specdsm.ModeBase)
	fr := run(specdsm.ModeFR)
	swi := run(specdsm.ModeSWI)
	if !(swi.Cycles < fr.Cycles && fr.Cycles < base.Cycles) {
		t.Fatalf("em3d ordering violated: base %d, fr %d, swi %d",
			base.Cycles, fr.Cycles, swi.Cycles)
	}
	if swi.SWIRecalls == 0 || swi.SpecReadsSWI == 0 {
		t.Fatalf("SWI inactive: %+v", swi)
	}
	if fr.SpecReadsSWI != 0 {
		t.Fatal("FR-DSM must not perform SWI")
	}
}

// The headline result of the paper, asserted as shape: at default machine
// size with modest scale, VMSP's mean accuracy beats MSP's, which beats
// Cosmos's, and VMSP wins most on the re-ordering-heavy applications.
func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor study is slow for -short")
	}
	study, err := specdsm.PredictorStudy(specdsm.StudyConfig{
		Scale:         0.5,
		Depths:        []int{1},
		DisableChecks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := specdsm.Figure7(study)
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	var cosmos, msp, vmsp float64
	byApp := map[string]specdsm.Figure7Row{}
	for _, r := range rows {
		cosmos += r.Cosmos
		msp += r.MSP
		vmsp += r.VMSP
		byApp[r.App] = r
	}
	n := float64(len(rows))
	cosmos, msp, vmsp = cosmos/n, msp/n, vmsp/n
	if !(vmsp > msp && msp > cosmos) {
		t.Fatalf("mean accuracy ordering violated: Cosmos %.3f MSP %.3f VMSP %.3f", cosmos, msp, vmsp)
	}
	if vmsp < 0.85 {
		t.Fatalf("mean VMSP accuracy %.3f below the paper's ~93%% ballpark", vmsp)
	}
	// Wide read re-ordering (unstructured): VMSP far above MSP.
	u := byApp["unstructured"]
	if u.VMSP < u.MSP+0.3 {
		t.Fatalf("unstructured: VMSP %.3f should dominate MSP %.3f", u.VMSP, u.MSP)
	}
	// tomcatv is fully predictable for every predictor.
	tv := byApp["tomcatv"]
	if tv.Cosmos < 0.9 || tv.MSP < 0.95 || tv.VMSP < 0.95 {
		t.Fatalf("tomcatv should be near-perfect: %+v", tv)
	}
}

func TestFigure8DepthMonotonicityOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor study is slow for -short")
	}
	study, err := specdsm.PredictorStudy(specdsm.StudyConfig{
		Scale:         0.25,
		Depths:        []int{1, 2, 4},
		DisableChecks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := specdsm.Figure8(study, []int{1, 2, 4})
	for _, kind := range specdsm.Kinds() {
		var means [3]float64
		for _, r := range rows {
			for i := range r.Depths {
				means[i] += r.Accuracy[kind][i]
			}
		}
		if !(means[2] >= means[0]) {
			t.Fatalf("%s: depth 4 mean %.3f below depth 1 %.3f", kind, means[2], means[0])
		}
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor study is slow for -short")
	}
	study, err := specdsm.PredictorStudy(specdsm.StudyConfig{
		Scale:         0.25,
		Depths:        []int{1, 4},
		DisableChecks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range specdsm.Table4(study) {
		if !(r.PTE1[specdsm.Cosmos] >= r.PTE1[specdsm.MSP]) {
			t.Errorf("%s: Cosmos pte %.1f < MSP %.1f", r.App, r.PTE1[specdsm.Cosmos], r.PTE1[specdsm.MSP])
		}
		// VMSP needs at most as many entries as MSP, up to noise on
		// single-consumer apps where runs are single-reader (the paper
		// shows them equal on ocean and tomcatv).
		if !(r.PTE1[specdsm.MSP] >= r.PTE1[specdsm.VMSP]-0.5) {
			t.Errorf("%s: MSP pte %.1f < VMSP %.1f", r.App, r.PTE1[specdsm.MSP], r.PTE1[specdsm.VMSP])
		}
		if !(r.PTE4[specdsm.Cosmos] >= r.PTE1[specdsm.Cosmos]) {
			t.Errorf("%s: Cosmos pte should grow with depth", r.App)
		}
		// MSP storage is roughly half of Cosmos (the paper's claim).
		if r.Bytes[specdsm.MSP] > 0.75*r.Bytes[specdsm.Cosmos] {
			t.Errorf("%s: MSP bytes %.1f not well under Cosmos %.1f",
				r.App, r.Bytes[specdsm.MSP], r.Bytes[specdsm.Cosmos])
		}
	}
}

func TestValidateConfig(t *testing.T) {
	if err := (specdsm.StudyConfig{}).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (specdsm.StudyConfig{Apps: []string{"nope"}}).Validate(); err == nil {
		t.Fatal("expected unknown-app error")
	}
	if err := (specdsm.StudyConfig{Depths: []int{0}}).Validate(); err == nil {
		t.Fatal("expected bad-depth error")
	}
}

func TestAnalyticReexports(t *testing.T) {
	p := specdsm.AnalyticParams{C: 1, F: 1, P: 1, RTL: 4, N: 2}
	if got := specdsm.AnalyticSpeedup(p); got < 3.99 || got > 4.01 {
		t.Fatalf("speedup = %v", got)
	}
	if got := specdsm.AnalyticCommSpeedup(p); got < 3.99 || got > 4.01 {
		t.Fatalf("comm speedup = %v", got)
	}
	panels := specdsm.Figure6()
	if len(panels) != 4 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		if len(p.Series) == 0 || p.Title == "" {
			t.Fatalf("malformed panel %+v", p.Title)
		}
	}
}

func TestRenderers(t *testing.T) {
	if s := specdsm.RenderTable1(); !strings.Contains(s, "418") {
		t.Error("Table 1 missing round-trip latency")
	}
	if s := specdsm.RenderTable2(); !strings.Contains(s, "em3d") {
		t.Error("Table 2 missing applications")
	}
	if s := specdsm.RenderFigure6(); !strings.Contains(s, "rtl") {
		t.Error("Figure 6 missing curves")
	}
	rows := []specdsm.Figure7Row{{App: "em3d", Cosmos: 0.85, MSP: 0.99, VMSP: 0.99}}
	if s := specdsm.RenderFigure7(rows); !strings.Contains(s, "em3d") || !strings.Contains(s, "99.0") {
		t.Error("Figure 7 render wrong")
	}
	t3 := []specdsm.Table3Row{{
		App:      "em3d",
		Coverage: map[specdsm.PredictorKind]float64{specdsm.Cosmos: 0.9, specdsm.MSP: 0.9, specdsm.VMSP: 0.9},
		Correct:  map[specdsm.PredictorKind]float64{specdsm.Cosmos: 0.8, specdsm.MSP: 0.8, specdsm.VMSP: 0.8},
	}}
	if s := specdsm.RenderTable3(t3); !strings.Contains(s, "90.0 (80.0)") {
		t.Errorf("Table 3 render wrong:\n%s", specdsm.RenderTable3(t3))
	}
}

func TestMicroWorkloadsRunAllModes(t *testing.T) {
	for _, pat := range []specdsm.MicroPattern{
		specdsm.PatternProducerConsumer,
		specdsm.PatternMigratory,
		specdsm.PatternStencil,
	} {
		w, err := specdsm.MicroWorkload(pat, specdsm.WorkloadParams{Nodes: 4, Iterations: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []specdsm.Mode{specdsm.ModeBase, specdsm.ModeFR, specdsm.ModeSWI} {
			if _, err := specdsm.Run(w, specdsm.MachineOptions{Mode: mode}); err != nil {
				t.Fatalf("%s/%s: %v", pat, mode, err)
			}
		}
	}
}

func TestFiniteCacheCapacity(t *testing.T) {
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{Nodes: 8, Iterations: 4, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	inf, err := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeSWI})
	if err != nil {
		t.Fatal(err)
	}
	small, err := specdsm.Run(w, specdsm.MachineOptions{Mode: specdsm.ModeSWI, CacheCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	if inf.Evictions != 0 {
		t.Fatalf("unbounded cache evicted %d lines", inf.Evictions)
	}
	if small.Evictions == 0 {
		t.Fatal("16-line cache never evicted")
	}
	// Capacity misses reintroduce request traffic and slow the run.
	if small.Cycles <= inf.Cycles {
		t.Fatalf("finite cache not slower: %d vs %d", small.Cycles, inf.Cycles)
	}
	if _, err := specdsm.Run(w, specdsm.MachineOptions{CacheCapacity: -1}); err == nil {
		t.Fatal("expected negative-capacity error")
	}
}

// All seven applications must run under all three modes with coherence
// checking enabled — the broadest integration test in the suite.
func TestAllAppsAllModes(t *testing.T) {
	for _, app := range specdsm.AppNames() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			w, err := specdsm.AppWorkload(app, specdsm.WorkloadParams{
				Nodes: 16, Iterations: 3, Scale: 0.25, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []specdsm.Mode{specdsm.ModeBase, specdsm.ModeFR, specdsm.ModeSWI} {
				if _, err := specdsm.Run(w, specdsm.MachineOptions{Mode: mode}); err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
			}
		})
	}
}
