package specdsm_test

import (
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"specdsm"
	"specdsm/internal/sweep"
)

// streamCfg is a deliberately small study shape shared by the streaming
// tests: big enough to exercise the parallel merge, small enough to run
// in every `go test`.
func streamCfg() specdsm.StudyConfig {
	return specdsm.StudyConfig{
		Apps:          []string{"em3d", "tomcatv"},
		Nodes:         8,
		Scale:         0.25,
		Iterations:    4,
		Parallel:      4,
		DisableChecks: true,
	}
}

func TestSpeculationStudyStreamMatchesCollect(t *testing.T) {
	cfg := streamCfg()
	want, err := specdsm.SpeculationStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []specdsm.AppSpeculation
	next := 0
	err = specdsm.SpeculationStudyStream(cfg, func(i int, row specdsm.AppSpeculation) error {
		if i != next {
			t.Fatalf("row %d emitted, want %d", i, next)
		}
		next++
		got = append(got, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("streamed rows differ from collected study")
	}
}

func TestStreamEmitErrorStopsStudy(t *testing.T) {
	sentinel := errors.New("stop here")
	rows := 0
	err := specdsm.PredictorStudyStream(streamCfg(), func(i int, _ specdsm.AppPrediction) error {
		rows++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if rows != 1 {
		t.Fatalf("emit ran %d times after erroring", rows)
	}
}

// TestStudyCheckpointResume drives the whole user-visible contract on a
// real study: a completed checkpoint replays with zero re-simulation, a
// fresh (non-resume) run refuses to clobber it, and a config change is
// rejected instead of splicing incompatible rows.
func TestStudyCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed study is slow for -short")
	}
	cfg := streamCfg()
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "ck")
	cfg.CheckpointEvery = 2
	seeds := []int64{1, 2, 3}

	fresh, err := specdsm.SpeculationStudySeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}

	// Same invocation again without -resume: saved work must not be
	// silently overwritten.
	if _, err := specdsm.SpeculationStudySeeds(cfg, seeds); !errors.Is(err, sweep.ErrCheckpointExists) {
		t.Fatalf("err = %v, want ErrCheckpointExists", err)
	}

	// Resume of a completed sweep replays rows without running any job.
	var ran atomic.Int64
	cfg.Resume = true
	cfg.OnJobDone = func(int, time.Duration) { ran.Add(1) }
	resumed, err := specdsm.SpeculationStudySeeds(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("resume of completed sweep ran %d jobs", n)
	}
	if !reflect.DeepEqual(resumed, fresh) {
		t.Fatalf("resumed aggregate differs:\n got %+v\nwant %+v", resumed, fresh)
	}

	// A different study shape must not consume the old file.
	cfg.Scale = 0.5
	if _, err := specdsm.SpeculationStudySeeds(cfg, seeds); !errors.Is(err, sweep.ErrCheckpointMismatch) {
		t.Fatalf("err = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := specdsm.SpeculationStudySeeds(streamCfg(), nil); err == nil {
		t.Fatal("expected no-seeds error")
	}
}

// TestRTLSweepStreamInterruptResume interrupts a checkpointed sweep from
// the emit side (the row is already persisted when emit fails), then
// resumes and checks the full emitted sequence is byte-identical to an
// uninterrupted single-worker run while re-simulating only the missing
// suffix.
func TestRTLSweepStreamInterruptResume(t *testing.T) {
	cfg := streamCfg()
	app, wp := "em3d", specdsm.WorkloadParams{Nodes: 8, Scale: 0.25, Iterations: 4, Seed: 1}
	flights := []int{20, 80, 200, 320}

	var fresh []specdsm.RTLPoint
	seq := specdsm.StudyConfig{Parallel: 1}
	if err := specdsm.RTLSweepStream(seq, app, wp, flights, func(_ int, p specdsm.RTLPoint) error {
		fresh = append(fresh, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	cfg.CheckpointPath = filepath.Join(t.TempDir(), "ck")
	cfg.CheckpointEvery = 1
	sentinel := errors.New("interrupted")
	err := specdsm.RTLSweepStream(cfg, app, wp, flights, func(i int, _ specdsm.RTLPoint) error {
		if i == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want interruption sentinel", err)
	}

	var ran atomic.Int64
	cfg.Resume = true
	cfg.OnJobDone = func(int, time.Duration) { ran.Add(1) }
	var resumed []specdsm.RTLPoint
	if err := specdsm.RTLSweepStream(cfg, app, wp, flights, func(_ int, p specdsm.RTLPoint) error {
		resumed = append(resumed, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, fresh) {
		t.Fatalf("resumed sweep differs:\n got %+v\nwant %+v", resumed, fresh)
	}
	total := int64(2 * len(flights))
	if n := ran.Load(); n == 0 || n >= total {
		t.Fatalf("resume ran %d of %d jobs, want a proper suffix", n, total)
	}
}
