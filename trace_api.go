package specdsm

import (
	"fmt"
	"io"

	"specdsm/internal/core"
	"specdsm/internal/machine"
	"specdsm/internal/mem"
	"specdsm/internal/trace"
)

// TraceSummary describes a captured coherence-message trace.
type TraceSummary struct {
	Workload string
	Nodes    int
	Seed     int64
	Events   int
	Blocks   int
}

// CaptureTrace runs the workload and writes the coherence message streams
// observed at the directories to w as JSON, returning the run result and
// a trace summary. The captured stream is exactly what a passive
// predictor attached to the run would have observed, so offline
// evaluation (EvaluateTrace) reproduces online predictor measurements
// bit-for-bit.
func CaptureTrace(wl Workload, opts MachineOptions, out io.Writer) (*RunResult, TraceSummary, error) {
	if len(wl.programs) == 0 {
		return nil, TraceSummary{}, fmt.Errorf("specdsm: empty workload")
	}
	cfg, mode, err := buildConfig(wl, opts)
	if err != nil {
		return nil, TraceSummary{}, err
	}
	m := machine.New(cfg)
	rec := trace.NewRecorder(m.Kernel(), wl.Name, wl.Nodes, 0)
	m.AttachObserver(rec)
	res, err := m.Run(wl.programs)
	if err != nil {
		return nil, TraceSummary{}, fmt.Errorf("specdsm: %s/%s: %w", wl.Name, mode, err)
	}
	tr := rec.Trace()
	if err := trace.Write(out, tr); err != nil {
		return nil, TraceSummary{}, err
	}
	return convert(wl, mode, cfg, res), summarize(tr), nil
}

func summarize(tr *trace.Trace) TraceSummary {
	return TraceSummary{
		Workload: tr.Workload,
		Nodes:    tr.Nodes,
		Seed:     tr.Seed,
		Events:   len(tr.Events),
		Blocks:   tr.Blocks(),
	}
}

// EvaluateTrace reads a trace written by CaptureTrace and evaluates the
// given predictor configurations on it offline, without re-simulation.
func EvaluateTrace(in io.Reader, configs []PredictorConfig) ([]PredictorResult, TraceSummary, error) {
	tr, err := trace.Read(in)
	if err != nil {
		return nil, TraceSummary{}, err
	}
	return evaluateTrace(tr, configs)
}

func evaluateTrace(tr *trace.Trace, configs []PredictorConfig) ([]PredictorResult, TraceSummary, error) {
	var preds []core.Predictor
	var specs []machine.PredictorSpec
	for _, c := range configs {
		k, err := c.Kind.kind()
		if err != nil {
			return nil, TraceSummary{}, err
		}
		if c.Depth < 1 || c.Depth > core.MaxDepth {
			return nil, TraceSummary{}, fmt.Errorf("specdsm: predictor depth %d out of range [1,%d]", c.Depth, core.MaxDepth)
		}
		nodes := tr.Nodes
		if nodes < mem.InlineNodes {
			nodes = mem.InlineNodes
		}
		preds = append(preds, core.NewSized(k, c.Depth, nodes))
		specs = append(specs, machine.PredictorSpec{Kind: k, Depth: c.Depth})
	}
	trace.Replay(tr, preds...)
	var out []PredictorResult
	for i, p := range preds {
		out = append(out, predictorResult(specs[i], p.Stats(), p.Census()))
	}
	return out, summarize(tr), nil
}
